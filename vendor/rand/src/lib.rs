//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so this small
//! vendored crate provides the subset of the `rand 0.9` API the workspace
//! uses: the [`Rng`] trait with `random` / `random_range`, [`SeedableRng`],
//! and a deterministic [`rngs::StdRng`] (xoshiro256++ seeded via SplitMix64).
//!
//! Streams are deterministic for a given seed, which is all the workspace
//! relies on (reproducible experiments); the exact stream differs from the
//! upstream `rand` crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

/// Types that can be sampled uniformly from the generator's native stream
/// (the `Standard` distribution of the real `rand` crate).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    #[inline]
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    #[inline]
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Integer types usable with [`Rng::random_range`].
pub trait SampleUniform: Sized + Copy {
    /// Draws uniformly from `[low, high)`. `high` must be greater than `low`.
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

#[inline]
fn bounded_u64<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Widening-multiply bound reduction (Lemire); bias is < 2^-64 per draw,
    // far below anything the workspace's statistical tests can observe.
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_sample_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "random_range requires a non-empty range");
                let span = (high - low) as u64;
                low + bounded_u64(rng, span) as $t
            }
        }
    )*};
}

impl_sample_uniform_uint!(u8, u16, u32, u64, usize);

impl SampleUniform for i64 {
    #[inline]
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "random_range requires a non-empty range");
        let span = high.wrapping_sub(low) as u64;
        low.wrapping_add(bounded_u64(rng, span) as i64)
    }
}

/// A source of randomness. Mirrors the `rand 0.9` `Rng` surface the
/// workspace uses (`random`, `random_range`).
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Samples a value of type `T` from the standard distribution
    /// (uniform over integers, `[0, 1)` for floats, fair coin for bools).
    #[inline]
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Samples uniformly from the half-open `range`.
    #[inline]
    fn random_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range.start, range.end)
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Extension alias kept for source compatibility with code written against
/// the split `Rng`/`RngExt` traits; every [`Rng`] implements it.
pub trait RngExt: Rng {}
impl<R: Rng + ?Sized> RngExt for R {}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generator implementations.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // xoshiro256++ must not start from the all-zero state.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<u64> = (0..8).map(|_| a.random::<u64>()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.random::<u64>()).collect();
        assert_ne!(va, vc);
    }

    #[test]
    fn float_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_respects_bounds_and_covers() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 8];
        for _ in 0..10_000 {
            let v = rng.random_range(0u64..8);
            assert!(v < 8);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let v = rng.random_range(5usize..6);
        assert_eq!(v, 5);
        let v = rng.random_range(-4i64..4);
        assert!((-4..4).contains(&v));
    }

    #[test]
    fn reborrowed_rng_is_usable() {
        fn draw<R: Rng>(mut rng: R) -> u64 {
            rng.random_range(0..1000u64)
        }
        let mut rng = StdRng::seed_from_u64(3);
        let _ = draw(&mut rng);
        let _: f64 = rng.random();
    }
}
