//! Offline stand-in for the `criterion` benchmarking crate.
//!
//! The build environment cannot reach crates.io, so this vendored crate
//! implements the API surface the workspace's benches use — `Criterion`,
//! `BenchmarkGroup`, `BenchmarkId`, `Bencher::iter`, `black_box` and the
//! `criterion_group!` / `criterion_main!` macros — on top of a simple
//! wall-clock measurement loop (warm-up, then `sample_size` timed samples,
//! bounded by `measurement_time`).
//!
//! It reports median / mean / min per-iteration times to stdout in a stable
//! single-line format that downstream tooling (`crates/bench`) can parse.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque value barrier; forwards to [`std::hint::black_box`].
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark identifier: a function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id like `name/parameter`.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{name}/{parameter}"),
        }
    }

    /// An id consisting of the parameter only.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// Measurement settings shared by groups and the top-level entry points.
#[derive(Debug, Clone, Copy)]
struct Settings {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Settings {
    fn default() -> Self {
        Settings {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
        }
    }
}

/// One benchmark's summary statistics, in nanoseconds per iteration.
#[derive(Debug, Clone)]
pub struct Summary {
    /// Full benchmark id (`group/name` or `group/name/param`).
    pub id: String,
    /// Median time per iteration.
    pub median_ns: f64,
    /// Mean time per iteration.
    pub mean_ns: f64,
    /// Fastest sample.
    pub min_ns: f64,
    /// Number of timed samples taken.
    pub samples: usize,
}

/// Runs timed samples of `routine` and returns per-iteration statistics.
fn measure(settings: Settings, mut routine: impl FnMut() -> Duration) -> (f64, f64, f64, usize) {
    // Warm-up: run for ~1/5 of the measurement budget to stabilise caches.
    let warmup_budget = settings.measurement_time / 5;
    let warmup_start = Instant::now();
    while warmup_start.elapsed() < warmup_budget {
        black_box(routine());
    }

    let mut samples_ns: Vec<f64> = Vec::with_capacity(settings.sample_size);
    let start = Instant::now();
    while samples_ns.len() < settings.sample_size.max(1) {
        samples_ns.push(routine().as_secs_f64() * 1e9);
        if start.elapsed() > settings.measurement_time && samples_ns.len() >= 5 {
            break;
        }
    }
    samples_ns.sort_by(|a, b| a.partial_cmp(b).expect("sample times are finite"));
    let n = samples_ns.len();
    let median = if n % 2 == 1 {
        samples_ns[n / 2]
    } else {
        (samples_ns[n / 2 - 1] + samples_ns[n / 2]) / 2.0
    };
    let mean = samples_ns.iter().sum::<f64>() / n as f64;
    (median, mean, samples_ns[0], n)
}

/// The per-benchmark timing driver handed to `bench_function` closures.
pub struct Bencher {
    settings: Settings,
    result: Option<(f64, f64, f64, usize)>,
}

impl Bencher {
    /// Times `routine`, running it in batches sized so that each sample lasts
    /// long enough for the clock to resolve.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Calibrate: how many iterations fit in ~1 ms?
        let probe_start = Instant::now();
        black_box(routine());
        let once = probe_start.elapsed().max(Duration::from_nanos(1));
        let batch =
            (Duration::from_millis(1).as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as usize;

        let settings = self.settings;
        self.result = Some(measure(settings, || {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            t.elapsed() / batch as u32
        }));
    }
}

/// A named collection of benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    settings: Settings,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings.sample_size = n;
        self
    }

    /// Sets the soft wall-clock budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.settings.measurement_time = d;
        self
    }

    fn run(&mut self, id: String, f: impl FnOnce(&mut Bencher)) {
        let mut bencher = Bencher {
            settings: self.settings,
            result: None,
        };
        f(&mut bencher);
        let full_id = format!("{}/{}", self.name, id);
        if let Some((median_ns, mean_ns, min_ns, samples)) = bencher.result {
            println!(
                "bench: {full_id:<48} median {:>12.1} ns  mean {:>12.1} ns  min {:>12.1} ns  ({samples} samples)",
                median_ns, mean_ns, min_ns
            );
            self.criterion.summaries.push(Summary {
                id: full_id,
                median_ns,
                mean_ns,
                min_ns,
                samples,
            });
        } else {
            println!("bench: {full_id:<48} (no measurement taken)");
        }
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function(
        &mut self,
        id: impl fmt::Display,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        self.run(id.to_string(), f);
        self
    }

    /// Benchmarks `f` under `id`, passing `input` through.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        self.run(id.to_string(), |b| f(b, input));
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(&mut self) {}
}

/// Benchmark registry and entry point.
#[derive(Default)]
pub struct Criterion {
    settings: Settings,
    summaries: Vec<Summary>,
}

impl Criterion {
    /// Opens a benchmark group named `name`.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let settings = self.settings;
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            settings,
        }
    }

    /// Benchmarks `f` under `name` outside any group.
    pub fn bench_function(
        &mut self,
        name: impl fmt::Display,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        let settings = self.settings;
        let mut group = BenchmarkGroup {
            criterion: self,
            name: "criterion".to_string(),
            settings,
        };
        group.run(name.to_string(), f);
        self
    }

    /// All summaries recorded so far (used by reporting tooling).
    pub fn summaries(&self) -> &[Summary] {
        &self.summaries
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_records_summary() {
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("shim");
            g.sample_size(5).measurement_time(Duration::from_millis(50));
            g.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
            g.bench_with_input(BenchmarkId::new("with_input", 3), &3u64, |b, &x| {
                b.iter(|| black_box(x * 2))
            });
            g.finish();
        }
        assert_eq!(c.summaries().len(), 2);
        assert!(c.summaries()[0].median_ns >= 0.0);
        assert!(c.summaries()[1].id.contains("with_input/3"));
    }
}
