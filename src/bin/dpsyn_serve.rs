//! `dpsyn-serve`: the crash-safe multi-tenant DP release server.
//!
//! ```sh
//! DPSYN_DATA_DIR=/var/lib/dpsyn DPSYN_ADDR=127.0.0.1:8787 dpsyn_serve
//! ```
//!
//! Environment:
//!
//! * `DPSYN_DATA_DIR` (required) — ledger directory; the bound address is
//!   written to `<dir>/endpoint`.
//! * `DPSYN_ADDR` — bind address (default `127.0.0.1:0`).
//! * `DPSYN_EXEC_TIMEOUT_MS`, `DPSYN_IO_TIMEOUT_MS`,
//!   `DPSYN_MAX_BODY_BYTES` — limit overrides.
//! * `DPSYN_FAILPOINT` — comma-separated crash sites for fault-injection
//!   testing (see `dpsyn::server::failpoint`).
//! * `DPSYN_THREADS` — worker threads per execution context.
//!
//! SIGTERM stops accepting, drains in-flight requests, and exits 0.

use dpsyn::server::{self, ServerConfig};

fn main() {
    let config = match ServerConfig::from_env() {
        Ok(config) => config,
        Err(e) => {
            eprintln!("dpsyn-serve: {e}");
            std::process::exit(2);
        }
    };
    server::server::signal::install_sigterm_handler();
    let handle = match server::start(config) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("dpsyn-serve: failed to start: {e}");
            std::process::exit(1);
        }
    };
    eprintln!("dpsyn-serve: listening on {}", handle.addr);
    // The accept loop exits when SIGTERM is received (after draining).
    handle.wait();
    eprintln!("dpsyn-serve: drained and stopped");
}
