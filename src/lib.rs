//! # dpsyn — Differentially Private Data Release over Multiple Tables
//!
//! A Rust implementation of the algorithms from *"Differentially Private Data
//! Release over Multiple Tables"* (Ghazi, Hu, Kumar, Manurangsi — PODS 2023),
//! together with every substrate the paper relies on: a relational engine for
//! frequency-annotated multi-table instances, differential-privacy noise
//! primitives, join sensitivity machinery (local / global / residual
//! sensitivity), the single-table Private Multiplicative Weights release
//! algorithm, workload generators, and an experiment harness.
//!
//! This crate is a thin facade that re-exports the workspace crates:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`relational`] | `dpsyn-relational` | schemas, annotated relations, join hypergraphs, the hash-join engine (columnar `JoinResult`, inline `TupleKey`), the `SubJoinCache` for subset enumerations, degrees, attribute trees, plus the retained `naive` reference engine |
//! | [`noise`] | `dpsyn-noise` | Laplace / truncated Laplace, exponential mechanism, privacy budgets & composition |
//! | [`sensitivity`] | `dpsyn-sensitivity` | local, global, and residual sensitivity; maximum degrees; degree configurations |
//! | [`query`] | `dpsyn-query` | linear query families over joins and their evaluation |
//! | [`pmw`] | `dpsyn-pmw` | single-table Private Multiplicative Weights (Algorithm 2) |
//! | [`core`] | `dpsyn-core` | the paper's release algorithms (Algorithms 1, 3–7), flawed strawmen, baselines |
//! | [`datagen`] | `dpsyn-datagen` | paper figure instances, random / Zipf generators, realistic scenarios |
//!
//! ## Performance and determinism
//!
//! The relational data plane is built for throughput: join results are
//! stored columnar (flat row-major buffers, no per-tuple allocation), hash
//! indexes use an Fx-style hasher keyed by the inline
//! [`relational::TupleKey`], multi-way joins pick their fold order by
//! relation size, and the `2^m` relation-subset enumerations behind residual
//! sensitivity share sub-join work through a
//! [`relational::SubJoinCache`].  Hash order is never observable: every
//! tuple-exposing API sorts on emit, so runs are byte-reproducible from an
//! RNG seed — see the determinism contract in [`relational`]'s crate docs.
//! The previous `BTreeMap` engine survives as `relational::naive`, the
//! cross-check oracle for `tests/properties.rs` and the `join_throughput` /
//! `residual_subsets` benchmarks (speedups tracked in `BENCH_join.json`).
//!
//! ## Quickstart
//!
//! See `examples/quickstart.rs` for a complete end-to-end run; the short
//! version is:
//!
//! ```no_run
//! use dpsyn::prelude::*;
//! use rand::SeedableRng;
//!
//! // 1. A two-table join query R1(A, B) ⋈ R2(B, C).
//! let query = JoinQuery::two_table(16, 16, 16);
//!
//! // 2. Some private data.
//! let mut instance = Instance::empty_for(&query).unwrap();
//! instance.relation_mut(0).add_one(vec![1, 2]).unwrap();
//! instance.relation_mut(1).add_one(vec![2, 3]).unwrap();
//!
//! // 3. A workload of linear queries and a privacy budget.
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let workload = QueryFamily::random_sign(&query, 64, &mut rng).unwrap();
//! let budget = PrivacyParams::new(1.0, 1e-6).unwrap();
//!
//! // 4. Release a DP synthetic dataset and answer every query from it.
//! let release = TwoTable::default()
//!     .release(&query, &instance, &workload, budget, &mut rng)
//!     .unwrap();
//! let answers = release.answer_all(&workload).unwrap();
//! println!("answered {} queries privately", answers.len());
//! ```

#![forbid(unsafe_code)]

pub use dpsyn_core as core;
pub use dpsyn_datagen as datagen;
pub use dpsyn_noise as noise;
pub use dpsyn_pmw as pmw;
pub use dpsyn_query as query;
pub use dpsyn_relational as relational;
pub use dpsyn_sensitivity as sensitivity;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use dpsyn_core::{
        FlawedJoinAsOne, FlawedPadAfter, HierarchicalRelease, IndependentLaplaceBaseline,
        MultiTable, SyntheticRelease, TwoTable, UniformizedTwoTable,
    };
    pub use dpsyn_datagen::{self as datagen};
    pub use dpsyn_noise::{PrivacyParams, TruncatedLaplace};
    pub use dpsyn_pmw::{Histogram, Pmw, PmwConfig};
    pub use dpsyn_query::{LinearQuery, ProductQuery, QueryFamily};
    pub use dpsyn_relational::{
        join, join_size, AttrId, Attribute, Instance, JoinQuery, Relation, Schema,
    };
    pub use dpsyn_sensitivity::{local_sensitivity, residual_sensitivity, ResidualSensitivity};
}
