//! # dpsyn — Differentially Private Data Release over Multiple Tables
//!
//! A Rust implementation of the algorithms from *"Differentially Private Data
//! Release over Multiple Tables"* (Ghazi, Hu, Kumar, Manurangsi — PODS 2023),
//! together with every substrate the paper relies on: a relational engine for
//! frequency-annotated multi-table instances, differential-privacy noise
//! primitives, join sensitivity machinery (local / global / residual
//! sensitivity), the single-table Private Multiplicative Weights release
//! algorithm, workload generators, and an experiment harness.
//!
//! This crate is a thin facade that re-exports the workspace crates and adds
//! the [`Session`] API on top:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`session`] | (this crate) | [`Session`] + [`ReleaseRequest`]: the long-lived entry point owning parallelism, sensitivity settings and the persistent sub-join caches |
//! | [`relational`] | `dpsyn-relational` | schemas, annotated relations, join hypergraphs, the hash-join engine (columnar `JoinResult`, inline `TupleKey`), the `ExecContext` execution layer, the `SubJoinCache` for subset enumerations, degrees, attribute trees, plus the retained `naive` reference engine |
//! | [`noise`] | `dpsyn-noise` | Laplace / truncated Laplace, exponential mechanism, privacy budgets & composition |
//! | [`sensitivity`] | `dpsyn-sensitivity` | local, global, and residual sensitivity; maximum degrees; degree configurations |
//! | [`query`] | `dpsyn-query` | linear query families over joins and their evaluation |
//! | [`pmw`] | `dpsyn-pmw` | single-table Private Multiplicative Weights (Algorithm 2) |
//! | [`core`] | `dpsyn-core` | the paper's release algorithms (Algorithms 1, 3–7) behind the [`Mechanism`](dpsyn_core::Mechanism) trait, flawed strawmen, baselines |
//! | [`datagen`] | `dpsyn-datagen` | paper figure instances, random / Zipf generators, realistic scenarios |
//! | [`server`] | `dpsyn-server` | the `dpsyn-serve` release server: durable budget ledger, admission control, fault isolation, failpoints |
//!
//! ## Quickstart
//!
//! Hold one [`Session`] for as long as you work with an instance; bundle each
//! release's inputs into a [`ReleaseRequest`]; run any of the paper's
//! algorithms through [`Session::release`]:
//!
//! ```no_run
//! use dpsyn::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // 1. A two-table join query R1(A, B) ⋈ R2(B, C).
//! let query = JoinQuery::two_table(16, 16, 16);
//!
//! // 2. Some private data.
//! let mut instance = Instance::empty_for(&query)?;
//! instance.relation_mut(0).add_one(vec![1, 2])?;
//! instance.relation_mut(1).add_one(vec![2, 3])?;
//!
//! // 3. A long-lived session (owns parallelism + caches), a workload of
//! //    linear queries, and a privacy budget.
//! let session = Session::new();
//! let workload = session.random_sign_workload(&query, 64, 7)?;
//! let request = ReleaseRequest::new(
//!     &query,
//!     &instance,
//!     &workload,
//!     PrivacyParams::new(1.0, 1e-6)?,
//! )
//! .with_seed(7);
//!
//! // 4. Release a DP synthetic dataset (Algorithm 1) and answer every
//! //    query from it.  Any mechanism — TwoTable, MultiTable,
//! //    UniformizedTwoTable, HierarchicalRelease, the flawed strawmen —
//! //    runs through the same call.
//! let release = session.release(&TwoTable::default(), &request)?;
//! let answers = release.answer_all(&workload)?;
//! println!("answered {} queries privately", answers.len());
//!
//! // 5. Repeat calls on the same instance reuse the session's cached
//! //    sub-join lattice and full join — same bytes, less work.
//! let rs = session.residual_sensitivity(&query, &instance, 0.5)?;
//! println!("RS^0.5 = {:.2} ({} cached sub-joins)", rs.value, session.cached_subjoins());
//!
//! // 6. Neighbour-edit sweeps are delta-maintained: the local sensitivity
//! //    of every single-tuple removal is priced at a hash probe through the
//! //    session's cached delta-join plan — no re-join per edit.
//! let edits = instance.removal_edits();
//! let swept = session.local_sensitivity_sweep(&query, &instance, &edits)?;
//! println!("swept {} edits incrementally", swept.len());
//!
//! // 7. Every sub-join above decomposed along the session's cost-based
//! //    join plan; inspect the chosen orders and intermediate sizes.
//! let plan = session.plan_stats(&query, &instance)?;
//! println!(
//!     "join order {:?}; {} cached intermediate tuples",
//!     plan.top_order, plan.cached_tuples
//! );
//! # Ok(())
//! # }
//! ```
//!
//! See `examples/quickstart.rs` for a complete end-to-end run, and the
//! [`session`] module docs for the cache-reuse and determinism contract.
//!
//! ## Serving releases (`dpsyn-serve`)
//!
//! The workspace also ships a crash-safe multi-tenant release **server**:
//! the `dpsyn-serve` binary (backed by the [`server`] module /
//! `dpsyn-server` crate).  It fronts the same mechanisms behind a small
//! hand-rolled HTTP/1.1 API with four operational guarantees the library
//! alone cannot give:
//!
//! * **Durable budgets** — every tenant's `(ε, δ)` spend is an append-only,
//!   checksummed, fsync'd ledger (`ledger.log`); charges are two-phase
//!   (intent → commit/abort) and replayed on startup, so *no crash at any
//!   instant lets a tenant exceed its grant*.  Unresolved charges are
//!   counted as spent (conservative), torn final records are truncated, and
//!   real corruption refuses to start.
//! * **Admission control** — a release is checked against the tenant's
//!   remaining budget *before* any private data is touched; over-budget
//!   requests cost nothing and answer `429`.
//! * **Fault isolation** — each mechanism runs on its own thread under
//!   `catch_unwind` with a deadline; panics and hangs burn the charged
//!   budget but never take the server down.  `SIGTERM` drains in-flight
//!   requests before exit.
//! * **Failpoints** — `DPSYN_FAILPOINT=ledger_pre_commit` (and five
//!   siblings) crash the process at exact ledger-write instants; the
//!   integration suite kills and restarts the server at every one and
//!   asserts recovered budgets match an independent oracle replay bit for
//!   bit.
//!
//! ```sh
//! DPSYN_DATA_DIR=/var/lib/dpsyn cargo run --release --bin dpsyn_serve
//! ```
//!
//! then `POST /v1/tenant`, `POST /v1/dataset`, `POST /v1/dataset/{id}/updates`,
//! `POST /v1/release` with versioned JSON bodies (`"v":1`) — see
//! `examples/server_demo.rs` for a complete client round-trip over raw TCP.
//!
//! ## Streaming updates
//!
//! Instances are rarely static: real traffic is a stream of insert/delete
//! batches between releases.  [`Session::apply_updates`] applies an
//! [`relational::UpdateBatch`] to the instance while maintaining the
//! session's warm state **in place**, semi-naive style
//! ([`relational::stream`]): per updated relation, the Δ-relation is joined
//! against the current cached intermediates and folded in (deletes as
//! weight retraction under the engine's saturating-arithmetic rules), and
//! the whole LRU slot — sub-join lattice, full join, delta plan, attribute
//! dictionary — migrates to the updated instance's fingerprint instead of
//! being orphaned.  Maintenance never changes bytes: a post-update release
//! is identical to one from a cold session at the same seed, at every
//! thread count (the rebuild path remains the cross-check oracle in
//! `tests/properties.rs`).  Served datasets take the same path through
//! `POST /v1/dataset/{id}/updates` (tracked by the `stream/*` rows of
//! `BENCH_join.json`); see `examples/stream_demo.rs`.
//!
//! ## Performance and determinism
//!
//! The relational data plane is built for throughput: join results are
//! stored columnar (flat row-major buffers, no per-tuple allocation), hash
//! indexes use an Fx-style hasher keyed by the inline
//! [`relational::TupleKey`], multi-way joins pick their fold order by
//! relation size, and the `2^m` relation-subset enumerations behind residual
//! sensitivity share sub-join work through a
//! [`relational::SubJoinCache`] — decomposed by the cost-based join planner
//! ([`relational::plan`]: per-subset pivots chosen from per-relation
//! statistics, so cached intermediates are the smallest available; tracked
//! by the `planner/*` rows of `BENCH_join.json`) and persisted **across
//! calls** by [`Session`] / [`relational::ExecContext`] (a small
//! per-instance LRU of join plans, lattices, full joins and
//! [`relational::DeltaJoinPlan`]s), so repeated releases and sensitivity
//! sweeps over a working set of instances pay for the lattice once, and
//! neighbour-edit sweeps probe instead of re-joining (tracked by the
//! `edit_sweep/*` rows of `BENCH_join.json`).  Lattice masks whose tuples
//! nobody reads — the terminal subsets consumed only as join sizes and
//! boundary maxima — are not materialised at all: the cache's
//! **aggregate-pushdown mode** ([`relational::AggMode`], the
//! `DPSYN_AGG_FORCE` environment variable) streams their hash-probe
//! matches straight into grouped saturating accumulators behind a blocked
//! Bloom semi-join pre-filter, cutting resident bytes
//! ([`Session::cached_subjoin_bytes`], the `agg/*` rows of
//! `BENCH_join.json`) without changing a single output byte.  Hash order
//! is never
//! observable: every tuple-exposing API sorts on emit, so runs are
//! byte-reproducible from an RNG seed — see the determinism contract in
//! [`relational`]'s crate docs.  The previous `BTreeMap` engine survives as
//! `relational::naive`, the cross-check oracle for `tests/properties.rs` and
//! the `join_throughput` / `residual_subsets` benchmarks (speedups tracked
//! in `BENCH_join.json`).

#![forbid(unsafe_code)]

pub mod session;

pub use dpsyn_core as core;
pub use dpsyn_datagen as datagen;
pub use dpsyn_noise as noise;
pub use dpsyn_pmw as pmw;
pub use dpsyn_query as query;
pub use dpsyn_relational as relational;
pub use dpsyn_sensitivity as sensitivity;
pub use dpsyn_server as server;

pub use session::{ReleaseRequest, Session};

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::session::{ReleaseRequest, Session};
    pub use dpsyn_core::{
        FlawedJoinAsOne, FlawedPadAfter, HierarchicalRelease, IndependentLaplaceBaseline,
        Mechanism, MultiTable, SyntheticRelease, TwoTable, UniformizedTwoTable,
    };
    pub use dpsyn_datagen::{self as datagen};
    pub use dpsyn_noise::{PrivacyParams, TruncatedLaplace};
    pub use dpsyn_pmw::{Histogram, Pmw, PmwConfig};
    pub use dpsyn_query::{AnswerOps, LinearQuery, ProductQuery, QueryFamily};
    pub use dpsyn_relational::{
        join, join_size, AggMode, AttrId, Attribute, DeltaJoinPlan, EvictionStats, ExecContext,
        Instance, JoinPlan, JoinQuery, JoinSizeDelta, NeighborEdit, Parallelism, PlanConfig,
        PlanStats, Relation, ReplanStats, Schema, UpdateBatch, UpdateOp, UpdateReport,
    };
    pub use dpsyn_sensitivity::{
        local_sensitivity, residual_sensitivity, ResidualSensitivity, SensitivityConfig,
        SensitivityOps,
    };
}
