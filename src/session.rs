//! The [`Session`] API: one long-lived entry point for the whole pipeline.
//!
//! A session owns everything that used to travel through ad-hoc knobs —
//! the [`Parallelism`] level, the [`SensitivityConfig`], and a persistent,
//! instance-fingerprinted sub-join cache (an [`ExecContext`] under the
//! hood) — and
//! exposes the paper's six release algorithms behind the object-safe
//! [`Mechanism`] trait:
//!
//! ```no_run
//! use dpsyn::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let query = JoinQuery::two_table(16, 16, 16);
//! let mut instance = Instance::empty_for(&query)?;
//! instance.relation_mut(0).add_one(vec![1, 2])?;
//! instance.relation_mut(1).add_one(vec![2, 3])?;
//!
//! let session = Session::new();
//! let workload = session.random_sign_workload(&query, 64, 7)?;
//! let request = ReleaseRequest::new(
//!     &query,
//!     &instance,
//!     &workload,
//!     PrivacyParams::new(1.0, 1e-6)?,
//! )
//! .with_seed(7);
//!
//! // Any mechanism runs through the same entry point.
//! let release = session.release(&TwoTable::default(), &request)?;
//! let answers = release.answer_all(&workload)?;
//! # Ok(())
//! # }
//! ```
//!
//! ### Cache reuse
//!
//! The expensive substrate of the releases is shared **across calls**: the
//! `2^m` sub-join lattice that residual/local sensitivity enumerate is
//! checked into the session after every call and checked back out by the
//! next one, and the full join used for truth evaluation — plus the
//! instance's delta-join plan — is kept alongside.  A session keeps a small
//! **LRU of per-instance slots** (default
//! [`dpsyn_relational::DEFAULT_CACHE_SLOTS`], configurable via
//! [`SensitivityConfig::with_cache_slots`]), each keyed by a structural
//! fingerprint of the data
//! ([`dpsyn_relational::instance_fingerprint`]): repeat releases,
//! sensitivity sweeps over `β`, workload evaluations, and interleaved calls
//! over a small working set of instances (hierarchical per-part releases,
//! multi-tenant serving) skip the join work entirely, while *any* change to
//! an instance changes its fingerprint and starts cold — stale answers are
//! structurally impossible.  [`Session::clear_cache`] drops the cached
//! results (they are held until then; see the memory note in
//! [`dpsyn_relational::cache`]).
//!
//! ### Join planning
//!
//! Every sub-join a session materialises decomposes along a **cost-based
//! join plan** ([`dpsyn_relational::plan`]): built once per instance
//! fingerprint from mergeable sketch statistics, stored in the same LRU
//! slot as the lattice, and shared by every consumer — so the lattice's
//! intermediates are the planner's smallest, identically for sequential and
//! parallel callers.  Plans are **adaptive**: as intermediates materialise,
//! actual cardinalities are measured against the plan's estimates, and an
//! estimate off by more than [`PlanConfig::replan_ratio`]
//! ([`Session::with_plan_config`], or the `DPSYN_REPLAN_RATIO` environment
//! variable) re-plans the not-yet-built remainder with the measured sizes
//! pinned as exact anchors — without ever changing output bytes.
//! [`Session::plan_stats`] exposes the chosen orders, the estimated/actual
//! intermediate sizes, and the re-plan feedback counters
//! ([`dpsyn_relational::ReplanStats`]).
//!
//! ### Neighbour-edit sweeps
//!
//! Sensitivity sweeps over single-tuple edits are **delta-maintained**:
//! [`Session::local_sensitivity_sweep`] and
//! [`Session::smooth_sensitivity_bruteforce`] price each edit at a hash
//! probe through the cached
//! [`DeltaJoinPlan`](dpsyn_relational::DeltaJoinPlan) instead of
//! materialising and re-joining every neighbour instance, with byte-identical
//! results (the materializing paths survive as `*_materializing` oracles on
//! [`SensitivityOps`]).
//!
//! ### Determinism contract
//!
//! Sessions never trade correctness for speed:
//!
//! 1. **Seeded releases are byte-reproducible.** [`Session::release`] draws
//!    its RNG from [`ReleaseRequest::seed`], and each mechanism consumes the
//!    identical stream as its direct `release(...)` method — the released
//!    histogram, noisy total and `Δ̃` match the legacy path bit for bit.
//! 2. **Warm equals cold.** Every cached sub-join equals what a fresh
//!    computation produces (the planner's decomposition is a deterministic
//!    function of the data; the cached full join comes from the same
//!    size-ordered fold as [`dpsyn_relational::join()`]), so a warm
//!    session's outputs are byte-identical to a cold session's.
//! 3. **Parallelism is invisible.** Worker-pool loops are morsel-driven
//!    with work stealing ([`dpsyn_relational::exec`]): workers claim
//!    morsels dynamically, but every result is tagged with its morsel index
//!    and merged in morsel order — so `Session::sequential()` and a
//!    64-thread session produce the same bytes at every morsel size and
//!    schedule, differing only in wall-clock time.  The same holds for the
//!    dictionary-encoded probe path ([`Session::join_dict`]), which decodes
//!    on emit.

use dpsyn_core::{IndependentLaplaceBaseline, Mechanism, SyntheticRelease};
use dpsyn_noise::{seeded_rng, PrivacyParams};
use dpsyn_query::{AnswerOps, AnswerSet, ProductQuery, QueryFamily};
use dpsyn_relational::{
    DictionaryState, ExecContext, Instance, JoinQuery, JoinResult, JoinSizeDelta, NeighborEdit,
    Parallelism, PlanConfig, PlanStats, UpdateBatch, UpdateReport,
};
use dpsyn_sensitivity::{ResidualSensitivity, SensitivityConfig, SensitivityOps};
use std::sync::Arc;

/// Everything one release needs, bundled: the join query, the private
/// instance, the query workload, the privacy budget, and the RNG seed that
/// makes the run reproducible.
///
/// Construct with [`ReleaseRequest::new`] and chain
/// [`ReleaseRequest::with_seed`]; the references borrow from the caller, so
/// a request is cheap to build per call while the session persists.
#[derive(Debug, Clone, Copy)]
pub struct ReleaseRequest<'a> {
    query: &'a JoinQuery,
    instance: &'a Instance,
    workload: &'a QueryFamily,
    params: PrivacyParams,
    seed: u64,
}

impl<'a> ReleaseRequest<'a> {
    /// Bundles a release's inputs with the default seed 0.
    pub fn new(
        query: &'a JoinQuery,
        instance: &'a Instance,
        workload: &'a QueryFamily,
        params: PrivacyParams,
    ) -> Self {
        ReleaseRequest {
            query,
            instance,
            workload,
            params,
            seed: 0,
        }
    }

    /// Sets the RNG seed the release will be run with (identical seeds give
    /// byte-identical releases).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The join query.
    pub fn query(&self) -> &'a JoinQuery {
        self.query
    }

    /// The private instance.
    pub fn instance(&self) -> &'a Instance {
        self.instance
    }

    /// The query workload.
    pub fn workload(&self) -> &'a QueryFamily {
        self.workload
    }

    /// The privacy budget.
    pub fn params(&self) -> PrivacyParams {
        self.params
    }

    /// The RNG seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

/// A long-lived execution session: owns the parallelism knob, the
/// sensitivity settings and the persistent sub-join caches, and runs every
/// release algorithm through [`Session::release`].  See the module docs for
/// the cache-reuse and determinism contract.
#[derive(Debug)]
pub struct Session {
    config: SensitivityConfig,
    ctx: ExecContext,
}

impl Default for Session {
    fn default() -> Self {
        Session::new()
    }
}

impl Session {
    /// A session at the environment's default parallelism (available cores,
    /// or the `DPSYN_THREADS` environment variable).
    pub fn new() -> Self {
        Session::with_config(SensitivityConfig::default())
    }

    /// A strictly sequential session (one worker, no spawned threads) —
    /// the exact historical single-threaded code paths.
    pub fn sequential() -> Self {
        Session::with_config(SensitivityConfig::sequential())
    }

    /// A session with exactly `n` worker threads.
    pub fn with_threads(n: usize) -> Self {
        Session::with_config(SensitivityConfig::with_threads(n))
    }

    /// A session with explicit execution settings (parallelism and the
    /// small-instance sequential-fallback threshold).
    pub fn with_config(config: SensitivityConfig) -> Self {
        Session {
            config,
            ctx: config.to_context(),
        }
    }

    /// Overrides the adaptive planner's knobs for this session — most
    /// notably the estimate-error ratio past which materialised
    /// cardinalities trigger a re-plan (see
    /// [`dpsyn_relational::PlanConfig`]).  The default honours the
    /// `DPSYN_REPLAN_RATIO` environment variable.  Re-planning only
    /// changes decomposition routes, never output bytes.
    pub fn with_plan_config(mut self, plan_config: PlanConfig) -> Self {
        self.ctx = self.ctx.with_plan_config(plan_config);
        self
    }

    /// The session's execution settings.
    pub fn config(&self) -> SensitivityConfig {
        self.config
    }

    /// The session's parallelism level.
    pub fn parallelism(&self) -> Parallelism {
        self.ctx.parallelism()
    }

    /// The backing execution context, for APIs that take one directly.
    pub fn context(&self) -> &ExecContext {
        &self.ctx
    }

    // --- releasing ---------------------------------------------------------

    /// Runs any release [`Mechanism`] on the bundled request, seeding the
    /// RNG from [`ReleaseRequest::seed`].
    ///
    /// Output is byte-identical to calling the mechanism's own
    /// `release(...)` with `seeded_rng(request.seed())` — and to re-running
    /// the same request on this (now warm) session.
    pub fn release(
        &self,
        mechanism: &dyn Mechanism,
        request: &ReleaseRequest<'_>,
    ) -> dpsyn_core::Result<SyntheticRelease> {
        let mut rng = seeded_rng(request.seed);
        mechanism.release_ctx(
            &self.ctx,
            request.query,
            request.instance,
            request.workload,
            request.params,
            &mut rng,
        )
    }

    /// Runs the per-query Laplace baseline (which answers the workload
    /// directly instead of producing synthetic data — see the
    /// [`dpsyn_core::mechanism`] docs for why it is not a [`Mechanism`]).
    pub fn answer_baseline(
        &self,
        baseline: &IndependentLaplaceBaseline,
        request: &ReleaseRequest<'_>,
    ) -> dpsyn_core::Result<AnswerSet> {
        let mut rng = seeded_rng(request.seed);
        baseline.answer_all_in(
            &self.ctx,
            request.query,
            request.instance,
            request.workload,
            request.params,
            &mut rng,
        )
    }

    // --- non-private evaluation (truth values, diagnostics) ----------------

    /// The exact (non-private) answers of a workload on an instance, through
    /// the session's cached full join — repeated truth evaluations over one
    /// instance join once.
    pub fn answer_truth(
        &self,
        query: &JoinQuery,
        instance: &Instance,
        workload: &QueryFamily,
    ) -> dpsyn_query::Result<AnswerSet> {
        self.ctx.answer_all_on_instance(query, instance, workload)
    }

    /// The exact (non-private) answer of one query on an instance.
    pub fn answer_one(
        &self,
        query: &JoinQuery,
        instance: &Instance,
        q: &ProductQuery,
    ) -> dpsyn_query::Result<f64> {
        self.ctx.answer_on_instance(query, instance, q)
    }

    /// The join size `count(I)` at the session's parallelism.
    pub fn join_size(
        &self,
        query: &JoinQuery,
        instance: &Instance,
    ) -> dpsyn_relational::Result<u128> {
        self.ctx.join_size(query, instance)
    }

    /// A seeded random-sign workload (convenience wrapper so callers don't
    /// have to manage an RNG for workload generation).
    pub fn random_sign_workload(
        &self,
        query: &JoinQuery,
        size: usize,
        seed: u64,
    ) -> dpsyn_query::Result<QueryFamily> {
        let mut rng = seeded_rng(seed);
        QueryFamily::random_sign(query, size, &mut rng)
    }

    /// The full join through the **dictionary-encoded probe path**: values
    /// are replaced by dense per-attribute codes (built once per instance and
    /// cached in the session's LRU slot), the fold probes on integer keys —
    /// packed into a single `u64` wherever the code widths fit — and the
    /// result is decoded on emit.  Byte-identical to the raw-value join;
    /// faster on wide-valued attributes (see
    /// [`dpsyn_relational::join::join_dict`]).
    pub fn join_dict(
        &self,
        query: &JoinQuery,
        instance: &Instance,
    ) -> dpsyn_relational::Result<JoinResult> {
        self.ctx.join_dict(query, instance)
    }

    /// The pair's cached [`DictionaryState`] — the per-attribute dictionary
    /// plus the encoded instance — for diagnostics: code counts per
    /// attribute, and whether every fold step packs its probe keys into one
    /// `u64` ([`DictionaryState::fully_packable`]).
    pub fn attr_dictionary(
        &self,
        query: &JoinQuery,
        instance: &Instance,
    ) -> dpsyn_relational::Result<Arc<DictionaryState>> {
        self.ctx.attr_dictionary(query, instance)
    }

    // --- sensitivity -------------------------------------------------------

    /// Local sensitivity `LS_count(I)`, through the session cache.
    pub fn local_sensitivity(
        &self,
        query: &JoinQuery,
        instance: &Instance,
    ) -> dpsyn_sensitivity::Result<u128> {
        self.ctx.local_sensitivity(query, instance)
    }

    /// Residual sensitivity `RS^β_count(I)`, through the session cache —
    /// sweeping `β` over one instance pays for the subset lattice once.
    pub fn residual_sensitivity(
        &self,
        query: &JoinQuery,
        instance: &Instance,
        beta: f64,
    ) -> dpsyn_sensitivity::Result<ResidualSensitivity> {
        self.ctx.residual_sensitivity(query, instance, beta)
    }

    // --- neighbour-edit deltas ---------------------------------------------

    /// The local sensitivities of every neighbour `I ± edit`, swept
    /// incrementally: the session's cached
    /// [`DeltaJoinPlan`](dpsyn_relational::DeltaJoinPlan) prices each edit
    /// at a hash probe instead of a full re-join.  Results are in edit order
    /// and byte-identical to materialising every neighbour.
    pub fn local_sensitivity_sweep(
        &self,
        query: &JoinQuery,
        instance: &Instance,
        edits: &[NeighborEdit],
    ) -> dpsyn_sensitivity::Result<Vec<u128>> {
        self.ctx.local_sensitivity_sweep(query, instance, edits)
    }

    /// Restricted brute-force smooth sensitivity (delta-maintained edit
    /// sweeps; see
    /// [`dpsyn_sensitivity::smooth_sensitivity_bruteforce`]).
    pub fn smooth_sensitivity_bruteforce(
        &self,
        query: &JoinQuery,
        instance: &Instance,
        beta: f64,
        max_radius: usize,
    ) -> dpsyn_sensitivity::Result<f64> {
        self.ctx
            .smooth_sensitivity_bruteforce(query, instance, beta, max_radius)
    }

    /// The signed join-size change `count(I ± edit) - count(I)` of one
    /// neighbouring edit, via the cached delta plan — no join over the
    /// edited instance is built.  For per-edit loops prefer
    /// [`Session::join_size_deltas`], which resolves the plan once for the
    /// whole sweep.
    pub fn join_size_delta(
        &self,
        query: &JoinQuery,
        instance: &Instance,
        edit: &NeighborEdit,
    ) -> dpsyn_relational::Result<JoinSizeDelta> {
        self.ctx.join_size_delta(query, instance, edit)
    }

    /// The signed join-size changes of a batch of neighbouring edits, in
    /// edit order (one plan lookup, a hash probe per edit).
    pub fn join_size_deltas(
        &self,
        query: &JoinQuery,
        instance: &Instance,
        edits: &[NeighborEdit],
    ) -> dpsyn_relational::Result<Vec<JoinSizeDelta>> {
        self.ctx.join_size_deltas(query, instance, edits)
    }

    // --- streaming updates --------------------------------------------------

    /// Applies a streaming [`UpdateBatch`] of inserts and deletes to
    /// `instance` while keeping the session's warm state warm: the cached
    /// sub-join lattice, full join and delta plan are maintained **in
    /// place** semi-naive style and migrated to the updated instance's
    /// fingerprint, instead of being orphaned and rebuilt (see
    /// [`dpsyn_relational::stream`] and
    /// [`ExecContext::apply_updates`]).
    ///
    /// A post-update release over the updated instance is byte-identical to
    /// one from a cold session at the same seed — maintenance never changes
    /// output bytes, at any thread count.  On a validation error
    /// (unknown relation, bad arity or domain, a delete below zero) neither
    /// the instance nor the cache is modified.
    pub fn apply_updates(
        &self,
        query: &JoinQuery,
        instance: &mut Instance,
        batch: &UpdateBatch,
    ) -> dpsyn_relational::Result<UpdateReport> {
        self.ctx.apply_updates(query, instance, batch)
    }

    // --- cache introspection ------------------------------------------------

    /// Planner diagnostics for `(query, instance)`: the cost-based
    /// decomposition the session's every sub-join flows through — per-subset
    /// pivots with estimated cardinalities, the top-level join order, the
    /// actual sizes of the lattice entries currently materialised, and the
    /// runtime-feedback counters ([`PlanStats::replan`]: subsets measured,
    /// estimate-error triggers, re-plans taken, pivots changed) when the
    /// slot has executed adaptively (see [`dpsyn_relational::plan`]).
    /// Benches use this to track the cached-intermediate footprint next to
    /// wall-clock.
    pub fn plan_stats(
        &self,
        query: &JoinQuery,
        instance: &Instance,
    ) -> dpsyn_relational::Result<PlanStats> {
        self.ctx.plan_stats(query, instance)
    }

    /// Number of sub-join lattice entries currently persisted.
    pub fn cached_subjoins(&self) -> usize {
        self.ctx.cached_subjoins()
    }

    /// Approximate resident bytes of all persisted lattice entries, both
    /// materialised tuple buffers and count-only aggregate summaries — the
    /// footprint aggregate pushdown shrinks.
    pub fn cached_subjoin_bytes(&self) -> usize {
        self.ctx.cached_subjoin_bytes()
    }

    /// Number of count-only aggregate summaries currently persisted (the
    /// overlay entries serving terminal-mask reads without materialising).
    pub fn cached_subjoin_aggregates(&self) -> usize {
        self.ctx.cached_subjoin_aggregates()
    }

    /// LRU slot-eviction counters since the session was created (or since
    /// [`Session::clear_cache`]), for auditing what the cache discarded.
    pub fn eviction_stats(&self) -> dpsyn_relational::EvictionStats {
        self.ctx.eviction_stats()
    }

    /// `(hits, misses)` of the persistent caches.
    pub fn cache_stats(&self) -> (u64, u64) {
        self.ctx.cache_stats()
    }

    /// Drops every persisted cache entry; the next call starts cold.
    pub fn clear_cache(&self) {
        self.ctx.clear_cache()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpsyn_core::{MultiTable, TwoTable};

    fn fixture() -> (JoinQuery, Instance) {
        let q = JoinQuery::two_table(8, 8, 8);
        let mut inst = Instance::empty_for(&q).unwrap();
        for a in 0..6u64 {
            inst.relation_mut(0).add(vec![a, a % 3], 1).unwrap();
            inst.relation_mut(1).add(vec![a % 3, a], 1).unwrap();
        }
        (q, inst)
    }

    #[test]
    fn session_release_matches_legacy_and_is_seed_stable() {
        let (q, inst) = fixture();
        let session = Session::sequential();
        let workload = session.random_sign_workload(&q, 8, 5).unwrap();
        let params = PrivacyParams::new(1.0, 1e-5).unwrap();
        let request = ReleaseRequest::new(&q, &inst, &workload, params).with_seed(9);

        let via_session = session.release(&TwoTable::default(), &request).unwrap();
        let legacy = {
            let mut rng = seeded_rng(9);
            TwoTable::default()
                .release(&q, &inst, &workload, params, &mut rng)
                .unwrap()
        };
        assert_eq!(via_session.delta_tilde(), legacy.delta_tilde());
        assert_eq!(
            via_session.answer_all(&workload).unwrap().values(),
            legacy.answer_all(&workload).unwrap().values()
        );
        // Re-running the same request on the warm session changes nothing.
        let again = session.release(&TwoTable::default(), &request).unwrap();
        assert_eq!(
            again.answer_all(&workload).unwrap().values(),
            via_session.answer_all(&workload).unwrap().values()
        );
    }

    #[test]
    fn session_caches_across_calls_and_invalidates_on_edit() {
        let (q, inst) = fixture();
        let session = Session::sequential();
        let workload = session.random_sign_workload(&q, 4, 1).unwrap();
        let params = PrivacyParams::new(1.0, 1e-5).unwrap();
        let request = ReleaseRequest::new(&q, &inst, &workload, params).with_seed(2);

        session.release(&MultiTable::default(), &request).unwrap();
        // Under DPSYN_AGG_FORCE=always every proper mask folds count-only,
        // so the persisted entries may all be aggregate summaries.
        assert!(session.cached_subjoins() + session.cached_subjoin_aggregates() > 0);
        let (hits_before, _) = session.cache_stats();
        session.release(&MultiTable::default(), &request).unwrap();
        let (hits_after, _) = session.cache_stats();
        assert!(
            hits_after > hits_before,
            "second release must hit the cache"
        );

        // Sensitivity through the same session reuses the lattice too, and
        // truth answering reuses the shared join.
        let rs = session.residual_sensitivity(&q, &inst, 0.5).unwrap();
        assert_eq!(
            rs,
            dpsyn_sensitivity::residual_sensitivity(&q, &inst, 0.5).unwrap()
        );
        let truth = session.answer_truth(&q, &inst, &workload).unwrap();
        assert_eq!(
            truth.values(),
            workload.answer_all_on_instance(&q, &inst).unwrap().values()
        );

        // Editing the instance starts cold (fingerprint change), never stale.
        let mut edited = inst.clone();
        edited.relation_mut(0).add(vec![7, 7], 3).unwrap();
        assert_eq!(
            session.local_sensitivity(&q, &edited).unwrap(),
            dpsyn_sensitivity::local_sensitivity(&q, &edited).unwrap()
        );

        session.clear_cache();
        assert_eq!(session.cached_subjoins(), 0);
    }

    #[test]
    fn session_dict_join_matches_raw_join_and_caches_the_dictionary() {
        let (q, inst) = fixture();
        let session = Session::sequential();
        let raw = session.context().join(&q, &inst).unwrap();
        let dict = session.join_dict(&q, &inst).unwrap();
        assert_eq!(dict, raw);
        let state = session.attr_dictionary(&q, &inst).unwrap();
        let again = session.attr_dictionary(&q, &inst).unwrap();
        assert!(Arc::ptr_eq(&state, &again), "dictionary built once");
        assert!(state.fully_packable(), "small codes pack into one u64");
    }

    #[test]
    fn session_plan_stats_track_the_lattice_footprint() {
        let (q, inst) = fixture();
        let session = Session::sequential();
        let cold = session.plan_stats(&q, &inst).unwrap();
        assert!(cold.cost_based);
        assert_eq!(cold.top_order.len(), 2);
        assert_eq!(cold.cached_masks, 0);
        // A residual-sensitivity call populates the lattice through the
        // planner; the stats now expose the materialised intermediates.
        session.residual_sensitivity(&q, &inst, 0.5).unwrap();
        let warm = session.plan_stats(&q, &inst).unwrap();
        // Under DPSYN_AGG_FORCE=always the intermediates live in the
        // count-only overlay instead of the materialised memo; either kind
        // of entry proves the lattice got populated.
        assert!(warm.cached_masks + warm.aggregated_masks > 0);
        assert!(warm.nodes.iter().any(|n| n.actual_rows.is_some()));
    }

    #[test]
    fn session_plan_stats_surface_adaptive_replan_feedback() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        // The correlated-pair workload provably breaks independence
        // estimates (kk is a functional dependency of k), so the adaptive
        // walks must measure, trigger and re-plan — and the feedback must
        // surface through the session's diagnostics.
        let (q, inst) = dpsyn_datagen::correlated_pair(3, 64, 16, 512, 8, &mut rng);
        let session = Session::sequential().with_plan_config(PlanConfig::with_replan_ratio(8.0));
        let ls = session.local_sensitivity(&q, &inst).unwrap();
        assert_eq!(ls, dpsyn_sensitivity::local_sensitivity(&q, &inst).unwrap());
        let stats = session.plan_stats(&q, &inst).unwrap();
        let replan = stats.replan.expect("adaptive walks must record feedback");
        assert!(replan.measured > 0);
        assert!(replan.triggers >= 1, "the correlation trap must trigger");
        assert!(replan.replans >= 1);
        assert!(
            replan.max_error > 8.0,
            "error {} too small",
            replan.max_error
        );
        // Feedback survives check-in/check-out: a second (warm) call keeps
        // the counters monotone instead of resetting them.
        session.local_sensitivity(&q, &inst).unwrap();
        let warm = session.plan_stats(&q, &inst).unwrap().replan.unwrap();
        assert!(warm.measured >= replan.measured);
    }

    #[test]
    fn session_edit_sweeps_match_materializing_and_lru_keeps_instances_warm() {
        let (q, inst) = fixture();
        let session = Session::sequential();
        // Delta sweep over every removal edit equals materialising each
        // neighbour and recomputing from scratch.
        let edits = inst.removal_edits();
        let swept = session.local_sensitivity_sweep(&q, &inst, &edits).unwrap();
        for (edit, ls) in edits.iter().zip(&swept) {
            let neighbor = inst.apply_edit(edit).unwrap();
            assert_eq!(
                *ls,
                dpsyn_sensitivity::local_sensitivity(&q, &neighbor).unwrap()
            );
        }
        // Join-size deltas agree with re-joining (batch API: one plan
        // lookup for the whole sweep).
        let base = session.join_size(&q, &inst).unwrap();
        let deltas = session.join_size_deltas(&q, &inst, &edits).unwrap();
        for (edit, delta) in edits.iter().zip(&deltas) {
            let neighbor = inst.apply_edit(edit).unwrap();
            assert_eq!(delta.apply(base), session.join_size(&q, &neighbor).unwrap());
        }
        assert_eq!(
            session.join_size_delta(&q, &inst, &edits[0]).unwrap(),
            deltas[0]
        );
        // Smooth sensitivity through the session equals the free function.
        assert_eq!(
            session
                .smooth_sensitivity_bruteforce(&q, &inst, 0.4, 2)
                .unwrap(),
            dpsyn_sensitivity::smooth_sensitivity_bruteforce(&q, &inst, 0.4, 2).unwrap()
        );
        // The LRU keeps several instances warm at once: touching a second
        // instance must not evict the first one's lattice or plan.
        let mut other = inst.clone();
        other.relation_mut(0).add(vec![7, 7], 2).unwrap();
        session
            .local_sensitivity_sweep(&q, &other, &other.removal_edits())
            .unwrap();
        let (hits_before, _) = session.cache_stats();
        session.local_sensitivity_sweep(&q, &inst, &edits).unwrap();
        session
            .local_sensitivity_sweep(&q, &other, &other.removal_edits())
            .unwrap();
        let (hits_after, _) = session.cache_stats();
        assert!(
            hits_after >= hits_before + 2,
            "both instances must stay warm across interleaved sweeps"
        );
    }

    #[test]
    fn post_update_release_matches_a_cold_session() {
        let (q, base) = fixture();
        let params = PrivacyParams::new(1.0, 1e-5).unwrap();
        let warm = Session::sequential();
        let workload = warm.random_sign_workload(&q, 8, 3).unwrap();
        // Warm the session with a release, then stream a batch through it.
        let before = ReleaseRequest::new(&q, &base, &workload, params).with_seed(4);
        warm.release(&MultiTable::default(), &before).unwrap();
        let mut inst = base.clone();
        let mut batch = UpdateBatch::new();
        batch.insert(0, vec![7, 1], 2);
        batch.delete(1, vec![0, 0], 1);
        batch.insert(1, vec![1, 7], 1);
        let report = warm.apply_updates(&q, &mut inst, &batch).unwrap();
        assert!(report.warm, "the release left a warm slot to migrate");
        // The release over the maintained state is byte-identical to a cold
        // session over the plainly-updated instance, at the same seed.
        let mut cold_inst = base.clone();
        dpsyn_relational::apply_batch(&q, &mut cold_inst, &batch).unwrap();
        assert_eq!(inst, cold_inst);
        let request = ReleaseRequest::new(&q, &inst, &workload, params).with_seed(11);
        let via_warm = warm.release(&MultiTable::default(), &request).unwrap();
        let cold = Session::sequential();
        let cold_request = ReleaseRequest::new(&q, &cold_inst, &workload, params).with_seed(11);
        let via_cold = cold.release(&MultiTable::default(), &cold_request).unwrap();
        assert_eq!(via_warm.delta_tilde(), via_cold.delta_tilde());
        assert_eq!(
            via_warm.answer_all(&workload).unwrap().values(),
            via_cold.answer_all(&workload).unwrap().values()
        );
    }
}
