//! Cross-crate integration tests: full pipelines from data generation through
//! sensitivity analysis, release, and query answering.

use dpsyn::prelude::*;
use dpsyn_core::bounds;
use dpsyn_core::{HierarchicalRelease, ReleaseKind};
use dpsyn_noise::seeded_rng;
use dpsyn_pmw::PmwConfig;

fn fast_pmw() -> PmwConfig {
    PmwConfig {
        max_iterations: 20,
        ..PmwConfig::default()
    }
}

#[test]
fn two_table_pipeline_end_to_end() {
    let mut rng = seeded_rng(1);
    let (query, instance) = dpsyn::datagen::zipf_two_table(16, 200, 1.0, &mut rng);
    let workload = QueryFamily::random_sign(&query, 24, &mut rng).unwrap();
    let budget = PrivacyParams::new(1.0, 1e-6).unwrap();

    // The whole pipeline runs through one session: truth evaluation uses
    // the cached full join, the release runs via the Mechanism trait.
    let session = Session::new();
    let truth = session.answer_truth(&query, &instance, &workload).unwrap();
    let request = ReleaseRequest::new(&query, &instance, &workload, budget).with_seed(1);
    let release = session
        .release(&dpsyn_core::TwoTable::new(fast_pmw()), &request)
        .unwrap();
    assert_eq!(release.kind(), ReleaseKind::TwoTable);

    // Post-processing: answers come from the synthetic data only.
    let answers = release.answer_all(&workload).unwrap();
    assert_eq!(answers.len(), 24);

    // The measured error is finite and within a loose multiple of the paper's
    // upper bound (Theorem 3.3); the bound itself is asymptotic so we only
    // check the order of magnitude.
    let err = answers.linf_distance(&truth).unwrap();
    let ls = local_sensitivity(&query, &instance).unwrap() as f64;
    let bound = bounds::two_table_upper_bound(
        join_size(&query, &instance).unwrap() as f64,
        ls,
        budget.lambda(),
        query.schema().log2_full_domain(),
        workload.len(),
        budget.epsilon(),
        budget.delta(),
    );
    assert!(err.is_finite());
    assert!(err <= 10.0 * bound, "error {err} way above bound {bound}");
}

#[test]
fn uniformized_release_beats_or_matches_join_as_one_on_skewed_data() {
    // On the Example 4.2 family the uniformized algorithm should not be
    // (much) worse than join-as-one; on average it is better.  We compare
    // averaged errors over a few seeds to keep the test robust.
    //
    // Why k = 48: Example 4.2's gap between the two mechanisms scales with
    // the skew of the degree sequence (join-as-one's error tracks the *sum*
    // of squared degrees, uniformization's the largest uniformized bucket),
    // but both algorithms also pay a fixed, size-independent overhead —
    // budget halving plus the noisy bucket partition.  At k = 12 the
    // asymptotic advantage is the same order as that overhead, so the
    // err_uni/err_join ratio sits right at the assertion threshold and
    // crosses it on unlucky noise draws; k = 48 is the smallest member of
    // the family where the asymptotic term dominates and the ratio is
    // comfortably inside the bound for every seed below.
    //
    // Determinism: each mechanism draws from its own fixed-seed RNG.  With
    // a single shared RNG the uniformized release's noise depended on how
    // many draws the join-as-one release consumed before it — any internal
    // change to one mechanism reshuffled the other's noise, which is what
    // made this test flake.  Independent streams pin both error sums to
    // exact, reviewable values for all time.
    let (query, instance) = dpsyn::datagen::example42_instance(48);
    let budget = PrivacyParams::new(1.0, 1e-6).unwrap();
    let mut err_join = 0.0;
    let mut err_uni = 0.0;
    let reps = 3;
    for seed in 0..reps {
        let mut workload_rng = seeded_rng(100 + seed);
        let mut join_rng = seeded_rng(200 + seed);
        let mut uni_rng = seeded_rng(300 + seed);
        let workload = QueryFamily::random_sign(&query, 12, &mut workload_rng).unwrap();
        let truth = workload.answer_all_on_instance(&query, &instance).unwrap();
        let join = dpsyn_core::TwoTable::new(fast_pmw())
            .release(&query, &instance, &workload, budget, &mut join_rng)
            .unwrap();
        err_join += join
            .answer_all(&workload)
            .unwrap()
            .linf_distance(&truth)
            .unwrap();
        let uni = UniformizedTwoTable::new(fast_pmw())
            .release(&query, &instance, &workload, budget, &mut uni_rng)
            .unwrap();
        err_uni += uni
            .answer_all(&workload)
            .unwrap()
            .linf_distance(&truth)
            .unwrap();
        // The noisy partition always produces at least one bucket on non-empty
        // data (the exact bucket count is noise-dependent and is measured by
        // experiment E3 rather than asserted here).
        assert!(uni.parts() >= 1);
    }
    // Allow generous slack: the claim is about the asymptotic shape (the
    // experiment harness E3 measures the actual gap); the test only guards
    // against gross regressions in the uniformized pipeline.
    assert!(
        err_uni <= 4.0 * err_join,
        "uniformized {err_uni} much worse than join-as-one {err_join}"
    );
}

#[test]
fn multi_table_release_on_star_join_respects_sensitivity_ordering() {
    let mut rng = seeded_rng(5);
    let (query, instance) = dpsyn::datagen::random_star(3, 12, 60, 1.0, &mut rng);
    let budget = PrivacyParams::new(1.0, 1e-5).unwrap();
    let workload = QueryFamily::random_sign(&query, 8, &mut rng).unwrap();
    let session = Session::new();
    let request = ReleaseRequest::new(&query, &instance, &workload, budget).with_seed(5);
    let release = session
        .release(&MultiTable::new(fast_pmw()), &request)
        .unwrap();
    // Δ̃ ≥ RS^β ≥ LS ≥ 0 must hold along the whole chain; the sensitivity
    // probes reuse the lattice the release just populated.
    let beta = 1.0 / budget.lambda();
    assert!(session.cached_subjoins() > 0);
    let rs = session
        .residual_sensitivity(&query, &instance, beta)
        .unwrap()
        .value;
    let ls = session.local_sensitivity(&query, &instance).unwrap() as f64;
    assert!(release.delta_tilde() + 1e-9 >= rs.max(1.0));
    assert!(rs >= ls - 1e-9);
    assert!(release.noisy_total() >= session.join_size(&query, &instance).unwrap() as f64);
    // The session results equal the free-function ones.
    assert_eq!(
        rs,
        residual_sensitivity(&query, &instance, beta).unwrap().value
    );
    assert_eq!(ls, local_sensitivity(&query, &instance).unwrap() as f64);
    assert_eq!(
        session.join_size(&query, &instance).unwrap(),
        join_size(&query, &instance).unwrap()
    );
}

#[test]
fn hierarchical_release_works_on_scenario_data() {
    let mut rng = seeded_rng(9);
    let (query, instance) = dpsyn::datagen::retail_star(16, 60, &mut rng);
    assert!(query.is_hierarchical());
    let budget = PrivacyParams::new(2.0, 1e-4).unwrap();
    let workload = QueryFamily::random_sign(&query, 6, &mut rng).unwrap();
    let release = HierarchicalRelease::default()
        .release(&query, &instance, &workload, budget, &mut rng)
        .unwrap();
    assert!(release.parts() >= 1);
    let answers = release.answer_all(&workload).unwrap();
    assert!(answers.values().iter().all(|v| v.is_finite()));
}

#[test]
fn releases_are_reproducible_across_the_whole_stack() {
    let run = |seed: u64| {
        let mut rng = seeded_rng(seed);
        let (query, instance) = dpsyn::datagen::social_network(32, 150, 100, &mut rng);
        let workload = QueryFamily::random_sign(&query, 10, &mut rng).unwrap();
        let budget = PrivacyParams::new(1.0, 1e-6).unwrap();
        let session = Session::new();
        let request = ReleaseRequest::new(&query, &instance, &workload, budget).with_seed(seed);
        let release = session
            .release(&dpsyn_core::TwoTable::new(fast_pmw()), &request)
            .unwrap();
        release.answer_all(&workload).unwrap().values().to_vec()
    };
    assert_eq!(run(77), run(77));
    assert_ne!(run(77), run(78));
}

#[test]
fn figure_instances_match_their_stated_statistics() {
    // Figure 1: join sizes n² and 0 with equal input sizes.
    let (q, l, r) = dpsyn::datagen::fig1_pair(10);
    assert_eq!(join_size(&q, &l).unwrap(), 100);
    assert_eq!(join_size(&q, &r).unwrap(), 0);
    assert_eq!(l.input_size(), r.input_size());
    // Figure 3: local sensitivity equals the maximum degree.
    let (q, i) = dpsyn::datagen::fig3_nonuniform(6);
    assert_eq!(local_sensitivity(&q, &i).unwrap(), 6);
    // Figure 4 query is hierarchical with 5 relations.
    let q4 = dpsyn::datagen::fig4_query(4);
    assert_eq!(q4.num_relations(), 5);
    assert!(q4.is_hierarchical());
}
