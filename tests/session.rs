//! Session-API integration tests: the unified `Session::release` entry point
//! must be a *perfect* stand-in for the legacy per-algorithm paths — every
//! mechanism, byte for byte, at the same RNG seed — and the session's
//! persistent caches must never change results (warm ≡ cold).

use dpsyn::prelude::*;
use dpsyn_core::ReleaseKind;
use dpsyn_noise::seeded_rng;

/// A skewed two-table instance with enough structure that every mechanism
/// takes a non-trivial path (multiple degree buckets, non-unit frequencies).
fn two_table_fixture() -> (JoinQuery, Instance) {
    let q = JoinQuery::two_table(16, 16, 16);
    let mut inst = Instance::empty_for(&q).unwrap();
    for a in 0..10u64 {
        inst.relation_mut(0).add(vec![a, 0], 1).unwrap();
        inst.relation_mut(1).add(vec![0, a], 1).unwrap();
    }
    for b in 1..6u64 {
        inst.relation_mut(0).add(vec![b, b], 1 + b % 2).unwrap();
        inst.relation_mut(1).add(vec![b, b], 1).unwrap();
    }
    (q, inst)
}

/// A 3-star instance for the multi-table mechanisms.
fn star_fixture() -> (JoinQuery, Instance) {
    let q = JoinQuery::star(3, 8).unwrap();
    let mut inst = Instance::empty_for(&q).unwrap();
    for hub in 0..3u64 {
        for a in 0..3u64 {
            inst.relation_mut(0).add(vec![hub, a], 1).unwrap();
            inst.relation_mut(1).add(vec![hub, (a + 1) % 8], 1).unwrap();
            inst.relation_mut(2).add(vec![hub, a], 1 + hub % 2).unwrap();
        }
    }
    (q, inst)
}

/// Releases must match bit for bit: histogram cells and weights, noisy
/// total, Δ̃, parts, kind.
fn assert_releases_identical(a: &SyntheticRelease, b: &SyntheticRelease, label: &str) {
    assert_eq!(a.kind(), b.kind(), "{label}: kind");
    assert_eq!(a.parts(), b.parts(), "{label}: parts");
    assert!(
        a.delta_tilde().to_bits() == b.delta_tilde().to_bits(),
        "{label}: delta_tilde {} vs {}",
        a.delta_tilde(),
        b.delta_tilde()
    );
    assert!(
        a.noisy_total().to_bits() == b.noisy_total().to_bits(),
        "{label}: noisy_total {} vs {}",
        a.noisy_total(),
        b.noisy_total()
    );
    let ha = a.histogram();
    let hb = b.histogram();
    assert_eq!(ha.len(), hb.len(), "{label}: histogram size");
    for i in 0..ha.len() {
        assert_eq!(ha.tuple_of(i), hb.tuple_of(i), "{label}: cell {i}");
        assert!(
            ha.weights()[i].to_bits() == hb.weights()[i].to_bits(),
            "{label}: weight {i}: {} vs {}",
            ha.weights()[i],
            hb.weights()[i]
        );
    }
}

/// Every one of the six mechanisms produces byte-identical output through
/// `Session::release` and through its legacy direct `release(...)` call at
/// the same seed — on cold *and* warm sessions, across several seeds.
#[test]
fn all_six_mechanisms_are_byte_identical_via_session_and_legacy() {
    let (q2, inst2) = two_table_fixture();
    let (q3, inst3) = star_fixture();
    let params = PrivacyParams::new(1.0, 1e-5).unwrap();

    // (name, mechanism, query, instance): the two-table-only mechanisms run
    // on the two-table fixture, the general ones on the 3-star.
    let cases: Vec<(&str, Box<dyn Mechanism>, &JoinQuery, &Instance)> = vec![
        ("two_table", Box::new(TwoTable::default()), &q2, &inst2),
        ("multi_table", Box::new(MultiTable::default()), &q3, &inst3),
        (
            "uniformized_two_table",
            Box::new(UniformizedTwoTable::default()),
            &q2,
            &inst2,
        ),
        (
            "hierarchical",
            Box::new(HierarchicalRelease::default()),
            &q3,
            &inst3,
        ),
        (
            "flawed_join_as_one",
            Box::new(FlawedJoinAsOne::default()),
            &q2,
            &inst2,
        ),
        (
            "flawed_pad_after",
            Box::new(FlawedPadAfter::default()),
            &q2,
            &inst2,
        ),
    ];

    for (name, mechanism, query, instance) in &cases {
        let session = Session::sequential();
        for seed in [3u64, 19, 404] {
            let mut rng = seeded_rng(seed);
            let workload = QueryFamily::random_sign(query, 6, &mut rng).unwrap();
            let request = ReleaseRequest::new(query, instance, &workload, params).with_seed(seed);

            let legacy = legacy_release(name, query, instance, &workload, params, seed);
            let cold = session.release(mechanism.as_ref(), &request).unwrap();
            assert_releases_identical(&cold, &legacy, &format!("{name}/seed{seed}/cold"));
            // Second run on the now-warm session (lattice + full join
            // cached) must not change a single byte.
            let warm = session.release(mechanism.as_ref(), &request).unwrap();
            assert_releases_identical(&warm, &legacy, &format!("{name}/seed{seed}/warm"));
        }
    }
}

/// Runs the legacy (pre-Session) direct release path for a mechanism name.
fn legacy_release(
    name: &str,
    query: &JoinQuery,
    instance: &Instance,
    workload: &QueryFamily,
    params: PrivacyParams,
    seed: u64,
) -> SyntheticRelease {
    let mut rng = seeded_rng(seed);
    match name {
        "two_table" => TwoTable::default()
            .release(query, instance, workload, params, &mut rng)
            .unwrap(),
        "multi_table" => MultiTable::default()
            .release(query, instance, workload, params, &mut rng)
            .unwrap(),
        "uniformized_two_table" => UniformizedTwoTable::default()
            .release(query, instance, workload, params, &mut rng)
            .unwrap(),
        "hierarchical" => HierarchicalRelease::default()
            .release(query, instance, workload, params, &mut rng)
            .unwrap(),
        "flawed_join_as_one" => FlawedJoinAsOne::default()
            .release(query, instance, workload, params, &mut rng)
            .unwrap(),
        "flawed_pad_after" => FlawedPadAfter::default()
            .release(query, instance, workload, params, &mut rng)
            .unwrap(),
        other => panic!("unknown mechanism {other}"),
    }
}

/// A warm session's sensitivity sweep (the `2^m` lattice reused across β
/// values and across releases) matches a cold session exactly, and actually
/// hits the cache.
#[test]
fn warm_session_cache_matches_cold_session_on_sensitivity_sweeps() {
    let (q, inst) = star_fixture();
    let warm = Session::sequential();

    // Populate the lattice once via a release.
    let workload = warm.random_sign_workload(&q, 4, 1).unwrap();
    let params = PrivacyParams::new(1.0, 1e-5).unwrap();
    let request = ReleaseRequest::new(&q, &inst, &workload, params).with_seed(5);
    warm.release(&MultiTable::default(), &request).unwrap();
    let lattice_size = warm.cached_subjoins();
    assert!(lattice_size > 0, "release must persist the lattice");

    for &beta in &[0.05, 0.2, 0.7, 1.3] {
        let from_warm = warm.residual_sensitivity(&q, &inst, beta).unwrap();
        let from_cold = Session::sequential()
            .residual_sensitivity(&q, &inst, beta)
            .unwrap();
        assert_eq!(from_warm, from_cold, "beta {beta}");
        // The sweep reuses the lattice rather than regrowing it.
        assert_eq!(warm.cached_subjoins(), lattice_size, "beta {beta}");
    }
    assert_eq!(
        warm.local_sensitivity(&q, &inst).unwrap(),
        Session::sequential().local_sensitivity(&q, &inst).unwrap()
    );
    let (hits, _) = warm.cache_stats();
    assert!(hits >= 4, "sweep must hit the persistent cache, got {hits}");

    // Truth answering through the session's shared join matches the free
    // evaluation path bit for bit.
    let truth_warm = warm.answer_truth(&q, &inst, &workload).unwrap();
    let truth_free = workload.answer_all_on_instance(&q, &inst).unwrap();
    assert_eq!(truth_warm.values(), truth_free.values());
}

/// The per-query Laplace baseline through the session matches its legacy
/// direct call at the same seed.
#[test]
fn baseline_via_session_matches_legacy() {
    let (q, inst) = two_table_fixture();
    let session = Session::sequential();
    let params = PrivacyParams::new(1.0, 1e-5).unwrap();
    let workload = session.random_sign_workload(&q, 10, 2).unwrap();
    let request = ReleaseRequest::new(&q, &inst, &workload, params).with_seed(13);

    let via_session = session
        .answer_baseline(&IndependentLaplaceBaseline::default(), &request)
        .unwrap();
    let mut rng = seeded_rng(13);
    let legacy = IndependentLaplaceBaseline::default()
        .answer_all(&q, &inst, &workload, params, &mut rng)
        .unwrap();
    assert_eq!(via_session.values(), legacy.values());
    // Warm repeat: identical again.
    let again = session
        .answer_baseline(&IndependentLaplaceBaseline::default(), &request)
        .unwrap();
    assert_eq!(again.values(), legacy.values());
}

/// Mechanism metadata survives the trait object, and the request builder
/// round-trips its fields.
#[test]
fn request_builder_and_mechanism_names() {
    let (q, inst) = two_table_fixture();
    let workload = QueryFamily::counting(&q);
    let params = PrivacyParams::new(2.0, 1e-4).unwrap();
    let request = ReleaseRequest::new(&q, &inst, &workload, params).with_seed(42);
    assert_eq!(request.seed(), 42);
    assert_eq!(request.params().epsilon(), 2.0);
    assert_eq!(request.workload().len(), 1);

    let session = Session::sequential();
    let release = session.release(&TwoTable::default(), &request).unwrap();
    assert_eq!(release.kind(), ReleaseKind::TwoTable);
    let m: &dyn Mechanism = &UniformizedTwoTable::default();
    assert_eq!(m.name(), "uniformized_two_table");
}

/// The context's slot LRU under concurrent multi-instance pressure:
/// more live instances than slots, checked out and checked back in from
/// several threads at once, so evictions constantly race in-flight
/// checkouts.  Nothing may panic, every checkout must count as exactly one
/// hit or miss, the slot count must respect capacity, and a post-storm
/// checkout must still produce the exact cold-path lattice.
#[test]
fn concurrent_checkouts_race_lru_eviction_safely() {
    use dpsyn::relational::join_subset;
    use std::sync::Arc;

    // Four distinct star instances but only two cache slots: every round
    // of the working set forces evictions.
    let query = Arc::new(JoinQuery::star(3, 8).unwrap());
    let instances: Vec<Arc<Instance>> = (0..4u64)
        .map(|variant| {
            let mut inst = Instance::empty_for(&query).unwrap();
            for hub in 0..3u64 {
                for a in 0..3u64 {
                    inst.relation_mut(0).add(vec![hub, a], 1 + variant).unwrap();
                    inst.relation_mut(1)
                        .add(vec![hub, (a + variant) % 8], 1)
                        .unwrap();
                    inst.relation_mut(2).add(vec![hub, a], 1 + hub % 2).unwrap();
                }
            }
            Arc::new(inst)
        })
        .collect();
    let ctx = Arc::new(ExecContext::sequential().with_cache_slots(2));

    const THREADS: usize = 4;
    const ROUNDS: usize = 6;
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let ctx = Arc::clone(&ctx);
            let query = Arc::clone(&query);
            let instances = instances.clone();
            std::thread::spawn(move || {
                for round in 0..ROUNDS {
                    // Offset per thread so threads hit different slots at
                    // the same instant (maximising eviction races).
                    for i in 0..instances.len() {
                        let inst = &instances[(i + t + round) % instances.len()];
                        let cache = ctx.subjoin_cache(&query, inst).unwrap();
                        cache
                            .populate_proper_subsets(Parallelism::SEQUENTIAL)
                            .unwrap();
                        // The checked-out lattice stays valid even if the
                        // slot it came from is evicted concurrently.
                        assert!(cache.cached_count() > 0);
                        assert!(cache.get(0b011).is_some());
                        ctx.retain_subjoin_cache(cache);
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("no worker may panic");
    }

    // Consistency: every checkout counted exactly once, capacity held.
    let (hits, misses) = ctx.cache_stats();
    assert_eq!(
        (hits + misses) as usize,
        THREADS * ROUNDS * instances.len(),
        "each checkout increments exactly one of hits/misses"
    );
    assert!(misses >= 1, "cold start must miss");
    assert!(
        ctx.cached_instances() <= 2,
        "slot LRU exceeded its capacity"
    );

    // Correctness after the storm: a warm checkout's sub-joins are exactly
    // the cold path's.
    let cache = ctx.subjoin_cache(&query, &instances[0]).unwrap();
    cache
        .populate_proper_subsets(Parallelism::SEQUENTIAL)
        .unwrap();
    for mask in 1u32..0b111 {
        let rels: Vec<usize> = (0..3).filter(|r| mask & (1 << r) != 0).collect();
        let cold = join_subset(&query, &instances[0], &rels).unwrap();
        let warm = cache.get(mask).expect("populated mask");
        assert_eq!(warm.total(), cold.total(), "mask {mask:03b}: total weight");
        assert_eq!(
            warm.distinct_count(),
            cold.distinct_count(),
            "mask {mask:03b}: distinct tuples"
        );
    }
}
