//! Property-based integration tests over the whole stack: join algebra,
//! sensitivity invariants and partition invariants on randomly generated
//! instances.

use dpsyn::prelude::*;
use dpsyn_core::{partition_two_table, verify_two_table_partition};
use dpsyn_noise::seeded_rng;
use dpsyn_relational::NeighborEdit;
use dpsyn_sensitivity::ls_hat_k;
use proptest::prelude::*;

/// Builds a two-table instance from arbitrary (a, b) / (b, c) pairs over a
/// small domain.
fn instance_from_pairs(r1: &[(u8, u8)], r2: &[(u8, u8)]) -> (JoinQuery, Instance) {
    let query = JoinQuery::two_table(8, 8, 8);
    let mut inst = Instance::empty_for(&query).unwrap();
    for &(a, b) in r1 {
        inst.relation_mut(0)
            .add(vec![(a % 8) as u64, (b % 8) as u64], 1)
            .unwrap();
    }
    for &(b, c) in r2 {
        inst.relation_mut(1)
            .add(vec![(b % 8) as u64, (c % 8) as u64], 1)
            .unwrap();
    }
    (query, inst)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The join size always equals Σ_b deg1(b)·deg2(b) for two tables.
    #[test]
    fn join_size_matches_degree_formula(
        r1 in prop::collection::vec((0u8..8, 0u8..8), 0..40),
        r2 in prop::collection::vec((0u8..8, 0u8..8), 0..40),
    ) {
        let (query, inst) = instance_from_pairs(&r1, &r2);
        let shared = vec![AttrId(1)];
        let d1 = inst.relation(0).degree_map(&shared).unwrap();
        let d2 = inst.relation(1).degree_map(&shared).unwrap();
        let expected: u128 = d1
            .iter()
            .map(|(b, &f1)| f1 as u128 * d2.get(b).copied().unwrap_or(0) as u128)
            .sum();
        prop_assert_eq!(join_size(&query, &inst).unwrap(), expected);
    }

    /// Local sensitivity really bounds the join-size change of any single
    /// removal edit.
    #[test]
    fn local_sensitivity_bounds_single_edits(
        r1 in prop::collection::vec((0u8..8, 0u8..8), 1..30),
        r2 in prop::collection::vec((0u8..8, 0u8..8), 1..30),
    ) {
        let (query, inst) = instance_from_pairs(&r1, &r2);
        let ls = local_sensitivity(&query, &inst).unwrap();
        let base = join_size(&query, &inst).unwrap();
        for edit in inst.removal_edits() {
            let neighbor = inst.apply_edit(&edit).unwrap();
            let diff = join_size(&query, &neighbor).unwrap().abs_diff(base);
            prop_assert!(diff <= ls);
        }
    }

    /// Residual sensitivity dominates the local sensitivity of every instance
    /// within distance 1 discounted by e^{-β} (the smoothness property, tested
    /// through the L̂S^k characterisation).
    #[test]
    fn residual_sensitivity_dominates_discounted_neighborhoods(
        r1 in prop::collection::vec((0u8..8, 0u8..8), 1..20),
        r2 in prop::collection::vec((0u8..8, 0u8..8), 1..20),
        beta_pct in 5u32..100,
    ) {
        let (query, inst) = instance_from_pairs(&r1, &r2);
        let beta = beta_pct as f64 / 100.0;
        let rs = residual_sensitivity(&query, &inst, beta).unwrap().value;
        for k in 0..3u64 {
            let lsk = ls_hat_k(&query, &inst, k).unwrap();
            prop_assert!(rs + 1e-9 >= (-beta * k as f64).exp() * lsk);
        }
    }

    /// Residual sensitivity changes by at most e^{±β} across a neighbouring
    /// edit (β-smoothness, checked on an explicit random edit).
    #[test]
    fn residual_sensitivity_is_beta_smooth_across_one_edit(
        r1 in prop::collection::vec((0u8..8, 0u8..8), 1..20),
        r2 in prop::collection::vec((0u8..8, 0u8..8), 1..20),
        add_a in 0u8..8,
        add_b in 0u8..8,
    ) {
        let (query, inst) = instance_from_pairs(&r1, &r2);
        let beta = 0.25;
        let rs_here = residual_sensitivity(&query, &inst, beta).unwrap().value;
        let neighbor = inst
            .apply_edit(&NeighborEdit::Add {
                relation: 0,
                tuple: vec![(add_a % 8) as u64, (add_b % 8) as u64],
            })
            .unwrap();
        let rs_there = residual_sensitivity(&query, &neighbor, beta).unwrap().value;
        prop_assert!(rs_there <= beta.exp() * rs_here + 1e-9);
        prop_assert!(rs_here <= beta.exp() * rs_there + 1e-9);
    }

    /// Algorithm 5's partition always reassembles the original instance and
    /// never splits a join value across buckets.
    #[test]
    fn two_table_partition_is_a_partition(
        r1 in prop::collection::vec((0u8..8, 0u8..8), 0..30),
        r2 in prop::collection::vec((0u8..8, 0u8..8), 0..30),
        seed in 0u64..1000,
    ) {
        let (query, inst) = instance_from_pairs(&r1, &r2);
        let params = PrivacyParams::new(1.0, 1e-6).unwrap();
        let mut rng = seeded_rng(seed);
        let buckets = partition_two_table(&query, &inst, params, &mut rng).unwrap();
        prop_assert!(verify_two_table_partition(&inst, &buckets));
        let total: u128 = buckets
            .iter()
            .map(|b| join_size(&query, &b.sub_instance).unwrap())
            .sum();
        prop_assert_eq!(total, join_size(&query, &inst).unwrap());
    }

    /// Query answering is linear: answers over a histogram scale with the
    /// histogram (post-processing consistency of the released object).
    #[test]
    fn released_answers_are_linear_in_the_histogram(
        r1 in prop::collection::vec((0u8..8, 0u8..8), 1..20),
        r2 in prop::collection::vec((0u8..8, 0u8..8), 1..20),
        seed in 0u64..1000,
    ) {
        let (query, inst) = instance_from_pairs(&r1, &r2);
        let mut rng = seeded_rng(seed);
        let family = QueryFamily::random_sign(&query, 4, &mut rng).unwrap();
        let join = dpsyn_relational::join(&query, &inst).unwrap();
        let hist = Histogram::from_join(&query, &join, 1 << 20).unwrap();
        let answers = hist.answer_all(&query, &family).unwrap();
        let mut doubled = hist.clone();
        doubled.scale(2.0);
        let answers2 = doubled.answer_all(&query, &family).unwrap();
        for (a, b) in answers.iter().zip(answers2.iter()) {
            prop_assert!((2.0 * a - b).abs() < 1e-6);
        }
    }
}
