//! Property-based integration tests over the whole stack: join algebra,
//! hash-engine vs. naive-engine cross-checks, sensitivity invariants and
//! partition invariants on randomly generated instances.
//!
//! The environment has no crates.io access, so instead of `proptest` these
//! properties are exercised on seeded randomized instances drawn from
//! `dpsyn-datagen` (deterministic and reproducible: every failure reports
//! the case seed).

use dpsyn::prelude::*;
use dpsyn_core::{partition_two_table, verify_two_table_partition};
use dpsyn_datagen::{random_path, random_star, random_two_table, zipf_two_table};
use dpsyn_noise::seeded_rng;
use dpsyn_relational::naive::{all_boundary_values_naive, join_size_naive, join_subset_naive};
use dpsyn_relational::{
    deg_multi, deg_multi_cached, join_subset, NeighborEdit, ShardedSubJoinCache, SubJoinCache,
    Value,
};
use dpsyn_sensitivity::{
    all_boundary_values, candidate_edits, ls_hat_k, SensitivityConfig, SensitivityOps,
};
use std::sync::Arc;

const CASES: u64 = 24;

/// Builds a two-table instance from arbitrary (a, b) / (b, c) pairs over a
/// small domain.
fn instance_from_pairs(r1: &[(u8, u8)], r2: &[(u8, u8)]) -> (JoinQuery, Instance) {
    let query = JoinQuery::two_table(8, 8, 8);
    let mut inst = Instance::empty_for(&query).unwrap();
    for &(a, b) in r1 {
        inst.relation_mut(0)
            .add(vec![(a % 8) as u64, (b % 8) as u64], 1)
            .unwrap();
    }
    for &(b, c) in r2 {
        inst.relation_mut(1)
            .add(vec![(b % 8) as u64, (c % 8) as u64], 1)
            .unwrap();
    }
    (query, inst)
}

/// Draws a random small two-table instance (pair lists) from a seed.
fn random_pairs(seed: u64, max_len: usize) -> (JoinQuery, Instance) {
    use rand::Rng;
    let mut rng = seeded_rng(seed);
    let n1 = rng.random_range(0..max_len.max(1));
    let n2 = rng.random_range(0..max_len.max(1));
    let r1: Vec<(u8, u8)> = (0..n1)
        .map(|_| {
            (
                rng.random_range(0u64..8) as u8,
                rng.random_range(0u64..8) as u8,
            )
        })
        .collect();
    let r2: Vec<(u8, u8)> = (0..n2)
        .map(|_| {
            (
                rng.random_range(0u64..8) as u8,
                rng.random_range(0u64..8) as u8,
            )
        })
        .collect();
    instance_from_pairs(&r1, &r2)
}

/// Enumerates the non-empty sorted relation subsets of an m-relation query.
fn non_empty_subsets(m: usize) -> Vec<Vec<usize>> {
    (1u32..(1 << m))
        .map(|mask| (0..m).filter(|i| mask & (1 << i) != 0).collect())
        .collect()
}

// ---------------------------------------------------------------------------
// Hash engine vs. retained naive reference
// ---------------------------------------------------------------------------

/// The hash-join engine and the naive BTreeMap engine agree on every subset:
/// attribute lists, totals, per-tuple weights (iterated in the same sorted
/// order), and group-by maps over every attribute subset of the boundary.
#[test]
fn hash_join_matches_naive_reference_on_random_instances() {
    for seed in 0..CASES {
        // Mix shapes: uniform two-table, Zipf two-table, 3- and 4-star.
        let shapes: Vec<(JoinQuery, Instance)> = vec![
            random_two_table(16, 60, &mut seeded_rng(seed * 4)),
            zipf_two_table(16, 60, 1.2, &mut seeded_rng(seed * 4 + 1)),
            random_star(3, 8, 40, 1.0, &mut seeded_rng(seed * 4 + 2)),
            random_star(4, 8, 30, 1.1, &mut seeded_rng(seed * 4 + 3)),
        ];
        for (query, inst) in &shapes {
            for rels in non_empty_subsets(query.num_relations()) {
                let fast = join_subset(query, inst, &rels).unwrap();
                let slow = join_subset_naive(query, inst, &rels).unwrap();
                assert_eq!(fast.attrs(), slow.attrs(), "attrs differ, seed {seed}");
                assert_eq!(fast.total(), slow.total(), "totals differ, seed {seed}");
                assert_eq!(
                    fast.distinct_count(),
                    slow.distinct_count(),
                    "distinct counts differ, seed {seed}"
                );
                // Sorted emission must match the BTreeMap's natural order
                // tuple by tuple.
                let fast_tuples: Vec<(Vec<Value>, u128)> =
                    fast.iter().map(|(t, w)| (t.to_vec(), w)).collect();
                let slow_tuples: Vec<(Vec<Value>, u128)> =
                    slow.iter().map(|(t, w)| (t.clone(), w)).collect();
                assert_eq!(
                    fast_tuples, slow_tuples,
                    "tuple streams differ, seed {seed}"
                );
                // Group-by agrees on the boundary attributes.
                let boundary = query.boundary(&rels).unwrap();
                assert_eq!(
                    fast.group_by(&boundary).unwrap(),
                    slow.group_by(&boundary).unwrap(),
                    "group-by differs, seed {seed}"
                );
                assert_eq!(
                    fast.max_group_weight(&boundary).unwrap(),
                    slow.max_group_weight(&boundary).unwrap(),
                );
            }
        }
    }
}

/// The shared sub-join cache returns the same boundary values as recomputing
/// every subset from scratch with the naive engine.
#[test]
fn cached_boundary_values_match_naive_recomputation() {
    for seed in 0..CASES {
        let (query, inst) = random_star(4, 8, 25, 1.0, &mut seeded_rng(1000 + seed));
        let cached = all_boundary_values(&query, &inst).unwrap();
        let naive = all_boundary_values_naive(&query, &inst).unwrap();
        assert_eq!(cached, naive, "boundary values differ, seed {seed}");
    }
}

/// Cached multi-relation degree maps agree with the uncached definition.
#[test]
fn cached_degree_maps_match_uncached() {
    for seed in 0..CASES {
        let (query, inst) = random_star(3, 8, 30, 1.0, &mut seeded_rng(2000 + seed));
        let mut cache = SubJoinCache::new(&query, &inst).unwrap();
        let hub = vec![AttrId(0)];
        for rels in non_empty_subsets(query.num_relations()) {
            let plain = deg_multi(&query, &inst, &rels, &hub).unwrap();
            let cached = deg_multi_cached(&mut cache, &rels, &hub).unwrap();
            assert_eq!(plain, cached, "degree maps differ, seed {seed}");
        }
    }
}

/// Single-relation degree maps (used all over the release algorithms) match
/// a direct fold over the relation's tuples.
#[test]
fn degree_map_matches_direct_fold() {
    for seed in 0..CASES {
        let (query, inst) = random_pairs(3000 + seed, 50);
        let shared = vec![AttrId(1)];
        for r in 0..query.num_relations() {
            let rel = inst.relation(r);
            let pos = dpsyn_relational::project_positions(rel.attrs(), &shared).unwrap();
            let deg = rel.degree_map(&shared).unwrap();
            let mut expect: std::collections::BTreeMap<Vec<Value>, u64> = Default::default();
            for (t, f) in rel.iter() {
                *expect.entry(vec![t[pos[0]]]).or_insert(0) += f;
            }
            assert_eq!(deg, expect, "degree map differs, seed {seed}");
        }
    }
}

// ---------------------------------------------------------------------------
// Parallel execution layer: N threads ≡ 1 thread ≡ naive reference
// ---------------------------------------------------------------------------

/// Parallel joins are **byte-identical** to the sequential path — same
/// construction order, not merely the same weighted set — and both agree
/// with the naive `BTreeMap` oracle.  Instances are sized past the engine's
/// parallel-probe threshold so multi-thread runs really partition the loop.
#[test]
fn parallel_join_is_byte_identical_to_sequential_and_matches_naive() {
    for seed in 0..6u64 {
        let shapes: Vec<(JoinQuery, Instance)> = vec![
            zipf_two_table(64, 2500, 1.1, &mut seeded_rng(9000 + seed)),
            random_star(3, 16, 1400, 1.0, &mut seeded_rng(9100 + seed)),
        ];
        for (query, inst) in &shapes {
            let all: Vec<usize> = (0..query.num_relations()).collect();
            let seq = ExecContext::sequential()
                .join_subset(query, inst, &all)
                .unwrap();
            for threads in [2usize, 4, 8] {
                let par = ExecContext::with_threads(threads)
                    .join(query, inst)
                    .unwrap();
                assert_eq!(par.attrs(), seq.attrs(), "seed {seed}");
                let seq_rows: Vec<(&[Value], u128)> = seq.iter_unordered().collect();
                let par_rows: Vec<(&[Value], u128)> = par.iter_unordered().collect();
                assert_eq!(par_rows, seq_rows, "seed {seed}, threads {threads}");
            }
            // The sequential path itself agrees with the naive oracle.
            let naive = join_subset_naive(query, inst, &all).unwrap();
            assert_eq!(seq.total(), naive.total(), "seed {seed}");
            assert_eq!(seq.distinct_count(), naive.distinct_count(), "seed {seed}");
        }
    }
}

/// Residual sensitivity, its boundary values and local sensitivity agree
/// across every parallelism level.  Small instances (the seq-vs-naive
/// agreement is covered by `cached_boundary_values_match_naive_recomputation`)
/// exercise the small-instance sequential fallback; the large instances here
/// are sized past the engine's parallelism threshold so the sharded-cache
/// path really runs.
#[test]
fn parallel_sensitivity_matches_sequential_and_naive() {
    for seed in 0..3u64 {
        let (query, inst) = random_star(4, 64, 800, 0.5, &mut seeded_rng(9500 + seed));
        let beta = 0.1 + (seed as f64) / 10.0;
        let seq_ctx = SensitivityConfig::sequential().to_context();
        let seq_bv = all_boundary_values(&query, &inst).unwrap();
        let seq_rs = seq_ctx.residual_sensitivity(&query, &inst, beta).unwrap();
        let seq_ls = seq_ctx.local_sensitivity(&query, &inst).unwrap();
        for threads in [2usize, 4] {
            let ctx = SensitivityConfig::with_threads(threads).to_context();
            let par_bv = ctx.all_boundary_values(&query, &inst).unwrap();
            assert_eq!(par_bv, seq_bv, "seed {seed}, threads {threads}");
            let par_rs = ctx.residual_sensitivity(&query, &inst, beta).unwrap();
            assert_eq!(par_rs, seq_rs, "seed {seed}, threads {threads}");
            let par_ls = ctx.local_sensitivity(&query, &inst).unwrap();
            assert_eq!(par_ls, seq_ls, "seed {seed}, threads {threads}");
        }
        // On a deliberately small instance the same calls fall back to the
        // sequential path and still agree with the naive oracle.
        let (small_q, small_inst) = random_star(4, 8, 40, 1.0, &mut seeded_rng(9700 + seed));
        let small_bv = ExecContext::with_threads(4)
            .all_boundary_values(&small_q, &small_inst)
            .unwrap();
        assert_eq!(
            small_bv,
            all_boundary_values_naive(&small_q, &small_inst).unwrap(),
            "seed {seed}"
        );
    }
}

// ---------------------------------------------------------------------------
// Delta-join maintenance: delta ≡ full-rejoin ≡ naive
// ---------------------------------------------------------------------------

/// A mixed edit list for an instance: every removal plus a sample of the
/// candidate additions (the ones that can change degree structure).
fn sampled_edits(query: &JoinQuery, inst: &Instance) -> Vec<NeighborEdit> {
    let mut edits = inst.removal_edits();
    edits.extend(
        candidate_edits(query, inst)
            .unwrap()
            .into_iter()
            .filter(|e| !e.is_removal())
            .step_by(7),
    );
    edits
}

/// Delta-maintained join sizes after one edit agree with re-joining the
/// edited instance with the hash engine AND with the naive oracle, for
/// removals and additions across query shapes.
#[test]
fn delta_join_size_matches_rejoin_and_naive() {
    for seed in 0..8u64 {
        let shapes: Vec<(JoinQuery, Instance)> = vec![
            random_two_table(8, 40, &mut seeded_rng(11_000 + seed)),
            zipf_two_table(8, 40, 1.2, &mut seeded_rng(11_100 + seed)),
            random_star(3, 8, 25, 1.0, &mut seeded_rng(11_200 + seed)),
            random_star(4, 8, 18, 1.1, &mut seeded_rng(11_300 + seed)),
        ];
        for (query, inst) in &shapes {
            let ctx = ExecContext::sequential();
            let base = join_size(query, inst).unwrap();
            for edit in sampled_edits(query, inst) {
                let delta = ctx.join_size_delta(query, inst, &edit).unwrap();
                let neighbor = inst.apply_edit(&edit).unwrap();
                let rejoined = join_size(query, &neighbor).unwrap();
                assert_eq!(delta.apply(base), rejoined, "seed {seed}, edit {edit:?}");
                assert_eq!(
                    rejoined,
                    join_size_naive(query, &neighbor).unwrap(),
                    "seed {seed}, edit {edit:?}"
                );
            }
        }
    }
}

/// Delta-maintained local-sensitivity sweeps agree with the materializing
/// full-rejoin path and with the naive boundary-value oracle, at every
/// thread count.
#[test]
fn delta_local_sensitivity_sweep_matches_rejoin_and_naive() {
    for seed in 0..6u64 {
        let shapes: Vec<(JoinQuery, Instance)> = vec![
            random_two_table(8, 30, &mut seeded_rng(12_000 + seed)),
            random_star(3, 8, 20, 1.0, &mut seeded_rng(12_100 + seed)),
            random_star(4, 8, 14, 1.0, &mut seeded_rng(12_200 + seed)),
        ];
        for (query, inst) in &shapes {
            let edits = sampled_edits(query, inst);
            let ctx = SensitivityConfig::sequential().to_context();
            let delta = ctx.local_sensitivity_sweep(query, inst, &edits).unwrap();
            let rejoin = ctx
                .local_sensitivity_sweep_materializing(query, inst, &edits)
                .unwrap();
            assert_eq!(delta, rejoin, "seed {seed}");
            for threads in [2usize, 4] {
                let par = SensitivityConfig::with_threads(threads)
                    .to_context()
                    .local_sensitivity_sweep(query, inst, &edits)
                    .unwrap();
                assert_eq!(par, delta, "seed {seed}, threads {threads}");
            }
            // Naive oracle on a sample of the edits: LS(I') is the largest
            // boundary value over the size-(m-1) subsets of the edited
            // instance, computed from scratch with the BTreeMap engine.
            let m = query.num_relations();
            for (edit, ls) in edits.iter().zip(&delta).step_by(5) {
                let neighbor = inst.apply_edit(edit).unwrap();
                let naive_ls = all_boundary_values_naive(query, &neighbor)
                    .unwrap()
                    .into_iter()
                    .filter(|(subset, _)| subset.len() == m - 1)
                    .map(|(_, value)| value)
                    .max()
                    .unwrap_or(1);
                assert_eq!(*ls, naive_ls, "seed {seed}, edit {edit:?}");
            }
        }
    }
}

/// The delta-maintained smooth-sensitivity exploration is byte-identical to
/// the materializing oracle on random instances, at every thread count.
#[test]
fn delta_smooth_sensitivity_matches_materializing_oracle() {
    for seed in 0..4u64 {
        let (query, inst) = random_pairs(13_000 + seed, 14);
        let beta = 0.1 + (seed as f64) / 8.0;
        let oracle = SensitivityConfig::sequential()
            .to_context()
            .smooth_sensitivity_bruteforce_materializing(&query, &inst, beta, 2)
            .unwrap();
        for threads in [1usize, 2, 4] {
            let delta = SensitivityConfig::with_threads(threads)
                .to_context()
                .smooth_sensitivity_bruteforce(&query, &inst, beta, 2)
                .unwrap();
            assert_eq!(
                delta.to_bits(),
                oracle.to_bits(),
                "seed {seed}, threads {threads}"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Cost-based join planner: planner ≡ fixed-prefix ≡ naive
// ---------------------------------------------------------------------------

/// The planner-chosen decomposition produces exactly the same sub-join
/// values as the historical fixed-prefix chain and the naive `BTreeMap`
/// oracle — per subset, per boundary grouping — on chain, star and
/// skewed-degree instances; and the context entry points (which decompose
/// along the planner) return identical sensitivities warm and cold, at the
/// sequential and the environment-default parallelism (CI runs this suite
/// at `DPSYN_THREADS=1` and at the default count).
#[test]
fn planner_decomposition_matches_fixed_prefix_and_naive() {
    for seed in 0..5u64 {
        let shapes: Vec<(&str, (JoinQuery, Instance))> = vec![
            (
                "chain",
                random_path(4, 12, 36, 1.0, &mut seeded_rng(14_000 + seed)),
            ),
            (
                "star",
                random_star(4, 8, 24, 0.0, &mut seeded_rng(14_100 + seed)),
            ),
            (
                "skew",
                random_star(4, 8, 24, 1.8, &mut seeded_rng(14_200 + seed)),
            ),
        ];
        for (shape, (query, inst)) in shapes {
            let m = query.num_relations();
            let plan = Arc::new(JoinPlan::cost_based(&query, &inst).unwrap());
            let planned = ShardedSubJoinCache::with_plan(&query, &inst, Arc::clone(&plan)).unwrap();
            let fixed = ShardedSubJoinCache::new(&query, &inst).unwrap();
            for rels in non_empty_subsets(m) {
                let mask = planned.mask_of(&rels).unwrap();
                let a = planned.join_mask(mask, Parallelism::SEQUENTIAL).unwrap();
                let b = fixed.join_mask(mask, Parallelism::SEQUENTIAL).unwrap();
                let naive = join_subset_naive(&query, &inst, &rels).unwrap();
                assert_eq!(a.total(), naive.total(), "{shape}, seed {seed}");
                assert_eq!(
                    a.distinct_count(),
                    naive.distinct_count(),
                    "{shape}, seed {seed}"
                );
                // Planner and fixed-prefix agree as weighted tuple sets
                // (order-insensitive equality), and on every aggregate the
                // lattice consumers read.
                assert_eq!(a.as_ref(), b.as_ref(), "{shape}, seed {seed}");
                let boundary = query.boundary(&rels).unwrap();
                assert_eq!(
                    a.group_by(&boundary).unwrap(),
                    naive.group_by(&boundary).unwrap(),
                    "{shape}, seed {seed}"
                );
            }

            // Context entry points decompose along the planner; warm calls
            // must match cold calls, the fixed-prefix free functions, and
            // the naive oracle — at the sequential and the default
            // parallelism.
            let naive_bv = all_boundary_values_naive(&query, &inst).unwrap();
            let fixed_bv = all_boundary_values(&query, &inst).unwrap();
            assert_eq!(fixed_bv, naive_bv, "{shape}, seed {seed}");
            let beta = 0.15 + (seed as f64) / 10.0;
            for ctx in [ExecContext::sequential(), ExecContext::default()] {
                let cold_bv = ctx.all_boundary_values(&query, &inst).unwrap();
                assert_eq!(cold_bv, naive_bv, "{shape}, seed {seed} (cold)");
                let warm_bv = ctx.all_boundary_values(&query, &inst).unwrap();
                assert_eq!(warm_bv, cold_bv, "{shape}, seed {seed} (warm)");
                let cold_ls = ctx.local_sensitivity(&query, &inst).unwrap();
                assert_eq!(
                    cold_ls,
                    local_sensitivity(&query, &inst).unwrap(),
                    "{shape}, seed {seed}"
                );
                assert_eq!(
                    ctx.local_sensitivity(&query, &inst).unwrap(),
                    cold_ls,
                    "{shape}, seed {seed} (warm)"
                );
                let cold_rs = ctx.residual_sensitivity(&query, &inst, beta).unwrap();
                assert_eq!(
                    cold_rs,
                    residual_sensitivity(&query, &inst, beta).unwrap(),
                    "{shape}, seed {seed}"
                );
                assert_eq!(
                    ctx.residual_sensitivity(&query, &inst, beta).unwrap(),
                    cold_rs,
                    "{shape}, seed {seed} (warm)"
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Adaptive planner: sketch statistics + runtime-feedback re-optimization
// ---------------------------------------------------------------------------

/// The mergeable distinct sketch tracks exact distinct counts within the
/// HyperLogLog error envelope across five orders of magnitude, and its
/// merge is associative, commutative and idempotent — the properties that
/// make morsel-parallel gathering thread-count-invariant.
#[test]
fn distinct_sketch_is_accurate_and_merge_is_a_semilattice() {
    use dpsyn_relational::DistinctSketch;
    // With 2^12 registers the HLL standard error is 1.04/64 ≈ 1.6%; 8%
    // is a comfortable 5σ envelope (hashing is deterministic, so this is
    // a fixed property of each value stream, not a flaky draw).
    const TOLERANCE: f64 = 0.08;
    for seed in 0..4u64 {
        for n in [10u64, 100, 1_000, 10_000, 100_000, 1_000_000] {
            // n provably-distinct values (odd stride over u64), inserted
            // twice each so duplicate insertion is exercised at every size.
            let stride = 0x9E37_79B9_7F4A_7C15u64 | 1;
            let value = |i: u64| (seed << 32).wrapping_add(i).wrapping_mul(stride);
            let mut whole = DistinctSketch::new();
            for i in 0..n {
                whole.insert(value(i));
                whole.insert(value(i));
            }
            let est = whole.estimate() as f64;
            let rel_err = (est - n as f64).abs() / n as f64;
            assert!(
                rel_err <= TOLERANCE,
                "seed {seed}, n {n}: estimate {est} off by {rel_err}"
            );
            // Small streams stay exact (zero error below the cutover).
            if n <= 1_000 {
                assert!(whole.is_exact(), "seed {seed}, n {n}");
                assert_eq!(whole.estimate(), n, "seed {seed}, n {n}");
            }

            // Merge laws: split the stream into three uneven chunks and
            // recombine in every grouping/order — all equal the
            // single-stream sketch (associativity + commutativity), and
            // re-merging a part already absorbed changes nothing
            // (idempotence).
            let bounds = [0, n / 7, n / 2, n];
            let parts: Vec<DistinctSketch> = bounds
                .windows(2)
                .map(|w| {
                    let mut s = DistinctSketch::new();
                    for i in w[0]..w[1] {
                        s.insert(value(i));
                    }
                    s
                })
                .collect();
            let mut left = parts[0].clone();
            left.merge(&parts[1]);
            left.merge(&parts[2]);
            let mut right = parts[2].clone();
            right.merge(&parts[1]);
            right.merge(&parts[0]);
            let mut nested = parts[1].clone();
            nested.merge(&parts[2]);
            let mut outer = parts[0].clone();
            outer.merge(&nested);
            for (label, merged) in [("left", &left), ("right", &right), ("outer", &outer)] {
                assert_eq!(
                    merged.estimate(),
                    whole.estimate(),
                    "seed {seed}, n {n}: {label} merge order diverged"
                );
                assert_eq!(merged.is_exact(), whole.is_exact(), "seed {seed}, n {n}");
            }
            let before = left.estimate();
            left.merge(&parts[1]);
            assert_eq!(
                left.estimate(),
                before,
                "seed {seed}, n {n}: not idempotent"
            );
        }
    }
}

/// Adaptive planning (measure + re-plan) never changes observable bytes:
/// on the correlated workload that provably breaks independence estimates
/// and on the heavy-hitter skewed star, the adaptive populate produces the
/// same lattice as the static populate per mask, and the context entry
/// points (which measure and re-plan internally) match the naive oracle —
/// cold and warm, at 1/2/4/8 threads.
#[test]
fn adaptive_planning_is_byte_identical_to_static_and_naive() {
    use dpsyn_datagen::{correlated_pair, heavy_hitter_star};
    use dpsyn_relational::{PlanConfig, Schedule};
    for seed in 0..2u64 {
        let shapes: Vec<(&str, (JoinQuery, Instance))> = vec![
            (
                "correlated",
                correlated_pair(3, 48, 12, 256, 6, &mut seeded_rng(20_000 + seed)),
            ),
            (
                "skew",
                heavy_hitter_star(3, 24, 60, 0.5, &mut seeded_rng(20_100 + seed)),
            ),
        ];
        for (shape, (query, inst)) in &shapes {
            let m = query.num_relations();
            let naive_bv = all_boundary_values_naive(query, inst).unwrap();

            // Direct lattice check: adaptive populate ≡ static populate,
            // mask for mask, at every worker count — even with the ratio
            // dropped to 1 so every level re-plans.
            let plan = Arc::new(JoinPlan::cost_based(query, inst).unwrap());
            let static_cache =
                ShardedSubJoinCache::with_plan(query, inst, Arc::clone(&plan)).unwrap();
            static_cache
                .populate_proper_subsets(Parallelism::SEQUENTIAL)
                .unwrap();
            for threads in [1usize, 2, 4, 8] {
                for ratio in [1.0f64, 8.0] {
                    let mut adaptive =
                        ShardedSubJoinCache::with_plan(query, inst, Arc::clone(&plan)).unwrap();
                    let (_, replan) = adaptive
                        .populate_proper_subsets_adaptive(
                            Parallelism::threads(threads),
                            Schedule::Stealing,
                            &PlanConfig::with_replan_ratio(ratio),
                        )
                        .unwrap();
                    for mask in 1u32..((1u32 << m) - 1) {
                        assert_eq!(
                            adaptive.get(mask).expect("populated").as_ref(),
                            static_cache.get(mask).expect("populated").as_ref(),
                            "{shape}, seed {seed}, threads {threads}, ratio {ratio}, mask {mask:#b}"
                        );
                    }
                    assert_eq!(
                        replan.measured,
                        (1usize << m) - 2,
                        "{shape}, seed {seed}: every proper subset must be measured"
                    );
                    // The correlated shape's functional dependency guarantees
                    // a trigger at the default ratio.
                    if *shape == "correlated" {
                        assert!(
                            replan.replans >= 1,
                            "{shape}, seed {seed}, threads {threads}, ratio {ratio}: \
                             correlation trap did not trigger a re-plan"
                        );
                        assert!(replan.max_error >= 8.0, "{shape}, seed {seed}");
                    }
                }
            }

            // Context entry points measure and re-plan internally; cold and
            // warm answers match the naive oracle at every thread count.
            for threads in [1usize, 2, 4, 8] {
                let ctx = ExecContext::with_threads(threads).with_min_par_instance(1);
                let cold = ctx.all_boundary_values(query, inst).unwrap();
                assert_eq!(
                    cold, naive_bv,
                    "{shape}, seed {seed}, threads {threads} (cold)"
                );
                let warm = ctx.all_boundary_values(query, inst).unwrap();
                assert_eq!(
                    warm, naive_bv,
                    "{shape}, seed {seed}, threads {threads} (warm)"
                );
                assert_eq!(
                    ctx.local_sensitivity(query, inst).unwrap(),
                    local_sensitivity(query, inst).unwrap(),
                    "{shape}, seed {seed}, threads {threads}"
                );
            }
        }
    }
}

/// On the generated correlated workload, the adaptive transient walks (the
/// local-sensitivity access pattern) keep at least 1.5× fewer resident
/// intermediate tuples than the static plan — while returning identical
/// values.
#[test]
fn adaptive_transient_walks_cut_cached_tuples_on_correlated_workloads() {
    use dpsyn_datagen::correlated_pair;
    use dpsyn_relational::PlanConfig;
    for seed in 0..2u64 {
        let (query, inst) = correlated_pair(3, 64, 16, 512, 8, &mut seeded_rng(22_000 + seed));
        let m = query.num_relations();
        let plan = Arc::new(JoinPlan::cost_based(&query, &inst).unwrap());
        let static_cache =
            ShardedSubJoinCache::with_plan(&query, &inst, Arc::clone(&plan)).unwrap();
        let mut adaptive_cache =
            ShardedSubJoinCache::with_plan(&query, &inst, Arc::clone(&plan)).unwrap();
        let config = PlanConfig::with_replan_ratio(8.0);
        let full = (1u32 << m) - 1;
        for i in 0..m {
            let mask = full & !(1u32 << i);
            let s = static_cache
                .join_mask_transient(mask, Parallelism::SEQUENTIAL)
                .unwrap();
            let a = adaptive_cache
                .join_mask_transient_adaptive(mask, Parallelism::SEQUENTIAL, &config)
                .unwrap();
            assert_eq!(s, a, "seed {seed}, target {i}: values must not change");
        }
        assert!(
            adaptive_cache.replan_stats().map_or(0, |r| r.replans) >= 1,
            "seed {seed}: the correlation trap must trigger a re-plan"
        );
        let st = static_cache.cached_tuples();
        let ad = adaptive_cache.cached_tuples();
        assert!(
            2 * st >= 3 * ad,
            "seed {seed}: static keeps {st} resident tuples, adaptive {ad} — less than 1.5×"
        );
    }
}

/// Aggregate pushdown changes how terminal lattice masks are evaluated —
/// count-only folds behind a Bloom pre-filter instead of materialised tuples
/// — but never what they evaluate to: boundary values, residual sensitivity,
/// local sensitivity and join sizes are byte-identical across every
/// [`AggMode`], thread count and warm/cold state, and equal to the naive
/// oracle.  `AggMode::Never` *is* the materializing oracle; `Always` forces
/// the count-only fold even where `Auto` would serve warm tuples.
#[test]
fn aggregate_pushdown_is_byte_identical_to_materializing_and_naive() {
    use dpsyn_datagen::{correlated_pair, heavy_hitter_star};
    for seed in 0..2u64 {
        let shapes: Vec<(&str, (JoinQuery, Instance))> = vec![
            (
                "chain",
                random_path(3, 12, 40, 1.0, &mut seeded_rng(30_000 + seed)),
            ),
            (
                "star",
                random_star(3, 12, 40, 1.0, &mut seeded_rng(30_100 + seed)),
            ),
            (
                "skewed",
                heavy_hitter_star(3, 24, 60, 0.5, &mut seeded_rng(30_200 + seed)),
            ),
            (
                "correlated",
                correlated_pair(3, 48, 12, 256, 6, &mut seeded_rng(30_300 + seed)),
            ),
        ];
        for (shape, (query, inst)) in &shapes {
            let naive_bv = all_boundary_values_naive(query, inst).unwrap();
            let naive_size = join_size_naive(query, inst).unwrap();
            let oracle_rs = residual_sensitivity(query, inst, 0.4).unwrap();
            let oracle_ls = local_sensitivity(query, inst).unwrap();
            for mode in [AggMode::Never, AggMode::Auto, AggMode::Always] {
                for threads in [1usize, 2, 4, 8] {
                    let ctx = ExecContext::with_threads(threads)
                        .with_min_par_instance(1)
                        .with_plan_config(PlanConfig::default().with_agg_mode(mode));
                    let tag = format!("{shape}, seed {seed}, {mode:?}, threads {threads}");
                    let cold = ctx.all_boundary_values(query, inst).unwrap();
                    assert_eq!(cold, naive_bv, "{tag} (cold)");
                    // Warm reads hit whatever the slot retained — tuples,
                    // summaries or both — and must not drift.
                    let warm = ctx.all_boundary_values(query, inst).unwrap();
                    assert_eq!(warm, naive_bv, "{tag} (warm)");
                    assert_eq!(
                        ctx.residual_sensitivity(query, inst, 0.4).unwrap(),
                        oracle_rs,
                        "{tag}"
                    );
                    assert_eq!(
                        ctx.local_sensitivity(query, inst).unwrap(),
                        oracle_ls,
                        "{tag}"
                    );
                    assert_eq!(ctx.join_size(query, inst).unwrap(), naive_size, "{tag}");
                    if mode == AggMode::Never {
                        assert_eq!(
                            ctx.plan_stats(query, inst).unwrap().aggregated_masks,
                            0,
                            "{tag}: the materializing oracle must not aggregate"
                        );
                    }
                }
            }
        }
    }

    // Saturation: grouped weights clamp at u128::MAX on the count-only fold
    // exactly as on the materializing path.  Three u64::MAX·u64::MAX match
    // pairs land in one boundary group of the {0,1} sub-join, so its max
    // (= the local sensitivity of relation 2) saturates.
    let query = JoinQuery::path(3, 4).unwrap();
    let mut inst = Instance::empty_for(&query).unwrap();
    for v in 0..3u64 {
        inst.relation_mut(0).add(vec![v, 0], u64::MAX).unwrap();
    }
    inst.relation_mut(1).add(vec![0, 0], u64::MAX).unwrap();
    inst.relation_mut(2).add(vec![0, 0], 1).unwrap();
    let naive_bv = all_boundary_values_naive(&query, &inst).unwrap();
    assert_eq!(naive_bv[&vec![0usize, 1]], u128::MAX, "fixture saturates");
    for mode in [AggMode::Never, AggMode::Auto, AggMode::Always] {
        for threads in [1usize, 2, 4] {
            let ctx = ExecContext::with_threads(threads)
                .with_min_par_instance(1)
                .with_plan_config(PlanConfig::default().with_agg_mode(mode));
            assert_eq!(
                ctx.all_boundary_values(&query, &inst).unwrap(),
                naive_bv,
                "{mode:?}, threads {threads}"
            );
            assert_eq!(
                ctx.local_sensitivity(&query, &inst).unwrap(),
                u128::MAX,
                "{mode:?}, threads {threads}"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Join algebra
// ---------------------------------------------------------------------------

/// The join size always equals Σ_b deg1(b)·deg2(b) for two tables.
#[test]
fn join_size_matches_degree_formula() {
    for seed in 0..CASES {
        let (query, inst) = random_pairs(seed, 40);
        let shared = vec![AttrId(1)];
        let d1 = inst.relation(0).degree_map(&shared).unwrap();
        let d2 = inst.relation(1).degree_map(&shared).unwrap();
        let expected: u128 = d1
            .iter()
            .map(|(b, &f1)| f1 as u128 * d2.get(b).copied().unwrap_or(0) as u128)
            .sum();
        assert_eq!(join_size(&query, &inst).unwrap(), expected, "seed {seed}");
    }
}

// ---------------------------------------------------------------------------
// Sensitivity invariants
// ---------------------------------------------------------------------------

/// Local sensitivity really bounds the join-size change of any single
/// removal edit.
#[test]
fn local_sensitivity_bounds_single_edits() {
    for seed in 0..CASES {
        let (query, inst) = random_pairs(4000 + seed, 30);
        let ls = local_sensitivity(&query, &inst).unwrap();
        let base = join_size(&query, &inst).unwrap();
        for edit in inst.removal_edits() {
            let neighbor = inst.apply_edit(&edit).unwrap();
            let diff = join_size(&query, &neighbor).unwrap().abs_diff(base);
            assert!(diff <= ls, "seed {seed}: diff {diff} exceeds LS {ls}");
        }
    }
}

/// Residual sensitivity dominates the local sensitivity of every instance
/// within distance k discounted by e^{-βk} (the smoothness property, tested
/// through the L̂S^k characterisation).
#[test]
fn residual_sensitivity_dominates_discounted_neighborhoods() {
    for seed in 0..CASES {
        let (query, inst) = random_pairs(5000 + seed, 20);
        let beta = 0.05 + (seed as f64) / (CASES as f64);
        let rs = residual_sensitivity(&query, &inst, beta).unwrap().value;
        for k in 0..3u64 {
            let lsk = ls_hat_k(&query, &inst, k).unwrap();
            assert!(
                rs + 1e-9 >= (-beta * k as f64).exp() * lsk,
                "seed {seed}, k {k}"
            );
        }
    }
}

/// Residual sensitivity changes by at most e^{±β} across a neighbouring
/// edit (β-smoothness, checked on an explicit random edit).
#[test]
fn residual_sensitivity_is_beta_smooth_across_one_edit() {
    use rand::Rng;
    for seed in 0..CASES {
        let (query, inst) = random_pairs(6000 + seed, 20);
        let beta = 0.25;
        let mut rng = seeded_rng(60_000 + seed);
        let rs_here = residual_sensitivity(&query, &inst, beta).unwrap().value;
        let neighbor = inst
            .apply_edit(&NeighborEdit::Add {
                relation: 0,
                tuple: vec![rng.random_range(0u64..8), rng.random_range(0u64..8)],
            })
            .unwrap();
        let rs_there = residual_sensitivity(&query, &neighbor, beta).unwrap().value;
        assert!(rs_there <= beta.exp() * rs_here + 1e-9, "seed {seed}");
        assert!(rs_here <= beta.exp() * rs_there + 1e-9, "seed {seed}");
    }
}

// ---------------------------------------------------------------------------
// Partition and release invariants
// ---------------------------------------------------------------------------

/// Algorithm 5's partition always reassembles the original instance and
/// never splits a join value across buckets.
#[test]
fn two_table_partition_is_a_partition() {
    for seed in 0..CASES {
        let (query, inst) = random_pairs(7000 + seed, 30);
        let params = PrivacyParams::new(1.0, 1e-6).unwrap();
        let mut rng = seeded_rng(70_000 + seed);
        let buckets = partition_two_table(&query, &inst, params, &mut rng).unwrap();
        assert!(verify_two_table_partition(&inst, &buckets), "seed {seed}");
        let total: u128 = buckets
            .iter()
            .map(|b| join_size(&query, &b.sub_instance).unwrap())
            .sum();
        assert_eq!(total, join_size(&query, &inst).unwrap(), "seed {seed}");
    }
}

/// Query answering is linear: answers over a histogram scale with the
/// histogram (post-processing consistency of the released object).
#[test]
fn released_answers_are_linear_in_the_histogram() {
    for seed in 0..CASES {
        let (query, inst) = random_pairs(8000 + seed, 20);
        let mut rng = seeded_rng(80_000 + seed);
        let family = QueryFamily::random_sign(&query, 4, &mut rng).unwrap();
        let join = dpsyn_relational::join(&query, &inst).unwrap();
        let hist = Histogram::from_join(&query, &join, 1 << 20).unwrap();
        let answers = hist.answer_all(&query, &family).unwrap();
        let mut doubled = hist.clone();
        doubled.scale(2.0);
        let answers2 = doubled.answer_all(&query, &family).unwrap();
        for (a, b) in answers.iter().zip(answers2.iter()) {
            assert!((2.0 * a - b).abs() < 1e-6, "seed {seed}");
        }
    }
}

// ---------------------------------------------------------------------------
// Streaming updates: batch-maintained ≡ rebuilt ≡ naive
// ---------------------------------------------------------------------------

/// Semi-naive batch maintenance never changes observable bytes: after every
/// batch of a seeded update stream — pure inserts, pure deletes, and mixed —
/// the maintained context answers exactly like a cold context over a
/// rebuilt copy of the instance, which in turn matches the naive oracle.
/// Checked per mask (boundary values cover every lattice entry), on the
/// full join's sorted emission, at 1/2/4/8 threads, on warm and cold
/// contexts alike.
#[test]
fn stream_maintenance_is_byte_identical_to_rebuild_and_naive() {
    use dpsyn_datagen::{update_stream, UpdateStreamConfig};
    use dpsyn_relational::apply_batch;
    for seed in 0..1u64 {
        let shapes: Vec<(&str, (JoinQuery, Instance))> = vec![
            (
                "chain",
                random_path(3, 8, 30, 1.0, &mut seeded_rng(15_000 + seed)),
            ),
            (
                "star",
                random_star(3, 8, 30, 1.0, &mut seeded_rng(15_100 + seed)),
            ),
            (
                "skew",
                dpsyn_datagen::heavy_hitter_star(3, 16, 60, 0.5, &mut seeded_rng(15_200 + seed)),
            ),
        ];
        let kinds = [("add", 0.0f64), ("del", 1.0), ("mix", 0.5)];
        for (shape, (query, inst)) in &shapes {
            for (kind, delete_fraction) in kinds {
                let config = UpdateStreamConfig {
                    batches: 3,
                    batch_size: 8,
                    delete_fraction,
                    theta: 1.0,
                };
                let stream = update_stream(query, inst, config, &mut seeded_rng(15_300 + seed));
                for threads in [1usize, 2, 4, 8] {
                    let warm_ctx = ExecContext::with_threads(threads).with_min_par_instance(1);
                    let cold_ctx = ExecContext::with_threads(threads).with_min_par_instance(1);
                    // Warm one context on the initial instance; leave the
                    // other cold so both apply_updates paths run.
                    let mut live = inst.clone();
                    let _ = warm_ctx.all_boundary_values(query, &live).unwrap();
                    let mut cold_live = inst.clone();
                    let mut rebuilt = inst.clone();
                    for batch in &stream {
                        let report = warm_ctx.apply_updates(query, &mut live, batch).unwrap();
                        assert!(report.warm, "{shape}/{kind}: the warmed slot must migrate");
                        let cold_report = cold_ctx
                            .apply_updates(query, &mut cold_live, batch)
                            .unwrap();
                        // Rebuild oracle: plain mutation, no cache involved.
                        apply_batch(query, &mut rebuilt, batch).unwrap();
                        assert_eq!(live, rebuilt, "{shape}/{kind}, threads {threads}");
                        assert_eq!(cold_live, rebuilt, "{shape}/{kind}, threads {threads}");
                        assert_eq!(report.new_fingerprint, cold_report.new_fingerprint);

                        // Per mask: maintained boundary values ≡ freshly
                        // rebuilt lattice ≡ naive recomputation.
                        let maintained = warm_ctx.all_boundary_values(query, &live).unwrap();
                        let fresh = ExecContext::with_threads(threads)
                            .with_min_par_instance(1)
                            .all_boundary_values(query, &rebuilt)
                            .unwrap();
                        let naive = all_boundary_values_naive(query, &rebuilt).unwrap();
                        assert_eq!(
                            maintained, fresh,
                            "{shape}/{kind}, threads {threads} (maintained vs rebuilt)"
                        );
                        assert_eq!(
                            maintained, naive,
                            "{shape}/{kind}, threads {threads} (maintained vs naive)"
                        );
                        assert_eq!(
                            cold_ctx.all_boundary_values(query, &cold_live).unwrap(),
                            naive,
                            "{shape}/{kind}, threads {threads} (cold-path ctx vs naive)"
                        );

                        // Full join: the maintained entry emits the same
                        // sorted tuple stream as a cold re-join (physical
                        // layout may differ; emission order is the
                        // determinism contract).
                        let warm_join = warm_ctx.shared_join(query, &live).unwrap();
                        let cold_join = ExecContext::sequential().join(query, &rebuilt).unwrap();
                        assert_eq!(warm_join.total(), cold_join.total());
                        let warm_rows: Vec<(Vec<Value>, u128)> =
                            warm_join.iter().map(|(t, w)| (t.to_vec(), w)).collect();
                        let cold_rows: Vec<(Vec<Value>, u128)> =
                            cold_join.iter().map(|(t, w)| (t.to_vec(), w)).collect();
                        assert_eq!(
                            warm_rows, cold_rows,
                            "{shape}/{kind}, threads {threads} (full-join emission)"
                        );
                    }
                    // After the whole stream, sensitivities from the
                    // maintained context match a from-scratch computation.
                    assert_eq!(
                        warm_ctx.local_sensitivity(query, &live).unwrap(),
                        local_sensitivity(query, &rebuilt).unwrap(),
                        "{shape}/{kind}, threads {threads}"
                    );
                    assert_eq!(
                        warm_ctx.residual_sensitivity(query, &live, 0.2).unwrap(),
                        residual_sensitivity(query, &rebuilt, 0.2).unwrap(),
                        "{shape}/{kind}, threads {threads}"
                    );
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Morsel-driven work-stealing scheduler: stealing ≡ strided ≡ sequential ≡ naive
// ---------------------------------------------------------------------------

/// The skewed shapes the stealer exists for, plus the regular chain and star.
fn scheduler_shapes(seed: u64) -> Vec<(&'static str, JoinQuery, Instance)> {
    let (chain_q, chain_i) = random_path(3, 16, 500, 0.8, &mut seeded_rng(11_000 + seed));
    let (star_q, star_i) = random_star(3, 16, 600, 1.0, &mut seeded_rng(11_100 + seed));
    let (skew_q, skew_i) =
        dpsyn_datagen::heavy_hitter_star(3, 32, 220, 0.6, &mut seeded_rng(11_200 + seed));
    vec![
        ("chain", chain_q, chain_i),
        ("star", star_q, star_i),
        ("skewed", skew_q, skew_i),
    ]
}

/// Work-stealing, strided, sequential and naive evaluation agree
/// **byte-per-byte** at 1/2/4/8 threads on chain, star and heavy-hitter
/// skewed shapes, on cold and warm contexts alike.  `JoinResult` equality
/// compares the full columnar layout (flat row-major values plus weights),
/// so `assert_eq!` here really is a byte-level check, not just a multiset
/// check.
#[test]
fn work_stealing_is_byte_identical_to_strided_sequential_and_naive() {
    use dpsyn_relational::{exec, Schedule};
    for seed in 0..1u64 {
        for (shape, query, inst) in scheduler_shapes(seed) {
            let all: Vec<usize> = (0..query.num_relations()).collect();
            let seq = ExecContext::sequential().join(&query, &inst).unwrap();
            let naive = join_subset_naive(&query, &inst, &all).unwrap();
            assert_eq!(seq.total(), naive.total(), "{shape}, seed {seed}");
            assert_eq!(
                seq.distinct_count(),
                naive.distinct_count(),
                "{shape}, seed {seed}"
            );
            let m = query.num_relations();
            let mut seq_cache = SubJoinCache::new(&query, &inst).unwrap();
            for threads in [1usize, 2, 4, 8] {
                let par = Parallelism::threads(threads);
                // Cold context: the engine's default (stealing) join.
                let ctx = ExecContext::with_threads(threads).with_min_par_instance(1);
                let cold = ctx.join(&query, &inst).unwrap();
                assert_eq!(cold, seq, "{shape}, seed {seed}, threads {threads}");
                // The dictionary-encoded probe path is byte-identical too.
                let dict = ctx.join_dict(&query, &inst).unwrap();
                assert_eq!(dict, seq, "{shape} dict, seed {seed}, threads {threads}");
                // Lattice populate under stealing AND strided: every mask's
                // sub-join equals the sequential cache's, and every mask is
                // claimed exactly once.
                for sched in [Schedule::Stealing, Schedule::Strided] {
                    let sharded = ShardedSubJoinCache::new(&query, &inst).unwrap();
                    let stats = sharded.populate_proper_subsets_sched(par, sched).unwrap();
                    assert_eq!(
                        stats.total(),
                        (1usize << m) - 2,
                        "{shape}, seed {seed}, threads {threads}, {sched:?}"
                    );
                    for mask in 1u32..((1u32 << m) - 1) {
                        assert_eq!(
                            sharded.get(mask).expect("populated").as_ref(),
                            seq_cache.join_mask(mask).unwrap(),
                            "{shape}, mask {mask:#b}, threads {threads}, {sched:?}"
                        );
                    }
                }
                // Warm context: the cached shared join is the same bytes.
                let warm_first = ctx.shared_join(&query, &inst).unwrap();
                let warm_again = ctx.shared_join(&query, &inst).unwrap();
                assert_eq!(warm_first.as_ref(), &seq, "{shape} warm, threads {threads}");
                assert!(std::sync::Arc::ptr_eq(&warm_first, &warm_again));
            }
            // Morsel-level merge is order-stable down to morsel size 1 (the
            // maximal-interleaving case) under both schedules: per-morsel
            // row dumps concatenate to exactly the sequential emission.
            let rows: Vec<(Vec<Value>, u128)> = seq.iter().map(|(t, w)| (t.to_vec(), w)).collect();
            for threads in [1usize, 2, 4, 8] {
                for sched in [Schedule::Stealing, Schedule::Strided] {
                    for morsel in [1usize, 7, 64] {
                        let (parts, stats) = exec::par_map_morsels_stats(
                            Parallelism::threads(threads),
                            sched,
                            rows.len(),
                            morsel,
                            |r| rows[r].to_vec(),
                        );
                        let merged: Vec<(Vec<Value>, u128)> = parts.into_iter().flatten().collect();
                        assert_eq!(
                            merged, rows,
                            "{shape}, threads {threads}, morsel {morsel}, {sched:?}"
                        );
                        assert_eq!(stats.total(), rows.len().div_ceil(morsel).max(1));
                    }
                }
            }
        }
    }
}
