//! `dpsyn-serve` integration tests: the wire API end to end, admission
//! control, fault isolation, and — the heart of the matter — the
//! kill-and-restart matrix: the real binary is crashed at **every** ledger
//! failpoint mid-charge and restarted, and the recovered budgets must match
//! an *independent oracle replay* of the pre-restart ledger bytes bit for
//! bit.
//!
//! The oracle here deliberately re-implements record parsing and the
//! compensated accumulation from scratch (no `dpsyn_noise::ledger` calls),
//! so agreement is evidence about the protocol, not about one codebase
//! agreeing with itself.

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use dpsyn::server::{start, Json, ServerConfig};

// ---------------------------------------------------------------------------
// Wire helpers
// ---------------------------------------------------------------------------

/// One request over a fresh connection; `Err` when the server died mid-call
/// (expected at failpoints).
fn try_call(addr: &str, method: &str, path: &str, body: &str) -> std::io::Result<(u16, Json)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    // The body write may race an early error response (e.g. 413) — a write
    // failure is fine as long as a response can still be read.
    let _ = stream.write_all(body.as_bytes());
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let status: u16 = raw
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "no status line"))?;
    let body = raw
        .split("\r\n\r\n")
        .nth(1)
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "no body"))?;
    let json =
        Json::parse(body).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    Ok((status, json))
}

/// Like [`try_call`] but the server is expected to be alive.
fn call(addr: &str, method: &str, path: &str, body: &str) -> (u16, Json) {
    try_call(addr, method, path, body).expect("server alive")
}

fn spent_bits(body: &Json) -> (String, String) {
    let spent = body
        .get("budget")
        .and_then(|b| b.get("spent"))
        .expect("budget.spent");
    (
        spent
            .get("epsilon_bits")
            .and_then(Json::as_str)
            .unwrap()
            .to_string(),
        spent
            .get("delta_bits")
            .and_then(Json::as_str)
            .unwrap()
            .to_string(),
    )
}

fn remaining_epsilon(body: &Json) -> f64 {
    body.get("budget")
        .and_then(|b| b.get("remaining"))
        .and_then(|r| r.get("epsilon"))
        .and_then(Json::as_f64)
        .expect("budget.remaining.epsilon")
}

const TENANT_BODY: &str = r#"{"v":1,"tenant":"acme","epsilon":1.0,"delta":1e-6}"#;
const DATASET_BODY: &str = r#"{"v":1,"name":"demo","domains":[8,8,8],
    "relations":[{"attrs":[0,1],"tuples":[[[1,2],3],[[4,2],1],[[5,6],2]]},
                 {"attrs":[1,2],"tuples":[[[2,7],2],[[6,0],1]]}]}"#;

fn release_body(epsilon: f64, delta: f64) -> String {
    format!(
        r#"{{"v":1,"tenant":"acme","dataset":"demo","mechanism":"two_table",
            "epsilon":{epsilon},"delta":{delta},"seed":7,"workload_size":16,"workload_seed":7}}"#
    )
}

// ---------------------------------------------------------------------------
// Child-process helpers (the real binary, for crash tests)
// ---------------------------------------------------------------------------

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dpsyn-serve-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Spawns the real `dpsyn_serve` binary against `data_dir`, optionally with
/// a failpoint armed, and waits for its `endpoint` file.
fn spawn_server(data_dir: &Path, failpoint: Option<&str>) -> (Child, String) {
    let endpoint = data_dir.join("endpoint");
    let _ = std::fs::remove_file(&endpoint);
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_dpsyn_serve"));
    cmd.env("DPSYN_DATA_DIR", data_dir)
        .env("DPSYN_ADDR", "127.0.0.1:0")
        .env_remove("DPSYN_FAILPOINT")
        .stdout(Stdio::null())
        .stderr(Stdio::null());
    if let Some(site) = failpoint {
        cmd.env("DPSYN_FAILPOINT", site);
    }
    let child = cmd.spawn().expect("spawn dpsyn_serve");
    let deadline = Instant::now() + Duration::from_secs(30);
    let addr = loop {
        if let Ok(addr) = std::fs::read_to_string(&endpoint) {
            if !addr.is_empty() {
                break addr;
            }
        }
        assert!(
            Instant::now() < deadline,
            "server never wrote its endpoint file"
        );
        std::thread::sleep(Duration::from_millis(10));
    };
    (child, addr)
}

/// Waits (bounded) for a child to exit, returning its status.
fn wait_exit(child: &mut Child) -> std::process::ExitStatus {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if let Some(status) = child.try_wait().expect("try_wait") {
            return status;
        }
        assert!(Instant::now() < deadline, "child did not exit in time");
        std::thread::sleep(Duration::from_millis(10));
    }
}

// ---------------------------------------------------------------------------
// The independent oracle
// ---------------------------------------------------------------------------

/// Neumaier-compensated sum, re-implemented here on purpose (see module
/// docs): must perform the same operations in the same order as the
/// server's accumulation to predict its results bit for bit.
#[derive(Clone, Copy, Default)]
struct OracleSum {
    sum: f64,
    compensation: f64,
}

impl OracleSum {
    fn add(&mut self, x: f64) {
        let t = self.sum + x;
        if self.sum.abs() >= x.abs() {
            self.compensation += (self.sum - t) + x;
        } else {
            self.compensation += (x - t) + self.sum;
        }
        self.sum = t;
    }
    fn value(self) -> f64 {
        self.sum + self.compensation
    }
}

/// Replays raw ledger bytes by hand and returns the tenant's post-recovery
/// spend — committed charges in record order, then pending intents
/// (conservatively spent) in sequence order — as exact bit patterns.
///
/// Trailing bytes after the last newline, or an unparseable final line, are
/// a torn tail and dropped, mirroring the server's stated recovery policy.
fn oracle_spent_bits(bytes: &[u8], tenant: &str) -> (String, String) {
    let text_lines: Vec<&[u8]> = {
        let mut lines = Vec::new();
        let mut start = 0usize;
        for (i, &b) in bytes.iter().enumerate() {
            if b == b'\n' {
                lines.push(&bytes[start..i]);
                start = i + 1;
            }
        }
        // Bytes after the final newline: torn tail, ignored.
        lines
    };
    let mut pending: BTreeMap<u64, (f64, f64)> = BTreeMap::new();
    let mut eps = OracleSum::default();
    let mut delta = OracleSum::default();
    let last = text_lines.len();
    for (idx, raw) in text_lines.iter().enumerate() {
        let parsed = std::str::from_utf8(raw).ok().and_then(|line| {
            let fields: Vec<&str> = line.split(' ').collect();
            // fields[0] is the CRC; the oracle checks shape, not checksums
            // (checksums are the server's concern — the oracle answers
            // "what spend do these bytes imply").
            match fields.as_slice() {
                ["G" | "I" | "C" | "A", ..] => None, // missing CRC prefix: malformed
                [_crc, "G", t, _e, _d] if *t == tenant => Some(("G", 0u64, 0.0, 0.0)),
                [_crc, "I", t, seq, e, d, _label] if *t == tenant => {
                    let seq = seq.parse().ok()?;
                    let e = f64::from_bits(u64::from_str_radix(e, 16).ok()?);
                    let d = f64::from_bits(u64::from_str_radix(d, 16).ok()?);
                    Some(("I", seq, e, d))
                }
                [_crc, "C", t, seq] if *t == tenant => Some(("C", seq.parse().ok()?, 0.0, 0.0)),
                [_crc, "A", t, seq] if *t == tenant => Some(("A", seq.parse().ok()?, 0.0, 0.0)),
                [_crc, "G" | "I" | "C" | "A", ..] => Some(("other", 0, 0.0, 0.0)),
                _ => None,
            }
        });
        match parsed {
            Some(("I", seq, e, d)) => {
                pending.insert(seq, (e, d));
            }
            Some(("C", seq, _, _)) => {
                if let Some((e, d)) = pending.remove(&seq) {
                    eps.add(e);
                    delta.add(d);
                }
            }
            Some(("A", seq, _, _)) => {
                pending.remove(&seq);
            }
            Some(_) => {}
            None if idx + 1 == last => {} // torn final line: dropped
            None => panic!("oracle: malformed non-final record {}", idx + 1),
        }
    }
    // Conservative resolution of whatever is still pending, in seq order.
    for (_, (e, d)) in pending {
        eps.add(e);
        delta.add(d);
    }
    (
        format!("{:016x}", eps.value().to_bits()),
        format!("{:016x}", delta.value().to_bits()),
    )
}

// ---------------------------------------------------------------------------
// In-process wire tests (fast: no child process)
// ---------------------------------------------------------------------------

#[test]
fn wire_end_to_end_admission_and_reproducibility() {
    let dir = temp_dir("e2e");
    let handle = start(ServerConfig::new(&dir)).unwrap();
    let addr = handle.addr.to_string();

    // Health before any state.
    let (status, body) = call(&addr, "GET", "/healthz", "");
    assert_eq!(status, 200);
    assert_eq!(body.get("ok"), Some(&Json::Bool(true)));

    // Tenant + dataset.
    assert_eq!(call(&addr, "POST", "/v1/tenant", TENANT_BODY).0, 200);
    assert_eq!(call(&addr, "POST", "/v1/dataset", DATASET_BODY).0, 200);

    // Releases are reproducible: same seed, same answers, bit for bit.
    let (s1, r1) = call(&addr, "POST", "/v1/release", &release_body(0.3, 1e-7));
    let (s2, r2) = call(&addr, "POST", "/v1/release", &release_body(0.3, 1e-7));
    assert_eq!((s1, s2), (200, 200), "{r1:?} {r2:?}");
    assert_eq!(
        r1.get("result").and_then(|r| r.get("answers")),
        r2.get("result").and_then(|r| r.get("answers")),
        "same seed must answer identically"
    );

    // Admission control: the next 0.5 does not fit 1.0 - 0.6; the refusal
    // costs nothing (remaining unchanged, no pending charge).
    let before = call(&addr, "GET", "/v1/tenant/acme", "").1;
    let (status, body) = call(&addr, "POST", "/v1/release", &release_body(0.5, 1e-7));
    assert_eq!(status, 429, "{body:?}");
    assert_eq!(
        body.get("error")
            .and_then(|e| e.get("code"))
            .and_then(Json::as_str),
        Some("budget_exhausted")
    );
    let after = call(&addr, "GET", "/v1/tenant/acme", "").1;
    assert_eq!(
        spent_bits(&before),
        spent_bits(&after),
        "a 429 must cost nothing"
    );
    assert_eq!(remaining_epsilon(&after), remaining_epsilon(&before));

    // A fitting charge still goes through afterwards.
    let (status, _) = call(&addr, "POST", "/v1/release", &release_body(0.4, 1e-7));
    assert_eq!(status, 200);

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// The streaming-updates route: a batch posted to a warm dataset is
/// delta-maintained in place, and a release over the updated dataset is
/// byte-identical to one over a freshly uploaded copy of the same data.
#[test]
fn wire_updates_maintain_warm_state_and_preserve_release_bytes() {
    let dir = temp_dir("updates");
    let handle = start(ServerConfig::new(&dir)).unwrap();
    let addr = handle.addr.to_string();
    assert_eq!(call(&addr, "POST", "/v1/tenant", TENANT_BODY).0, 200);
    assert_eq!(call(&addr, "POST", "/v1/dataset", DATASET_BODY).0, 200);

    // Warm the dataset's context with one release.  `multi_table` is the
    // mechanism that populates the cached sub-join lattice (via residual
    // sensitivity), so it is the one whose warm state maintenance migrates.
    let release = |dataset: &str| {
        release_body(0.2, 1e-7)
            .replace("two_table", "multi_table")
            .replace("\"demo\"", &format!("{dataset:?}"))
    };
    assert_eq!(call(&addr, "POST", "/v1/release", &release("demo")).0, 200);
    let fp_before = call(&addr, "GET", "/v1/dataset/demo", "")
        .1
        .get("fingerprint")
        .and_then(Json::as_str)
        .unwrap()
        .to_string();

    // A mixed batch: two inserts and a delete.
    let update_body = r#"{"v":1,"updates":[
        {"relation":0,"op":"insert","tuple":[3,2],"count":2},
        {"relation":1,"op":"delete","tuple":[6,0]},
        {"relation":1,"op":"insert","tuple":[2,5]}]}"#;
    let (status, body) = call(&addr, "POST", "/v1/dataset/demo/updates", update_body);
    assert_eq!(status, 200, "{body:?}");
    assert_eq!(body.get("ops").and_then(Json::as_f64), Some(3.0));
    let maintenance = body.get("maintenance").expect("maintenance block");
    assert_eq!(
        maintenance.get("warm"),
        Some(&Json::Bool(true)),
        "the released-over dataset must have a warm slot to migrate"
    );
    assert_eq!(
        body.get("previous_fingerprint").and_then(Json::as_str),
        Some(fp_before.as_str())
    );
    let fp_after = body
        .get("fingerprint")
        .and_then(Json::as_str)
        .unwrap()
        .to_string();
    assert_ne!(fp_after, fp_before);
    assert_eq!(
        call(&addr, "GET", "/v1/dataset/demo", "")
            .1
            .get("fingerprint")
            .and_then(Json::as_str),
        Some(fp_after.as_str())
    );

    // Release over the maintained dataset...
    let (status, warm_release) = call(&addr, "POST", "/v1/release", &release("demo"));
    assert_eq!(status, 200);

    // ...and over a freshly uploaded copy of the *updated* contents.
    let fresh = r#"{"v":1,"name":"demo2","domains":[8,8,8],
        "relations":[{"attrs":[0,1],"tuples":[[[1,2],3],[[3,2],2],[[4,2],1],[[5,6],2]]},
                     {"attrs":[1,2],"tuples":[[[2,5],1],[[2,7],2]]}]}"#;
    assert_eq!(call(&addr, "POST", "/v1/dataset", fresh).0, 200);
    let (status, cold_release) = call(&addr, "POST", "/v1/release", &release("demo2"));
    assert_eq!(status, 200);
    assert_eq!(
        warm_release.get("result"),
        cold_release.get("result"),
        "maintained state must release the same bytes as a cold upload"
    );

    // Rejections: a delete that underflows, an unknown dataset, a wrong
    // method, an empty batch — none of them change the dataset.
    let underflow = r#"{"v":1,"updates":[{"relation":0,"op":"delete","tuple":[1,2],"count":9}]}"#;
    let (status, body) = call(&addr, "POST", "/v1/dataset/demo/updates", underflow);
    assert_eq!(status, 400, "{body:?}");
    assert_eq!(
        call(&addr, "POST", "/v1/dataset/nope/updates", update_body).0,
        404
    );
    assert_eq!(call(&addr, "GET", "/v1/dataset/demo/updates", "").0, 405);
    assert_eq!(
        call(
            &addr,
            "POST",
            "/v1/dataset/demo/updates",
            r#"{"v":1,"updates":[]}"#
        )
        .0,
        400
    );
    assert_eq!(
        call(&addr, "GET", "/v1/dataset/demo", "")
            .1
            .get("fingerprint")
            .and_then(Json::as_str),
        Some(fp_after.as_str()),
        "rejected updates must not change the dataset"
    );

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn wire_rejects_bad_requests_cheaply() {
    let dir = temp_dir("reject");
    let handle = start(ServerConfig::new(&dir)).unwrap();
    let addr = handle.addr.to_string();
    assert_eq!(call(&addr, "POST", "/v1/tenant", TENANT_BODY).0, 200);
    assert_eq!(call(&addr, "POST", "/v1/dataset", DATASET_BODY).0, 200);

    // Version gate.
    let (status, body) = call(
        &addr,
        "POST",
        "/v1/tenant",
        r#"{"v":2,"tenant":"x","epsilon":1.0,"delta":0}"#,
    );
    assert_eq!(status, 400);
    assert_eq!(
        body.get("error")
            .and_then(|e| e.get("code"))
            .and_then(Json::as_str),
        Some("unsupported_version")
    );

    // The flawed strawmen must not be routable.
    let flawed = release_body(0.1, 1e-8).replace("two_table", "flawed_join_as_one");
    let (status, body) = call(&addr, "POST", "/v1/release", &flawed);
    assert_eq!(status, 400);
    assert_eq!(
        body.get("error")
            .and_then(|e| e.get("code"))
            .and_then(Json::as_str),
        Some("unknown_mechanism")
    );

    // Unknown tenant / dataset; malformed routes and methods.
    let ghost = release_body(0.1, 1e-8).replace("acme", "ghost");
    assert_eq!(call(&addr, "POST", "/v1/release", &ghost).0, 404);
    let nods = release_body(0.1, 1e-8).replace("demo", "nope");
    assert_eq!(call(&addr, "POST", "/v1/release", &nods).0, 404);
    assert_eq!(call(&addr, "GET", "/v1/unknown", "").0, 404);
    assert_eq!(call(&addr, "DELETE", "/v1/tenant", "").0, 405);
    assert_eq!(call(&addr, "POST", "/v1/tenant", "not json").0, 400);

    // Negative ε is rejected before any ledger write.
    let neg = release_body(-0.5, 1e-8);
    assert_eq!(call(&addr, "POST", "/v1/release", &neg).0, 400);

    // None of the rejections charged anything.
    let view = call(&addr, "GET", "/v1/tenant/acme", "").1;
    assert_eq!(remaining_epsilon(&view), 1.0);

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn wire_bounds_request_bodies() {
    let dir = temp_dir("bounds");
    let mut config = ServerConfig::new(&dir);
    config.max_body_bytes = 512;
    let handle = start(config).unwrap();
    let addr = handle.addr.to_string();

    let huge = format!(
        r#"{{"v":1,"tenant":"t","epsilon":1.0,"delta":0,"pad":"{}"}}"#,
        "x".repeat(4096)
    );
    let (status, _) = call(&addr, "POST", "/v1/tenant", &huge);
    assert_eq!(status, 413);

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// The kill-and-restart failpoint matrix
// ---------------------------------------------------------------------------

/// Crash the real binary at every ledger failpoint mid-charge; recovered
/// budgets must match the independent oracle bit for bit, and each site's
/// conservative semantics must hold.
#[test]
fn killed_at_every_failpoint_recovers_to_oracle_state() {
    // (site, does the 0.3 charge survive the crash as spent?)
    let matrix = [
        ("ledger_pre_intent", false),
        ("ledger_mid_intent", false),
        ("ledger_post_intent", true),
        ("ledger_pre_commit", true),
        ("ledger_mid_commit", true),
        ("ledger_post_commit", true),
    ];
    for (site, charge_survives) in matrix {
        let dir = temp_dir(&format!("fp-{site}"));

        // Phase 1: a clean server; set up a tenant with one committed
        // charge so recovery has non-trivial prior state.
        let (mut child, addr) = spawn_server(&dir, None);
        assert_eq!(
            call(&addr, "POST", "/v1/tenant", TENANT_BODY).0,
            200,
            "{site}"
        );
        assert_eq!(
            call(&addr, "POST", "/v1/dataset", DATASET_BODY).0,
            200,
            "{site}"
        );
        let (status, _) = call(&addr, "POST", "/v1/release", &release_body(0.2, 1e-7));
        assert_eq!(status, 200, "{site}: setup release");
        child.kill().expect("kill setup server");
        let _ = child.wait();

        // Phase 2: restart with the failpoint armed; the next charge must
        // crash the process at the armed instant.
        let (mut child, addr) = spawn_server(&dir, Some(site));
        assert_eq!(
            call(&addr, "POST", "/v1/dataset", DATASET_BODY).0,
            200,
            "{site}"
        );
        let result = try_call(&addr, "POST", "/v1/release", &release_body(0.3, 1e-7));
        assert!(
            result.is_err(),
            "{site}: the armed server must die mid-request, got {result:?}"
        );
        let status = wait_exit(&mut child);
        assert!(!status.success(), "{site}: must have aborted");

        // The oracle reads the post-crash bytes and predicts recovery.
        let bytes = std::fs::read(dir.join("ledger.log")).expect("ledger exists");
        let (oracle_eps, oracle_delta) = oracle_spent_bits(&bytes, "acme");

        // Phase 3: clean restart; recovered spend must equal the oracle's
        // prediction exactly.
        let (mut child, addr) = spawn_server(&dir, None);
        let (status, view) = call(&addr, "GET", "/v1/tenant/acme", "");
        assert_eq!(status, 200, "{site}");
        let (got_eps, got_delta) = spent_bits(&view);
        assert_eq!(got_eps, oracle_eps, "{site}: recovered ε bits != oracle");
        assert_eq!(
            got_delta, oracle_delta,
            "{site}: recovered δ bits != oracle"
        );

        // Site semantics: before the intent is durable the charge vanishes;
        // from the moment it is durable it burns, conservatively.
        let spent_eps = view
            .get("budget")
            .and_then(|b| b.get("spent"))
            .and_then(|s| s.get("epsilon"))
            .and_then(Json::as_f64)
            .unwrap();
        let expected: f64 = if charge_survives { 0.2 + 0.3 } else { 0.2 };
        assert_eq!(
            spent_eps.to_bits(),
            expected.to_bits(),
            "{site}: conservative semantics (spent ε = {spent_eps}, expected {expected})"
        );

        // And the tenant can still spend exactly what genuinely remains.
        let probe = 1.0 - expected;
        let (status, _) = call(&addr, "POST", "/v1/dataset", DATASET_BODY);
        assert_eq!(status, 200, "{site}");
        let (status, _) = call(
            &addr,
            "POST",
            "/v1/release",
            &release_body(probe + 0.05, 1e-8),
        );
        assert_eq!(status, 429, "{site}: over-remaining must be refused");
        let (status, _) = call(&addr, "POST", "/v1/release", &release_body(probe, 1e-8));
        assert_eq!(status, 200, "{site}: exactly-remaining must fit");

        child.kill().expect("kill verify server");
        let _ = child.wait();
        let _ = std::fs::remove_dir_all(&dir);
    }
}

// ---------------------------------------------------------------------------
// SIGTERM drain
// ---------------------------------------------------------------------------

#[test]
#[cfg(unix)]
fn sigterm_drains_inflight_requests_before_exit() {
    let dir = temp_dir("drain");
    let (mut child, addr) = spawn_server(&dir, None);
    let pid = child.id();

    // A request that is genuinely in flight when the signal lands.
    let slow_addr = addr.clone();
    let slow = std::thread::spawn(move || {
        try_call(
            &slow_addr,
            "POST",
            "/v1/debug/sleep",
            r#"{"v":1,"ms":1500}"#,
        )
    });
    std::thread::sleep(Duration::from_millis(300));

    let status = Command::new("kill")
        .args(["-TERM", &pid.to_string()])
        .status()
        .expect("send SIGTERM");
    assert!(status.success());

    // The in-flight request completes despite the signal...
    let (status, body) = slow
        .join()
        .unwrap()
        .expect("in-flight request must complete");
    assert_eq!(status, 200);
    assert_eq!(body.get("slept_ms").and_then(Json::as_f64), Some(1500.0));

    // ...and the server then exits cleanly (drained, status 0).
    let exit = wait_exit(&mut child);
    assert!(exit.success(), "SIGTERM exit must be clean, got {exit:?}");

    // New connections are refused after drain.
    assert!(
        TcpStream::connect(&addr).is_err(),
        "listener must be closed"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Recovery report surfaces in /healthz
// ---------------------------------------------------------------------------

#[test]
fn healthz_reports_recovery_counters() {
    let dir = temp_dir("health");

    // Crash the real binary mid-commit so recovery has work to do.
    let (mut child, addr) = spawn_server(&dir, Some("ledger_mid_commit"));
    assert_eq!(call(&addr, "POST", "/v1/tenant", TENANT_BODY).0, 200);
    assert_eq!(call(&addr, "POST", "/v1/dataset", DATASET_BODY).0, 200);
    let _ = try_call(&addr, "POST", "/v1/release", &release_body(0.25, 1e-7));
    assert!(!wait_exit(&mut child).success());

    let (mut child, addr) = spawn_server(&dir, None);
    let (status, body) = call(&addr, "GET", "/healthz", "");
    assert_eq!(status, 200);
    let recovery = body.get("recovery").expect("recovery block");
    assert!(
        recovery
            .get("truncated_bytes")
            .and_then(Json::as_f64)
            .unwrap()
            > 0.0,
        "the torn commit must have been truncated: {recovery:?}"
    );
    assert_eq!(
        recovery.get("resolved_intents").and_then(Json::as_f64),
        Some(1.0),
        "the orphaned intent must have been conservatively committed"
    );
    child.kill().expect("kill");
    let _ = child.wait();
    let _ = std::fs::remove_dir_all(&dir);
}
