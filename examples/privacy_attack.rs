//! The Figure 1 / Example 3.1 story: why the "obvious" join-then-release
//! pipelines are not differentially private, and how Algorithm 1 fixes them.
//!
//! Run with `cargo run --release --example privacy_attack`.

use dpsyn::prelude::*;
use dpsyn_core::{FlawedJoinAsOne, FlawedPadAfter};
use dpsyn_noise::seeded_rng;

fn main() {
    // Two instances with identical per-relation sizes whose join sizes are n²
    // and 0 (Figure 1).
    let n = 16;
    let (query, heavy, empty) = dpsyn::datagen::fig1_pair(n);
    println!(
        "join sizes: I = {}, I' = {}",
        join_size(&query, &heavy).unwrap(),
        join_size(&query, &empty).unwrap()
    );

    let params = PrivacyParams::new(1.0, 1e-6).unwrap();
    let family = QueryFamily::counting(&query);
    let mut rng = seeded_rng(3);

    let total = |r: &dpsyn_core::SyntheticRelease| r.histogram().total();

    let strawman1 = FlawedJoinAsOne::default();
    println!("\n-- strawman 1: join, then single-table PMW --");
    println!(
        "released totals: I -> {:.1}, I' -> {:.1}  (exactly the join sizes: a perfect distinguisher)",
        total(&strawman1.release(&query, &heavy, &family, params, &mut rng).unwrap()),
        total(&strawman1.release(&query, &empty, &family, params, &mut rng).unwrap()),
    );

    let strawman2 = FlawedPadAfter::default();
    println!("\n-- strawman 2: release, then pad with dummy tuples --");
    println!(
        "released totals: I -> {:.1}, I' -> {:.1}  (totals masked, but the padding is spread uniformly, so the data-carrying region still leaks at scale)",
        total(&strawman2.release(&query, &heavy, &family, params, &mut rng).unwrap()),
        total(&strawman2.release(&query, &empty, &family, params, &mut rng).unwrap()),
    );

    let fixed = TwoTable::default();
    println!("\n-- Algorithm 1: pad the join size *before* releasing --");
    println!(
        "released totals: I -> {:.1}, I' -> {:.1}  (both over-estimates with calibrated noise; the (ε, δ) guarantee holds)",
        total(&fixed.release(&query, &heavy, &family, params, &mut rng).unwrap()),
        total(&fixed.release(&query, &empty, &family, params, &mut rng).unwrap()),
    );
}
