//! The Figure 1 / Example 3.1 story: why the "obvious" join-then-release
//! pipelines are not differentially private, and how Algorithm 1 fixes them.
//!
//! All three pipelines — the two flawed strawmen and the fixed Algorithm 1 —
//! implement the same [`Mechanism`] trait, so the attack loop below drives
//! them through one [`Session`] with identical requests.
//!
//! Run with `cargo run --release --example privacy_attack`.

use dpsyn::prelude::*;

fn main() {
    // Two instances with identical per-relation sizes whose join sizes are n²
    // and 0 (Figure 1).
    let n = 16;
    let (query, heavy, empty) = dpsyn::datagen::fig1_pair(n);
    let session = Session::new();
    println!(
        "join sizes: I = {}, I' = {}",
        session.join_size(&query, &heavy).unwrap(),
        session.join_size(&query, &empty).unwrap()
    );

    let params = PrivacyParams::new(1.0, 1e-6).unwrap();
    let family = QueryFamily::counting(&query);

    let cases: [(&str, &dyn Mechanism, &str); 3] = [
        (
            "strawman 1: join, then single-table PMW",
            &FlawedJoinAsOne::default(),
            "exactly the join sizes: a perfect distinguisher",
        ),
        (
            "strawman 2: release, then pad with dummy tuples",
            &FlawedPadAfter::default(),
            "totals masked, but the padding is spread uniformly, so the data-carrying region still leaks at scale",
        ),
        (
            "Algorithm 1: pad the join size *before* releasing",
            &TwoTable::default(),
            "both over-estimates with calibrated noise; the (ε, δ) guarantee holds",
        ),
    ];

    for (seed, (title, mechanism, verdict)) in cases.into_iter().enumerate() {
        let seed = seed as u64 + 3;
        let on_heavy = session
            .release(
                mechanism,
                &ReleaseRequest::new(&query, &heavy, &family, params).with_seed(seed),
            )
            .unwrap();
        let on_empty = session
            .release(
                mechanism,
                &ReleaseRequest::new(&query, &empty, &family, params).with_seed(seed),
            )
            .unwrap();
        println!("\n-- {title} --");
        println!(
            "released totals: I -> {:.1}, I' -> {:.1}  ({verdict})",
            on_heavy.histogram().total(),
            on_empty.histogram().total(),
        );
    }
}
