//! Quickstart: release a differentially private synthetic dataset for a
//! two-table join and answer a workload of linear queries from it — all
//! through the [`Session`] API, the crate's unified entry point.
//!
//! Run with `cargo run --release --example quickstart`.

use dpsyn::prelude::*;
use dpsyn_noise::seeded_rng;

fn main() {
    // 1. The join query R1(A, B) ⋈ R2(B, C): think "orders joined with
    //    shipments on customer id".
    let query = JoinQuery::two_table(32, 32, 32);

    // 2. Private data: a skewed instance where customer 0 is very active.
    let mut instance = Instance::empty_for(&query).expect("schema matches");
    for a in 0..20u64 {
        instance.relation_mut(0).add(vec![a, 0], 1).unwrap();
        instance.relation_mut(1).add(vec![0, a], 1).unwrap();
    }
    for b in 1..10u64 {
        instance.relation_mut(0).add(vec![b, b], 1).unwrap();
        instance.relation_mut(1).add(vec![b, b], 1).unwrap();
    }

    // 3. One long-lived session owns parallelism, sensitivity settings and
    //    the persistent sub-join caches for everything below.
    let session = Session::new();
    println!("input size         : {}", instance.input_size());
    println!(
        "join size          : {}",
        session.join_size(&query, &instance).unwrap()
    );
    println!(
        "local sensitivity  : {}",
        session.local_sensitivity(&query, &instance).unwrap()
    );

    // 4. A workload of 64 linear queries, a privacy budget, and the release
    //    request bundling all inputs with a reproducibility seed.
    let workload = session.random_sign_workload(&query, 64, 7).unwrap();
    let budget = PrivacyParams::new(1.0, 1e-6).unwrap();
    let request = ReleaseRequest::new(&query, &instance, &workload, budget).with_seed(7);

    // 5. Release synthetic data with Algorithm 1 (join-as-one).  Any of the
    //    paper's mechanisms can be passed here — they all implement the
    //    object-safe `Mechanism` trait.
    let release = session.release(&TwoTable::default(), &request).unwrap();
    println!(
        "released mass      : {:.1} over {} histogram cells",
        release.noisy_total(),
        release.histogram().len()
    );

    // 6. Answer every query from the synthetic data and report the error.
    //    The truth evaluation reuses the session's cached full join.
    let truth = session.answer_truth(&query, &instance, &workload).unwrap();
    let answers = release.answer_all(&workload).unwrap();
    println!(
        "max |q(I) - q(F)|  : {:.2}",
        answers.linf_distance(&truth).unwrap()
    );

    // 7. The released object can also be materialised as integer records.
    let mut rng = seeded_rng(8);
    let records = release.to_records(&mut rng);
    println!("synthetic records  : {} distinct tuples", records.len());
}
