//! Quickstart: release a differentially private synthetic dataset for a
//! two-table join and answer a workload of linear queries from it.
//!
//! Run with `cargo run --release --example quickstart`.

use dpsyn::prelude::*;
use dpsyn_noise::seeded_rng;

fn main() {
    // 1. The join query R1(A, B) ⋈ R2(B, C): think "orders joined with
    //    shipments on customer id".
    let query = JoinQuery::two_table(32, 32, 32);

    // 2. Private data: a skewed instance where customer 0 is very active.
    let mut instance = Instance::empty_for(&query).expect("schema matches");
    for a in 0..20u64 {
        instance.relation_mut(0).add(vec![a, 0], 1).unwrap();
        instance.relation_mut(1).add(vec![0, a], 1).unwrap();
    }
    for b in 1..10u64 {
        instance.relation_mut(0).add(vec![b, b], 1).unwrap();
        instance.relation_mut(1).add(vec![b, b], 1).unwrap();
    }
    println!("input size         : {}", instance.input_size());
    println!(
        "join size          : {}",
        join_size(&query, &instance).unwrap()
    );
    println!(
        "local sensitivity  : {}",
        local_sensitivity(&query, &instance).unwrap()
    );

    // 3. A workload of 64 linear queries and a privacy budget.
    let mut rng = seeded_rng(7);
    let workload = QueryFamily::random_sign(&query, 64, &mut rng).unwrap();
    let budget = PrivacyParams::new(1.0, 1e-6).unwrap();

    // 4. Release synthetic data with Algorithm 1 (join-as-one).
    let release = TwoTable::default()
        .release(&query, &instance, &workload, budget, &mut rng)
        .unwrap();
    println!(
        "released mass      : {:.1} over {} histogram cells",
        release.noisy_total(),
        release.histogram().len()
    );

    // 5. Answer every query from the synthetic data and report the error.
    let truth = workload.answer_all_on_instance(&query, &instance).unwrap();
    let answers = release.answer_all(&workload).unwrap();
    println!(
        "max |q(I) - q(F)|  : {:.2}",
        answers.linf_distance(&truth).unwrap()
    );

    // 6. The released object can also be materialised as integer records.
    let records = release.to_records(&mut rng);
    println!("synthetic records  : {} distinct tuples", records.len());
}
