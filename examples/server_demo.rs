//! End-to-end demo of the `dpsyn-serve` wire format.
//!
//! Starts the release server in-process on an ephemeral port, then acts as
//! a client over raw TCP: creates a tenant with an `(ε, δ)` grant, uploads
//! a two-table dataset, runs releases until admission control refuses the
//! next one, and shows the durable budget view after each step.
//!
//! ```sh
//! cargo run --example server_demo
//! ```

use std::io::{Read, Write};
use std::net::TcpStream;

use dpsyn::server::{start, Json, ServerConfig};

/// One HTTP/1.1 request over a fresh connection (the server closes after
/// each response), returning `(status, body)`.
fn call(addr: &str, method: &str, path: &str, body: &str) -> (u16, Json) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).expect("write head");
    stream.write_all(body.as_bytes()).expect("write body");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let status: u16 = raw
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status line");
    let json = raw
        .split("\r\n\r\n")
        .nth(1)
        .map(|b| Json::parse(b).expect("response is JSON"))
        .expect("response has a body");
    (status, json)
}

fn remaining_epsilon(body: &Json) -> f64 {
    body.get("budget")
        .and_then(|b| b.get("remaining"))
        .and_then(|r| r.get("epsilon"))
        .and_then(Json::as_f64)
        .expect("budget view")
}

fn main() {
    // A scratch data dir for the demo ledger.
    let data_dir = std::env::temp_dir().join(format!("dpsyn-demo-{}", std::process::id()));
    let handle = start(ServerConfig::new(&data_dir)).expect("server start");
    let addr = handle.addr.to_string();
    println!("server on {addr} (ledger in {})", data_dir.display());

    // 1. A tenant granted ε = 1.0, δ = 1e-6 in total.
    let (status, body) = call(
        &addr,
        "POST",
        "/v1/tenant",
        r#"{"v":1,"tenant":"acme","epsilon":1.0,"delta":1e-6}"#,
    );
    assert_eq!(status, 200, "{body:?}");
    println!("tenant acme: remaining ε = {}", remaining_epsilon(&body));

    // 2. A two-table dataset R1(a0, a1) ⋈ R2(a1, a2) over domains of 8.
    let (status, body) = call(
        &addr,
        "POST",
        "/v1/dataset",
        r#"{"v":1,"name":"demo","domains":[8,8,8],
            "relations":[{"attrs":[0,1],"tuples":[[[1,2],3],[[4,2],1],[[5,6],2]]},
                         {"attrs":[1,2],"tuples":[[[2,7],2],[[6,0],1]]}]}"#,
    );
    assert_eq!(status, 200, "{body:?}");
    println!(
        "dataset demo: fingerprint {}",
        body.get("fingerprint").and_then(Json::as_str).unwrap()
    );

    // 3. Releases at ε = 0.4 each: two fit the grant, the third must be
    //    refused by admission control *before* touching data.
    for round in 1..=3 {
        let (status, body) = call(
            &addr,
            "POST",
            "/v1/release",
            r#"{"v":1,"tenant":"acme","dataset":"demo","mechanism":"two_table",
                "epsilon":0.4,"delta":4e-7,"seed":7,"workload_size":32,"workload_seed":7}"#,
        );
        if status == 200 {
            let answers = body
                .get("result")
                .and_then(|r| r.get("answers"))
                .and_then(Json::as_arr)
                .unwrap();
            println!(
                "release {round}: {} answers, remaining ε = {}",
                answers.len(),
                remaining_epsilon(&body)
            );
        } else {
            let code = body
                .get("error")
                .and_then(|e| e.get("code"))
                .and_then(Json::as_str)
                .unwrap_or("?");
            println!("release {round}: refused ({status} {code})");
            assert_eq!(status, 429, "third release must hit admission control");
        }
    }

    // 4. The budget view survives in the ledger: every number above is
    //    durable and will be identical after a crash + restart.
    let (status, body) = call(&addr, "GET", "/v1/tenant/acme", "");
    assert_eq!(status, 200);
    let bits = body
        .get("budget")
        .and_then(|b| b.get("remaining"))
        .and_then(|r| r.get("epsilon_bits"))
        .and_then(Json::as_str)
        .unwrap()
        .to_string();
    println!("durable remaining ε bits: {bits}");

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&data_dir);
    println!("server drained and stopped");
}
