//! Streaming ingestion: apply seeded insert/delete batches to a live
//! instance while the session's warm caches are delta-maintained in place
//! (semi-naive batch maintenance, [`dpsyn::relational::stream`]), then
//! verify that a post-update release is byte-identical to one from a cold
//! session over the same data.
//!
//! Run with `cargo run --release --example stream_demo`.

use dpsyn::datagen::{update_stream, UpdateStreamConfig};
use dpsyn::prelude::*;
use dpsyn_noise::seeded_rng;

fn main() {
    // 1. A three-relation star join with a skewed hub, the shape whose
    //    2^3-entry sub-join lattice makes warm state worth keeping.
    let (query, mut instance) = dpsyn::datagen::random_star(3, 32, 400, 1.0, &mut seeded_rng(7));
    let session = Session::new();

    // 2. A first release warms the session: the sub-join lattice, the full
    //    join and the delta-join plan are now cached for this instance.
    let workload = session.random_sign_workload(&query, 64, 7).unwrap();
    let budget = PrivacyParams::new(1.0, 1e-6).unwrap();
    let request = ReleaseRequest::new(&query, &instance, &workload, budget).with_seed(7);
    let first = session.release(&MultiTable::default(), &request).unwrap();
    println!(
        "cold release       : mass {:.1}, {} cached sub-joins",
        first.noisy_total(),
        session.cached_subjoins()
    );

    // 3. Live traffic: a seeded stream of mixed insert/delete batches.
    //    `Session::apply_updates` applies each batch to the instance AND
    //    migrates the warm caches to the updated fingerprint — Δ-relations
    //    are joined against the cached intermediates and folded in, instead
    //    of rebuilding the lattice from scratch.
    let stream = update_stream(
        &query,
        &instance,
        UpdateStreamConfig {
            batches: 4,
            batch_size: 32,
            delete_fraction: 0.25,
            theta: 1.0,
        },
        &mut seeded_rng(11),
    );
    for (i, batch) in stream.iter().enumerate() {
        let report = session.apply_updates(&query, &mut instance, batch).unwrap();
        println!(
            "batch {i}            : {} ops, warm={}, {} masks maintained, {} rebuilt, \
             fingerprint {:016x} -> {:016x}",
            report.ops,
            report.warm,
            report.stats.maintained_masks,
            report.stats.rebuilt_masks,
            report.old_fingerprint,
            report.new_fingerprint,
        );
    }

    // 4. Release over the updated instance from the maintained session...
    let request = ReleaseRequest::new(&query, &instance, &workload, budget).with_seed(13);
    let warm = session.release(&MultiTable::default(), &request).unwrap();

    // 5. ...and from a brand-new session that has never seen the stream.
    //    Maintenance never changes bytes: both releases are identical.
    let cold_session = Session::new();
    let cold = cold_session
        .release(&MultiTable::default(), &request)
        .unwrap();
    assert_eq!(warm.delta_tilde().to_bits(), cold.delta_tilde().to_bits());
    let warm_answers = warm.answer_all(&workload).unwrap();
    let cold_answers = cold.answer_all(&workload).unwrap();
    assert_eq!(warm_answers.values(), cold_answers.values());
    println!(
        "post-update release: mass {:.1} — byte-identical warm vs cold ({} queries)",
        warm.noisy_total(),
        warm_answers.values().len()
    );
}
