//! Scenario: cross-table marginals over a private retail star schema.
//!
//! `Sales(product, store) ⋈ Inventory(product, warehouse) ⋈
//! Promotions(product, campaign)` — a three-relation hierarchical join.  The
//! example runs the residual-sensitivity-based `MultiTable` release
//! (Algorithm 3) and the hierarchical uniformized release (Algorithms 4+6+7)
//! and reports their errors on a marginal-style workload.
//!
//! Run with `cargo run --release --example retail_star`.

use dpsyn::prelude::*;
use dpsyn_core::{HierarchicalConfig, HierarchicalRelease};
use dpsyn_noise::seeded_rng;
use dpsyn_pmw::PmwConfig;

fn main() {
    let mut rng = seeded_rng(11);
    let (query, instance) = dpsyn::datagen::retail_star(24, 150, &mut rng);
    println!("products=24, rows per table=150");
    println!("hierarchical query : {}", query.is_hierarchical());
    println!(
        "join size          : {}",
        join_size(&query, &instance).unwrap()
    );

    let budget = PrivacyParams::new(2.0, 1e-4).unwrap();
    let beta = 1.0 / budget.lambda();
    let rs = residual_sensitivity(&query, &instance, beta).unwrap();
    println!(
        "residual sensitivity RS^β = {:.1} (local sensitivity {})",
        rs.value,
        local_sensitivity(&query, &instance).unwrap()
    );

    let workload = QueryFamily::random_predicate(&query, 24, 0.5, &mut rng).unwrap();
    let truth = workload.answer_all_on_instance(&query, &instance).unwrap();

    let pmw = PmwConfig {
        max_iterations: 60,
        ..PmwConfig::default()
    };
    let multi = MultiTable::new(pmw)
        .release(&query, &instance, &workload, budget, &mut rng)
        .unwrap();
    let err_multi = multi
        .answer_all(&workload)
        .unwrap()
        .linf_distance(&truth)
        .unwrap();
    println!(
        "MultiTable     error: {err_multi:.2} (Δ̃ = {:.1})",
        multi.delta_tilde()
    );

    let hierarchical = HierarchicalRelease::new(HierarchicalConfig {
        pmw,
        ..Default::default()
    })
    .release(&query, &instance, &workload, budget, &mut rng)
    .unwrap();
    let err_hier = hierarchical
        .answer_all(&workload)
        .unwrap()
        .linf_distance(&truth)
        .unwrap();
    println!(
        "Hierarchical   error: {err_hier:.2} across {} sub-instances",
        hierarchical.parts()
    );
}
