//! Scenario: cross-table marginals over a private retail star schema.
//!
//! `Sales(product, store) ⋈ Inventory(product, warehouse) ⋈
//! Promotions(product, campaign)` — a three-relation hierarchical join.  The
//! example runs the residual-sensitivity-based `MultiTable` release
//! (Algorithm 3) and the hierarchical uniformized release (Algorithms 4+6+7)
//! through one [`Session`], whose persistent sub-join lattice is shared by
//! the sensitivity diagnostics and the releases.
//!
//! Run with `cargo run --release --example retail_star`.

use dpsyn::prelude::*;
use dpsyn_core::{HierarchicalConfig, HierarchicalRelease};
use dpsyn_noise::seeded_rng;
use dpsyn_pmw::PmwConfig;

fn main() {
    let mut rng = seeded_rng(11);
    let (query, instance) = dpsyn::datagen::retail_star(24, 150, &mut rng);
    println!("products=24, rows per table=150");
    println!("hierarchical query : {}", query.is_hierarchical());

    let session = Session::new();
    println!(
        "join size          : {}",
        session.join_size(&query, &instance).unwrap()
    );

    let budget = PrivacyParams::new(2.0, 1e-4).unwrap();
    let beta = 1.0 / budget.lambda();
    // The residual-sensitivity diagnostic populates the session's sub-join
    // lattice; the MultiTable release below reuses it instead of
    // re-enumerating the 2^m subsets.
    let rs = session
        .residual_sensitivity(&query, &instance, beta)
        .unwrap();
    println!(
        "residual sensitivity RS^β = {:.1} (local sensitivity {}, {} cached sub-joins)",
        rs.value,
        session.local_sensitivity(&query, &instance).unwrap(),
        session.cached_subjoins()
    );

    let workload = QueryFamily::random_predicate(&query, 24, 0.5, &mut rng).unwrap();
    let truth = session.answer_truth(&query, &instance, &workload).unwrap();
    let request = ReleaseRequest::new(&query, &instance, &workload, budget).with_seed(11);

    let pmw = PmwConfig {
        max_iterations: 60,
        ..PmwConfig::default()
    };
    let multi = session.release(&MultiTable::new(pmw), &request).unwrap();
    let err_multi = multi
        .answer_all(&workload)
        .unwrap()
        .linf_distance(&truth)
        .unwrap();
    println!(
        "MultiTable     error: {err_multi:.2} (Δ̃ = {:.1})",
        multi.delta_tilde()
    );

    let hierarchical = session
        .release(
            &HierarchicalRelease::new(HierarchicalConfig {
                pmw,
                ..Default::default()
            }),
            &request,
        )
        .unwrap();
    let err_hier = hierarchical
        .answer_all(&workload)
        .unwrap()
        .linf_distance(&truth)
        .unwrap();
    println!(
        "Hierarchical   error: {err_hier:.2} across {} sub-instances",
        hierarchical.parts()
    );
    let (hits, misses) = session.cache_stats();
    println!("session cache      : {hits} hits / {misses} misses");
}
