//! Scenario: exposure analytics over a private social network.
//!
//! `Follows(follower, user) ⋈ Posts(user, topic)` — the analyst wants many
//! weighted queries over (follower, post) exposure pairs.  Popular users make
//! the degree distribution heavily skewed, so the uniformized release
//! (Algorithm 4/5) is compared against plain join-as-one (Algorithm 1) —
//! both driven through one [`Session`] as interchangeable `&dyn Mechanism`
//! values.
//!
//! Run with `cargo run --release --example social_network`.

use dpsyn::prelude::*;
use dpsyn_noise::seeded_rng;

fn main() {
    let mut rng = seeded_rng(2024);
    let (query, instance) = dpsyn::datagen::social_network(48, 500, 400, &mut rng);
    println!("users=48, follows=500, posts=400");

    let session = Session::new();
    println!(
        "join size          : {}",
        session.join_size(&query, &instance).unwrap()
    );
    println!(
        "local sensitivity  : {}",
        session.local_sensitivity(&query, &instance).unwrap()
    );

    let workload = QueryFamily::random_predicate(&query, 48, 0.6, &mut rng).unwrap();
    let truth = session.answer_truth(&query, &instance, &workload).unwrap();
    let budget = PrivacyParams::new(1.0, 1e-6).unwrap();
    let request = ReleaseRequest::new(&query, &instance, &workload, budget).with_seed(2024);

    // The two synthetic-data mechanisms run through the same entry point.
    let mechanisms: [(&str, &dyn Mechanism); 2] = [
        ("join-as-one", &TwoTable::default()),
        ("uniformized", &UniformizedTwoTable::default()),
    ];
    for (name, mechanism) in mechanisms {
        let release = session.release(mechanism, &request).unwrap();
        let err = release
            .answer_all(&workload)
            .unwrap()
            .linf_distance(&truth)
            .unwrap();
        println!(
            "{name:<12} error: {err:.2} across {} parts (Δ̃ = {:.1})",
            release.parts(),
            release.delta_tilde()
        );
    }

    // The per-query Laplace baseline answers the workload directly (it
    // produces no synthetic data, so it has its own session entry point).
    let baseline = session
        .answer_baseline(&IndependentLaplaceBaseline::default(), &request)
        .unwrap();
    println!(
        "per-query Laplace for comparison: error {:.2}",
        baseline.linf_distance(&truth).unwrap()
    );
}
