//! Scenario: exposure analytics over a private social network.
//!
//! `Follows(follower, user) ⋈ Posts(user, topic)` — the analyst wants many
//! weighted queries over (follower, post) exposure pairs.  Popular users make
//! the degree distribution heavily skewed, so the uniformized release
//! (Algorithm 4/5) is compared against plain join-as-one (Algorithm 1).
//!
//! Run with `cargo run --release --example social_network`.

use dpsyn::prelude::*;
use dpsyn_noise::seeded_rng;

fn main() {
    let mut rng = seeded_rng(2024);
    let (query, instance) = dpsyn::datagen::social_network(48, 500, 400, &mut rng);
    println!("users=48, follows=500, posts=400");
    println!(
        "join size          : {}",
        join_size(&query, &instance).unwrap()
    );
    println!(
        "local sensitivity  : {}",
        local_sensitivity(&query, &instance).unwrap()
    );

    let workload = QueryFamily::random_predicate(&query, 48, 0.6, &mut rng).unwrap();
    let truth = workload.answer_all_on_instance(&query, &instance).unwrap();
    let budget = PrivacyParams::new(1.0, 1e-6).unwrap();

    let join_as_one = TwoTable::default()
        .release(&query, &instance, &workload, budget, &mut rng)
        .unwrap();
    let err_join = join_as_one
        .answer_all(&workload)
        .unwrap()
        .linf_distance(&truth)
        .unwrap();

    let uniformized = UniformizedTwoTable::default()
        .release(&query, &instance, &workload, budget, &mut rng)
        .unwrap();
    let err_uni = uniformized
        .answer_all(&workload)
        .unwrap()
        .linf_distance(&truth)
        .unwrap();

    println!(
        "join-as-one   error: {err_join:.2} (Δ̃ = {:.1})",
        join_as_one.delta_tilde()
    );
    println!(
        "uniformized   error: {err_uni:.2} across {} degree buckets (Δ̃ = {:.1})",
        uniformized.parts(),
        uniformized.delta_tilde()
    );
    println!(
        "per-query Laplace for comparison: error {:.2}",
        IndependentLaplaceBaseline::default()
            .answer_all(&query, &instance, &workload, budget, &mut rng)
            .unwrap()
            .linf_distance(&truth)
            .unwrap()
    );
}
