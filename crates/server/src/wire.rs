//! The server's versioned wire format: a hand-rolled JSON value type and the
//! request/response structs layered on it.
//!
//! The build is offline (no serde), so this module carries a small
//! recursive-descent JSON parser and serializer.  Every request body and
//! every response carries a `"v"` field; requests whose version is not
//! [`WIRE_VERSION`] are rejected *before* any other field is interpreted, so
//! future format changes stay explicit.
//!
//! Floating-point fields that feed privacy accounting are also exposed as
//! exact IEEE-754 bit patterns (`*_bits` hex strings) in responses, so
//! clients — and the kill-and-restart oracle in the test suite — can compare
//! recovered budgets bit for bit rather than through decimal round-trips.

use std::fmt::Write as _;

/// The wire-format version this server speaks.
pub const WIRE_VERSION: u64 = 1;

/// Maximum JSON nesting depth accepted from the network.
const MAX_DEPTH: usize = 32;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, with insertion order preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses a JSON document (must consume the full input).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos, 0)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing bytes at offset {pos}"));
        }
        Ok(value)
    }

    /// Serializes the value to a compact JSON string.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_number(*n, out),
            Json::Str(s) => write_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Looks up a field of an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer (rejects fractional numbers and
    /// anything above 2⁵³, where `f64` stops being exact).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 9_007_199_254_740_992.0 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Builds a JSON object from `(key, value)` pairs.
pub fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn write_number(n: f64, out: &mut String) {
    if !n.is_finite() {
        // JSON has no NaN/∞; the server never emits them, but degrade
        // safely rather than producing an unparseable document.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() <= 9_007_199_254_740_992.0 {
        let _ = write!(out, "{}", n as i64);
    } else {
        // Rust's shortest round-trip float formatting.
        let _ = write!(out, "{n}");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    if depth > MAX_DEPTH {
        return Err("nesting too deep".to_string());
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos, depth + 1)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at offset {pos}")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at offset {pos}"));
                }
                *pos += 1;
                let value = parse_value(bytes, pos, depth + 1)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at offset {pos}")),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at offset {pos}"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| "bad number".to_string())?;
    let n: f64 = text
        .parse()
        .map_err(|_| format!("invalid number at offset {start}"))?;
    if !n.is_finite() {
        return Err(format!("non-finite number at offset {start}"));
    }
    Ok(Json::Num(n))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at offset {pos}"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'u') => {
                        let code = parse_hex4(bytes, *pos + 1)?;
                        *pos += 4;
                        // Combine surrogate pairs when present; lone
                        // surrogates become the replacement character.
                        if (0xD800..0xDC00).contains(&code)
                            && bytes.get(*pos + 1) == Some(&b'\\')
                            && bytes.get(*pos + 2) == Some(&b'u')
                        {
                            let low = parse_hex4(bytes, *pos + 3)?;
                            if (0xDC00..0xE000).contains(&low) {
                                *pos += 6;
                                let c = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                out.push(char::from_u32(c).unwrap_or('\u{FFFD}'));
                            } else {
                                out.push('\u{FFFD}');
                            }
                        } else {
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                    }
                    _ => return Err(format!("bad escape at offset {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 character (input is a &str, so the
                // boundaries are valid).
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| "bad utf-8 in string".to_string())?;
                let c = rest.chars().next().ok_or("unterminated string")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_hex4(bytes: &[u8], at: usize) -> Result<u32, String> {
    let hex = bytes
        .get(at..at + 4)
        .ok_or_else(|| "truncated \\u escape".to_string())?;
    let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape".to_string())?;
    u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape".to_string())
}

// ---------------------------------------------------------------------------
// Request structs
// ---------------------------------------------------------------------------

/// A request-level failure, mapped to an HTTP status plus a stable error
/// code in the response body.
#[derive(Debug, Clone, PartialEq)]
pub struct ApiError {
    /// HTTP status to respond with.
    pub status: u16,
    /// Stable machine-readable error code.
    pub code: &'static str,
    /// Human-readable detail.  Never includes private data.
    pub detail: String,
}

impl ApiError {
    /// Builds an error.
    pub fn new(status: u16, code: &'static str, detail: impl Into<String>) -> Self {
        ApiError {
            status,
            code,
            detail: detail.into(),
        }
    }

    /// A 400 with the given code.
    pub fn bad_request(code: &'static str, detail: impl Into<String>) -> Self {
        ApiError::new(400, code, detail)
    }

    /// The error rendered as a response body.
    pub fn body(&self) -> Json {
        obj(vec![
            ("v", Json::Num(WIRE_VERSION as f64)),
            (
                "error",
                obj(vec![
                    ("code", Json::Str(self.code.to_string())),
                    ("detail", Json::Str(self.detail.clone())),
                ]),
            ),
        ])
    }
}

fn require_version(body: &Json) -> Result<(), ApiError> {
    match body.get("v").and_then(Json::as_u64) {
        Some(WIRE_VERSION) => Ok(()),
        Some(v) => Err(ApiError::bad_request(
            "unsupported_version",
            format!("wire version {v} is not supported (this server speaks v{WIRE_VERSION})"),
        )),
        None => Err(ApiError::bad_request(
            "missing_version",
            "request body must carry a numeric \"v\" field",
        )),
    }
}

fn str_field(body: &Json, name: &'static str) -> Result<String, ApiError> {
    body.get(name)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| ApiError::bad_request("missing_field", format!("missing string {name:?}")))
}

fn f64_field(body: &Json, name: &'static str) -> Result<f64, ApiError> {
    body.get(name)
        .and_then(Json::as_f64)
        .ok_or_else(|| ApiError::bad_request("missing_field", format!("missing number {name:?}")))
}

fn u64_field_or(body: &Json, name: &'static str, default: u64) -> Result<u64, ApiError> {
    match body.get(name) {
        None => Ok(default),
        Some(v) => v.as_u64().ok_or_else(|| {
            ApiError::bad_request(
                "bad_field",
                format!("{name:?} must be a non-negative integer"),
            )
        }),
    }
}

/// `POST /v1/tenant` — create a tenant with its total `(ε, δ)` grant.
#[derive(Debug, Clone, PartialEq)]
pub struct CreateTenantReq {
    /// Tenant name.
    pub tenant: String,
    /// Total ε grant.
    pub epsilon: f64,
    /// Total δ grant.
    pub delta: f64,
}

impl CreateTenantReq {
    /// Parses and version-checks a request body.
    pub fn from_json(body: &Json) -> Result<Self, ApiError> {
        require_version(body)?;
        Ok(CreateTenantReq {
            tenant: str_field(body, "tenant")?,
            epsilon: f64_field(body, "epsilon")?,
            delta: f64_field(body, "delta")?,
        })
    }
}

/// One relation of a dataset upload: attribute ids plus weighted tuples.
#[derive(Debug, Clone, PartialEq)]
pub struct RelationSpec {
    /// Attribute ids (indices into the dataset's `domains` list).
    pub attrs: Vec<u16>,
    /// `(tuple, frequency)` pairs.
    pub tuples: Vec<(Vec<u64>, u64)>,
}

/// `POST /v1/dataset` — upload a private instance the server will serve
/// releases over.
#[derive(Debug, Clone, PartialEq)]
pub struct CreateDatasetReq {
    /// Dataset name.
    pub name: String,
    /// Domain size per attribute; attribute ids are indices into this list.
    pub domains: Vec<u64>,
    /// The relations.
    pub relations: Vec<RelationSpec>,
}

/// Hard caps on dataset uploads (the body-size bound is the primary
/// defence; these keep the lattice enumeration and planner in their
/// supported ranges).
pub const MAX_DATASET_ATTRS: usize = 64;
/// Maximum relations per dataset (the sub-join lattice is `2^m`).
pub const MAX_DATASET_RELATIONS: usize = 12;
/// Maximum distinct tuples per relation.
pub const MAX_RELATION_TUPLES: usize = 65_536;

impl CreateDatasetReq {
    /// Parses and version-checks a request body, enforcing the shape caps.
    pub fn from_json(body: &Json) -> Result<Self, ApiError> {
        require_version(body)?;
        let name = str_field(body, "name")?;
        let domains: Vec<u64> = body
            .get("domains")
            .and_then(Json::as_arr)
            .ok_or_else(|| ApiError::bad_request("missing_field", "missing array \"domains\""))?
            .iter()
            .map(|v| {
                v.as_u64()
                    .filter(|&d| d >= 1)
                    .ok_or_else(|| ApiError::bad_request("bad_field", "domain sizes must be >= 1"))
            })
            .collect::<Result<_, _>>()?;
        if domains.is_empty() || domains.len() > MAX_DATASET_ATTRS {
            return Err(ApiError::bad_request(
                "bad_field",
                format!("between 1 and {MAX_DATASET_ATTRS} attributes are supported"),
            ));
        }
        let rel_values = body
            .get("relations")
            .and_then(Json::as_arr)
            .ok_or_else(|| ApiError::bad_request("missing_field", "missing array \"relations\""))?;
        if rel_values.is_empty() || rel_values.len() > MAX_DATASET_RELATIONS {
            return Err(ApiError::bad_request(
                "bad_field",
                format!("between 1 and {MAX_DATASET_RELATIONS} relations are supported"),
            ));
        }
        let mut relations = Vec::with_capacity(rel_values.len());
        for rel in rel_values {
            let attrs: Vec<u16> = rel
                .get("attrs")
                .and_then(Json::as_arr)
                .ok_or_else(|| {
                    ApiError::bad_request("missing_field", "relation missing array \"attrs\"")
                })?
                .iter()
                .map(|v| {
                    v.as_u64()
                        .filter(|&a| (a as usize) < domains.len())
                        .map(|a| a as u16)
                        .ok_or_else(|| {
                            ApiError::bad_request("bad_field", "attr ids must index \"domains\"")
                        })
                })
                .collect::<Result<_, _>>()?;
            let tuple_values = rel.get("tuples").and_then(Json::as_arr).ok_or_else(|| {
                ApiError::bad_request("missing_field", "relation missing array \"tuples\"")
            })?;
            if tuple_values.len() > MAX_RELATION_TUPLES {
                return Err(ApiError::bad_request(
                    "bad_field",
                    format!("at most {MAX_RELATION_TUPLES} tuples per relation"),
                ));
            }
            let mut tuples = Vec::with_capacity(tuple_values.len());
            for t in tuple_values {
                // Each tuple is [[values...], freq].
                let pair = t.as_arr().filter(|p| p.len() == 2).ok_or_else(|| {
                    ApiError::bad_request("bad_field", "tuples must be [[values...], freq] pairs")
                })?;
                let values: Vec<u64> = pair[0]
                    .as_arr()
                    .ok_or_else(|| {
                        ApiError::bad_request("bad_field", "tuple values must be an array")
                    })?
                    .iter()
                    .map(|v| {
                        v.as_u64().ok_or_else(|| {
                            ApiError::bad_request("bad_field", "tuple values must be integers")
                        })
                    })
                    .collect::<Result<_, _>>()?;
                let freq = pair[1].as_u64().filter(|&f| f >= 1).ok_or_else(|| {
                    ApiError::bad_request("bad_field", "tuple frequency must be an integer >= 1")
                })?;
                tuples.push((values, freq));
            }
            relations.push(RelationSpec { attrs, tuples });
        }
        Ok(CreateDatasetReq {
            name,
            domains,
            relations,
        })
    }
}

/// One op of a dataset update batch.
#[derive(Debug, Clone, PartialEq)]
pub struct UpdateSpec {
    /// Relation index within the dataset.
    pub relation: usize,
    /// `true` for an insert, `false` for a delete.
    pub insert: bool,
    /// The tuple's attribute values.
    pub tuple: Vec<u64>,
    /// Multiplicity (copies inserted or retracted).
    pub count: u64,
}

/// `POST /v1/dataset/<name>/updates` — a batch of inserts/deletes applied
/// atomically to a served dataset between releases.
#[derive(Debug, Clone, PartialEq)]
pub struct UpdateDatasetReq {
    /// The ops, in order.  Semantics are *net* per `(relation, tuple)`.
    pub ops: Vec<UpdateSpec>,
}

/// Maximum ops per update batch (same defence role as the dataset caps).
pub const MAX_UPDATE_OPS: usize = 65_536;

impl UpdateDatasetReq {
    /// Parses and version-checks a request body.
    ///
    /// Body shape:
    /// `{"v":1,"updates":[{"relation":0,"op":"insert","tuple":[1,2],"count":3}, ...]}`
    /// (`count` defaults to 1).
    pub fn from_json(body: &Json) -> Result<Self, ApiError> {
        require_version(body)?;
        let op_values = body
            .get("updates")
            .and_then(Json::as_arr)
            .ok_or_else(|| ApiError::bad_request("missing_field", "missing array \"updates\""))?;
        if op_values.is_empty() || op_values.len() > MAX_UPDATE_OPS {
            return Err(ApiError::bad_request(
                "bad_field",
                format!("between 1 and {MAX_UPDATE_OPS} update ops are supported"),
            ));
        }
        let mut ops = Vec::with_capacity(op_values.len());
        for op in op_values {
            let relation = op.get("relation").and_then(Json::as_u64).ok_or_else(|| {
                ApiError::bad_request("bad_field", "each update needs an integer \"relation\"")
            })? as usize;
            let insert = match op.get("op").and_then(Json::as_str) {
                Some("insert") => true,
                Some("delete") => false,
                _ => {
                    return Err(ApiError::bad_request(
                        "bad_field",
                        "each update's \"op\" must be \"insert\" or \"delete\"",
                    ))
                }
            };
            let tuple: Vec<u64> = op
                .get("tuple")
                .and_then(Json::as_arr)
                .ok_or_else(|| {
                    ApiError::bad_request("bad_field", "each update needs an array \"tuple\"")
                })?
                .iter()
                .map(|v| {
                    v.as_u64().ok_or_else(|| {
                        ApiError::bad_request("bad_field", "tuple values must be integers")
                    })
                })
                .collect::<Result<_, _>>()?;
            let count = match op.get("count") {
                None => 1,
                Some(v) => v.as_u64().filter(|&c| c >= 1).ok_or_else(|| {
                    ApiError::bad_request("bad_field", "\"count\" must be an integer >= 1")
                })?,
            };
            ops.push(UpdateSpec {
                relation,
                insert,
                tuple,
                count,
            });
        }
        Ok(UpdateDatasetReq { ops })
    }
}

/// Maximum workload size a release request may ask for.
pub const MAX_WORKLOAD_SIZE: usize = 4096;

/// `POST /v1/release` — run a release mechanism against a dataset, charging
/// the tenant's budget.
#[derive(Debug, Clone, PartialEq)]
pub struct ReleaseReq {
    /// Paying tenant.
    pub tenant: String,
    /// Dataset to release over.
    pub dataset: String,
    /// Mechanism name (see the handler's registry of *sound* mechanisms).
    pub mechanism: String,
    /// ε to spend on this release.
    pub epsilon: f64,
    /// δ to spend on this release.
    pub delta: f64,
    /// RNG seed for the release (releases are byte-reproducible per seed).
    pub seed: u64,
    /// Number of random-sign workload queries to answer.
    pub workload_size: usize,
    /// Seed for workload generation.
    pub workload_seed: u64,
}

impl ReleaseReq {
    /// Parses and version-checks a request body.
    pub fn from_json(body: &Json) -> Result<Self, ApiError> {
        require_version(body)?;
        let workload_size = u64_field_or(body, "workload_size", 16)? as usize;
        if workload_size == 0 || workload_size > MAX_WORKLOAD_SIZE {
            return Err(ApiError::bad_request(
                "bad_field",
                format!("workload_size must be in 1..={MAX_WORKLOAD_SIZE}"),
            ));
        }
        Ok(ReleaseReq {
            tenant: str_field(body, "tenant")?,
            dataset: str_field(body, "dataset")?,
            mechanism: str_field(body, "mechanism")?,
            epsilon: f64_field(body, "epsilon")?,
            delta: f64_field(body, "delta")?,
            seed: u64_field_or(body, "seed", 0)?,
            workload_size,
            workload_seed: u64_field_or(body, "workload_seed", 0)?,
        })
    }
}

/// Upper bound on `POST /v1/debug/sleep` duration.
pub const MAX_SLEEP_MS: u64 = 10_000;

/// `POST /v1/debug/sleep` — hold a request open for a bounded duration
/// (exists so the SIGTERM-drain test can have a genuinely in-flight
/// request).
#[derive(Debug, Clone, PartialEq)]
pub struct SleepReq {
    /// Milliseconds to sleep before responding.
    pub ms: u64,
}

impl SleepReq {
    /// Parses and version-checks a request body.
    pub fn from_json(body: &Json) -> Result<Self, ApiError> {
        require_version(body)?;
        let ms = u64_field_or(body, "ms", 0)?;
        if ms > MAX_SLEEP_MS {
            return Err(ApiError::bad_request(
                "bad_field",
                format!("ms must be <= {MAX_SLEEP_MS}"),
            ));
        }
        Ok(SleepReq { ms })
    }
}

/// Renders an `f64` as its exact IEEE-754 bit pattern (16 lowercase hex
/// digits), the bit-exact twin of the decimal field it accompanies.
pub fn f64_bits_hex(value: f64) -> String {
    format!("{:016x}", value.to_bits())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrips_documents() {
        let doc = r#"{"v":1,"name":"demo","nums":[1,2.5,-3e2],"nested":{"ok":true,"n":null},"s":"a\"b\\c\nd"}"#;
        let v = Json::parse(doc).unwrap();
        let back = Json::parse(&v.to_json()).unwrap();
        assert_eq!(v, back);
        assert_eq!(v.get("name").unwrap().as_str(), Some("demo"));
        assert_eq!(v.get("v").unwrap().as_u64(), Some(1));
        assert_eq!(
            v.get("nums").unwrap().as_arr().unwrap()[2].as_f64(),
            Some(-300.0)
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("{\"a\":}").is_err());
        assert!(Json::parse("[1,2,]").is_err());
        assert!(Json::parse("123 456").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        // Nesting bomb.
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(Json::parse(&deep).is_err());
    }

    #[test]
    fn numbers_roundtrip_shortest() {
        let v = Json::Num(0.30000000000000004);
        let back = Json::parse(&v.to_json()).unwrap();
        assert_eq!(
            back.as_f64().unwrap().to_bits(),
            (0.30000000000000004f64).to_bits()
        );
        assert_eq!(Json::Num(42.0).to_json(), "42");
    }

    #[test]
    fn unicode_escapes_decode() {
        let v = Json::parse(r#""aé😀b""#).unwrap();
        assert_eq!(v.as_str(), Some("aé😀b"));
    }

    #[test]
    fn version_gate_rejects_other_versions() {
        let ok = Json::parse(r#"{"v":1,"tenant":"t","epsilon":1.0,"delta":0}"#).unwrap();
        assert!(CreateTenantReq::from_json(&ok).is_ok());
        let bad = Json::parse(r#"{"v":2,"tenant":"t","epsilon":1.0,"delta":0}"#).unwrap();
        let err = CreateTenantReq::from_json(&bad).unwrap_err();
        assert_eq!(err.code, "unsupported_version");
        let missing = Json::parse(r#"{"tenant":"t","epsilon":1.0,"delta":0}"#).unwrap();
        assert_eq!(
            CreateTenantReq::from_json(&missing).unwrap_err().code,
            "missing_version"
        );
    }

    #[test]
    fn dataset_request_parses_and_enforces_caps() {
        let doc = r#"{"v":1,"name":"d","domains":[8,8,8],
            "relations":[{"attrs":[0,1],"tuples":[[[1,2],1],[[3,4],2]]},
                         {"attrs":[1,2],"tuples":[[[2,5],1]]}]}"#;
        let req = CreateDatasetReq::from_json(&Json::parse(doc).unwrap()).unwrap();
        assert_eq!(req.relations.len(), 2);
        assert_eq!(req.relations[0].tuples[1], (vec![3, 4], 2));
        // Attr id out of range.
        let bad = r#"{"v":1,"name":"d","domains":[8],"relations":[{"attrs":[1],"tuples":[]}]}"#;
        assert!(CreateDatasetReq::from_json(&Json::parse(bad).unwrap()).is_err());
        // Zero frequency.
        let bad =
            r#"{"v":1,"name":"d","domains":[8],"relations":[{"attrs":[0],"tuples":[[[1],0]]}]}"#;
        assert!(CreateDatasetReq::from_json(&Json::parse(bad).unwrap()).is_err());
    }

    #[test]
    fn release_request_defaults_and_bounds() {
        let doc = r#"{"v":1,"tenant":"t","dataset":"d","mechanism":"two_table",
                      "epsilon":0.5,"delta":1e-7}"#;
        let req = ReleaseReq::from_json(&Json::parse(doc).unwrap()).unwrap();
        assert_eq!(req.workload_size, 16);
        assert_eq!(req.seed, 0);
        let doc = r#"{"v":1,"tenant":"t","dataset":"d","mechanism":"two_table",
                      "epsilon":0.5,"delta":1e-7,"workload_size":100000}"#;
        assert!(ReleaseReq::from_json(&Json::parse(doc).unwrap()).is_err());
    }
}
