//! The accept loop, per-connection threads, and graceful shutdown.
//!
//! The listener runs nonblocking and polls two stop signals between
//! accepts: the handle's programmatic shutdown flag and the process-level
//! SIGTERM flag ([`signal`]).  On either, the loop stops accepting, drops
//! the listener (new connections are refused at the TCP layer), and waits
//! for the in-flight request count to reach zero before returning —
//! SIGTERM *drains*, it never cuts a response (or worse, a ledger append)
//! in half.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::config::ServerConfig;
use crate::http;
use crate::routes;
use crate::store::Store;

/// Name of the file (inside the data dir) the server writes its bound
/// address to — how tests and scripts find an ephemeral port.
pub const ENDPOINT_FILE: &str = "endpoint";

/// SIGTERM plumbing: a process-wide flag the accept loop polls.
pub mod signal {
    use std::sync::atomic::{AtomicBool, Ordering};

    static SIGTERM_RECEIVED: AtomicBool = AtomicBool::new(false);

    /// Whether a SIGTERM has been delivered (always `false` until
    /// [`install_sigterm_handler`] has been called).
    pub fn sigterm_received() -> bool {
        SIGTERM_RECEIVED.load(Ordering::SeqCst)
    }

    /// Marks the flag as if SIGTERM had been delivered (the programmatic
    /// half of the handler; also lets non-Unix builds and unit tests drive
    /// the drain path).
    pub fn trigger_sigterm() {
        SIGTERM_RECEIVED.store(true, Ordering::SeqCst);
    }

    /// Installs a SIGTERM handler that sets the flag.  Only the `dpsyn-serve`
    /// binary calls this; embedding [`crate::start`] in a larger process
    /// (e.g. the test suite) leaves signal disposition alone.
    ///
    /// The handler body is a single atomic store — async-signal-safe.
    #[cfg(unix)]
    #[allow(unsafe_code)]
    pub fn install_sigterm_handler() {
        const SIGTERM: i32 = 15;
        extern "C" fn on_sigterm(_: i32) {
            SIGTERM_RECEIVED.store(true, Ordering::SeqCst);
        }
        extern "C" {
            // libc's simple signal-disposition call; declared by hand
            // because the build is offline (no libc crate).
            fn signal(signum: i32, handler: usize) -> usize;
        }
        unsafe {
            signal(SIGTERM, on_sigterm as *const () as usize);
        }
    }

    /// No-op off Unix.
    #[cfg(not(unix))]
    pub fn install_sigterm_handler() {}
}

/// A running server: its bound address and the knobs to stop it.
pub struct ServerHandle {
    /// The address actually bound (resolves port 0).
    pub addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    inflight: Arc<AtomicUsize>,
    join: std::thread::JoinHandle<()>,
}

impl ServerHandle {
    /// Requests shutdown and blocks until in-flight requests have drained
    /// and the accept loop has exited.
    pub fn shutdown(self) {
        self.shutdown.store(true, Ordering::SeqCst);
        let _ = self.join.join();
    }

    /// Number of requests currently being served.
    pub fn inflight(&self) -> usize {
        self.inflight.load(Ordering::SeqCst)
    }

    /// Blocks until the accept loop exits (e.g. after SIGTERM).
    pub fn wait(self) {
        let _ = self.join.join();
    }
}

/// Decrements the in-flight counter even when the connection thread
/// panics, so a handler bug can never wedge the drain.
struct InflightGuard(Arc<AtomicUsize>);

impl Drop for InflightGuard {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Opens the store (replaying the ledger), binds the listener, writes the
/// `endpoint` file, and spawns the accept loop.
pub fn start(config: ServerConfig) -> io::Result<ServerHandle> {
    let store =
        Store::open(&config.data_dir).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    let recovery = store.recovery().clone();
    if recovery.truncated_bytes > 0 || recovery.resolved_intents > 0 {
        eprintln!(
            "dpsyn-serve: ledger recovery: {} records, {} torn bytes truncated, {} pending intents conservatively committed",
            recovery.records, recovery.truncated_bytes, recovery.resolved_intents
        );
    }
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    std::fs::write(config.data_dir.join(ENDPOINT_FILE), addr.to_string())?;

    let shutdown = Arc::new(AtomicBool::new(false));
    let inflight = Arc::new(AtomicUsize::new(0));
    let store = Arc::new(store);

    let join = {
        let shutdown = shutdown.clone();
        let inflight = inflight.clone();
        std::thread::spawn(move || accept_loop(listener, store, config, shutdown, inflight))
    };

    Ok(ServerHandle {
        addr,
        shutdown,
        inflight,
        join,
    })
}

fn accept_loop(
    listener: TcpListener,
    store: Arc<Store>,
    config: ServerConfig,
    shutdown: Arc<AtomicBool>,
    inflight: Arc<AtomicUsize>,
) {
    loop {
        if shutdown.load(Ordering::SeqCst) || signal::sigterm_received() {
            break;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                // Counted in the acceptor, before the thread exists: a
                // SIGTERM arriving between accept and spawn still sees the
                // request as in flight.
                inflight.fetch_add(1, Ordering::SeqCst);
                let guard = InflightGuard(inflight.clone());
                let store = store.clone();
                let config = config.clone();
                std::thread::spawn(move || {
                    let _guard = guard;
                    serve_connection(stream, &store, &config);
                });
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => {
                // Transient accept errors (e.g. aborted connections): keep
                // serving.
                std::thread::sleep(Duration::from_millis(5));
            }
        }
    }
    // Stop accepting immediately; drain what is already in flight.
    drop(listener);
    while inflight.load(Ordering::SeqCst) > 0 {
        std::thread::sleep(Duration::from_millis(5));
    }
}

fn serve_connection(mut stream: TcpStream, store: &Store, config: &ServerConfig) {
    let _ = stream.set_read_timeout(Some(config.io_timeout));
    let _ = stream.set_write_timeout(Some(config.io_timeout));
    let request =
        match http::read_request(&mut stream, config.max_head_bytes, config.max_body_bytes) {
            Ok(r) => r,
            Err(e) => {
                let body = crate::wire::ApiError::new(e.status, "http", e.detail).body();
                http::respond(&mut stream, e.status, &body.to_json());
                // Drain what the client is still sending (bounded) before
                // closing: closing with unread data makes the kernel RST
                // the connection, discarding the error response in flight.
                use std::io::Read;
                let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
                let mut sink = [0u8; 4096];
                let mut drained = 0usize;
                while drained < (4 << 20) {
                    match stream.read(&mut sink) {
                        Ok(0) | Err(_) => break,
                        Ok(n) => drained += n,
                    }
                }
                return;
            }
        };
    let (status, body) = routes::dispatch(
        store,
        &request.method,
        &request.path,
        &request.body,
        config.exec_timeout,
    );
    http::respond(&mut stream, status, &body.to_json());
}
