//! Env-driven failpoints for crash-safety testing.
//!
//! `DPSYN_FAILPOINT` holds a comma-separated list of site names; when a
//! ledger write reaches an armed site the process **aborts** (no unwinding,
//! no destructors — the closest portable approximation of a power cut).
//! The integration suite arms one site, drives a request, watches the
//! server die, restarts it, and asserts the recovered ledger state.
//!
//! Sites (see `store`):
//!
//! | site                | crash instant                                        |
//! |---------------------|------------------------------------------------------|
//! | `ledger_pre_intent` | before the intent record is written                  |
//! | `ledger_mid_intent` | half the intent record written **and fsync'd**       |
//! | `ledger_post_intent`| intent durable, before the mechanism runs            |
//! | `ledger_pre_commit` | mechanism done, before the commit record is written  |
//! | `ledger_mid_commit` | half the commit record written **and fsync'd**       |
//! | `ledger_post_commit`| commit durable, before the response is sent          |
//!
//! The list is read once per process (the server is killed and restarted
//! between arms, so per-process is exactly the granularity needed).

use std::collections::HashSet;
use std::sync::OnceLock;

/// The environment variable holding the armed failpoint list.
pub const FAILPOINT_ENV: &str = "DPSYN_FAILPOINT";

fn armed() -> &'static HashSet<String> {
    static ARMED: OnceLock<HashSet<String>> = OnceLock::new();
    ARMED.get_or_init(|| {
        std::env::var(FAILPOINT_ENV)
            .unwrap_or_default()
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(str::to_string)
            .collect()
    })
}

/// Whether the named failpoint site is armed in this process.
pub fn should_fail(site: &str) -> bool {
    armed().contains(site)
}

/// Crashes the process at an armed failpoint site: abort, not panic, so no
/// destructor (and in particular no buffered flush or tidy shutdown) runs.
pub fn crash(site: &str) -> ! {
    eprintln!("dpsyn-serve: failpoint {site:?} armed — aborting");
    std::process::abort()
}

/// If `site` is armed, crash the process.
pub fn maybe_crash(site: &str) {
    if should_fail(site) {
        crash(site);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_by_default() {
        // The test process does not set DPSYN_FAILPOINT; every site must be
        // inert (otherwise the suite itself would die).
        assert!(!should_fail("ledger_pre_commit"));
        assert!(!should_fail(""));
        maybe_crash("ledger_mid_intent"); // must return
    }
}
