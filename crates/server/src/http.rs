//! A minimal hand-rolled HTTP/1.1 layer over blocking TCP streams.
//!
//! One request per connection (`Connection: close` on every response), a
//! bounded head, a `Content-Length`-bounded body, and nothing else: no
//! keep-alive, no chunked encoding, no TLS.  The request parser is strict —
//! anything it does not understand maps to a 4xx before a single byte of
//! the application runs.

use std::io::{Read, Write};

/// A parsed request: method, path, and raw body bytes.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Uppercase method token (`GET`, `POST`, …).
    pub method: String,
    /// Request target path (query strings are not supported and rejected).
    pub path: String,
    /// The request body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

/// A request-reading failure, carrying the status the connection should be
/// answered with before closing.
#[derive(Debug, Clone, PartialEq)]
pub struct HttpError {
    /// Status code for the error response.
    pub status: u16,
    /// Short human-readable detail.
    pub detail: String,
}

impl HttpError {
    fn new(status: u16, detail: impl Into<String>) -> Self {
        HttpError {
            status,
            detail: detail.into(),
        }
    }
}

/// Reads one request from `stream`, enforcing the head and body bounds.
pub fn read_request(
    stream: &mut impl Read,
    max_head_bytes: usize,
    max_body_bytes: usize,
) -> Result<Request, HttpError> {
    // Accumulate until the blank line ending the head.
    let mut buf: Vec<u8> = Vec::with_capacity(512);
    let mut chunk = [0u8; 1024];
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() > max_head_bytes {
            return Err(HttpError::new(431, "request head too large"));
        }
        let n = stream
            .read(&mut chunk)
            .map_err(|e| HttpError::new(400, format!("read error: {e}")))?;
        if n == 0 {
            return Err(HttpError::new(400, "connection closed mid-head"));
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| HttpError::new(400, "non-UTF-8 request head"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split(' ');
    let method = parts.next().unwrap_or_default().to_string();
    let path = parts.next().unwrap_or_default().to_string();
    let version = parts.next().unwrap_or_default();
    if method.is_empty() || path.is_empty() || !version.starts_with("HTTP/1.") {
        return Err(HttpError::new(400, "malformed request line"));
    }
    if path.contains('?') {
        return Err(HttpError::new(400, "query strings are not supported"));
    }

    let mut content_length = 0usize;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| HttpError::new(400, "bad Content-Length"))?;
            } else if name.eq_ignore_ascii_case("transfer-encoding") {
                return Err(HttpError::new(501, "transfer encodings are not supported"));
            }
        }
    }
    if content_length > max_body_bytes {
        return Err(HttpError::new(413, "request body too large"));
    }

    // The body: whatever followed the head in the buffer, then the rest
    // from the stream.
    let mut body: Vec<u8> = buf[head_end + 4..].to_vec();
    if body.len() > content_length {
        return Err(HttpError::new(400, "body longer than Content-Length"));
    }
    while body.len() < content_length {
        let want = (content_length - body.len()).min(chunk.len());
        let n = stream
            .read(&mut chunk[..want])
            .map_err(|e| HttpError::new(400, format!("read error: {e}")))?;
        if n == 0 {
            return Err(HttpError::new(400, "connection closed mid-body"));
        }
        body.extend_from_slice(&chunk[..n]);
    }

    Ok(Request { method, path, body })
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// Writes a JSON response and flushes.  Errors are swallowed — the peer may
/// have hung up, and there is nobody left to tell.
pub fn respond(stream: &mut impl Write, status: u16, body: &str) {
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        status,
        status_text(status),
        body.len()
    );
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(raw: &str) -> Result<Request, HttpError> {
        read_request(&mut Cursor::new(raw.as_bytes().to_vec()), 8192, 65536)
    }

    #[test]
    fn parses_post_with_body() {
        let req =
            parse("POST /v1/tenant HTTP/1.1\r\nHost: x\r\nContent-Length: 11\r\n\r\nhello world")
                .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/tenant");
        assert_eq!(req.body, b"hello world");
    }

    #[test]
    fn parses_get_without_body() {
        let req = parse("GET /healthz HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert!(req.body.is_empty());
    }

    #[test]
    fn rejects_malformed_and_oversized() {
        assert_eq!(parse("garbage\r\n\r\n").unwrap_err().status, 400);
        assert_eq!(
            parse("GET /a?q=1 HTTP/1.1\r\n\r\n").unwrap_err().status,
            400
        );
        assert_eq!(
            parse("POST / HTTP/1.1\r\nContent-Length: 999999\r\n\r\n")
                .unwrap_err()
                .status,
            413
        );
        assert_eq!(
            parse("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n")
                .unwrap_err()
                .status,
            501
        );
        // Truncated body.
        assert_eq!(
            parse("POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc")
                .unwrap_err()
                .status,
            400
        );
        // Head never terminates within the bound.
        let huge = format!("GET / HTTP/1.1\r\nX: {}\r\n\r\n", "y".repeat(20_000));
        let err = read_request(&mut Cursor::new(huge.into_bytes()), 8192, 65536).unwrap_err();
        assert_eq!(err.status, 431);
    }

    #[test]
    fn response_is_well_formed() {
        let mut out = Vec::new();
        respond(&mut out, 200, "{\"ok\":true}");
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 11\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("{\"ok\":true}"));
    }
}
