//! Server configuration.

use std::path::PathBuf;
use std::time::Duration;

/// Configuration for a [`crate::server::start`] call.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind (`host:port`; port 0 picks an ephemeral port, and
    /// the bound address is written to `<data_dir>/endpoint`).
    pub addr: String,
    /// Directory holding the budget ledger (`ledger.log`) and the
    /// `endpoint` file.  Created if absent.
    pub data_dir: PathBuf,
    /// Maximum accepted request-body size in bytes.
    pub max_body_bytes: usize,
    /// Maximum accepted request-head (request line + headers) size.
    pub max_head_bytes: usize,
    /// Socket read/write timeout.
    pub io_timeout: Duration,
    /// Deadline for one mechanism execution; a release still running at the
    /// deadline is abandoned (its thread is detached) and its budget burns.
    pub exec_timeout: Duration,
}

impl ServerConfig {
    /// A config serving from `data_dir` on an ephemeral localhost port,
    /// with the default limits.
    pub fn new(data_dir: impl Into<PathBuf>) -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            data_dir: data_dir.into(),
            max_body_bytes: 1 << 20,
            max_head_bytes: 8 << 10,
            io_timeout: Duration::from_secs(10),
            exec_timeout: Duration::from_secs(30),
        }
    }

    /// Builds a config from the environment:
    ///
    /// * `DPSYN_DATA_DIR` — required: the ledger directory.
    /// * `DPSYN_ADDR` — bind address (default `127.0.0.1:0`).
    /// * `DPSYN_EXEC_TIMEOUT_MS`, `DPSYN_IO_TIMEOUT_MS`,
    ///   `DPSYN_MAX_BODY_BYTES` — limit overrides.
    pub fn from_env() -> Result<Self, String> {
        let data_dir = std::env::var("DPSYN_DATA_DIR")
            .map_err(|_| "DPSYN_DATA_DIR must be set (ledger directory)".to_string())?;
        let mut config = ServerConfig::new(data_dir);
        if let Ok(addr) = std::env::var("DPSYN_ADDR") {
            config.addr = addr;
        }
        if let Ok(ms) = std::env::var("DPSYN_EXEC_TIMEOUT_MS") {
            let ms: u64 = ms
                .parse()
                .map_err(|_| "DPSYN_EXEC_TIMEOUT_MS must be an integer".to_string())?;
            config.exec_timeout = Duration::from_millis(ms);
        }
        if let Ok(ms) = std::env::var("DPSYN_IO_TIMEOUT_MS") {
            let ms: u64 = ms
                .parse()
                .map_err(|_| "DPSYN_IO_TIMEOUT_MS must be an integer".to_string())?;
            config.io_timeout = Duration::from_millis(ms);
        }
        if let Ok(bytes) = std::env::var("DPSYN_MAX_BODY_BYTES") {
            config.max_body_bytes = bytes
                .parse()
                .map_err(|_| "DPSYN_MAX_BODY_BYTES must be an integer".to_string())?;
        }
        Ok(config)
    }
}
