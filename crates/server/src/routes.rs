//! Path → handler dispatch.

use std::time::Duration;

use crate::handlers::{self, Reply};
use crate::store::Store;
use crate::wire::ApiError;

/// Routes one request to its handler.
pub fn dispatch(
    store: &Store,
    method: &str,
    path: &str,
    body: &[u8],
    exec_timeout: Duration,
) -> Reply {
    let segments: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
    match (method, segments.as_slice()) {
        ("GET", ["healthz"]) => handlers::health(store),
        ("POST", ["v1", "tenant"]) => handlers::create_tenant(store, body),
        ("GET", ["v1", "tenant", name]) => handlers::get_tenant(store, name),
        ("POST", ["v1", "dataset"]) => handlers::create_dataset(store, body),
        ("GET", ["v1", "dataset", name]) => handlers::get_dataset(store, name),
        ("POST", ["v1", "dataset", name, "updates"]) => handlers::update_dataset(store, name, body),
        ("POST", ["v1", "release"]) => handlers::release(store, body, exec_timeout),
        ("POST", ["v1", "debug", "sleep"]) => handlers::debug_sleep(body),
        // Right path, wrong method → 405; anything else → 404.
        (_, ["healthz"])
        | (_, ["v1", "tenant"])
        | (_, ["v1", "tenant", _])
        | (_, ["v1", "dataset"])
        | (_, ["v1", "dataset", _])
        | (_, ["v1", "dataset", _, "updates"])
        | (_, ["v1", "release"])
        | (_, ["v1", "debug", "sleep"]) => {
            let e = ApiError::new(405, "method_not_allowed", format!("{method} not allowed"));
            (e.status, e.body())
        }
        _ => {
            let e = ApiError::new(404, "not_found", format!("no route for {path}"));
            (e.status, e.body())
        }
    }
}
