//! Request handlers: admission control, the two-phase charge around each
//! release, and per-request fault isolation.
//!
//! The release path is the privacy-critical sequence:
//!
//! 1. validate the request (mechanism name, workload size) — *free*;
//! 2. [`Store::begin_charge`]: admission check + durable intent — the
//!    budget is reserved before any private data is touched;
//! 3. build the workload (data-independent; a failure here aborts the
//!    intent and **refunds**, because no randomness or data was consumed);
//! 4. run the mechanism inside [`run_isolated`] — its own thread, under
//!    `catch_unwind`, with a deadline;
//! 5. resolve: success commits and answers; a mechanism error, panic or
//!    timeout **also commits** (the conservative resolution — the
//!    mechanism may have consumed randomness derived from private data) and
//!    answers 5xx.
//!
//! Only the four *sound* mechanisms are exposed.  The deliberately flawed
//! Section 3.1 strawmen exist in `dpsyn-core` for experiments, but a
//! multi-tenant server handing out releases with broken sensitivity would
//! be a privacy bug by construction, so they are not routable.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::time::Duration;

use dpsyn_core::{
    HierarchicalRelease, Mechanism, MultiTable, SyntheticRelease, TwoTable, UniformizedTwoTable,
};
use dpsyn_noise::{seeded_rng, PrivacyParams};
use dpsyn_query::QueryFamily;

use crate::store::{BudgetView, Store};
use crate::wire::{
    f64_bits_hex, obj, ApiError, CreateDatasetReq, CreateTenantReq, Json, ReleaseReq, SleepReq,
    UpdateDatasetReq, WIRE_VERSION,
};

/// The names of the mechanisms the server will route (sound ones only).
pub const SERVED_MECHANISMS: [&str; 4] = [
    "two_table",
    "multi_table",
    "uniformized_two_table",
    "hierarchical",
];

/// Builds the named mechanism, or `None` for unknown/unserved names.
///
/// Construction is deliberately deferred to the execution thread (the
/// boxed trait object is not `Send`); this function is the *name check*
/// used for validation before any budget is reserved.
pub fn mechanism_by_name(name: &str) -> Option<Box<dyn Mechanism>> {
    match name {
        "two_table" => Some(Box::new(TwoTable::default())),
        "multi_table" => Some(Box::new(MultiTable::default())),
        "uniformized_two_table" => Some(Box::new(UniformizedTwoTable::default())),
        "hierarchical" => Some(Box::new(HierarchicalRelease::default())),
        _ => None,
    }
}

/// The outcome of an isolated execution.
#[derive(Debug)]
pub enum ExecOutcome<T> {
    /// The closure returned.
    Done(T),
    /// The closure panicked; the payload's message when extractable.
    Panicked(String),
    /// The deadline passed with the closure still running.  Its thread is
    /// detached (threads cannot be safely killed); the result is discarded
    /// if it ever arrives.
    TimedOut,
}

/// Runs `f` on its own thread under `catch_unwind` with a deadline.
///
/// This is the server's fault-isolation boundary: a panic or hang inside
/// one request must never take down the process or other tenants'
/// requests.
pub fn run_isolated<T, F>(timeout: Duration, f: F) -> ExecOutcome<T>
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    let (tx, rx) = mpsc::sync_channel(1);
    std::thread::spawn(move || {
        let result = catch_unwind(AssertUnwindSafe(f));
        // The receiver may be gone (timeout); that is fine.
        let _ = tx.send(result);
    });
    match rx.recv_timeout(timeout) {
        Ok(Ok(value)) => ExecOutcome::Done(value),
        Ok(Err(payload)) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "opaque panic payload".to_string());
            ExecOutcome::Panicked(msg)
        }
        Err(_) => ExecOutcome::TimedOut,
    }
}

/// A handler's result: HTTP status plus a JSON body.
pub type Reply = (u16, Json);

fn ok(body: Json) -> Reply {
    (200, body)
}

fn err_reply(e: ApiError) -> Reply {
    (e.status, e.body())
}

fn budget_json(view: &BudgetView) -> Json {
    obj(vec![
        (
            "grant",
            obj(vec![
                ("epsilon", Json::Num(view.grant.epsilon())),
                ("delta", Json::Num(view.grant.delta())),
            ]),
        ),
        (
            "spent",
            obj(vec![
                ("epsilon", Json::Num(view.spent.0)),
                ("delta", Json::Num(view.spent.1)),
                ("epsilon_bits", Json::Str(f64_bits_hex(view.spent.0))),
                ("delta_bits", Json::Str(f64_bits_hex(view.spent.1))),
            ]),
        ),
        (
            "remaining",
            obj(vec![
                ("epsilon", Json::Num(view.remaining.0)),
                ("delta", Json::Num(view.remaining.1)),
                ("epsilon_bits", Json::Str(f64_bits_hex(view.remaining.0))),
                ("delta_bits", Json::Str(f64_bits_hex(view.remaining.1))),
            ]),
        ),
        ("committed", Json::Num(view.committed as f64)),
        ("aborted", Json::Num(view.aborted as f64)),
        ("pending", Json::Num(view.pending as f64)),
    ])
}

fn parse_body(body: &[u8]) -> Result<Json, ApiError> {
    let text = std::str::from_utf8(body)
        .map_err(|_| ApiError::bad_request("bad_body", "body is not UTF-8"))?;
    Json::parse(text).map_err(|e| ApiError::bad_request("bad_json", e))
}

/// `GET /healthz`.
pub fn health(store: &Store) -> Reply {
    let recovery = store.recovery();
    ok(obj(vec![
        ("v", Json::Num(WIRE_VERSION as f64)),
        ("ok", Json::Bool(true)),
        ("tenants", Json::Num(store.tenant_count() as f64)),
        ("datasets", Json::Num(store.dataset_names().len() as f64)),
        (
            "recovery",
            obj(vec![
                ("records", Json::Num(recovery.records as f64)),
                (
                    "truncated_bytes",
                    Json::Num(recovery.truncated_bytes as f64),
                ),
                (
                    "resolved_intents",
                    Json::Num(recovery.resolved_intents as f64),
                ),
            ]),
        ),
    ]))
}

/// `POST /v1/tenant`.
pub fn create_tenant(store: &Store, body: &[u8]) -> Reply {
    let run = || -> Result<Reply, ApiError> {
        let req = CreateTenantReq::from_json(&parse_body(body)?)?;
        let grant = PrivacyParams::new(req.epsilon, req.delta)
            .map_err(|e| ApiError::bad_request("bad_params", e.to_string()))?;
        let view = store.create_tenant(&req.tenant, grant)?;
        Ok(ok(obj(vec![
            ("v", Json::Num(WIRE_VERSION as f64)),
            ("tenant", Json::Str(req.tenant)),
            ("budget", budget_json(&view)),
        ])))
    };
    run().unwrap_or_else(err_reply)
}

/// `GET /v1/tenant/<name>`.
pub fn get_tenant(store: &Store, name: &str) -> Reply {
    match store.tenant_budget(name) {
        Ok(view) => ok(obj(vec![
            ("v", Json::Num(WIRE_VERSION as f64)),
            ("tenant", Json::Str(name.to_string())),
            ("budget", budget_json(&view)),
        ])),
        Err(e) => err_reply(e),
    }
}

/// `POST /v1/dataset`.
pub fn create_dataset(store: &Store, body: &[u8]) -> Reply {
    let run = || -> Result<Reply, ApiError> {
        let req = CreateDatasetReq::from_json(&parse_body(body)?)?;
        let dataset = store.create_dataset(&req)?;
        Ok(ok(obj(vec![
            ("v", Json::Num(WIRE_VERSION as f64)),
            ("dataset", Json::Str(dataset.name.clone())),
            ("relations", Json::Num(dataset.query.num_relations() as f64)),
            (
                "fingerprint",
                Json::Str(format!("{:016x}", dataset.fingerprint)),
            ),
        ])))
    };
    run().unwrap_or_else(err_reply)
}

/// `POST /v1/dataset/<name>/updates` — apply an insert/delete batch to a
/// served dataset, maintaining its warm caches in place (semi-naive delta
/// maintenance; see `dpsyn_relational::stream`).  Touches no budget: the
/// tenant is charged when it *releases* over the updated data, not when it
/// writes.
pub fn update_dataset(store: &Store, name: &str, body: &[u8]) -> Reply {
    let run = || -> Result<Reply, ApiError> {
        let req = UpdateDatasetReq::from_json(&parse_body(body)?)?;
        let (dataset, report) = store.update_dataset(name, &req)?;
        Ok(ok(obj(vec![
            ("v", Json::Num(WIRE_VERSION as f64)),
            ("dataset", Json::Str(dataset.name.clone())),
            ("ops", Json::Num(report.ops as f64)),
            (
                "fingerprint",
                Json::Str(format!("{:016x}", dataset.fingerprint)),
            ),
            (
                "previous_fingerprint",
                Json::Str(format!("{:016x}", report.old_fingerprint)),
            ),
            (
                "maintenance",
                obj(vec![
                    ("warm", Json::Bool(report.warm)),
                    (
                        "maintained_masks",
                        Json::Num(report.stats.maintained_masks as f64),
                    ),
                    (
                        "rebuilt_masks",
                        Json::Num(report.stats.rebuilt_masks as f64),
                    ),
                    (
                        "relations_touched",
                        Json::Num(report.stats.relations_touched as f64),
                    ),
                    (
                        "dictionary_retained",
                        Json::Bool(report.dictionary_retained),
                    ),
                ]),
            ),
        ])))
    };
    run().unwrap_or_else(err_reply)
}

/// `GET /v1/dataset/<name>`.
pub fn get_dataset(store: &Store, name: &str) -> Reply {
    match store.dataset(name) {
        Ok(dataset) => {
            let (hits, misses) = dataset.ctx.cache_stats();
            ok(obj(vec![
                ("v", Json::Num(WIRE_VERSION as f64)),
                ("dataset", Json::Str(dataset.name.clone())),
                ("relations", Json::Num(dataset.query.num_relations() as f64)),
                (
                    "fingerprint",
                    Json::Str(format!("{:016x}", dataset.fingerprint)),
                ),
                (
                    "cache",
                    obj(vec![
                        ("hits", Json::Num(hits as f64)),
                        ("misses", Json::Num(misses as f64)),
                    ]),
                ),
            ]))
        }
        Err(e) => err_reply(e),
    }
}

/// `POST /v1/release` — the privacy-critical path (see the module docs for
/// the charge protocol).
pub fn release(store: &Store, body: &[u8], exec_timeout: Duration) -> Reply {
    let req = match parse_body(body).and_then(|v| ReleaseReq::from_json(&v)) {
        Ok(req) => req,
        Err(e) => return err_reply(e),
    };
    // Free validation first: nothing below may run for a request that could
    // never succeed.
    if mechanism_by_name(&req.mechanism).is_none() {
        return err_reply(ApiError::bad_request(
            "unknown_mechanism",
            format!(
                "mechanism {:?} is not served (available: {})",
                req.mechanism,
                SERVED_MECHANISMS.join(", ")
            ),
        ));
    }
    let cost = match PrivacyParams::new(req.epsilon, req.delta) {
        Ok(cost) => cost,
        Err(e) => return err_reply(ApiError::bad_request("bad_params", e.to_string())),
    };
    let dataset = match store.dataset(&req.dataset) {
        Ok(d) => d,
        Err(e) => return err_reply(e),
    };

    // Admission + durable intent: the point of no return for the budget.
    let label = format!("release:{}/{}", req.mechanism, req.dataset);
    let (seq, _) = match store.begin_charge(&req.tenant, cost, &label) {
        Ok(r) => r,
        Err(e) => return err_reply(e),
    };

    // Workload generation is data-independent (query shape + public seed),
    // so a failure here provably consumed nothing private: refund.
    let mut wl_rng = seeded_rng(req.workload_seed);
    let family = match QueryFamily::random_sign(&dataset.query, req.workload_size, &mut wl_rng) {
        Ok(f) => f,
        Err(e) => {
            let refund = store.abort_charge(&req.tenant, seq);
            let mut reply = ApiError::bad_request("bad_workload", e.to_string());
            if let Err(abort_err) = refund {
                // The refund itself failed (wedged ledger): surface that —
                // the budget stays conservatively reserved.
                reply = abort_err;
            }
            return err_reply(reply);
        }
    };

    // The mechanism runs isolated: own thread, catch_unwind, deadline.
    let mechanism_name = req.mechanism.clone();
    let seed = req.seed;
    let outcome: ExecOutcome<Result<(SyntheticRelease, Vec<f64>), String>> =
        run_isolated(exec_timeout, move || {
            let mechanism =
                mechanism_by_name(&mechanism_name).expect("name validated before charge");
            let mut rng = seeded_rng(seed);
            let release = mechanism
                .release_ctx(
                    &dataset.ctx,
                    &dataset.query,
                    &dataset.instance,
                    &family,
                    cost,
                    &mut rng,
                )
                .map_err(|e| e.to_string())?;
            let answers = release
                .answer_all(&family)
                .map(|a| a.values().to_vec())
                .map_err(|e| e.to_string())?;
            Ok((release, answers))
        });

    // Anything after the mechanism ran (or may have run) commits: the
    // randomness consumed is a function of private data, so the budget is
    // spent whether or not an answer exists.
    let (status, result_json) = match outcome {
        ExecOutcome::Done(Ok((release, answers))) => (
            200,
            obj(vec![
                ("mechanism", Json::Str(req.mechanism.clone())),
                ("noisy_total", Json::Num(release.noisy_total())),
                ("delta_tilde", Json::Num(release.delta_tilde())),
                (
                    "answers",
                    Json::Arr(answers.into_iter().map(Json::Num).collect()),
                ),
            ]),
        ),
        ExecOutcome::Done(Err(detail)) => (
            500,
            obj(vec![
                ("code", Json::Str("mechanism_error".to_string())),
                ("detail", Json::Str(detail)),
            ]),
        ),
        ExecOutcome::Panicked(detail) => (
            500,
            obj(vec![
                ("code", Json::Str("mechanism_panic".to_string())),
                ("detail", Json::Str(detail)),
            ]),
        ),
        ExecOutcome::TimedOut => (
            504,
            obj(vec![
                ("code", Json::Str("mechanism_timeout".to_string())),
                (
                    "detail",
                    Json::Str(format!(
                        "release exceeded the {}ms execution deadline; its budget is spent",
                        exec_timeout.as_millis()
                    )),
                ),
            ]),
        ),
    };
    let view = match store.commit_charge(&req.tenant, seq) {
        Ok(view) => view,
        Err(e) => return err_reply(e),
    };
    let mut fields = vec![
        ("v", Json::Num(WIRE_VERSION as f64)),
        ("tenant", Json::Str(req.tenant)),
        ("charge_seq", Json::Num(seq as f64)),
        ("budget", budget_json(&view)),
    ];
    if status == 200 {
        fields.push(("result", result_json));
    } else {
        fields.push(("error", result_json));
    }
    (status, obj(fields))
}

/// `POST /v1/debug/sleep` — holds the request open so tests can observe
/// drain behaviour.  Touches no budget and no data.
pub fn debug_sleep(body: &[u8]) -> Reply {
    let run = || -> Result<Reply, ApiError> {
        let req = SleepReq::from_json(&parse_body(body)?)?;
        std::thread::sleep(Duration::from_millis(req.ms));
        Ok(ok(obj(vec![
            ("v", Json::Num(WIRE_VERSION as f64)),
            ("slept_ms", Json::Num(req.ms as f64)),
        ])))
    };
    run().unwrap_or_else(err_reply)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_isolated_returns_values() {
        match run_isolated(Duration::from_secs(5), || 41 + 1) {
            ExecOutcome::Done(42) => {}
            other => panic!("unexpected outcome: {other:?}"),
        }
    }

    #[test]
    fn run_isolated_contains_panics() {
        match run_isolated(Duration::from_secs(5), || -> u32 { panic!("boom {}", 7) }) {
            ExecOutcome::Panicked(msg) => assert!(msg.contains("boom 7")),
            other => panic!("unexpected outcome: {other:?}"),
        }
    }

    #[test]
    fn run_isolated_enforces_deadline() {
        match run_isolated(Duration::from_millis(50), || {
            std::thread::sleep(Duration::from_secs(10));
            0u32
        }) {
            ExecOutcome::TimedOut => {}
            other => panic!("unexpected outcome: {other:?}"),
        }
    }

    #[test]
    fn only_sound_mechanisms_are_served() {
        for name in SERVED_MECHANISMS {
            assert!(mechanism_by_name(name).is_some(), "{name} must be served");
        }
        // The Section 3.1 strawmen exist in dpsyn-core but must not be
        // routable here.
        assert!(mechanism_by_name("flawed_join_as_one").is_none());
        assert!(mechanism_by_name("flawed_pad_after").is_none());
        assert!(mechanism_by_name("").is_none());
    }
}
