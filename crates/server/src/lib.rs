//! `dpsyn-server`: a crash-safe, multi-tenant differentially private release
//! server.
//!
//! The engine crates answer the *statistical* question — how to release a
//! join synopsis under `(ε, δ)`-DP.  This crate answers the *operational*
//! one: how to serve those releases to multiple tenants such that **no
//! crash, at any instant, lets a tenant exceed its privacy budget**.
//!
//! Four pillars:
//!
//! 1. **Durable budget ledger** ([`store`]): every tenant's spend lives in
//!    an append-only, CRC-checksummed, fsync'd ledger file
//!    (format: [`dpsyn_noise::ledger`]).  Charges use a two-phase
//!    *intent → commit/abort* protocol — the intent is durable **before**
//!    the mechanism touches data, and recovery resolves unresolved intents
//!    conservatively (as spent).  Startup replays the ledger, truncating a
//!    torn final record and refusing to start on real corruption.
//! 2. **Admission control** ([`handlers`], [`wire`]): requests are parsed
//!    from bounded bodies into versioned wire structs and checked against
//!    the tenant's *remaining* budget before any data is touched; an
//!    over-budget request is rejected with `429` and zero side effects.
//! 3. **Fault isolation** ([`handlers::run_isolated`]): each mechanism
//!    execution runs on its own thread under `catch_unwind` with a
//!    deadline; a panicking or hung release burns its (already-intended)
//!    budget but never takes the server down.  SIGTERM drains in-flight
//!    requests before exit ([`server`]).
//! 4. **Failpoints** ([`failpoint`]): `DPSYN_FAILPOINT=ledger_pre_commit`
//!    (and friends) crash the process at precisely chosen ledger-write
//!    instants, so the integration suite can kill and restart the server at
//!    every point of the two-phase protocol and assert that recovered
//!    budgets match an independent oracle replay *bit for bit*.
//!
//! Datasets themselves are mutable between releases:
//! `POST /v1/dataset/{id}/updates` applies a versioned batch of inserts and
//! deletes (`{"v":1,"updates":[{"relation":0,"op":"insert","tuple":[1,2],
//! "count":3}, ...]}`) through `ExecContext::apply_updates`, so the
//! dataset's warm sub-join caches are delta-maintained in place rather than
//! rebuilt — a post-update release is byte-identical to one over a freshly
//! uploaded copy of the updated data.  Updates touch no budget (writes are
//! free; *releases* are charged) and, like uploads, are in-memory only.
//!
//! The HTTP layer ([`http`]) is a deliberately small hand-rolled HTTP/1.1
//! over [`std::net::TcpListener`] — one request per connection, bounded
//! head and body, no external dependencies — because the build environment
//! is offline and the workload (a handful of tenants running expensive DP
//! releases) needs robustness, not throughput.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod failpoint;
pub mod handlers;
pub mod http;
pub mod routes;
pub mod server;
pub mod store;
pub mod wire;

pub use config::ServerConfig;
pub use server::{start, ServerHandle};
pub use store::{RecoveryReport, Store};
pub use wire::{ApiError, Json, WIRE_VERSION};
