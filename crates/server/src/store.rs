//! The server's durable state: the budget ledger file, tenants, datasets,
//! and the pool of per-instance execution contexts.
//!
//! **Durability protocol.**  Every mutation of budget state is one
//! append-only record in `<data_dir>/ledger.log` (format:
//! [`dpsyn_noise::ledger`]), written and `fsync`'d *before* the in-memory
//! state changes and before any response is sent.  A charge is two records:
//! an [`LedgerRecord::Intent`] durable **before** the mechanism touches
//! data, and a [`LedgerRecord::Commit`] (or, for failures known to precede
//! any data access, an [`LedgerRecord::Abort`]) after.  A crash between the
//! two leaves a pending intent; [`Store::open`] resolves it conservatively
//! by appending a `Commit` during recovery — the mechanism may have
//! consumed randomness, so the budget must count as gone.
//!
//! Recovery appends the resolution commits in sequence order on top of the
//! replayed commits, which performs *exactly* the same compensated
//! additions in the same order as the live path's conservative
//! [`TenantLedgerState::spent`] — recovered remaining budgets match what an
//! independent oracle computes from the pre-crash bytes **bit for bit**.
//!
//! Datasets and contexts are in-memory only: the private instance is
//! re-uploaded after a restart (re-uploading data costs nothing; losing a
//! budget charge is a privacy violation).  An I/O error while appending
//! wedges the store — all further budget mutations answer `503` — because
//! continuing to charge against a ledger that no longer persists would
//! silently degrade to the non-durable accountant.

use std::collections::{BTreeMap, HashMap};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

use dpsyn_noise::ledger::{valid_label, valid_tenant, LedgerRecord, LedgerReplay};
use dpsyn_noise::{PrivacyParams, TenantLedgerState};
use dpsyn_relational::{
    instance_fingerprint, AttrId, Attribute, ExecContext, Instance, JoinQuery, Schema, UpdateBatch,
    UpdateReport,
};

use crate::failpoint;
use crate::wire::{ApiError, CreateDatasetReq, UpdateDatasetReq};

/// Name of the ledger file inside the data directory.
pub const LEDGER_FILE: &str = "ledger.log";

/// What [`Store::open`] found and did during ledger recovery.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RecoveryReport {
    /// Valid records replayed.
    pub records: usize,
    /// Bytes truncated as a torn final record (0 when the tail was clean).
    pub truncated_bytes: u64,
    /// Pending intents conservatively committed during recovery.
    pub resolved_intents: usize,
}

/// An uploaded dataset: the query/instance pair plus its fingerprinted
/// execution context (shared by every release over this dataset, so the
/// sub-join lattice stays warm across requests).
#[derive(Debug)]
pub struct Dataset {
    /// Dataset name.
    pub name: String,
    /// The join query implied by the uploaded relation attribute lists.
    pub query: Arc<JoinQuery>,
    /// The private instance.
    pub instance: Arc<Instance>,
    /// Structural fingerprint of the `(query, instance)` pair.
    pub fingerprint: u64,
    /// The execution context serving this dataset's releases.
    pub ctx: Arc<ExecContext>,
}

/// A tenant's budget position, for embedding in responses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BudgetView {
    /// The tenant's total grant.
    pub grant: PrivacyParams,
    /// Conservative spend (committed plus pending).
    pub spent: (f64, f64),
    /// Conservative remaining budget, clamped at zero.
    pub remaining: (f64, f64),
    /// Committed charge count.
    pub committed: u64,
    /// Aborted charge count.
    pub aborted: u64,
    /// Pending (unresolved) charge count.
    pub pending: usize,
}

fn view_of(state: &TenantLedgerState) -> BudgetView {
    BudgetView {
        grant: state.grant(),
        spent: state.spent(),
        remaining: state.remaining(),
        committed: state.committed_count(),
        aborted: state.aborted_count(),
        pending: state.pending().len(),
    }
}

struct StoreInner {
    ledger: File,
    tenants: BTreeMap<String, TenantLedgerState>,
    datasets: BTreeMap<String, Arc<Dataset>>,
    contexts: HashMap<u64, Arc<ExecContext>>,
    /// Set when a ledger append failed at the I/O layer; all further budget
    /// mutations are refused (503) — an unpersisted charge would be a
    /// silent privacy leak after the next crash.
    wedged: bool,
}

/// The server's state store.  All methods are `&self`; one mutex guards the
/// ledger file and the in-memory maps together, so record order in the file
/// always matches application order in memory.
pub struct Store {
    data_dir: PathBuf,
    inner: Mutex<StoreInner>,
    recovery: RecoveryReport,
}

impl Store {
    /// Opens (creating if necessary) the ledger under `data_dir`, replays
    /// it, truncates a torn tail, and conservatively commits any pending
    /// intents.  Fails on real (non-tail) corruption.
    pub fn open(data_dir: impl Into<PathBuf>) -> Result<Store, String> {
        let data_dir = data_dir.into();
        std::fs::create_dir_all(&data_dir)
            .map_err(|e| format!("cannot create data dir {}: {e}", data_dir.display()))?;
        let path = data_dir.join(LEDGER_FILE);
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)
            .map_err(|e| format!("cannot open ledger {}: {e}", path.display()))?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)
            .map_err(|e| format!("cannot read ledger: {e}"))?;

        let replay = LedgerReplay::replay(&bytes)
            .map_err(|e| format!("refusing to start: {e} (ledger {})", path.display()))?;
        let mut report = RecoveryReport {
            records: replay.records,
            truncated_bytes: (bytes.len() - replay.valid_len) as u64,
            resolved_intents: 0,
        };
        if replay.torn_tail {
            file.set_len(replay.valid_len as u64)
                .map_err(|e| format!("cannot truncate torn ledger tail: {e}"))?;
            file.sync_data()
                .map_err(|e| format!("cannot sync ledger: {e}"))?;
        }
        file.seek(SeekFrom::End(0))
            .map_err(|e| format!("cannot seek ledger: {e}"))?;

        // Conservative resolution: commit every pending intent, in tenant
        // then sequence order (both BTreeMaps, so the order — and therefore
        // the compensated sums — is deterministic and matches the replay's
        // own `spent()` accumulation order).
        let mut tenants = replay.tenants;
        for (tenant, state) in tenants.iter_mut() {
            let pending: Vec<u64> = state.pending().keys().copied().collect();
            for seq in pending {
                let record = LedgerRecord::Commit {
                    tenant: tenant.clone(),
                    seq,
                };
                append_record(&mut file, &record, None)
                    .map_err(|e| format!("cannot resolve pending intent: {e}"))?;
                state
                    .commit(seq)
                    .map_err(|e| format!("recovery commit failed: {e}"))?;
                report.resolved_intents += 1;
            }
        }

        Ok(Store {
            data_dir,
            inner: Mutex::new(StoreInner {
                ledger: file,
                tenants,
                datasets: BTreeMap::new(),
                contexts: HashMap::new(),
                wedged: false,
            }),
            recovery: report,
        })
    }

    /// What recovery found when this store was opened.
    pub fn recovery(&self) -> &RecoveryReport {
        &self.recovery
    }

    /// The data directory this store persists into.
    pub fn data_dir(&self) -> &PathBuf {
        &self.data_dir
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, StoreInner> {
        // A poisoned store mutex means a panic while the ledger file and
        // maps were mid-update; recovering the guard could expose state the
        // ledger does not back.  The process-level answer is restart +
        // replay, which is exactly what the ledger is for.
        self.inner.lock().unwrap_or_else(|_| {
            eprintln!("dpsyn-serve: store mutex poisoned — aborting for ledger replay");
            std::process::abort()
        })
    }

    /// Creates a tenant with its total grant.  Durable before it returns.
    pub fn create_tenant(
        &self,
        tenant: &str,
        grant: PrivacyParams,
    ) -> Result<BudgetView, ApiError> {
        if !valid_tenant(tenant) {
            return Err(ApiError::bad_request(
                "bad_tenant",
                "tenant names are 1-64 chars of [A-Za-z0-9_-]",
            ));
        }
        let mut inner = self.lock();
        check_wedged(&inner)?;
        if inner.tenants.contains_key(tenant) {
            return Err(ApiError::new(409, "tenant_exists", "tenant already exists"));
        }
        let record = LedgerRecord::Grant {
            tenant: tenant.to_string(),
            grant,
        };
        write_or_wedge(&mut inner, &record, None)?;
        let state = TenantLedgerState::new(grant);
        let view = view_of(&state);
        inner.tenants.insert(tenant.to_string(), state);
        Ok(view)
    }

    /// The tenant's current budget position.
    pub fn tenant_budget(&self, tenant: &str) -> Result<BudgetView, ApiError> {
        let inner = self.lock();
        inner
            .tenants
            .get(tenant)
            .map(view_of)
            .ok_or_else(|| ApiError::new(404, "unknown_tenant", "no such tenant"))
    }

    /// Admission control + phase one of a charge: checks the cost against
    /// the tenant's conservative remaining budget and, if admitted, makes
    /// the intent durable.  Returns the charge's sequence number.
    ///
    /// Nothing private has been touched when this returns an error, so
    /// rejections have zero privacy cost.
    pub fn begin_charge(
        &self,
        tenant: &str,
        cost: PrivacyParams,
        label: &str,
    ) -> Result<(u64, BudgetView), ApiError> {
        debug_assert!(valid_label(label), "internal labels are always valid");
        let mut inner = self.lock();
        check_wedged(&inner)?;
        let state = inner
            .tenants
            .get(tenant)
            .ok_or_else(|| ApiError::new(404, "unknown_tenant", "no such tenant"))?;
        if !state.admits(cost) {
            let (rem_eps, rem_delta) = state.remaining();
            return Err(ApiError::new(
                429,
                "budget_exhausted",
                format!(
                    "charge (ε={}, δ={}) exceeds remaining budget (ε={rem_eps}, δ={rem_delta})",
                    cost.epsilon(),
                    cost.delta()
                ),
            ));
        }
        let seq = state.next_seq();
        let record = LedgerRecord::Intent {
            tenant: tenant.to_string(),
            seq,
            cost,
            label: label.to_string(),
        };
        write_or_wedge(
            &mut inner,
            &record,
            Some([
                "ledger_pre_intent",
                "ledger_mid_intent",
                "ledger_post_intent",
            ]),
        )?;
        let state = inner.tenants.get_mut(tenant).expect("checked above");
        state
            .begin_intent(seq, cost)
            .map_err(|e| ApiError::new(500, "ledger_protocol", e.to_string()))?;
        Ok((seq, view_of(state)))
    }

    /// Phase two, success: the charge is spent for good.
    pub fn commit_charge(&self, tenant: &str, seq: u64) -> Result<BudgetView, ApiError> {
        self.resolve(tenant, seq, true)
    }

    /// Phase two, safe failure: the charge is released.  Callers must only
    /// use this when the mechanism is known not to have touched data or
    /// randomness.
    pub fn abort_charge(&self, tenant: &str, seq: u64) -> Result<BudgetView, ApiError> {
        self.resolve(tenant, seq, false)
    }

    fn resolve(&self, tenant: &str, seq: u64, commit: bool) -> Result<BudgetView, ApiError> {
        let mut inner = self.lock();
        check_wedged(&inner)?;
        if !inner.tenants.contains_key(tenant) {
            return Err(ApiError::new(404, "unknown_tenant", "no such tenant"));
        }
        let (record, failpoints) = if commit {
            (
                LedgerRecord::Commit {
                    tenant: tenant.to_string(),
                    seq,
                },
                Some([
                    "ledger_pre_commit",
                    "ledger_mid_commit",
                    "ledger_post_commit",
                ]),
            )
        } else {
            (
                LedgerRecord::Abort {
                    tenant: tenant.to_string(),
                    seq,
                },
                None,
            )
        };
        write_or_wedge(&mut inner, &record, failpoints)?;
        let state = inner.tenants.get_mut(tenant).expect("checked above");
        let result = if commit {
            state.commit(seq)
        } else {
            state.abort(seq)
        };
        result.map_err(|e| ApiError::new(500, "ledger_protocol", e.to_string()))?;
        Ok(view_of(state))
    }

    /// Uploads a dataset, building its query, instance, fingerprint and
    /// execution context.  In-memory only (datasets are re-uploaded after a
    /// restart); involves no budget, so it never touches the ledger.
    pub fn create_dataset(&self, req: &CreateDatasetReq) -> Result<Arc<Dataset>, ApiError> {
        if !valid_tenant(&req.name) {
            return Err(ApiError::bad_request(
                "bad_dataset",
                "dataset names are 1-64 chars of [A-Za-z0-9_-]",
            ));
        }
        let attrs: Vec<Attribute> = req
            .domains
            .iter()
            .enumerate()
            .map(|(i, &dom)| Attribute::new(format!("a{i}"), dom))
            .collect();
        let schema = Schema::new(attrs);
        let rel_attrs: Vec<Vec<AttrId>> = req
            .relations
            .iter()
            .map(|r| r.attrs.iter().map(|&a| AttrId(a)).collect())
            .collect();
        let query = JoinQuery::new(schema, rel_attrs)
            .map_err(|e| ApiError::bad_request("bad_query", e.to_string()))?;
        let mut instance = Instance::empty_for(&query)
            .map_err(|e| ApiError::bad_request("bad_query", e.to_string()))?;
        for (i, rel) in req.relations.iter().enumerate() {
            for (tuple, freq) in &rel.tuples {
                instance
                    .relation_mut(i)
                    .add(tuple.clone(), *freq)
                    .map_err(|e| ApiError::bad_request("bad_tuple", e.to_string()))?;
            }
        }
        instance
            .validate(&query)
            .map_err(|e| ApiError::bad_request("bad_instance", e.to_string()))?;

        let fingerprint = instance_fingerprint(&query, &instance);
        let mut inner = self.lock();
        if inner.datasets.contains_key(&req.name) {
            return Err(ApiError::new(
                409,
                "dataset_exists",
                "dataset already exists",
            ));
        }
        let ctx = inner
            .contexts
            .entry(fingerprint)
            .or_insert_with(|| Arc::new(ExecContext::default()))
            .clone();
        let dataset = Arc::new(Dataset {
            name: req.name.clone(),
            query: Arc::new(query),
            instance: Arc::new(instance),
            fingerprint,
            ctx,
        });
        inner.datasets.insert(req.name.clone(), dataset.clone());
        Ok(dataset)
    }

    /// Applies an update batch to a served dataset, maintaining its warm
    /// execution state in place (`ExecContext::apply_updates`: the cached
    /// sub-join lattice, full join, delta plan and dictionary migrate to
    /// the updated instance's fingerprint instead of being orphaned).
    ///
    /// Like uploads, updates are in-memory only and never touch the ledger.
    /// The maintenance itself runs outside the store lock; the swap-in is
    /// optimistic — if another request changed the dataset meanwhile, this
    /// one answers `409` and the client retries against the new state.
    pub fn update_dataset(
        &self,
        name: &str,
        req: &UpdateDatasetReq,
    ) -> Result<(Arc<Dataset>, UpdateReport), ApiError> {
        let ds = self.dataset(name)?;
        let mut batch = UpdateBatch::new();
        for op in &req.ops {
            if op.relation >= ds.query.num_relations() {
                return Err(ApiError::bad_request(
                    "bad_field",
                    format!(
                        "relation {} out of range (dataset has {})",
                        op.relation,
                        ds.query.num_relations()
                    ),
                ));
            }
            if op.insert {
                batch.insert(op.relation, op.tuple.clone(), op.count);
            } else {
                batch.delete(op.relation, op.tuple.clone(), op.count);
            }
        }
        let mut instance = (*ds.instance).clone();
        let report = ds
            .ctx
            .apply_updates(&ds.query, &mut instance, &batch)
            .map_err(|e| ApiError::bad_request("bad_update", e.to_string()))?;

        let mut inner = self.lock();
        match inner.datasets.get(name) {
            Some(current) if current.fingerprint == report.old_fingerprint => {}
            Some(_) => {
                return Err(ApiError::new(
                    409,
                    "dataset_conflict",
                    "dataset was modified concurrently; retry against the new state",
                ))
            }
            None => return Err(ApiError::new(404, "unknown_dataset", "no such dataset")),
        }
        let updated = Arc::new(Dataset {
            name: ds.name.clone(),
            query: ds.query.clone(),
            instance: Arc::new(instance),
            fingerprint: report.new_fingerprint,
            ctx: ds.ctx.clone(),
        });
        inner.datasets.insert(name.to_string(), updated.clone());
        // Re-key the context pool: future uploads with the updated content
        // share this (still-warm) context; the old fingerprint's entry is
        // dropped once no dataset serves it any more.
        inner
            .contexts
            .entry(report.new_fingerprint)
            .or_insert_with(|| updated.ctx.clone());
        let old_fp = report.old_fingerprint;
        if old_fp != report.new_fingerprint
            && !inner.datasets.values().any(|d| d.fingerprint == old_fp)
        {
            inner.contexts.remove(&old_fp);
        }
        Ok((updated, report))
    }

    /// Looks up a dataset by name.
    pub fn dataset(&self, name: &str) -> Result<Arc<Dataset>, ApiError> {
        self.lock()
            .datasets
            .get(name)
            .cloned()
            .ok_or_else(|| ApiError::new(404, "unknown_dataset", "no such dataset"))
    }

    /// Names of the datasets currently loaded.
    pub fn dataset_names(&self) -> Vec<String> {
        self.lock().datasets.keys().cloned().collect()
    }

    /// Number of tenants.
    pub fn tenant_count(&self) -> usize {
        self.lock().tenants.len()
    }
}

fn check_wedged(inner: &StoreInner) -> Result<(), ApiError> {
    if inner.wedged {
        Err(ApiError::new(
            503,
            "ledger_wedged",
            "a previous ledger write failed; budget mutations are disabled until restart",
        ))
    } else {
        Ok(())
    }
}

fn write_or_wedge(
    inner: &mut StoreInner,
    record: &LedgerRecord,
    failpoints: Option<[&str; 3]>,
) -> Result<(), ApiError> {
    append_record(&mut inner.ledger, record, failpoints).map_err(|e| {
        inner.wedged = true;
        ApiError::new(503, "ledger_io", format!("ledger append failed: {e}"))
    })
}

/// Appends one record and fsyncs, hitting the `[pre, mid, post]` failpoints
/// when armed.  The `mid` site writes *half* the record and fsyncs before
/// crashing — the canonical torn write that recovery must truncate.
fn append_record(
    file: &mut File,
    record: &LedgerRecord,
    failpoints: Option<[&str; 3]>,
) -> std::io::Result<()> {
    let line = record.encode();
    let bytes = line.as_bytes();
    if let Some([pre, mid, post]) = failpoints {
        failpoint::maybe_crash(pre);
        if failpoint::should_fail(mid) {
            file.write_all(&bytes[..bytes.len() / 2])?;
            file.sync_data()?;
            failpoint::crash(mid);
        }
        file.write_all(bytes)?;
        file.sync_data()?;
        failpoint::maybe_crash(post);
    } else {
        file.write_all(bytes)?;
        file.sync_data()?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(eps: f64, delta: f64) -> PrivacyParams {
        PrivacyParams::new(eps, delta).unwrap()
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dpsyn-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn charges_survive_reopen_bit_exactly() {
        let dir = temp_dir("reopen");
        let spent_before;
        {
            let store = Store::open(&dir).unwrap();
            store.create_tenant("acme", params(1.0, 1e-6)).unwrap();
            for _ in 0..10 {
                let (seq, _) = store
                    .begin_charge("acme", params(0.07, 1e-8), "release:two_table/d")
                    .unwrap();
                store.commit_charge("acme", seq).unwrap();
            }
            spent_before = store.tenant_budget("acme").unwrap().spent;
        }
        let store = Store::open(&dir).unwrap();
        assert_eq!(store.recovery().resolved_intents, 0);
        assert_eq!(store.recovery().truncated_bytes, 0);
        let after = store.tenant_budget("acme").unwrap();
        assert_eq!(after.spent.0.to_bits(), spent_before.0.to_bits());
        assert_eq!(after.spent.1.to_bits(), spent_before.1.to_bits());
        assert_eq!(after.committed, 10);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn pending_intent_is_conservatively_committed_on_reopen() {
        let dir = temp_dir("pending");
        {
            let store = Store::open(&dir).unwrap();
            store.create_tenant("t", params(1.0, 0.0)).unwrap();
            // Intent without resolution: simulates a crash mid-charge.
            store
                .begin_charge("t", params(0.4, 0.0), "release:x/y")
                .unwrap();
        }
        let store = Store::open(&dir).unwrap();
        assert_eq!(store.recovery().resolved_intents, 1);
        let view = store.tenant_budget("t").unwrap();
        assert_eq!(view.spent.0.to_bits(), 0.4f64.to_bits());
        assert_eq!(view.committed, 1);
        assert_eq!(view.pending, 0);
        // And the resolution itself is durable: a third open sees a clean
        // ledger with nothing left to resolve.
        drop(store);
        let store = Store::open(&dir).unwrap();
        assert_eq!(store.recovery().resolved_intents, 0);
        assert_eq!(
            store.tenant_budget("t").unwrap().spent.0.to_bits(),
            0.4f64.to_bits()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_on_open() {
        let dir = temp_dir("torn");
        {
            let store = Store::open(&dir).unwrap();
            store.create_tenant("t", params(1.0, 0.0)).unwrap();
            let (seq, _) = store.begin_charge("t", params(0.25, 0.0), "a").unwrap();
            store.commit_charge("t", seq).unwrap();
        }
        // Tear the file mid-record.
        let path = dir.join(LEDGER_FILE);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 7]).unwrap();

        let store = Store::open(&dir).unwrap();
        assert!(store.recovery().truncated_bytes > 0);
        // The torn record was the commit; its intent is now pending and
        // recovery resolved it conservatively — the spend is unchanged.
        assert_eq!(store.recovery().resolved_intents, 1);
        let view = store.tenant_budget("t").unwrap();
        assert_eq!(view.spent.0.to_bits(), 0.25f64.to_bits());
        // The file on disk is now clean: reopen finds no tear.
        drop(store);
        let store = Store::open(&dir).unwrap();
        assert_eq!(store.recovery().truncated_bytes, 0);
        assert_eq!(
            store.tenant_budget("t").unwrap().spent.0.to_bits(),
            0.25f64.to_bits()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn admission_rejects_before_any_side_effect() {
        let dir = temp_dir("admission");
        let store = Store::open(&dir).unwrap();
        store.create_tenant("t", params(0.5, 0.0)).unwrap();
        let ledger_len = std::fs::metadata(dir.join(LEDGER_FILE)).unwrap().len();
        let err = store
            .begin_charge("t", params(0.6, 0.0), "too-big")
            .unwrap_err();
        assert_eq!(err.status, 429);
        assert_eq!(err.code, "budget_exhausted");
        // No intent was written for the rejected charge.
        assert_eq!(
            std::fs::metadata(dir.join(LEDGER_FILE)).unwrap().len(),
            ledger_len
        );
        // An admitted charge then aborts cleanly, releasing the budget.
        let (seq, _) = store.begin_charge("t", params(0.5, 0.0), "ok").unwrap();
        let view = store.abort_charge("t", seq).unwrap();
        assert_eq!(view.spent.0, 0.0);
        assert_eq!(view.aborted, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn duplicate_tenant_and_unknown_lookups() {
        let dir = temp_dir("dup");
        let store = Store::open(&dir).unwrap();
        store.create_tenant("t", params(1.0, 0.0)).unwrap();
        assert_eq!(
            store
                .create_tenant("t", params(1.0, 0.0))
                .unwrap_err()
                .status,
            409
        );
        assert_eq!(
            store
                .create_tenant("bad name", params(1.0, 0.0))
                .unwrap_err()
                .status,
            400
        );
        assert_eq!(store.tenant_budget("nope").unwrap_err().status, 404);
        assert_eq!(
            store
                .begin_charge("nope", params(0.1, 0.0), "x")
                .unwrap_err()
                .status,
            404
        );
        assert_eq!(store.dataset("nope").unwrap_err().status, 404);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn datasets_share_contexts_by_fingerprint() {
        let dir = temp_dir("ds");
        let store = Store::open(&dir).unwrap();
        let req = CreateDatasetReq {
            name: "d1".to_string(),
            domains: vec![4, 4],
            relations: vec![
                crate::wire::RelationSpec {
                    attrs: vec![0, 1],
                    tuples: vec![(vec![0, 1], 2), (vec![1, 1], 1)],
                },
                crate::wire::RelationSpec {
                    attrs: vec![1],
                    tuples: vec![(vec![1], 3)],
                },
            ],
        };
        let d1 = store.create_dataset(&req).unwrap();
        assert_eq!(store.create_dataset(&req).unwrap_err().status, 409);
        let mut req2 = req.clone();
        req2.name = "d2".to_string();
        let d2 = store.create_dataset(&req2).unwrap();
        // Identical (query, instance) → same fingerprint → same context.
        assert_eq!(d1.fingerprint, d2.fingerprint);
        assert!(Arc::ptr_eq(&d1.ctx, &d2.ctx));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
