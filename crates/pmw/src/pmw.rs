//! Algorithm 2: the `PMW_{ε,δ,Δ̃}` release procedure.
//!
//! The procedure treats the join result of the input instance as a single
//! table over the joint domain and releases a synthetic histogram:
//!
//! 1. `n̂ ← count(I) + TLap^{τ(ε/2, δ/2, Δ̃)}_{2Δ̃/ε}` — a noisy, non-negative
//!    over-estimate of the join size, calibrated to the *externally supplied*
//!    sensitivity bound `Δ̃` (this is the crucial difference from single-table
//!    PMW and the reason the multi-table algorithms must compute `Δ̃`
//!    privately before calling in here);
//! 2. `F_0` ← uniform histogram of mass `n̂`;
//! 3. for `k` rounds: select a badly-answered query with the exponential
//!    mechanism (per-round budget `ε' = ε / (16√(k·ln(1/δ)))`), measure it
//!    with Laplace noise of scale `Δ̃/ε'`, and apply the multiplicative-weights
//!    update;
//! 4. release the average of the iterates.

use dpsyn_noise::budget::advanced_composition_per_step_epsilon;
use dpsyn_noise::{exponential_mechanism, Laplace, PrivacyParams, TruncatedLaplace};
use dpsyn_query::QueryFamily;
use dpsyn_relational::{join, Instance, JoinQuery};
use rand::Rng;

use crate::error::PmwError;
use crate::histogram::{Histogram, DEFAULT_MAX_CELLS};
use crate::theory::recommended_iterations;
use crate::Result;

/// Configuration of the PMW release procedure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PmwConfig {
    /// Hard cap on the number of multiplicative-weights iterations.
    pub max_iterations: usize,
    /// Overrides the theory-driven iteration count when set.
    pub iterations_override: Option<usize>,
    /// Cap on the dense joint-domain size.
    pub max_domain_cells: u128,
    /// Cap on `|Q| · |dom(x)|` for the pre-computed query weight vectors.
    pub max_weight_entries: u128,
}

impl Default for PmwConfig {
    fn default() -> Self {
        PmwConfig {
            max_iterations: 200,
            iterations_override: None,
            max_domain_cells: DEFAULT_MAX_CELLS,
            max_weight_entries: 1 << 26,
        }
    }
}

/// The output of a PMW run.
#[derive(Debug, Clone)]
pub struct PmwOutput {
    /// The released synthetic histogram (average of the iterates).
    pub histogram: Histogram,
    /// The noisy total `n̂` used to initialise and renormalise the histogram.
    pub noisy_total: f64,
    /// Number of iterations performed.
    pub iterations: usize,
    /// Indices (into the query family) selected by the exponential mechanism,
    /// in order — useful for diagnostics.
    pub selected_queries: Vec<usize>,
}

/// The `PMW_{ε,δ,Δ̃}` procedure (Algorithm 2).
#[derive(Debug, Clone, Default)]
pub struct Pmw {
    config: PmwConfig,
}

impl Pmw {
    /// Creates a PMW runner with the given configuration.
    pub fn new(config: PmwConfig) -> Self {
        Pmw { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &PmwConfig {
        &self.config
    }

    /// Runs `PMW_{ε,δ,Δ̃}(I)` and returns the released histogram.
    ///
    /// `delta_tilde` is the externally-derived (already private) upper bound
    /// on how much `count(·)` can differ between neighbouring instances; the
    /// caller is responsible for its provenance (Algorithm 1 or 3).
    pub fn run<R: Rng>(
        &self,
        query: &JoinQuery,
        instance: &Instance,
        family: &QueryFamily,
        params: PrivacyParams,
        delta_tilde: f64,
        rng: &mut R,
    ) -> Result<PmwOutput> {
        if delta_tilde.is_nan() || delta_tilde < 0.0 || delta_tilde.is_infinite() {
            return Err(PmwError::InvalidConfig(format!(
                "delta_tilde must be a non-negative finite number, got {delta_tilde}"
            )));
        }
        // A zero sensitivity bound still needs a positive noise scale; the
        // paper's Δ̃ is ≥ the (noisy) local sensitivity which is ≥ 0, and the
        // mechanism remains private for any Δ̃ ≥ the true bound, so flooring at
        // 1 only costs accuracy, never privacy.
        let delta_tilde = delta_tilde.max(1.0);
        let epsilon = params.epsilon();
        let delta = params.delta();

        // Line 1: noisy join size.
        let join_result = join(query, instance)?;
        let count = join_result.total() as f64;
        let tlap = TruncatedLaplace::calibrated(
            epsilon / 2.0,
            (delta / 2.0).max(f64::MIN_POSITIVE),
            delta_tilde,
        )?;
        let noisy_total = count + tlap.sample(rng);

        // Line 2: uniform initial histogram.
        let log2_domain = query.schema().log2_full_domain();
        let mut current = Histogram::uniform(query, noisy_total, self.config.max_domain_cells)?;

        // Iteration budget (Appendix A) and per-round ε (line 3).
        let k = self.config.iterations_override.unwrap_or_else(|| {
            recommended_iterations(
                noisy_total,
                delta_tilde,
                log2_domain,
                family.len(),
                epsilon,
                delta,
                self.config.max_iterations,
            )
        });
        let k = k.clamp(1, self.config.max_iterations.max(1));
        let eps_prime = advanced_composition_per_step_epsilon(params, k);

        // Pre-compute true answers and per-query weight vectors.
        let entries = family.len() as u128 * current.len() as u128;
        if entries > self.config.max_weight_entries {
            return Err(PmwError::WorkloadTooLarge {
                entries,
                limit: self.config.max_weight_entries,
            });
        }
        let true_answers = family.answer_all_on_join(query, &join_result)?;
        let mut weight_vectors = Vec::with_capacity(family.len());
        for q in family.iter() {
            weight_vectors.push(current.query_weight_vector(query, q)?);
        }

        let laplace = Laplace::calibrated(delta_tilde, eps_prime)?;
        let mut average = Histogram::zeros(query, self.config.max_domain_cells)?;
        let mut selected_queries = Vec::with_capacity(k);

        for _ in 0..k {
            // Line 5: exponential mechanism over the per-query error scores.
            let scores: Vec<f64> = (0..family.len())
                .map(|j| {
                    (current.answer_with_weights(&weight_vectors[j]) - true_answers.get(j)).abs()
                        / delta_tilde
                })
                .collect();
            let j = exponential_mechanism(&scores, eps_prime, 1.0, rng)?;
            selected_queries.push(j);

            // Line 6: noisy measurement of the selected query.
            let measurement = true_answers.get(j) + laplace.sample(rng);

            // Line 7: multiplicative-weights update.
            let current_answer = current.answer_with_weights(&weight_vectors[j]);
            let eta = if noisy_total > 0.0 {
                ((measurement - current_answer) / (2.0 * noisy_total)).clamp(-1.0, 1.0)
            } else {
                0.0
            };
            current.multiplicative_update(&weight_vectors[j], eta);

            average.accumulate(&current)?;
        }
        average.scale(1.0 / k as f64);

        Ok(PmwOutput {
            histogram: average,
            noisy_total,
            iterations: k,
            selected_queries,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpsyn_noise::seeded_rng;
    use dpsyn_query::linf_error;
    /// A small but non-trivial two-table instance over a tiny domain.
    fn small_case() -> (JoinQuery, Instance) {
        let q = JoinQuery::two_table(4, 4, 4);
        let mut inst = Instance::empty_for(&q).unwrap();
        for a in 0..4u64 {
            for b in 0..2u64 {
                inst.relation_mut(0).add(vec![a, b], 1 + (a % 2)).unwrap();
            }
        }
        for b in 0..2u64 {
            for c in 0..4u64 {
                inst.relation_mut(1).add(vec![b, c], 1).unwrap();
            }
        }
        (q, inst)
    }

    #[test]
    fn released_histogram_is_nonnegative_and_mass_matches_noisy_total() {
        let (q, inst) = small_case();
        let mut rng = seeded_rng(1);
        let family = QueryFamily::random_sign(&q, 16, &mut rng).unwrap();
        let params = PrivacyParams::new(1.0, 1e-6).unwrap();
        let out = Pmw::default()
            .run(&q, &inst, &family, params, 4.0, &mut rng)
            .unwrap();
        assert!(out.histogram.weights().iter().all(|&w| w >= 0.0));
        assert!((out.histogram.total() - out.noisy_total).abs() / out.noisy_total < 1e-6);
        assert!(out.noisy_total >= dpsyn_relational::join_size(&q, &inst).unwrap() as f64);
        assert_eq!(out.selected_queries.len(), out.iterations);
    }

    /// A larger, heavily skewed instance: all mass sits on join value B = 0,
    /// so the true join distribution is far from uniform and PMW has a real
    /// signal to learn.
    fn skewed_case() -> (JoinQuery, Instance) {
        let q = JoinQuery::two_table(4, 4, 4);
        let mut inst = Instance::empty_for(&q).unwrap();
        for a in 0..4u64 {
            inst.relation_mut(0).add(vec![a, 0], 8).unwrap();
        }
        for c in 0..4u64 {
            inst.relation_mut(1).add(vec![0, c], 8).unwrap();
        }
        (q, inst)
    }

    #[test]
    fn generous_budget_gives_small_error() {
        let (q, inst) = skewed_case();
        let mut rng = seeded_rng(7);
        let family = QueryFamily::random_sign(&q, 24, &mut rng).unwrap();
        // A generous (utility-mechanics) configuration: the synthetic data
        // should answer queries much better than the all-uniform baseline.
        let params = PrivacyParams::new(4.0, 1e-3).unwrap();
        let pmw = Pmw::new(PmwConfig {
            iterations_override: Some(20),
            ..PmwConfig::default()
        });
        let out = pmw.run(&q, &inst, &family, params, 2.0, &mut rng).unwrap();
        let truth = family.answer_all_on_instance(&q, &inst).unwrap();
        let released = out.histogram.answer_all(&q, &family).unwrap();
        let err = linf_error(truth.values(), &released).unwrap();

        let count = dpsyn_relational::join_size(&q, &inst).unwrap() as f64;
        let uniform = Histogram::uniform(&q, count, DEFAULT_MAX_CELLS).unwrap();
        let uniform_answers = uniform.answer_all(&q, &family).unwrap();
        let uniform_err = linf_error(truth.values(), &uniform_answers).unwrap();

        assert!(
            err < uniform_err,
            "PMW error {err} should beat the uniform baseline {uniform_err}"
        );
        // Sanity: error is below the trivial bound of count(I).
        assert!(err < count, "err = {err}, count = {count}");
    }

    #[test]
    fn deterministic_given_seed() {
        let (q, inst) = small_case();
        let params = PrivacyParams::new(1.0, 1e-6).unwrap();
        let run = |seed: u64| {
            let mut rng = seeded_rng(seed);
            let family = QueryFamily::random_sign(&q, 8, &mut rng).unwrap();
            let out = Pmw::default()
                .run(&q, &inst, &family, params, 2.0, &mut rng)
                .unwrap();
            (out.noisy_total, out.histogram.weights().to_vec())
        };
        let (t1, w1) = run(42);
        let (t2, w2) = run(42);
        assert_eq!(t1, t2);
        assert_eq!(w1, w2);
        let (t3, _) = run(43);
        assert_ne!(t1, t3);
    }

    #[test]
    fn iteration_override_is_respected() {
        let (q, inst) = small_case();
        let mut rng = seeded_rng(3);
        let family = QueryFamily::counting(&q);
        let params = PrivacyParams::new(1.0, 1e-6).unwrap();
        let pmw = Pmw::new(PmwConfig {
            iterations_override: Some(5),
            ..PmwConfig::default()
        });
        let out = pmw.run(&q, &inst, &family, params, 1.0, &mut rng).unwrap();
        assert_eq!(out.iterations, 5);
    }

    #[test]
    fn invalid_delta_tilde_rejected() {
        let (q, inst) = small_case();
        let mut rng = seeded_rng(3);
        let family = QueryFamily::counting(&q);
        let params = PrivacyParams::new(1.0, 1e-6).unwrap();
        assert!(Pmw::default()
            .run(&q, &inst, &family, params, f64::NAN, &mut rng)
            .is_err());
        assert!(Pmw::default()
            .run(&q, &inst, &family, params, -3.0, &mut rng)
            .is_err());
    }

    #[test]
    fn workload_cap_enforced() {
        let (q, inst) = small_case();
        let mut rng = seeded_rng(5);
        let family = QueryFamily::random_sign(&q, 64, &mut rng).unwrap();
        let params = PrivacyParams::new(1.0, 1e-6).unwrap();
        let pmw = Pmw::new(PmwConfig {
            max_weight_entries: 16,
            ..PmwConfig::default()
        });
        assert!(matches!(
            pmw.run(&q, &inst, &family, params, 1.0, &mut rng),
            Err(PmwError::WorkloadTooLarge { .. })
        ));
    }

    #[test]
    fn empty_instance_releases_near_zero_mass() {
        let q = JoinQuery::two_table(4, 4, 4);
        let inst = Instance::empty_for(&q).unwrap();
        let mut rng = seeded_rng(11);
        let family = QueryFamily::counting(&q);
        let params = PrivacyParams::new(1.0, 1e-4).unwrap();
        let out = Pmw::default()
            .run(&q, &inst, &family, params, 1.0, &mut rng)
            .unwrap();
        // The only mass comes from the truncated-Laplace padding, which is at
        // most 2τ(ε/2, δ/2, 1).
        let tau = dpsyn_noise::truncation_radius(0.5, 5e-5, 1.0).unwrap();
        assert!(out.histogram.total() <= 2.0 * tau + 1e-9);
    }
}
