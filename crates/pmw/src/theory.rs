//! The paper's bookkeeping quantities: `f_lower`, `f_upper`, the recommended
//! PMW iteration count, and the closed-form error bound of Theorem A.1.
//!
//! These are *predictions*, not measurements; the experiment harness prints
//! them next to measured errors so that the shape of each theorem can be
//! checked empirically.

/// `f_lower(D, Q, ε) = √(1/ε) · √(log |D|)` — the factor appearing in all
/// lower bounds.  `log2_domain` is `log₂ |D|`.
pub fn f_lower(log2_domain: f64, epsilon: f64) -> f64 {
    (1.0 / epsilon).sqrt() * log2_domain.max(1.0).sqrt()
}

/// `f_upper(D, Q, ε, δ) = f_lower · √(log |Q| · log 1/δ)` — the factor
/// appearing in all upper bounds.
pub fn f_upper(log2_domain: f64, num_queries: usize, epsilon: f64, delta: f64) -> f64 {
    let log_q = (num_queries.max(2) as f64).ln();
    let log_inv_delta = if delta > 0.0 { (1.0 / delta).ln() } else { 1.0 };
    f_lower(log2_domain, epsilon) * (log_q * log_inv_delta).max(1.0).sqrt()
}

/// The iteration count `k` that minimises the PMW error bound
/// (Appendix A): `k = n̂·ε·√(log|D|) / (Δ̃·log|Q|·√(log 1/δ))`, clamped to
/// `[1, max_iterations]`.
pub fn recommended_iterations(
    noisy_total: f64,
    delta_tilde: f64,
    log2_domain: f64,
    num_queries: usize,
    epsilon: f64,
    delta: f64,
    max_iterations: usize,
) -> usize {
    let log_q = (num_queries.max(2) as f64).ln();
    let log_inv_delta = if delta > 0.0 { (1.0 / delta).ln() } else { 1.0 };
    let denom = delta_tilde.max(1.0) * log_q * log_inv_delta.sqrt();
    let k = noisy_total.max(1.0) * epsilon * log2_domain.max(1.0).sqrt() / denom;
    (k.ceil() as usize).clamp(1, max_iterations.max(1))
}

/// The PMW error bound of Theorem A.1 (up to constants):
/// `(√(count·Δ̃) + Δ̃·√λ) · f_upper`.
pub fn pmw_error_bound(
    count: f64,
    delta_tilde: f64,
    log2_domain: f64,
    num_queries: usize,
    epsilon: f64,
    delta: f64,
) -> f64 {
    let lambda = if delta > 0.0 {
        (1.0 / epsilon) * (1.0 / delta).ln()
    } else {
        1.0
    };
    ((count * delta_tilde).sqrt() + delta_tilde * lambda.sqrt())
        * f_upper(log2_domain, num_queries, epsilon, delta)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f_lower_scales_with_domain_and_epsilon() {
        let base = f_lower(16.0, 1.0);
        assert!(f_lower(64.0, 1.0) > base);
        assert!(f_lower(16.0, 0.25) > base);
        assert!((f_lower(16.0, 1.0) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn f_upper_dominates_f_lower() {
        let lo = f_lower(20.0, 0.5);
        let hi = f_upper(20.0, 128, 0.5, 1e-6);
        assert!(hi >= lo);
    }

    #[test]
    fn iteration_count_clamps_and_scales() {
        let k_small = recommended_iterations(100.0, 10.0, 12.0, 64, 1.0, 1e-6, 500);
        let k_big = recommended_iterations(100_000.0, 10.0, 12.0, 64, 1.0, 1e-6, 500);
        assert!(k_big >= k_small);
        assert!(k_big <= 500);
        assert!(recommended_iterations(0.0, 1.0, 1.0, 2, 1.0, 1e-6, 500) >= 1);
        // Larger Δ̃ → fewer iterations.
        let k_hi_delta = recommended_iterations(100_000.0, 1000.0, 12.0, 64, 1.0, 1e-6, 500);
        assert!(k_hi_delta <= k_big);
    }

    #[test]
    fn error_bound_monotone_in_count_and_delta() {
        let base = pmw_error_bound(1000.0, 5.0, 12.0, 64, 1.0, 1e-6);
        assert!(pmw_error_bound(4000.0, 5.0, 12.0, 64, 1.0, 1e-6) > base);
        assert!(pmw_error_bound(1000.0, 20.0, 12.0, 64, 1.0, 1e-6) > base);
        // Roughly doubles when count quadruples (sqrt scaling) for small Δ̃·√λ.
        let big = pmw_error_bound(4000.0, 5.0, 12.0, 64, 1.0, 1e-6);
        assert!(big / base < 2.2);
    }
}
