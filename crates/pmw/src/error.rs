//! Error type for the PMW release algorithm.

use std::fmt;

use dpsyn_noise::NoiseError;
use dpsyn_query::QueryError;
use dpsyn_relational::RelationalError;

/// Errors raised while building histograms or running PMW.
#[derive(Debug, Clone, PartialEq)]
pub enum PmwError {
    /// An underlying relational operation failed.
    Relational(RelationalError),
    /// A query-evaluation operation failed.
    Query(QueryError),
    /// A DP primitive rejected its parameters.
    Noise(NoiseError),
    /// The joint domain is too large to materialise densely.
    DomainTooLarge {
        /// The joint domain size that was requested.
        cells: u128,
        /// The configured limit.
        limit: u128,
    },
    /// The combination of workload size and domain size exceeds the memory
    /// budget for pre-computed query weight vectors.
    WorkloadTooLarge {
        /// `|Q| · |D|` requested.
        entries: u128,
        /// The configured limit.
        limit: u128,
    },
    /// A configuration value is invalid.
    InvalidConfig(String),
}

impl fmt::Display for PmwError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PmwError::Relational(e) => write!(f, "relational error: {e}"),
            PmwError::Query(e) => write!(f, "query error: {e}"),
            PmwError::Noise(e) => write!(f, "noise error: {e}"),
            PmwError::DomainTooLarge { cells, limit } => write!(
                f,
                "joint domain has {cells} cells which exceeds the dense-histogram limit {limit}; \
                 reduce attribute domain sizes or raise PmwConfig::max_domain_cells"
            ),
            PmwError::WorkloadTooLarge { entries, limit } => write!(
                f,
                "workload needs {entries} precomputed weights which exceeds the limit {limit}; \
                 reduce |Q| or the domain size, or raise PmwConfig::max_weight_entries"
            ),
            PmwError::InvalidConfig(msg) => write!(f, "invalid PMW configuration: {msg}"),
        }
    }
}

impl std::error::Error for PmwError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PmwError::Relational(e) => Some(e),
            PmwError::Query(e) => Some(e),
            PmwError::Noise(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RelationalError> for PmwError {
    fn from(e: RelationalError) -> Self {
        PmwError::Relational(e)
    }
}

impl From<QueryError> for PmwError {
    fn from(e: QueryError) -> Self {
        PmwError::Query(e)
    }
}

impl From<NoiseError> for PmwError {
    fn from(e: NoiseError) -> Self {
        PmwError::Noise(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: PmwError = RelationalError::EmptyQuery.into();
        assert!(e.to_string().contains("relational"));
        let e: PmwError = QueryError::WeightOutOfRange { weight: 3.0 }.into();
        assert!(e.to_string().contains("query"));
        let e: PmwError = NoiseError::EmptyCandidateSet.into();
        assert!(e.to_string().contains("noise"));
        let e = PmwError::DomainTooLarge {
            cells: 1 << 40,
            limit: 1 << 26,
        };
        assert!(e.to_string().contains("dense-histogram limit"));
        assert!(std::error::Error::source(&e).is_none());
    }
}
