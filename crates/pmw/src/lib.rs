//! Single-table Private Multiplicative Weights (PMW) synthetic-data release —
//! Algorithm 2 of the paper (after Hardt–Ligett–McSherry \[25\]).
//!
//! The multi-table algorithms of the paper reduce to this primitive: they
//! compute the join, derive a private upper bound `Δ̃` on the relevant
//! sensitivity, and invoke `PMW_{ε,δ,Δ̃}` on the join result viewed as a single
//! table over the joint domain `dom(x)`.  PMW maintains a dense non-negative
//! function `F : dom(x) → ℝ≥0` (a [`Histogram`]), repeatedly selects a
//! badly-answered query with the exponential mechanism, measures it with
//! Laplace noise, and applies a multiplicative-weights update; the average of
//! the iterates is released.
//!
//! The guarantee (Theorem A.1): for neighbouring instances whose join sizes
//! differ by at most `Δ̃`, the release is `(ε, δ)`-DP, and with probability
//! `1 − 1/poly(|Q|)` every query is answered within
//! `O((√(count(I)·Δ̃) + Δ̃·√λ) · f_upper)`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod histogram;
pub mod pmw;
pub mod theory;

pub use error::PmwError;
pub use histogram::Histogram;
pub use pmw::{Pmw, PmwConfig, PmwOutput};
pub use theory::{f_lower, f_upper, pmw_error_bound, recommended_iterations};

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, PmwError>;
