//! Dense synthetic histograms `F : dom(x) → ℝ≥0` over the joint domain of a
//! join query.
//!
//! The histogram is the released object `F` of the paper: any linear query
//! can be answered from it by summing `F(x) · Π_i q_i(π_{x_i} x)` over the
//! joint domain.  It is stored densely (row-major over the attribute domains),
//! which is exactly the representation PMW's multiplicative-weights update
//! needs; experiment configurations keep `|dom(x)|` small enough for this to
//! be practical.

use dpsyn_query::{JointEvaluator, ProductQuery, QueryFamily};
use dpsyn_relational::{AttrId, JoinQuery, JoinResult, Value};
use rand::Rng;

use crate::error::PmwError;
use crate::Result;

/// Default cap on the number of dense cells a histogram may hold.
pub const DEFAULT_MAX_CELLS: u128 = 1 << 26;

/// A dense non-negative function over the joint domain `dom(x)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    attrs: Vec<AttrId>,
    dims: Vec<u64>,
    weights: Vec<f64>,
}

impl Histogram {
    /// Creates an all-zero histogram over the full attribute set of `query`.
    ///
    /// Fails when the joint domain exceeds `max_cells` (use
    /// [`DEFAULT_MAX_CELLS`] unless you know better).
    pub fn zeros(query: &JoinQuery, max_cells: u128) -> Result<Self> {
        let attrs = query.all_attrs();
        let mut dims = Vec::with_capacity(attrs.len());
        for &a in &attrs {
            dims.push(query.schema().domain_size(a)?);
        }
        let cells = dims.iter().map(|&d| d.max(1) as u128).product::<u128>();
        if cells > max_cells {
            return Err(PmwError::DomainTooLarge {
                cells,
                limit: max_cells,
            });
        }
        Ok(Histogram {
            attrs,
            dims,
            weights: vec![0.0; cells as usize],
        })
    }

    /// Creates the uniform histogram `F_0(x) = total / |dom(x)|` used to
    /// initialise PMW (Algorithm 2, line 2).
    pub fn uniform(query: &JoinQuery, total: f64, max_cells: u128) -> Result<Self> {
        let mut h = Self::zeros(query, max_cells)?;
        let per_cell = total / h.weights.len() as f64;
        h.weights.fill(per_cell.max(0.0));
        Ok(h)
    }

    /// Builds the dense histogram of a join result (the non-private `Join_I`).
    pub fn from_join(query: &JoinQuery, join_result: &JoinResult, max_cells: u128) -> Result<Self> {
        let mut h = Self::zeros(query, max_cells)?;
        // The join result attributes must equal the full attribute set for a
        // direct copy; project up otherwise (attributes absent from the result
        // would be ambiguous, so require equality).
        if join_result.attrs() != h.attrs.as_slice() {
            return Err(PmwError::InvalidConfig(format!(
                "join result attributes {:?} do not cover the full schema {:?}",
                join_result.attrs(),
                h.attrs
            )));
        }
        // Distinct join tuples map to distinct cells, so iteration order
        // cannot affect the result — use the sort-free iterator.
        for (tuple, weight) in join_result.iter_unordered() {
            let idx = h.index_of(tuple);
            h.weights[idx] += weight as f64;
        }
        Ok(h)
    }

    /// The attribute list the histogram ranges over.
    pub fn attrs(&self) -> &[AttrId] {
        &self.attrs
    }

    /// Number of cells `|dom(x)|`.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// Whether the histogram has no cells (never true for a valid schema).
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Total mass `Σ_x F(x)`.
    pub fn total(&self) -> f64 {
        self.weights.iter().sum()
    }

    /// The raw weights (row-major).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The linear index of a joint tuple.
    pub fn index_of(&self, tuple: &[Value]) -> usize {
        let mut idx = 0usize;
        for (pos, &v) in tuple.iter().enumerate() {
            idx = idx * self.dims[pos] as usize + v as usize;
        }
        idx
    }

    /// The joint tuple at a linear index.
    pub fn tuple_of(&self, mut idx: usize) -> Vec<Value> {
        let mut out = vec![0u64; self.dims.len()];
        for pos in (0..self.dims.len()).rev() {
            let d = self.dims[pos] as usize;
            out[pos] = (idx % d) as u64;
            idx /= d;
        }
        out
    }

    /// The weight of a joint tuple.
    pub fn weight(&self, tuple: &[Value]) -> f64 {
        self.weights[self.index_of(tuple)]
    }

    /// Computes the per-cell weight vector `x ↦ Π_i q_i(π_{x_i} x)` of a
    /// product query (used by both query answering and the PMW update).
    pub fn query_weight_vector(&self, query: &JoinQuery, q: &ProductQuery) -> Result<Vec<f64>> {
        let evaluator = JointEvaluator::new(query, &self.attrs)?;
        let mut out = Vec::with_capacity(self.weights.len());
        let mut tuple = vec![0u64; self.dims.len()];
        for _ in 0..self.weights.len() {
            out.push(evaluator.weight(q, &tuple));
            // Odometer increment in row-major order (last attribute fastest).
            for pos in (0..self.dims.len()).rev() {
                tuple[pos] += 1;
                if tuple[pos] < self.dims[pos] {
                    break;
                }
                tuple[pos] = 0;
            }
        }
        Ok(out)
    }

    /// Answers one query: `q(F) = Σ_x F(x) · Π_i q_i(π_{x_i} x)`.
    pub fn answer(&self, query: &JoinQuery, q: &ProductQuery) -> Result<f64> {
        let weights = self.query_weight_vector(query, q)?;
        Ok(self.answer_with_weights(&weights))
    }

    /// Answers a query given its pre-computed per-cell weight vector.
    pub fn answer_with_weights(&self, query_weights: &[f64]) -> f64 {
        self.weights
            .iter()
            .zip(query_weights)
            .map(|(f, w)| f * w)
            .sum()
    }

    /// Answers every query of a family.
    pub fn answer_all(&self, query: &JoinQuery, family: &QueryFamily) -> Result<Vec<f64>> {
        family
            .iter()
            .map(|q| self.answer(query, q))
            .collect::<Result<Vec<_>>>()
    }

    /// Rescales the histogram so its total mass equals `total` (no-op if the
    /// current mass is zero).
    pub fn normalize_to(&mut self, total: f64) {
        let cur = self.total();
        if cur > 0.0 && total >= 0.0 {
            let factor = total / cur;
            for w in &mut self.weights {
                *w *= factor;
            }
        }
    }

    /// The multiplicative-weights update of Algorithm 2 line 7:
    /// `F(x) ← F(x) · exp(q(x) · η)`, followed by renormalisation to the
    /// previous total mass.
    pub fn multiplicative_update(&mut self, query_weights: &[f64], eta: f64) {
        let total = self.total();
        for (f, w) in self.weights.iter_mut().zip(query_weights) {
            *f *= (w * eta).exp();
        }
        self.normalize_to(total);
    }

    /// Adds another histogram cell-wise (used to average PMW iterates).
    pub fn accumulate(&mut self, other: &Histogram) -> Result<()> {
        if self.weights.len() != other.weights.len() || self.attrs != other.attrs {
            return Err(PmwError::InvalidConfig(
                "cannot accumulate histograms over different domains".to_string(),
            ));
        }
        for (a, b) in self.weights.iter_mut().zip(&other.weights) {
            *a += b;
        }
        Ok(())
    }

    /// Divides every cell by `count` (completing an average).
    pub fn scale(&mut self, factor: f64) {
        for w in &mut self.weights {
            *w *= factor;
        }
    }

    /// Draws an integer-valued synthetic dataset from the histogram: the
    /// released function `F : dom(x) → N` of the problem statement.  Each
    /// cell's mass is rounded stochastically (floor plus a Bernoulli on the
    /// fractional part), preserving the expected total.
    pub fn round_to_records<R: Rng>(&self, rng: &mut R) -> Vec<(Vec<Value>, u64)> {
        let mut out = Vec::new();
        for (idx, &w) in self.weights.iter().enumerate() {
            if w <= 0.0 {
                continue;
            }
            let floor = w.floor();
            let frac = w - floor;
            let mut count = floor as u64;
            if rng.random::<f64>() < frac {
                count += 1;
            }
            if count > 0 {
                out.push((self.tuple_of(idx), count));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpsyn_query::RelationQuery;
    use dpsyn_relational::{Instance, Relation};
    use rand::SeedableRng;

    fn ids(v: &[u16]) -> Vec<AttrId> {
        v.iter().map(|&x| AttrId(x)).collect()
    }

    fn tiny_query() -> JoinQuery {
        JoinQuery::two_table(3, 4, 5)
    }

    #[test]
    fn zeros_and_uniform_have_right_shape() {
        let q = tiny_query();
        let z = Histogram::zeros(&q, DEFAULT_MAX_CELLS).unwrap();
        assert_eq!(z.len(), 3 * 4 * 5);
        assert_eq!(z.total(), 0.0);
        let u = Histogram::uniform(&q, 120.0, DEFAULT_MAX_CELLS).unwrap();
        assert!((u.total() - 120.0).abs() < 1e-9);
        assert!((u.weight(&[1, 2, 3]) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn domain_cap_enforced() {
        let q = JoinQuery::two_table(1 << 20, 1 << 20, 1 << 20);
        assert!(matches!(
            Histogram::zeros(&q, DEFAULT_MAX_CELLS),
            Err(PmwError::DomainTooLarge { .. })
        ));
    }

    #[test]
    fn index_tuple_roundtrip() {
        let q = tiny_query();
        let h = Histogram::zeros(&q, DEFAULT_MAX_CELLS).unwrap();
        for idx in 0..h.len() {
            let t = h.tuple_of(idx);
            assert_eq!(h.index_of(&t), idx);
            assert!(t[0] < 3 && t[1] < 4 && t[2] < 5);
        }
    }

    fn small_instance(_q: &JoinQuery) -> Instance {
        let r1 = Relation::from_tuples(
            ids(&[0, 1]),
            vec![(vec![0, 0], 1), (vec![1, 0], 2), (vec![2, 1], 1)],
        )
        .unwrap();
        let r2 = Relation::from_tuples(
            ids(&[1, 2]),
            vec![(vec![0, 0], 1), (vec![0, 1], 1), (vec![1, 3], 3)],
        )
        .unwrap();
        Instance::new(vec![r1, r2])
    }

    #[test]
    fn from_join_matches_sparse_result_and_answers_agree() {
        let q = tiny_query();
        let inst = small_instance(&q);
        let join = dpsyn_relational::join(&q, &inst).unwrap();
        let h = Histogram::from_join(&q, &join, DEFAULT_MAX_CELLS).unwrap();
        assert!((h.total() - join.total() as f64).abs() < 1e-9);
        assert_eq!(h.weight(&[1, 0, 1]), 2.0);
        // Query answers over the dense histogram match answers over the
        // sparse join result.
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let family = QueryFamily::random_sign(&q, 10, &mut rng).unwrap();
        let sparse = family.answer_all_on_join(&q, &join).unwrap();
        let dense = h.answer_all(&q, &family).unwrap();
        for (i, d) in dense.iter().enumerate() {
            assert!((sparse.get(i) - d).abs() < 1e-9);
        }
    }

    #[test]
    fn query_weight_vector_matches_pointwise_eval() {
        let q = tiny_query();
        let h = Histogram::zeros(&q, DEFAULT_MAX_CELLS).unwrap();
        let pq = ProductQuery::new(vec![
            RelationQuery::SignHash { seed: 9 },
            RelationQuery::AllOne,
        ]);
        let weights = h.query_weight_vector(&q, &pq).unwrap();
        let evaluator = JointEvaluator::full_domain(&q).unwrap();
        for (idx, w) in weights.iter().enumerate() {
            let t = h.tuple_of(idx);
            assert!((w - evaluator.weight(&pq, &t)).abs() < 1e-12);
        }
    }

    #[test]
    fn multiplicative_update_moves_mass_toward_positive_weights() {
        let q = tiny_query();
        let mut h = Histogram::uniform(&q, 60.0, DEFAULT_MAX_CELLS).unwrap();
        // Query weights: +1 on cells with A = 0, -1 elsewhere.
        let weights: Vec<f64> = (0..h.len())
            .map(|idx| if h.tuple_of(idx)[0] == 0 { 1.0 } else { -1.0 })
            .collect();
        let before_mass_a0: f64 = (0..h.len())
            .filter(|&i| h.tuple_of(i)[0] == 0)
            .map(|i| h.weights()[i])
            .sum();
        h.multiplicative_update(&weights, 0.5);
        let after_mass_a0: f64 = (0..h.len())
            .filter(|&i| h.tuple_of(i)[0] == 0)
            .map(|i| h.weights()[i])
            .sum();
        assert!(after_mass_a0 > before_mass_a0);
        // Total mass preserved by renormalisation.
        assert!((h.total() - 60.0).abs() < 1e-9);
    }

    #[test]
    fn accumulate_and_scale_average() {
        let q = tiny_query();
        let mut acc = Histogram::zeros(&q, DEFAULT_MAX_CELLS).unwrap();
        let a = Histogram::uniform(&q, 30.0, DEFAULT_MAX_CELLS).unwrap();
        let b = Histogram::uniform(&q, 90.0, DEFAULT_MAX_CELLS).unwrap();
        acc.accumulate(&a).unwrap();
        acc.accumulate(&b).unwrap();
        acc.scale(0.5);
        assert!((acc.total() - 60.0).abs() < 1e-9);
        // Mismatched domains rejected.
        let other = Histogram::zeros(&JoinQuery::two_table(2, 2, 2), DEFAULT_MAX_CELLS).unwrap();
        assert!(acc.accumulate(&other).is_err());
    }

    #[test]
    fn rounding_preserves_mass_in_expectation() {
        let q = tiny_query();
        let h = Histogram::uniform(&q, 240.0, DEFAULT_MAX_CELLS).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let mut totals = 0u64;
        let trials = 50;
        for _ in 0..trials {
            let records = h.round_to_records(&mut rng);
            totals += records.iter().map(|(_, c)| c).sum::<u64>();
        }
        let avg = totals as f64 / trials as f64;
        assert!((avg - 240.0).abs() < 10.0, "avg = {avg}");
    }

    #[test]
    fn normalize_to_handles_zero_mass() {
        let q = tiny_query();
        let mut h = Histogram::zeros(&q, DEFAULT_MAX_CELLS).unwrap();
        h.normalize_to(10.0); // must not divide by zero
        assert_eq!(h.total(), 0.0);
    }
}
