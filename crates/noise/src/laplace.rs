//! The Laplace distribution and the Laplace mechanism.
//!
//! `Lap_b` has density `∝ e^{-|x|/b}`; adding `Lap_{Δ/ε}` noise to a statistic
//! of (global or smooth-upper-bounded) sensitivity `Δ` yields `(ε, 0)`-DP.
//! Algorithm 2 uses it for the noisy measurements `m_i = q_i(I) + Lap_{Δ̃/ε'}`.

use crate::error::NoiseError;
use crate::Result;
use rand::Rng;

/// A zero-mean Laplace distribution with scale `b`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Laplace {
    scale: f64,
}

impl Laplace {
    /// Creates a Laplace distribution with scale `b > 0`.
    pub fn new(scale: f64) -> Result<Self> {
        if scale.is_nan() || scale <= 0.0 || scale.is_infinite() {
            return Err(NoiseError::InvalidParameter {
                name: "scale",
                value: scale,
                constraint: "0 < scale < ∞",
            });
        }
        Ok(Laplace { scale })
    }

    /// The Laplace mechanism's distribution for a statistic with sensitivity
    /// `sensitivity` under `ε`-DP: scale `b = sensitivity / ε`.
    pub fn calibrated(sensitivity: f64, epsilon: f64) -> Result<Self> {
        if sensitivity.is_nan() || sensitivity < 0.0 || sensitivity.is_infinite() {
            return Err(NoiseError::InvalidParameter {
                name: "sensitivity",
                value: sensitivity,
                constraint: "0 <= sensitivity < ∞",
            });
        }
        if epsilon.is_nan() || epsilon <= 0.0 {
            return Err(NoiseError::InvalidParameter {
                name: "epsilon",
                value: epsilon,
                constraint: "epsilon > 0",
            });
        }
        // A zero-sensitivity statistic needs no noise; represent it with a
        // degenerate tiny scale to keep the API uniform.
        Laplace::new((sensitivity / epsilon).max(f64::MIN_POSITIVE))
    }

    /// The scale `b`.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// The variance `2 b²`.
    pub fn variance(&self) -> f64 {
        2.0 * self.scale * self.scale
    }

    /// Probability density at `x`.
    pub fn pdf(&self, x: f64) -> f64 {
        (-(x.abs()) / self.scale).exp() / (2.0 * self.scale)
    }

    /// Cumulative distribution function at `x`.
    pub fn cdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            0.5 * (x / self.scale).exp()
        } else {
            1.0 - 0.5 * (-x / self.scale).exp()
        }
    }

    /// Quantile (inverse CDF) at `p ∈ (0, 1)`.
    pub fn quantile(&self, p: f64) -> f64 {
        if p < 0.5 {
            self.scale * (2.0 * p).ln()
        } else {
            -self.scale * (2.0 * (1.0 - p)).ln()
        }
    }

    /// Draws one sample.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> f64 {
        // Inverse-CDF sampling from a uniform in (0, 1).
        let mut u: f64 = rng.random();
        // Guard against u == 0 or u == 1 producing infinities.
        u = u.clamp(f64::MIN_POSITIVE, 1.0 - f64::EPSILON);
        self.quantile(u)
    }

    /// Convenience: adds calibrated Laplace noise to a value.
    pub fn add_noise<R: Rng>(&self, value: f64, rng: &mut R) -> f64 {
        value + self.sample(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded_rng;

    #[test]
    fn construction_validates() {
        assert!(Laplace::new(1.0).is_ok());
        assert!(Laplace::new(0.0).is_err());
        assert!(Laplace::new(-2.0).is_err());
        assert!(Laplace::new(f64::INFINITY).is_err());
        assert!(Laplace::calibrated(1.0, 0.5).is_ok());
        assert!(Laplace::calibrated(-1.0, 0.5).is_err());
        assert!(Laplace::calibrated(1.0, 0.0).is_err());
    }

    #[test]
    fn calibration_scale_is_sensitivity_over_epsilon() {
        let l = Laplace::calibrated(3.0, 0.5).unwrap();
        assert!((l.scale() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn cdf_quantile_roundtrip() {
        let l = Laplace::new(2.5).unwrap();
        for &p in &[0.01, 0.1, 0.3, 0.5, 0.7, 0.9, 0.99] {
            let x = l.quantile(p);
            assert!((l.cdf(x) - p).abs() < 1e-9, "p = {p}");
        }
        assert!((l.cdf(0.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn pdf_integrates_to_one_numerically() {
        let l = Laplace::new(1.5).unwrap();
        let mut total = 0.0;
        let step = 0.01;
        let mut x = -40.0;
        while x < 40.0 {
            total += l.pdf(x) * step;
            x += step;
        }
        assert!((total - 1.0).abs() < 1e-3, "integral = {total}");
    }

    #[test]
    fn sample_statistics_match_distribution() {
        let l = Laplace::new(2.0).unwrap();
        let mut rng = seeded_rng(123);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| l.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean = {mean}");
        assert!(
            (var - l.variance()).abs() / l.variance() < 0.05,
            "var = {var}"
        );
    }

    #[test]
    fn add_noise_centres_on_value() {
        let l = Laplace::new(0.5).unwrap();
        let mut rng = seeded_rng(7);
        let n = 50_000;
        let mean = (0..n).map(|_| l.add_noise(10.0, &mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.05, "mean = {mean}");
    }
}
