//! The exponential mechanism (Section 2).
//!
//! Given candidates with a score function of sensitivity at most
//! `score_sensitivity`, the mechanism samples candidate `c` with probability
//! proportional to `exp(ε · s(c) / (2 · score_sensitivity))` and is
//! `(ε, 0)`-DP.  Algorithm 2 uses it in every iteration to select a query
//! whose current answer is far from the truth (a *maximising* selection, so
//! the exponent carries a positive sign — the `−0.5` in the paper's line 5 is
//! a typographical slip of the standard mechanism from \[36\]).

use crate::error::NoiseError;
use crate::Result;
use rand::Rng;

/// Computes the (unnormalised, numerically stabilised) selection weights of
/// the exponential mechanism.  Exposed for testing and for callers that want
/// to inspect the induced distribution.
pub fn exponential_mechanism_weights(
    scores: &[f64],
    epsilon: f64,
    score_sensitivity: f64,
) -> Result<Vec<f64>> {
    if scores.is_empty() {
        return Err(NoiseError::EmptyCandidateSet);
    }
    if epsilon.is_nan() || epsilon <= 0.0 || epsilon.is_infinite() {
        return Err(NoiseError::InvalidParameter {
            name: "epsilon",
            value: epsilon,
            constraint: "0 < epsilon < ∞",
        });
    }
    if score_sensitivity.is_nan() || score_sensitivity <= 0.0 || score_sensitivity.is_infinite() {
        return Err(NoiseError::InvalidParameter {
            name: "score_sensitivity",
            value: score_sensitivity,
            constraint: "0 < score_sensitivity < ∞",
        });
    }
    let factor = epsilon / (2.0 * score_sensitivity);
    let max_score = scores.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    Ok(scores
        .iter()
        .map(|s| ((s - max_score) * factor).exp())
        .collect())
}

/// Runs the exponential mechanism over `scores`, returning the index of the
/// selected candidate.  Higher scores are more likely to be selected.
pub fn exponential_mechanism<R: Rng>(
    scores: &[f64],
    epsilon: f64,
    score_sensitivity: f64,
    rng: &mut R,
) -> Result<usize> {
    let weights = exponential_mechanism_weights(scores, epsilon, score_sensitivity)?;
    let total: f64 = weights.iter().sum();
    if total.is_nan() || total <= 0.0 || total.is_infinite() {
        // All weights underflowed (extremely negative scores); fall back to a
        // uniform choice, which is still a valid instantiation of the
        // mechanism over equal weights.
        return Ok(rng.random_range(0..scores.len()));
    }
    let mut threshold: f64 = rng.random::<f64>() * total;
    for (i, w) in weights.iter().enumerate() {
        if threshold < *w {
            return Ok(i);
        }
        threshold -= w;
    }
    Ok(weights.len() - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded_rng;

    #[test]
    fn rejects_bad_inputs() {
        let mut rng = seeded_rng(1);
        assert!(matches!(
            exponential_mechanism(&[], 1.0, 1.0, &mut rng),
            Err(NoiseError::EmptyCandidateSet)
        ));
        assert!(exponential_mechanism(&[1.0], 0.0, 1.0, &mut rng).is_err());
        assert!(exponential_mechanism(&[1.0], 1.0, 0.0, &mut rng).is_err());
    }

    #[test]
    fn weights_favor_higher_scores() {
        let w = exponential_mechanism_weights(&[0.0, 10.0, 5.0], 1.0, 1.0).unwrap();
        assert!(w[1] > w[2] && w[2] > w[0]);
        // The maximum score always has weight exactly 1 after stabilisation.
        assert!((w[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn selection_concentrates_on_best_candidate_with_large_epsilon() {
        let scores = vec![0.0, 0.0, 50.0, 0.0];
        let mut rng = seeded_rng(3);
        let mut hits = 0;
        for _ in 0..1000 {
            if exponential_mechanism(&scores, 2.0, 1.0, &mut rng).unwrap() == 2 {
                hits += 1;
            }
        }
        assert!(hits > 990, "hits = {hits}");
    }

    #[test]
    fn selection_is_near_uniform_with_tiny_epsilon() {
        let scores = vec![0.0, 1.0, 2.0, 3.0];
        let mut rng = seeded_rng(4);
        let mut counts = [0usize; 4];
        let trials = 40_000;
        for _ in 0..trials {
            counts[exponential_mechanism(&scores, 1e-6, 1.0, &mut rng).unwrap()] += 1;
        }
        for &c in &counts {
            let frac = c as f64 / trials as f64;
            assert!((frac - 0.25).abs() < 0.02, "frac = {frac}");
        }
    }

    #[test]
    fn selection_probabilities_match_exponential_weights() {
        // With ε = 2 and sensitivity 1, P[i] ∝ e^{s_i}.
        let scores = vec![0.0, 1.0];
        let mut rng = seeded_rng(5);
        let trials = 100_000;
        let mut hits = 0usize;
        for _ in 0..trials {
            if exponential_mechanism(&scores, 2.0, 1.0, &mut rng).unwrap() == 1 {
                hits += 1;
            }
        }
        let p_expected = std::f64::consts::E / (1.0 + std::f64::consts::E);
        let p_observed = hits as f64 / trials as f64;
        assert!(
            (p_observed - p_expected).abs() < 0.01,
            "observed {p_observed}"
        );
    }

    #[test]
    fn underflowed_weights_fall_back_to_uniform() {
        let scores = vec![-1e308, -1e308];
        let mut rng = seeded_rng(6);
        // Must not panic and must return a valid index.
        let idx = exponential_mechanism(&scores, 1.0, 1.0, &mut rng).unwrap();
        assert!(idx < 2);
    }
}
