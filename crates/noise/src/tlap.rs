//! The shifted, truncated Laplace distribution `TLap_b^τ` (Section 2).
//!
//! `TLap_b^τ` is supported on `[0, 2τ]` with density `∝ e^{-|x-τ|/b}`.  Its DP
//! guarantee: for any `u, v` with `|u − v| ≤ Δ`,
//! `u + TLap^{τ(ε,δ,Δ)}_{Δ/ε} ≈_{(ε,δ)} v + TLap^{τ(ε,δ,Δ)}_{Δ/ε}` where
//! `τ(ε, δ, Δ) = (Δ/ε)·ln(1 + (e^ε − 1)/δ)`.
//!
//! The release algorithms use it whenever a *non-negative* upper bound on a
//! sensitive quantity is needed: the noisy local-sensitivity bound `Δ̃`
//! (Algorithm 1 line 1), the noisy residual-sensitivity bound (Algorithm 3
//! line 2), the noisy join size `n̂` (Algorithm 2 line 1) and the noisy degree
//! buckets (Algorithm 5 line 3, Algorithm 7 line 4).

use crate::error::NoiseError;
use crate::Result;
use rand::Rng;

/// The truncation/shift radius `τ(ε, δ, Δ) = (Δ/ε)·ln(1 + (e^ε − 1)/δ)`.
///
/// For constant `ε` this is `O(Δ·λ)` with `λ = (1/ε)·ln(1/δ)`, as noted in the
/// paper's preliminaries.
pub fn truncation_radius(epsilon: f64, delta: f64, sensitivity: f64) -> Result<f64> {
    if epsilon.is_nan() || epsilon <= 0.0 || epsilon.is_infinite() {
        return Err(NoiseError::InvalidParameter {
            name: "epsilon",
            value: epsilon,
            constraint: "0 < epsilon < ∞",
        });
    }
    if delta.is_nan() || delta <= 0.0 || delta >= 1.0 {
        return Err(NoiseError::InvalidParameter {
            name: "delta",
            value: delta,
            constraint: "0 < delta < 1 (the truncated Laplace mechanism needs δ > 0)",
        });
    }
    if sensitivity.is_nan() || sensitivity < 0.0 || sensitivity.is_infinite() {
        return Err(NoiseError::InvalidParameter {
            name: "sensitivity",
            value: sensitivity,
            constraint: "0 <= sensitivity < ∞",
        });
    }
    Ok((sensitivity / epsilon) * (1.0 + (epsilon.exp() - 1.0) / delta).ln())
}

/// The shifted truncated Laplace distribution `TLap_b^τ` on `[0, 2τ]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TruncatedLaplace {
    scale: f64,
    tau: f64,
}

impl TruncatedLaplace {
    /// Creates `TLap_b^τ` with scale `b > 0` and shift `τ ≥ 0`.
    pub fn new(scale: f64, tau: f64) -> Result<Self> {
        if scale.is_nan() || scale <= 0.0 || scale.is_infinite() {
            return Err(NoiseError::InvalidParameter {
                name: "scale",
                value: scale,
                constraint: "0 < scale < ∞",
            });
        }
        if tau.is_nan() || tau < 0.0 || tau.is_infinite() {
            return Err(NoiseError::InvalidParameter {
                name: "tau",
                value: tau,
                constraint: "0 <= tau < ∞",
            });
        }
        Ok(TruncatedLaplace { scale, tau })
    }

    /// The calibrated distribution `TLap^{τ(ε,δ,Δ)}_{Δ/ε}` whose addition to a
    /// statistic of sensitivity `Δ` is `(ε, δ)`-DP and always non-negative.
    ///
    /// The paper's notation `TLap^{τ(ε/2, δ/2, 1)}_{2/ε}` corresponds to
    /// `TruncatedLaplace::calibrated(ε/2, δ/2, 1.0)`.
    pub fn calibrated(epsilon: f64, delta: f64, sensitivity: f64) -> Result<Self> {
        let tau = truncation_radius(epsilon, delta, sensitivity)?;
        let scale = (sensitivity / epsilon).max(f64::MIN_POSITIVE);
        TruncatedLaplace::new(scale, tau)
    }

    /// The scale `b`.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// The shift `τ` (also the mean of the distribution).
    pub fn tau(&self) -> f64 {
        self.tau
    }

    /// The largest value the distribution can produce (`2τ`).
    pub fn max_value(&self) -> f64 {
        2.0 * self.tau
    }

    /// Normalising constant `Z = ∫_0^{2τ} e^{-|x-τ|/b} dx = 2b(1 − e^{-τ/b})`.
    fn normaliser(&self) -> f64 {
        2.0 * self.scale * (1.0 - (-self.tau / self.scale).exp())
    }

    /// Probability density at `x` (zero outside `[0, 2τ]`).
    pub fn pdf(&self, x: f64) -> f64 {
        if x < 0.0 || x > 2.0 * self.tau {
            return 0.0;
        }
        if self.tau == 0.0 {
            return 0.0;
        }
        (-(x - self.tau).abs() / self.scale).exp() / self.normaliser()
    }

    /// Cumulative distribution function at `x`.
    pub fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        if x >= 2.0 * self.tau {
            return 1.0;
        }
        let z = self.normaliser();
        let b = self.scale;
        let tau = self.tau;
        if x <= tau {
            b * ((-(tau - x) / b).exp() - (-tau / b).exp()) / z
        } else {
            let lower_half = b * (1.0 - (-tau / b).exp());
            let upper = b * (1.0 - (-(x - tau) / b).exp());
            (lower_half + upper) / z
        }
    }

    /// Draws one sample from `[0, 2τ]` by inverse-CDF sampling.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> f64 {
        if self.tau == 0.0 {
            return 0.0;
        }
        let u: f64 = rng
            .random::<f64>()
            .clamp(f64::MIN_POSITIVE, 1.0 - f64::EPSILON);
        self.quantile(u)
    }

    /// Quantile (inverse CDF) at `p ∈ (0, 1)`.
    pub fn quantile(&self, p: f64) -> f64 {
        let b = self.scale;
        let tau = self.tau;
        let z = self.normaliser();
        let lower_mass = b * (1.0 - (-tau / b).exp()) / z; // mass of [0, τ] = 1/2
        let x = if p <= lower_mass {
            // Solve p·Z = b(e^{-(τ-x)/b} − e^{-τ/b}).
            tau + b * (p * z / b + (-tau / b).exp()).ln()
        } else {
            // Symmetric upper branch.
            let q = 1.0 - p;
            2.0 * tau - (tau + b * (q * z / b + (-tau / b).exp()).ln())
        };
        x.clamp(0.0, 2.0 * tau)
    }

    /// Convenience: adds a sample to `value` (yielding a value that is always
    /// at least `value` and at most `value + 2τ`).
    pub fn add_noise<R: Rng>(&self, value: f64, rng: &mut R) -> f64 {
        value + self.sample(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded_rng;

    #[test]
    fn truncation_radius_formula() {
        let tau = truncation_radius(1.0, 1e-6, 1.0).unwrap();
        let expect = (1.0 + (1f64.exp() - 1.0) / 1e-6).ln();
        assert!((tau - expect).abs() < 1e-9);
        // Scales linearly with sensitivity.
        let tau3 = truncation_radius(1.0, 1e-6, 3.0).unwrap();
        assert!((tau3 - 3.0 * tau).abs() < 1e-9);
        // Invalid parameters.
        assert!(truncation_radius(0.0, 1e-6, 1.0).is_err());
        assert!(truncation_radius(1.0, 0.0, 1.0).is_err());
        assert!(truncation_radius(1.0, 1.5, 1.0).is_err());
        assert!(truncation_radius(1.0, 1e-6, -1.0).is_err());
    }

    #[test]
    fn tau_is_big_o_of_lambda_times_sensitivity() {
        // τ(ε, δ, Δ) ≤ O(Δ·λ) for constant ε: check the concrete constant here.
        let (eps, delta) = (1.0f64, 1e-9f64);
        let lambda = (1.0 / eps) * (1.0 / delta).ln();
        let tau = truncation_radius(eps, delta, 1.0).unwrap();
        assert!(tau <= 2.0 * lambda + 2.0, "tau = {tau}, lambda = {lambda}");
    }

    #[test]
    fn samples_stay_in_support() {
        let d = TruncatedLaplace::calibrated(0.5, 1e-6, 2.0).unwrap();
        let mut rng = seeded_rng(99);
        for _ in 0..10_000 {
            let x = d.sample(&mut rng);
            assert!(x >= 0.0 && x <= d.max_value(), "x = {x}");
        }
    }

    #[test]
    fn cdf_quantile_roundtrip() {
        let d = TruncatedLaplace::new(2.0, 11.0).unwrap();
        for &p in &[0.01, 0.2, 0.5, 0.8, 0.99] {
            let x = d.quantile(p);
            assert!((d.cdf(x) - p).abs() < 1e-9, "p = {p}, x = {x}");
        }
        assert!((d.cdf(11.0) - 0.5).abs() < 1e-9);
        assert_eq!(d.cdf(-1.0), 0.0);
        assert_eq!(d.cdf(23.0), 1.0);
    }

    #[test]
    fn sample_mean_is_tau() {
        let d = TruncatedLaplace::new(1.5, 9.0).unwrap();
        let mut rng = seeded_rng(5);
        let n = 100_000;
        let mean = (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 9.0).abs() < 0.05, "mean = {mean}");
    }

    #[test]
    fn pdf_integrates_to_one() {
        let d = TruncatedLaplace::new(1.0, 5.0).unwrap();
        let step = 1e-3;
        let mut total = 0.0;
        let mut x = 0.0;
        while x < 10.0 {
            total += d.pdf(x) * step;
            x += step;
        }
        assert!((total - 1.0).abs() < 1e-2, "integral = {total}");
    }

    #[test]
    fn noise_is_nonnegative_upper_bound() {
        // The whole point of TLap in the paper: the noisy value never falls
        // below the true value, and exceeds it by at most 2τ.
        let d = TruncatedLaplace::calibrated(1.0, 1e-6, 1.0).unwrap();
        let mut rng = seeded_rng(21);
        for _ in 0..1000 {
            let noisy = d.add_noise(42.0, &mut rng);
            assert!(noisy >= 42.0);
            assert!(noisy <= 42.0 + d.max_value());
        }
    }

    #[test]
    fn invalid_construction() {
        assert!(TruncatedLaplace::new(0.0, 1.0).is_err());
        assert!(TruncatedLaplace::new(1.0, -1.0).is_err());
        assert!(TruncatedLaplace::new(f64::NAN, 1.0).is_err());
    }
}
