//! A durable, crash-safe privacy-budget ledger.
//!
//! The [`BudgetAccountant`](crate::BudgetAccountant) keeps spend in memory;
//! a release server that loses a charge in a crash has *under-counted* a
//! tenant's spend, which is a privacy violation, not an availability blip.
//! This module provides the storage-format half of a crash-safe accountant:
//!
//! * **Append-only checksummed records** ([`LedgerRecord`]): one line per
//!   record, a CRC-32 over the payload in front, and every `(ε, δ)` stored
//!   as exact IEEE-754 bit patterns — replay reproduces spend *bit for
//!   bit*, not merely approximately.
//! * **A two-phase charge protocol**: a charge is first recorded as an
//!   [`LedgerRecord::Intent`] (fsync'd *before* the mechanism touches data)
//!   and later resolved by a [`LedgerRecord::Commit`] or
//!   [`LedgerRecord::Abort`].  A crash between the two leaves a *pending*
//!   intent, which replay counts as **spent** (the conservative resolution:
//!   the mechanism may have consumed its randomness, so the budget must be
//!   treated as gone).
//! * **Torn-tail recovery** ([`LedgerReplay::replay`]): a crash mid-append
//!   leaves a final record that is incomplete or fails its checksum.  Replay
//!   truncates exactly that torn tail ([`LedgerReplay::valid_len`]) and
//!   refuses to start on a checksum failure anywhere *else* (real
//!   corruption must not be silently dropped).
//!
//! Accumulation uses [`CompensatedSum`] in record order, and admission uses
//! the same relative-slack rule [`budget_fits`] as the in-memory
//! accountant, so live state, recovered state, and an independent oracle
//! replay of the same bytes agree exactly.
//!
//! The module is storage-agnostic: it defines record encoding, replay, and
//! per-tenant state ([`TenantLedgerState`]); the file handling (append,
//! fsync, truncate, failpoints) lives with the caller — see the
//! `dpsyn-server` crate's store.

use std::collections::BTreeMap;

use crate::budget::{budget_fits, CompensatedSum, PrivacyParams};
use crate::error::NoiseError;
use crate::Result;

/// Maximum length of a tenant name.
pub const MAX_TENANT_LEN: usize = 64;

/// Maximum length of a charge label.
pub const MAX_LABEL_LEN: usize = 128;

/// Whether `name` is a valid tenant identifier: 1–[`MAX_TENANT_LEN`]
/// characters from `[A-Za-z0-9_-]` (no whitespace, so names embed safely in
/// the space-separated record payloads and in URL paths).
pub fn valid_tenant(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= MAX_TENANT_LEN
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-')
}

/// Whether `label` is a valid charge label: 1–[`MAX_LABEL_LEN`] characters
/// from `[A-Za-z0-9_:./-]`.
pub fn valid_label(label: &str) -> bool {
    !label.is_empty()
        && label.len() <= MAX_LABEL_LEN
        && label
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'_' | b':' | b'.' | b'/' | b'-'))
}

/// CRC-32 (IEEE 802.3 polynomial, bit-reflected) over `bytes`.
///
/// Hand-rolled and table-free: the ledger appends are fsync-bound, so the
/// eight-iteration inner loop is never on a hot path.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// One record of the append-only budget ledger.
#[derive(Debug, Clone, PartialEq)]
pub enum LedgerRecord {
    /// A tenant was created with a total `(ε, δ)` grant.
    Grant {
        /// Tenant name (see [`valid_tenant`]).
        tenant: String,
        /// The tenant's total budget.
        grant: PrivacyParams,
    },
    /// Phase one of a charge: the cost is reserved *before* the mechanism
    /// runs.  A crash after this record (and before its resolution) counts
    /// the cost as spent.
    Intent {
        /// Tenant name.
        tenant: String,
        /// Per-tenant monotonically increasing charge sequence number.
        seq: u64,
        /// The `(ε, δ)` cost being reserved.
        cost: PrivacyParams,
        /// What the charge is for (see [`valid_label`]).
        label: String,
    },
    /// Phase two, success: the reserved cost is spent for good.
    Commit {
        /// Tenant name.
        tenant: String,
        /// Sequence number of the intent being committed.
        seq: u64,
    },
    /// Phase two, safe failure: the reserved cost is released.  Only
    /// recorded when the mechanism is known not to have touched data or
    /// randomness (e.g. request validation failed after admission).
    Abort {
        /// Tenant name.
        tenant: String,
        /// Sequence number of the intent being aborted.
        seq: u64,
    },
}

impl LedgerRecord {
    /// Encodes the record as one checksummed, newline-terminated line:
    /// `<crc32 of payload, 8 lowercase hex digits> <payload>\n`.
    ///
    /// Privacy parameters are encoded as `f64::to_bits` hex so that decoding
    /// reproduces the exact value.
    pub fn encode(&self) -> String {
        let payload = match self {
            LedgerRecord::Grant { tenant, grant } => format!(
                "G {tenant} {:016x} {:016x}",
                grant.epsilon().to_bits(),
                grant.delta().to_bits()
            ),
            LedgerRecord::Intent {
                tenant,
                seq,
                cost,
                label,
            } => format!(
                "I {tenant} {seq} {:016x} {:016x} {label}",
                cost.epsilon().to_bits(),
                cost.delta().to_bits()
            ),
            LedgerRecord::Commit { tenant, seq } => format!("C {tenant} {seq}"),
            LedgerRecord::Abort { tenant, seq } => format!("A {tenant} {seq}"),
        };
        format!("{:08x} {payload}\n", crc32(payload.as_bytes()))
    }

    /// Decodes one line (without its trailing newline).  `record` is the
    /// 1-based position used in error reports.
    pub fn decode(line: &str, record: usize) -> Result<LedgerRecord> {
        let corrupt = |detail: &str| NoiseError::LedgerCorrupt {
            record,
            detail: detail.to_string(),
        };
        let (crc_hex, payload) = line
            .split_once(' ')
            .ok_or_else(|| corrupt("missing checksum field"))?;
        let stored =
            u32::from_str_radix(crc_hex, 16).map_err(|_| corrupt("unparseable checksum"))?;
        if crc_hex.len() != 8 || stored != crc32(payload.as_bytes()) {
            return Err(corrupt("checksum mismatch"));
        }
        let fields: Vec<&str> = payload.split(' ').collect();
        let parse_seq = |s: &str| s.parse::<u64>().map_err(|_| corrupt("bad sequence number"));
        let parse_params = |eps_hex: &str, delta_hex: &str| -> Result<PrivacyParams> {
            let eps = u64::from_str_radix(eps_hex, 16).map_err(|_| corrupt("bad epsilon bits"))?;
            let delta =
                u64::from_str_radix(delta_hex, 16).map_err(|_| corrupt("bad delta bits"))?;
            PrivacyParams::new(f64::from_bits(eps), f64::from_bits(delta))
                .map_err(|_| corrupt("out-of-range privacy parameters"))
        };
        let check_tenant = |t: &str| -> Result<String> {
            if valid_tenant(t) {
                Ok(t.to_string())
            } else {
                Err(corrupt("invalid tenant name"))
            }
        };
        match fields.as_slice() {
            ["G", tenant, eps, delta] => Ok(LedgerRecord::Grant {
                tenant: check_tenant(tenant)?,
                grant: parse_params(eps, delta)?,
            }),
            ["I", tenant, seq, eps, delta, label] => {
                if !valid_label(label) {
                    return Err(corrupt("invalid charge label"));
                }
                Ok(LedgerRecord::Intent {
                    tenant: check_tenant(tenant)?,
                    seq: parse_seq(seq)?,
                    cost: parse_params(eps, delta)?,
                    label: (*label).to_string(),
                })
            }
            ["C", tenant, seq] => Ok(LedgerRecord::Commit {
                tenant: check_tenant(tenant)?,
                seq: parse_seq(seq)?,
            }),
            ["A", tenant, seq] => Ok(LedgerRecord::Abort {
                tenant: check_tenant(tenant)?,
                seq: parse_seq(seq)?,
            }),
            _ => Err(corrupt("unknown record shape")),
        }
    }
}

/// Per-tenant ledger state: the grant, bit-exact committed spend, and the
/// pending (intended but unresolved) charges — which count as spent under
/// the conservative resolution.
#[derive(Debug, Clone)]
pub struct TenantLedgerState {
    grant: PrivacyParams,
    committed_epsilon: CompensatedSum,
    committed_delta: CompensatedSum,
    pending: BTreeMap<u64, PrivacyParams>,
    next_seq: u64,
    committed: u64,
    aborted: u64,
}

impl TenantLedgerState {
    /// A fresh tenant with nothing spent.
    pub fn new(grant: PrivacyParams) -> Self {
        TenantLedgerState {
            grant,
            committed_epsilon: CompensatedSum::new(),
            committed_delta: CompensatedSum::new(),
            pending: BTreeMap::new(),
            next_seq: 0,
            committed: 0,
            aborted: 0,
        }
    }

    /// The tenant's total grant.
    pub fn grant(&self) -> PrivacyParams {
        self.grant
    }

    /// The next unused charge sequence number.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Number of committed charges.
    pub fn committed_count(&self) -> u64 {
        self.committed
    }

    /// Number of aborted charges.
    pub fn aborted_count(&self) -> u64 {
        self.aborted
    }

    /// The currently pending (unresolved) intents, by sequence number.
    pub fn pending(&self) -> &BTreeMap<u64, PrivacyParams> {
        &self.pending
    }

    /// Conservative spend: committed charges plus every pending intent
    /// (added in sequence order on top of the committed compensated sum, so
    /// the value is a deterministic function of the record sequence).
    pub fn spent(&self) -> (f64, f64) {
        let mut eps = self.committed_epsilon;
        let mut delta = self.committed_delta;
        for cost in self.pending.values() {
            eps.add(cost.epsilon());
            delta.add(cost.delta());
        }
        (eps.value(), delta.value())
    }

    /// Conservative remaining budget, clamped at zero.
    pub fn remaining(&self) -> (f64, f64) {
        let (spent_eps, spent_delta) = self.spent();
        (
            (self.grant.epsilon() - spent_eps).max(0.0),
            (self.grant.delta() - spent_delta).max(0.0),
        )
    }

    /// Whether a charge of `cost` is admissible right now, under the shared
    /// [`budget_fits`] relative-slack rule against the conservative spend.
    pub fn admits(&self, cost: PrivacyParams) -> bool {
        let (spent_eps, spent_delta) = self.spent();
        budget_fits(self.grant.epsilon(), spent_eps, cost.epsilon())
            && budget_fits(self.grant.delta(), spent_delta, cost.delta())
    }

    /// Records an intent.  `seq` must be the tenant's next sequence number
    /// or later (append-only monotonicity).
    pub fn begin_intent(&mut self, seq: u64, cost: PrivacyParams) -> Result<()> {
        if seq < self.next_seq {
            return Err(NoiseError::LedgerInvalid {
                detail: format!("non-monotonic intent seq {seq} (next is {})", self.next_seq),
            });
        }
        self.pending.insert(seq, cost);
        self.next_seq = seq + 1;
        Ok(())
    }

    /// Resolves a pending intent as committed, folding its cost into the
    /// spent sums.
    pub fn commit(&mut self, seq: u64) -> Result<()> {
        let cost = self.pending.remove(&seq).ok_or(NoiseError::LedgerInvalid {
            detail: format!("commit for unknown intent seq {seq}"),
        })?;
        self.committed_epsilon.add(cost.epsilon());
        self.committed_delta.add(cost.delta());
        self.committed += 1;
        Ok(())
    }

    /// Resolves a pending intent as aborted, releasing its cost.
    pub fn abort(&mut self, seq: u64) -> Result<()> {
        self.pending.remove(&seq).ok_or(NoiseError::LedgerInvalid {
            detail: format!("abort for unknown intent seq {seq}"),
        })?;
        self.aborted += 1;
        Ok(())
    }
}

/// The result of replaying a ledger byte stream: per-tenant state, plus what
/// (if anything) must be truncated as a torn tail.
#[derive(Debug)]
pub struct LedgerReplay {
    /// Recovered per-tenant state, with pending intents counted as spent.
    pub tenants: BTreeMap<String, TenantLedgerState>,
    /// Number of valid records replayed.
    pub records: usize,
    /// Byte length of the valid prefix.  When [`LedgerReplay::torn_tail`] is
    /// set, the file must be truncated to this length before appending.
    pub valid_len: usize,
    /// Whether the stream ended in a torn (incomplete or checksum-failing)
    /// final record.
    pub torn_tail: bool,
}

impl LedgerReplay {
    /// Replays a ledger byte stream.
    ///
    /// A syntactically invalid **final** record — no terminating newline, a
    /// checksum mismatch, or an unparseable payload — is a torn tail: it is
    /// dropped, [`LedgerReplay::valid_len`] points at its start, and
    /// [`LedgerReplay::torn_tail`] is set.  The same failure on any earlier
    /// record, or a *semantic* protocol violation anywhere (duplicate grant,
    /// commit without intent, …), is an error: real corruption must stop the
    /// server rather than be silently dropped.
    pub fn replay(bytes: &[u8]) -> Result<LedgerReplay> {
        // Split into complete lines; remember whether trailing bytes exist
        // after the final newline (always a torn tail).
        let mut lines: Vec<(usize, &[u8])> = Vec::new(); // (start offset, line without \n)
        let mut start = 0usize;
        for (i, &b) in bytes.iter().enumerate() {
            if b == b'\n' {
                lines.push((start, &bytes[start..i]));
                start = i + 1;
            }
        }
        let trailing = start < bytes.len();

        let mut replay = LedgerReplay {
            tenants: BTreeMap::new(),
            records: 0,
            valid_len: start,
            torn_tail: trailing,
        };
        let last = lines.len();
        for (idx, (offset, raw)) in lines.iter().enumerate() {
            let record_no = idx + 1;
            let is_final_line = idx + 1 == last && !trailing;
            let line = match std::str::from_utf8(raw) {
                Ok(s) => s,
                Err(_) if is_final_line => {
                    replay.valid_len = *offset;
                    replay.torn_tail = true;
                    return Ok(replay);
                }
                Err(_) => {
                    return Err(NoiseError::LedgerCorrupt {
                        record: record_no,
                        detail: "non-UTF-8 record".to_string(),
                    })
                }
            };
            let record = match LedgerRecord::decode(line, record_no) {
                Ok(r) => r,
                // A decode failure on the final complete line is a torn
                // write (the newline of the previous record survived, the
                // new record did not finish): truncate it.
                Err(_) if is_final_line => {
                    replay.valid_len = *offset;
                    replay.torn_tail = true;
                    return Ok(replay);
                }
                Err(e) => return Err(e),
            };
            replay.apply(record, record_no)?;
            replay.records += 1;
        }
        Ok(replay)
    }

    /// Applies one decoded record to the per-tenant state.  Semantic
    /// violations are [`NoiseError::LedgerInvalid`] wrapped with the record
    /// position.
    fn apply(&mut self, record: LedgerRecord, record_no: usize) -> Result<()> {
        let invalid = |detail: String| NoiseError::LedgerCorrupt {
            record: record_no,
            detail,
        };
        match record {
            LedgerRecord::Grant { tenant, grant } => {
                if self.tenants.contains_key(&tenant) {
                    return Err(invalid(format!("duplicate grant for tenant {tenant}")));
                }
                self.tenants.insert(tenant, TenantLedgerState::new(grant));
            }
            LedgerRecord::Intent {
                tenant, seq, cost, ..
            } => {
                let state = self
                    .tenants
                    .get_mut(&tenant)
                    .ok_or_else(|| invalid(format!("intent for unknown tenant {tenant}")))?;
                state
                    .begin_intent(seq, cost)
                    .map_err(|e| invalid(e.to_string()))?;
            }
            LedgerRecord::Commit { tenant, seq } => {
                let state = self
                    .tenants
                    .get_mut(&tenant)
                    .ok_or_else(|| invalid(format!("commit for unknown tenant {tenant}")))?;
                state.commit(seq).map_err(|e| invalid(e.to_string()))?;
            }
            LedgerRecord::Abort { tenant, seq } => {
                let state = self
                    .tenants
                    .get_mut(&tenant)
                    .ok_or_else(|| invalid(format!("abort for unknown tenant {tenant}")))?;
                state.abort(seq).map_err(|e| invalid(e.to_string()))?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(eps: f64, delta: f64) -> PrivacyParams {
        PrivacyParams::new(eps, delta).unwrap()
    }

    fn sample_records() -> Vec<LedgerRecord> {
        vec![
            LedgerRecord::Grant {
                tenant: "acme".into(),
                grant: params(1.0, 1e-6),
            },
            LedgerRecord::Intent {
                tenant: "acme".into(),
                seq: 0,
                cost: params(0.25, 1e-7),
                label: "release:two_table/demo".into(),
            },
            LedgerRecord::Commit {
                tenant: "acme".into(),
                seq: 0,
            },
            LedgerRecord::Intent {
                tenant: "acme".into(),
                seq: 1,
                cost: params(0.5, 2e-7),
                label: "release:multi_table/demo".into(),
            },
        ]
    }

    fn encode_all(records: &[LedgerRecord]) -> Vec<u8> {
        records
            .iter()
            .flat_map(|r| r.encode().into_bytes())
            .collect()
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn records_roundtrip_bit_exactly() {
        for (i, rec) in sample_records().iter().enumerate() {
            let line = rec.encode();
            assert!(line.ends_with('\n'));
            let back = LedgerRecord::decode(line.trim_end_matches('\n'), i + 1).unwrap();
            assert_eq!(&back, rec);
        }
        // Bit-exactness: a value with no short decimal representation.
        let odd = params(0.1 + 0.2, 1e-9);
        let rec = LedgerRecord::Grant {
            tenant: "t".into(),
            grant: odd,
        };
        let back = LedgerRecord::decode(rec.encode().trim_end_matches('\n'), 1).unwrap();
        match back {
            LedgerRecord::Grant { grant, .. } => {
                assert_eq!(grant.epsilon().to_bits(), odd.epsilon().to_bits());
                assert_eq!(grant.delta().to_bits(), odd.delta().to_bits());
            }
            _ => panic!("wrong record kind"),
        }
    }

    #[test]
    fn decode_rejects_tampering() {
        let line = sample_records()[0].encode();
        let trimmed = line.trim_end_matches('\n');
        // Flip one payload byte: checksum must catch it.
        let mut tampered = trimmed.to_string().into_bytes();
        let last = tampered.len() - 1;
        tampered[last] ^= 0x01;
        let tampered = String::from_utf8(tampered).unwrap();
        assert!(LedgerRecord::decode(&tampered, 1).is_err());
        assert!(LedgerRecord::decode("zz not-a-record", 1).is_err());
        assert!(LedgerRecord::decode("", 1).is_err());
    }

    #[test]
    fn replay_reconstructs_conservative_state() {
        let bytes = encode_all(&sample_records());
        let replay = LedgerReplay::replay(&bytes).unwrap();
        assert_eq!(replay.records, 4);
        assert!(!replay.torn_tail);
        assert_eq!(replay.valid_len, bytes.len());
        let acme = &replay.tenants["acme"];
        // Committed 0.25 plus the *pending* 0.5 counts as spent.
        let (eps, _) = acme.spent();
        assert_eq!(eps.to_bits(), (0.25f64 + 0.5).to_bits());
        assert_eq!(acme.pending().len(), 1);
        assert_eq!(acme.next_seq(), 2);
        // Remaining admits at most what is genuinely left.
        assert!(acme.admits(params(0.25, 1e-7)));
        assert!(!acme.admits(params(0.3, 1e-7)));
    }

    #[test]
    fn abort_releases_the_reservation() {
        let mut records = sample_records();
        records.push(LedgerRecord::Abort {
            tenant: "acme".into(),
            seq: 1,
        });
        let replay = LedgerReplay::replay(&encode_all(&records)).unwrap();
        let acme = &replay.tenants["acme"];
        let (eps, _) = acme.spent();
        assert_eq!(eps.to_bits(), 0.25f64.to_bits());
        assert_eq!(acme.aborted_count(), 1);
        assert!(acme.pending().is_empty());
    }

    #[test]
    fn torn_tail_is_truncated_not_fatal() {
        let records = sample_records();
        let full = encode_all(&records);
        let clean_len = records[..3].iter().map(|r| r.encode().len()).sum::<usize>();
        // Cut the final record anywhere inside it (including losing the
        // newline): replay must drop exactly the torn record.
        for cut in clean_len + 1..full.len() {
            let replay = LedgerReplay::replay(&full[..cut]).unwrap();
            assert!(replay.torn_tail, "cut at {cut}");
            assert_eq!(replay.valid_len, clean_len, "cut at {cut}");
            assert_eq!(replay.records, 3, "cut at {cut}");
            let (eps, _) = replay.tenants["acme"].spent();
            assert_eq!(eps.to_bits(), 0.25f64.to_bits());
        }
        // Garbage after the final newline is likewise a torn tail.
        let mut garbage = full.clone();
        garbage.extend_from_slice(b"deadbeef partial");
        let replay = LedgerReplay::replay(&garbage).unwrap();
        assert!(replay.torn_tail);
        assert_eq!(replay.valid_len, full.len());
        assert_eq!(replay.records, 4);
    }

    #[test]
    fn mid_file_corruption_is_fatal() {
        let records = sample_records();
        let mut bytes = encode_all(&records);
        // Flip a byte inside the *second* record's payload.
        let first_len = records[0].encode().len();
        bytes[first_len + 12] ^= 0x40;
        assert!(matches!(
            LedgerReplay::replay(&bytes),
            Err(NoiseError::LedgerCorrupt { record: 2, .. })
        ));
    }

    #[test]
    fn protocol_violations_are_fatal_anywhere() {
        // Commit without an intent.
        let bad = encode_all(&[
            LedgerRecord::Grant {
                tenant: "t".into(),
                grant: params(1.0, 0.0),
            },
            LedgerRecord::Commit {
                tenant: "t".into(),
                seq: 7,
            },
            LedgerRecord::Grant {
                tenant: "u".into(),
                grant: params(1.0, 0.0),
            },
        ]);
        assert!(LedgerReplay::replay(&bad).is_err());
        // Duplicate grant.
        let dup = encode_all(&[
            LedgerRecord::Grant {
                tenant: "t".into(),
                grant: params(1.0, 0.0),
            },
            LedgerRecord::Grant {
                tenant: "t".into(),
                grant: params(2.0, 0.0),
            },
            LedgerRecord::Commit {
                tenant: "t".into(),
                seq: 0,
            },
        ]);
        assert!(LedgerReplay::replay(&dup).is_err());
        // Non-monotonic intent seq.
        let mut state = TenantLedgerState::new(params(1.0, 0.0));
        state.begin_intent(3, params(0.1, 0.0)).unwrap();
        assert!(state.begin_intent(2, params(0.1, 0.0)).is_err());
    }

    #[test]
    fn replayed_spend_is_bit_identical_to_live_accumulation() {
        // A thousand small commits: the replayed compensated sum must equal
        // live accumulation bit for bit (same ops in the same order).
        let grant = params(1.0, 1e-6);
        let cost = grant.split(1000).unwrap();
        let mut records = vec![LedgerRecord::Grant {
            tenant: "t".into(),
            grant,
        }];
        let mut live = TenantLedgerState::new(grant);
        for seq in 0..1000u64 {
            records.push(LedgerRecord::Intent {
                tenant: "t".into(),
                seq,
                cost,
                label: "drip".into(),
            });
            records.push(LedgerRecord::Commit {
                tenant: "t".into(),
                seq,
            });
            live.begin_intent(seq, cost).unwrap();
            live.commit(seq).unwrap();
        }
        let replay = LedgerReplay::replay(&encode_all(&records)).unwrap();
        let replayed = &replay.tenants["t"];
        assert_eq!(replayed.spent().0.to_bits(), live.spent().0.to_bits());
        assert_eq!(replayed.spent().1.to_bits(), live.spent().1.to_bits());
        // And the compensated total neither under- nor over-shoots.
        assert!((replayed.spent().0 - 1.0).abs() < 1e-12);
        assert!(!replayed.admits(params(1e-9, 0.0)));
    }

    #[test]
    fn name_validation() {
        assert!(valid_tenant("acme-corp_01"));
        assert!(!valid_tenant(""));
        assert!(!valid_tenant("has space"));
        assert!(!valid_tenant(&"x".repeat(65)));
        assert!(valid_label("release:two_table/demo.v1"));
        assert!(!valid_label("bad label"));
        assert!(!valid_label(""));
    }
}
