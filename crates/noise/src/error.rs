//! Error type for the DP primitives.

use std::fmt;

/// Errors raised by differential-privacy primitives.
#[derive(Debug, Clone, PartialEq)]
pub enum NoiseError {
    /// A privacy or distribution parameter is out of range.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Offending value.
        value: f64,
        /// Human-readable constraint.
        constraint: &'static str,
    },
    /// A mechanism asked for more privacy budget than remains in an accountant.
    BudgetExhausted {
        /// ε requested by the mechanism.
        requested_epsilon: f64,
        /// ε still available.
        remaining_epsilon: f64,
        /// δ requested by the mechanism.
        requested_delta: f64,
        /// δ still available.
        remaining_delta: f64,
    },
    /// The exponential mechanism was invoked with no candidates.
    EmptyCandidateSet,
    /// Candidate / score lengths disagree.
    LengthMismatch {
        /// Number of candidates supplied.
        candidates: usize,
        /// Number of scores supplied.
        scores: usize,
    },
    /// A durable budget-ledger record failed to decode during replay at a
    /// position that cannot be a torn tail (mid-file corruption).
    LedgerCorrupt {
        /// 1-based record (line) number of the offending record.
        record: usize,
        /// What failed to validate.
        detail: String,
    },
    /// A ledger operation violated the charge protocol (unknown tenant or
    /// sequence number, duplicate grant, non-monotonic intent, …).
    LedgerInvalid {
        /// What was violated.
        detail: String,
    },
}

impl fmt::Display for NoiseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NoiseError::InvalidParameter {
                name,
                value,
                constraint,
            } => write!(f, "invalid parameter {name} = {value}: must satisfy {constraint}"),
            NoiseError::BudgetExhausted {
                requested_epsilon,
                remaining_epsilon,
                requested_delta,
                remaining_delta,
            } => write!(
                f,
                "privacy budget exhausted: requested (ε = {requested_epsilon}, δ = {requested_delta}) \
                 but only (ε = {remaining_epsilon}, δ = {remaining_delta}) remains"
            ),
            NoiseError::EmptyCandidateSet => {
                write!(f, "exponential mechanism requires at least one candidate")
            }
            NoiseError::LengthMismatch { candidates, scores } => write!(
                f,
                "exponential mechanism received {candidates} candidates but {scores} scores"
            ),
            NoiseError::LedgerCorrupt { record, detail } => {
                write!(f, "budget ledger corrupt at record {record}: {detail}")
            }
            NoiseError::LedgerInvalid { detail } => {
                write!(f, "budget ledger protocol violation: {detail}")
            }
        }
    }
}

impl std::error::Error for NoiseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_parameter_name() {
        let e = NoiseError::InvalidParameter {
            name: "epsilon",
            value: -1.0,
            constraint: "epsilon > 0",
        };
        assert!(e.to_string().contains("epsilon"));
    }

    #[test]
    fn budget_error_mentions_values() {
        let e = NoiseError::BudgetExhausted {
            requested_epsilon: 1.0,
            remaining_epsilon: 0.5,
            requested_delta: 0.0,
            remaining_delta: 0.0,
        };
        assert!(e.to_string().contains("0.5"));
    }
}
