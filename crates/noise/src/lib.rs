//! Differential privacy primitives used by the multi-table release algorithms.
//!
//! This crate provides the mechanisms of Section 2 of the paper:
//!
//! * the Laplace mechanism ([`laplace`]),
//! * the shifted, truncated Laplace distribution `TLap_b^τ` and its
//!   calibration `τ(ε, δ, Δ)` ([`tlap`]),
//! * the exponential mechanism ([`exponential`]),
//! * privacy parameters `(ε, δ)`, the paper's `λ = (1/ε)·ln(1/δ)`, and
//!   basic / advanced / parallel composition with a budget accountant
//!   ([`budget`]),
//! * a durable, crash-safe budget-ledger format — checksummed append-only
//!   records, a two-phase charge protocol, and torn-tail-tolerant replay
//!   ([`ledger`]),
//! * deterministic RNG plumbing ([`rng`]).
//!
//! All sampling takes an explicit `&mut impl Rng` so that every experiment in
//! the workspace is reproducible from a seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod budget;
pub mod error;
pub mod exponential;
pub mod laplace;
pub mod ledger;
pub mod rng;
pub mod tlap;

pub use budget::{budget_fits, BudgetAccountant, CompensatedSum, Composition, PrivacyParams};
pub use error::NoiseError;
pub use exponential::{exponential_mechanism, exponential_mechanism_weights};
pub use laplace::Laplace;
pub use ledger::{LedgerRecord, LedgerReplay, TenantLedgerState};
pub use rng::seeded_rng;
pub use tlap::{truncation_radius, TruncatedLaplace};

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, NoiseError>;
