//! Privacy parameters `(ε, δ)`, the paper's `λ`, and composition rules.
//!
//! The release algorithms of the paper split a global `(ε, δ)` budget across
//! sub-mechanisms: Algorithm 1 and Algorithm 3 split it in half between the
//! sensitivity estimate and the PMW invocation (basic composition), Algorithm
//! 4 relies on parallel composition across disjoint sub-instances, Algorithm 2
//! internally relies on advanced composition across its `k` iterations, and
//! Algorithm 6/7 additionally pay a group-privacy factor because a tuple can
//! reach several sub-instances.  This module implements all of those rules and
//! a small accountant that refuses to overspend.

use crate::error::NoiseError;
use crate::Result;

/// An `(ε, δ)` differential-privacy parameter pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrivacyParams {
    epsilon: f64,
    delta: f64,
}

impl PrivacyParams {
    /// Creates a parameter pair.  Requires `ε > 0` and `0 ≤ δ < 1`.
    pub fn new(epsilon: f64, delta: f64) -> Result<Self> {
        if epsilon.is_nan() || epsilon <= 0.0 || epsilon.is_infinite() {
            return Err(NoiseError::InvalidParameter {
                name: "epsilon",
                value: epsilon,
                constraint: "0 < epsilon < ∞",
            });
        }
        if !(0.0..1.0).contains(&delta) {
            return Err(NoiseError::InvalidParameter {
                name: "delta",
                value: delta,
                constraint: "0 <= delta < 1",
            });
        }
        Ok(PrivacyParams { epsilon, delta })
    }

    /// Pure-DP parameters (`δ = 0`).
    pub fn pure(epsilon: f64) -> Result<Self> {
        PrivacyParams::new(epsilon, 0.0)
    }

    /// The ε component.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The δ component.
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// The paper's `λ = (1/ε)·ln(1/δ)` (Section 1.1).  Returns `+∞` when
    /// `δ = 0`.
    pub fn lambda(&self) -> f64 {
        if self.delta == 0.0 {
            f64::INFINITY
        } else {
            (1.0 / self.epsilon) * (1.0 / self.delta).ln()
        }
    }

    /// Splits the budget into `parts` equal pieces (basic composition in
    /// reverse): each piece carries `ε/parts` and `δ/parts`.
    pub fn split(&self, parts: usize) -> Result<Self> {
        if parts == 0 {
            return Err(NoiseError::InvalidParameter {
                name: "parts",
                value: 0.0,
                constraint: "parts >= 1",
            });
        }
        PrivacyParams::new(self.epsilon / parts as f64, self.delta / parts as f64)
    }

    /// Convenience for the ubiquitous `(ε/2, δ/2)` split.
    pub fn halve(&self) -> Self {
        PrivacyParams {
            epsilon: self.epsilon / 2.0,
            delta: self.delta / 2.0,
        }
    }

    /// Multiplies both parameters by `factor > 0` (used for group privacy:
    /// a mechanism run on data where one individual influences `g` records is
    /// `(gε, g e^{gε} δ)`-DP; the paper's Lemma 4.11 uses the looser
    /// `(gε, gδ)` bookkeeping for its `O(log^c n)` factor, which we follow).
    pub fn scale(&self, factor: f64) -> Result<Self> {
        if factor.is_nan() || factor <= 0.0 {
            return Err(NoiseError::InvalidParameter {
                name: "factor",
                value: factor,
                constraint: "factor > 0",
            });
        }
        PrivacyParams::new(self.epsilon * factor, (self.delta * factor).min(0.999_999))
    }
}

/// Composition rules over sequences of `(ε, δ)` guarantees.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Composition {
    /// Basic (sequential) composition: parameters add up.
    Basic,
    /// Parallel composition: mechanisms run on disjoint parts of the data;
    /// the guarantee is the maximum of the individual parameters.
    Parallel,
}

impl Composition {
    /// Composes a sequence of guarantees under this rule.
    pub fn compose(&self, parts: &[PrivacyParams]) -> Result<PrivacyParams> {
        if parts.is_empty() {
            return Err(NoiseError::InvalidParameter {
                name: "parts",
                value: 0.0,
                constraint: "at least one mechanism",
            });
        }
        let (eps, delta) = match self {
            Composition::Basic => parts
                .iter()
                .fold((0.0, 0.0), |(e, d), p| (e + p.epsilon(), d + p.delta())),
            Composition::Parallel => parts.iter().fold((0.0, 0.0), |(e, d), p| {
                (f64::max(e, p.epsilon()), f64::max(d, p.delta()))
            }),
        };
        PrivacyParams::new(eps, delta.min(0.999_999))
    }
}

/// The per-iteration ε used inside Algorithm 2 so that `k` adaptive iterations
/// compose (by advanced composition) to at most `(ε, δ)`:
/// `ε' = ε / (16 √(k · ln(1/δ)))`.
pub fn advanced_composition_per_step_epsilon(params: PrivacyParams, k: usize) -> f64 {
    let k = k.max(1) as f64;
    let log_term = if params.delta() > 0.0 {
        (1.0 / params.delta()).ln()
    } else {
        // δ = 0 degenerates to basic composition; fall back to ε/k.
        return params.epsilon() / k;
    };
    params.epsilon() / (16.0 * (k * log_term).sqrt())
}

/// Tracks how much of a global privacy budget has been spent, refusing
/// requests that would exceed it.  A small utility for building pipelines on
/// top of the release algorithms.
#[derive(Debug, Clone)]
pub struct BudgetAccountant {
    total: PrivacyParams,
    spent_epsilon: f64,
    spent_delta: f64,
    charges: Vec<(String, PrivacyParams)>,
}

impl BudgetAccountant {
    /// Creates an accountant for a global budget.
    pub fn new(total: PrivacyParams) -> Self {
        BudgetAccountant {
            total,
            spent_epsilon: 0.0,
            spent_delta: 0.0,
            charges: Vec::new(),
        }
    }

    /// The global budget.
    pub fn total(&self) -> PrivacyParams {
        self.total
    }

    /// Remaining budget under basic composition.
    pub fn remaining(&self) -> PrivacyParams {
        PrivacyParams {
            epsilon: (self.total.epsilon() - self.spent_epsilon).max(0.0),
            delta: (self.total.delta() - self.spent_delta).max(0.0),
        }
    }

    /// Charges a mechanism's cost against the budget; errors when the budget
    /// would be exceeded (with a small tolerance for floating-point error).
    pub fn charge(&mut self, label: impl Into<String>, cost: PrivacyParams) -> Result<()> {
        const TOL: f64 = 1e-9;
        let rem = self.remaining();
        if cost.epsilon() > rem.epsilon() + TOL || cost.delta() > rem.delta() + TOL {
            return Err(NoiseError::BudgetExhausted {
                requested_epsilon: cost.epsilon(),
                remaining_epsilon: rem.epsilon(),
                requested_delta: cost.delta(),
                remaining_delta: rem.delta(),
            });
        }
        self.spent_epsilon += cost.epsilon();
        self.spent_delta += cost.delta();
        self.charges.push((label.into(), cost));
        Ok(())
    }

    /// The log of individual charges (label, cost), in order.
    pub fn charges(&self) -> &[(String, PrivacyParams)] {
        &self.charges
    }

    /// Total spent so far under basic composition.
    pub fn spent(&self) -> PrivacyParams {
        PrivacyParams {
            epsilon: self.spent_epsilon,
            delta: self.spent_delta,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates() {
        assert!(PrivacyParams::new(1.0, 1e-6).is_ok());
        assert!(PrivacyParams::new(0.0, 0.0).is_err());
        assert!(PrivacyParams::new(-1.0, 0.0).is_err());
        assert!(PrivacyParams::new(1.0, 1.0).is_err());
        assert!(PrivacyParams::new(1.0, -0.1).is_err());
        assert!(PrivacyParams::new(f64::NAN, 0.0).is_err());
    }

    #[test]
    fn lambda_matches_formula() {
        let p = PrivacyParams::new(2.0, 1e-6).unwrap();
        let expect = (1.0 / 2.0) * (1e6f64).ln();
        assert!((p.lambda() - expect).abs() < 1e-9);
        assert!(PrivacyParams::pure(1.0).unwrap().lambda().is_infinite());
    }

    #[test]
    fn split_and_halve() {
        let p = PrivacyParams::new(1.0, 1e-4).unwrap();
        let h = p.halve();
        assert!((h.epsilon() - 0.5).abs() < 1e-12);
        assert!((h.delta() - 5e-5).abs() < 1e-18);
        let s = p.split(4).unwrap();
        assert!((s.epsilon() - 0.25).abs() < 1e-12);
        assert!(p.split(0).is_err());
    }

    #[test]
    fn basic_and_parallel_composition() {
        let a = PrivacyParams::new(0.5, 1e-6).unwrap();
        let b = PrivacyParams::new(0.25, 2e-6).unwrap();
        let basic = Composition::Basic.compose(&[a, b]).unwrap();
        assert!((basic.epsilon() - 0.75).abs() < 1e-12);
        assert!((basic.delta() - 3e-6).abs() < 1e-15);
        let par = Composition::Parallel.compose(&[a, b]).unwrap();
        assert!((par.epsilon() - 0.5).abs() < 1e-12);
        assert!((par.delta() - 2e-6).abs() < 1e-15);
        assert!(Composition::Basic.compose(&[]).is_err());
    }

    #[test]
    fn advanced_composition_epsilon_shrinks_with_k() {
        let p = PrivacyParams::new(1.0, 1e-6).unwrap();
        let e1 = advanced_composition_per_step_epsilon(p, 1);
        let e100 = advanced_composition_per_step_epsilon(p, 100);
        assert!(e100 < e1);
        // Matches the formula from Algorithm 2 line 3.
        let expect = 1.0 / (16.0 * (100.0 * (1e6f64).ln()).sqrt());
        assert!((e100 - expect).abs() < 1e-12);
        // Pure DP falls back to basic composition.
        let pure = PrivacyParams::pure(1.0).unwrap();
        assert!((advanced_composition_per_step_epsilon(pure, 10) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn accountant_charges_and_refuses_overdraw() {
        let total = PrivacyParams::new(1.0, 1e-6).unwrap();
        let mut acc = BudgetAccountant::new(total);
        acc.charge("first", PrivacyParams::new(0.6, 5e-7).unwrap())
            .unwrap();
        assert!((acc.remaining().epsilon() - 0.4).abs() < 1e-12);
        let err = acc
            .charge("second", PrivacyParams::new(0.5, 0.0).unwrap())
            .unwrap_err();
        assert!(matches!(err, NoiseError::BudgetExhausted { .. }));
        acc.charge("third", PrivacyParams::new(0.4, 5e-7).unwrap())
            .unwrap();
        assert_eq!(acc.charges().len(), 2);
        assert!((acc.spent().epsilon() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn scale_models_group_privacy() {
        let p = PrivacyParams::new(0.1, 1e-8).unwrap();
        let g = p.scale(8.0).unwrap();
        assert!((g.epsilon() - 0.8).abs() < 1e-12);
        assert!((g.delta() - 8e-8).abs() < 1e-18);
        assert!(p.scale(0.0).is_err());
    }
}
