//! Privacy parameters `(ε, δ)`, the paper's `λ`, and composition rules.
//!
//! The release algorithms of the paper split a global `(ε, δ)` budget across
//! sub-mechanisms: Algorithm 1 and Algorithm 3 split it in half between the
//! sensitivity estimate and the PMW invocation (basic composition), Algorithm
//! 4 relies on parallel composition across disjoint sub-instances, Algorithm 2
//! internally relies on advanced composition across its `k` iterations, and
//! Algorithm 6/7 additionally pay a group-privacy factor because a tuple can
//! reach several sub-instances.  This module implements all of those rules and
//! a small accountant that refuses to overspend.

use crate::error::NoiseError;
use crate::Result;

/// Relative slack used when comparing accumulated spend against a budget
/// total: a charge is admitted iff `spent + cost ≤ total · (1 + SLACK)`.
///
/// The slack is *relative* (scaled by the total), so a tenant with a tiny
/// budget cannot be overdrawn by an absolute tolerance — the failure mode of
/// the previous fixed `1e-9` comparison, under which a clamped-to-zero
/// remainder admitted arbitrarily many sub-tolerance charges.  `1e-12`
/// covers thousands of ULPs of honest floating-point drift at any magnitude
/// while bounding the lifetime overspend at one part in 10¹².
pub const BUDGET_REL_SLACK: f64 = 1e-12;

/// Whether a charge of `cost` fits a budget of `total` with `spent` already
/// consumed, under the [`BUDGET_REL_SLACK`] relative tolerance.
///
/// This is the single admission rule shared by [`BudgetAccountant`] and the
/// durable ledger ([`crate::ledger`]), so in-memory and replayed accounting
/// agree on every boundary case.
pub fn budget_fits(total: f64, spent: f64, cost: f64) -> bool {
    spent + cost <= total * (1.0 + BUDGET_REL_SLACK)
}

/// A Neumaier compensated floating-point sum.
///
/// Repeated small charges against a budget must not drift: a naive `+=`
/// accumulates one rounding error per charge, and over thousands of charges
/// the comparison against the total becomes wrong in both directions
/// (refusing affordable charges, or — combined with an absolute tolerance —
/// admitting an unbounded drip).  The compensated sum keeps a running
/// correction term so [`CompensatedSum::value`] is exact to the last ULP for
/// any realistic charge sequence.  Both [`BudgetAccountant`] and the durable
/// ledger replay ([`crate::ledger`]) accumulate through this type, in record
/// order, so recovered state is bit-identical to live state.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CompensatedSum {
    sum: f64,
    compensation: f64,
}

impl CompensatedSum {
    /// A sum starting at zero.
    pub fn new() -> Self {
        CompensatedSum::default()
    }

    /// Adds one term (Neumaier's variant of Kahan summation).
    pub fn add(&mut self, x: f64) {
        let t = self.sum + x;
        if self.sum.abs() >= x.abs() {
            self.compensation += (self.sum - t) + x;
        } else {
            self.compensation += (x - t) + self.sum;
        }
        self.sum = t;
    }

    /// The compensated value of the sum.
    pub fn value(&self) -> f64 {
        self.sum + self.compensation
    }
}

/// An `(ε, δ)` differential-privacy parameter pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrivacyParams {
    epsilon: f64,
    delta: f64,
}

impl PrivacyParams {
    /// Creates a parameter pair.  Requires `ε > 0` and `0 ≤ δ < 1`.
    pub fn new(epsilon: f64, delta: f64) -> Result<Self> {
        if epsilon.is_nan() || epsilon <= 0.0 || epsilon.is_infinite() {
            return Err(NoiseError::InvalidParameter {
                name: "epsilon",
                value: epsilon,
                constraint: "0 < epsilon < ∞",
            });
        }
        if !(0.0..1.0).contains(&delta) {
            return Err(NoiseError::InvalidParameter {
                name: "delta",
                value: delta,
                constraint: "0 <= delta < 1",
            });
        }
        Ok(PrivacyParams { epsilon, delta })
    }

    /// Pure-DP parameters (`δ = 0`).
    pub fn pure(epsilon: f64) -> Result<Self> {
        PrivacyParams::new(epsilon, 0.0)
    }

    /// The ε component.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The δ component.
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// The paper's `λ = (1/ε)·ln(1/δ)` (Section 1.1).  Returns `+∞` when
    /// `δ = 0`.
    pub fn lambda(&self) -> f64 {
        if self.delta == 0.0 {
            f64::INFINITY
        } else {
            (1.0 / self.epsilon) * (1.0 / self.delta).ln()
        }
    }

    /// Splits the budget into `parts` equal pieces (basic composition in
    /// reverse): each piece carries `ε/parts` and `δ/parts`.
    pub fn split(&self, parts: usize) -> Result<Self> {
        if parts == 0 {
            return Err(NoiseError::InvalidParameter {
                name: "parts",
                value: 0.0,
                constraint: "parts >= 1",
            });
        }
        PrivacyParams::new(self.epsilon / parts as f64, self.delta / parts as f64)
    }

    /// Convenience for the ubiquitous `(ε/2, δ/2)` split.
    pub fn halve(&self) -> Self {
        PrivacyParams {
            epsilon: self.epsilon / 2.0,
            delta: self.delta / 2.0,
        }
    }

    /// Multiplies both parameters by `factor > 0` (used for group privacy:
    /// a mechanism run on data where one individual influences `g` records is
    /// `(gε, g e^{gε} δ)`-DP; the paper's Lemma 4.11 uses the looser
    /// `(gε, gδ)` bookkeeping for its `O(log^c n)` factor, which we follow).
    pub fn scale(&self, factor: f64) -> Result<Self> {
        if !factor.is_finite() || factor <= 0.0 {
            return Err(NoiseError::InvalidParameter {
                name: "factor",
                value: factor,
                constraint: "0 < factor < ∞",
            });
        }
        PrivacyParams::new(self.epsilon * factor, (self.delta * factor).min(0.999_999))
    }
}

/// Composition rules over sequences of `(ε, δ)` guarantees.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Composition {
    /// Basic (sequential) composition: parameters add up.
    Basic,
    /// Parallel composition: mechanisms run on disjoint parts of the data;
    /// the guarantee is the maximum of the individual parameters.
    Parallel,
}

impl Composition {
    /// Composes a sequence of guarantees under this rule.
    pub fn compose(&self, parts: &[PrivacyParams]) -> Result<PrivacyParams> {
        if parts.is_empty() {
            return Err(NoiseError::InvalidParameter {
                name: "parts",
                value: 0.0,
                constraint: "at least one mechanism",
            });
        }
        let (eps, delta) = match self {
            Composition::Basic => parts
                .iter()
                .fold((0.0, 0.0), |(e, d), p| (e + p.epsilon(), d + p.delta())),
            Composition::Parallel => parts.iter().fold((0.0, 0.0), |(e, d), p| {
                (f64::max(e, p.epsilon()), f64::max(d, p.delta()))
            }),
        };
        PrivacyParams::new(eps, delta.min(0.999_999))
    }
}

/// The per-iteration ε used inside Algorithm 2 so that `k` adaptive iterations
/// compose (by advanced composition) to at most `(ε, δ)`:
/// `ε' = ε / (16 √(k · ln(1/δ)))`.
pub fn advanced_composition_per_step_epsilon(params: PrivacyParams, k: usize) -> f64 {
    let k = k.max(1) as f64;
    let log_term = if params.delta() > 0.0 {
        (1.0 / params.delta()).ln()
    } else {
        // δ = 0 degenerates to basic composition; fall back to ε/k.
        return params.epsilon() / k;
    };
    params.epsilon() / (16.0 * (k * log_term).sqrt())
}

/// Tracks how much of a global privacy budget has been spent, refusing
/// requests that would exceed it.  A small utility for building pipelines on
/// top of the release algorithms.
#[derive(Debug, Clone)]
pub struct BudgetAccountant {
    total: PrivacyParams,
    spent_epsilon: CompensatedSum,
    spent_delta: CompensatedSum,
    charges: Vec<(String, PrivacyParams)>,
}

impl BudgetAccountant {
    /// Creates an accountant for a global budget.
    pub fn new(total: PrivacyParams) -> Self {
        BudgetAccountant {
            total,
            spent_epsilon: CompensatedSum::new(),
            spent_delta: CompensatedSum::new(),
            charges: Vec::new(),
        }
    }

    /// The global budget.
    pub fn total(&self) -> PrivacyParams {
        self.total
    }

    /// Remaining budget under basic composition.
    pub fn remaining(&self) -> PrivacyParams {
        PrivacyParams {
            epsilon: (self.total.epsilon() - self.spent_epsilon.value()).max(0.0),
            delta: (self.total.delta() - self.spent_delta.value()).max(0.0),
        }
    }

    /// Charges a mechanism's cost against the budget; errors when the budget
    /// would be exceeded.
    ///
    /// Spend accumulates through a [`CompensatedSum`], and admission uses the
    /// relative-slack rule [`budget_fits`]: repeated tiny charges neither
    /// drift into refusing an affordable charge nor — the dangerous
    /// direction — drip past the total through an absolute tolerance on a
    /// zero-clamped remainder.
    pub fn charge(&mut self, label: impl Into<String>, cost: PrivacyParams) -> Result<()> {
        let fits_eps = budget_fits(
            self.total.epsilon(),
            self.spent_epsilon.value(),
            cost.epsilon(),
        );
        let fits_delta = budget_fits(self.total.delta(), self.spent_delta.value(), cost.delta());
        if !fits_eps || !fits_delta {
            let rem = self.remaining();
            return Err(NoiseError::BudgetExhausted {
                requested_epsilon: cost.epsilon(),
                remaining_epsilon: rem.epsilon(),
                requested_delta: cost.delta(),
                remaining_delta: rem.delta(),
            });
        }
        self.spent_epsilon.add(cost.epsilon());
        self.spent_delta.add(cost.delta());
        self.charges.push((label.into(), cost));
        Ok(())
    }

    /// The log of individual charges (label, cost), in order.
    pub fn charges(&self) -> &[(String, PrivacyParams)] {
        &self.charges
    }

    /// Total spent so far under basic composition.
    pub fn spent(&self) -> PrivacyParams {
        PrivacyParams {
            epsilon: self.spent_epsilon.value(),
            delta: self.spent_delta.value(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates() {
        assert!(PrivacyParams::new(1.0, 1e-6).is_ok());
        assert!(PrivacyParams::new(0.0, 0.0).is_err());
        assert!(PrivacyParams::new(-1.0, 0.0).is_err());
        assert!(PrivacyParams::new(1.0, 1.0).is_err());
        assert!(PrivacyParams::new(1.0, -0.1).is_err());
        assert!(PrivacyParams::new(f64::NAN, 0.0).is_err());
    }

    #[test]
    fn lambda_matches_formula() {
        let p = PrivacyParams::new(2.0, 1e-6).unwrap();
        let expect = (1.0 / 2.0) * (1e6f64).ln();
        assert!((p.lambda() - expect).abs() < 1e-9);
        assert!(PrivacyParams::pure(1.0).unwrap().lambda().is_infinite());
    }

    #[test]
    fn split_and_halve() {
        let p = PrivacyParams::new(1.0, 1e-4).unwrap();
        let h = p.halve();
        assert!((h.epsilon() - 0.5).abs() < 1e-12);
        assert!((h.delta() - 5e-5).abs() < 1e-18);
        let s = p.split(4).unwrap();
        assert!((s.epsilon() - 0.25).abs() < 1e-12);
        assert!(p.split(0).is_err());
    }

    #[test]
    fn basic_and_parallel_composition() {
        let a = PrivacyParams::new(0.5, 1e-6).unwrap();
        let b = PrivacyParams::new(0.25, 2e-6).unwrap();
        let basic = Composition::Basic.compose(&[a, b]).unwrap();
        assert!((basic.epsilon() - 0.75).abs() < 1e-12);
        assert!((basic.delta() - 3e-6).abs() < 1e-15);
        let par = Composition::Parallel.compose(&[a, b]).unwrap();
        assert!((par.epsilon() - 0.5).abs() < 1e-12);
        assert!((par.delta() - 2e-6).abs() < 1e-15);
        assert!(Composition::Basic.compose(&[]).is_err());
    }

    #[test]
    fn advanced_composition_epsilon_shrinks_with_k() {
        let p = PrivacyParams::new(1.0, 1e-6).unwrap();
        let e1 = advanced_composition_per_step_epsilon(p, 1);
        let e100 = advanced_composition_per_step_epsilon(p, 100);
        assert!(e100 < e1);
        // Matches the formula from Algorithm 2 line 3.
        let expect = 1.0 / (16.0 * (100.0 * (1e6f64).ln()).sqrt());
        assert!((e100 - expect).abs() < 1e-12);
        // Pure DP falls back to basic composition.
        let pure = PrivacyParams::pure(1.0).unwrap();
        assert!((advanced_composition_per_step_epsilon(pure, 10) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn accountant_charges_and_refuses_overdraw() {
        let total = PrivacyParams::new(1.0, 1e-6).unwrap();
        let mut acc = BudgetAccountant::new(total);
        acc.charge("first", PrivacyParams::new(0.6, 5e-7).unwrap())
            .unwrap();
        assert!((acc.remaining().epsilon() - 0.4).abs() < 1e-12);
        let err = acc
            .charge("second", PrivacyParams::new(0.5, 0.0).unwrap())
            .unwrap_err();
        assert!(matches!(err, NoiseError::BudgetExhausted { .. }));
        acc.charge("third", PrivacyParams::new(0.4, 5e-7).unwrap())
            .unwrap();
        assert_eq!(acc.charges().len(), 2);
        assert!((acc.spent().epsilon() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn thousand_small_charges_neither_drift_nor_overdraw() {
        // Regression for the f64-drift bug: naive `+=` accumulation plus an
        // absolute tolerance mis-compares repeated small charges against the
        // total.  ε/1000 charged a thousand times must exactly exhaust the
        // budget: every charge admitted, and nothing meaningful left over.
        let total = PrivacyParams::new(1.0, 1e-6).unwrap();
        let slice = total.split(1000).unwrap();
        let mut acc = BudgetAccountant::new(total);
        for i in 0..1000 {
            acc.charge(format!("c{i}"), slice)
                .unwrap_or_else(|e| panic!("charge {i} must fit: {e}"));
        }
        // Spend is compensated: within one relative slack of the total,
        // never beyond it.
        assert!(acc.spent().epsilon() <= 1.0 * (1.0 + BUDGET_REL_SLACK));
        assert!((acc.spent().epsilon() - 1.0).abs() < 1e-12);
        // The budget is exhausted: even a charge far below the old absolute
        // tolerance must now be refused.
        let drip = PrivacyParams::pure(1e-10).unwrap();
        assert!(matches!(
            acc.charge("drip", drip).unwrap_err(),
            NoiseError::BudgetExhausted { .. }
        ));
    }

    #[test]
    fn tiny_budgets_cannot_be_dripped_past_with_sub_tolerance_charges() {
        // The old comparison admitted any charge ≤ remaining + 1e-9 with the
        // remainder clamped at zero — an unbounded leak for budgets near or
        // below the tolerance.  The relative-slack rule refuses the second
        // charge here.
        let total = PrivacyParams::new(1e-9, 0.0).unwrap();
        let mut acc = BudgetAccountant::new(total);
        let cost = PrivacyParams::pure(6e-10).unwrap();
        acc.charge("first", cost).unwrap();
        assert!(matches!(
            acc.charge("second", cost).unwrap_err(),
            NoiseError::BudgetExhausted { .. }
        ));
        assert!(acc.spent().epsilon() <= total.epsilon() * (1.0 + BUDGET_REL_SLACK));
    }

    #[test]
    fn compensated_sum_is_exact_on_adversarial_sequences() {
        let mut s = CompensatedSum::new();
        // 1 + 1e-16 repeated: naive summation loses every small term.
        s.add(1.0);
        for _ in 0..1000 {
            s.add(1e-16);
        }
        assert!((s.value() - (1.0 + 1000.0 * 1e-16)).abs() < 1e-18);
    }

    #[test]
    fn split_and_scale_reject_degenerate_inputs() {
        let p = PrivacyParams::new(1.0, 1e-6).unwrap();
        // Zero parts and zero/negative/non-finite factors must all be Err,
        // never NaN or a panic.
        assert!(p.split(0).is_err());
        assert!(p.scale(0.0).is_err());
        assert!(p.scale(-3.0).is_err());
        assert!(p.scale(f64::NAN).is_err());
        assert!(p.scale(f64::INFINITY).is_err());
        assert!(p.scale(f64::NEG_INFINITY).is_err());
        // Overflow to ε = ∞ surfaces as Err from the constructor.
        assert!(PrivacyParams::new(2.0, 1e-6)
            .unwrap()
            .scale(f64::MAX)
            .is_err());
        // Splitting a subnormal budget to underflow (ε = 0) is Err, not a
        // silently-free mechanism.
        let tiny = PrivacyParams::new(f64::MIN_POSITIVE, 0.0).unwrap();
        assert!(tiny.split(usize::MAX).is_err());
        // Ordinary huge splits stay valid.
        let s = p.split(1_000_000_000).unwrap();
        assert!(s.epsilon() > 0.0);
    }

    #[test]
    fn scale_models_group_privacy() {
        let p = PrivacyParams::new(0.1, 1e-8).unwrap();
        let g = p.scale(8.0).unwrap();
        assert!((g.epsilon() - 0.8).abs() < 1e-12);
        assert!((g.delta() - 8e-8).abs() < 1e-18);
        assert!(p.scale(0.0).is_err());
    }
}
