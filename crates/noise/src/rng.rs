//! Deterministic RNG plumbing.
//!
//! Every randomized component in the workspace takes `&mut impl Rng`; this
//! module centralises the choice of the concrete seeded generator so that
//! experiments, tests and examples are reproducible.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Returns a seeded [`StdRng`].  Two calls with the same seed produce
/// identical streams.
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Derives a child seed from a parent seed and a stream label, so that
/// independent components of an experiment can draw from decorrelated streams
/// while remaining reproducible.  Uses the SplitMix64 finalizer.
pub fn derive_seed(parent: u64, stream: u64) -> u64 {
    let mut z = parent.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(stream.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = seeded_rng(42);
        let mut b = seeded_rng(42);
        for _ in 0..16 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = seeded_rng(1);
        let mut b = seeded_rng(2);
        let va: Vec<u64> = (0..8).map(|_| a.random()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.random()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn derived_seeds_are_distinct_and_deterministic() {
        let s1 = derive_seed(7, 0);
        let s2 = derive_seed(7, 1);
        assert_ne!(s1, s2);
        assert_eq!(derive_seed(7, 0), s1);
    }
}
