//! Per-relation weight functions `q_i : D_i → [-1, 1]`.

use std::collections::{BTreeMap, BTreeSet};

use dpsyn_relational::Value;

use crate::error::QueryError;
use crate::Result;

/// A weight function on one relation's tuple domain, with values in `[-1, 1]`.
#[derive(Debug, Clone, PartialEq)]
pub enum RelationQuery {
    /// The all-ones function — the per-relation component of the counting
    /// join-size query.
    AllOne,
    /// Explicit weights for listed tuples; every other tuple gets `default`.
    Sparse {
        /// Per-tuple weights (keyed by the relation's tuple).
        weights: BTreeMap<Vec<Value>, f64>,
        /// Weight of tuples not listed in `weights`.
        default: f64,
    },
    /// Indicator of a per-attribute predicate: weight 1 when, for every
    /// constrained position, the tuple's value is in the allowed set;
    /// otherwise 0.  `None` means the position is unconstrained.
    Predicate {
        /// One optional allowed-set per attribute position of the relation.
        allowed: Vec<Option<BTreeSet<Value>>>,
    },
    /// A pseudo-random ±1 weight determined by hashing the tuple with `seed`.
    /// This represents a "random sign" query without materialising a weight
    /// per domain element, which is how the experiments build large random
    /// query families over big domains.
    SignHash {
        /// Seed controlling the sign pattern.
        seed: u64,
    },
}

impl RelationQuery {
    /// Builds a sparse query after validating that every weight (and the
    /// default) lies in `[-1, 1]`.
    pub fn sparse(weights: BTreeMap<Vec<Value>, f64>, default: f64) -> Result<Self> {
        for &w in weights.values().chain(std::iter::once(&default)) {
            if !(-1.0..=1.0).contains(&w) || !w.is_finite() {
                return Err(QueryError::WeightOutOfRange { weight: w });
            }
        }
        Ok(RelationQuery::Sparse { weights, default })
    }

    /// Evaluates the weight of a tuple.
    pub fn eval(&self, tuple: &[Value]) -> f64 {
        match self {
            RelationQuery::AllOne => 1.0,
            RelationQuery::Sparse { weights, default } => {
                weights.get(tuple).copied().unwrap_or(*default)
            }
            RelationQuery::Predicate { allowed } => {
                let ok = allowed
                    .iter()
                    .zip(tuple)
                    .all(|(constraint, v)| constraint.as_ref().is_none_or(|set| set.contains(v)));
                if ok {
                    1.0
                } else {
                    0.0
                }
            }
            RelationQuery::SignHash { seed } => {
                if hash_tuple(*seed, tuple) & 1 == 0 {
                    1.0
                } else {
                    -1.0
                }
            }
        }
    }
}

/// A small, fast, deterministic tuple hash (FNV-1a over the seed and values).
/// Not cryptographic — it only needs to look "random enough" for workloads.
fn hash_tuple(seed: u64, tuple: &[Value]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x1000_0000_01b3;
    let mut h = OFFSET ^ seed.wrapping_mul(PRIME);
    for &v in tuple {
        for byte in v.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(PRIME);
        }
    }
    // Final avalanche so that low bits are well mixed.
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_one_is_constant() {
        let q = RelationQuery::AllOne;
        assert_eq!(q.eval(&[1, 2, 3]), 1.0);
        assert_eq!(q.eval(&[]), 1.0);
    }

    #[test]
    fn sparse_uses_default_for_missing() {
        let mut w = BTreeMap::new();
        w.insert(vec![1, 2], 0.5);
        w.insert(vec![3, 4], -1.0);
        let q = RelationQuery::sparse(w, 0.25).unwrap();
        assert_eq!(q.eval(&[1, 2]), 0.5);
        assert_eq!(q.eval(&[3, 4]), -1.0);
        assert_eq!(q.eval(&[9, 9]), 0.25);
    }

    #[test]
    fn sparse_rejects_out_of_range_weights() {
        let mut w = BTreeMap::new();
        w.insert(vec![0], 2.0);
        assert!(RelationQuery::sparse(w, 0.0).is_err());
        assert!(RelationQuery::sparse(BTreeMap::new(), 1.5).is_err());
        let mut w = BTreeMap::new();
        w.insert(vec![0], f64::NAN);
        assert!(RelationQuery::sparse(w, 0.0).is_err());
    }

    #[test]
    fn predicate_checks_each_position() {
        let q = RelationQuery::Predicate {
            allowed: vec![
                Some([1u64, 2].into_iter().collect()),
                None,
                Some([7u64].into_iter().collect()),
            ],
        };
        assert_eq!(q.eval(&[1, 99, 7]), 1.0);
        assert_eq!(q.eval(&[2, 0, 7]), 1.0);
        assert_eq!(q.eval(&[3, 0, 7]), 0.0);
        assert_eq!(q.eval(&[1, 0, 8]), 0.0);
    }

    #[test]
    fn sign_hash_is_deterministic_and_balanced() {
        let q = RelationQuery::SignHash { seed: 42 };
        let a = q.eval(&[1, 2]);
        assert_eq!(a, q.eval(&[1, 2]));
        assert!(a == 1.0 || a == -1.0);
        // Roughly balanced over many tuples.
        let mut plus = 0usize;
        let total = 10_000usize;
        for v in 0..total as u64 {
            if q.eval(&[v, v + 1]) > 0.0 {
                plus += 1;
            }
        }
        let frac = plus as f64 / total as f64;
        assert!((frac - 0.5).abs() < 0.05, "frac = {frac}");
    }

    #[test]
    fn different_seeds_give_different_sign_patterns() {
        let q1 = RelationQuery::SignHash { seed: 1 };
        let q2 = RelationQuery::SignHash { seed: 2 };
        let disagreements = (0..1000u64)
            .filter(|&v| q1.eval(&[v]) != q2.eval(&[v]))
            .count();
        assert!(disagreements > 300, "disagreements = {disagreements}");
    }

    #[test]
    fn all_values_stay_in_range() {
        let queries = vec![
            RelationQuery::AllOne,
            RelationQuery::SignHash { seed: 7 },
            RelationQuery::Predicate {
                allowed: vec![None, Some([3u64].into_iter().collect())],
            },
        ];
        for q in queries {
            for v in 0..100u64 {
                let x = q.eval(&[v, v % 5]);
                assert!((-1.0..=1.0).contains(&x));
            }
        }
    }
}
