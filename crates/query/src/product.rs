//! Product queries `q = (q_1, …, q_m)` and joint-domain evaluation.

use dpsyn_relational::tuple::{project_positions, project_with_positions};
use dpsyn_relational::{AttrId, JoinQuery, Value};

use crate::error::QueryError;
use crate::linear::RelationQuery;
use crate::Result;

/// A linear query over a multi-table join: one weight function per relation.
#[derive(Debug, Clone, PartialEq)]
pub struct ProductQuery {
    components: Vec<RelationQuery>,
}

impl ProductQuery {
    /// Creates a product query from per-relation components.
    pub fn new(components: Vec<RelationQuery>) -> Self {
        ProductQuery { components }
    }

    /// The counting join-size query `count(·)`: every component is all-ones.
    pub fn counting(m: usize) -> Self {
        ProductQuery {
            components: vec![RelationQuery::AllOne; m],
        }
    }

    /// Number of per-relation components.
    pub fn arity(&self) -> usize {
        self.components.len()
    }

    /// The component for relation `i`.
    pub fn component(&self, i: usize) -> &RelationQuery {
        &self.components[i]
    }

    /// All components.
    pub fn components(&self) -> &[RelationQuery] {
        &self.components
    }

    /// Validates the query against a join query (component count must match).
    pub fn validate(&self, query: &JoinQuery) -> Result<()> {
        if self.components.len() != query.num_relations() {
            return Err(QueryError::ComponentCountMismatch {
                expected: query.num_relations(),
                got: self.components.len(),
            });
        }
        Ok(())
    }

    /// Evaluates the per-tuple weight `Π_i q_i(t_i)` given one tuple per
    /// relation.
    pub fn eval_per_relation(&self, tuples: &[&[Value]]) -> f64 {
        self.components
            .iter()
            .zip(tuples)
            .map(|(q, t)| q.eval(t))
            .product()
    }
}

/// Pre-computed projection plan for evaluating product queries on tuples over
/// an arbitrary attribute list (typically the full `dom(x)` of the join, or
/// the attribute list of a sub-join).
///
/// The weight of a joint tuple `x` is `Π_i q_i(π_{x_i} x)`.
#[derive(Debug, Clone)]
pub struct JointEvaluator {
    /// For each relation, the positions of its attributes inside the joint
    /// attribute list.
    positions: Vec<Vec<usize>>,
}

impl JointEvaluator {
    /// Builds an evaluator for tuples over `joint_attrs` (sorted), for the
    /// given join query.  Every relation's attributes must be contained in
    /// `joint_attrs`.
    pub fn new(query: &JoinQuery, joint_attrs: &[AttrId]) -> Result<Self> {
        let mut positions = Vec::with_capacity(query.num_relations());
        for i in 0..query.num_relations() {
            positions.push(project_positions(joint_attrs, query.relation_attrs(i))?);
        }
        Ok(JointEvaluator { positions })
    }

    /// Builds an evaluator over the full attribute set `dom(x)` of the query.
    pub fn full_domain(query: &JoinQuery) -> Result<Self> {
        Self::new(query, &query.all_attrs())
    }

    /// Evaluates `Π_i q_i(π_{x_i} x)` for a joint tuple `x`.
    pub fn weight(&self, q: &ProductQuery, joint_tuple: &[Value]) -> f64 {
        let mut w = 1.0;
        for (i, pos) in self.positions.iter().enumerate() {
            let projected = project_with_positions(joint_tuple, pos);
            w *= q.component(i).eval(&projected);
            if w == 0.0 {
                return 0.0;
            }
        }
        w
    }

    /// Number of relations this evaluator covers.
    pub fn num_relations(&self) -> usize {
        self.positions.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn two_table() -> JoinQuery {
        JoinQuery::two_table(8, 8, 8)
    }

    #[test]
    fn counting_query_weights_everything_one() {
        let q = ProductQuery::counting(2);
        assert_eq!(q.arity(), 2);
        assert_eq!(q.eval_per_relation(&[&[1, 2], &[2, 3]]), 1.0);
    }

    #[test]
    fn validation_checks_component_count() {
        let jq = two_table();
        assert!(ProductQuery::counting(2).validate(&jq).is_ok());
        assert!(matches!(
            ProductQuery::counting(3).validate(&jq),
            Err(QueryError::ComponentCountMismatch {
                expected: 2,
                got: 3
            })
        ));
    }

    #[test]
    fn per_relation_product_multiplies_weights() {
        let mut w1 = BTreeMap::new();
        w1.insert(vec![0u64, 0u64], 0.5);
        let q = ProductQuery::new(vec![
            RelationQuery::sparse(w1, 0.0).unwrap(),
            RelationQuery::AllOne,
        ]);
        assert_eq!(q.eval_per_relation(&[&[0, 0], &[0, 5]]), 0.5);
        assert_eq!(q.eval_per_relation(&[&[1, 0], &[0, 5]]), 0.0);
    }

    #[test]
    fn joint_evaluator_projects_correctly() {
        let jq = two_table();
        let eval = JointEvaluator::full_domain(&jq).unwrap();
        assert_eq!(eval.num_relations(), 2);
        // Query: weight 0.5 on R1 tuple (A=1, B=2), all-ones on R2.
        let mut w1 = BTreeMap::new();
        w1.insert(vec![1u64, 2u64], 0.5);
        let q = ProductQuery::new(vec![
            RelationQuery::sparse(w1, 0.0).unwrap(),
            RelationQuery::AllOne,
        ]);
        // Joint tuple (A=1, B=2, C=7) projects to R1 tuple (1,2) and R2 tuple (2,7).
        assert_eq!(eval.weight(&q, &[1, 2, 7]), 0.5);
        assert_eq!(eval.weight(&q, &[0, 2, 7]), 0.0);
    }

    #[test]
    fn joint_evaluator_counting_weight_is_one() {
        let jq = JoinQuery::star(3, 4).unwrap();
        let eval = JointEvaluator::full_domain(&jq).unwrap();
        let q = ProductQuery::counting(3);
        assert_eq!(eval.weight(&q, &[0, 1, 2, 3]), 1.0);
    }

    #[test]
    fn sign_product_weights_stay_in_range() {
        let jq = two_table();
        let eval = JointEvaluator::full_domain(&jq).unwrap();
        let q = ProductQuery::new(vec![
            RelationQuery::SignHash { seed: 1 },
            RelationQuery::SignHash { seed: 2 },
        ]);
        for a in 0..4u64 {
            for b in 0..4u64 {
                for c in 0..4u64 {
                    let w = eval.weight(&q, &[a, b, c]);
                    assert!(w == 1.0 || w == -1.0);
                }
            }
        }
    }

    #[test]
    fn evaluator_on_subjoin_attribute_list() {
        // Evaluating on a sub-join over R1's attributes only requires that the
        // joint attrs contain each relation's attrs — otherwise it errors.
        let jq = two_table();
        assert!(JointEvaluator::new(&jq, &[AttrId(0), AttrId(1)]).is_err());
        assert!(JointEvaluator::new(&jq, &[AttrId(0), AttrId(1), AttrId(2)]).is_ok());
    }
}
