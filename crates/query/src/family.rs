//! Query families (workloads) `Q`.
//!
//! The paper's guarantees are stated for a family `Q = ×_i Q_i` of product
//! queries; the error bounds depend on `|Q|` only logarithmically (through
//! `f_upper`), which is why synthetic-data release beats per-query noise when
//! `|Q|` is large.  This module provides the workload constructors used by the
//! examples and experiments:
//!
//! * the single counting query,
//! * random-sign product workloads (the hard-instance style of Theorem 1.4's
//!   lower bound constructions),
//! * random predicate (marginal-style) workloads over attribute values,
//! * explicit cross products of per-relation families.

use rand::Rng;
use std::collections::BTreeSet;

use dpsyn_relational::{JoinQuery, Value};

use crate::error::QueryError;
use crate::linear::RelationQuery;
use crate::product::ProductQuery;
use crate::Result;

/// A finite family of product queries over a fixed join query.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryFamily {
    queries: Vec<ProductQuery>,
}

impl QueryFamily {
    /// Wraps an explicit list of queries, validating each against the join
    /// query.
    pub fn new(query: &JoinQuery, queries: Vec<ProductQuery>) -> Result<Self> {
        if queries.is_empty() {
            return Err(QueryError::InvalidWorkload(
                "a query family must contain at least one query".to_string(),
            ));
        }
        for q in &queries {
            q.validate(query)?;
        }
        Ok(QueryFamily { queries })
    }

    /// The family containing only the counting join-size query.
    pub fn counting(query: &JoinQuery) -> Self {
        QueryFamily {
            queries: vec![ProductQuery::counting(query.num_relations())],
        }
    }

    /// A workload of `count` random-sign product queries: each component of
    /// each query assigns an independent pseudo-random ±1 weight to every
    /// tuple of its relation.  The counting query is always included as the
    /// first entry so that join-size information is represented.
    pub fn random_sign<R: Rng>(query: &JoinQuery, count: usize, rng: &mut R) -> Result<Self> {
        if count == 0 {
            return Err(QueryError::InvalidWorkload(
                "requested an empty random-sign workload".to_string(),
            ));
        }
        let m = query.num_relations();
        let mut queries = Vec::with_capacity(count);
        queries.push(ProductQuery::counting(m));
        while queries.len() < count {
            let components = (0..m)
                .map(|_| RelationQuery::SignHash {
                    seed: rng.random::<u64>(),
                })
                .collect();
            queries.push(ProductQuery::new(components));
        }
        Ok(QueryFamily { queries })
    }

    /// A workload of `count` random predicate queries: each component selects,
    /// for each attribute of its relation independently, either no constraint
    /// (probability `1 - constrain_prob`) or a random subset containing about
    /// half of the attribute's domain.  These model marginal / range-style
    /// analytics over the join.
    pub fn random_predicate<R: Rng>(
        query: &JoinQuery,
        count: usize,
        constrain_prob: f64,
        rng: &mut R,
    ) -> Result<Self> {
        if count == 0 {
            return Err(QueryError::InvalidWorkload(
                "requested an empty predicate workload".to_string(),
            ));
        }
        if !(0.0..=1.0).contains(&constrain_prob) {
            return Err(QueryError::InvalidWorkload(format!(
                "constrain_prob must be in [0, 1], got {constrain_prob}"
            )));
        }
        let m = query.num_relations();
        let mut queries = Vec::with_capacity(count);
        queries.push(ProductQuery::counting(m));
        while queries.len() < count {
            let mut components = Vec::with_capacity(m);
            for i in 0..m {
                let attrs = query.relation_attrs(i);
                let mut allowed = Vec::with_capacity(attrs.len());
                for &attr in attrs {
                    if rng.random::<f64>() < constrain_prob {
                        let domain = query.schema().domain_size(attr).map_err(QueryError::from)?;
                        let mut set: BTreeSet<Value> = BTreeSet::new();
                        for v in 0..domain {
                            if rng.random::<bool>() {
                                set.insert(v);
                            }
                        }
                        if set.is_empty() {
                            set.insert(rng.random_range(0..domain.max(1)));
                        }
                        allowed.push(Some(set));
                    } else {
                        allowed.push(None);
                    }
                }
                components.push(RelationQuery::Predicate { allowed });
            }
            queries.push(ProductQuery::new(components));
        }
        Ok(QueryFamily { queries })
    }

    /// The cross product `Q = ×_i Q_i` of per-relation families (the paper's
    /// formulation).  The size of the result is `Π_i |Q_i|`.
    pub fn cross_product(query: &JoinQuery, per_relation: Vec<Vec<RelationQuery>>) -> Result<Self> {
        if per_relation.len() != query.num_relations() {
            return Err(QueryError::ComponentCountMismatch {
                expected: query.num_relations(),
                got: per_relation.len(),
            });
        }
        if per_relation.iter().any(|f| f.is_empty()) {
            return Err(QueryError::InvalidWorkload(
                "every per-relation family must be non-empty".to_string(),
            ));
        }
        let mut queries: Vec<Vec<RelationQuery>> = vec![Vec::new()];
        for family in &per_relation {
            let mut next = Vec::with_capacity(queries.len() * family.len());
            for prefix in &queries {
                for component in family {
                    let mut q = prefix.clone();
                    q.push(component.clone());
                    next.push(q);
                }
            }
            queries = next;
        }
        Ok(QueryFamily {
            queries: queries.into_iter().map(ProductQuery::new).collect(),
        })
    }

    /// Number of queries `|Q|`.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// Whether the family is empty (never true for a constructed family).
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// The queries.
    pub fn queries(&self) -> &[ProductQuery] {
        &self.queries
    }

    /// The `i`-th query.
    pub fn query(&self, i: usize) -> &ProductQuery {
        &self.queries[i]
    }

    /// Iterates over the queries.
    pub fn iter(&self) -> impl Iterator<Item = &ProductQuery> {
        self.queries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(11)
    }

    #[test]
    fn counting_family_has_one_query() {
        let q = JoinQuery::two_table(4, 4, 4);
        let f = QueryFamily::counting(&q);
        assert_eq!(f.len(), 1);
        assert_eq!(f.query(0).components()[0], RelationQuery::AllOne);
    }

    #[test]
    fn random_sign_workload_has_requested_size() {
        let q = JoinQuery::two_table(4, 4, 4);
        let f = QueryFamily::random_sign(&q, 16, &mut rng()).unwrap();
        assert_eq!(f.len(), 16);
        // First query is the counting query.
        assert_eq!(f.query(0).components()[0], RelationQuery::AllOne);
        // Others are sign queries.
        assert!(matches!(
            f.query(1).components()[0],
            RelationQuery::SignHash { .. }
        ));
        assert!(QueryFamily::random_sign(&q, 0, &mut rng()).is_err());
    }

    #[test]
    fn random_sign_is_reproducible_from_seed() {
        let q = JoinQuery::two_table(4, 4, 4);
        let f1 = QueryFamily::random_sign(&q, 8, &mut rng()).unwrap();
        let f2 = QueryFamily::random_sign(&q, 8, &mut rng()).unwrap();
        assert_eq!(f1, f2);
    }

    #[test]
    fn predicate_workload_respects_probability_bounds() {
        let q = JoinQuery::star(3, 8).unwrap();
        let f = QueryFamily::random_predicate(&q, 10, 0.7, &mut rng()).unwrap();
        assert_eq!(f.len(), 10);
        assert!(QueryFamily::random_predicate(&q, 10, 1.5, &mut rng()).is_err());
        assert!(QueryFamily::random_predicate(&q, 0, 0.5, &mut rng()).is_err());
    }

    #[test]
    fn cross_product_size_multiplies() {
        let q = JoinQuery::two_table(4, 4, 4);
        let f = QueryFamily::cross_product(
            &q,
            vec![
                vec![RelationQuery::AllOne, RelationQuery::SignHash { seed: 1 }],
                vec![
                    RelationQuery::AllOne,
                    RelationQuery::SignHash { seed: 2 },
                    RelationQuery::SignHash { seed: 3 },
                ],
            ],
        )
        .unwrap();
        assert_eq!(f.len(), 6);
        // Wrong number of per-relation families is rejected.
        assert!(QueryFamily::cross_product(&q, vec![vec![RelationQuery::AllOne]]).is_err());
        // Empty per-relation family is rejected.
        assert!(QueryFamily::cross_product(&q, vec![vec![], vec![RelationQuery::AllOne]]).is_err());
    }

    #[test]
    fn explicit_family_validates_queries() {
        let q = JoinQuery::two_table(4, 4, 4);
        assert!(QueryFamily::new(&q, vec![ProductQuery::counting(2)]).is_ok());
        assert!(QueryFamily::new(&q, vec![ProductQuery::counting(3)]).is_err());
        assert!(QueryFamily::new(&q, vec![]).is_err());
    }
}
