//! Linear queries over multi-table joins (Section 1.1 of the paper).
//!
//! A query `q = (q_1, …, q_m)` assigns a per-relation weight function
//! `q_i : D_i → [-1, 1]`; its answer on an instance `I` is
//!
//! ```text
//! q(I) = Σ_{t⃗ = (t_1,…,t_m)} ρ(t⃗) · Π_i q_i(t_i) · R_i(t_i)
//!      = Σ_{x ∈ dom(x)} Join_I(x) · Π_i q_i(π_{x_i} x)
//! ```
//!
//! and its answer on a released synthetic function `F : dom(x) → ℝ≥0` replaces
//! `Join_I` with `F`.  The counting join-size query is the special case where
//! every `q_i` is the all-ones function.
//!
//! The crate provides:
//!
//! * per-relation weight functions ([`linear`]),
//! * product queries and joint-domain evaluators ([`product`]),
//! * query families / workloads, including the random-sign and predicate
//!   workloads used by the experiments ([`family`]),
//! * evaluation over instances, join results and answer vectors, and the
//!   ℓ∞ error metric ([`answer`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod answer;
pub mod error;
pub mod family;
pub mod linear;
pub mod product;

pub use answer::{answer_on_instance, answer_on_join, linf_error, AnswerOps, AnswerSet};
pub use error::QueryError;
pub use family::QueryFamily;
pub use linear::RelationQuery;
pub use product::{JointEvaluator, ProductQuery};

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, QueryError>;

/// Alias re-exported for downstream convenience: a linear query in this
/// library is always a [`ProductQuery`].
pub type LinearQuery = ProductQuery;
