//! Error type for query construction and evaluation.

use std::fmt;

use dpsyn_relational::RelationalError;

/// Errors raised while constructing or evaluating linear queries.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryError {
    /// An underlying relational operation failed.
    Relational(RelationalError),
    /// A query has the wrong number of per-relation components.
    ComponentCountMismatch {
        /// Components expected (the query's `m`).
        expected: usize,
        /// Components supplied.
        got: usize,
    },
    /// A weight lies outside `[-1, 1]`.
    WeightOutOfRange {
        /// The offending weight.
        weight: f64,
    },
    /// A workload parameter is invalid (e.g. zero queries requested).
    InvalidWorkload(String),
    /// Answer vectors of different lengths were compared.
    AnswerLengthMismatch {
        /// Length of the first vector.
        left: usize,
        /// Length of the second vector.
        right: usize,
    },
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Relational(e) => write!(f, "relational error: {e}"),
            QueryError::ComponentCountMismatch { expected, got } => write!(
                f,
                "query has {got} per-relation components but the join query has {expected} relations"
            ),
            QueryError::WeightOutOfRange { weight } => {
                write!(f, "linear query weight {weight} is outside [-1, 1]")
            }
            QueryError::InvalidWorkload(msg) => write!(f, "invalid workload: {msg}"),
            QueryError::AnswerLengthMismatch { left, right } => write!(
                f,
                "cannot compare answer vectors of different lengths ({left} vs {right})"
            ),
        }
    }
}

impl std::error::Error for QueryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            QueryError::Relational(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RelationalError> for QueryError {
    fn from(e: RelationalError) -> Self {
        QueryError::Relational(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e: QueryError = RelationalError::EmptyQuery.into();
        assert!(e.to_string().contains("relational"));
        assert!(std::error::Error::source(&e).is_some());
        let e = QueryError::WeightOutOfRange { weight: 2.0 };
        assert!(e.to_string().contains("[-1, 1]"));
        assert!(std::error::Error::source(&e).is_none());
    }
}
