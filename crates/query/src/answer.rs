//! Evaluating linear queries on instances and join results, and comparing
//! answer vectors.

use dpsyn_relational::{ExecContext, Instance, JoinQuery, JoinResult, Parallelism};

use crate::error::QueryError;
use crate::family::QueryFamily;
use crate::product::{JointEvaluator, ProductQuery};
use crate::Result;

/// Query answering evaluated through an [`ExecContext`]: the context
/// supplies the worker pool for per-query sweeps and — on a long-lived
/// context (`dpsyn::Session`) — a cached full join, so *repeated* workload
/// evaluations over the same instance join once and answer many times.
///
/// Determinism: the cached join is produced by the exact same size-ordered
/// fold as [`dpsyn_relational::join()`], and each query's accumulation stays
/// sequential in construction order, so every answer is bit-identical to the
/// free-function path at every worker count, warm or cold.
pub trait AnswerOps {
    /// Evaluates one query on an instance (joining through the context's
    /// cached full join).
    fn answer_on_instance(
        &self,
        query: &JoinQuery,
        instance: &Instance,
        q: &ProductQuery,
    ) -> Result<f64>;

    /// Answers every query of `family` on a pre-computed join result,
    /// sweeping the queries through the context's worker pool.
    fn answer_all_on_join(
        &self,
        query: &JoinQuery,
        join_result: &JoinResult,
        family: &QueryFamily,
    ) -> Result<AnswerSet>;

    /// Answers every query of `family` on an instance (joining through the
    /// context's cached full join).
    fn answer_all_on_instance(
        &self,
        query: &JoinQuery,
        instance: &Instance,
        family: &QueryFamily,
    ) -> Result<AnswerSet>;
}

impl AnswerOps for ExecContext {
    fn answer_on_instance(
        &self,
        query: &JoinQuery,
        instance: &Instance,
        q: &ProductQuery,
    ) -> Result<f64> {
        let j = self.shared_join(query, instance)?;
        answer_on_join(query, &j, q)
    }

    fn answer_all_on_join(
        &self,
        query: &JoinQuery,
        join_result: &JoinResult,
        family: &QueryFamily,
    ) -> Result<AnswerSet> {
        answer_all_on_join_impl(family, query, join_result, self.parallelism())
    }

    fn answer_all_on_instance(
        &self,
        query: &JoinQuery,
        instance: &Instance,
        family: &QueryFamily,
    ) -> Result<AnswerSet> {
        let j = self.shared_join(query, instance)?;
        answer_all_on_join_impl(family, query, &j, self.parallelism())
    }
}

/// Shared implementation of the family-on-join sweep (see
/// [`QueryFamily::answer_all_on_join`]).
fn answer_all_on_join_impl(
    family: &QueryFamily,
    query: &JoinQuery,
    join_result: &JoinResult,
    par: Parallelism,
) -> Result<AnswerSet> {
    let evaluator = JointEvaluator::new(query, join_result.attrs())?;
    // Validate up front (sequentially) so error reporting order is
    // independent of the worker count.
    let queries: Vec<&ProductQuery> = family.iter().collect();
    for q in &queries {
        q.validate(query)?;
    }
    let answers = dpsyn_relational::exec::par_map(par, queries.len(), |i| {
        let q = queries[i];
        let mut total = 0.0;
        for (tuple, weight) in join_result.iter_unordered() {
            total += weight as f64 * evaluator.weight(q, tuple);
        }
        total
    });
    Ok(AnswerSet::new(answers))
}

/// A vector of query answers, aligned with a [`QueryFamily`].
#[derive(Debug, Clone, PartialEq)]
pub struct AnswerSet {
    answers: Vec<f64>,
}

impl AnswerSet {
    /// Wraps a raw vector of answers.
    pub fn new(answers: Vec<f64>) -> Self {
        AnswerSet { answers }
    }

    /// Number of answers.
    pub fn len(&self) -> usize {
        self.answers.len()
    }

    /// Whether there are no answers.
    pub fn is_empty(&self) -> bool {
        self.answers.is_empty()
    }

    /// The `i`-th answer.
    pub fn get(&self, i: usize) -> f64 {
        self.answers[i]
    }

    /// The raw answers.
    pub fn values(&self) -> &[f64] {
        &self.answers
    }

    /// The ℓ∞ distance to another answer vector — the paper's error metric
    /// `α = max_q |q(I) − q(F)|`.
    pub fn linf_distance(&self, other: &AnswerSet) -> Result<f64> {
        linf_error(&self.answers, &other.answers)
    }

    /// The mean absolute difference to another answer vector (a secondary
    /// metric reported by the experiments).
    pub fn mean_abs_distance(&self, other: &AnswerSet) -> Result<f64> {
        if self.answers.len() != other.answers.len() {
            return Err(QueryError::AnswerLengthMismatch {
                left: self.answers.len(),
                right: other.answers.len(),
            });
        }
        if self.answers.is_empty() {
            return Ok(0.0);
        }
        Ok(self
            .answers
            .iter()
            .zip(&other.answers)
            .map(|(a, b)| (a - b).abs())
            .sum::<f64>()
            / self.answers.len() as f64)
    }
}

/// The ℓ∞ distance between two raw answer vectors.
pub fn linf_error(a: &[f64], b: &[f64]) -> Result<f64> {
    if a.len() != b.len() {
        return Err(QueryError::AnswerLengthMismatch {
            left: a.len(),
            right: b.len(),
        });
    }
    Ok(a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max))
}

/// Evaluates one query on a (pre-computed) join result:
/// `q(J) = Σ_x J(x) · Π_i q_i(π_{x_i} x)`.
pub fn answer_on_join(
    query: &JoinQuery,
    join_result: &JoinResult,
    q: &ProductQuery,
) -> Result<f64> {
    q.validate(query)?;
    let evaluator = JointEvaluator::new(query, join_result.attrs())?;
    let mut total = 0.0;
    // Construction order is deterministic and each tuple contributes exactly
    // once, so the sorted view (an O(n log n) emit) is unnecessary here.
    for (tuple, weight) in join_result.iter_unordered() {
        total += weight as f64 * evaluator.weight(q, tuple);
    }
    Ok(total)
}

/// Evaluates one query on an instance (computing the join internally).
pub fn answer_on_instance(query: &JoinQuery, instance: &Instance, q: &ProductQuery) -> Result<f64> {
    let j = dpsyn_relational::join(query, instance)?;
    answer_on_join(query, &j, q)
}

impl QueryFamily {
    /// Answers every query in the family on a pre-computed join result.
    pub fn answer_all_on_join(
        &self,
        query: &JoinQuery,
        join_result: &JoinResult,
    ) -> Result<AnswerSet> {
        answer_all_on_join_impl(self, query, join_result, Parallelism::default())
    }

    /// Answers every query in the family directly on an instance.
    pub fn answer_all_on_instance(
        &self,
        query: &JoinQuery,
        instance: &Instance,
    ) -> Result<AnswerSet> {
        let j = dpsyn_relational::join(query, instance)?;
        answer_all_on_join_impl(self, query, &j, Parallelism::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::RelationQuery;
    use dpsyn_relational::{AttrId, Relation};
    use std::collections::BTreeMap;

    fn ids(v: &[u16]) -> Vec<AttrId> {
        v.iter().map(|&x| AttrId(x)).collect()
    }

    fn two_table() -> (JoinQuery, Instance) {
        let q = JoinQuery::two_table(8, 8, 8);
        let r1 = Relation::from_tuples(
            ids(&[0, 1]),
            vec![(vec![0, 0], 1), (vec![1, 0], 2), (vec![2, 1], 1)],
        )
        .unwrap();
        let r2 = Relation::from_tuples(
            ids(&[1, 2]),
            vec![(vec![0, 0], 1), (vec![0, 1], 1), (vec![1, 3], 3)],
        )
        .unwrap();
        (q, Instance::new(vec![r1, r2]))
    }

    #[test]
    fn counting_query_equals_join_size() {
        let (q, inst) = two_table();
        let count = answer_on_instance(&q, &inst, &ProductQuery::counting(2)).unwrap();
        let join_size = dpsyn_relational::join_size(&q, &inst).unwrap() as f64;
        assert_eq!(count, join_size);
        assert_eq!(count, 9.0);
    }

    #[test]
    fn weighted_query_matches_manual_computation() {
        let (q, inst) = two_table();
        // Weight 1 only on R1 tuples with A = 1 (frequency 2, joins with B=0's
        // two R2 tuples → contributes 4); everything else weight 0.
        let mut w = BTreeMap::new();
        w.insert(vec![1u64, 0u64], 1.0);
        let pq = ProductQuery::new(vec![
            RelationQuery::sparse(w, 0.0).unwrap(),
            RelationQuery::AllOne,
        ]);
        let ans = answer_on_instance(&q, &inst, &pq).unwrap();
        assert_eq!(ans, 4.0);
    }

    #[test]
    fn linear_queries_are_linear_in_frequencies() {
        // Doubling a tuple's frequency doubles its contribution.
        let (q, inst) = two_table();
        let mut heavier = inst.clone();
        heavier.relation_mut(0).add(vec![1, 0], 2).unwrap(); // frequency 2 → 4
        let pq = ProductQuery::new(vec![
            RelationQuery::SignHash { seed: 5 },
            RelationQuery::SignHash { seed: 6 },
        ]);
        let base = answer_on_instance(&q, &inst, &pq).unwrap();
        let more = answer_on_instance(&q, &heavier, &pq).unwrap();
        // The (1,0) tuple's contribution is (more - base); adding the same
        // frequency again must add the same amount.
        let mut heaviest = heavier.clone();
        heaviest.relation_mut(0).add(vec![1, 0], 2).unwrap();
        let most = answer_on_instance(&q, &heaviest, &pq).unwrap();
        assert!(((most - more) - (more - base)).abs() < 1e-9);
    }

    #[test]
    fn answer_all_matches_individual_answers() {
        let (q, inst) = two_table();
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        use rand::SeedableRng;
        let family = QueryFamily::random_sign(&q, 12, &mut rng).unwrap();
        let all = family.answer_all_on_instance(&q, &inst).unwrap();
        assert_eq!(all.len(), 12);
        for (i, pq) in family.iter().enumerate() {
            let single = answer_on_instance(&q, &inst, pq).unwrap();
            assert!((single - all.get(i)).abs() < 1e-9);
        }
    }

    #[test]
    fn linf_error_and_answer_sets() {
        let a = AnswerSet::new(vec![1.0, 2.0, 3.0]);
        let b = AnswerSet::new(vec![1.5, 0.0, 3.0]);
        assert_eq!(a.linf_distance(&b).unwrap(), 2.0);
        assert!((a.mean_abs_distance(&b).unwrap() - (0.5 + 2.0 + 0.0) / 3.0).abs() < 1e-12);
        let c = AnswerSet::new(vec![1.0]);
        assert!(a.linf_distance(&c).is_err());
        assert_eq!(linf_error(&[], &[]).unwrap(), 0.0);
    }

    #[test]
    fn mismatched_query_rejected() {
        let (q, inst) = two_table();
        let bad = ProductQuery::counting(3);
        assert!(answer_on_instance(&q, &inst, &bad).is_err());
    }

    #[test]
    fn empty_instance_answers_zero() {
        let q = JoinQuery::two_table(4, 4, 4);
        let inst = Instance::empty_for(&q).unwrap();
        let ans = answer_on_instance(&q, &inst, &ProductQuery::counting(2)).unwrap();
        assert_eq!(ans, 0.0);
    }
}
