//! The maximum-degree upper bound on boundary queries for hierarchical joins
//! (Section 4.2.1, Lemma 4.8).
//!
//! For a hierarchical join, `T_E(I)` can be upper-bounded by a product of
//! maximum degrees, one per attribute of `⋃_{i∈E} x_i ∖ ∂E`:
//!
//! ```text
//! T_E(I) ≤ Π_{x ∈ Ô_E ∖ ∂E}  mdeg_{atom(x)}(ancestors(x))
//! ```
//!
//! (Figure 4's example: `T_{345} ≤ mdeg_5(A) · mdeg_{34}(AB) · mdeg_3(ABG) ·
//! mdeg_4(ABG)`.)  Unlike `T_E` itself, each factor is a per-attribute degree
//! that the partition procedure of Algorithm 7 can uniformize, which is what
//! makes the fine-grained hierarchical bounds of Theorem C.2 possible.

use dpsyn_relational::tuple::diff_attrs;
use dpsyn_relational::{max_degree, AttrId, AttributeTree, Instance, JoinQuery};

use crate::Result;

/// One maximum-degree factor `mdeg_{atom(x)}(ancestors(x))` in the Lemma 4.8
/// upper bound.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MdegTerm {
    /// The attribute `x` this factor corresponds to.
    pub attr: AttrId,
    /// `atom(x)` — the relations containing `x`.
    pub relations: Vec<usize>,
    /// The ancestors of `x` in the attribute tree (sorted).
    pub ancestors: Vec<AttrId>,
}

/// The maximum-degree terms participating in the upper bound of `T_E(I)`
/// (Lemma 4.8): one term per attribute of `Ô_E ∖ ∂E`.
pub fn lemma48_mdeg_terms(
    query: &JoinQuery,
    tree: &AttributeTree,
    e: &[usize],
) -> Result<Vec<MdegTerm>> {
    let union = query.union_attrs(e)?;
    let boundary = query.boundary(e)?;
    let inner = diff_attrs(&union, &boundary);
    Ok(inner
        .into_iter()
        .map(|attr| MdegTerm {
            attr,
            relations: query.atom(attr),
            ancestors: tree.ancestors(attr),
        })
        .collect())
}

/// Evaluates the Lemma 4.8 upper bound on `T_E(I)` as a product of maximum
/// degrees.  Returns 1 for `E = ∅` (matching `T_∅ = 1`) and 0 when any factor
/// is 0 (the sub-join is empty).
pub fn t_e_mdeg_upper_bound(
    query: &JoinQuery,
    tree: &AttributeTree,
    instance: &Instance,
    e: &[usize],
) -> Result<f64> {
    if e.is_empty() {
        return Ok(1.0);
    }
    let terms = lemma48_mdeg_terms(query, tree, e)?;
    let mut product = 1.0f64;
    for term in &terms {
        let d = max_degree(query, instance, &term.relations, &term.ancestors)?;
        product *= d as f64;
        if product == 0.0 {
            return Ok(0.0);
        }
    }
    Ok(product)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::boundary::boundary_query;
    use dpsyn_relational::{Relation, Schema};

    fn ids(v: &[u16]) -> Vec<AttrId> {
        v.iter().map(|&x| AttrId(x)).collect()
    }

    fn figure4_query() -> JoinQuery {
        let schema = Schema::uniform(&["A", "B", "C", "D", "F", "G", "K", "L"], 8);
        JoinQuery::new(
            schema,
            vec![
                ids(&[0, 1, 3]),    // x1 = {A,B,D}
                ids(&[0, 1, 4]),    // x2 = {A,B,F}
                ids(&[0, 1, 5, 6]), // x3 = {A,B,G,K}
                ids(&[0, 1, 5, 7]), // x4 = {A,B,G,L}
                ids(&[0, 2]),       // x5 = {A,C}
            ],
        )
        .unwrap()
    }

    #[test]
    fn figure4_terms_match_the_caption() {
        let q = figure4_query();
        let tree = AttributeTree::build(&q).unwrap();
        // E = {3, 4, 5} in the paper's 1-based numbering = {2, 3, 4} here.
        let e = vec![2usize, 3, 4];
        let terms = lemma48_mdeg_terms(&q, &tree, &e).unwrap();
        // ∂E = {A, B}; Ô_E ∖ ∂E = {C, G, K, L}.
        let attrs: Vec<AttrId> = terms.iter().map(|t| t.attr).collect();
        assert_eq!(attrs, ids(&[2, 5, 6, 7]));
        // C: atom = {4} (relation x5), ancestors = {A}.
        assert_eq!(terms[0].relations, vec![4]);
        assert_eq!(terms[0].ancestors, ids(&[0]));
        // G: atom = {2, 3}, ancestors = {A, B}.
        assert_eq!(terms[1].relations, vec![2, 3]);
        assert_eq!(terms[1].ancestors, ids(&[0, 1]));
        // K: atom = {2}, ancestors = {A, B, G}.
        assert_eq!(terms[2].relations, vec![2]);
        assert_eq!(terms[2].ancestors, ids(&[0, 1, 5]));
        // L: atom = {3}, ancestors = {A, B, G}.
        assert_eq!(terms[3].relations, vec![3]);
        assert_eq!(terms[3].ancestors, ids(&[0, 1, 5]));
    }

    fn small_figure4_instance(q: &JoinQuery) -> Instance {
        let mut inst = Instance::empty_for(q).unwrap();
        // A=0, B in {0,1}, assorted children.
        for b in 0..2u64 {
            for d in 0..3u64 {
                inst.relation_mut(0).add(vec![0, b, d], 1).unwrap();
            }
            for f in 0..2u64 {
                inst.relation_mut(1).add(vec![0, b, f], 1).unwrap();
            }
            for g in 0..2u64 {
                for k in 0..2u64 {
                    inst.relation_mut(2).add(vec![0, b, g, k], 1).unwrap();
                }
                inst.relation_mut(3).add(vec![0, b, g, 0], 1).unwrap();
            }
        }
        for c in 0..4u64 {
            inst.relation_mut(4).add(vec![0, c], 1).unwrap();
        }
        inst
    }

    #[test]
    fn mdeg_bound_dominates_true_boundary_query() {
        let q = figure4_query();
        let tree = AttributeTree::build(&q).unwrap();
        let inst = small_figure4_instance(&q);
        // Check every proper subset of relations.
        let m = q.num_relations();
        for mask in 1u32..((1u32 << m) - 1) {
            let e: Vec<usize> = (0..m).filter(|i| mask & (1 << i) != 0).collect();
            let exact = boundary_query(&q, &inst, &e).unwrap() as f64;
            let bound = t_e_mdeg_upper_bound(&q, &tree, &inst, &e).unwrap();
            assert!(
                bound >= exact - 1e-9,
                "E = {e:?}: bound {bound} < exact {exact}"
            );
        }
    }

    #[test]
    fn two_table_bound_is_the_shared_degree() {
        let q = JoinQuery::two_table(8, 8, 8);
        let tree = AttributeTree::build(&q).unwrap();
        let r1 = Relation::from_tuples(
            ids(&[0, 1]),
            vec![(vec![0, 0], 1), (vec![1, 0], 2), (vec![2, 1], 1)],
        )
        .unwrap();
        let r2 =
            Relation::from_tuples(ids(&[1, 2]), vec![(vec![0, 0], 1), (vec![0, 1], 1)]).unwrap();
        let inst = Instance::new(vec![r1, r2]);
        // T_{E={0}} bound: attributes of R1 minus boundary {B} = {A};
        // mdeg_{atom(A)={0}}(ancestors(A)={B}) = max degree of R1 on B = 3.
        let bound = t_e_mdeg_upper_bound(&q, &tree, &inst, &[0]).unwrap();
        assert_eq!(bound, 3.0);
        assert_eq!(boundary_query(&q, &inst, &[0]).unwrap(), 3);
    }

    #[test]
    fn empty_subset_and_empty_instance() {
        let q = figure4_query();
        let tree = AttributeTree::build(&q).unwrap();
        let inst = Instance::empty_for(&q).unwrap();
        assert_eq!(t_e_mdeg_upper_bound(&q, &tree, &inst, &[]).unwrap(), 1.0);
        assert_eq!(t_e_mdeg_upper_bound(&q, &tree, &inst, &[0]).unwrap(), 0.0);
    }
}
