//! Context-based sensitivity entry points: the [`SensitivityOps`] extension
//! trait on [`ExecContext`].
//!
//! These methods are the primary API of the crate (the plain free functions
//! build a throwaway context per call).  Running through a **long-lived**
//! context changes the cost model, not the results: every sub-join the
//! enumerations materialise decomposes along the context's cost-based join
//! plan ([`dpsyn_relational::plan`]) and is checked back into the context's
//! instance-fingerprinted lattice cache, so a second call over the same
//! `(query, instance)` pair — a residual sensitivity at a different `β`, a
//! local-sensitivity probe, a boundary query — reuses the `2^m` subset
//! lattice instead of recomputing it, and every lazy walk (local
//! sensitivity's transient joins, delta-plan builds, single boundary
//! queries) materialises the planner's smallest intermediates.
//!
//! ### Determinism
//!
//! Warm or cold, sequential or parallel, planner or fixed-prefix, the
//! returned values are identical: every cached sub-join equals what the
//! cold path computes (a sub-join is the same weighted tuple set under
//! every decomposition, and the plan is a pure function of the query and
//! instance statistics), the engine's worker pools steal work in morsels
//! whose results merge in morsel order (claiming order is invisible — see
//! `dpsyn_relational::exec`), and the aggregates consumed here (`max` over
//! groups, boundary maps in `BTreeMap` order) are order-free.  The
//! workspace's seeded release algorithms therefore produce byte-identical
//! output whether they run on a fresh context, a warm session, or the
//! free functions.

use std::collections::BTreeMap;

use dpsyn_relational::exec;
use dpsyn_relational::{
    AttrId, DeltaJoinPlan, ExecContext, Instance, JoinPlan, JoinQuery, NeighborEdit, Parallelism,
    ShardedSubJoinCache,
};

use crate::boundary::boundary_query_sharded;
use crate::local::local_sensitivity_seq;
use crate::residual::{check_beta, maximize_over_assignments, ResidualSensitivity};
use crate::smooth::{candidate_edits, candidate_neighbors};
use crate::Result;

/// Frontier width kept between radius levels of the brute-force
/// smooth-sensitivity exploration (the highest-sensitivity instances, ties
/// in generation order).
const SMOOTH_FRONTIER: usize = 16;

/// Sensitivity computations evaluated through an [`ExecContext`] — the
/// context supplies the parallelism level, the small-instance sequential
/// fallback, and the persistent sub-join lattice cache.
///
/// Implemented for [`ExecContext`]; `dpsyn::Session` forwards to these
/// methods.
pub trait SensitivityOps {
    /// `T_F(I)` for every proper subset `F ⊊ [m]`, keyed by the sorted
    /// subset (the empty subset maps to 1).  All sub-joins flow through the
    /// context's persistent lattice cache: a warm context skips every
    /// already-materialised subset.
    fn all_boundary_values(
        &self,
        query: &JoinQuery,
        instance: &Instance,
    ) -> Result<BTreeMap<Vec<usize>, u128>>;

    /// Residual sensitivity `RS^β_count(I)` (Definition 3.6).  The dominant
    /// cost — the boundary-value enumeration — is shared across calls via
    /// the context cache, so sweeping `β` over one instance pays for the
    /// lattice once.
    fn residual_sensitivity(
        &self,
        query: &JoinQuery,
        instance: &Instance,
        beta: f64,
    ) -> Result<ResidualSensitivity>;

    /// Local sensitivity `LS_count(I) = max_i T_{[m]∖{i}}(I)`.
    fn local_sensitivity(&self, query: &JoinQuery, instance: &Instance) -> Result<u128>;

    /// The local sensitivities of every edited instance `I ± edit`, swept
    /// **incrementally**: one cached [`DeltaJoinPlan`] prices each edit at a
    /// hash probe instead of a full re-join, and the edits run through the
    /// context's worker pool (results in edit order, byte-identical at any
    /// thread count and to [`SensitivityOps::local_sensitivity_sweep_materializing`]).
    fn local_sensitivity_sweep(
        &self,
        query: &JoinQuery,
        instance: &Instance,
        edits: &[NeighborEdit],
    ) -> Result<Vec<u128>>;

    /// The materializing cross-check oracle for
    /// [`SensitivityOps::local_sensitivity_sweep`]: applies every edit,
    /// producing a neighbour [`Instance`], and recomputes its local
    /// sensitivity from scratch.  `O(edits × full-join)` — kept for
    /// verification and benchmarking, not for production sweeps.
    fn local_sensitivity_sweep_materializing(
        &self,
        query: &JoinQuery,
        instance: &Instance,
        edits: &[NeighborEdit],
    ) -> Result<Vec<u128>>;

    /// Restricted brute-force smooth sensitivity (see
    /// [`crate::smooth::smooth_sensitivity_bruteforce`]); each radius
    /// level's edit sweep is delta-maintained (one plan per frontier
    /// instance, probes instead of re-joins) and runs through the context's
    /// worker pool.
    fn smooth_sensitivity_bruteforce(
        &self,
        query: &JoinQuery,
        instance: &Instance,
        beta: f64,
        max_radius: usize,
    ) -> Result<f64>;

    /// The materializing cross-check oracle for
    /// [`SensitivityOps::smooth_sensitivity_bruteforce`]: the historical
    /// implementation that materialises every candidate neighbour and
    /// re-joins from scratch.  Byte-identical results, `O(edits)` times the
    /// cost.
    fn smooth_sensitivity_bruteforce_materializing(
        &self,
        query: &JoinQuery,
        instance: &Instance,
        beta: f64,
        max_radius: usize,
    ) -> Result<f64>;

    /// The maximum boundary query `T_E(I)` (Equation 1), cached through the
    /// context lattice.
    fn boundary_query(&self, query: &JoinQuery, instance: &Instance, e: &[usize]) -> Result<u128>;

    /// The `q`-aggregate query `T_{E,y}(I)` (Definition 4.6), cached through
    /// the context lattice.
    fn aggregate_query(
        &self,
        query: &JoinQuery,
        instance: &Instance,
        e: &[usize],
        y: &[AttrId],
    ) -> Result<u128>;
}

impl SensitivityOps for ExecContext {
    fn all_boundary_values(
        &self,
        query: &JoinQuery,
        instance: &Instance,
    ) -> Result<BTreeMap<Vec<usize>, u128>> {
        let m = query.num_relations();
        let mut cache = self.subjoin_cache(query, instance)?;
        let par = self.effective_parallelism(instance);
        if !par.is_sequential() {
            // Adaptive demanded populate: only the masks other masks
            // decompose through are materialised eagerly; terminal masks
            // fold count-only below, under the cache's aggregate-pushdown
            // mode.  Each materialised level's actual cardinalities are
            // measured against the plan's estimates, and a blown estimate
            // re-plans the remaining levels (values are identical to the
            // static populate; see `dpsyn_relational::plan`).  The feedback
            // stats ride the cache back into the context's slot.
            cache.populate_demanded_adaptive(par, exec::Schedule::Stealing, self.plan_config())?;
        }
        let full = (1u32 << m) - 1;
        let entries = exec::par_map(par, full as usize, |i| -> Result<(Vec<usize>, u128)> {
            let mask = i as u32;
            let f: Vec<usize> = (0..m).filter(|r| mask & (1 << r) != 0).collect();
            let value = boundary_query_sharded(&cache, &f, Parallelism::SEQUENTIAL)?;
            Ok((f, value))
        });
        self.retain_subjoin_cache(cache);
        entries.into_iter().collect()
    }

    fn residual_sensitivity(
        &self,
        query: &JoinQuery,
        instance: &Instance,
        beta: f64,
    ) -> Result<ResidualSensitivity> {
        check_beta(beta)?;
        let m = query.num_relations();
        let boundary_values = self.all_boundary_values(query, instance)?;

        // No coordinate of an optimal s exceeds ⌈1/β⌉ (see the residual
        // module docs).
        let s_cap: u64 = (1.0 / beta).ceil() as u64;

        let per_relation = exec::par_map(self.parallelism(), m, |i| {
            maximize_over_assignments(m, i, beta, s_cap, &boundary_values)
        });

        let mut best_value = 0.0f64;
        let mut best_relation = 0usize;
        let mut best_distance = 0u64;
        for (i, &(value, distance)) in per_relation.iter().enumerate() {
            if value > best_value {
                best_value = value;
                best_relation = i;
                best_distance = distance;
            }
        }

        Ok(ResidualSensitivity {
            beta,
            value: best_value,
            maximizing_relation: best_relation,
            maximizing_distance: best_distance,
            boundary_values,
        })
    }

    fn local_sensitivity(&self, query: &JoinQuery, instance: &Instance) -> Result<u128> {
        let m = query.num_relations();
        if m >= 32 {
            // Beyond the bitmask cache's representation limit; no lattice.
            return local_sensitivity_seq(query, instance);
        }
        let mut cache = self.subjoin_cache(query, instance)?;
        let par = self.effective_parallelism(instance);
        // Transient top-level joins either way: the m size-(m-1) results are
        // each consumed once and can dwarf the inputs, so only their shared
        // prefixes are memoised (and persisted for the next call).
        let values: Vec<Result<u128>> = if par.is_sequential() {
            // Sequential targets walk **adaptively**: each chain step's
            // actual cardinality is measured as it materialises, and a
            // blown estimate re-routes every later target around the trap
            // parent — this is where correlated instances shed resident
            // intermediates (values are identical to the static walk).
            (0..m)
                .map(|i| -> Result<u128> {
                    let others: Vec<usize> = (0..m).filter(|&j| j != i).collect();
                    if others.is_empty() {
                        return Ok(1);
                    }
                    let boundary = query.boundary(&others)?;
                    let mask = cache.mask_of(&others)?;
                    Ok(cache.max_group_weight_transient_adaptive(
                        mask,
                        &boundary,
                        Parallelism::SEQUENTIAL,
                        self.plan_config(),
                    )?)
                })
                .collect()
        } else {
            exec::par_map(par, m, |i| -> Result<u128> {
                let others: Vec<usize> = (0..m).filter(|&j| j != i).collect();
                if others.is_empty() {
                    return Ok(1);
                }
                let boundary = query.boundary(&others)?;
                let mask = cache.mask_of(&others)?;
                Ok(cache.max_group_weight_transient(mask, &boundary, Parallelism::SEQUENTIAL)?)
            })
        };
        self.retain_subjoin_cache(cache);
        let mut best = 0u128;
        for value in values {
            best = best.max(value?);
        }
        Ok(best)
    }

    fn local_sensitivity_sweep(
        &self,
        query: &JoinQuery,
        instance: &Instance,
        edits: &[NeighborEdit],
    ) -> Result<Vec<u128>> {
        if query.num_relations() >= 32 {
            // Beyond the bitmask lattice's representation limit: no delta
            // plan, fall back to materializing.
            return self.local_sensitivity_sweep_materializing(query, instance, edits);
        }
        let plan = self.delta_plan(query, instance)?;
        // Probes are cheap: honour the small-instance sequential fallback so
        // tiny sweeps don't pay pool spawn overhead per call.
        let values = exec::par_map(self.effective_parallelism(instance), edits.len(), |i| {
            plan.max_boundary_after(&edits[i])
        });
        values.into_iter().map(|v| v.map_err(Into::into)).collect()
    }

    fn local_sensitivity_sweep_materializing(
        &self,
        query: &JoinQuery,
        instance: &Instance,
        edits: &[NeighborEdit],
    ) -> Result<Vec<u128>> {
        let neighbors = edits
            .iter()
            .map(|edit| instance.apply_edit(edit))
            .collect::<dpsyn_relational::Result<Vec<Instance>>>()?;
        let values = exec::par_map(self.parallelism(), neighbors.len(), |i| {
            local_sensitivity_seq(query, &neighbors[i])
        });
        values.into_iter().collect()
    }

    fn smooth_sensitivity_bruteforce(
        &self,
        query: &JoinQuery,
        instance: &Instance,
        beta: f64,
        max_radius: usize,
    ) -> Result<f64> {
        check_beta(beta)?;
        if query.num_relations() >= 32 {
            return self
                .smooth_sensitivity_bruteforce_materializing(query, instance, beta, max_radius);
        }
        let mut frontier = vec![instance.clone()];
        let mut best = self.local_sensitivity(query, instance)? as f64;
        let mut result = best;
        for k in 1..=max_radius {
            // Sweep every frontier instance's candidate edits through its
            // delta plan: the plan build is one lattice pass per frontier
            // node, after which each edit is a hash probe.  The base
            // instance (radius 1) reuses the context's persisted plan; the
            // short-lived frontier instances of deeper levels build local
            // plans so they never thrash the context's LRU slots.
            let mut scored: Vec<(u128, usize, NeighborEdit)> = Vec::new();
            for (fi, inst) in frontier.iter().enumerate() {
                let edits = candidate_edits(query, inst)?;
                let local_plan;
                let plan: &DeltaJoinPlan = if k == 1 {
                    local_plan = self.delta_plan(query, inst)?;
                    &local_plan
                } else {
                    // Short-lived frontier instances bypass the context's
                    // LRU, but still decompose along a cost-based join plan
                    // of their own, so each per-node lattice pass
                    // materialises the planner's smallest intermediates.
                    let join_plan = std::sync::Arc::new(JoinPlan::cost_based(query, inst)?);
                    let cache = ShardedSubJoinCache::with_plan(query, inst, join_plan)?;
                    local_plan = std::sync::Arc::new(DeltaJoinPlan::build(
                        query,
                        inst,
                        &cache,
                        self.effective_parallelism(inst),
                    )?);
                    &local_plan
                };
                // Probe-cheap sweep: the small-instance fallback applies
                // (results are identical at every level; only wall-clock —
                // and pool-spawn overhead per frontier node — differs).
                let sensitivities =
                    exec::par_map(self.effective_parallelism(inst), edits.len(), |i| {
                        plan.max_boundary_after(&edits[i])
                    });
                for (edit, ls) in edits.into_iter().zip(sensitivities) {
                    let ls = ls?;
                    best = best.max(ls as f64);
                    scored.push((ls, fi, edit));
                }
            }
            // Keep the frontier small: the highest-sensitivity instances are
            // the ones whose further neighbourhoods matter.  The sort is
            // stable, so ties keep generation order regardless of the worker
            // count — and the delta-computed sensitivities are exactly the
            // materialized path's, so the explored neighbourhood is too.
            scored.sort_by_key(|(ls, _, _)| std::cmp::Reverse(*ls));
            scored.truncate(SMOOTH_FRONTIER);
            frontier = scored
                .into_iter()
                .map(|(_, fi, edit)| frontier[fi].apply_edit(&edit))
                .collect::<dpsyn_relational::Result<Vec<Instance>>>()?;
            result = result.max((-beta * k as f64).exp() * best);
        }
        Ok(result)
    }

    fn smooth_sensitivity_bruteforce_materializing(
        &self,
        query: &JoinQuery,
        instance: &Instance,
        beta: f64,
        max_radius: usize,
    ) -> Result<f64> {
        check_beta(beta)?;
        let mut frontier = vec![instance.clone()];
        let mut best = self.local_sensitivity(query, instance)? as f64;
        let mut result = best;
        for k in 1..=max_radius {
            // Generate this level's neighbours sequentially (cheap), then
            // sweep their local sensitivities through the pool (the
            // expensive part: one multi-way join per edit).  Neighbour
            // instances have fresh fingerprints, so they deliberately bypass
            // the persistent cache instead of thrashing it.
            let mut neighbors: Vec<Instance> = Vec::new();
            for inst in &frontier {
                neighbors.extend(candidate_neighbors(query, inst)?);
            }
            let sensitivities = exec::par_map(self.parallelism(), neighbors.len(), |i| {
                local_sensitivity_seq(query, &neighbors[i])
            });
            let mut next: Vec<(u128, Instance)> = Vec::with_capacity(neighbors.len());
            for (neighbor, ls) in neighbors.into_iter().zip(sensitivities) {
                let ls = ls?;
                best = best.max(ls as f64);
                next.push((ls, neighbor));
            }
            next.sort_by_key(|(ls, _)| std::cmp::Reverse(*ls));
            next.truncate(SMOOTH_FRONTIER);
            frontier = next.into_iter().map(|(_, inst)| inst).collect();
            result = result.max((-beta * k as f64).exp() * best);
        }
        Ok(result)
    }

    fn boundary_query(&self, query: &JoinQuery, instance: &Instance, e: &[usize]) -> Result<u128> {
        if e.is_empty() {
            return Ok(1);
        }
        let boundary = query.boundary(e)?;
        self.aggregate_query(query, instance, e, &boundary)
    }

    fn aggregate_query(
        &self,
        query: &JoinQuery,
        instance: &Instance,
        e: &[usize],
        y: &[AttrId],
    ) -> Result<u128> {
        if e.is_empty() {
            return Ok(1);
        }
        if query.num_relations() >= 32 {
            // Beyond the bitmask cache's representation limit: evaluate
            // directly without the lattice.
            let groups = self.grouped_join_size(query, instance, e, y)?;
            return Ok(groups.values().copied().max().unwrap_or(0));
        }
        let mut cache = self.subjoin_cache(query, instance)?;
        let mask = cache.mask_of(e)?;
        // Adaptive lazy chain: a mid-chain estimate breach re-plans the
        // not-yet-walked remainder (values are plan-invariant).  Terminal
        // masks fold count-only under the cache's aggregate-pushdown mode.
        let value = cache.max_group_weight_adaptive(
            mask,
            y,
            self.effective_parallelism(instance),
            self.plan_config(),
        )?;
        self.retain_subjoin_cache(cache);
        Ok(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{all_boundary_values, local_sensitivity, residual_sensitivity};
    use dpsyn_relational::{AttrId, Relation};

    fn ids(v: &[u16]) -> Vec<AttrId> {
        v.iter().map(|&x| AttrId(x)).collect()
    }

    fn two_table() -> (JoinQuery, Instance) {
        let q = JoinQuery::two_table(8, 8, 8);
        let r1 = Relation::from_tuples(
            ids(&[0, 1]),
            vec![(vec![0, 0], 1), (vec![1, 0], 2), (vec![2, 1], 1)],
        )
        .unwrap();
        let r2 = Relation::from_tuples(
            ids(&[1, 2]),
            vec![(vec![0, 0], 1), (vec![0, 1], 1), (vec![1, 3], 3)],
        )
        .unwrap();
        (q, Instance::new(vec![r1, r2]))
    }

    #[test]
    fn context_results_match_free_functions() {
        let (q, inst) = two_table();
        let ctx = ExecContext::sequential();
        assert_eq!(
            ctx.all_boundary_values(&q, &inst).unwrap(),
            all_boundary_values(&q, &inst).unwrap()
        );
        assert_eq!(
            ctx.local_sensitivity(&q, &inst).unwrap(),
            local_sensitivity(&q, &inst).unwrap()
        );
        let beta = 0.3;
        assert_eq!(
            ctx.residual_sensitivity(&q, &inst, beta).unwrap(),
            residual_sensitivity(&q, &inst, beta).unwrap()
        );
        assert_eq!(
            ctx.boundary_query(&q, &inst, &[0]).unwrap(),
            crate::boundary_query(&q, &inst, &[0]).unwrap()
        );
        assert_eq!(ctx.boundary_query(&q, &inst, &[]).unwrap(), 1);
    }

    #[test]
    fn warm_context_reuses_the_lattice_and_matches_cold() {
        let (q, inst) = two_table();
        let ctx = ExecContext::sequential();
        let cold = ctx.residual_sensitivity(&q, &inst, 0.2).unwrap();
        // Under DPSYN_AGG_FORCE=always the lattice persists as count-only
        // summaries rather than materialised entries; both kinds count.
        let cached_after_first = ctx.cached_subjoins() + ctx.cached_subjoin_aggregates();
        assert!(cached_after_first > 0, "lattice must persist across calls");
        // A sweep over β reuses the lattice: the cached count stays put and
        // every result matches a cold single-shot context.
        for &beta in &[0.2, 0.5, 1.0] {
            let warm = ctx.residual_sensitivity(&q, &inst, beta).unwrap();
            let fresh = ExecContext::sequential()
                .residual_sensitivity(&q, &inst, beta)
                .unwrap();
            assert_eq!(warm, fresh, "beta {beta}");
            assert_eq!(
                ctx.cached_subjoins() + ctx.cached_subjoin_aggregates(),
                cached_after_first
            );
        }
        assert_eq!(cold, ctx.residual_sensitivity(&q, &inst, 0.2).unwrap());
        let (hits, _) = ctx.cache_stats();
        assert!(hits >= 3, "warm calls must hit the persistent cache");
    }

    #[test]
    fn editing_the_instance_invalidates_the_cache() {
        let (q, inst) = two_table();
        let ctx = ExecContext::sequential();
        let before = ctx.local_sensitivity(&q, &inst).unwrap();
        let mut edited = inst.clone();
        edited.relation_mut(0).add(vec![0, 0], 5).unwrap();
        let after = ctx.local_sensitivity(&q, &edited).unwrap();
        // The edited instance's sensitivity is computed fresh, not served
        // from the stale lattice.
        assert_eq!(after, local_sensitivity(&q, &edited).unwrap());
        assert_ne!(before, after);
    }

    #[test]
    fn smooth_bruteforce_matches_free_function() {
        let (q, inst) = two_table();
        let ctx = ExecContext::sequential();
        for &beta in &[0.2, 1.0] {
            assert_eq!(
                ctx.smooth_sensitivity_bruteforce(&q, &inst, beta, 2)
                    .unwrap(),
                crate::smooth_sensitivity_bruteforce(&q, &inst, beta, 2).unwrap(),
                "beta {beta}"
            );
        }
        assert!(ctx
            .smooth_sensitivity_bruteforce(&q, &inst, 0.0, 1)
            .is_err());
        assert!(ctx
            .smooth_sensitivity_bruteforce_materializing(&q, &inst, 0.0, 1)
            .is_err());
    }

    #[test]
    fn delta_smooth_bruteforce_is_byte_identical_to_materializing() {
        let (q, inst) = two_table();
        for &beta in &[0.2, 0.7] {
            let oracle = ExecContext::sequential()
                .smooth_sensitivity_bruteforce_materializing(&q, &inst, beta, 2)
                .unwrap();
            for threads in [1usize, 2, 4] {
                let delta = ExecContext::with_threads(threads)
                    .smooth_sensitivity_bruteforce(&q, &inst, beta, 2)
                    .unwrap();
                // Bit-for-bit equality of the f64, not approximate.
                assert_eq!(
                    delta.to_bits(),
                    oracle.to_bits(),
                    "beta {beta}, threads {threads}"
                );
            }
        }
    }

    #[test]
    fn delta_sweep_matches_materializing_sweep() {
        let (q, inst) = two_table();
        let mut edits = inst.removal_edits();
        for relation in 0..2usize {
            for v in 0..4u64 {
                edits.push(NeighborEdit::Add {
                    relation,
                    tuple: vec![v, (v + 3) % 8],
                });
            }
        }
        let ctx = ExecContext::sequential();
        let delta = ctx.local_sensitivity_sweep(&q, &inst, &edits).unwrap();
        let oracle = ctx
            .local_sensitivity_sweep_materializing(&q, &inst, &edits)
            .unwrap();
        assert_eq!(delta, oracle);
        // The sweep reuses the context's cached plan: a second sweep hits.
        let (hits_before, _) = ctx.cache_stats();
        let again = ctx.local_sensitivity_sweep(&q, &inst, &edits).unwrap();
        assert_eq!(again, delta);
        let (hits_after, _) = ctx.cache_stats();
        assert!(hits_after > hits_before, "second sweep must hit the plan");
        // Thread counts change nothing.
        for threads in [2usize, 4] {
            let par = ExecContext::with_threads(threads)
                .local_sensitivity_sweep(&q, &inst, &edits)
                .unwrap();
            assert_eq!(par, delta, "threads {threads}");
        }
        // Invalid edits surface the same error family as apply_edit.
        let absent = NeighborEdit::Remove {
            relation: 0,
            tuple: vec![7, 7],
        };
        assert!(ctx
            .local_sensitivity_sweep(&q, &inst, std::slice::from_ref(&absent))
            .is_err());
        assert!(ctx
            .local_sensitivity_sweep_materializing(&q, &inst, &[absent])
            .is_err());
    }
}
