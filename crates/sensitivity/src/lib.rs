//! Sensitivity machinery for counting join-size queries over multi-table
//! instances.
//!
//! The release algorithms of the paper never add noise calibrated to the raw
//! local sensitivity (which is itself sensitive); instead they rely on
//! *smooth upper bounds*, and concretely on **residual sensitivity**
//! (Definition 3.6, from Dong & Yi [15, 16]).  This crate implements:
//!
//! * maximum boundary queries `T_E` and general `q`-aggregate queries
//!   `T_{E,y}` ([`boundary`]),
//! * local sensitivity `LS_count(I) = max_i T_{[m]∖{i}}(I)` ([`local`]),
//! * worst-case/global sensitivity bounds ([`global`]),
//! * residual sensitivity `RS^β_count(I)` ([`residual`]),
//! * a brute-force smooth-upper-bound checker used by tests ([`smooth`]),
//! * the maximum-degree upper bound on `T_E` for hierarchical queries
//!   (Section 4.2.1, Lemma 4.8) ([`mdeg_bound`]),
//! * degree configurations (Definition 4.9) and the residual-sensitivity
//!   upper bound they induce ([`config`]).
//!
//! Every expensive entry point is a method of the [`SensitivityOps`]
//! extension trait on [`dpsyn_relational::ExecContext`]: the context supplies
//! the [`Parallelism`](dpsyn_relational::Parallelism) knob driving the subset
//! enumerations, probe loops and edit sweeps through the relational engine's
//! worker pool ([`dpsyn_relational::exec`]), the small-instance sequential
//! fallback ([`SensitivityConfig::min_par_instance`]), the cost-based
//! **join plan** that decomposes every sub-join the enumerations
//! materialise ([`dpsyn_relational::plan`]), and — on a long-lived context
//! (`dpsyn::Session`) — a **persistent sub-join lattice cache** that makes
//! repeated sensitivity computations over the same instance near-free.
//! Results are byte-identical at every parallelism level, on warm or cold
//! caches, and under every decomposition; the plain free functions use a
//! throwaway default context.
//!
//! Neighbour-edit sweeps are **delta-maintained**: the local sensitivities of
//! all single-tuple edits of an instance
//! ([`SensitivityOps::local_sensitivity_sweep`]) and the brute-force
//! smooth-sensitivity exploration are priced per edit at a hash probe through
//! a precomputed [`dpsyn_relational::DeltaJoinPlan`] instead of a full
//! re-join, with the historical materializing implementations retained as
//! cross-check oracles (`*_materializing`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod boundary;
pub mod config;
pub mod context_ext;
pub mod error;
pub mod global;
pub mod local;
pub mod mdeg_bound;
pub mod residual;
pub mod settings;
pub mod smooth;

pub use boundary::{
    aggregate_query, aggregate_query_cached, aggregate_query_sharded, boundary_query,
    boundary_query_cached, boundary_query_sharded,
};
pub use config::{DegreeConfiguration, UniformPartitionSpec};
pub use context_ext::SensitivityOps;
pub use error::SensitivityError;
pub use global::{global_sensitivity_bound, worst_case_error_exponent};
pub use local::{local_sensitivity, two_table_local_sensitivity};
pub use mdeg_bound::{lemma48_mdeg_terms, t_e_mdeg_upper_bound, MdegTerm};
pub use residual::{all_boundary_values, ls_hat_k, residual_sensitivity, ResidualSensitivity};
pub use settings::SensitivityConfig;
pub use smooth::{
    candidate_edits, is_smooth_upper_bound, smooth_sensitivity_bruteforce,
    smooth_sensitivity_bruteforce_materializing,
};

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, SensitivityError>;
