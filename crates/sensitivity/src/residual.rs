//! Residual sensitivity `RS^β_count(I)` (Definition 3.6, after Dong & Yi
//! [15, 16]).
//!
//! ```text
//! RS^β(I)   = max_{k ≥ 0} e^{-βk} · L̂S^k(I)
//! L̂S^k(I)  = max_{s ∈ S_k} max_{i ∈ [m]} Σ_{E ⊆ [m]∖{i}} T_{([m]∖{i})∖E}(I) · Π_{j∈E} s_j
//! ```
//!
//! where `S_k` is the set of non-negative integer vectors summing to `k` and
//! `T_F` are the maximum boundary queries of Equation (1).  `L̂S^k` is the
//! maximum local sensitivity over instances at distance ≤ `k` from `I`, so
//! `RS^β` is a β-smooth upper bound on the local sensitivity; unlike smooth
//! sensitivity it is computable in polynomial time (the `T_F` are joins and
//! `m` is a constant).
//!
//! ### How the maximisation is carried out
//!
//! Writing `k = Σ_j s_j`, the objective
//! `e^{-βΣ_j s_j} · Σ_E T_{O_i∖E} Π_{j∈E} s_j` factors per coordinate into
//! `s_j e^{-β s_j}` (for `j ∈ E`) or `e^{-β s_j}` (for `j ∉ E`).  Both factors
//! are non-increasing in `s_j` beyond `1/β`, so no coordinate of an optimal
//! `s` ever needs to exceed `⌈1/β⌉`.  We therefore enumerate
//! `s ∈ {0, …, ⌈1/β⌉}^{m-1}` exactly — polynomial for constant `m`.

use std::collections::BTreeMap;

use dpsyn_relational::{Instance, JoinQuery, SubJoinCache};

use crate::boundary::boundary_query_cached;
use crate::context_ext::SensitivityOps;
use crate::error::SensitivityError;
use crate::settings::SensitivityConfig;
use crate::Result;

/// The result of a residual-sensitivity computation, retaining the
/// intermediate boundary-query values for inspection and testing.
#[derive(Debug, Clone, PartialEq)]
pub struct ResidualSensitivity {
    /// The smoothing parameter β used.
    pub beta: f64,
    /// The value `RS^β_count(I)`.
    pub value: f64,
    /// The relation index `i` attaining the outer maximum.
    pub maximizing_relation: usize,
    /// The distance `k = Σ_j s_j` at which the maximum is attained.
    pub maximizing_distance: u64,
    /// All maximum boundary-query values `T_F(I)` for proper subsets
    /// `F ⊊ [m]`, keyed by the sorted subset.
    pub boundary_values: BTreeMap<Vec<usize>, u128>,
}

impl ResidualSensitivity {
    /// The boundary-query value `T_F(I)` for a proper subset `F` (1 for the
    /// empty subset by convention).
    pub fn boundary_value(&self, f: &[usize]) -> Option<u128> {
        if f.is_empty() {
            Some(1)
        } else {
            self.boundary_values.get(f).copied()
        }
    }
}

pub(crate) fn check_beta(beta: f64) -> Result<()> {
    if beta.is_nan() || beta <= 0.0 || beta.is_infinite() {
        return Err(SensitivityError::InvalidParameter {
            name: "beta",
            value: beta,
            constraint: "0 < beta < ∞",
        });
    }
    Ok(())
}

/// Precomputes `T_F(I)` for every proper subset `F ⊊ [m]`, keyed by the sorted
/// subset (the empty subset maps to 1).
///
/// All `2^m - 1` sub-joins are evaluated through one shared [`SubJoinCache`]
/// (on its historical fixed-prefix decomposition — this free function
/// doubles as the planner's cross-check path), so each subset costs a single
/// incremental hash-join step over its cached parent instead of a full
/// re-join from the base relations.  The context method
/// ([`SensitivityOps::all_boundary_values`]) additionally decomposes along
/// the cost-based join plan and persists the lattice across calls.
pub fn all_boundary_values(
    query: &JoinQuery,
    instance: &Instance,
) -> Result<BTreeMap<Vec<usize>, u128>> {
    let m = query.num_relations();
    let mut cache = SubJoinCache::new(query, instance)?;
    let mut out = BTreeMap::new();
    for mask in 0u32..((1u32 << m) - 1) {
        let f: Vec<usize> = (0..m).filter(|i| mask & (1 << i) != 0).collect();
        let value = boundary_query_cached(&mut cache, &f)?;
        out.insert(f, value);
    }
    Ok(out)
}

/// Evaluates `Σ_{E ⊆ O} T_{O∖E} Π_{j∈E} s_j` for a fixed relation-exclusion
/// set `O` (given as a sorted list) and assignment `s` (aligned with `O`).
fn inner_sum(o: &[usize], s: &[u64], boundary_values: &BTreeMap<Vec<usize>, u128>) -> f64 {
    let len = o.len();
    let mut total = 0.0;
    for mask in 0u32..(1u32 << len) {
        let mut product = 1.0f64;
        let mut complement: Vec<usize> = Vec::with_capacity(len);
        for (bit, &rel) in o.iter().enumerate() {
            if mask & (1 << bit) != 0 {
                product *= s[bit] as f64;
            } else {
                complement.push(rel);
            }
        }
        if product == 0.0 && mask != 0 {
            // A zero s_j annihilates the term; skip the lookup.
            continue;
        }
        let t = if complement.is_empty() {
            1u128
        } else {
            boundary_values.get(&complement).copied().unwrap_or(0)
        };
        total += product * t as f64;
    }
    total
}

/// Maximises `e^{-βk}·Σ_E T_{O_i∖E}·Πs_j` over `s ∈ {0..=s_cap}^{m-1}` for a
/// fixed excluded relation `i`, returning the best value and its distance
/// `k`.  The odometer enumeration order and the strictly-greater update rule
/// make the result (including tie-breaks) identical to the historical
/// sequential sweep.
pub(crate) fn maximize_over_assignments(
    m: usize,
    i: usize,
    beta: f64,
    s_cap: u64,
    boundary_values: &BTreeMap<Vec<usize>, u128>,
) -> (f64, u64) {
    let others: Vec<usize> = (0..m).filter(|&j| j != i).collect();
    let mut s = vec![0u64; others.len()];
    let mut best_value = 0.0f64;
    let mut best_distance = 0u64;
    loop {
        let k: u64 = s.iter().sum();
        let value = (-beta * k as f64).exp() * inner_sum(&others, &s, boundary_values);
        if value > best_value {
            best_value = value;
            best_distance = k;
        }
        // Odometer increment over {0..=s_cap}^{m-1}.
        let mut pos = 0;
        loop {
            if pos == s.len() {
                break;
            }
            if s[pos] < s_cap {
                s[pos] += 1;
                break;
            }
            s[pos] = 0;
            pos += 1;
        }
        if pos == s.len() {
            break;
        }
        if s.is_empty() {
            break;
        }
    }
    (best_value, best_distance)
}

/// Computes the residual sensitivity `RS^β_count(I)` at the default
/// execution settings ([`SensitivityConfig::default`]: available cores,
/// byte-identical to the sequential path).  Builds a throwaway context per
/// call; hold an [`dpsyn_relational::ExecContext`] (or a `dpsyn::Session`)
/// to reuse the sub-join lattice across calls.
pub fn residual_sensitivity(
    query: &JoinQuery,
    instance: &Instance,
    beta: f64,
) -> Result<ResidualSensitivity> {
    SensitivityConfig::default()
        .to_context()
        .residual_sensitivity(query, instance, beta)
}

/// The quantity `L̂S^k(I)` of Definition 3.6: the maximum local sensitivity
/// over instances at distance at most `k` from `I`, evaluated exactly by
/// enumerating the integer compositions of `k` over `[m]∖{i}`.
///
/// Intended for moderate `k` (tests and cross-checks); `residual_sensitivity`
/// never calls it.
pub fn ls_hat_k(query: &JoinQuery, instance: &Instance, k: u64) -> Result<f64> {
    let m = query.num_relations();
    let boundary_values = all_boundary_values(query, instance)?;
    let mut best = 0.0f64;
    for i in 0..m {
        let others: Vec<usize> = (0..m).filter(|&j| j != i).collect();
        let parts = others.len();
        if parts == 0 {
            best = best.max(inner_sum(&others, &[], &boundary_values));
            continue;
        }
        // Enumerate all non-negative integer vectors of length `parts` summing
        // to exactly k.
        let mut s = vec![0u64; parts];
        s[0] = k;
        loop {
            best = best.max(inner_sum(&others, &s, &boundary_values));
            // Next composition in colex order: move one unit from the first
            // non-zero prefix position to the next position.
            let first_nonzero = match s[..parts - 1].iter().position(|&v| v > 0) {
                Some(p) => p,
                None => break,
            };
            let moved = s[first_nonzero] - 1;
            s[first_nonzero + 1] += 1;
            s[first_nonzero] = 0;
            s[0] = moved;
            if false {
                break;
            }
        }
    }
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpsyn_relational::{AttrId, Relation};

    fn ids(v: &[u16]) -> Vec<AttrId> {
        v.iter().map(|&x| AttrId(x)).collect()
    }

    fn two_table() -> (JoinQuery, Instance) {
        let q = JoinQuery::two_table(8, 8, 8);
        let r1 = Relation::from_tuples(
            ids(&[0, 1]),
            vec![(vec![0, 0], 1), (vec![1, 0], 2), (vec![2, 1], 1)],
        )
        .unwrap();
        let r2 = Relation::from_tuples(
            ids(&[1, 2]),
            vec![(vec![0, 0], 1), (vec![0, 1], 1), (vec![1, 3], 3)],
        )
        .unwrap();
        (q, Instance::new(vec![r1, r2]))
    }

    #[test]
    fn two_table_matches_closed_form() {
        // For two tables, L̂S^k = max(T_{R1}, T_{R2}) + k... more precisely
        // max_i (T_{[2]∖{i}} + k), so RS^β = max_k e^{-βk}·(LS + k) where
        // LS = max(T_{{0}}, T_{{1}}).
        let (q, inst) = two_table();
        let beta = 0.2;
        let rs = residual_sensitivity(&q, &inst, beta).unwrap();
        let ls = crate::local_sensitivity(&q, &inst).unwrap() as f64;
        let mut expect = 0.0f64;
        for k in 0..200u64 {
            expect = expect.max((-beta * k as f64).exp() * (ls + k as f64));
        }
        assert!(
            (rs.value - expect).abs() < 1e-9,
            "rs = {}, closed form = {expect}",
            rs.value
        );
    }

    #[test]
    fn residual_upper_bounds_local_sensitivity() {
        let (q, inst) = two_table();
        for &beta in &[0.05, 0.1, 0.5, 1.0, 5.0] {
            let rs = residual_sensitivity(&q, &inst, beta).unwrap();
            let ls = crate::local_sensitivity(&q, &inst).unwrap() as f64;
            assert!(rs.value >= ls - 1e-9, "beta = {beta}");
        }
    }

    #[test]
    fn residual_decreases_as_beta_grows() {
        let (q, inst) = two_table();
        let lo = residual_sensitivity(&q, &inst, 0.05).unwrap().value;
        let hi = residual_sensitivity(&q, &inst, 2.0).unwrap().value;
        assert!(lo >= hi);
    }

    #[test]
    fn matches_ls_hat_k_enumeration() {
        let (q, inst) = two_table();
        let beta = 0.4;
        let rs = residual_sensitivity(&q, &inst, beta).unwrap();
        // RS = max_k e^{-βk} L̂S^k; enumerate k up to a comfortable bound.
        let mut expect = 0.0f64;
        for k in 0..50u64 {
            let lsk = ls_hat_k(&q, &inst, k).unwrap();
            expect = expect.max((-beta * k as f64).exp() * lsk);
        }
        assert!((rs.value - expect).abs() < 1e-9);
    }

    #[test]
    fn three_table_star_residual() {
        let q = JoinQuery::star(3, 8).unwrap();
        let mut inst = Instance::empty_for(&q).unwrap();
        // Hub value 0 has 2, 3, 4 tuples in the three relations.
        for a in 0..2u64 {
            inst.relation_mut(0).add(vec![0, a], 1).unwrap();
        }
        for a in 0..3u64 {
            inst.relation_mut(1).add(vec![0, a], 1).unwrap();
        }
        for a in 0..4u64 {
            inst.relation_mut(2).add(vec![0, a], 1).unwrap();
        }
        let beta = 0.5;
        let rs = residual_sensitivity(&q, &inst, beta).unwrap();
        let ls = crate::local_sensitivity(&q, &inst).unwrap() as f64;
        assert_eq!(ls, 12.0);
        assert!(rs.value >= ls);
        // Cross-check against the k-wise enumeration.
        let mut expect = 0.0f64;
        for k in 0..30u64 {
            let lsk = ls_hat_k(&q, &inst, k).unwrap();
            expect = expect.max((-beta * k as f64).exp() * lsk);
        }
        assert!(
            (rs.value - expect).abs() / expect < 1e-9,
            "rs = {} expect = {expect}",
            rs.value
        );
        // The boundary values include every proper subset.
        assert_eq!(rs.boundary_values.len(), 7);
        assert_eq!(rs.boundary_value(&[]), Some(1));
    }

    #[test]
    fn ls_hat_zero_is_local_sensitivity() {
        let (q, inst) = two_table();
        let ls0 = ls_hat_k(&q, &inst, 0).unwrap();
        let ls = crate::local_sensitivity(&q, &inst).unwrap() as f64;
        assert!((ls0 - ls).abs() < 1e-12);
    }

    #[test]
    fn ls_hat_k_is_monotone_in_k() {
        let (q, inst) = two_table();
        let mut prev = 0.0;
        for k in 0..10u64 {
            let cur = ls_hat_k(&q, &inst, k).unwrap();
            assert!(cur >= prev);
            prev = cur;
        }
    }

    #[test]
    fn cached_boundary_values_match_naive_enumeration() {
        let q = JoinQuery::star(4, 8).unwrap();
        let mut inst = Instance::empty_for(&q).unwrap();
        for r in 0..4usize {
            for hub in 0..3u64 {
                inst.relation_mut(r)
                    .add(vec![hub, (hub + r as u64) % 8], 1 + r as u64)
                    .unwrap();
            }
        }
        let cached = all_boundary_values(&q, &inst).unwrap();
        let naive = dpsyn_relational::naive::all_boundary_values_naive(&q, &inst).unwrap();
        assert_eq!(cached, naive);
        assert_eq!(cached.len(), (1 << 4) - 1);
    }

    #[test]
    fn parallel_enumeration_matches_sequential() {
        // Large enough (≥ MIN_PAR_INSTANCE distinct tuples) that the
        // multi-thread calls really take the sharded-cache path instead of
        // the small-instance sequential fallback.
        let q = JoinQuery::star(4, 64).unwrap();
        let mut inst = Instance::empty_for(&q).unwrap();
        for r in 0..4usize {
            for hub in 0..52u64 {
                for petal in 0..10u64 {
                    inst.relation_mut(r)
                        .add(vec![hub, (hub + petal + r as u64) % 64], 1 + hub % 2)
                        .unwrap();
                }
            }
        }
        let beta = 0.3;
        let seq = SensitivityConfig::sequential()
            .to_context()
            .residual_sensitivity(&q, &inst, beta)
            .unwrap();
        for threads in [2usize, 4, 8] {
            let ctx = SensitivityConfig::with_threads(threads).to_context();
            let bv = ctx.all_boundary_values(&q, &inst).unwrap();
            assert_eq!(bv, seq.boundary_values, "threads {threads}");
            let par = ctx.residual_sensitivity(&q, &inst, beta).unwrap();
            // Full struct equality: value, maximiser, distance, boundary map.
            assert_eq!(par, seq, "threads {threads}");
        }
    }

    #[test]
    fn rejects_invalid_beta() {
        let (q, inst) = two_table();
        assert!(residual_sensitivity(&q, &inst, 0.0).is_err());
        assert!(residual_sensitivity(&q, &inst, -1.0).is_err());
        assert!(residual_sensitivity(&q, &inst, f64::NAN).is_err());
    }

    #[test]
    fn empty_instance_residual_is_tiny() {
        let q = JoinQuery::two_table(4, 4, 4);
        let inst = Instance::empty_for(&q).unwrap();
        let rs = residual_sensitivity(&q, &inst, 0.5).unwrap();
        // With no data every T_F (F ≠ ∅) is 0, so only the k·T_∅ terms remain:
        // max_k e^{-βk}·k = e^{-β·2}·2 at β = 0.5.
        let expect = (0..20u64)
            .map(|k| (-0.5 * k as f64).exp() * k as f64)
            .fold(0.0f64, f64::max);
        assert!((rs.value - expect).abs() < 1e-9);
    }
}
