//! Error type for sensitivity computations.

use std::fmt;

use dpsyn_relational::RelationalError;

/// Errors raised by sensitivity computations.
#[derive(Debug, Clone, PartialEq)]
pub enum SensitivityError {
    /// An underlying relational operation failed.
    Relational(RelationalError),
    /// A numeric parameter (e.g. `β` or `λ`) is out of range.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Offending value.
        value: f64,
        /// Constraint violated.
        constraint: &'static str,
    },
    /// The operation requires a hierarchical join query.
    RequiresHierarchical(String),
    /// The operation is specific to two-table queries.
    RequiresTwoTable {
        /// Number of relations actually present.
        got: usize,
    },
}

impl fmt::Display for SensitivityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SensitivityError::Relational(e) => write!(f, "relational error: {e}"),
            SensitivityError::InvalidParameter {
                name,
                value,
                constraint,
            } => write!(
                f,
                "invalid parameter {name} = {value}: must satisfy {constraint}"
            ),
            SensitivityError::RequiresHierarchical(msg) => {
                write!(f, "operation requires a hierarchical join query: {msg}")
            }
            SensitivityError::RequiresTwoTable { got } => {
                write!(
                    f,
                    "operation requires a two-table query, got {got} relations"
                )
            }
        }
    }
}

impl std::error::Error for SensitivityError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SensitivityError::Relational(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RelationalError> for SensitivityError {
    fn from(e: RelationalError) -> Self {
        SensitivityError::Relational(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_relational_errors() {
        let inner = RelationalError::EmptyQuery;
        let e: SensitivityError = inner.clone().into();
        assert_eq!(e, SensitivityError::Relational(inner));
        assert!(e.to_string().contains("relational error"));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn parameter_error_displays_constraint() {
        let e = SensitivityError::InvalidParameter {
            name: "beta",
            value: -0.5,
            constraint: "beta > 0",
        };
        assert!(e.to_string().contains("beta > 0"));
    }
}
