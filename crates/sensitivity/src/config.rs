//! Degree configurations (Definition 4.9) and uniform partitions
//! (Definition 4.3).
//!
//! The uniformization framework buckets degrees geometrically: bucket `i ≥ 1`
//! covers degrees in `(γ_{i-1}, γ_i]` with `γ_i = λ·2^i` and `γ_0 = 0`.  A
//! *degree configuration* assigns one bucket to every attribute of a
//! hierarchical query (equivalently, per Lemma 4.8, to every maximum degree
//! `mdeg_{atom(x)}(ancestors(x))`), and each sub-instance produced by
//! Algorithm 6/7 is characterised by one configuration.  The configuration's
//! bucket caps upper-bound the sub-instance's boundary queries, which is how
//! the fine-grained error bound of Theorem C.2 is assembled.

use std::collections::BTreeMap;

use dpsyn_relational::tuple::diff_attrs;
use dpsyn_relational::{AttrId, AttributeTree, Instance, JoinQuery, Value};

use crate::error::SensitivityError;
use crate::Result;

/// Returns the bucket index `i = max{1, ⌈log₂(deg/λ)⌉}` used by Algorithms 5
/// and 7 (degrees of zero map to bucket 1 as well).
pub fn bucket_of(degree: f64, lambda: f64) -> usize {
    if degree <= lambda {
        return 1;
    }
    let i = (degree / lambda).log2().ceil() as i64;
    i.max(1) as usize
}

/// The degree range `(γ_{i-1}, γ_i]` covered by bucket `i` (with `γ_0 = 0`).
pub fn bucket_range(i: usize, lambda: f64) -> (f64, f64) {
    let hi = lambda * (2.0f64).powi(i as i32);
    let lo = if i <= 1 {
        0.0
    } else {
        lambda * (2.0f64).powi(i as i32 - 1)
    };
    (lo, hi)
}

/// The cap `γ_i = λ·2^i` of bucket `i`.
pub fn bucket_cap(i: usize, lambda: f64) -> f64 {
    lambda * (2.0f64).powi(i as i32)
}

/// A degree configuration: one bucket per attribute of a hierarchical query
/// (Definition 4.9, indexed by attribute via the Lemma 4.8 correspondence
/// `x ↔ (atom(x), ancestors(x))`).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Default)]
pub struct DegreeConfiguration {
    buckets: BTreeMap<AttrId, usize>,
}

impl DegreeConfiguration {
    /// Creates an empty configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the bucket of attribute `x`.
    pub fn set(&mut self, attr: AttrId, bucket: usize) {
        self.buckets.insert(attr, bucket);
    }

    /// The bucket of attribute `x` (`None` = the paper's `⊥`).
    pub fn bucket(&self, attr: AttrId) -> Option<usize> {
        self.buckets.get(&attr).copied()
    }

    /// Iterates over `(attribute, bucket)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (AttrId, usize)> + '_ {
        self.buckets.iter().map(|(&a, &b)| (a, b))
    }

    /// Number of attributes assigned a bucket.
    pub fn len(&self) -> usize {
        self.buckets.len()
    }

    /// Whether no attribute has been assigned a bucket.
    pub fn is_empty(&self) -> bool {
        self.buckets.is_empty()
    }

    /// The cap `γ_i` of attribute `x`'s bucket, or `None` if unassigned.
    pub fn cap(&self, attr: AttrId, lambda: f64) -> Option<f64> {
        self.bucket(attr).map(|i| bucket_cap(i, lambda))
    }

    /// Builds the configuration of an instance from its *true* degrees (the
    /// uniform partition's characterisation): attribute `x` gets the bucket of
    /// `mdeg_{atom(x)}(ancestors(x))`.
    pub fn from_true_degrees(
        query: &JoinQuery,
        tree: &AttributeTree,
        instance: &Instance,
        lambda: f64,
    ) -> Result<Self> {
        check_lambda(lambda)?;
        let mut config = DegreeConfiguration::new();
        for &attr in tree.bottom_up_order() {
            let relations = query.atom(attr);
            if relations.is_empty() {
                continue;
            }
            let ancestors = tree.ancestors(attr);
            let d = dpsyn_relational::max_degree(query, instance, &relations, &ancestors)?;
            config.set(attr, bucket_of(d as f64, lambda));
        }
        Ok(config)
    }

    /// Upper bound on the boundary query `T_E` of an instance *conforming to
    /// this configuration*, as the product of bucket caps over the attributes
    /// of `Ô_E ∖ ∂E` (Lemma 4.8 with `mdeg ≤ γ`).
    pub fn t_e_upper_bound(&self, query: &JoinQuery, e: &[usize], lambda: f64) -> Result<f64> {
        check_lambda(lambda)?;
        if e.is_empty() {
            return Ok(1.0);
        }
        let union = query.union_attrs(e)?;
        let boundary = query.boundary(e)?;
        let inner = diff_attrs(&union, &boundary);
        let mut product = 1.0;
        for attr in inner {
            match self.cap(attr, lambda) {
                Some(cap) => product *= cap,
                None => {
                    return Err(SensitivityError::RequiresHierarchical(format!(
                        "degree configuration has no bucket for attribute {attr}"
                    )))
                }
            }
        }
        Ok(product)
    }

    /// Upper bound on the *local sensitivity* of an instance conforming to
    /// this configuration: `max_i Π caps over Ô_{[m]∖{i}} ∖ ∂`.  This is the
    /// quantity `LS^σ_count` appearing in Theorem C.3.
    pub fn local_sensitivity_upper_bound(&self, query: &JoinQuery, lambda: f64) -> Result<f64> {
        let m = query.num_relations();
        let mut worst: f64 = 0.0;
        for i in 0..m {
            let others: Vec<usize> = (0..m).filter(|&j| j != i).collect();
            worst = worst.max(self.t_e_upper_bound(query, &others, lambda)?);
        }
        Ok(worst)
    }
}

fn check_lambda(lambda: f64) -> Result<()> {
    if lambda.is_nan() || lambda <= 0.0 || lambda.is_infinite() {
        return Err(SensitivityError::InvalidParameter {
            name: "lambda",
            value: lambda,
            constraint: "0 < lambda < ∞",
        });
    }
    Ok(())
}

/// The uniform partition of a two-table instance (Definition 4.3): join
/// values of the shared attribute(s) are grouped into buckets by their *true*
/// maximum degree `max{deg_{1,B}(b), deg_{2,B}(b)}`.
///
/// This is the non-private object that Theorem 4.4 and Theorem 4.5 are
/// parameterised by; the private Algorithm 5 approximates it with noisy
/// degrees.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UniformPartitionSpec {
    /// Bucket index for each join value (keyed by the value tuple over the
    /// shared attributes).
    pub assignment: BTreeMap<Vec<Value>, usize>,
    /// The λ used to define the bucket boundaries.
    pub lambda_bits: u64,
}

impl UniformPartitionSpec {
    /// Computes the uniform partition of a two-table instance.
    pub fn two_table(query: &JoinQuery, instance: &Instance, lambda: f64) -> Result<Self> {
        check_lambda(lambda)?;
        if query.num_relations() != 2 {
            return Err(SensitivityError::RequiresTwoTable {
                got: query.num_relations(),
            });
        }
        let shared = query.intersect_attrs(&[0, 1])?;
        let d1 = instance.relation(0).degree_map(&shared)?;
        let d2 = instance.relation(1).degree_map(&shared)?;
        let mut assignment = BTreeMap::new();
        let mut keys: std::collections::BTreeSet<Vec<Value>> = d1.keys().cloned().collect();
        keys.extend(d2.keys().cloned());
        for key in keys {
            let deg = d1
                .get(&key)
                .copied()
                .unwrap_or(0)
                .max(d2.get(&key).copied().unwrap_or(0));
            assignment.insert(key, bucket_of(deg as f64, lambda));
        }
        Ok(UniformPartitionSpec {
            assignment,
            lambda_bits: lambda.to_bits(),
        })
    }

    /// The λ used to build this partition.
    pub fn lambda(&self) -> f64 {
        f64::from_bits(self.lambda_bits)
    }

    /// The set of join values assigned to bucket `i`.
    pub fn bucket_members(&self, i: usize) -> std::collections::BTreeSet<Vec<Value>> {
        self.assignment
            .iter()
            .filter(|(_, &b)| b == i)
            .map(|(k, _)| k.clone())
            .collect()
    }

    /// The largest bucket index in use (0 when the partition is empty).
    pub fn max_bucket(&self) -> usize {
        self.assignment.values().copied().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpsyn_relational::Relation;

    fn ids(v: &[u16]) -> Vec<AttrId> {
        v.iter().map(|&x| AttrId(x)).collect()
    }

    #[test]
    fn bucket_of_matches_geometric_ranges() {
        let lambda = 4.0;
        assert_eq!(bucket_of(0.0, lambda), 1);
        assert_eq!(bucket_of(3.0, lambda), 1);
        assert_eq!(bucket_of(8.0, lambda), 1);
        assert_eq!(bucket_of(8.1, lambda), 2);
        assert_eq!(bucket_of(16.0, lambda), 2);
        assert_eq!(bucket_of(16.1, lambda), 3);
        // Each degree lies inside its bucket's range (above bucket 1's floor).
        for &d in &[1.0, 5.0, 9.0, 17.0, 100.0, 1000.0] {
            let i = bucket_of(d, lambda);
            let (lo, hi) = bucket_range(i, lambda);
            assert!(d <= hi, "degree {d} above cap {hi}");
            if i > 1 {
                assert!(d > lo, "degree {d} below floor {lo}");
            }
        }
    }

    #[test]
    fn bucket_cap_doubles() {
        assert_eq!(bucket_cap(1, 3.0), 6.0);
        assert_eq!(bucket_cap(2, 3.0), 12.0);
        assert_eq!(bucket_cap(5, 1.0), 32.0);
    }

    #[test]
    fn configuration_round_trips() {
        let mut c = DegreeConfiguration::new();
        assert!(c.is_empty());
        c.set(AttrId(3), 2);
        c.set(AttrId(1), 4);
        assert_eq!(c.bucket(AttrId(3)), Some(2));
        assert_eq!(c.bucket(AttrId(9)), None);
        assert_eq!(c.len(), 2);
        assert_eq!(c.cap(AttrId(1), 2.0), Some(32.0));
        let pairs: Vec<_> = c.iter().collect();
        assert_eq!(pairs, vec![(AttrId(1), 4), (AttrId(3), 2)]);
    }

    fn skewed_two_table() -> (JoinQuery, Instance) {
        let q = JoinQuery::two_table(64, 64, 64);
        let mut inst = Instance::empty_for(&q).unwrap();
        // Join value 0 is heavy (degree 16 on both sides), value 1 is light.
        for a in 0..16u64 {
            inst.relation_mut(0).add(vec![a, 0], 1).unwrap();
            inst.relation_mut(1).add(vec![0, a], 1).unwrap();
        }
        inst.relation_mut(0).add(vec![0, 1], 1).unwrap();
        inst.relation_mut(1).add(vec![1, 0], 1).unwrap();
        (q, inst)
    }

    #[test]
    fn uniform_partition_buckets_by_true_degree() {
        let (q, inst) = skewed_two_table();
        let lambda = 2.0;
        let spec = UniformPartitionSpec::two_table(&q, &inst, lambda).unwrap();
        // Value 0 has degree 16 → bucket ⌈log2(16/2)⌉ = 3; value 1 has degree 1 → bucket 1.
        assert_eq!(spec.assignment.get(&vec![0u64]).copied(), Some(3));
        assert_eq!(spec.assignment.get(&vec![1u64]).copied(), Some(1));
        assert_eq!(spec.max_bucket(), 3);
        assert_eq!(spec.bucket_members(3).len(), 1);
        assert!((spec.lambda() - lambda).abs() < 1e-12);
    }

    #[test]
    fn uniform_partition_requires_two_tables() {
        let q = JoinQuery::star(3, 8).unwrap();
        let inst = Instance::empty_for(&q).unwrap();
        assert!(matches!(
            UniformPartitionSpec::two_table(&q, &inst, 1.0),
            Err(SensitivityError::RequiresTwoTable { got: 3 })
        ));
    }

    #[test]
    fn configuration_from_true_degrees_and_bounds() {
        let q = JoinQuery::two_table(64, 64, 64);
        let tree = AttributeTree::build(&q).unwrap();
        let r1 = Relation::from_tuples(
            ids(&[0, 1]),
            (0..12u64).map(|a| (vec![a, 0], 1)).collect::<Vec<_>>(),
        )
        .unwrap();
        let r2 = Relation::from_tuples(
            ids(&[1, 2]),
            (0..3u64).map(|c| (vec![0, c], 1)).collect::<Vec<_>>(),
        )
        .unwrap();
        let inst = Instance::new(vec![r1, r2]);
        let lambda = 2.0;
        let config = DegreeConfiguration::from_true_degrees(&q, &tree, &inst, lambda).unwrap();
        // Attribute A (id 0): mdeg_{R1}(B) = 12 → bucket 3 (cap 16).
        assert_eq!(config.bucket(AttrId(0)), Some(3));
        // Attribute C (id 2): mdeg_{R2}(B) = 3 → bucket 1 (cap 4).
        assert_eq!(config.bucket(AttrId(2)), Some(1));
        // T_{E={0}} bound = cap(A) = 16 ≥ true value 12.
        let bound = config.t_e_upper_bound(&q, &[0], lambda).unwrap();
        assert_eq!(bound, 16.0);
        // LS^σ bound = max over i of the T bounds = 16.
        let ls_bound = config.local_sensitivity_upper_bound(&q, lambda).unwrap();
        assert_eq!(ls_bound, 16.0);
        let true_ls = crate::local_sensitivity(&q, &inst).unwrap() as f64;
        assert!(ls_bound >= true_ls);
    }

    #[test]
    fn missing_bucket_is_an_error() {
        let q = JoinQuery::two_table(8, 8, 8);
        let config = DegreeConfiguration::new();
        assert!(config.t_e_upper_bound(&q, &[0], 1.0).is_err());
    }

    #[test]
    fn invalid_lambda_rejected() {
        let q = JoinQuery::two_table(8, 8, 8);
        let inst = Instance::empty_for(&q).unwrap();
        assert!(UniformPartitionSpec::two_table(&q, &inst, 0.0).is_err());
        let tree = AttributeTree::build(&q).unwrap();
        assert!(DegreeConfiguration::from_true_degrees(&q, &tree, &inst, -1.0).is_err());
    }
}
