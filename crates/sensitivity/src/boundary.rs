//! Maximum boundary queries `T_E` (Equation 1) and `q`-aggregate queries
//! `T_{E,y}` (Definition 4.6).
//!
//! `T_E(I)` is the largest, over boundary tuples `t ∈ dom(∂E)`, total weight
//! of the sub-join of the relations in `E` restricted to `t`.  The residual
//! sensitivity of Definition 3.6 is assembled from these values, and the
//! hierarchical machinery of Section 4.2 upper-bounds them by products of
//! maximum degrees.

use dpsyn_relational::{
    grouped_join_size, AttrId, Instance, JoinQuery, Parallelism, ShardedSubJoinCache, SubJoinCache,
};

use crate::Result;

/// The `q`-aggregate query `T_{E,y}(I)` of Definition 4.6: the maximum, over
/// tuples `t ∈ dom(y)`, of the total weight of sub-join tuples of `E`
/// projecting onto `t`.
///
/// Conventions:
/// * `E = ∅` yields 1 (the empty product), matching `T_∅(I) = 1` in the
///   residual-sensitivity definition;
/// * an empty sub-join result yields 0.
pub fn aggregate_query(
    query: &JoinQuery,
    instance: &Instance,
    e: &[usize],
    y: &[AttrId],
) -> Result<u128> {
    if e.is_empty() {
        return Ok(1);
    }
    let groups = grouped_join_size(query, instance, e, y)?;
    Ok(groups.values().copied().max().unwrap_or(0))
}

/// [`aggregate_query`] evaluated through a [`SubJoinCache`], so that
/// enumerating many subsets `E` of the same instance shares sub-join work
/// (the `2^m` enumeration of residual sensitivity in particular).
pub fn aggregate_query_cached(
    cache: &mut SubJoinCache<'_>,
    e: &[usize],
    y: &[AttrId],
) -> Result<u128> {
    if e.is_empty() {
        return Ok(1);
    }
    Ok(cache.join_rels(e)?.max_group_weight(y)?)
}

/// [`boundary_query`] evaluated through a [`SubJoinCache`].
pub fn boundary_query_cached(cache: &mut SubJoinCache<'_>, e: &[usize]) -> Result<u128> {
    if e.is_empty() {
        return Ok(1);
    }
    let boundary = cache.query().boundary(e)?;
    aggregate_query_cached(cache, e, &boundary)
}

/// [`aggregate_query`] evaluated through a [`ShardedSubJoinCache`], the
/// concurrency-safe variant pool workers call while enumerating many subsets
/// of the same instance in parallel.
///
/// Routes through [`ShardedSubJoinCache::max_group_weight`], so terminal
/// masks fold count-only under the cache's aggregate-pushdown mode instead of
/// materialising tuples nobody reads; the value is byte-identical either way.
pub fn aggregate_query_sharded(
    cache: &ShardedSubJoinCache<'_>,
    e: &[usize],
    y: &[AttrId],
    par: Parallelism,
) -> Result<u128> {
    if e.is_empty() {
        return Ok(1);
    }
    let mask = cache.mask_of(e)?;
    Ok(cache.max_group_weight(mask, y, par)?)
}

/// [`boundary_query`] evaluated through a [`ShardedSubJoinCache`].
pub fn boundary_query_sharded(
    cache: &ShardedSubJoinCache<'_>,
    e: &[usize],
    par: Parallelism,
) -> Result<u128> {
    if e.is_empty() {
        return Ok(1);
    }
    let boundary = cache.query().boundary(e)?;
    aggregate_query_sharded(cache, e, &boundary, par)
}

/// The maximum boundary query `T_E(I) = T_{E, ∂E}(I)` of Equation (1).
pub fn boundary_query(query: &JoinQuery, instance: &Instance, e: &[usize]) -> Result<u128> {
    if e.is_empty() {
        return Ok(1);
    }
    let boundary = query.boundary(e)?;
    aggregate_query(query, instance, e, &boundary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpsyn_relational::{Attribute, Relation, Schema};

    fn ids(v: &[u16]) -> Vec<AttrId> {
        v.iter().map(|&x| AttrId(x)).collect()
    }

    fn two_table() -> (JoinQuery, Instance) {
        let q = JoinQuery::two_table(8, 8, 8);
        let r1 = Relation::from_tuples(
            ids(&[0, 1]),
            vec![(vec![0, 0], 1), (vec![1, 0], 2), (vec![2, 1], 1)],
        )
        .unwrap();
        let r2 = Relation::from_tuples(
            ids(&[1, 2]),
            vec![
                (vec![0, 0], 1),
                (vec![0, 1], 1),
                (vec![1, 3], 3),
                (vec![5, 5], 7),
            ],
        )
        .unwrap();
        (q, Instance::new(vec![r1, r2]))
    }

    #[test]
    fn two_table_boundary_queries_are_max_degrees() {
        let (q, inst) = two_table();
        // T_{E={0}}: boundary is {B}; max degree of R1 on B is 3 (value 0).
        assert_eq!(boundary_query(&q, &inst, &[0]).unwrap(), 3);
        // T_{E={1}}: max degree of R2 on B is 7 (value 5).
        assert_eq!(boundary_query(&q, &inst, &[1]).unwrap(), 7);
        // T over both relations: boundary empty, so this is the join size.
        assert_eq!(boundary_query(&q, &inst, &[0, 1]).unwrap(), 9);
        // Empty E: unit by convention.
        assert_eq!(boundary_query(&q, &inst, &[]).unwrap(), 1);
    }

    #[test]
    fn aggregate_query_with_custom_projection() {
        let (q, inst) = two_table();
        // T_{E={1}, y={B,C}} is the maximum frequency of a single tuple of R2.
        assert_eq!(aggregate_query(&q, &inst, &[1], &ids(&[1, 2])).unwrap(), 7);
        // T_{E={1}, y=∅} is the total size of R2.
        assert_eq!(aggregate_query(&q, &inst, &[1], &[]).unwrap(), 12);
    }

    #[test]
    fn path_query_boundaries() {
        // R1(A0,A1), R2(A1,A2), R3(A2,A3), with a chain of matching tuples.
        let q = JoinQuery::path(3, 4).unwrap();
        let mut inst = Instance::empty_for(&q).unwrap();
        inst.relation_mut(0).add(vec![0, 1], 2).unwrap();
        inst.relation_mut(1).add(vec![1, 2], 3).unwrap();
        inst.relation_mut(2).add(vec![2, 3], 5).unwrap();
        // E = {0,1}: boundary {A2}; join of R1⋈R2 grouped by A2 → 6.
        assert_eq!(boundary_query(&q, &inst, &[0, 1]).unwrap(), 6);
        // E = {1,2}: boundary {A1}; join of R2⋈R3 grouped by A1 → 15.
        assert_eq!(boundary_query(&q, &inst, &[1, 2]).unwrap(), 15);
        // E = {0,2}: boundary {A1, A3}... R1 and R3 do not share attributes,
        // so the sub-join is a cross product; grouped by (A1,A3) the max is 10.
        assert_eq!(boundary_query(&q, &inst, &[0, 2]).unwrap(), 10);
    }

    #[test]
    fn empty_instance_boundary_is_zero() {
        let schema = Schema::new(vec![
            Attribute::new("A", 4),
            Attribute::new("B", 4),
            Attribute::new("C", 4),
        ]);
        let q = JoinQuery::new(schema, vec![ids(&[0, 1]), ids(&[1, 2])]).unwrap();
        let inst = Instance::empty_for(&q).unwrap();
        assert_eq!(boundary_query(&q, &inst, &[0]).unwrap(), 0);
        assert_eq!(boundary_query(&q, &inst, &[0, 1]).unwrap(), 0);
    }
}
