//! Global (worst-case) sensitivity bounds and the worst-case error exponents
//! of Appendix B.3.
//!
//! Global sensitivity `GS_count = max_I LS_count(I)` is what a naive Laplace
//! mechanism would have to calibrate to.  Over instances of input size at most
//! `n`:
//!
//! * for set-valued relations (frequencies in `{0,1}`), the AGM bound gives
//!   `T_E(I) ≤ n^{ρ(H_{E,∂E})}`, so `GS ≤ max_i n^{ρ(H_{[m]∖{i}, ∂}) }`;
//! * for general annotated relations the tight bound is `Θ(n^{m-1})`.
//!
//! These quantities are used by the global-sensitivity baseline (to show how
//! much worse it is than residual sensitivity) and by the worst-case error
//! experiment (E8).

use dpsyn_relational::cover::residual_cover_number;
use dpsyn_relational::JoinQuery;

use crate::Result;

/// An upper bound on the global sensitivity of `count(·)` over instances of
/// input size at most `n`.
///
/// * `set_valued = true`: uses the AGM bound on each residual query
///   `H_{[m]∖{i}, ∂}`, i.e. `max_i n^{ρ_i}`.
/// * `set_valued = false`: uses the annotated-relation bound `n^{m-1}`.
pub fn global_sensitivity_bound(query: &JoinQuery, n: u64, set_valued: bool) -> Result<f64> {
    let m = query.num_relations();
    if m == 1 {
        // A single table: adding/removing one record changes the count by 1.
        return Ok(1.0);
    }
    let nf = n as f64;
    if !set_valued {
        return Ok(nf.powi(m as i32 - 1));
    }
    let mut worst: f64 = 1.0;
    for i in 0..m {
        let others: Vec<usize> = (0..m).filter(|&j| j != i).collect();
        let boundary = query.boundary(&others)?;
        let rho = residual_cover_number(query, &others, &boundary)?.unwrap_or((m - 1) as f64);
        worst = worst.max(nf.powf(rho));
    }
    Ok(worst)
}

/// The exponent pair `(ρ(H), max_{E⊊[m]} ρ(H_{E,∂E}))` of the worst-case error
/// bound in Appendix B.3: the error of Theorem 1.5 on set-valued instances of
/// input size `n` is `Õ(√(n^{ρ(H)} · n^{max_E ρ(H_{E,∂E})}))`.
pub fn worst_case_error_exponent(query: &JoinQuery) -> Result<(f64, f64)> {
    let rho_full = dpsyn_relational::fractional_edge_cover_number(query)?;
    let m = query.num_relations();
    let mut rho_residual: f64 = 0.0;
    // Enumerate proper subsets E ⊊ [m].
    for mask in 0u32..((1u32 << m) - 1) {
        let e: Vec<usize> = (0..m).filter(|i| mask & (1 << i) != 0).collect();
        if e.is_empty() {
            continue;
        }
        let boundary = query.boundary(&e)?;
        if let Some(rho) = residual_cover_number(query, &e, &boundary)? {
            rho_residual = rho_residual.max(rho);
        }
    }
    Ok((rho_full, rho_residual))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpsyn_relational::{Instance, Relation};

    #[test]
    fn single_table_global_sensitivity_is_one() {
        let q = JoinQuery::new(
            dpsyn_relational::Schema::uniform(&["A"], 8),
            vec![vec![dpsyn_relational::AttrId(0)]],
        )
        .unwrap();
        assert_eq!(global_sensitivity_bound(&q, 100, true).unwrap(), 1.0);
        assert_eq!(global_sensitivity_bound(&q, 100, false).unwrap(), 1.0);
    }

    #[test]
    fn two_table_bounds() {
        let q = JoinQuery::two_table(8, 8, 8);
        // Set-valued: the residual query {A,B} minus boundary {B} has ρ = 1.
        assert!((global_sensitivity_bound(&q, 50, true).unwrap() - 50.0).abs() < 1e-9);
        // Annotated: n^{m-1} = n.
        assert!((global_sensitivity_bound(&q, 50, false).unwrap() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn annotated_bound_grows_with_m() {
        let q = JoinQuery::star(3, 8).unwrap();
        assert!((global_sensitivity_bound(&q, 10, false).unwrap() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn global_bound_dominates_local_sensitivity_of_concrete_instances() {
        // Build a skewed two-table instance of size n and check LS ≤ GS bound.
        let q = JoinQuery::two_table(64, 64, 64);
        let mut inst = Instance::empty_for(&q).unwrap();
        let n_half = 20u64;
        for j in 0..n_half {
            inst.relation_mut(0).add(vec![j, 0], 1).unwrap();
            inst.relation_mut(1).add(vec![0, j], 1).unwrap();
        }
        let ls = crate::local_sensitivity(&q, &inst).unwrap() as f64;
        let gs = global_sensitivity_bound(&q, inst.input_size(), true).unwrap();
        assert!(ls <= gs + 1e-9, "LS {ls} must not exceed GS bound {gs}");
    }

    #[test]
    fn worst_case_exponents_for_common_queries() {
        let (rho, rho_res) = worst_case_error_exponent(&JoinQuery::two_table(4, 4, 4)).unwrap();
        assert!((rho - 2.0).abs() < 1e-6);
        assert!((rho_res - 1.0).abs() < 1e-6);

        let (rho, rho_res) = worst_case_error_exponent(&JoinQuery::triangle(4)).unwrap();
        assert!((rho - 1.5).abs() < 1e-6);
        // For the triangle, removing one relation leaves a path of two
        // relations whose boundary is its two endpoints; ρ of the residual is 1.
        assert!(rho_res >= 1.0 - 1e-6);
    }

    #[test]
    fn relation_helper_used_by_docs_compiles() {
        // Keep a tiny usage of Relation in this module so the example in the
        // crate docs stays honest about the types involved.
        let r = Relation::new(vec![dpsyn_relational::AttrId(0)]).unwrap();
        assert!(r.is_empty());
    }
}
