//! Execution settings shared by the sensitivity computations.
//!
//! Every sensitivity entry point has a `*_with` variant accepting a
//! [`SensitivityConfig`]; the plain variants use [`SensitivityConfig::default`].
//! Results are **byte-identical** at every parallelism level (the engine's
//! parallel loops merge in deterministic partition order — see
//! `dpsyn_relational::exec`), so the knob trades only wall-clock time, never
//! output.

use dpsyn_relational::{Instance, Parallelism};

/// Instances with fewer distinct tuples than this across all relations run
/// the sequential code paths even when a multi-thread [`Parallelism`] is
/// requested — pool and shard-lock overhead would dominate the tiny joins.
/// Results are identical either way; only wall-clock differs.
pub(crate) const MIN_PAR_INSTANCE: usize = 2048;

/// Whether `instance` is below the [`MIN_PAR_INSTANCE`] parallelism
/// threshold.
pub(crate) fn is_small_instance(instance: &Instance) -> bool {
    let mut total = 0usize;
    for i in 0..instance.num_relations() {
        total += instance.relation(i).distinct_count();
        if total >= MIN_PAR_INSTANCE {
            return false;
        }
    }
    true
}

/// Tunables for the sensitivity computations.
///
/// Currently a single knob: how many worker threads the subset enumerations,
/// probe loops and edit sweeps may use.  The default resolves to the
/// machine's available cores (or the `DPSYN_THREADS` environment variable);
/// [`SensitivityConfig::sequential`] pins the exact single-threaded code
/// path the crate used before the parallel execution layer existed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SensitivityConfig {
    /// Worker threads available to one sensitivity computation.
    pub parallelism: Parallelism,
}

impl SensitivityConfig {
    /// The sequential configuration (one worker, no spawned threads).
    pub fn sequential() -> Self {
        SensitivityConfig {
            parallelism: Parallelism::SEQUENTIAL,
        }
    }

    /// A configuration with exactly `n` worker threads.
    pub fn with_threads(n: usize) -> Self {
        SensitivityConfig {
            parallelism: Parallelism::threads(n),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_constructors() {
        assert!(SensitivityConfig::sequential().parallelism.is_sequential());
        assert_eq!(SensitivityConfig::with_threads(4).parallelism.get(), 4);
        assert!(SensitivityConfig::default().parallelism.get() >= 1);
    }
}
