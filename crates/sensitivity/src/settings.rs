//! Execution settings shared by the sensitivity computations.
//!
//! Every sensitivity entry point is a method of
//! [`SensitivityOps`](crate::SensitivityOps) on [`ExecContext`]; the plain
//! free functions build a throwaway context from
//! [`SensitivityConfig::default`].  Results are **byte-identical** at every
//! parallelism level: the engine's parallel loops are morsel-driven with
//! work stealing — workers *claim* morsels in a nondeterministic order, but
//! every result is tagged with its morsel index and merged in morsel order
//! (see `dpsyn_relational::exec`) — so the knobs trade only wall-clock
//! time, never output.

use dpsyn_relational::{ExecContext, Parallelism, DEFAULT_CACHE_SLOTS, DEFAULT_MIN_PAR_INSTANCE};

/// Default threshold below which sensitivity computations take the
/// sequential code paths (re-exported engine default; see
/// [`SensitivityConfig::min_par_instance`]).
pub(crate) const MIN_PAR_INSTANCE: usize = DEFAULT_MIN_PAR_INSTANCE;

/// Tunables for the sensitivity computations.
///
/// Two knobs: how many worker threads the subset enumerations, probe loops
/// and edit sweeps may use, and the instance size below which the sequential
/// code paths run regardless (pool and shard-lock overhead would dominate
/// tiny joins).  The parallelism default resolves to the machine's available
/// cores (or the `DPSYN_THREADS` environment variable);
/// [`SensitivityConfig::sequential`] pins the exact single-threaded code
/// path the crate used before the parallel execution layer existed.
///
/// A config converts into a throwaway [`ExecContext`] via
/// [`SensitivityConfig::to_context`]; for cross-call sub-join cache reuse,
/// hold a long-lived context (or a `dpsyn::Session`) instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SensitivityConfig {
    /// Worker threads available to one sensitivity computation.
    pub parallelism: Parallelism,
    /// Instances with fewer distinct tuples than this (summed across
    /// relations) run the sequential code paths even when a multi-thread
    /// [`Parallelism`] is requested.  Results are identical either way;
    /// only wall-clock differs.  Defaults to the engine's
    /// [`DEFAULT_MIN_PAR_INSTANCE`].
    pub min_par_instance: usize,
    /// Number of `(query, instance)` slots the context's persistent cache
    /// LRU keeps warm at once (lattices, full joins and delta plans).
    /// Defaults to the engine's [`DEFAULT_CACHE_SLOTS`]; one slot reproduces
    /// the historical single-instance behaviour.
    pub cache_slots: usize,
}

impl Default for SensitivityConfig {
    fn default() -> Self {
        SensitivityConfig {
            parallelism: Parallelism::default(),
            min_par_instance: MIN_PAR_INSTANCE,
            cache_slots: DEFAULT_CACHE_SLOTS,
        }
    }
}

impl SensitivityConfig {
    /// The sequential configuration (one worker, no spawned threads).
    pub fn sequential() -> Self {
        SensitivityConfig {
            parallelism: Parallelism::SEQUENTIAL,
            ..SensitivityConfig::default()
        }
    }

    /// A configuration with exactly `n` worker threads.
    pub fn with_threads(n: usize) -> Self {
        SensitivityConfig {
            parallelism: Parallelism::threads(n),
            ..SensitivityConfig::default()
        }
    }

    /// Sets the small-instance sequential-fallback threshold.
    pub fn with_min_par_instance(mut self, min_par_instance: usize) -> Self {
        self.min_par_instance = min_par_instance;
        self
    }

    /// Sets the context cache LRU's slot capacity (clamped to at least 1).
    pub fn with_cache_slots(mut self, cache_slots: usize) -> Self {
        self.cache_slots = cache_slots.max(1);
        self
    }

    /// Builds a fresh (cold-cache) execution context carrying these
    /// settings.  The legacy `*_with` entry points call this once per
    /// invocation; a long-lived context additionally reuses its sub-join
    /// lattice across calls.
    pub fn to_context(&self) -> ExecContext {
        ExecContext::new(self.parallelism)
            .with_min_par_instance(self.min_par_instance)
            .with_cache_slots(self.cache_slots)
    }
}

impl From<SensitivityConfig> for ExecContext {
    fn from(config: SensitivityConfig) -> Self {
        config.to_context()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_constructors() {
        assert!(SensitivityConfig::sequential().parallelism.is_sequential());
        assert_eq!(SensitivityConfig::with_threads(4).parallelism.get(), 4);
        assert!(SensitivityConfig::default().parallelism.get() >= 1);
        assert_eq!(
            SensitivityConfig::default().min_par_instance,
            MIN_PAR_INSTANCE
        );
    }

    #[test]
    fn threshold_is_configurable_and_flows_into_the_context() {
        let config = SensitivityConfig::sequential().with_min_par_instance(7);
        assert_eq!(config.min_par_instance, 7);
        let ctx = config.to_context();
        assert_eq!(ctx.min_par_instance(), 7);
        assert!(ctx.parallelism().is_sequential());
        let ctx2: ExecContext = SensitivityConfig::with_threads(3).into();
        assert_eq!(ctx2.parallelism().get(), 3);
        assert_eq!(ctx2.min_par_instance(), MIN_PAR_INSTANCE);
    }

    #[test]
    fn cache_slots_are_configurable_and_flow_into_the_context() {
        assert_eq!(
            SensitivityConfig::default().cache_slots,
            DEFAULT_CACHE_SLOTS
        );
        let config = SensitivityConfig::sequential().with_cache_slots(2);
        assert_eq!(config.to_context().cache_slots(), 2);
        // Clamped to at least one slot.
        assert_eq!(
            SensitivityConfig::sequential()
                .with_cache_slots(0)
                .to_context()
                .cache_slots(),
            1
        );
    }
}
