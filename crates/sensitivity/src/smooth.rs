//! Smooth upper bounds on local sensitivity (Nissim–Raskhodnikova–Smith \[40\])
//! and brute-force checkers used by the test-suite.
//!
//! A function `S^β` is a β-smooth upper bound on `LS_count` when
//!
//! 1. `S^β(I) ≥ LS_count(I)` for every instance `I`, and
//! 2. `S^β(I') ≤ e^β · S^β(I)` for every pair of neighbouring instances.
//!
//! Residual sensitivity satisfies both (it is a constant-factor approximation
//! of the *smallest* such bound — smooth sensitivity — while being computable
//! in polynomial time).  The checkers below verify the two conditions
//! empirically on concrete instances, and compute a restricted brute-force
//! version of smooth sensitivity for cross-validation.

use std::collections::BTreeSet;

use dpsyn_relational::{Instance, JoinQuery, NeighborEdit, Value};

use crate::context_ext::SensitivityOps;
use crate::error::SensitivityError;
use crate::local::local_sensitivity;
use crate::settings::SensitivityConfig;
use crate::Result;

/// Enumerates the candidate neighbouring **edits** of `instance`: all
/// single-copy removals plus additions of candidate tuples drawn from the
/// cross product of per-attribute active values (plus one fresh value per
/// attribute when the domain allows it).  This covers the edits that can
/// change degree structure.
///
/// This is the edit-level form of the crate-private `candidate_neighbors`
/// generator: the delta-join
/// sweeps evaluate these edits through a
/// [`DeltaJoinPlan`](dpsyn_relational::DeltaJoinPlan) without materialising
/// the edited instances, in exactly this order (so the delta and
/// materializing explorations coincide).
pub fn candidate_edits(query: &JoinQuery, instance: &Instance) -> Result<Vec<NeighborEdit>> {
    let mut out = Vec::new();
    out.extend(instance.removal_edits());
    // Additions: for each relation, build candidate values per attribute.
    for i in 0..query.num_relations() {
        let attrs = query.relation_attrs(i);
        let mut per_attr: Vec<Vec<Value>> = Vec::with_capacity(attrs.len());
        for (pos, &attr) in attrs.iter().enumerate() {
            let mut values: BTreeSet<Value> = BTreeSet::new();
            for (t, _) in instance.relation(i).iter() {
                values.insert(t[pos]);
            }
            // Also consider values appearing in other relations on the same
            // attribute (they create new join partners) and one fresh value.
            for j in 0..query.num_relations() {
                if j == i {
                    continue;
                }
                if let Ok(p) =
                    dpsyn_relational::tuple::project_positions(query.relation_attrs(j), &[attr])
                {
                    for (t, _) in instance.relation(j).iter() {
                        values.insert(t[p[0]]);
                    }
                }
            }
            let domain = query
                .schema()
                .domain_size(attr)
                .map_err(SensitivityError::from)?;
            for fresh in 0..domain {
                if !values.contains(&fresh) {
                    values.insert(fresh);
                    break;
                }
            }
            if values.is_empty() {
                values.insert(0);
            }
            per_attr.push(values.into_iter().collect());
        }
        // Cartesian product of candidate values (bounded in tests by small
        // instances; guard against blow-up with a hard cap).
        let mut tuples: Vec<Vec<Value>> = vec![Vec::new()];
        for values in &per_attr {
            let mut next = Vec::with_capacity(tuples.len() * values.len());
            for t in &tuples {
                for &v in values {
                    let mut t2 = t.clone();
                    t2.push(v);
                    next.push(t2);
                }
            }
            tuples = next;
            if tuples.len() > 4096 {
                break;
            }
        }
        for tuple in tuples.into_iter().take(4096) {
            if tuple.len() != attrs.len() {
                continue;
            }
            out.push(NeighborEdit::Add { relation: i, tuple });
        }
    }
    Ok(out)
}

/// Generates the set of candidate neighbouring **instances** of `instance`
/// (the materialised form of [`candidate_edits`], applied in the same
/// order).  Retained for the materializing cross-check paths and the
/// smoothness checker; the production sweeps consume the edits directly.
pub(crate) fn candidate_neighbors(query: &JoinQuery, instance: &Instance) -> Result<Vec<Instance>> {
    candidate_edits(query, instance)?
        .iter()
        .map(|edit| instance.apply_edit(edit).map_err(SensitivityError::from))
        .collect()
}

/// Empirically checks that `bound` behaves as a β-smooth upper bound *around*
/// `instance`: it dominates the local sensitivity of `instance`, and changes
/// by at most a factor `e^β` when moving to any candidate neighbour.
///
/// `bound` receives each instance and must return the candidate smooth bound
/// for it.  Returns the first violation found, if any.
pub fn is_smooth_upper_bound(
    query: &JoinQuery,
    instance: &Instance,
    beta: f64,
    mut bound: impl FnMut(&Instance) -> Result<f64>,
) -> Result<Option<String>> {
    let here = bound(instance)?;
    let ls = local_sensitivity(query, instance)? as f64;
    if here + 1e-9 < ls {
        return Ok(Some(format!(
            "bound {here} is below the local sensitivity {ls}"
        )));
    }
    let factor = beta.exp();
    for neighbor in candidate_neighbors(query, instance)? {
        let there = bound(&neighbor)?;
        if there > factor * here + 1e-9 {
            return Ok(Some(format!(
                "bound grows too fast: {here} → {there} exceeds e^β factor {factor}"
            )));
        }
        if here > factor * there + 1e-9 {
            return Ok(Some(format!(
                "bound shrinks too fast: {here} → {there} exceeds e^β factor {factor}"
            )));
        }
    }
    Ok(None)
}

/// A restricted brute-force smooth sensitivity:
/// `max_{k ≤ max_radius} e^{-βk} · max_{I' : dist(I, I') ≤ k} LS(I')`,
/// exploring neighbours through the candidate-edit generator above.
///
/// Because additions are restricted to candidate tuples, the result is a
/// *lower bound* on the true smooth sensitivity; since residual sensitivity
/// upper-bounds smooth sensitivity, tests check
/// `smooth_sensitivity_bruteforce ≤ RS^β`.
///
/// Each frontier level's edit sweep runs **incrementally**: one delta-join
/// plan per frontier instance prices every candidate edit at a hash probe
/// instead of a full re-join (see `dpsyn_relational::delta`), with results
/// byte-identical to the materializing oracle
/// ([`smooth_sensitivity_bruteforce_materializing`]).
pub fn smooth_sensitivity_bruteforce(
    query: &JoinQuery,
    instance: &Instance,
    beta: f64,
    max_radius: usize,
) -> Result<f64> {
    SensitivityConfig::default()
        .to_context()
        .smooth_sensitivity_bruteforce(query, instance, beta, max_radius)
}

/// The materializing cross-check oracle for [`smooth_sensitivity_bruteforce`]:
/// same exploration, but every candidate neighbour is materialised as an
/// [`Instance`] and its local sensitivity recomputed from scratch.  Kept (and
/// exercised by the randomized property tests) so the delta path always has
/// an independent reference; prefer the delta-maintained entry point
/// everywhere else — it is the same value at a fraction of the cost.
pub fn smooth_sensitivity_bruteforce_materializing(
    query: &JoinQuery,
    instance: &Instance,
    beta: f64,
    max_radius: usize,
) -> Result<f64> {
    SensitivityConfig::default()
        .to_context()
        .smooth_sensitivity_bruteforce_materializing(query, instance, beta, max_radius)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::residual::residual_sensitivity;
    use dpsyn_relational::{AttrId, Relation};

    fn ids(v: &[u16]) -> Vec<AttrId> {
        v.iter().map(|&x| AttrId(x)).collect()
    }

    fn small_two_table() -> (JoinQuery, Instance) {
        let q = JoinQuery::two_table(6, 6, 6);
        let r1 = Relation::from_tuples(
            ids(&[0, 1]),
            vec![(vec![0, 0], 1), (vec![1, 0], 1), (vec![2, 1], 1)],
        )
        .unwrap();
        let r2 =
            Relation::from_tuples(ids(&[1, 2]), vec![(vec![0, 0], 1), (vec![1, 1], 2)]).unwrap();
        (q, Instance::new(vec![r1, r2]))
    }

    #[test]
    fn residual_sensitivity_passes_the_smoothness_check() {
        let (q, inst) = small_two_table();
        let beta = 0.3;
        let violation = is_smooth_upper_bound(&q, &inst, beta, |i| {
            Ok(residual_sensitivity(&q, i, beta)?.value)
        })
        .unwrap();
        assert_eq!(violation, None);
    }

    #[test]
    fn local_sensitivity_itself_fails_the_smoothness_check() {
        // LS is not a smooth upper bound: a single edit can multiply it.
        // Build an instance where adding one R2 tuple with join value 0 jumps
        // LS from 1 to 3.
        let q = JoinQuery::two_table(8, 8, 8);
        let r1 = Relation::from_tuples(
            ids(&[0, 1]),
            vec![(vec![0, 0], 1), (vec![1, 0], 1), (vec![2, 0], 1)],
        )
        .unwrap();
        let r2 = Relation::from_tuples(ids(&[1, 2]), vec![(vec![5, 5], 1)]).unwrap();
        let inst = Instance::new(vec![r1, r2]);
        let beta = 0.1;
        let violation =
            is_smooth_upper_bound(&q, &inst, beta, |i| Ok(local_sensitivity(&q, i)? as f64))
                .unwrap();
        assert!(violation.is_some(), "LS should violate β-smoothness");
    }

    #[test]
    fn bruteforce_smooth_sensitivity_is_dominated_by_residual() {
        let (q, inst) = small_two_table();
        for &beta in &[0.2, 0.5, 1.0] {
            let ss = smooth_sensitivity_bruteforce(&q, &inst, beta, 2).unwrap();
            let rs = residual_sensitivity(&q, &inst, beta).unwrap().value;
            assert!(
                ss <= rs + 1e-6,
                "beta = {beta}: brute-force SS {ss} exceeds RS {rs}"
            );
            // And both dominate the local sensitivity.
            let ls = local_sensitivity(&q, &inst).unwrap() as f64;
            assert!(ss >= ls - 1e-9);
        }
    }

    #[test]
    fn bruteforce_rejects_bad_beta() {
        let (q, inst) = small_two_table();
        assert!(smooth_sensitivity_bruteforce(&q, &inst, 0.0, 1).is_err());
    }

    #[test]
    fn delta_bruteforce_equals_materializing_oracle() {
        let (q, inst) = small_two_table();
        for &beta in &[0.2, 0.5, 1.0] {
            for radius in 1..=3usize {
                let delta = smooth_sensitivity_bruteforce(&q, &inst, beta, radius).unwrap();
                let oracle =
                    smooth_sensitivity_bruteforce_materializing(&q, &inst, beta, radius).unwrap();
                assert_eq!(
                    delta.to_bits(),
                    oracle.to_bits(),
                    "beta {beta}, radius {radius}"
                );
            }
        }
    }

    #[test]
    fn candidate_edits_and_neighbors_align() {
        let (q, inst) = small_two_table();
        let edits = candidate_edits(&q, &inst).unwrap();
        let neighbors = candidate_neighbors(&q, &inst).unwrap();
        assert_eq!(edits.len(), neighbors.len());
        for (edit, neighbor) in edits.iter().zip(&neighbors) {
            assert_eq!(&inst.apply_edit(edit).unwrap(), neighbor);
            assert!(inst.is_neighbor_of(neighbor));
        }
        // Removals come first, in removal_edits order.
        let removals = inst.removal_edits();
        assert_eq!(&edits[..removals.len()], removals.as_slice());
    }
}
