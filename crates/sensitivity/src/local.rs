//! Local sensitivity of the counting join-size query.
//!
//! Adding (or removing) one copy of a tuple `t* ∈ D_i` changes `count(I)` by
//! exactly the number of join results the tuple participates in, i.e. the
//! total weight of the sub-join of the *other* relations restricted to the
//! values `t*` takes on the shared attributes.  Maximising over `t*` and `i`
//! gives
//!
//! ```text
//! LS_count(I) = max_{i ∈ [m]} T_{[m]∖{i}}(I)
//! ```
//!
//! which for the two-table query of Section 3.1 specialises to
//! `Δ = max_b max{deg_{1,B}(b), deg_{2,B}(b)}`.

use dpsyn_relational::degree::two_table_max_shared_degree;
use dpsyn_relational::{Instance, JoinQuery, SubJoinCache};

use crate::boundary::boundary_query;
use crate::context_ext::SensitivityOps;
use crate::settings::SensitivityConfig;
use crate::Result;

/// Local sensitivity `LS_count(I) = max_i T_{[m]∖{i}}(I)` of the counting
/// query, at the default execution settings.
///
/// The `m` size-`(m-1)` sub-joins overlap heavily, so they are evaluated
/// through one shared [`SubJoinCache`].  Builds a throwaway context per
/// call; hold an [`dpsyn_relational::ExecContext`] (or a `dpsyn::Session`)
/// to reuse the sub-join lattice across calls.
pub fn local_sensitivity(query: &JoinQuery, instance: &Instance) -> Result<u128> {
    SensitivityConfig::default()
        .to_context()
        .local_sensitivity(query, instance)
}

/// The historical single-threaded path (also the m ≥ 32 fallback, which
/// avoids the bitmask cache's representation limit).  Used by the smooth
/// brute-force neighbour sweeps, whose per-neighbour instances deliberately
/// bypass the persistent context cache.
pub(crate) fn local_sensitivity_seq(query: &JoinQuery, instance: &Instance) -> Result<u128> {
    let m = query.num_relations();
    let mut best = 0u128;
    let mut cache = if m < 32 {
        Some(SubJoinCache::new(query, instance)?)
    } else {
        None
    };
    for i in 0..m {
        let others: Vec<usize> = (0..m).filter(|&j| j != i).collect();
        let t = match &mut cache {
            Some(cache) => {
                // Transient top-level join: the m size-(m-1) results are
                // each consumed once and can dwarf the inputs, so only
                // their shared prefixes are memoised.
                let boundary = query.boundary(&others)?;
                if others.is_empty() {
                    1
                } else {
                    cache
                        .join_rels_transient(&others)?
                        .max_group_weight(&boundary)?
                }
            }
            None => boundary_query(query, instance, &others)?,
        };
        best = best.max(t);
    }
    Ok(best)
}

/// The two-table specialisation `Δ = max_b max{deg_{1,B}(b), deg_{2,B}(b)}`
/// (Section 3.1).  Identical to [`local_sensitivity`] on two-table queries but
/// cheaper, and the form used by Algorithm 1 and Algorithm 5.
pub fn two_table_local_sensitivity(query: &JoinQuery, instance: &Instance) -> Result<u64> {
    Ok(two_table_max_shared_degree(query, instance)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpsyn_relational::{join_size, AttrId, NeighborEdit, Relation};

    fn ids(v: &[u16]) -> Vec<AttrId> {
        v.iter().map(|&x| AttrId(x)).collect()
    }

    fn two_table() -> (JoinQuery, Instance) {
        let q = JoinQuery::two_table(8, 8, 8);
        let r1 = Relation::from_tuples(
            ids(&[0, 1]),
            vec![(vec![0, 0], 1), (vec![1, 0], 2), (vec![2, 1], 1)],
        )
        .unwrap();
        let r2 = Relation::from_tuples(
            ids(&[1, 2]),
            vec![(vec![0, 0], 1), (vec![0, 1], 1), (vec![1, 3], 3)],
        )
        .unwrap();
        (q, Instance::new(vec![r1, r2]))
    }

    #[test]
    fn two_table_forms_agree() {
        let (q, inst) = two_table();
        let ls = local_sensitivity(&q, &inst).unwrap();
        let delta = two_table_local_sensitivity(&q, &inst).unwrap();
        assert_eq!(ls, delta as u128);
        assert_eq!(delta, 3); // deg1(B=0) = 3 dominates.
    }

    #[test]
    fn local_sensitivity_bounds_every_single_edit() {
        // |count(I) - count(I')| ≤ LS(I) for every neighbouring I' obtained by
        // removing an existing tuple, and for targeted additions.
        let (q, inst) = two_table();
        let ls = local_sensitivity(&q, &inst).unwrap();
        let base = join_size(&q, &inst).unwrap();
        for edit in inst.removal_edits() {
            let neighbor = inst.apply_edit(&edit).unwrap();
            let diff = join_size(&q, &neighbor).unwrap().abs_diff(base);
            assert!(diff <= ls, "diff {diff} exceeds LS {ls}");
        }
        // Adding the highest-impact tuple achieves the bound: a new R2 tuple
        // with B = 0 joins with 3 existing R1 tuples.
        let add = NeighborEdit::Add {
            relation: 1,
            tuple: vec![0, 7],
        };
        let neighbor = inst.apply_edit(&add).unwrap();
        assert_eq!(join_size(&q, &neighbor).unwrap() - base, ls);
    }

    #[test]
    fn parallel_local_sensitivity_matches_sequential() {
        // Sized past MIN_PAR_INSTANCE so the pool path actually runs.
        let q = JoinQuery::star(4, 64).unwrap();
        let mut inst = Instance::empty_for(&q).unwrap();
        for r in 0..4usize {
            for hub in 0..52u64 {
                for petal in 0..10u64 {
                    inst.relation_mut(r)
                        .add(vec![hub, (hub + petal + r as u64) % 64], 1 + r as u64)
                        .unwrap();
                }
            }
        }
        let seq = SensitivityConfig::sequential()
            .to_context()
            .local_sensitivity(&q, &inst)
            .unwrap();
        for threads in [2usize, 4, 7] {
            let par = SensitivityConfig::with_threads(threads)
                .to_context()
                .local_sensitivity(&q, &inst)
                .unwrap();
            assert_eq!(par, seq, "threads {threads}");
        }
    }

    #[test]
    fn empty_instance_has_zero_local_sensitivity() {
        let q = JoinQuery::two_table(4, 4, 4);
        let inst = Instance::empty_for(&q).unwrap();
        assert_eq!(local_sensitivity(&q, &inst).unwrap(), 0);
    }

    #[test]
    fn star_join_local_sensitivity() {
        // Star with hub B: R1(B,A1), R2(B,A2), R3(B,A3).
        let q = JoinQuery::star(3, 8).unwrap();
        let mut inst = Instance::empty_for(&q).unwrap();
        // Hub value 0: 2 tuples in R1, 3 in R2, 4 in R3.
        for a in 0..2u64 {
            inst.relation_mut(0).add(vec![0, a], 1).unwrap();
        }
        for a in 0..3u64 {
            inst.relation_mut(1).add(vec![0, a], 1).unwrap();
        }
        for a in 0..4u64 {
            inst.relation_mut(2).add(vec![0, a], 1).unwrap();
        }
        // Adding one R1 tuple with hub 0 creates 3·4 = 12 new join results,
        // which is the largest single-tuple impact.
        assert_eq!(local_sensitivity(&q, &inst).unwrap(), 12);
    }

    #[test]
    fn fig1_instance_has_local_sensitivity_n() {
        // Figure 1 (left): R1 = {(a_j, b_1)}_j, R2 = {(b_1, c_j)}_j, join size n².
        let n = 16u64;
        let q = JoinQuery::two_table(n, n, n);
        let mut inst = Instance::empty_for(&q).unwrap();
        for j in 0..n {
            inst.relation_mut(0).add(vec![j, 0], 1).unwrap();
            inst.relation_mut(1).add(vec![0, j], 1).unwrap();
        }
        assert_eq!(local_sensitivity(&q, &inst).unwrap(), n as u128);
        assert_eq!(join_size(&q, &inst).unwrap(), (n * n) as u128);
    }
}
