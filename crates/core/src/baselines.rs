//! Differentially private *baselines* that the paper's algorithms are compared
//! against in the experiments.
//!
//! * [`IndependentLaplaceBaseline`] answers every query of the workload
//!   separately with Laplace noise, splitting the budget across the `|Q|`
//!   queries (basic composition).  Its error necessarily grows with `|Q|`,
//!   which is the motivation (Section 1.2) for releasing synthetic data
//!   instead.
//! * The same struct with [`SensitivityChoice::Global`] calibrates the noise
//!   to a worst-case (global) sensitivity bound instead of the
//!   instance-specific residual sensitivity, quantifying how much the smooth
//!   sensitivity machinery buys.

use dpsyn_noise::{Laplace, PrivacyParams, TruncatedLaplace};
use dpsyn_query::{AnswerOps, AnswerSet, QueryFamily};
use dpsyn_relational::{ExecContext, Instance, JoinQuery};
use dpsyn_sensitivity::{global_sensitivity_bound, SensitivityConfig, SensitivityOps};
use rand::Rng;

use crate::error::ReleaseError;
use crate::Result;

/// Which sensitivity the per-query Laplace noise is calibrated to.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SensitivityChoice {
    /// A private over-estimate of the residual sensitivity (as in
    /// Algorithm 3): noise scales with the instance at hand.
    Residual,
    /// The worst-case global sensitivity bound over instances of input size at
    /// most `n_upper` (annotated-relation bound `n^{m-1}`); `n_upper` is
    /// treated as public.
    Global {
        /// Public input-size bound.
        n_upper: u64,
    },
}

/// Per-query Laplace answering under basic composition.
#[derive(Debug, Clone)]
pub struct IndependentLaplaceBaseline {
    sensitivity: SensitivityChoice,
    config: SensitivityConfig,
}

impl Default for IndependentLaplaceBaseline {
    fn default() -> Self {
        IndependentLaplaceBaseline {
            sensitivity: SensitivityChoice::Residual,
            config: SensitivityConfig::default(),
        }
    }
}

impl IndependentLaplaceBaseline {
    /// Creates the baseline with the given sensitivity calibration.
    pub fn new(sensitivity: SensitivityChoice) -> Self {
        IndependentLaplaceBaseline {
            sensitivity,
            config: SensitivityConfig::default(),
        }
    }

    /// The execution settings in use.
    pub fn sensitivity_config(&self) -> SensitivityConfig {
        self.config
    }

    /// Answers every query of the workload privately, splitting `(ε, δ)`
    /// across queries under basic composition.
    ///
    /// The per-query mechanism adds Laplace noise of scale `Δ̃ / ε_q` where
    /// `ε_q = ε/(2|Q|)` and `Δ̃` is the selected sensitivity bound: every
    /// linear query has per-tuple influence at most the counting query's, so
    /// a single bound covers the whole workload.
    pub fn answer_all<R: Rng>(
        &self,
        query: &JoinQuery,
        instance: &Instance,
        family: &QueryFamily,
        params: PrivacyParams,
        rng: &mut R,
    ) -> Result<AnswerSet> {
        self.answer_all_in(
            &self.config.to_context(),
            query,
            instance,
            family,
            params,
            rng,
        )
    }

    /// [`IndependentLaplaceBaseline::answer_all`] through an explicit
    /// execution context: the residual-sensitivity estimate and the true
    /// workload answers both flow through `ctx`'s persistent caches, so
    /// repeated baseline runs over one instance reuse the sub-join lattice
    /// and the full join.  Answers are byte-identical to
    /// [`IndependentLaplaceBaseline::answer_all`] at the same seed.
    pub fn answer_all_in<R: Rng>(
        &self,
        ctx: &ExecContext,
        query: &JoinQuery,
        instance: &Instance,
        family: &QueryFamily,
        params: PrivacyParams,
        rng: &mut R,
    ) -> Result<AnswerSet> {
        if params.delta() <= 0.0 {
            return Err(ReleaseError::UnsupportedPrivacyParams(
                "the Laplace baseline uses a residual-sensitivity estimate that needs δ > 0"
                    .to_string(),
            ));
        }
        let half = params.halve();
        let per_query_epsilon = half.epsilon() / family.len() as f64;

        // Sensitivity bound shared by all queries.
        let delta_tilde = match self.sensitivity {
            SensitivityChoice::Residual => {
                let lambda = params.lambda();
                let beta = 1.0 / lambda;
                let rs = ctx.residual_sensitivity(query, instance, beta)?;
                let tlap = TruncatedLaplace::calibrated(half.epsilon(), half.delta(), beta)?;
                rs.value.max(1.0) * tlap.sample(rng).exp()
            }
            SensitivityChoice::Global { n_upper } => {
                global_sensitivity_bound(query, n_upper, false)?
            }
        };

        let truth = ctx.answer_all_on_instance(query, instance, family)?;
        let laplace = Laplace::calibrated(delta_tilde, per_query_epsilon)?;
        let answers: Vec<f64> = (0..family.len())
            .map(|i| truth.get(i) + laplace.sample(rng))
            .collect();
        Ok(AnswerSet::new(answers))
    }

    /// The sensitivity calibration in use.
    pub fn sensitivity(&self) -> SensitivityChoice {
        self.sensitivity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpsyn_noise::seeded_rng;

    fn small_instance() -> (JoinQuery, Instance) {
        let q = JoinQuery::two_table(8, 8, 8);
        let mut inst = Instance::empty_for(&q).unwrap();
        for a in 0..6u64 {
            inst.relation_mut(0).add(vec![a, a % 3], 1).unwrap();
            inst.relation_mut(1).add(vec![a % 3, a], 1).unwrap();
        }
        (q, inst)
    }

    #[test]
    fn answers_have_the_right_length_and_are_reproducible() {
        let (q, inst) = small_instance();
        let params = PrivacyParams::new(1.0, 1e-5).unwrap();
        let run = |seed| {
            let mut rng = seeded_rng(seed);
            let family = QueryFamily::random_sign(&q, 10, &mut rng).unwrap();
            IndependentLaplaceBaseline::default()
                .answer_all(&q, &inst, &family, params, &mut rng)
                .unwrap()
        };
        let a = run(3);
        let b = run(3);
        assert_eq!(a.len(), 10);
        assert_eq!(a.values(), b.values());
    }

    #[test]
    fn error_grows_with_workload_size() {
        // The ℓ∞ error of per-query Laplace should degrade markedly as |Q|
        // grows (per-query budget shrinks), while the truth stays bounded.
        let (q, inst) = small_instance();
        let params = PrivacyParams::new(1.0, 1e-5).unwrap();
        let baseline = IndependentLaplaceBaseline::default();
        let mut errors = Vec::new();
        for &size in &[4usize, 64, 1024] {
            // Average over a few repetitions to smooth the noise.
            let mut total = 0.0;
            let reps = 5;
            for rep in 0..reps {
                let mut rng = seeded_rng(1000 + rep);
                let family = QueryFamily::random_sign(&q, size, &mut rng).unwrap();
                let truth = family.answer_all_on_instance(&q, &inst).unwrap();
                let noisy = baseline
                    .answer_all(&q, &inst, &family, params, &mut rng)
                    .unwrap();
                total += noisy.linf_distance(&truth).unwrap();
            }
            errors.push(total / reps as f64);
        }
        assert!(
            errors[2] > 4.0 * errors[0],
            "expected error to grow with |Q|: {errors:?}"
        );
    }

    #[test]
    fn global_calibration_is_much_noisier_than_residual() {
        let (q, inst) = small_instance();
        let params = PrivacyParams::new(1.0, 1e-5).unwrap();
        let mut rng = seeded_rng(11);
        let family = QueryFamily::random_sign(&q, 16, &mut rng).unwrap();
        let truth = family.answer_all_on_instance(&q, &inst).unwrap();

        let avg_error = |choice: SensitivityChoice, seed: u64| {
            let baseline = IndependentLaplaceBaseline::new(choice);
            let reps = 10;
            let mut total = 0.0;
            for rep in 0..reps {
                let mut rng = seeded_rng(seed + rep);
                let ans = baseline
                    .answer_all(&q, &inst, &family, params, &mut rng)
                    .unwrap();
                total += ans.linf_distance(&truth).unwrap();
            }
            total / reps as f64
        };

        // Global sensitivity for annotated two-table instances of size 12 is
        // 12, while the residual sensitivity of this concrete instance is ~2-3
        // plus smoothing; but the residual path also spends budget on the
        // sensitivity estimate, so compare against a generous factor.
        let residual = avg_error(SensitivityChoice::Residual, 100);
        let global = avg_error(
            SensitivityChoice::Global {
                n_upper: inst.input_size() * 100,
            },
            200,
        );
        assert!(
            global > residual,
            "global-calibrated noise ({global}) should exceed residual-calibrated noise ({residual})"
        );
    }

    #[test]
    fn rejects_pure_dp() {
        let (q, inst) = small_instance();
        let mut rng = seeded_rng(1);
        let family = QueryFamily::counting(&q);
        assert!(IndependentLaplaceBaseline::default()
            .answer_all(
                &q,
                &inst,
                &family,
                PrivacyParams::pure(1.0).unwrap(),
                &mut rng
            )
            .is_err());
    }
}
