//! The paper's release algorithms: differentially private synthetic data over
//! multiple tables.
//!
//! This crate is the primary contribution of the reproduction — it implements
//! every algorithm of *"Differentially Private Data Release over Multiple
//! Tables"* (PODS 2023):
//!
//! | algorithm | paper | module |
//! |-----------|-------|--------|
//! | `TwoTable` | Algorithm 1 | [`two_table`] |
//! | `PMW` (sub-routine) | Algorithm 2 | `dpsyn-pmw` |
//! | `MultiTable` | Algorithm 3 | [`multi_table`] |
//! | `Uniformize` + `Partition-TwoTable` | Algorithms 4, 5 | [`uniformize`] |
//! | `Partition-Hierarchical` + `Decompose` | Algorithms 6, 7 | [`hierarchical`] |
//! | flawed strawmen of §3.1 | Figure 1 / Example 3.1 | [`flawed`] |
//! | per-query Laplace & global-sensitivity baselines | §1.2 motivation | [`baselines`] |
//! | closed-form bound predictions | Theorems 1.5, 3.3, 3.5, 4.4, 4.5, App. B.3 | [`bounds`] |
//!
//! Every algorithm consumes an explicit RNG and a [`dpsyn_noise::PrivacyParams`]
//! budget, and produces a [`SyntheticRelease`] from which arbitrary linear
//! queries can be answered by post-processing.
//!
//! All six releasing algorithms additionally implement the object-safe
//! [`Mechanism`] trait ([`mechanism`]), the single entry point behind
//! `dpsyn::Session::release`: trait-object dispatch plus an
//! [`dpsyn_relational::ExecContext`] whose persistent sub-join lattice makes
//! repeated releases over one instance reuse the sensitivity machinery's
//! `2^m` subset enumeration.  Outputs are byte-identical to the direct
//! per-algorithm calls at the same seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baselines;
pub mod bounds;
pub mod error;
pub mod flawed;
pub mod hierarchical;
pub mod mechanism;
pub mod multi_table;
pub mod release;
pub mod two_table;
pub mod uniformize;

pub use baselines::{IndependentLaplaceBaseline, SensitivityChoice};
pub use error::ReleaseError;
pub use flawed::{FlawedJoinAsOne, FlawedPadAfter};
pub use hierarchical::{
    partition_hierarchical, verify_hierarchical_partition, HierarchicalConfig, HierarchicalPart,
    HierarchicalRelease,
};
pub use mechanism::Mechanism;
pub use multi_table::MultiTable;
pub use release::{ReleaseKind, SyntheticRelease};
pub use two_table::TwoTable;
pub use uniformize::{
    partition_two_table, verify_two_table_partition, PartitionBucket, UniformizedTwoTable,
};

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, ReleaseError>;
