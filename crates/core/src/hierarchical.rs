//! Algorithms 6 and 7: uniformization for hierarchical join queries, and the
//! corresponding release (Algorithm 4 instantiated with the hierarchical
//! partition).
//!
//! The attribute tree of a hierarchical query is walked bottom-up
//! (Algorithm 6); at each attribute `x`, every current sub-instance is further
//! decomposed (Algorithm 7) by bucketing the tuples over `x`'s ancestors `y`
//! according to the noisy degree `deg_{atom(x), y}` — exactly the maximum
//! degrees that, by Lemma 4.8, control the residual sensitivity.  Each
//! resulting sub-instance is characterised by a *degree configuration*
//! (Definition 4.9) and is released with `MultiTable` (Algorithm 3); the union
//! of the synthetic datasets is returned.
//!
//! ### Privacy accounting
//!
//! Unlike the two-table case, a tuple of a relation *outside* `atom(x)` is
//! replicated into every bucket, so a tuple can reach up to `ℓ^c` sub-instances
//! (Lemma 4.10), and the overall guarantee degrades to
//! `(O(ℓ^c)·ε, O(ℓ^c)·δ)` (Lemma 4.11).  This implementation makes the
//! accounting concrete and conservative: given a *target* `(ε, δ)`, it
//! computes the replication bound `G` from the query structure and a public
//! upper bound on the input size, and runs every noisy degree computation and
//! every per-sub-instance `MultiTable` call with budget `(ε/(2G·V), δ/(2G·V))`
//! and `(ε/(2G), δ/(2G))` respectively (`V` = number of tree attributes), so
//! that the released union satisfies the target `(ε, δ)` under the Lemma 4.11
//! bookkeeping.  Utility therefore degrades with `G`; the experiments use
//! small trees where `G` stays moderate.

use std::collections::BTreeMap;

use dpsyn_noise::{PrivacyParams, TruncatedLaplace};
use dpsyn_pmw::{Histogram, PmwConfig};
use dpsyn_query::QueryFamily;
use dpsyn_relational::{deg_multi, AttrId, AttributeTree, ExecContext, Instance, JoinQuery, Value};
use dpsyn_sensitivity::config::{bucket_of, DegreeConfiguration};
use dpsyn_sensitivity::SensitivityConfig;
use rand::Rng;

use crate::error::ReleaseError;
use crate::multi_table::MultiTable;
use crate::release::{ReleaseKind, SyntheticRelease};
use crate::Result;

/// Configuration of the hierarchical release.
#[derive(Debug, Clone, Copy)]
pub struct HierarchicalConfig {
    /// PMW configuration forwarded to the per-sub-instance `MultiTable` calls.
    pub pmw: PmwConfig,
    /// Public upper bound on the input size, used only to bound the number of
    /// degree buckets `ℓ = ⌈log₂(n_upper/λ)⌉ + 1` in the privacy accounting.
    /// When `None`, the actual input size is used (matching the paper's
    /// parameterisation of ℓ by `n`, at the cost of treating `n` as public).
    pub n_upper: Option<u64>,
    /// Caps the number of sub-instances (a safety valve against pathological
    /// bucket explosions; never hit in the paper's regimes).
    pub max_sub_instances: usize,
}

impl Default for HierarchicalConfig {
    fn default() -> Self {
        HierarchicalConfig {
            pmw: PmwConfig::default(),
            n_upper: None,
            max_sub_instances: 4096,
        }
    }
}

/// One sub-instance produced by the hierarchical partition, together with the
/// degree configuration that characterises it (Lemma 4.10, third property).
#[derive(Debug, Clone)]
pub struct HierarchicalPart {
    /// The sub-instance.
    pub sub_instance: Instance,
    /// The degree configuration σ (bucket per decomposed attribute).
    pub configuration: DegreeConfiguration,
}

/// Algorithm 7: `Decompose_{ε,δ}(I, x)` — splits one sub-instance by the
/// noisy degrees of attribute `x` over its ancestors.
fn decompose<R: Rng>(
    query: &JoinQuery,
    tree: &AttributeTree,
    part: &HierarchicalPart,
    attr: AttrId,
    params: PrivacyParams,
    lambda: f64,
    rng: &mut R,
) -> Result<Vec<HierarchicalPart>> {
    let relations = query.atom(attr);
    if relations.is_empty() {
        // Attribute unused by the query: nothing to decompose.
        return Ok(vec![part.clone()]);
    }
    let ancestors = tree.ancestors(attr);
    let instance = &part.sub_instance;

    // Noisy degree per ancestor tuple (Algorithm 7, lines 3-6).  Only tuples
    // with non-zero degree matter: zero-degree ancestor tuples induce empty
    // sub-relations.
    let degrees = deg_multi(query, instance, &relations, &ancestors)?;
    let tlap = TruncatedLaplace::calibrated(params.epsilon(), params.delta(), 1.0)?;
    let mut bucket_members: BTreeMap<usize, std::collections::BTreeSet<Vec<Value>>> =
        BTreeMap::new();
    for (tuple, deg) in &degrees {
        let noisy = *deg as f64 + tlap.sample(rng);
        bucket_members
            .entry(bucket_of(noisy, lambda))
            .or_default()
            .insert(tuple.clone());
    }
    if bucket_members.is_empty() {
        // The relations of atom(x) are empty in this sub-instance; keep it as
        // a single (still empty on those relations) part labelled bucket 1.
        let mut configuration = part.configuration.clone();
        configuration.set(attr, 1);
        return Ok(vec![HierarchicalPart {
            sub_instance: instance.clone(),
            configuration,
        }]);
    }

    // Build one sub-instance per non-empty bucket (lines 7-10).
    let mut out = Vec::with_capacity(bucket_members.len());
    for (bucket, members) in bucket_members {
        let mut relations_out = Vec::with_capacity(instance.num_relations());
        for j in 0..instance.num_relations() {
            if relations.contains(&j) {
                relations_out.push(instance.relation(j).restrict(&ancestors, &members)?);
            } else {
                relations_out.push(instance.relation(j).clone());
            }
        }
        let mut configuration = part.configuration.clone();
        configuration.set(attr, bucket);
        out.push(HierarchicalPart {
            sub_instance: Instance::new(relations_out),
            configuration,
        });
    }
    Ok(out)
}

/// Algorithm 6: `Partition-Hierarchical_{ε,δ}(H, I)` — walks the attribute
/// tree bottom-up and decomposes every current sub-instance at every
/// attribute.  `params` is the budget of a *single* noisy-degree mechanism;
/// the caller is responsible for the Lemma 4.11 accounting.
pub fn partition_hierarchical<R: Rng>(
    query: &JoinQuery,
    instance: &Instance,
    per_step: PrivacyParams,
    lambda: f64,
    max_sub_instances: usize,
    rng: &mut R,
) -> Result<Vec<HierarchicalPart>> {
    let tree = AttributeTree::build(query)
        .map_err(|e| ReleaseError::RequiresHierarchical(e.to_string()))?;
    let mut parts = vec![HierarchicalPart {
        sub_instance: instance.clone(),
        configuration: DegreeConfiguration::new(),
    }];
    for &attr in tree.bottom_up_order() {
        let mut next = Vec::new();
        for part in &parts {
            next.extend(decompose(query, &tree, part, attr, per_step, lambda, rng)?);
            if next.len() > max_sub_instances {
                return Err(ReleaseError::InvalidConfig(format!(
                    "hierarchical partition produced more than {max_sub_instances} sub-instances; \
                     raise HierarchicalConfig::max_sub_instances"
                )));
            }
        }
        parts = next;
    }
    Ok(parts)
}

/// Algorithm 4 instantiated with the hierarchical partition: decompose, run
/// `MultiTable` on every sub-instance, union the releases.
#[derive(Debug, Clone, Default)]
pub struct HierarchicalRelease {
    config: HierarchicalConfig,
}

impl HierarchicalRelease {
    /// Creates the algorithm with a custom configuration.
    pub fn new(config: HierarchicalConfig) -> Self {
        HierarchicalRelease { config }
    }

    /// The replication bound `G = ℓ^c` of Lemma 4.10/4.11 used by the privacy
    /// accounting: `ℓ` is the number of degree buckets and `c` the maximum,
    /// over relations `j`, of the number of tree attributes whose `atom` does
    /// not contain `j` (each such decomposition can replicate `R_j`'s tuples).
    pub fn replication_bound(query: &JoinQuery, n_upper: u64, lambda: f64) -> Result<f64> {
        let tree = AttributeTree::build(query)
            .map_err(|e| ReleaseError::RequiresHierarchical(e.to_string()))?;
        let ell = ((n_upper.max(2) as f64 / lambda.max(1e-9)).log2().ceil()).max(1.0) + 1.0;
        let mut c_max = 0usize;
        for j in 0..query.num_relations() {
            let c = tree
                .bottom_up_order()
                .iter()
                .filter(|&&x| !query.atom(x).contains(&j) && !query.atom(x).is_empty())
                .count();
            c_max = c_max.max(c);
        }
        Ok(ell.powi(c_max as i32))
    }

    /// Runs the hierarchical release with an overall target of `params`.
    ///
    /// Builds a throwaway execution context; use
    /// [`HierarchicalRelease::release_in`] (or `dpsyn::Session::release`) to
    /// share a long-lived context.
    pub fn release<R: Rng>(
        &self,
        query: &JoinQuery,
        instance: &Instance,
        family: &QueryFamily,
        params: PrivacyParams,
        rng: &mut R,
    ) -> Result<SyntheticRelease> {
        self.release_in(
            &SensitivityConfig::default().to_context(),
            query,
            instance,
            family,
            params,
            rng,
        )
    }

    /// Runs the hierarchical release through an explicit execution context
    /// (forwarded to the per-sub-instance `MultiTable` calls).  Output is
    /// byte-identical to [`HierarchicalRelease::release`] at the same seed.
    ///
    /// Note on caching: the decomposition produces *distinct* sub-instances,
    /// so their sensitivity computations cannot share lattice entries within
    /// one release — but each part claims its own slot in the context's
    /// cache LRU (with its own cost-based join plan, so every per-part
    /// lattice decomposes along the planner's smallest intermediates), and
    /// **repeated** releases over the same instance and seed (which
    /// re-derive the same parts) find up to
    /// [`dpsyn_relational::DEFAULT_CACHE_SLOTS`] of them warm.  Raise the
    /// slot capacity (`SensitivityConfig::with_cache_slots`) to cover larger
    /// partitions.
    pub fn release_in<R: Rng>(
        &self,
        ctx: &ExecContext,
        query: &JoinQuery,
        instance: &Instance,
        family: &QueryFamily,
        params: PrivacyParams,
        rng: &mut R,
    ) -> Result<SyntheticRelease> {
        if params.delta() <= 0.0 {
            return Err(ReleaseError::UnsupportedPrivacyParams(
                "the hierarchical release requires δ > 0".to_string(),
            ));
        }
        let lambda = params.lambda();
        let n_upper = self.config.n_upper.unwrap_or_else(|| instance.input_size());
        let replication = Self::replication_bound(query, n_upper, lambda)?;

        let tree_size = AttributeTree::build(query)
            .map_err(|e| ReleaseError::RequiresHierarchical(e.to_string()))?
            .len()
            .max(1);

        // Lemma 4.11 bookkeeping: partition noise gets (ε/2, δ/2) divided by
        // the replication bound and the number of decomposition steps; each
        // MultiTable call gets (ε/2, δ/2) divided by the replication bound
        // (sub-instances sharing a tuple compose sequentially up to G times;
        // disjoint ones compose in parallel).
        let per_step = PrivacyParams::new(
            params.epsilon() / (2.0 * replication * tree_size as f64),
            (params.delta() / (2.0 * replication * tree_size as f64)).max(f64::MIN_POSITIVE),
        )?;
        let per_release = PrivacyParams::new(
            params.epsilon() / (2.0 * replication),
            (params.delta() / (2.0 * replication)).max(f64::MIN_POSITIVE),
        )?;

        let parts = partition_hierarchical(
            query,
            instance,
            per_step,
            lambda,
            self.config.max_sub_instances,
            rng,
        )?;

        let inner = MultiTable::new(self.config.pmw);
        let mut combined: Option<SyntheticRelease> = None;
        for part in &parts {
            // Skip sub-instances with no data at all; their release would be
            // pure padding noise and the paper's union only ranges over
            // non-empty buckets.
            if part.sub_instance.input_size() == 0 {
                continue;
            }
            let release =
                inner.release_in(ctx, query, &part.sub_instance, family, per_release, rng)?;
            match &mut combined {
                None => combined = Some(release),
                Some(c) => c.absorb(&release)?,
            }
        }

        let combined = match combined {
            Some(c) => c,
            None => SyntheticRelease::new(
                query.clone(),
                Histogram::zeros(query, self.config.pmw.max_domain_cells)?,
                ReleaseKind::Hierarchical,
                params,
                0.0,
                0,
                0.0,
            ),
        };

        Ok(SyntheticRelease::new(
            query.clone(),
            combined.histogram().clone(),
            ReleaseKind::Hierarchical,
            params,
            combined.noisy_total(),
            combined.parts(),
            combined.delta_tilde(),
        ))
    }

    /// Exposes the partition for diagnostics (degree configurations and
    /// per-part instances), using the same per-step budget split as
    /// [`HierarchicalRelease::release`].
    pub fn partition<R: Rng>(
        &self,
        query: &JoinQuery,
        instance: &Instance,
        params: PrivacyParams,
        rng: &mut R,
    ) -> Result<Vec<HierarchicalPart>> {
        let lambda = params.lambda();
        let n_upper = self.config.n_upper.unwrap_or_else(|| instance.input_size());
        let replication = Self::replication_bound(query, n_upper, lambda)?;
        let tree_size = AttributeTree::build(query)
            .map_err(|e| ReleaseError::RequiresHierarchical(e.to_string()))?
            .len()
            .max(1);
        let per_step = PrivacyParams::new(
            params.epsilon() / (2.0 * replication * tree_size as f64),
            (params.delta() / (2.0 * replication * tree_size as f64)).max(f64::MIN_POSITIVE),
        )?;
        partition_hierarchical(
            query,
            instance,
            per_step,
            lambda,
            self.config.max_sub_instances,
            rng,
        )
    }
}

/// Checks the first property of Lemma 4.10 on a concrete partition: the join
/// results of the sub-instances are disjoint and their union is the join
/// result of the original instance (i.e. join sizes add up and every original
/// join tuple is covered exactly once).
pub fn verify_hierarchical_partition(
    query: &JoinQuery,
    instance: &Instance,
    parts: &[HierarchicalPart],
) -> Result<bool> {
    let full = dpsyn_relational::join(query, instance)?;
    let mut recombined: BTreeMap<Vec<Value>, u128> = BTreeMap::new();
    for part in parts {
        let j = dpsyn_relational::join(query, &part.sub_instance)?;
        // The BTreeMap orders keys itself; skip the sorted emit.
        for (t, w) in j.iter_unordered() {
            *recombined.entry(t.to_vec()).or_insert(0) += w;
        }
    }
    let original: BTreeMap<Vec<Value>, u128> = full
        .iter_unordered()
        .map(|(t, w)| (t.to_vec(), w))
        .collect();
    Ok(recombined == original)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpsyn_noise::seeded_rng;
    use dpsyn_relational::join_size;

    /// A small, skewed star instance (hierarchical): hub attribute B with one
    /// heavy hub value and several light ones.
    fn star_instance() -> (JoinQuery, Instance) {
        let q = JoinQuery::star(2, 32).unwrap();
        let mut inst = Instance::empty_for(&q).unwrap();
        // Heavy hub value 0: 8 tuples in each relation.
        for a in 0..8u64 {
            inst.relation_mut(0).add(vec![0, a], 1).unwrap();
            inst.relation_mut(1).add(vec![0, a], 1).unwrap();
        }
        // Light hub values 1..6: single tuple per relation.
        for b in 1..6u64 {
            inst.relation_mut(0).add(vec![b, 0], 1).unwrap();
            inst.relation_mut(1).add(vec![b, 0], 1).unwrap();
        }
        (q, inst)
    }

    #[test]
    fn partition_preserves_the_join_exactly() {
        let (q, inst) = star_instance();
        let per_step = PrivacyParams::new(4.0, 1e-3).unwrap();
        let mut rng = seeded_rng(1);
        let parts = partition_hierarchical(&q, &inst, per_step, 4.0, 4096, &mut rng).unwrap();
        assert!(!parts.is_empty());
        assert!(verify_hierarchical_partition(&q, &inst, &parts).unwrap());
        // Join sizes add up.
        let total: u128 = parts
            .iter()
            .map(|p| join_size(&q, &p.sub_instance).unwrap())
            .sum();
        assert_eq!(total, join_size(&q, &inst).unwrap());
    }

    #[test]
    fn every_part_has_a_complete_degree_configuration() {
        let (q, inst) = star_instance();
        let per_step = PrivacyParams::new(4.0, 1e-3).unwrap();
        let mut rng = seeded_rng(2);
        let parts = partition_hierarchical(&q, &inst, per_step, 4.0, 4096, &mut rng).unwrap();
        let tree = AttributeTree::build(&q).unwrap();
        for part in &parts {
            for &attr in tree.bottom_up_order() {
                assert!(
                    part.configuration.bucket(attr).is_some(),
                    "attribute {attr} missing from configuration"
                );
            }
        }
        // Distinct parts carry distinct configurations.
        let mut configs: Vec<_> = parts.iter().map(|p| p.configuration.clone()).collect();
        configs.sort();
        configs.dedup();
        assert_eq!(configs.len(), parts.len());
    }

    #[test]
    fn replication_bound_is_one_for_two_table_like_trees() {
        // For the two-table query every attribute's atom contains at least one
        // of the two relations, and the only decompositions that replicate are
        // those on attributes missing from a relation: A (missing from R2) and
        // C (missing from R1), so c = 1 and G = ℓ.
        let q = JoinQuery::two_table(16, 16, 16);
        let g = HierarchicalRelease::replication_bound(&q, 100, 10.0).unwrap();
        let ell = ((100.0f64 / 10.0).log2().ceil()) + 1.0;
        assert!((g - ell).abs() < 1e-9, "g = {g}, ell = {ell}");
        // Non-hierarchical queries are rejected.
        assert!(
            HierarchicalRelease::replication_bound(&JoinQuery::path(3, 4).unwrap(), 100, 10.0)
                .is_err()
        );
    }

    #[test]
    fn release_answers_queries_on_hierarchical_instances() {
        let (q, inst) = star_instance();
        let params = PrivacyParams::new(4.0, 1e-3).unwrap();
        let mut rng = seeded_rng(7);
        let family = QueryFamily::random_sign(&q, 6, &mut rng).unwrap();
        let release = HierarchicalRelease::default()
            .release(&q, &inst, &family, params, &mut rng)
            .unwrap();
        assert_eq!(release.kind(), ReleaseKind::Hierarchical);
        assert!(release.parts() >= 1);
        assert_eq!(release.answer_all(&family).unwrap().len(), 6);
        assert!(release.histogram().weights().iter().all(|&w| w >= 0.0));
    }

    #[test]
    fn rejects_non_hierarchical_queries_and_pure_dp() {
        let path = JoinQuery::path(3, 4).unwrap();
        let inst = Instance::empty_for(&path).unwrap();
        let family = QueryFamily::counting(&path);
        let mut rng = seeded_rng(4);
        assert!(matches!(
            HierarchicalRelease::default().release(
                &path,
                &inst,
                &family,
                PrivacyParams::new(1.0, 1e-6).unwrap(),
                &mut rng
            ),
            Err(ReleaseError::RequiresHierarchical(_))
        ));
        let star = JoinQuery::star(2, 4).unwrap();
        let inst = Instance::empty_for(&star).unwrap();
        let family = QueryFamily::counting(&star);
        assert!(matches!(
            HierarchicalRelease::default().release(
                &star,
                &inst,
                &family,
                PrivacyParams::pure(1.0).unwrap(),
                &mut rng
            ),
            Err(ReleaseError::UnsupportedPrivacyParams(_))
        ));
    }

    #[test]
    fn empty_instance_gives_empty_release() {
        let q = JoinQuery::star(2, 8).unwrap();
        let inst = Instance::empty_for(&q).unwrap();
        let params = PrivacyParams::new(1.0, 1e-4).unwrap();
        let mut rng = seeded_rng(9);
        let family = QueryFamily::counting(&q);
        let release = HierarchicalRelease::default()
            .release(&q, &inst, &family, params, &mut rng)
            .unwrap();
        assert_eq!(release.parts(), 0);
        assert_eq!(release.histogram().total(), 0.0);
    }
}
