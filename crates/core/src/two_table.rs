//! Algorithm 1: `TwoTable` — the join-as-one release for two-table queries.
//!
//! ```text
//! 1.  Δ̃ ← Δ + TLap^{τ(ε/2, δ/2, 1)}_{2/ε}          (noisy local sensitivity)
//! 2.  return PMW_{ε/2, δ/2, Δ̃}(I)
//! ```
//!
//! where `Δ = LS_count(I) = max_b max{deg_{1,B}(b), deg_{2,B}(b)}`.  The key
//! point (Section 3.1): the local sensitivity of the two-table counting query
//! itself has global sensitivity 1, so a truncated-Laplace perturbation of `Δ`
//! is private *and* never underestimates `Δ`, which is exactly what PMW needs
//! to pad the noisy join size `n̂` safely.
//!
//! Guarantee (Theorem 3.3): `(ε, δ)`-DP, and with probability
//! `1 − 1/poly(|Q|)` every query of `Q` is answered within
//! `O((√(count(I)·(Δ+λ)) + (Δ+λ)·√λ) · f_upper)`.

use dpsyn_noise::{PrivacyParams, TruncatedLaplace};
use dpsyn_pmw::{Pmw, PmwConfig};
use dpsyn_query::QueryFamily;
use dpsyn_relational::{Instance, JoinQuery};
use dpsyn_sensitivity::two_table_local_sensitivity;
use rand::Rng;

use crate::error::ReleaseError;
use crate::release::{ReleaseKind, SyntheticRelease};
use crate::Result;

/// Algorithm 1: the two-table join-as-one release.
#[derive(Debug, Clone, Default)]
pub struct TwoTable {
    pmw: PmwConfig,
}

impl TwoTable {
    /// Creates the algorithm with a custom PMW configuration.
    pub fn new(pmw: PmwConfig) -> Self {
        TwoTable { pmw }
    }

    /// The PMW configuration in use.
    pub fn pmw_config(&self) -> &PmwConfig {
        &self.pmw
    }

    /// Runs `TwoTable_{ε,δ}(I)` and returns the synthetic release.
    pub fn release<R: Rng>(
        &self,
        query: &JoinQuery,
        instance: &Instance,
        family: &QueryFamily,
        params: PrivacyParams,
        rng: &mut R,
    ) -> Result<SyntheticRelease> {
        if query.num_relations() != 2 {
            return Err(ReleaseError::RequiresTwoTable {
                got: query.num_relations(),
            });
        }
        if params.delta() <= 0.0 {
            return Err(ReleaseError::UnsupportedPrivacyParams(
                "TwoTable requires δ > 0 (truncated-Laplace calibration)".to_string(),
            ));
        }
        let half = params.halve();

        // Line 1: noisy local sensitivity.  LS_count has global sensitivity 1
        // for two-table queries, so sensitivity-1 TLap noise suffices.
        let delta = two_table_local_sensitivity(query, instance)? as f64;
        let tlap = TruncatedLaplace::calibrated(half.epsilon(), half.delta(), 1.0)?;
        let delta_tilde = delta + tlap.sample(rng);

        // Line 2: PMW with the remaining half of the budget.
        let pmw_out = Pmw::new(self.pmw).run(query, instance, family, half, delta_tilde, rng)?;

        Ok(SyntheticRelease::new(
            query.clone(),
            pmw_out.histogram,
            ReleaseKind::TwoTable,
            params,
            pmw_out.noisy_total,
            1,
            delta_tilde,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpsyn_noise::seeded_rng;
    use dpsyn_relational::join_size;

    fn skewed_instance(scale: u64) -> (JoinQuery, Instance) {
        let q = JoinQuery::two_table(8, 8, 8);
        let mut inst = Instance::empty_for(&q).unwrap();
        for a in 0..8u64 {
            inst.relation_mut(0).add(vec![a, 0], scale).unwrap();
        }
        for c in 0..8u64 {
            inst.relation_mut(1).add(vec![0, c], scale).unwrap();
        }
        (q, inst)
    }

    #[test]
    fn rejects_non_two_table_queries_and_pure_dp() {
        let q3 = JoinQuery::star(3, 4).unwrap();
        let inst = Instance::empty_for(&q3).unwrap();
        let family = QueryFamily::counting(&q3);
        let mut rng = seeded_rng(0);
        let err = TwoTable::default()
            .release(
                &q3,
                &inst,
                &family,
                PrivacyParams::new(1.0, 1e-6).unwrap(),
                &mut rng,
            )
            .unwrap_err();
        assert!(matches!(err, ReleaseError::RequiresTwoTable { got: 3 }));

        let q2 = JoinQuery::two_table(4, 4, 4);
        let inst = Instance::empty_for(&q2).unwrap();
        let family = QueryFamily::counting(&q2);
        let err = TwoTable::default()
            .release(
                &q2,
                &inst,
                &family,
                PrivacyParams::pure(1.0).unwrap(),
                &mut rng,
            )
            .unwrap_err();
        assert!(matches!(err, ReleaseError::UnsupportedPrivacyParams(_)));
    }

    #[test]
    fn delta_tilde_never_underestimates_local_sensitivity() {
        let (q, inst) = skewed_instance(2);
        let family = QueryFamily::counting(&q);
        let params = PrivacyParams::new(1.0, 1e-6).unwrap();
        for seed in 0..5u64 {
            let mut rng = seeded_rng(seed);
            let release = TwoTable::default()
                .release(&q, &inst, &family, params, &mut rng)
                .unwrap();
            let ls = two_table_local_sensitivity(&q, &inst).unwrap() as f64;
            assert!(release.delta_tilde() >= ls);
            // The noisy total over-estimates the join size (TLap is non-negative).
            assert!(release.noisy_total() >= join_size(&q, &inst).unwrap() as f64);
        }
    }

    #[test]
    fn release_is_deterministic_given_seed_and_answers_queries() {
        let (q, inst) = skewed_instance(4);
        let params = PrivacyParams::new(2.0, 1e-4).unwrap();
        let run = |seed| {
            let mut rng = seeded_rng(seed);
            let family = QueryFamily::random_sign(&q, 12, &mut rng).unwrap();
            let rel = TwoTable::default()
                .release(&q, &inst, &family, params, &mut rng)
                .unwrap();
            rel.answer_all(&family).unwrap()
        };
        let a = run(9);
        let b = run(9);
        assert_eq!(a.values(), b.values());
    }

    #[test]
    fn counting_query_is_answered_within_the_noisy_padding() {
        // The synthetic data's total mass is count(I) + TLap, so the counting
        // query error is at most the padding 2τ(ε/4, δ/4, Δ̃).
        let (q, inst) = skewed_instance(2);
        let family = QueryFamily::counting(&q);
        let params = PrivacyParams::new(1.0, 1e-6).unwrap();
        let mut rng = seeded_rng(77);
        let release = TwoTable::default()
            .release(&q, &inst, &family, params, &mut rng)
            .unwrap();
        let count = join_size(&q, &inst).unwrap() as f64;
        let answered = release
            .answer(&dpsyn_query::ProductQuery::counting(2))
            .unwrap();
        let padding = dpsyn_noise::truncation_radius(0.25, 2.5e-7, release.delta_tilde()).unwrap();
        assert!(
            (answered - count).abs() <= 2.0 * padding + 1e-6,
            "answered {answered}, count {count}, padding {padding}"
        );
    }
}
