//! Algorithm 4 + Algorithm 5: the uniformized two-table release.
//!
//! Join-as-one calibrates everything to the *largest* degree `Δ`, even when
//! most join values have far smaller degrees (Figure 3).  Uniformization
//! fixes this by partitioning the join values of the shared attribute(s) into
//! geometric degree buckets using *noisy* degrees (Algorithm 5), running the
//! join-as-one release independently on each sub-instance, and returning the
//! union of the synthetic datasets (Algorithm 4).
//!
//! Privacy (Lemma 4.1): the partition is `(ε/2, δ/2)`-DP (adding/removing a
//! tuple changes one degree by one, and the bucket assignment is
//! post-processing of one truncated-Laplace perturbation per join value, which
//! compose in parallel across join values); the per-bucket releases run on
//! disjoint data, so they compose in parallel as well; basic composition over
//! the two phases gives `(ε, δ)`-DP.
//!
//! Utility (Theorem 4.4): the error is bounded by the *uniform-partition* sum
//! `Σ_i √(count(I^i)·2^i·λ)` (plus lower-order terms), which can be polynomially
//! smaller than the `√(count(I)·Δ)` of Algorithm 1 (Example 4.2).

use std::collections::BTreeMap;

use dpsyn_noise::{PrivacyParams, TruncatedLaplace};
use dpsyn_pmw::{Histogram, PmwConfig};
use dpsyn_query::QueryFamily;
use dpsyn_relational::{AttrId, Instance, JoinQuery, Value};
use dpsyn_sensitivity::config::bucket_of;
use rand::Rng;

use crate::error::ReleaseError;
use crate::release::{ReleaseKind, SyntheticRelease};
use crate::two_table::TwoTable;
use crate::Result;

/// One bucket of the two-table partition: the join values assigned to it and
/// the induced sub-instance.
#[derive(Debug, Clone)]
pub struct PartitionBucket {
    /// Bucket index `i` (degrees in `(λ·2^{i-1}, λ·2^i]`).
    pub index: usize,
    /// The join values (tuples over the shared attributes) in this bucket.
    pub values: std::collections::BTreeSet<Vec<Value>>,
    /// The induced sub-instance `(R_1^i, R_2^i)`.
    pub sub_instance: Instance,
}

/// Algorithm 5: `Partition-TwoTable_{ε,δ}(I)` — buckets join values of the
/// shared attribute(s) by their noisy maximum degree.
///
/// Only join values that actually occur in one of the relations are assigned
/// (values with zero degree induce empty sub-relations and contribute nothing
/// to any release, so skipping them changes no output).
pub fn partition_two_table<R: Rng>(
    query: &JoinQuery,
    instance: &Instance,
    params: PrivacyParams,
    rng: &mut R,
) -> Result<Vec<PartitionBucket>> {
    if query.num_relations() != 2 {
        return Err(ReleaseError::RequiresTwoTable {
            got: query.num_relations(),
        });
    }
    if params.delta() <= 0.0 {
        return Err(ReleaseError::UnsupportedPrivacyParams(
            "Partition-TwoTable requires δ > 0".to_string(),
        ));
    }
    let lambda = params.lambda();
    let shared: Vec<AttrId> = query.intersect_attrs(&[0, 1])?;
    let deg1 = instance.relation(0).degree_map(&shared)?;
    let deg2 = instance.relation(1).degree_map(&shared)?;

    // Per-value noisy degree and bucket assignment (Algorithm 5, lines 2-5).
    let tlap = TruncatedLaplace::calibrated(params.epsilon(), params.delta(), 1.0)?;
    let mut keys: std::collections::BTreeSet<Vec<Value>> = deg1.keys().cloned().collect();
    keys.extend(deg2.keys().cloned());
    let mut buckets: BTreeMap<usize, std::collections::BTreeSet<Vec<Value>>> = BTreeMap::new();
    for key in keys {
        let deg = deg1
            .get(&key)
            .copied()
            .unwrap_or(0)
            .max(deg2.get(&key).copied().unwrap_or(0));
        let noisy = deg as f64 + tlap.sample(rng);
        let bucket = bucket_of(noisy, lambda);
        buckets.entry(bucket).or_default().insert(key);
    }

    // Build the sub-instances (lines 6-9).
    let mut out = Vec::with_capacity(buckets.len());
    for (index, values) in buckets {
        let r1 = instance.relation(0).restrict(&shared, &values)?;
        let r2 = instance.relation(1).restrict(&shared, &values)?;
        out.push(PartitionBucket {
            index,
            values,
            sub_instance: Instance::new(vec![r1, r2]),
        });
    }
    Ok(out)
}

/// Algorithm 4 instantiated for two-table queries: partition with Algorithm 5
/// under `(ε/2, δ/2)`, release each sub-instance with Algorithm 1 under
/// `(ε/2, δ/2)` (parallel composition across the disjoint sub-instances), and
/// union the synthetic datasets.
#[derive(Debug, Clone, Default)]
pub struct UniformizedTwoTable {
    pmw: PmwConfig,
}

impl UniformizedTwoTable {
    /// Creates the algorithm with a custom PMW configuration.
    pub fn new(pmw: PmwConfig) -> Self {
        UniformizedTwoTable { pmw }
    }

    /// Runs the uniformized release.
    pub fn release<R: Rng>(
        &self,
        query: &JoinQuery,
        instance: &Instance,
        family: &QueryFamily,
        params: PrivacyParams,
        rng: &mut R,
    ) -> Result<SyntheticRelease> {
        let half = params.halve();
        let buckets = partition_two_table(query, instance, half, rng)?;

        let inner = TwoTable::new(self.pmw);
        let mut combined: Option<SyntheticRelease> = None;
        for bucket in &buckets {
            let release = inner.release(query, &bucket.sub_instance, family, half, rng)?;
            match &mut combined {
                None => combined = Some(release),
                Some(c) => c.absorb(&release)?,
            }
        }

        let combined = match combined {
            Some(c) => c,
            None => {
                // No join values at all: release an all-zero histogram.
                let histogram = Histogram::zeros(query, self.pmw.max_domain_cells)?;
                SyntheticRelease::new(
                    query.clone(),
                    histogram,
                    ReleaseKind::UniformizedTwoTable,
                    params,
                    0.0,
                    0,
                    0.0,
                )
            }
        };

        Ok(SyntheticRelease::new(
            query.clone(),
            combined.histogram().clone(),
            ReleaseKind::UniformizedTwoTable,
            params,
            combined.noisy_total(),
            combined.parts(),
            combined.delta_tilde(),
        ))
    }

    /// Exposes the partition (useful for diagnostics and experiments that
    /// inspect bucket structure).
    pub fn partition<R: Rng>(
        &self,
        query: &JoinQuery,
        instance: &Instance,
        params: PrivacyParams,
        rng: &mut R,
    ) -> Result<Vec<PartitionBucket>> {
        partition_two_table(query, instance, params.halve(), rng)
    }
}

/// Checks that a set of partition buckets truly partitions the input: each
/// tuple of each relation appears, with its full frequency, in exactly one
/// sub-instance.  Used by tests and by the experiment harness as a sanity
/// check (it mirrors the first property of Lemma 4.10 for two tables).
pub fn verify_two_table_partition(instance: &Instance, buckets: &[PartitionBucket]) -> bool {
    for rel_idx in 0..2 {
        let mut recombined: BTreeMap<Vec<Value>, u64> = BTreeMap::new();
        for bucket in buckets {
            for (t, f) in bucket.sub_instance.relation(rel_idx).iter() {
                *recombined.entry(t.clone()).or_insert(0) += f;
            }
        }
        let original: BTreeMap<Vec<Value>, u64> = instance
            .relation(rel_idx)
            .iter()
            .map(|(t, f)| (t.clone(), f))
            .collect();
        if recombined != original {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpsyn_noise::seeded_rng;
    use dpsyn_relational::join_size;
    use dpsyn_sensitivity::two_table_local_sensitivity;

    /// A strongly skewed instance: one very heavy join value and many light ones.
    fn skewed() -> (JoinQuery, Instance) {
        let q = JoinQuery::two_table(64, 64, 64);
        let mut inst = Instance::empty_for(&q).unwrap();
        // Heavy value b = 0: degree 32 on both sides.
        for a in 0..32u64 {
            inst.relation_mut(0).add(vec![a, 0], 1).unwrap();
            inst.relation_mut(1).add(vec![0, a], 1).unwrap();
        }
        // Light values b = 1..20: degree 1 on both sides.
        for b in 1..20u64 {
            inst.relation_mut(0).add(vec![0, b], 1).unwrap();
            inst.relation_mut(1).add(vec![b, 0], 1).unwrap();
        }
        (q, inst)
    }

    #[test]
    fn partition_covers_every_tuple_exactly_once() {
        let (q, inst) = skewed();
        let params = PrivacyParams::new(1.0, 1e-6).unwrap();
        let mut rng = seeded_rng(1);
        let buckets = partition_two_table(&q, &inst, params, &mut rng).unwrap();
        assert!(!buckets.is_empty());
        assert!(verify_two_table_partition(&inst, &buckets));
        // Join sizes of sub-instances add up to the full join size (join
        // values are split, never shared).
        let total: u128 = buckets
            .iter()
            .map(|b| join_size(&q, &b.sub_instance).unwrap())
            .sum();
        assert_eq!(total, join_size(&q, &inst).unwrap());
    }

    #[test]
    fn heavy_and_light_values_land_in_different_buckets() {
        let (q, inst) = skewed();
        // Use a small λ so that the buckets are fine-grained relative to the
        // degree range (ε large, δ moderate).
        let params = PrivacyParams::new(8.0, 1e-3).unwrap();
        let mut rng = seeded_rng(3);
        let buckets = partition_two_table(&q, &inst, params, &mut rng).unwrap();
        assert!(
            buckets.len() >= 2,
            "expected ≥ 2 buckets, got {}",
            buckets.len()
        );
        // The heavy value (degree 32) must be in a strictly higher bucket than
        // the light values (degree 1): noise is at most 2τ(8, 1e-3, 1) ≈ 2.2.
        let bucket_of_value = |v: u64| {
            buckets
                .iter()
                .find(|b| b.values.contains(&vec![v]))
                .map(|b| b.index)
                .unwrap()
        };
        assert!(bucket_of_value(0) > bucket_of_value(5));
    }

    #[test]
    fn per_bucket_local_sensitivity_is_bounded_by_bucket_cap() {
        let (q, inst) = skewed();
        let params = PrivacyParams::new(2.0, 1e-4).unwrap();
        let lambda = params.lambda();
        let mut rng = seeded_rng(5);
        let buckets = partition_two_table(&q, &inst, params, &mut rng).unwrap();
        let noise_cap = 2.0 * dpsyn_noise::truncation_radius(2.0, 1e-4, 1.0).unwrap();
        for bucket in &buckets {
            let ls = two_table_local_sensitivity(&q, &bucket.sub_instance).unwrap() as f64;
            let cap = lambda * (2.0f64).powi(bucket.index as i32);
            // True degree ≤ noisy degree ≤ cap, and noisy ≥ true, so the
            // sub-instance's LS can exceed the cap only if the noise pushed a
            // value *up* a bucket — never down.  Hence LS ≤ cap always, and we
            // additionally sanity-check the slack direction.
            assert!(
                ls <= cap + noise_cap,
                "bucket {} has LS {ls} above cap {cap}",
                bucket.index
            );
        }
    }

    #[test]
    fn uniformized_release_answers_queries_and_unions_parts() {
        let (q, inst) = skewed();
        let params = PrivacyParams::new(2.0, 1e-4).unwrap();
        let mut rng = seeded_rng(11);
        let family = QueryFamily::random_sign(&q, 8, &mut rng).unwrap();
        let algo = UniformizedTwoTable::default();
        let release = algo.release(&q, &inst, &family, params, &mut rng).unwrap();
        assert!(release.parts() >= 1);
        assert_eq!(release.kind(), ReleaseKind::UniformizedTwoTable);
        let answers = release.answer_all(&family).unwrap();
        assert_eq!(answers.len(), family.len());
        // Total synthetic mass over-estimates the true join size.
        assert!(release.noisy_total() >= join_size(&q, &inst).unwrap() as f64);
    }

    #[test]
    fn empty_instance_produces_empty_release() {
        let q = JoinQuery::two_table(8, 8, 8);
        let inst = Instance::empty_for(&q).unwrap();
        let params = PrivacyParams::new(1.0, 1e-6).unwrap();
        let mut rng = seeded_rng(2);
        let family = QueryFamily::counting(&q);
        let release = UniformizedTwoTable::default()
            .release(&q, &inst, &family, params, &mut rng)
            .unwrap();
        assert_eq!(release.parts(), 0);
        assert_eq!(release.histogram().total(), 0.0);
    }

    #[test]
    fn rejects_wrong_arity_and_pure_dp() {
        let q = JoinQuery::star(3, 4).unwrap();
        let inst = Instance::empty_for(&q).unwrap();
        let mut rng = seeded_rng(2);
        assert!(matches!(
            partition_two_table(&q, &inst, PrivacyParams::new(1.0, 1e-6).unwrap(), &mut rng),
            Err(ReleaseError::RequiresTwoTable { got: 3 })
        ));
        let q2 = JoinQuery::two_table(4, 4, 4);
        let inst2 = Instance::empty_for(&q2).unwrap();
        assert!(matches!(
            partition_two_table(&q2, &inst2, PrivacyParams::pure(1.0).unwrap(), &mut rng),
            Err(ReleaseError::UnsupportedPrivacyParams(_))
        ));
    }
}
