//! The [`Mechanism`] trait: one object-safe interface over every release
//! algorithm of the paper.
//!
//! The six concrete mechanisms — [`TwoTable`] (Algorithm 1), [`MultiTable`]
//! (Algorithm 3), [`UniformizedTwoTable`] (Algorithms 4+5),
//! [`HierarchicalRelease`] (Algorithms 4+6+7) and the two deliberately
//! broken strawmen [`FlawedJoinAsOne`] / [`FlawedPadAfter`] of Section 3.1 —
//! all release a [`SyntheticRelease`] from the same inputs (query, instance,
//! workload, privacy budget, RNG).  This trait erases the per-algorithm
//! types so callers can hold `&dyn Mechanism` values, swap algorithms at
//! run time, and drive everything through one entry point
//! (`dpsyn::Session::release`).
//!
//! The trait is **object-safe**: the RNG is taken as `&mut dyn Rng` (the
//! vendored trait's generic conveniences are `Self: Sized`, so the trait
//! object works), and every implementation forwards to the algorithm's
//! inherent `release`/`release_in` method with the identical RNG stream —
//! the released bytes match the direct per-algorithm call at the same seed
//! exactly.
//!
//! Context use: the mechanisms whose cost is dominated by sensitivity
//! machinery ([`MultiTable`], [`HierarchicalRelease`]) route their residual
//! sensitivity computation through the supplied [`ExecContext`], so a warm
//! long-lived
//! context (a `dpsyn::Session`) reuses the `2^m` sub-join lattice across
//! repeated releases over the same instance.  The two-table mechanisms'
//! sensitivity is a cheap degree scan with nothing worth caching; they
//! accept the context for uniformity and ignore it.
//!
//! The per-query Laplace baseline (`IndependentLaplaceBaseline`) is *not* a
//! `Mechanism`: it answers a fixed workload directly and never materialises
//! a synthetic dataset, so it cannot return a [`SyntheticRelease`].  The
//! facade exposes it separately (`dpsyn::Session::answer_baseline`).

use dpsyn_noise::PrivacyParams;
use dpsyn_query::QueryFamily;
use dpsyn_relational::{ExecContext, Instance, JoinQuery};
use rand::Rng;

use crate::flawed::{FlawedJoinAsOne, FlawedPadAfter};
use crate::hierarchical::HierarchicalRelease;
use crate::multi_table::MultiTable;
use crate::release::SyntheticRelease;
use crate::two_table::TwoTable;
use crate::uniformize::UniformizedTwoTable;
use crate::Result;

/// An object-safe release algorithm: consumes a join query, a private
/// instance, a query workload and a privacy budget, and produces a
/// differentially private [`SyntheticRelease`] (modulo the two deliberately
/// flawed strawmen, which exist to demonstrate the Section 3.1 attack).
///
/// Implementations guarantee that `release_ctx` draws the exact same RNG
/// stream as the algorithm's inherent `release` method, so outputs are
/// byte-identical between the two entry points at the same seed — warm or
/// cold context, at any parallelism level.
pub trait Mechanism {
    /// A short stable identifier for reporting and experiment output.
    fn name(&self) -> &'static str;

    /// Runs the release through the given execution context.
    fn release_ctx(
        &self,
        ctx: &ExecContext,
        query: &JoinQuery,
        instance: &Instance,
        family: &QueryFamily,
        params: PrivacyParams,
        rng: &mut dyn Rng,
    ) -> Result<SyntheticRelease>;
}

impl Mechanism for TwoTable {
    fn name(&self) -> &'static str {
        "two_table"
    }

    fn release_ctx(
        &self,
        _ctx: &ExecContext,
        query: &JoinQuery,
        instance: &Instance,
        family: &QueryFamily,
        params: PrivacyParams,
        mut rng: &mut dyn Rng,
    ) -> Result<SyntheticRelease> {
        // Two-table local sensitivity is a single degree scan; there is no
        // lattice work for the context to cache.
        self.release(query, instance, family, params, &mut rng)
    }
}

impl Mechanism for MultiTable {
    fn name(&self) -> &'static str {
        "multi_table"
    }

    fn release_ctx(
        &self,
        ctx: &ExecContext,
        query: &JoinQuery,
        instance: &Instance,
        family: &QueryFamily,
        params: PrivacyParams,
        mut rng: &mut dyn Rng,
    ) -> Result<SyntheticRelease> {
        self.release_in(ctx, query, instance, family, params, &mut rng)
    }
}

impl Mechanism for UniformizedTwoTable {
    fn name(&self) -> &'static str {
        "uniformized_two_table"
    }

    fn release_ctx(
        &self,
        _ctx: &ExecContext,
        query: &JoinQuery,
        instance: &Instance,
        family: &QueryFamily,
        params: PrivacyParams,
        mut rng: &mut dyn Rng,
    ) -> Result<SyntheticRelease> {
        // Per-bucket sub-instances are fresh data; the inner TwoTable
        // releases have no lattice work to share.
        self.release(query, instance, family, params, &mut rng)
    }
}

impl Mechanism for HierarchicalRelease {
    fn name(&self) -> &'static str {
        "hierarchical"
    }

    fn release_ctx(
        &self,
        ctx: &ExecContext,
        query: &JoinQuery,
        instance: &Instance,
        family: &QueryFamily,
        params: PrivacyParams,
        mut rng: &mut dyn Rng,
    ) -> Result<SyntheticRelease> {
        self.release_in(ctx, query, instance, family, params, &mut rng)
    }
}

impl Mechanism for FlawedJoinAsOne {
    fn name(&self) -> &'static str {
        "flawed_join_as_one"
    }

    fn release_ctx(
        &self,
        _ctx: &ExecContext,
        query: &JoinQuery,
        instance: &Instance,
        family: &QueryFamily,
        params: PrivacyParams,
        mut rng: &mut dyn Rng,
    ) -> Result<SyntheticRelease> {
        self.release(query, instance, family, params, &mut rng)
    }
}

impl Mechanism for FlawedPadAfter {
    fn name(&self) -> &'static str {
        "flawed_pad_after"
    }

    fn release_ctx(
        &self,
        _ctx: &ExecContext,
        query: &JoinQuery,
        instance: &Instance,
        family: &QueryFamily,
        params: PrivacyParams,
        mut rng: &mut dyn Rng,
    ) -> Result<SyntheticRelease> {
        self.release(query, instance, family, params, &mut rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpsyn_noise::seeded_rng;

    fn two_table_fixture() -> (JoinQuery, Instance) {
        let q = JoinQuery::two_table(8, 8, 8);
        let mut inst = Instance::empty_for(&q).unwrap();
        for a in 0..6u64 {
            inst.relation_mut(0).add(vec![a, a % 3], 1).unwrap();
            inst.relation_mut(1).add(vec![a % 3, a], 1).unwrap();
        }
        (q, inst)
    }

    #[test]
    fn trait_objects_cover_all_six_mechanisms() {
        let (q, inst) = two_table_fixture();
        let params = PrivacyParams::new(1.0, 1e-5).unwrap();
        let family = QueryFamily::counting(&q);
        let ctx = ExecContext::sequential();
        let mechanisms: Vec<Box<dyn Mechanism>> = vec![
            Box::new(TwoTable::default()),
            Box::new(MultiTable::default()),
            Box::new(UniformizedTwoTable::default()),
            Box::new(HierarchicalRelease::default()),
            Box::new(FlawedJoinAsOne::default()),
            Box::new(FlawedPadAfter::default()),
        ];
        let mut names = Vec::new();
        for mech in &mechanisms {
            let mut rng = seeded_rng(3);
            let release = mech
                .release_ctx(&ctx, &q, &inst, &family, params, &mut rng)
                .unwrap();
            assert!(release.histogram().total().is_finite(), "{}", mech.name());
            names.push(mech.name());
        }
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 6, "mechanism names must be distinct");
    }

    #[test]
    fn dyn_release_matches_direct_release_at_the_same_seed() {
        let (q, inst) = two_table_fixture();
        let params = PrivacyParams::new(1.0, 1e-5).unwrap();
        let ctx = ExecContext::sequential();
        let mut rng = seeded_rng(7);
        let family = QueryFamily::random_sign(&q, 8, &mut rng).unwrap();

        let algo = MultiTable::default();
        let via_trait = {
            let mut rng = seeded_rng(11);
            let m: &dyn Mechanism = &algo;
            m.release_ctx(&ctx, &q, &inst, &family, params, &mut rng)
                .unwrap()
        };
        let direct = {
            let mut rng = seeded_rng(11);
            algo.release(&q, &inst, &family, params, &mut rng).unwrap()
        };
        assert_eq!(via_trait.delta_tilde(), direct.delta_tilde());
        assert_eq!(via_trait.noisy_total(), direct.noisy_total());
        assert_eq!(
            via_trait.answer_all(&family).unwrap().values(),
            direct.answer_all(&family).unwrap().values()
        );
    }
}
