//! Algorithm 3: `MultiTable` — join-as-one release for general join queries
//! using residual sensitivity.
//!
//! ```text
//! 1.  β  ← 1/λ                       with λ = (1/ε)·ln(1/δ)
//! 2.  Δ̃  ← RS^β_count(I) · exp( TLap^{τ(ε/2, δ/2, β)}_{2β/ε} )
//! 3.  return PMW_{ε/2, δ/2, Δ̃}(I)
//! ```
//!
//! For general joins the local sensitivity itself can change wildly between
//! neighbouring instances, so Algorithm 1's trick no longer works.  Instead
//! the algorithm perturbs `ln(RS^β_count(I))`, which has global sensitivity at
//! most `β` because `RS^β` is a β-smooth upper bound on local sensitivity; the
//! truncated-Laplace noise is non-negative, so `Δ̃ ≥ RS^β(I) ≥ LS_count(I)`
//! always holds and the PMW padding remains safe.
//!
//! Guarantee (Theorem 1.5): `(ε, δ)`-DP with error
//! `O((√(count(I)·RS^β(I)) + RS^β(I)·√λ) · f_upper)`.

use dpsyn_noise::{PrivacyParams, TruncatedLaplace};
use dpsyn_pmw::{Pmw, PmwConfig};
use dpsyn_query::QueryFamily;
use dpsyn_relational::{ExecContext, Instance, JoinQuery};
use dpsyn_sensitivity::{SensitivityConfig, SensitivityOps};
use rand::Rng;

use crate::error::ReleaseError;
use crate::release::{ReleaseKind, SyntheticRelease};
use crate::Result;

/// Algorithm 3: the multi-table join-as-one release.
#[derive(Debug, Clone, Default)]
pub struct MultiTable {
    pmw: PmwConfig,
    sensitivity: SensitivityConfig,
}

impl MultiTable {
    /// Creates the algorithm with a custom PMW configuration.
    pub fn new(pmw: PmwConfig) -> Self {
        MultiTable {
            pmw,
            sensitivity: SensitivityConfig::default(),
        }
    }

    /// The PMW configuration in use.
    pub fn pmw_config(&self) -> &PmwConfig {
        &self.pmw
    }

    /// The execution settings in use.
    pub fn sensitivity_config(&self) -> SensitivityConfig {
        self.sensitivity
    }

    /// The smoothing parameter `β = 1/λ` the algorithm will use for the given
    /// privacy parameters.
    pub fn beta(params: PrivacyParams) -> Result<f64> {
        let lambda = params.lambda();
        if !lambda.is_finite() || lambda <= 0.0 {
            return Err(ReleaseError::UnsupportedPrivacyParams(
                "MultiTable requires δ > 0 so that λ = (1/ε)·ln(1/δ) is finite and positive"
                    .to_string(),
            ));
        }
        Ok(1.0 / lambda)
    }

    /// Runs `MultiTable_{ε,δ}(I)` and returns the synthetic release.
    ///
    /// Builds a throwaway execution context from this instance's
    /// [`SensitivityConfig`]; use [`MultiTable::release_in`] (or
    /// `dpsyn::Session::release`) to reuse a long-lived context's sub-join
    /// lattice across repeated releases.
    pub fn release<R: Rng>(
        &self,
        query: &JoinQuery,
        instance: &Instance,
        family: &QueryFamily,
        params: PrivacyParams,
        rng: &mut R,
    ) -> Result<SyntheticRelease> {
        self.release_in(
            &self.sensitivity.to_context(),
            query,
            instance,
            family,
            params,
            rng,
        )
    }

    /// Runs the release through an explicit execution context.
    ///
    /// The residual-sensitivity computation that dominates this algorithm
    /// flows through `ctx`'s persistent sub-join lattice cache — decomposed
    /// along the pair's cost-based join plan — so repeated releases (or
    /// sensitivity sweeps) over the same instance skip the `2^m` subset
    /// enumeration — and because the context keeps an **LRU of per-instance
    /// slots**, interleaved releases over a small working set of instances
    /// (e.g. `HierarchicalRelease`'s parts) stay warm too.  Output is
    /// byte-identical to [`MultiTable::release`] at the same seed — warm or
    /// cold cache, at any parallelism level, under any decomposition.
    pub fn release_in<R: Rng>(
        &self,
        ctx: &ExecContext,
        query: &JoinQuery,
        instance: &Instance,
        family: &QueryFamily,
        params: PrivacyParams,
        rng: &mut R,
    ) -> Result<SyntheticRelease> {
        let beta = Self::beta(params)?;
        let half = params.halve();

        // Line 2: multiplicative truncated-Laplace perturbation of RS^β.
        // ln(RS^β) has global sensitivity β, and the noise is non-negative, so
        // Δ̃ is a private over-estimate of RS^β (and hence of LS).
        let rs = ctx.residual_sensitivity(query, instance, beta)?;
        let tlap = TruncatedLaplace::calibrated(half.epsilon(), half.delta(), beta)?;
        // RS can be 0 only on an empty instance; clamp so ln/exp stay finite.
        let delta_tilde = rs.value.max(1.0) * tlap.sample(rng).exp();

        // Line 3: PMW with the remaining half of the budget.
        let pmw_out = Pmw::new(self.pmw).run(query, instance, family, half, delta_tilde, rng)?;

        Ok(SyntheticRelease::new(
            query.clone(),
            pmw_out.histogram,
            ReleaseKind::MultiTable,
            params,
            pmw_out.noisy_total,
            1,
            delta_tilde,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpsyn_noise::seeded_rng;
    use dpsyn_sensitivity::local_sensitivity;

    fn star_instance() -> (JoinQuery, Instance) {
        let q = JoinQuery::star(3, 6).unwrap();
        let mut inst = Instance::empty_for(&q).unwrap();
        for hub in 0..2u64 {
            for a in 0..3u64 {
                inst.relation_mut(0).add(vec![hub, a], 1).unwrap();
                inst.relation_mut(1).add(vec![hub, a], 1).unwrap();
            }
            inst.relation_mut(2).add(vec![hub, 0], 2).unwrap();
        }
        (q, inst)
    }

    #[test]
    fn beta_is_one_over_lambda() {
        let params = PrivacyParams::new(1.0, 1e-6).unwrap();
        let beta = MultiTable::beta(params).unwrap();
        assert!((beta - 1.0 / params.lambda()).abs() < 1e-12);
        assert!(MultiTable::beta(PrivacyParams::pure(1.0).unwrap()).is_err());
    }

    #[test]
    fn delta_tilde_dominates_residual_and_local_sensitivity() {
        let (q, inst) = star_instance();
        let params = PrivacyParams::new(1.0, 1e-5).unwrap();
        let beta = MultiTable::beta(params).unwrap();
        let rs = dpsyn_sensitivity::residual_sensitivity(&q, &inst, beta)
            .unwrap()
            .value;
        let ls = local_sensitivity(&q, &inst).unwrap() as f64;
        let family = QueryFamily::counting(&q);
        for seed in 0..5u64 {
            let mut rng = seeded_rng(seed);
            let release = MultiTable::default()
                .release(&q, &inst, &family, params, &mut rng)
                .unwrap();
            assert!(release.delta_tilde() >= rs.max(1.0) - 1e-9);
            assert!(release.delta_tilde() >= ls - 1e-9);
        }
    }

    #[test]
    fn release_is_identical_at_every_parallelism_level() {
        // Guards the context plumbing: the execution settings must never
        // leak into the seeded RNG stream or the released values (same seed
        // ⇒ same bytes out).  This instance sits *below* the engine's
        // small-instance parallelism threshold, so all levels take the
        // sequential fallback here; the genuinely parallel sensitivity path
        // is asserted equal to the sequential one on large instances in the
        // sensitivity crate's unit tests and in `tests/properties.rs`
        // (`parallel_sensitivity_matches_sequential_and_naive`).
        let (q, inst) = star_instance();
        let params = PrivacyParams::new(1.0, 1e-5).unwrap();
        let family = QueryFamily::counting(&q);
        let release_at = |threads: usize| {
            let mut rng = seeded_rng(11);
            let ctx = SensitivityConfig::with_threads(threads).to_context();
            MultiTable::default()
                .release_in(&ctx, &q, &inst, &family, params, &mut rng)
                .unwrap()
        };
        let seq = release_at(1);
        for threads in [2usize, 4] {
            let par = release_at(threads);
            assert_eq!(par.delta_tilde(), seq.delta_tilde(), "threads {threads}");
            assert_eq!(par.noisy_total(), seq.noisy_total(), "threads {threads}");
            let a = seq.answer_all(&family).unwrap();
            let b = par.answer_all(&family).unwrap();
            assert_eq!(a.values(), b.values(), "threads {threads}");
        }
        // A warm context (lattice reused from a prior release over the same
        // instance) must also change nothing.
        let ctx = SensitivityConfig::sequential().to_context();
        let mut rng = seeded_rng(11);
        let cold = MultiTable::default()
            .release_in(&ctx, &q, &inst, &family, params, &mut rng)
            .unwrap();
        assert!(ctx.cached_subjoins() > 0, "lattice must persist");
        let mut rng = seeded_rng(11);
        let warm = MultiTable::default()
            .release_in(&ctx, &q, &inst, &family, params, &mut rng)
            .unwrap();
        assert_eq!(warm.delta_tilde(), cold.delta_tilde());
        assert_eq!(warm.delta_tilde(), seq.delta_tilde());
    }

    #[test]
    fn works_on_two_table_queries_too() {
        // MultiTable is strictly more general than TwoTable; on a two-table
        // instance it must produce a valid release as well (with a somewhat
        // larger Δ̃, since RS^β ≥ LS).
        let q = JoinQuery::two_table(6, 6, 6);
        let mut inst = Instance::empty_for(&q).unwrap();
        for a in 0..4u64 {
            inst.relation_mut(0).add(vec![a, 1], 1).unwrap();
            inst.relation_mut(1).add(vec![1, a], 1).unwrap();
        }
        let params = PrivacyParams::new(1.0, 1e-5).unwrap();
        let mut rng = seeded_rng(5);
        let family = QueryFamily::random_sign(&q, 8, &mut rng).unwrap();
        let release = MultiTable::default()
            .release(&q, &inst, &family, params, &mut rng)
            .unwrap();
        assert_eq!(release.parts(), 1);
        assert!(release.noisy_total() >= dpsyn_relational::join_size(&q, &inst).unwrap() as f64);
        assert_eq!(release.answer_all(&family).unwrap().len(), 8);
    }

    #[test]
    fn triangle_query_release() {
        // A non-hierarchical query exercises the general residual-sensitivity
        // path end to end.
        let q = JoinQuery::triangle(4);
        let mut inst = Instance::empty_for(&q).unwrap();
        inst.relation_mut(0).add(vec![0, 1], 1).unwrap();
        inst.relation_mut(1).add(vec![1, 2], 1).unwrap();
        inst.relation_mut(2).add(vec![0, 2], 1).unwrap();
        inst.relation_mut(0).add(vec![1, 1], 1).unwrap();
        let params = PrivacyParams::new(1.0, 1e-4).unwrap();
        let mut rng = seeded_rng(6);
        let family = QueryFamily::counting(&q);
        let release = MultiTable::default()
            .release(&q, &inst, &family, params, &mut rng)
            .unwrap();
        assert!(release.delta_tilde() >= 1.0);
        assert!(release.histogram().total() > 0.0);
    }

    #[test]
    fn empty_instance_is_handled() {
        let q = JoinQuery::star(3, 4).unwrap();
        let inst = Instance::empty_for(&q).unwrap();
        let params = PrivacyParams::new(1.0, 1e-4).unwrap();
        let mut rng = seeded_rng(8);
        let family = QueryFamily::counting(&q);
        let release = MultiTable::default()
            .release(&q, &inst, &family, params, &mut rng)
            .unwrap();
        // Only truncated-Laplace padding mass can appear.
        assert!(release.histogram().total() < 1e4);
    }
}
