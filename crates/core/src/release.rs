//! The common output type of every release algorithm: a differentially
//! private synthetic function `F : dom(x) → ℝ≥0` plus bookkeeping.

use dpsyn_noise::PrivacyParams;
use dpsyn_pmw::Histogram;
use dpsyn_query::{AnswerSet, ProductQuery, QueryFamily};
use dpsyn_relational::{JoinQuery, Value};
use rand::Rng;

use crate::Result;

/// Which algorithm produced a release (for reporting and experiment output).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReleaseKind {
    /// Algorithm 1: two-table join-as-one.
    TwoTable,
    /// Algorithm 3: multi-table join-as-one with residual sensitivity.
    MultiTable,
    /// Algorithm 4 + 5: uniformized two-table release.
    UniformizedTwoTable,
    /// Algorithm 4 + 6 + 7: uniformized hierarchical release.
    Hierarchical,
    /// A strawman or baseline mechanism (see `flawed` / `baselines`).
    Baseline,
}

/// A differentially private synthetic-data release.
///
/// The synthetic function is stored as a dense histogram over the joint
/// domain `dom(x)`; any linear query can be answered from it without touching
/// the private data again (post-processing).
#[derive(Debug, Clone)]
pub struct SyntheticRelease {
    query: JoinQuery,
    histogram: Histogram,
    kind: ReleaseKind,
    guarantee: PrivacyParams,
    noisy_total: f64,
    parts: usize,
    delta_tilde: f64,
}

impl SyntheticRelease {
    /// Assembles a release (used by the algorithms in this crate).
    pub(crate) fn new(
        query: JoinQuery,
        histogram: Histogram,
        kind: ReleaseKind,
        guarantee: PrivacyParams,
        noisy_total: f64,
        parts: usize,
        delta_tilde: f64,
    ) -> Self {
        SyntheticRelease {
            query,
            histogram,
            kind,
            guarantee,
            noisy_total,
            parts,
            delta_tilde,
        }
    }

    /// The join query the release was computed for.
    pub fn query(&self) -> &JoinQuery {
        &self.query
    }

    /// The synthetic histogram `F`.
    pub fn histogram(&self) -> &Histogram {
        &self.histogram
    }

    /// Which algorithm produced the release.
    pub fn kind(&self) -> ReleaseKind {
        self.kind
    }

    /// The `(ε, δ)` guarantee the producing algorithm accounted for.
    pub fn guarantee(&self) -> PrivacyParams {
        self.guarantee
    }

    /// The noisy total mass `n̂` (summed over sub-instances for partitioned
    /// releases).
    pub fn noisy_total(&self) -> f64 {
        self.noisy_total
    }

    /// Number of sub-instances whose synthetic data was unioned into this
    /// release (1 for the join-as-one algorithms).
    pub fn parts(&self) -> usize {
        self.parts
    }

    /// The (largest) private sensitivity bound `Δ̃` passed to PMW.
    pub fn delta_tilde(&self) -> f64 {
        self.delta_tilde
    }

    /// Answers a single linear query from the synthetic data.
    pub fn answer(&self, q: &ProductQuery) -> Result<f64> {
        Ok(self.histogram.answer(&self.query, q)?)
    }

    /// Answers every query of a family from the synthetic data.
    pub fn answer_all(&self, family: &QueryFamily) -> Result<AnswerSet> {
        Ok(AnswerSet::new(
            self.histogram.answer_all(&self.query, family)?,
        ))
    }

    /// The ℓ∞ error of this release against the true answers.
    pub fn linf_error(&self, family: &QueryFamily, truth: &AnswerSet) -> Result<f64> {
        Ok(self.answer_all(family)?.linf_distance(truth)?)
    }

    /// Materialises an integer-valued synthetic dataset (the `F : dom(x) → N`
    /// of the problem statement) by stochastic rounding.
    pub fn to_records<R: Rng>(&self, rng: &mut R) -> Vec<(Vec<Value>, u64)> {
        self.histogram.round_to_records(rng)
    }

    /// Merges another release into this one (cell-wise sum of the synthetic
    /// functions), used to take the union of per-sub-instance releases.
    pub(crate) fn absorb(&mut self, other: &SyntheticRelease) -> Result<()> {
        self.histogram.accumulate(other.histogram())?;
        self.noisy_total += other.noisy_total;
        self.parts += other.parts;
        self.delta_tilde = self.delta_tilde.max(other.delta_tilde);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpsyn_noise::seeded_rng;
    use dpsyn_pmw::histogram::DEFAULT_MAX_CELLS;

    fn release_with_total(total: f64) -> SyntheticRelease {
        let q = JoinQuery::two_table(3, 3, 3);
        let h = Histogram::uniform(&q, total, DEFAULT_MAX_CELLS).unwrap();
        SyntheticRelease::new(
            q,
            h,
            ReleaseKind::TwoTable,
            PrivacyParams::new(1.0, 1e-6).unwrap(),
            total,
            1,
            2.0,
        )
    }

    #[test]
    fn answering_from_release_matches_histogram() {
        let r = release_with_total(27.0);
        let family = QueryFamily::counting(r.query());
        let ans = r.answer_all(&family).unwrap();
        assert!((ans.get(0) - 27.0).abs() < 1e-9);
        assert!((r.answer(&ProductQuery::counting(2)).unwrap() - 27.0).abs() < 1e-9);
    }

    #[test]
    fn absorb_unions_synthetic_data() {
        let mut a = release_with_total(10.0);
        let b = release_with_total(5.0);
        a.absorb(&b).unwrap();
        assert_eq!(a.parts(), 2);
        assert!((a.noisy_total() - 15.0).abs() < 1e-9);
        let family = QueryFamily::counting(a.query());
        assert!((a.answer_all(&family).unwrap().get(0) - 15.0).abs() < 1e-9);
    }

    #[test]
    fn records_roundtrip_preserves_mass_approximately() {
        let r = release_with_total(100.0);
        let mut rng = seeded_rng(3);
        let records = r.to_records(&mut rng);
        let total: u64 = records.iter().map(|(_, c)| c).sum();
        assert!((total as f64 - 100.0).abs() < 30.0);
    }

    #[test]
    fn metadata_accessors() {
        let r = release_with_total(1.0);
        assert_eq!(r.kind(), ReleaseKind::TwoTable);
        assert_eq!(r.parts(), 1);
        assert!((r.delta_tilde() - 2.0).abs() < 1e-12);
        assert!((r.guarantee().epsilon() - 1.0).abs() < 1e-12);
    }
}
