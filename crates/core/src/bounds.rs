//! Closed-form predictions from the paper's theorems, used by the experiment
//! harness to plot measured error against the predicted upper and lower
//! bounds (shape reproduction).
//!
//! All bounds are stated up to constants and poly-logarithmic factors; the
//! harness reports them as guide curves, never as pass/fail thresholds on
//! absolute values.

use dpsyn_pmw::{f_lower, f_upper};

/// Theorem 3.3 (two-table upper bound):
/// `O((√(count·(Δ+λ)) + (Δ+λ)·√λ) · f_upper)`.
pub fn two_table_upper_bound(
    count: f64,
    local_sensitivity: f64,
    lambda: f64,
    log2_domain: f64,
    num_queries: usize,
    epsilon: f64,
    delta: f64,
) -> f64 {
    let d = local_sensitivity + lambda;
    ((count * d).sqrt() + d * lambda.sqrt()) * f_upper(log2_domain, num_queries, epsilon, delta)
}

/// Theorem 3.5 / Theorem 1.6 (parameterised lower bound):
/// `Ω̃(min{OUT, √(OUT·Δ)·f_lower})`.
pub fn parameterized_lower_bound(
    out: f64,
    local_sensitivity: f64,
    log2_domain: f64,
    epsilon: f64,
) -> f64 {
    let lower = (out * local_sensitivity).sqrt() * f_lower(log2_domain, epsilon);
    out.min(lower)
}

/// Theorem 1.5 (multi-table upper bound):
/// `O((√(count·RS^β) + RS^β·√λ) · f_upper)`.
pub fn multi_table_upper_bound(
    count: f64,
    residual_sensitivity: f64,
    lambda: f64,
    log2_domain: f64,
    num_queries: usize,
    epsilon: f64,
    delta: f64,
) -> f64 {
    ((count * residual_sensitivity).sqrt() + residual_sensitivity * lambda.sqrt())
        * f_upper(log2_domain, num_queries, epsilon, delta)
}

/// Theorem 4.4 (uniformized two-table upper bound): given the per-bucket join
/// sizes of the *uniform partition* (`bucket_counts[i]` is `count(I^{i+1})`,
/// i.e. bucket indices start at 1),
/// `O((λ^{3/2}(Δ+λ) + Σ_i √(count(I^i)·2^i·λ)) · f_upper)`.
pub fn uniformized_upper_bound(
    bucket_counts: &[(usize, f64)],
    local_sensitivity: f64,
    lambda: f64,
    log2_domain: f64,
    num_queries: usize,
    epsilon: f64,
    delta: f64,
) -> f64 {
    let sum: f64 = bucket_counts
        .iter()
        .map(|&(i, count)| (count * (2.0f64).powi(i as i32) * lambda).sqrt())
        .sum();
    (lambda.powf(1.5) * (local_sensitivity + lambda) + sum)
        * f_upper(log2_domain, num_queries, epsilon, delta)
}

/// Theorem 4.5 (uniformized two-table lower bound):
/// `Ω̃(max_i min{OUT_i, √(OUT_i·2^i·λ)·f_lower})`.
pub fn uniformized_lower_bound(
    bucket_counts: &[(usize, f64)],
    lambda: f64,
    log2_domain: f64,
    epsilon: f64,
) -> f64 {
    bucket_counts
        .iter()
        .map(|&(i, out)| {
            let alt =
                (out * (2.0f64).powi(i as i32) * lambda).sqrt() * f_lower(log2_domain, epsilon);
            out.min(alt)
        })
        .fold(0.0, f64::max)
}

/// Appendix B.3 worst-case error (annotated relations): `Õ(n^{m - 1/2})`.
pub fn worst_case_error_annotated(n: f64, m: usize) -> f64 {
    n.powf(m as f64 - 0.5)
}

/// Appendix B.3 worst-case error (set-valued relations):
/// `Õ(√(n^{ρ(H)} · max_E n^{ρ(H_{E,∂E})}))` given the two exponents.
pub fn worst_case_error_set_valued(n: f64, rho_full: f64, rho_residual: f64) -> f64 {
    (n.powf(rho_full) * n.powf(rho_residual)).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_table_bound_orders_scale_correctly() {
        let b1 = two_table_upper_bound(1_000.0, 10.0, 5.0, 12.0, 64, 1.0, 1e-6);
        let b2 = two_table_upper_bound(4_000.0, 10.0, 5.0, 12.0, 64, 1.0, 1e-6);
        // √count scaling: quadrupling the join size roughly doubles the bound.
        assert!(b2 / b1 > 1.7 && b2 / b1 < 2.2, "ratio = {}", b2 / b1);
        // Larger Δ gives a larger bound.
        assert!(two_table_upper_bound(1_000.0, 100.0, 5.0, 12.0, 64, 1.0, 1e-6) > b1);
    }

    #[test]
    fn lower_bound_is_dominated_by_out() {
        // For tiny OUT the min picks OUT itself.
        let lb = parameterized_lower_bound(4.0, 100.0, 20.0, 1.0);
        assert_eq!(lb, 4.0);
        // For large OUT the √(OUT·Δ) branch applies and sits below OUT.
        let lb = parameterized_lower_bound(1e6, 10.0, 20.0, 1.0);
        assert!(lb < 1e6);
        assert!(lb > 0.0);
    }

    #[test]
    fn upper_bounds_dominate_lower_bounds() {
        // On matching parameters the Theorem 3.3 upper bound must sit above
        // the Theorem 3.5 lower bound (sanity of the implementation, the
        // theorems guarantee it up to log factors).
        for &(count, delta) in &[(100.0, 2.0), (10_000.0, 16.0), (1e6, 64.0)] {
            let up = two_table_upper_bound(count, delta, 5.0, 16.0, 128, 1.0, 1e-6);
            let low = parameterized_lower_bound(count, delta, 16.0, 1.0);
            assert!(up >= low, "count {count}, Δ {delta}: {up} < {low}");
        }
    }

    #[test]
    fn uniformized_bound_beats_join_as_one_on_skewed_profiles() {
        // Example 4.2 style profile: many light buckets, one heavy bucket.
        let lambda = 2.0;
        let buckets = vec![(1usize, 4096.0), (2, 2048.0), (3, 1024.0), (8, 512.0)];
        let total: f64 = buckets.iter().map(|&(_, c)| c).sum();
        let delta = lambda * (2.0f64).powi(8);
        let uni = uniformized_upper_bound(&buckets, delta, lambda, 16.0, 128, 1.0, 1e-6);
        let joined = two_table_upper_bound(total, delta, lambda, 16.0, 128, 1.0, 1e-6);
        assert!(uni < joined, "uniformized {uni} vs join-as-one {joined}");
    }

    #[test]
    fn uniformized_lower_bound_takes_the_max_over_buckets() {
        let lambda = 2.0;
        let buckets = vec![(1usize, 100.0), (5, 10_000.0)];
        let lb = uniformized_lower_bound(&buckets, lambda, 16.0, 1.0);
        let lb_heavy = uniformized_lower_bound(&[(5usize, 10_000.0)], lambda, 16.0, 1.0);
        assert!((lb - lb_heavy).abs() < 1e-9);
        assert_eq!(uniformized_lower_bound(&[], lambda, 16.0, 1.0), 0.0);
    }

    #[test]
    fn worst_case_bounds() {
        assert!((worst_case_error_annotated(100.0, 2) - 100.0f64.powf(1.5)).abs() < 1e-6);
        let wc = worst_case_error_set_valued(100.0, 2.0, 1.0);
        assert!((wc - 100.0f64.powf(1.5)).abs() < 1e-6);
    }
}
