//! Error type for the release algorithms.

use std::fmt;

use dpsyn_noise::NoiseError;
use dpsyn_pmw::PmwError;
use dpsyn_query::QueryError;
use dpsyn_relational::RelationalError;
use dpsyn_sensitivity::SensitivityError;

/// Errors raised by the multi-table release algorithms.
#[derive(Debug, Clone, PartialEq)]
pub enum ReleaseError {
    /// An underlying relational operation failed.
    Relational(RelationalError),
    /// A DP primitive rejected its parameters.
    Noise(NoiseError),
    /// A sensitivity computation failed.
    Sensitivity(SensitivityError),
    /// A query-evaluation operation failed.
    Query(QueryError),
    /// The PMW sub-routine failed.
    Pmw(PmwError),
    /// The algorithm requires a two-table join query.
    RequiresTwoTable {
        /// Number of relations actually supplied.
        got: usize,
    },
    /// The algorithm requires a hierarchical join query.
    RequiresHierarchical(String),
    /// The requested privacy parameters cannot be used by this algorithm
    /// (e.g. `δ = 0` where a truncated-Laplace calibration is required).
    UnsupportedPrivacyParams(String),
    /// A configuration value is invalid.
    InvalidConfig(String),
}

impl fmt::Display for ReleaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReleaseError::Relational(e) => write!(f, "relational error: {e}"),
            ReleaseError::Noise(e) => write!(f, "noise error: {e}"),
            ReleaseError::Sensitivity(e) => write!(f, "sensitivity error: {e}"),
            ReleaseError::Query(e) => write!(f, "query error: {e}"),
            ReleaseError::Pmw(e) => write!(f, "PMW error: {e}"),
            ReleaseError::RequiresTwoTable { got } => {
                write!(
                    f,
                    "this algorithm requires a two-table query, got {got} relations"
                )
            }
            ReleaseError::RequiresHierarchical(msg) => {
                write!(
                    f,
                    "this algorithm requires a hierarchical join query: {msg}"
                )
            }
            ReleaseError::UnsupportedPrivacyParams(msg) => {
                write!(f, "unsupported privacy parameters: {msg}")
            }
            ReleaseError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl std::error::Error for ReleaseError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReleaseError::Relational(e) => Some(e),
            ReleaseError::Noise(e) => Some(e),
            ReleaseError::Sensitivity(e) => Some(e),
            ReleaseError::Query(e) => Some(e),
            ReleaseError::Pmw(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RelationalError> for ReleaseError {
    fn from(e: RelationalError) -> Self {
        ReleaseError::Relational(e)
    }
}
impl From<NoiseError> for ReleaseError {
    fn from(e: NoiseError) -> Self {
        ReleaseError::Noise(e)
    }
}
impl From<SensitivityError> for ReleaseError {
    fn from(e: SensitivityError) -> Self {
        ReleaseError::Sensitivity(e)
    }
}
impl From<QueryError> for ReleaseError {
    fn from(e: QueryError) -> Self {
        ReleaseError::Query(e)
    }
}
impl From<PmwError> for ReleaseError {
    fn from(e: PmwError) -> Self {
        ReleaseError::Pmw(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: ReleaseError = RelationalError::EmptyQuery.into();
        assert!(e.to_string().contains("relational"));
        let e: ReleaseError = NoiseError::EmptyCandidateSet.into();
        assert!(e.to_string().contains("noise"));
        let e = ReleaseError::RequiresTwoTable { got: 5 };
        assert!(e.to_string().contains("5"));
        assert!(std::error::Error::source(&e).is_none());
        let e: ReleaseError = PmwError::InvalidConfig("x".into()).into();
        assert!(std::error::Error::source(&e).is_some());
    }
}
