//! The two *flawed* strawman algorithms of Section 3.1.
//!
//! Both are deliberately **not** differentially private; they exist so that
//! the Example 3.1 distinguishing attack can be demonstrated empirically
//! (experiment E1) and contrasted with Algorithm 1.
//!
//! * [`FlawedJoinAsOne`] — "compute the join and hand it to single-table PMW":
//!   the released synthetic dataset's total mass equals `count(I)` exactly,
//!   and neighbouring instances can have join sizes differing by `Θ(n)`
//!   (Figure 1), so the total mass alone distinguishes them.
//! * [`FlawedPadAfter`] — "release PMW's output and *then* pad with noisy
//!   dummy tuples": the total mass is protected, but the padding is spread
//!   (near-)uniformly over the huge domain, so the mass inside the small
//!   region `D'` where the true join lives still reveals the difference
//!   (Example 3.1).
//!
//! The fix — pad *before* releasing, i.e. start PMW from a noisy total — is
//! exactly Algorithm 1 (`TwoTable`).

use dpsyn_noise::{PrivacyParams, TruncatedLaplace};
use dpsyn_pmw::{Pmw, PmwConfig};
use dpsyn_query::QueryFamily;
use dpsyn_relational::{join_size, Instance, JoinQuery};
use dpsyn_sensitivity::two_table_local_sensitivity;
use rand::Rng;

use crate::error::ReleaseError;
use crate::release::{ReleaseKind, SyntheticRelease};
use crate::Result;

fn check_two_table(query: &JoinQuery, params: PrivacyParams) -> Result<()> {
    if query.num_relations() != 2 {
        return Err(ReleaseError::RequiresTwoTable {
            got: query.num_relations(),
        });
    }
    if params.delta() <= 0.0 {
        return Err(ReleaseError::UnsupportedPrivacyParams(
            "the strawman algorithms still use (ε, δ) machinery internally; supply δ > 0"
                .to_string(),
        ));
    }
    Ok(())
}

/// Strawman 1: release single-table PMW's output for the join result without
/// protecting the join size.  **Not differentially private.**
#[derive(Debug, Clone, Default)]
pub struct FlawedJoinAsOne {
    pmw: PmwConfig,
}

impl FlawedJoinAsOne {
    /// Creates the strawman with a custom PMW configuration.
    pub fn new(pmw: PmwConfig) -> Self {
        FlawedJoinAsOne { pmw }
    }

    /// Runs the strawman release.
    pub fn release<R: Rng>(
        &self,
        query: &JoinQuery,
        instance: &Instance,
        family: &QueryFamily,
        params: PrivacyParams,
        rng: &mut R,
    ) -> Result<SyntheticRelease> {
        check_two_table(query, params)?;
        let half = params.halve();
        let delta = two_table_local_sensitivity(query, instance)? as f64;
        let tlap = TruncatedLaplace::calibrated(half.epsilon(), half.delta(), 1.0)?;
        let delta_tilde = delta + tlap.sample(rng);

        let pmw_out = Pmw::new(self.pmw).run(query, instance, family, half, delta_tilde, rng)?;
        // The flaw: force the released mass back to the *exact* join size, as
        // the single-table PMW of [25] would (its histogram always carries the
        // true record count).
        let mut histogram = pmw_out.histogram;
        let count = join_size(query, instance)? as f64;
        histogram.normalize_to(count);

        Ok(SyntheticRelease::new(
            query.clone(),
            histogram,
            ReleaseKind::Baseline,
            params,
            count,
            1,
            delta_tilde,
        ))
    }
}

/// Strawman 2: release the (mass-revealing) PMW output and pad it afterwards
/// with `η ∼ TLap` dummy tuples spread uniformly over the domain.
/// **Not differentially private** (Example 3.1).
#[derive(Debug, Clone, Default)]
pub struct FlawedPadAfter {
    pmw: PmwConfig,
}

impl FlawedPadAfter {
    /// Creates the strawman with a custom PMW configuration.
    pub fn new(pmw: PmwConfig) -> Self {
        FlawedPadAfter { pmw }
    }

    /// Runs the strawman release.
    pub fn release<R: Rng>(
        &self,
        query: &JoinQuery,
        instance: &Instance,
        family: &QueryFamily,
        params: PrivacyParams,
        rng: &mut R,
    ) -> Result<SyntheticRelease> {
        check_two_table(query, params)?;
        let half = params.halve();

        // Step 1-2 of the strawman: noisy sensitivity and noisy padding size.
        let delta = two_table_local_sensitivity(query, instance)? as f64;
        let sens_noise = TruncatedLaplace::calibrated(half.epsilon(), half.delta(), 1.0)?;
        let delta_tilde = delta + sens_noise.sample(rng);
        let pad_noise =
            TruncatedLaplace::calibrated(half.epsilon(), half.delta(), delta_tilde.max(1.0))?;
        let eta = pad_noise.sample(rng);

        // Step 3: the mass-revealing release (as in FlawedJoinAsOne).
        let pmw_out = Pmw::new(self.pmw).run(query, instance, family, half, delta_tilde, rng)?;
        let mut histogram = pmw_out.histogram;
        let count = join_size(query, instance)? as f64;
        histogram.normalize_to(count);

        // Step 4: pad afterwards — η mass spread uniformly over the domain
        // (the continuous analogue of sampling η random dummy tuples).
        let padding = dpsyn_pmw::Histogram::uniform(query, eta, self.pmw.max_domain_cells)?;
        histogram.accumulate(&padding)?;

        Ok(SyntheticRelease::new(
            query.clone(),
            histogram,
            ReleaseKind::Baseline,
            params,
            count + eta,
            1,
            delta_tilde,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::two_table::TwoTable;
    use dpsyn_noise::seeded_rng;
    use dpsyn_query::ProductQuery;

    /// A Figure 1 style pair: I (left) has join size n², I' (right) has join
    /// size 0, with the same per-relation sizes.
    fn figure1_pair(n: u64) -> (JoinQuery, Instance, Instance) {
        let q = JoinQuery::two_table(n, 2 * n, n);
        let mut left = Instance::empty_for(&q).unwrap();
        let mut right = Instance::empty_for(&q).unwrap();
        for j in 0..n {
            left.relation_mut(0).add(vec![j, 0], 1).unwrap();
            left.relation_mut(1).add(vec![0, j], 1).unwrap();
            // The right instance uses disjoint B values in the two relations,
            // so nothing joins.
            right.relation_mut(0).add(vec![j, j], 1).unwrap();
            right.relation_mut(1).add(vec![n + j, j], 1).unwrap();
        }
        (q, left, right)
    }

    #[test]
    fn flawed_join_as_one_reveals_the_join_size() {
        let (q, heavy, empty) = figure1_pair(8);
        let params = PrivacyParams::new(1.0, 1e-6).unwrap();
        let family = QueryFamily::counting(&q);
        let mut rng = seeded_rng(1);
        let strawman = FlawedJoinAsOne::default();
        let rel_heavy = strawman
            .release(&q, &heavy, &family, params, &mut rng)
            .unwrap();
        let rel_empty = strawman
            .release(&q, &empty, &family, params, &mut rng)
            .unwrap();
        // The released totals are the exact join sizes: 64 vs 0 — a perfect
        // distinguisher even though the instances are "close" (every relation
        // differs only in which join values tuples carry).
        assert_eq!(rel_heavy.histogram().total().round(), 64.0);
        assert_eq!(rel_empty.histogram().total().round(), 0.0);
    }

    #[test]
    fn pad_after_adds_uniform_padding_on_top_of_the_exact_count() {
        // The second strawman hides the raw total (count + η with η > 0), but
        // the padding is spread uniformly over the whole domain, so the mass
        // it adds to the data-carrying region stays tiny — which is what the
        // Example 3.1 attack exploits at scale (experiment E1 runs the full
        // distinguishing attack; here we check the structural properties).
        let (q, heavy, _) = figure1_pair(8);
        let params = PrivacyParams::new(1.0, 1e-4).unwrap();
        let family = QueryFamily::counting(&q);
        let strawman = FlawedPadAfter::default();

        let mut rng = seeded_rng(5);
        let rel_heavy = strawman
            .release(&q, &heavy, &family, params, &mut rng)
            .unwrap();
        let count = 64.0;
        let total = rel_heavy.histogram().total();
        assert!(total > count, "padding must be strictly positive");
        // η is bounded by 2τ(ε/2, δ/2, Δ̃).
        let tau = dpsyn_noise::truncation_radius(0.5, 5e-5, rel_heavy.delta_tilde()).unwrap();
        assert!(total <= count + 2.0 * tau + 1e-6);
        // The padding contributes equally to every B-slice: the spread mass in
        // any single slice is at most 2τ / |dom(B)| plus the data mass.
        let h = rel_heavy.histogram();
        let slice_mass: f64 = (0..h.len())
            .filter(|&i| h.tuple_of(i)[1] == 7) // a slice with no data
            .map(|i| h.weights()[i])
            .sum();
        assert!(slice_mass <= count + 2.0 * tau / 16.0 + 1e-6);
    }

    #[test]
    fn algorithm_one_does_not_exhibit_the_total_mass_gap() {
        // For contrast: Algorithm 1's released total never equals the exact
        // join size (the padding is strictly positive with overwhelming
        // probability) and over-estimates it for both instances.
        let (q, heavy, empty) = figure1_pair(8);
        let params = PrivacyParams::new(1.0, 1e-6).unwrap();
        let family = QueryFamily::counting(&q);
        let mut rng = seeded_rng(3);
        let fixed = TwoTable::default();
        let rel_heavy = fixed
            .release(&q, &heavy, &family, params, &mut rng)
            .unwrap();
        let rel_empty = fixed
            .release(&q, &empty, &family, params, &mut rng)
            .unwrap();
        assert!(rel_heavy.answer(&ProductQuery::counting(2)).unwrap() >= 64.0);
        // The empty instance's total is pure padding — strictly positive, so
        // "total == 0" no longer identifies it.
        assert!(rel_empty.answer(&ProductQuery::counting(2)).unwrap() > 0.0);
    }

    #[test]
    fn strawmen_validate_inputs() {
        let q = JoinQuery::star(3, 4).unwrap();
        let inst = Instance::empty_for(&q).unwrap();
        let family = QueryFamily::counting(&q);
        let mut rng = seeded_rng(2);
        assert!(FlawedJoinAsOne::default()
            .release(
                &q,
                &inst,
                &family,
                PrivacyParams::new(1.0, 1e-6).unwrap(),
                &mut rng
            )
            .is_err());
        assert!(FlawedPadAfter::default()
            .release(
                &q,
                &inst,
                &family,
                PrivacyParams::new(1.0, 1e-6).unwrap(),
                &mut rng
            )
            .is_err());
    }
}
