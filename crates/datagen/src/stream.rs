//! Seeded streaming-update generators: insert/delete batches over any
//! generated instance, for exercising the engine's semi-naive batch
//! maintenance ([`dpsyn_relational::stream`]).
//!
//! [`update_stream`] produces a *sequence* of [`UpdateBatch`]es that are
//! valid when applied in order (every delete retracts a tuple that exists
//! at that point in the stream), over whatever shape the caller generated —
//! the chain/star/heavy-hitter scenarios of [`crate::scenarios`], the
//! random instances of [`crate::random`], or anything else.  Like every
//! generator in this crate, output is a pure function of the RNG seed.

use crate::random::zipf_value;
use dpsyn_relational::{apply_batch, Instance, JoinQuery, UpdateBatch, UpdateOp, Value};
use rand::Rng;

/// Knobs for [`update_stream`]: how many batches, how big, the
/// insert/delete mix and the value skew.
#[derive(Debug, Clone, Copy)]
pub struct UpdateStreamConfig {
    /// Number of batches in the stream.
    pub batches: usize,
    /// Ops per batch.
    pub batch_size: usize,
    /// Fraction of ops that delete an existing tuple (the rest insert);
    /// clamped to `[0, 1]`.  When nothing is left to delete, an op falls
    /// back to an insert.
    pub delete_fraction: f64,
    /// Zipf exponent for inserted attribute values and for which existing
    /// tuples get deleted (`0.0` = uniform; larger = more skew, piling
    /// updates onto the hot join values the scenario shapes already have).
    pub theta: f64,
}

impl Default for UpdateStreamConfig {
    /// Eight mixed batches of 16 ops, one-third deletes, mild skew.
    fn default() -> Self {
        UpdateStreamConfig {
            batches: 8,
            batch_size: 16,
            delete_fraction: 1.0 / 3.0,
            theta: 1.0,
        }
    }
}

/// Generates a seeded stream of insert/delete batches over `instance`.
///
/// Batches are valid **in sequence**: the generator tracks the evolving
/// instance internally, so the `k`-th batch only deletes tuples that exist
/// after batches `0..k` have been applied.  Inserts draw each attribute
/// value Zipf(`theta`) from its domain (so updates concentrate on hot
/// values under skew); deletes pick an existing tuple with Zipf(`theta`)
/// rank over the relation's sorted tuple order and retract one copy.
/// Callers replay the stream with [`dpsyn_relational::apply_batch`] or
/// maintain caches through it with `ExecContext::apply_updates` /
/// `Session::apply_updates`.
pub fn update_stream<R: Rng>(
    query: &JoinQuery,
    instance: &Instance,
    config: UpdateStreamConfig,
    rng: &mut R,
) -> Vec<UpdateBatch> {
    let m = query.num_relations();
    let schema = query.schema();
    let delete_fraction = config.delete_fraction.clamp(0.0, 1.0);
    let mut live = instance.clone();
    let mut stream = Vec::with_capacity(config.batches);
    for _ in 0..config.batches {
        let mut batch = UpdateBatch::new();
        for _ in 0..config.batch_size {
            let want_delete = rng.random::<f64>() < delete_fraction;
            // A delete needs a non-empty relation; fall back to an insert
            // when the stream has drained everything.
            let victim = if want_delete {
                pick_victim(&live, config.theta, rng)
            } else {
                None
            };
            let op = match victim {
                Some((relation, tuple)) => UpdateOp::Delete {
                    relation,
                    tuple,
                    count: 1,
                },
                None => {
                    let relation = rng.random_range(0..m);
                    let attrs = live.relation(relation).attrs().to_vec();
                    let tuple: Vec<Value> = attrs
                        .iter()
                        .map(|&a| {
                            let domain = schema.domain_size(a).expect("attr in schema");
                            zipf_value(domain, config.theta, rng)
                        })
                        .collect();
                    UpdateOp::Insert {
                        relation,
                        tuple,
                        count: 1 + rng.random_range(0..3),
                    }
                }
            };
            // Keep the tracked instance in lock-step so later ops in this
            // same batch (and later batches) stay valid.
            let mut single = UpdateBatch::new();
            single.push(op.clone());
            apply_batch(query, &mut live, &single).expect("generated op is valid by construction");
            batch.push(op);
        }
        stream.push(batch);
    }
    stream
}

/// Picks `(relation, tuple)` to delete: a uniformly random non-empty
/// relation, then a Zipf(`theta`)-ranked tuple of its sorted order.
fn pick_victim<R: Rng>(live: &Instance, theta: f64, rng: &mut R) -> Option<(usize, Vec<Value>)> {
    let non_empty: Vec<usize> = (0..live.num_relations())
        .filter(|&r| live.relation(r).distinct_count() > 0)
        .collect();
    if non_empty.is_empty() {
        return None;
    }
    let relation = non_empty[rng.random_range(0..non_empty.len())];
    let rel = live.relation(relation);
    let rank = zipf_value(rel.distinct_count() as u64, theta, rng) as usize;
    let (tuple, _) = rel.iter().nth(rank).expect("rank < distinct_count");
    Some((relation, tuple.to_vec()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::heavy_hitter_star;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(11)
    }

    #[test]
    fn stream_is_reproducible_and_valid_in_sequence() {
        let (q, inst) = crate::random::random_path(3, 16, 40, 1.0, &mut rng());
        let config = UpdateStreamConfig {
            batches: 6,
            batch_size: 10,
            delete_fraction: 0.5,
            theta: 1.2,
        };
        let stream = update_stream(&q, &inst, config, &mut rng());
        assert_eq!(stream.len(), 6);
        assert!(stream.iter().all(|b| b.len() == 10));
        // Reproducible from the seed.
        let again = update_stream(&q, &inst, config, &mut rng());
        assert_eq!(stream, again);
        // Every batch applies cleanly at its position in the stream.
        let mut live = inst.clone();
        for batch in &stream {
            apply_batch(&q, &mut live, batch).expect("valid in sequence");
        }
        assert!(live.validate(&q).is_ok());
    }

    #[test]
    fn delete_fraction_extremes_behave() {
        let (q, inst) = crate::random::random_star(3, 16, 30, 0.5, &mut rng());
        let all_inserts = update_stream(
            &q,
            &inst,
            UpdateStreamConfig {
                delete_fraction: 0.0,
                ..UpdateStreamConfig::default()
            },
            &mut rng(),
        );
        assert!(all_inserts
            .iter()
            .flat_map(|b| b.ops())
            .all(|op| matches!(op, UpdateOp::Insert { .. })));
        // Few enough deletes that the 90-copy instance never drains.
        let all_deletes = update_stream(
            &q,
            &inst,
            UpdateStreamConfig {
                batches: 4,
                batch_size: 10,
                delete_fraction: 1.0,
                theta: 1.0,
            },
            &mut rng(),
        );
        assert!(all_deletes
            .iter()
            .flat_map(|b| b.ops())
            .all(|op| matches!(op, UpdateOp::Delete { .. })));
        let mut live = inst.clone();
        for batch in &all_deletes {
            apply_batch(&q, &mut live, batch).expect("deletes target live tuples");
        }
    }

    #[test]
    fn drained_instance_falls_back_to_inserts() {
        // A tiny instance with fewer tuples than the delete stream wants:
        // once drained, ops must fall back to inserts instead of panicking.
        let q = JoinQuery::two_table(8, 8, 8);
        let mut inst = Instance::empty_for(&q).unwrap();
        inst.relation_mut(0).add(vec![1, 1], 1).unwrap();
        inst.relation_mut(1).add(vec![1, 1], 1).unwrap();
        let stream = update_stream(
            &q,
            &inst,
            UpdateStreamConfig {
                batches: 2,
                batch_size: 8,
                delete_fraction: 1.0,
                theta: 0.0,
            },
            &mut rng(),
        );
        let inserts = stream
            .iter()
            .flat_map(|b| b.ops())
            .filter(|op| matches!(op, UpdateOp::Insert { .. }))
            .count();
        assert!(inserts > 0, "drained stream must produce inserts");
        let mut live = inst.clone();
        for batch in &stream {
            apply_batch(&q, &mut live, batch).unwrap();
        }
    }

    #[test]
    fn streams_over_scenario_shapes_apply_cleanly() {
        let (q, inst) = heavy_hitter_star(3, 32, 200, 0.3, &mut rng());
        let stream = update_stream(&q, &inst, UpdateStreamConfig::default(), &mut rng());
        let mut live = inst.clone();
        for batch in &stream {
            apply_batch(&q, &mut live, batch).unwrap();
        }
        assert!(live.validate(&q).is_ok());
    }
}
