//! Realistic synthetic scenarios used by the runnable examples.
//!
//! None of these use real data; they are parameterised generators whose shape
//! mimics the workloads the paper's introduction motivates (analytics over
//! joins of private tables).

use dpsyn_relational::{AttrId, Attribute, Instance, JoinQuery, Schema};
use rand::Rng;

use crate::random::zipf_two_table;

/// A "social network" two-table scenario:
/// `Follows(follower, user) ⋈ Posts(user, topic)` — a linear query over the
/// join asks weighted questions such as "how many (follower, post) exposure
/// pairs involve topic t".  Popular users are Zipf-distributed, so degrees are
/// heavily skewed (the regime where uniformization shines).
pub fn social_network<R: Rng>(
    users: u64,
    follows: usize,
    posts: usize,
    rng: &mut R,
) -> (JoinQuery, Instance) {
    let schema = Schema::new(vec![
        Attribute::new("follower", users),
        Attribute::new("user", users),
        Attribute::new("topic", 16),
    ]);
    let query = JoinQuery::new(
        schema,
        vec![vec![AttrId(0), AttrId(1)], vec![AttrId(1), AttrId(2)]],
    )
    .expect("two-table query");
    let mut inst = Instance::empty_for(&query).expect("schema matches");
    for _ in 0..follows {
        let follower = rng.random_range(0..users);
        // Popularity is Zipf-like: low user ids are followed much more often.
        let user = popular(users, rng);
        inst.relation_mut(0)
            .add(vec![follower, user], 1)
            .expect("valid tuple");
    }
    for _ in 0..posts {
        let user = popular(users, rng);
        let topic = rng.random_range(0..16);
        inst.relation_mut(1)
            .add(vec![user, topic], 1)
            .expect("valid tuple");
    }
    (query, inst)
}

fn popular<R: Rng>(domain: u64, rng: &mut R) -> u64 {
    // Approximate Zipf(1.2) via rejection-free inverse power transform.
    let u: f64 = rng.random::<f64>().max(1e-9);
    let x = (u.powf(-0.8) - 1.0) * 3.0;
    (x as u64).min(domain - 1)
}

/// A "retail" star-schema scenario: `Sales(product, store)`,
/// `Inventory(product, warehouse)`, `Promotions(product, campaign)` joined on
/// `product` — a 3-relation hierarchical (star) join whose linear queries are
/// cross-table marginals.
pub fn retail_star<R: Rng>(
    products: u64,
    rows_per_table: usize,
    rng: &mut R,
) -> (JoinQuery, Instance) {
    let schema = Schema::new(vec![
        Attribute::new("product", products),
        Attribute::new("store", 32),
        Attribute::new("warehouse", 8),
        Attribute::new("campaign", 8),
    ]);
    let query = JoinQuery::new(
        schema,
        vec![
            vec![AttrId(0), AttrId(1)],
            vec![AttrId(0), AttrId(2)],
            vec![AttrId(0), AttrId(3)],
        ],
    )
    .expect("star query");
    let mut inst = Instance::empty_for(&query).expect("schema matches");
    for _ in 0..rows_per_table {
        let p = popular(products, rng);
        inst.relation_mut(0)
            .add(vec![p, rng.random_range(0..32)], 1)
            .expect("valid tuple");
        let p = popular(products, rng);
        inst.relation_mut(1)
            .add(vec![p, rng.random_range(0..8)], 1)
            .expect("valid tuple");
        let p = popular(products, rng);
        inst.relation_mut(2)
            .add(vec![p, rng.random_range(0..8)], 1)
            .expect("valid tuple");
    }
    (query, inst)
}

/// An "organisational hierarchy" scenario built on the two-table query with a
/// department attribute shared between `Employees(employee, dept)` and
/// `Projects(dept, project)`; department sizes are heavy-tailed.
pub fn org_hierarchy<R: Rng>(
    departments: u64,
    employees: usize,
    projects: usize,
    rng: &mut R,
) -> (JoinQuery, Instance) {
    // Reuse the Zipf two-table generator and relabel: attribute B plays the
    // department role.
    let (query, mut inst) = zipf_two_table(departments.max(4), 0, 0.0, rng);
    for _ in 0..employees {
        let e = rng.random_range(0..departments.max(4));
        let d = popular(departments.max(4), rng);
        inst.relation_mut(0)
            .add(vec![e, d], 1)
            .expect("valid tuple");
    }
    for _ in 0..projects {
        let d = popular(departments.max(4), rng);
        let p = rng.random_range(0..departments.max(4));
        inst.relation_mut(1)
            .add(vec![d, p], 1)
            .expect("valid tuple");
    }
    (query, inst)
}

/// A **heavy-hitter skewed star**: `m` petal relations `R_r(hub, petal_r)`
/// joined on `hub`, where a `hot_fraction` of every relation's rows land on
/// the single hub value `0` and the rest follow a Zipf-like tail over the
/// remaining hub domain.
///
/// This is the imbalance the work-stealing scheduler exists for: the probe
/// partition (and the lattice masks) containing hub `0` carries most of the
/// join work, so a fixed-stride split leaves all but one worker idle while
/// stealing rebalances.  Degrees are wildly non-uniform, so it doubles as a
/// uniformization stress shape.
pub fn heavy_hitter_star<R: Rng>(
    petals: usize,
    hub_domain: u64,
    rows_per_relation: usize,
    hot_fraction: f64,
    rng: &mut R,
) -> (JoinQuery, Instance) {
    let hub_domain = hub_domain.max(2);
    let petal_domain = 64u64;
    let mut attrs = vec![Attribute::new("hub", hub_domain)];
    for r in 0..petals {
        attrs.push(Attribute::new(format!("petal{r}"), petal_domain));
    }
    let schema = Schema::new(attrs);
    let rel_attrs: Vec<Vec<AttrId>> = (0..petals)
        .map(|r| vec![AttrId(0), AttrId(1 + r as u16)])
        .collect();
    let query = JoinQuery::new(schema, rel_attrs).expect("star query");
    let mut inst = Instance::empty_for(&query).expect("schema matches");
    let hot_fraction = hot_fraction.clamp(0.0, 1.0);
    for r in 0..petals {
        for _ in 0..rows_per_relation {
            let hub = if rng.random::<f64>() < hot_fraction {
                0
            } else {
                1 + popular(hub_domain - 1, rng)
            };
            let petal = rng.random_range(0..petal_domain);
            inst.relation_mut(r)
                .add(vec![hub, petal], 1)
                .expect("valid tuple");
        }
    }
    (query, inst)
}

/// A **correlated pair star**: two "wide" relations
/// `R0(k, kk, p0)` and `R1(k, kk, p1)` sharing the join attributes
/// `(k, kk)`, plus `satellites` small relations `S_r(k, t_r)` joined on
/// `k` alone — where `kk = k mod fanout` is a **functional dependency**
/// of `k`.
///
/// This shape provably breaks the classical independence assumption that
/// cost-based join planners estimate with: under independence the pair
/// join is estimated as
/// `|R0|·|R1| / (v(k)·v(kk))`, dividing by *both* shared attributes'
/// distinct counts, but since `kk` is determined by `k` the second factor
/// is pure fiction — matching on `k` already implies matching on `kk`, so
/// the true cardinality is larger than the estimate by roughly
/// `fanout`×.  A static plan therefore routes sub-joins *through* the
/// `R0 ⋈ R1` pair (it looks cheap), while measured feedback re-plans
/// around it — which makes this the canonical workload for the adaptive
/// planner's re-optimization tests and benchmarks.
///
/// `pair_rows` rows are generated for each of `R0`/`R1` (keys uniform over
/// `0..keys`, payloads uniform over `0..payloads`); each satellite holds
/// one row per key.  The expected estimate error on the pair is
/// `≈ fanout`, so pick `fanout` comfortably above the planner's re-plan
/// ratio to guarantee a trigger.
pub fn correlated_pair<R: Rng>(
    satellites: usize,
    keys: u64,
    fanout: u64,
    pair_rows: usize,
    payloads: u64,
    rng: &mut R,
) -> (JoinQuery, Instance) {
    let keys = keys.max(1);
    let fanout = fanout.clamp(1, keys);
    let payloads = payloads.max(1);
    let mut attrs = vec![
        Attribute::new("k", keys),
        Attribute::new("kk", fanout),
        Attribute::new("p0", payloads),
        Attribute::new("p1", payloads),
    ];
    for r in 0..satellites {
        attrs.push(Attribute::new(format!("t{r}"), 16));
    }
    let schema = Schema::new(attrs);
    let mut rel_attrs = vec![
        vec![AttrId(0), AttrId(1), AttrId(2)],
        vec![AttrId(0), AttrId(1), AttrId(3)],
    ];
    for r in 0..satellites {
        rel_attrs.push(vec![AttrId(0), AttrId(4 + r as u16)]);
    }
    let query = JoinQuery::new(schema, rel_attrs).expect("correlated pair query");
    let mut inst = Instance::empty_for(&query).expect("schema matches");
    for side in 0..2 {
        for _ in 0..pair_rows {
            let k = rng.random_range(0..keys);
            let p = rng.random_range(0..payloads);
            inst.relation_mut(side)
                .add(vec![k, k % fanout, p], 1)
                .expect("valid tuple");
        }
    }
    for r in 0..satellites {
        for k in 0..keys {
            let t = rng.random_range(0..16);
            inst.relation_mut(2 + r)
                .add(vec![k, t], 1)
                .expect("valid tuple");
        }
    }
    (query, inst)
}

/// A **wide-attribute pair**: a large probe relation
/// `R(a, k1, k2, k3, k4)` joined with a small build relation
/// `S(k1, k2, k3, k4, e)` on the four-attribute key `(k1, k2, k3, k4)`,
/// every domain astronomically large (`2^40`) and every value sparse —
/// large, spread-out integers standing in for hashed surrogate keys.
///
/// `S` holds exactly one row per key index in `0..key_space`; `R` holds
/// `probe_rows` rows whose key indices are drawn uniformly from
/// `0..16 * key_space`, so roughly one probe in sixteen finds a match and
/// the join is **probe-dominated**: the per-probe key work (project, hash
/// and compare a four-word wide-value key) is the hot loop, not output
/// emission.
///
/// The distinct-value sets are tiny relative to the domains, so the
/// per-attribute dictionary compresses every value to a handful of bits
/// and the whole four-attribute probe key packs into one `u64` (for
/// `key_space ≤ 4096`) — the shape where dictionary-encoded probing beats
/// raw wide-value keys: one integer pack/hash/compare per probe instead of
/// a four-word hash and slice compare.
pub fn wide_attribute_pair<R: Rng>(
    key_space: u64,
    probe_rows: usize,
    rng: &mut R,
) -> (JoinQuery, Instance) {
    let domain = 1u64 << 40;
    let key_space = key_space.max(1);
    let schema = Schema::new(vec![
        Attribute::new("a", domain),
        Attribute::new("k1", domain),
        Attribute::new("k2", domain),
        Attribute::new("k3", domain),
        Attribute::new("k4", domain),
        Attribute::new("e", domain),
    ]);
    let query = JoinQuery::new(
        schema,
        vec![
            vec![AttrId(0), AttrId(1), AttrId(2), AttrId(3), AttrId(4)],
            vec![AttrId(1), AttrId(2), AttrId(3), AttrId(4), AttrId(5)],
        ],
    )
    .expect("two-table query");
    let mut inst = Instance::empty_for(&query).expect("schema matches");
    // Spread values across the wide domain with a large odd stride so raw
    // keys exercise full 64-bit hashing/compares.  Input classes mod 6 keep
    // the key, `a` and `e` value streams disjoint.
    let wide = |v: u64| (v.wrapping_mul(0x9E37_79B9_7F4A_7C15)) & (domain - 1);
    let quad = |t: u64| {
        [
            wide(6 * t + 1),
            wide(6 * t + 2),
            wide(6 * t + 3),
            wide(6 * t + 4),
        ]
    };
    for t in 0..key_space {
        let [k1, k2, k3, k4] = quad(t);
        inst.relation_mut(1)
            .add(vec![k1, k2, k3, k4, wide(6 * t)], 1)
            .expect("valid tuple");
    }
    for _ in 0..probe_rows {
        let a = wide(6 * rng.random_range(0..1u64 << 20) + 5);
        let [k1, k2, k3, k4] = quad(rng.random_range(0..16 * key_space));
        inst.relation_mut(0)
            .add(vec![a, k1, k2, k3, k4], 1)
            .expect("valid tuple");
    }
    (query, inst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpsyn_relational::join_size;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(99)
    }

    #[test]
    fn social_network_is_valid_and_skewed() {
        let (q, inst) = social_network(64, 300, 200, &mut rng());
        assert!(inst.validate(&q).is_ok());
        assert_eq!(inst.input_size(), 500);
        // Popular users make the join noticeably larger than a uniform pairing
        // would suggest.
        assert!(join_size(&q, &inst).unwrap() > 300);
        // Skew: the local sensitivity is well above the average degree.
        let ls = dpsyn_sensitivity::local_sensitivity(&q, &inst).unwrap();
        assert!(ls >= 10, "ls = {ls}");
    }

    #[test]
    fn retail_star_shape() {
        let (q, inst) = retail_star(32, 100, &mut rng());
        assert_eq!(q.num_relations(), 3);
        assert!(q.is_hierarchical());
        assert!(inst.validate(&q).is_ok());
        assert_eq!(inst.input_size(), 300);
    }

    #[test]
    fn org_hierarchy_shape() {
        let (q, inst) = org_hierarchy(16, 120, 80, &mut rng());
        assert!(inst.validate(&q).is_ok());
        assert_eq!(inst.input_size(), 200);
        assert_eq!(q.num_relations(), 2);
    }

    #[test]
    fn scenarios_are_reproducible() {
        let (_, a) = social_network(64, 100, 100, &mut rng());
        let (_, b) = social_network(64, 100, 100, &mut rng());
        assert_eq!(a, b);
        let (_, a) = heavy_hitter_star(3, 32, 80, 0.6, &mut rng());
        let (_, b) = heavy_hitter_star(3, 32, 80, 0.6, &mut rng());
        assert_eq!(a, b);
        let (_, a) = wide_attribute_pair(24, 100, &mut rng());
        let (_, b) = wide_attribute_pair(24, 100, &mut rng());
        assert_eq!(a, b);
    }

    #[test]
    fn heavy_hitter_star_is_heavily_imbalanced() {
        let (q, inst) = heavy_hitter_star(3, 32, 120, 0.5, &mut rng());
        assert_eq!(q.num_relations(), 3);
        assert!(q.is_hierarchical());
        assert!(inst.validate(&q).is_ok());
        // The heavy hitter (hub 0) absorbs far more than its uniform share
        // of every relation's weight.
        for r in 0..3 {
            let rel = inst.relation(r);
            let hot: u64 = rel.iter().filter(|(t, _)| t[0] == 0).map(|(_, f)| f).sum();
            let total: u64 = rel.iter().map(|(_, f)| f).sum();
            assert!(
                hot * 4 > total,
                "relation {r}: hot {hot} of {total} is not a heavy hitter"
            );
        }
        // Skew shows up in the join: far larger than a uniform star.
        assert!(join_size(&q, &inst).unwrap() > 10_000);
    }

    #[test]
    fn correlated_pair_breaks_independence_estimates() {
        let (q, inst) = correlated_pair(3, 64, 16, 512, 8, &mut rng());
        assert_eq!(q.num_relations(), 5);
        assert!(inst.validate(&q).is_ok());
        // Satellites: one row per key.
        for r in 2..5 {
            assert_eq!(inst.relation(r).distinct_count() as u64, 64);
        }
        // The independence estimate for R0 ⋈ R1 divides by the distinct
        // counts of BOTH shared attributes (k and kk), but kk = k mod 16 is
        // functionally dependent on k — so the true pair join must beat the
        // estimate by a wide margin (≈ fanout×).
        let r0 = inst.relation(0);
        let r1 = inst.relation(1);
        let distinct = |rel: &dpsyn_relational::Relation, pos: usize| {
            rel.iter()
                .map(|(t, _)| t[pos])
                .collect::<std::collections::BTreeSet<u64>>()
                .len() as f64
        };
        let est = (r0.distinct_count() as f64) * (r1.distinct_count() as f64)
            / (distinct(r0, 0).max(distinct(r1, 0)) * distinct(r0, 1).max(distinct(r1, 1)));
        let actual = dpsyn_relational::join_subset(&q, &inst, &[0, 1])
            .unwrap()
            .distinct_count() as f64;
        assert!(
            actual >= 8.0 * est,
            "pair join {actual} does not break the independence estimate {est}"
        );
        // Reproducible from the seed, like every other scenario.
        let (_, a) = correlated_pair(3, 64, 16, 512, 8, &mut rng());
        let (_, b) = correlated_pair(3, 64, 16, 512, 8, &mut rng());
        assert_eq!(a, b);
    }

    #[test]
    fn wide_attribute_pair_has_wide_sparse_values() {
        let (q, inst) = wide_attribute_pair(24, 150, &mut rng());
        assert!(inst.validate(&q).is_ok());
        assert!(q.schema().domain_size(AttrId(0)).unwrap() >= 1 << 40);
        // Values really are wide (beyond u32) and sparse (few distinct).
        let r0 = inst.relation(0);
        assert!(r0.iter().any(|(t, _)| t[0] > u32::MAX as u64));
        let distinct_k1: std::collections::BTreeSet<u64> = r0.iter().map(|(t, _)| t[1]).collect();
        assert!(distinct_k1.len() <= 16 * 24);
        // The build side is one row per key index: small and key-distinct.
        assert_eq!(inst.relation(1).distinct_count(), 24);
        // The pair joins on the four shared attributes, selectively: about
        // one probe row in sixteen finds its key in the build side.
        let size = join_size(&q, &inst).unwrap();
        assert!(size > 0, "some probes must hit");
        assert!(size < 150 / 4, "the join must stay probe-dominated");
        // And the four-attribute key packs into one u64 after encoding.
        let dict = dpsyn_relational::AttrDictionary::build(&q, &inst);
        assert!(dict
            .packer(&[AttrId(1), AttrId(2), AttrId(3), AttrId(4)])
            .is_some());
    }
}
