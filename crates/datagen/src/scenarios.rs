//! Realistic synthetic scenarios used by the runnable examples.
//!
//! None of these use real data; they are parameterised generators whose shape
//! mimics the workloads the paper's introduction motivates (analytics over
//! joins of private tables).

use dpsyn_relational::{AttrId, Attribute, Instance, JoinQuery, Schema};
use rand::Rng;

use crate::random::zipf_two_table;

/// A "social network" two-table scenario:
/// `Follows(follower, user) ⋈ Posts(user, topic)` — a linear query over the
/// join asks weighted questions such as "how many (follower, post) exposure
/// pairs involve topic t".  Popular users are Zipf-distributed, so degrees are
/// heavily skewed (the regime where uniformization shines).
pub fn social_network<R: Rng>(
    users: u64,
    follows: usize,
    posts: usize,
    rng: &mut R,
) -> (JoinQuery, Instance) {
    let schema = Schema::new(vec![
        Attribute::new("follower", users),
        Attribute::new("user", users),
        Attribute::new("topic", 16),
    ]);
    let query = JoinQuery::new(
        schema,
        vec![vec![AttrId(0), AttrId(1)], vec![AttrId(1), AttrId(2)]],
    )
    .expect("two-table query");
    let mut inst = Instance::empty_for(&query).expect("schema matches");
    for _ in 0..follows {
        let follower = rng.random_range(0..users);
        // Popularity is Zipf-like: low user ids are followed much more often.
        let user = popular(users, rng);
        inst.relation_mut(0)
            .add(vec![follower, user], 1)
            .expect("valid tuple");
    }
    for _ in 0..posts {
        let user = popular(users, rng);
        let topic = rng.random_range(0..16);
        inst.relation_mut(1)
            .add(vec![user, topic], 1)
            .expect("valid tuple");
    }
    (query, inst)
}

fn popular<R: Rng>(domain: u64, rng: &mut R) -> u64 {
    // Approximate Zipf(1.2) via rejection-free inverse power transform.
    let u: f64 = rng.random::<f64>().max(1e-9);
    let x = (u.powf(-0.8) - 1.0) * 3.0;
    (x as u64).min(domain - 1)
}

/// A "retail" star-schema scenario: `Sales(product, store)`,
/// `Inventory(product, warehouse)`, `Promotions(product, campaign)` joined on
/// `product` — a 3-relation hierarchical (star) join whose linear queries are
/// cross-table marginals.
pub fn retail_star<R: Rng>(
    products: u64,
    rows_per_table: usize,
    rng: &mut R,
) -> (JoinQuery, Instance) {
    let schema = Schema::new(vec![
        Attribute::new("product", products),
        Attribute::new("store", 32),
        Attribute::new("warehouse", 8),
        Attribute::new("campaign", 8),
    ]);
    let query = JoinQuery::new(
        schema,
        vec![
            vec![AttrId(0), AttrId(1)],
            vec![AttrId(0), AttrId(2)],
            vec![AttrId(0), AttrId(3)],
        ],
    )
    .expect("star query");
    let mut inst = Instance::empty_for(&query).expect("schema matches");
    for _ in 0..rows_per_table {
        let p = popular(products, rng);
        inst.relation_mut(0)
            .add(vec![p, rng.random_range(0..32)], 1)
            .expect("valid tuple");
        let p = popular(products, rng);
        inst.relation_mut(1)
            .add(vec![p, rng.random_range(0..8)], 1)
            .expect("valid tuple");
        let p = popular(products, rng);
        inst.relation_mut(2)
            .add(vec![p, rng.random_range(0..8)], 1)
            .expect("valid tuple");
    }
    (query, inst)
}

/// An "organisational hierarchy" scenario built on the two-table query with a
/// department attribute shared between `Employees(employee, dept)` and
/// `Projects(dept, project)`; department sizes are heavy-tailed.
pub fn org_hierarchy<R: Rng>(
    departments: u64,
    employees: usize,
    projects: usize,
    rng: &mut R,
) -> (JoinQuery, Instance) {
    // Reuse the Zipf two-table generator and relabel: attribute B plays the
    // department role.
    let (query, mut inst) = zipf_two_table(departments.max(4), 0, 0.0, rng);
    for _ in 0..employees {
        let e = rng.random_range(0..departments.max(4));
        let d = popular(departments.max(4), rng);
        inst.relation_mut(0)
            .add(vec![e, d], 1)
            .expect("valid tuple");
    }
    for _ in 0..projects {
        let d = popular(departments.max(4), rng);
        let p = rng.random_range(0..departments.max(4));
        inst.relation_mut(1)
            .add(vec![d, p], 1)
            .expect("valid tuple");
    }
    (query, inst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpsyn_relational::join_size;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(99)
    }

    #[test]
    fn social_network_is_valid_and_skewed() {
        let (q, inst) = social_network(64, 300, 200, &mut rng());
        assert!(inst.validate(&q).is_ok());
        assert_eq!(inst.input_size(), 500);
        // Popular users make the join noticeably larger than a uniform pairing
        // would suggest.
        assert!(join_size(&q, &inst).unwrap() > 300);
        // Skew: the local sensitivity is well above the average degree.
        let ls = dpsyn_sensitivity::local_sensitivity(&q, &inst).unwrap();
        assert!(ls >= 10, "ls = {ls}");
    }

    #[test]
    fn retail_star_shape() {
        let (q, inst) = retail_star(32, 100, &mut rng());
        assert_eq!(q.num_relations(), 3);
        assert!(q.is_hierarchical());
        assert!(inst.validate(&q).is_ok());
        assert_eq!(inst.input_size(), 300);
    }

    #[test]
    fn org_hierarchy_shape() {
        let (q, inst) = org_hierarchy(16, 120, 80, &mut rng());
        assert!(inst.validate(&q).is_ok());
        assert_eq!(inst.input_size(), 200);
        assert_eq!(q.num_relations(), 2);
    }

    #[test]
    fn scenarios_are_reproducible() {
        let (_, a) = social_network(64, 100, 100, &mut rng());
        let (_, b) = social_network(64, 100, 100, &mut rng());
        assert_eq!(a, b);
    }
}
