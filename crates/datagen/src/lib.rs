//! Instance generators: every figure/example instance of the paper plus
//! random and scenario-style workloads used by the examples and experiments.
//!
//! | module | contents |
//! |--------|----------|
//! | [`figures`] | Figure 1 neighbouring-style pair, Figure 2 lower-bound construction, Figure 3 non-uniform instance, Example 4.2 family, the Figure 4 hierarchical query |
//! | [`random`] | uniform and Zipf-skewed two-table / star / path instances |
//! | [`scenarios`] | realistic synthetic scenarios: a social network (users ⋈ follows), a retail star schema, an organisational hierarchy |
//! | [`stream`] | seeded insert/delete update streams over any generated instance, for exercising semi-naive batch maintenance |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod figures;
pub mod random;
pub mod scenarios;
pub mod stream;

pub use figures::{example42_instance, fig1_pair, fig2_hard_instance, fig3_nonuniform, fig4_query};
pub use random::{random_path, random_star, random_two_table, zipf_two_table};
pub use scenarios::{
    correlated_pair, heavy_hitter_star, org_hierarchy, retail_star, social_network,
    wide_attribute_pair,
};
pub use stream::{update_stream, UpdateStreamConfig};
