//! Random instance generators (uniform and Zipf-skewed).

use dpsyn_relational::{Instance, JoinQuery, Value};
use rand::Rng;

/// Draws a value in `0..domain` from a Zipf-like distribution with exponent
/// `theta` (`theta = 0` is uniform; larger values are more skewed).  Uses the
/// standard inverse-CDF-by-table method over the (small) domain.
pub(crate) fn zipf_value<R: Rng>(domain: u64, theta: f64, rng: &mut R) -> Value {
    if theta <= 0.0 || domain <= 1 {
        return rng.random_range(0..domain.max(1));
    }
    // Cumulative weights 1/(i+1)^theta.
    let weights: Vec<f64> = (0..domain)
        .map(|i| 1.0 / ((i + 1) as f64).powf(theta))
        .collect();
    let total: f64 = weights.iter().sum();
    let mut target = rng.random::<f64>() * total;
    for (i, w) in weights.iter().enumerate() {
        if target < *w {
            return i as u64;
        }
        target -= w;
    }
    domain - 1
}

/// A uniform random two-table instance: `tuples_per_relation` tuples per
/// relation, attribute values drawn uniformly from domains of size
/// `domain_size`.
pub fn random_two_table<R: Rng>(
    domain_size: u64,
    tuples_per_relation: usize,
    rng: &mut R,
) -> (JoinQuery, Instance) {
    zipf_two_table(domain_size, tuples_per_relation, 0.0, rng)
}

/// A Zipf-skewed two-table instance: the shared join attribute `B` is drawn
/// from a Zipf distribution with exponent `theta`, so a few join values carry
/// most of the degree mass (the regime where uniformization helps).
pub fn zipf_two_table<R: Rng>(
    domain_size: u64,
    tuples_per_relation: usize,
    theta: f64,
    rng: &mut R,
) -> (JoinQuery, Instance) {
    let query = JoinQuery::two_table(domain_size, domain_size, domain_size);
    let mut inst = Instance::empty_for(&query).expect("schema matches");
    for _ in 0..tuples_per_relation {
        let a = rng.random_range(0..domain_size);
        let b = zipf_value(domain_size, theta, rng);
        inst.relation_mut(0)
            .add(vec![a, b], 1)
            .expect("valid tuple");
        let b2 = zipf_value(domain_size, theta, rng);
        let c = rng.random_range(0..domain_size);
        inst.relation_mut(1)
            .add(vec![b2, c], 1)
            .expect("valid tuple");
    }
    (query, inst)
}

/// A random path (chain) join `R_1(A_0, A_1) ⋈ … ⋈ R_m(A_{m-1}, A_m)`:
/// every shared attribute drawn Zipf(θ), end attributes uniform.  The chain
/// shape is the planner's stress case — non-adjacent relation subsets are
/// attribute-disjoint, so a data-oblivious decomposition routes lazy lattice
/// walks through cross products the cost-based plan avoids.
pub fn random_path<R: Rng>(
    m: usize,
    domain_size: u64,
    tuples_per_relation: usize,
    theta: f64,
    rng: &mut R,
) -> (JoinQuery, Instance) {
    let query = JoinQuery::path(m, domain_size).expect("m >= 1");
    let mut inst = Instance::empty_for(&query).expect("schema matches");
    for rel in 0..m {
        for _ in 0..tuples_per_relation {
            let left = if rel == 0 {
                rng.random_range(0..domain_size)
            } else {
                zipf_value(domain_size, theta, rng)
            };
            let right = if rel + 1 == m {
                rng.random_range(0..domain_size)
            } else {
                zipf_value(domain_size, theta, rng)
            };
            inst.relation_mut(rel)
                .add(vec![left, right], 1)
                .expect("valid tuple");
        }
    }
    (query, inst)
}

/// A random star join with `m` petal relations sharing a hub attribute, hub
/// values drawn Zipf(θ).
pub fn random_star<R: Rng>(
    m: usize,
    domain_size: u64,
    tuples_per_relation: usize,
    theta: f64,
    rng: &mut R,
) -> (JoinQuery, Instance) {
    let query = JoinQuery::star(m, domain_size).expect("m >= 1");
    let mut inst = Instance::empty_for(&query).expect("schema matches");
    for rel in 0..m {
        for _ in 0..tuples_per_relation {
            let hub = zipf_value(domain_size, theta, rng);
            let petal = rng.random_range(0..domain_size);
            inst.relation_mut(rel)
                .add(vec![hub, petal], 1)
                .expect("valid tuple");
        }
    }
    (query, inst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(7)
    }

    #[test]
    fn uniform_two_table_has_requested_size() {
        let (q, inst) = random_two_table(16, 100, &mut rng());
        assert!(inst.validate(&q).is_ok());
        assert_eq!(inst.relation(0).total(), 100);
        assert_eq!(inst.relation(1).total(), 100);
    }

    #[test]
    fn zipf_skew_concentrates_degrees() {
        let mut r = rng();
        let (q, uniform) = zipf_two_table(32, 400, 0.0, &mut r);
        let (_, skewed) = zipf_two_table(32, 400, 1.5, &mut r);
        let max_deg =
            |inst: &Instance| dpsyn_sensitivity::two_table_local_sensitivity(&q, inst).unwrap();
        assert!(
            max_deg(&skewed) > max_deg(&uniform),
            "skewed {} vs uniform {}",
            max_deg(&skewed),
            max_deg(&uniform)
        );
    }

    #[test]
    fn path_generator_matches_query_shape() {
        let (q, inst) = random_path(4, 16, 30, 1.0, &mut rng());
        assert_eq!(q.num_relations(), 4);
        assert!(inst.validate(&q).is_ok());
        assert_eq!(inst.input_size(), 120);
        // Reproducible from the seed.
        let (_, again) = random_path(4, 16, 30, 1.0, &mut rng());
        assert_eq!(inst, again);
    }

    #[test]
    fn star_generator_matches_query_shape() {
        let (q, inst) = random_star(3, 16, 50, 1.0, &mut rng());
        assert_eq!(q.num_relations(), 3);
        assert!(inst.validate(&q).is_ok());
        assert_eq!(inst.input_size(), 150);
    }

    #[test]
    fn generators_are_reproducible() {
        let (_, a) = zipf_two_table(16, 64, 1.0, &mut rng());
        let (_, b) = zipf_two_table(16, 64, 1.0, &mut rng());
        assert_eq!(a, b);
    }

    #[test]
    fn zipf_value_stays_in_domain() {
        let mut r = rng();
        for _ in 0..1000 {
            assert!(zipf_value(8, 2.0, &mut r) < 8);
            assert!(zipf_value(1, 2.0, &mut r) == 0);
        }
    }
}
