//! The concrete instances drawn in the paper's figures and worked examples.

use dpsyn_relational::{AttrId, Attribute, Instance, JoinQuery, Schema};

/// Figure 1: a pair of two-table instances over `dom(A) = dom(C) = [n]`,
/// `dom(B) = [2n]`, with identical per-relation sizes but join sizes `n²`
/// (left) and `0` (right).  The pair demonstrates why handing the raw join to
/// single-table PMW leaks the join size.
pub fn fig1_pair(n: u64) -> (JoinQuery, Instance, Instance) {
    let query = JoinQuery::two_table(n, 2 * n, n);
    let mut left = Instance::empty_for(&query).expect("schema matches");
    let mut right = Instance::empty_for(&query).expect("schema matches");
    for j in 0..n {
        // Left: every R1 tuple uses join value b_1 = 0, and so does every R2 tuple.
        left.relation_mut(0)
            .add(vec![j, 0], 1)
            .expect("valid tuple");
        left.relation_mut(1)
            .add(vec![0, j], 1)
            .expect("valid tuple");
        // Right: R1 uses join values {0..n-1}, R2 uses {n..2n-1} — nothing joins.
        right
            .relation_mut(0)
            .add(vec![j, j], 1)
            .expect("valid tuple");
        right
            .relation_mut(1)
            .add(vec![n + j, j], 1)
            .expect("valid tuple");
    }
    (query, left, right)
}

/// Figure 2 / Theorem 3.5: the hard two-table instance that encodes a
/// single-table database `T : [d] → Z≥0` and amplifies both the join size and
/// the local sensitivity by a factor `Δ`.
///
/// * `dom(A) = [d]`, `dom(B) = [d·n]` (encoding pairs `(a, copy)`),
///   `dom(C) = [Δ]`;
/// * `R1(a, (b1, b2)) = 1` iff `a = b1` and `b2 ≤ T(a)`;
/// * `R2(b, c) = 1` for every `b` in the active domain of `B` and every `c`.
///
/// `n` is the maximum multiplicity (`T(a) ≤ n`); the resulting instance has
/// join size `Δ·Σ_a T(a)` and local sensitivity `Δ`.
pub fn fig2_hard_instance(table: &[u64], n: u64, delta: u64) -> (JoinQuery, Instance) {
    let d = table.len() as u64;
    let schema = Schema::new(vec![
        Attribute::new("A", d.max(1)),
        Attribute::new("B", (d * n).max(1)),
        Attribute::new("C", delta.max(1)),
    ]);
    let query = JoinQuery::new(
        schema,
        vec![vec![AttrId(0), AttrId(1)], vec![AttrId(1), AttrId(2)]],
    )
    .expect("two-table query");
    let mut inst = Instance::empty_for(&query).expect("schema matches");
    for (a, &count) in table.iter().enumerate() {
        for copy in 0..count.min(n) {
            let b = a as u64 * n + copy;
            inst.relation_mut(0)
                .add(vec![a as u64, b], 1)
                .expect("valid tuple");
            for c in 0..delta {
                inst.relation_mut(1)
                    .add(vec![b, c], 1)
                    .expect("valid tuple");
            }
        }
    }
    (query, inst)
}

/// Figure 3: the non-uniform two-table instance with `√n`-style degree spread:
/// for every `d ∈ {1, …, max_degree}` there is exactly one join value whose
/// degree is `d` in both relations.  Input size `Θ(max_degree²)`, join size
/// `Θ(max_degree³)`, local sensitivity `max_degree`.
pub fn fig3_nonuniform(max_degree: u64) -> (JoinQuery, Instance) {
    let num_values = max_degree;
    // The non-join attributes only need to distinguish tuples *within* a join
    // value, so their domains can be as small as the maximum degree — this
    // keeps the joint domain small enough for dense synthetic histograms.
    let dom_side = max_degree.max(1);
    let query = JoinQuery::two_table(dom_side, num_values.max(1), dom_side);
    let mut inst = Instance::empty_for(&query).expect("schema matches");
    for b in 0..num_values {
        let degree = b + 1;
        for k in 0..degree {
            inst.relation_mut(0)
                .add(vec![k, b], 1)
                .expect("valid tuple");
            inst.relation_mut(1)
                .add(vec![b, k], 1)
                .expect("valid tuple");
        }
    }
    (query, inst)
}

/// Example 4.2: for `i ∈ {0, …, (2/3)·log₂ k}` there are `k²/8^i` distinct join
/// values with degree `2^i` on both sides.  The instance has input size
/// `Θ(k²)`, join size `Θ(k² log k)` and local sensitivity `k^{2/3}`, and is the
/// family on which uniformization beats join-as-one by a `k^{1/3}` factor.
///
/// The returned instance uses `scale = k` (values of `k` below 8 are rounded
/// up so at least two degree classes exist).
pub fn example42_instance(k: u64) -> (JoinQuery, Instance) {
    let k = k.max(8);
    let levels = ((2.0 / 3.0) * (k as f64).log2()).floor() as u32;
    // Upper bounds on the number of join values and per-side degrees.
    let mut value_count: u64 = 0;
    for i in 0..=levels {
        value_count += (k * k / 8u64.pow(i)).max(1);
    }
    let max_degree = 2u64.pow(levels);
    // As in `fig3_nonuniform`, non-join attributes only need `max_degree`
    // distinct values, which keeps the joint domain tractable.
    let query = JoinQuery::two_table(max_degree, value_count, max_degree);
    let mut inst = Instance::empty_for(&query).expect("schema matches");
    let mut next_value: u64 = 0;
    for i in 0..=levels {
        let degree = 2u64.pow(i);
        let values = (k * k / 8u64.pow(i)).max(1);
        for _ in 0..values {
            let b = next_value;
            next_value += 1;
            for d in 0..degree {
                inst.relation_mut(0)
                    .add(vec![d, b], 1)
                    .expect("valid tuple");
                inst.relation_mut(1)
                    .add(vec![b, d], 1)
                    .expect("valid tuple");
            }
        }
    }
    (query, inst)
}

/// The Figure 4 hierarchical join query:
/// `x = {A,B,C,D,F,G,K,L}`, `x1={A,B,D}`, `x2={A,B,F}`, `x3={A,B,G,K}`,
/// `x4={A,B,G,L}`, `x5={A,C}` with a uniform per-attribute domain size.
pub fn fig4_query(domain_size: u64) -> JoinQuery {
    let schema = Schema::uniform(&["A", "B", "C", "D", "F", "G", "K", "L"], domain_size);
    JoinQuery::new(
        schema,
        vec![
            vec![AttrId(0), AttrId(1), AttrId(3)],
            vec![AttrId(0), AttrId(1), AttrId(4)],
            vec![AttrId(0), AttrId(1), AttrId(5), AttrId(6)],
            vec![AttrId(0), AttrId(1), AttrId(5), AttrId(7)],
            vec![AttrId(0), AttrId(2)],
        ],
    )
    .expect("figure 4 query is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpsyn_relational::join_size;
    use dpsyn_sensitivity::local_sensitivity;

    #[test]
    fn fig1_join_sizes_are_n_squared_and_zero() {
        let n = 16;
        let (q, left, right) = fig1_pair(n);
        assert_eq!(join_size(&q, &left).unwrap(), (n * n) as u128);
        assert_eq!(join_size(&q, &right).unwrap(), 0);
        assert_eq!(left.input_size(), right.input_size());
        assert!(left.validate(&q).is_ok());
        assert!(right.validate(&q).is_ok());
    }

    #[test]
    fn fig2_amplifies_join_size_and_sensitivity_by_delta() {
        let table = vec![3u64, 0, 2, 5];
        let (q, inst) = fig2_hard_instance(&table, 8, 4);
        let total: u64 = table.iter().sum();
        assert_eq!(join_size(&q, &inst).unwrap(), (total * 4) as u128);
        assert_eq!(local_sensitivity(&q, &inst).unwrap(), 4);
        assert!(inst.validate(&q).is_ok());
    }

    #[test]
    fn fig3_has_one_value_per_degree() {
        let (q, inst) = fig3_nonuniform(8);
        assert!(inst.validate(&q).is_ok());
        // Input size per relation = 1 + 2 + … + 8 = 36.
        assert_eq!(inst.relation(0).total(), 36);
        assert_eq!(inst.relation(1).total(), 36);
        // Join size = Σ d² = 204; local sensitivity = 8.
        assert_eq!(join_size(&q, &inst).unwrap(), 204);
        assert_eq!(local_sensitivity(&q, &inst).unwrap(), 8);
    }

    #[test]
    fn example42_degree_profile() {
        let k = 16;
        let (q, inst) = example42_instance(k);
        assert!(inst.validate(&q).is_ok());
        // Local sensitivity is the largest degree class 2^levels ≈ k^{2/3}.
        let levels = ((2.0 / 3.0) * (k as f64).log2()).floor() as u32;
        assert_eq!(local_sensitivity(&q, &inst).unwrap(), 2u128.pow(levels));
        // Input size is Θ(k²): each level contributes ≈ k² tuples per relation.
        let n = inst.input_size();
        assert!(n >= (k * k) && n <= 4 * (levels as u64 + 1) * k * k);
    }

    #[test]
    fn fig4_query_is_hierarchical() {
        let q = fig4_query(4);
        assert_eq!(q.num_relations(), 5);
        assert!(q.is_hierarchical());
    }
}
