//! Head-to-head benchmark of the hash-join engine against the retained
//! naive `BTreeMap` engine, plus the shared-cache residual-sensitivity
//! subset enumeration against its from-scratch counterpart.
//!
//! Besides printing per-scenario timings, this bench writes the speedup
//! table to `BENCH_join.json` at the repository root (via the shared
//! reporting module), so the performance trajectory is tracked in-tree and
//! by CI.  The scenarios mirror `relational_ops` (two-table Zipf joins,
//! star joins) and `sensitivity` (m-star residual subset enumeration), plus
//! parallel-scaling rows comparing the worker pool at N threads against the
//! sequential path (`threads`/`available_cores` fields record the context —
//! wall-clock scaling is bounded by the machine's core count, while outputs
//! are asserted byte-identical before timing).

use std::time::{Duration, Instant};

use criterion::black_box;
use dpsyn_bench::{print_table, rows_to_json_pretty, Row};
use dpsyn_datagen::{random_star, random_two_table, zipf_two_table};
use dpsyn_noise::seeded_rng;
use dpsyn_relational::naive::{all_boundary_values_naive, join_size_naive};
use dpsyn_relational::{join_size, join_size_with, join_with, Instance, JoinQuery, Parallelism};
use dpsyn_sensitivity::{all_boundary_values, all_boundary_values_with};

/// Median wall-clock time of `f` over `samples` runs (with one warm-up run),
/// in nanoseconds.
fn median_ns(samples: usize, mut f: impl FnMut()) -> f64 {
    f(); // warm-up
    let mut times: Vec<f64> = (0..samples.max(1))
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64() * 1e9
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
    times[times.len() / 2]
}

/// Picks a sample count so each measurement stays within a small budget.
fn sample_count(once: Duration) -> usize {
    let budget = Duration::from_millis(600);
    ((budget.as_nanos() / once.as_nanos().max(1)) as usize).clamp(5, 60)
}

fn bench_pair(label: &str, mut fast: impl FnMut(), mut naive: impl FnMut()) -> Row {
    let probe = Instant::now();
    naive();
    let samples = sample_count(probe.elapsed());
    let fast_ns = median_ns(samples, &mut fast);
    let naive_ns = median_ns(samples, &mut naive);
    let speedup = naive_ns / fast_ns.max(1.0);
    println!(
        "bench: {label:<32} hash {fast_ns:>14.1} ns  naive {naive_ns:>14.1} ns  speedup {speedup:>6.2}x"
    );
    Row::new(label)
        .with("hash_ns", fast_ns)
        .with("naive_ns", naive_ns)
        .with("speedup", speedup)
}

/// Threads used by the parallel-scaling scenarios.
const SCALING_THREADS: usize = 4;

fn bench_scaling(label: &str, mut par: impl FnMut(), mut seq: impl FnMut()) -> Row {
    let probe = Instant::now();
    seq();
    let samples = sample_count(probe.elapsed());
    let par_ns = median_ns(samples, &mut par);
    let seq_ns = median_ns(samples, &mut seq);
    let speedup = seq_ns / par_ns.max(1.0);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "bench: {label:<32} par  {par_ns:>14.1} ns  seq   {seq_ns:>14.1} ns  speedup {speedup:>6.2}x ({SCALING_THREADS} threads, {cores} cores)"
    );
    Row::new(label)
        .with("par_ns", par_ns)
        .with("seq_ns", seq_ns)
        .with("speedup", speedup)
        .with("threads", SCALING_THREADS as f64)
        .with("available_cores", cores as f64)
}

fn join_scenarios() -> Vec<(String, JoinQuery, Instance)> {
    let mut out = Vec::new();
    for &n in &[200usize, 800] {
        let mut rng = seeded_rng(1);
        let (query, instance) = zipf_two_table(64, n, 1.0, &mut rng);
        out.push((format!("join/two_table/{n}"), query, instance));
    }
    for &m in &[3usize, 4] {
        let mut rng = seeded_rng(2);
        let (query, instance) = random_star(m, 32, 200, 1.0, &mut rng);
        out.push((format!("join/star/{m}"), query, instance));
    }
    out
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let mut rows = Vec::new();

    // --- Join throughput: hash engine vs. naive engine --------------------
    for (label, query, instance) in join_scenarios() {
        if quick && label.contains("800") {
            continue;
        }
        rows.push(bench_pair(
            &label,
            || {
                black_box(join_size(&query, &instance).unwrap());
            },
            || {
                black_box(join_size_naive(&query, &instance).unwrap());
            },
        ));
    }

    // --- Residual-sensitivity subset enumeration --------------------------
    // m = 4 star: 15 non-empty subsets; shared-prefix caching vs. re-joining
    // from scratch per subset.
    for &(m, per_rel) in &[(3usize, 150usize), (4, 120)] {
        if quick && m == 4 {
            continue;
        }
        let mut rng = seeded_rng(7);
        let (query, instance) = random_star(m, 32, per_rel, 1.0, &mut rng);
        rows.push(bench_pair(
            &format!("residual/subsets/star{m}"),
            || {
                black_box(all_boundary_values(&query, &instance).unwrap());
            },
            || {
                black_box(all_boundary_values_naive(&query, &instance).unwrap());
            },
        ));
    }

    // --- Parallel scaling: worker pool (4 threads) vs sequential path -----
    // Large probe sides so the partitioned probe loop actually engages; the
    // byte-identity of parallel vs sequential output is asserted before any
    // timing.  `available_cores` records the machine context: wall-clock
    // scaling is capped by physical cores even though 4 workers run.
    let par = Parallelism::threads(SCALING_THREADS);
    let seq = Parallelism::SEQUENTIAL;
    {
        let n = if quick { 20_000 } else { 60_000 };
        let mut rng = seeded_rng(11);
        let (query, instance) = random_two_table(16_384, n, &mut rng);
        let a = join_with(&query, &instance, par).expect("parallel join");
        let b = join_with(&query, &instance, seq).expect("sequential join");
        assert!(
            a.iter_unordered().eq(b.iter_unordered()),
            "parallel join output must be byte-identical to sequential"
        );
        rows.push(bench_scaling(
            &format!("join/two_table/{n}/par{SCALING_THREADS}"),
            || {
                black_box(join_size_with(&query, &instance, par).unwrap());
            },
            || {
                black_box(join_size_with(&query, &instance, seq).unwrap());
            },
        ));
    }
    {
        let per_rel = if quick { 800 } else { 2_000 };
        let mut rng = seeded_rng(12);
        let (query, instance) = random_star(4, 256, per_rel, 0.4, &mut rng);
        let a = all_boundary_values_with(&query, &instance, par).expect("parallel enumeration");
        let b = all_boundary_values_with(&query, &instance, seq).expect("sequential enumeration");
        assert_eq!(
            a, b,
            "parallel boundary values must be identical to sequential"
        );
        rows.push(bench_scaling(
            &format!("residual/subsets/star4/par{SCALING_THREADS}"),
            || {
                black_box(all_boundary_values_with(&query, &instance, par).unwrap());
            },
            || {
                black_box(all_boundary_values_with(&query, &instance, seq).unwrap());
            },
        ));
    }

    print_table("join_throughput — hash engine vs naive reference", &rows);

    // Commit the full results next to the workspace root so CI and the repo
    // track the trajectory (BENCH_join.json).  Quick mode covers a reduced
    // row set, so it writes a sibling file instead of truncating the
    // committed one.
    let path = if quick {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_join.quick.json")
    } else {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_join.json")
    };
    std::fs::write(path, rows_to_json_pretty(&rows) + "\n").expect("write bench results");
    println!("wrote {path}");
}
