//! Head-to-head benchmark of the hash-join engine against the retained
//! naive `BTreeMap` engine, plus the shared-cache residual-sensitivity
//! subset enumeration against its from-scratch counterpart.
//!
//! Besides printing per-scenario timings, this bench writes the speedup
//! table to `BENCH_join.json` at the repository root (via the shared
//! reporting module), so the performance trajectory is tracked in-tree and
//! by CI.  The scenarios mirror `relational_ops` (two-table Zipf joins,
//! star joins) and `sensitivity` (m-star residual subset enumeration).

use std::time::{Duration, Instant};

use criterion::black_box;
use dpsyn_bench::{print_table, rows_to_json_pretty, Row};
use dpsyn_datagen::{random_star, zipf_two_table};
use dpsyn_noise::seeded_rng;
use dpsyn_relational::naive::{all_boundary_values_naive, join_size_naive};
use dpsyn_relational::{join_size, Instance, JoinQuery};
use dpsyn_sensitivity::all_boundary_values;

/// Median wall-clock time of `f` over `samples` runs (with one warm-up run),
/// in nanoseconds.
fn median_ns(samples: usize, mut f: impl FnMut()) -> f64 {
    f(); // warm-up
    let mut times: Vec<f64> = (0..samples.max(1))
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64() * 1e9
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
    times[times.len() / 2]
}

/// Picks a sample count so each measurement stays within a small budget.
fn sample_count(once: Duration) -> usize {
    let budget = Duration::from_millis(600);
    ((budget.as_nanos() / once.as_nanos().max(1)) as usize).clamp(5, 60)
}

fn bench_pair(label: &str, mut fast: impl FnMut(), mut naive: impl FnMut()) -> Row {
    let probe = Instant::now();
    naive();
    let samples = sample_count(probe.elapsed());
    let fast_ns = median_ns(samples, &mut fast);
    let naive_ns = median_ns(samples, &mut naive);
    let speedup = naive_ns / fast_ns.max(1.0);
    println!(
        "bench: {label:<32} hash {fast_ns:>14.1} ns  naive {naive_ns:>14.1} ns  speedup {speedup:>6.2}x"
    );
    Row::new(label)
        .with("hash_ns", fast_ns)
        .with("naive_ns", naive_ns)
        .with("speedup", speedup)
}

fn join_scenarios() -> Vec<(String, JoinQuery, Instance)> {
    let mut out = Vec::new();
    for &n in &[200usize, 800] {
        let mut rng = seeded_rng(1);
        let (query, instance) = zipf_two_table(64, n, 1.0, &mut rng);
        out.push((format!("join/two_table/{n}"), query, instance));
    }
    for &m in &[3usize, 4] {
        let mut rng = seeded_rng(2);
        let (query, instance) = random_star(m, 32, 200, 1.0, &mut rng);
        out.push((format!("join/star/{m}"), query, instance));
    }
    out
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let mut rows = Vec::new();

    // --- Join throughput: hash engine vs. naive engine --------------------
    for (label, query, instance) in join_scenarios() {
        if quick && label.contains("800") {
            continue;
        }
        rows.push(bench_pair(
            &label,
            || {
                black_box(join_size(&query, &instance).unwrap());
            },
            || {
                black_box(join_size_naive(&query, &instance).unwrap());
            },
        ));
    }

    // --- Residual-sensitivity subset enumeration --------------------------
    // m = 4 star: 15 non-empty subsets; shared-prefix caching vs. re-joining
    // from scratch per subset.
    for &(m, per_rel) in &[(3usize, 150usize), (4, 120)] {
        if quick && m == 4 {
            continue;
        }
        let mut rng = seeded_rng(7);
        let (query, instance) = random_star(m, 32, per_rel, 1.0, &mut rng);
        rows.push(bench_pair(
            &format!("residual/subsets/star{m}"),
            || {
                black_box(all_boundary_values(&query, &instance).unwrap());
            },
            || {
                black_box(all_boundary_values_naive(&query, &instance).unwrap());
            },
        ));
    }

    print_table("join_throughput — hash engine vs naive reference", &rows);

    // Commit the full results next to the workspace root so CI and the repo
    // track the trajectory (BENCH_join.json).  Quick mode covers a reduced
    // row set, so it writes a sibling file instead of truncating the
    // committed one.
    let path = if quick {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_join.quick.json")
    } else {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_join.json")
    };
    std::fs::write(path, rows_to_json_pretty(&rows) + "\n").expect("write bench results");
    println!("wrote {path}");
}
