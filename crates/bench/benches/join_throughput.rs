//! Head-to-head benchmark of the hash-join engine against the retained
//! naive `BTreeMap` engine, plus the shared-cache residual-sensitivity
//! subset enumeration against its from-scratch counterpart.
//!
//! Besides printing per-scenario timings, this bench writes the speedup
//! table to `BENCH_join.json` at the repository root (via the shared
//! reporting module), so the performance trajectory is tracked in-tree and
//! by CI.  The scenarios mirror `relational_ops` (two-table Zipf joins,
//! star joins) and `sensitivity` (m-star residual subset enumeration), plus
//! parallel-scaling rows comparing the worker pool at N threads against the
//! sequential path (`threads`/`available_cores` fields record the context —
//! wall-clock scaling is bounded by the machine's core count, while outputs
//! are asserted byte-identical before timing), plus a `session/cache_reuse`
//! row measuring a warm (one `ExecContext`, lattice persisted across calls)
//! against a cold (fresh context per call) residual-sensitivity β sweep,
//! plus `edit_sweep/*` rows measuring delta-join maintenance (probe one
//! edited tuple through the cached sub-join lattice) against the full
//! re-join baseline on removal and smooth-sensitivity sweeps, plus
//! `planner/*` rows comparing the cost-based lattice decomposition against
//! the historical fixed-prefix chain on chain / star / skewed scenarios —
//! recording the chosen decomposition (`spine`, `top_order`) and the total
//! cached-intermediate tuple counts alongside wall-clock (`--planner-smoke`
//! runs only this group, for CI), plus `adaptive/*` rows measuring (a) the
//! mergeable-sketch statistics gather against the historical exact
//! distinct-set gather and (b) the resident-intermediate footprint and
//! wall-clock of runtime-feedback re-planning against the static plan on
//! the correlated-pair workload (where independence estimates provably
//! fail) and the heavy-hitter star control (`--adaptive-smoke` runs only
//! this group — adaptive values are asserted identical to static before
//! any timing), plus `agg/*` rows measuring the count-only
//! aggregate-pushdown evaluation (terminal lattice masks folded into
//! grouped accumulators behind a Bloom semi-join pre-filter, never
//! materialised) against the materializing oracle on residual sweeps —
//! byte-identity of both modes against the naive engine is asserted before
//! timing, and rows record the resident-byte reduction alongside
//! wall-clock (`--agg-smoke` runs only this group and refreshes the
//! committed `agg/*` rows in place).  All A/B comparison groups
//! (`planner/*`, `sched/*`, `agg/*`, like `stream/*` before them) measure
//! their arms interleaved, so recorded speedups are immune to machine-speed
//! drift between arms.

use std::sync::Arc;
use std::time::{Duration, Instant};

use criterion::black_box;
use dpsyn_bench::{existing_rows_json, print_table, raw_rows_to_json_pretty, Row};
use dpsyn_datagen::{
    correlated_pair, heavy_hitter_star, random_path, random_star, random_two_table,
    wide_attribute_pair, zipf_two_table,
};
use dpsyn_noise::seeded_rng;
use dpsyn_relational::naive::{all_boundary_values_naive, join_size_naive};
use dpsyn_relational::{
    fold_fully_packable, hash_join_step_mode, join_encoded, join_size, AttrDictionary, ExecContext,
    FxHashSet, Instance, JoinPlan, JoinQuery, JoinResult, Parallelism, PlanConfig, ProbeMode,
    RelationStats, Schedule, ShardedSubJoinCache, SubJoinCache, Value,
};
use dpsyn_sensitivity::{all_boundary_values, SensitivityConfig, SensitivityOps};

/// Median wall-clock time of `f` over `samples` runs (with one warm-up run),
/// in nanoseconds.
fn median_ns(samples: usize, mut f: impl FnMut()) -> f64 {
    f(); // warm-up
    let mut times: Vec<f64> = (0..samples.max(1))
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64() * 1e9
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
    times[times.len() / 2]
}

/// Picks a sample count so each measurement stays within a small budget.
fn sample_count(once: Duration) -> usize {
    let budget = Duration::from_millis(600);
    ((budget.as_nanos() / once.as_nanos().max(1)) as usize).clamp(5, 60)
}

/// Median wall-clock times of two alternating measurements, in nanoseconds.
/// The arms are interleaved (`a`, `b`, `a`, `b`, …, after one warm-up of
/// each) so slow drift in effective machine speed — frequency scaling,
/// noisy neighbours on a shared core — biases both medians equally instead
/// of whichever arm happened to run in the slower stretch.  A/B comparison
/// rows (`planner/*`, `sched/*`, `agg/*`) use this; the `speedup` fields
/// they record are therefore drift-free.
fn median_ns_interleaved(samples: usize, a: &mut dyn FnMut(), b: &mut dyn FnMut()) -> (f64, f64) {
    a();
    b();
    let mut times_a = Vec::with_capacity(samples.max(1));
    let mut times_b = Vec::with_capacity(samples.max(1));
    for _ in 0..samples.max(1) {
        let t = Instant::now();
        a();
        times_a.push(t.elapsed().as_secs_f64() * 1e9);
        let t = Instant::now();
        b();
        times_b.push(t.elapsed().as_secs_f64() * 1e9);
    }
    let median = |mut times: Vec<f64>| {
        times.sort_by(|x, y| x.partial_cmp(y).expect("finite times"));
        times[times.len() / 2]
    };
    (median(times_a), median(times_b))
}

fn bench_pair(label: &str, mut fast: impl FnMut(), mut naive: impl FnMut()) -> Row {
    let probe = Instant::now();
    naive();
    let samples = sample_count(probe.elapsed());
    let fast_ns = median_ns(samples, &mut fast);
    let naive_ns = median_ns(samples, &mut naive);
    let speedup = naive_ns / fast_ns.max(1.0);
    println!(
        "bench: {label:<32} hash {fast_ns:>14.1} ns  naive {naive_ns:>14.1} ns  speedup {speedup:>6.2}x"
    );
    Row::new(label)
        .with("hash_ns", fast_ns)
        .with("naive_ns", naive_ns)
        .with("speedup", speedup)
}

/// Threads used by the parallel-scaling scenarios.
const SCALING_THREADS: usize = 4;

fn bench_scaling(label: &str, mut par: impl FnMut(), mut seq: impl FnMut()) -> Row {
    let probe = Instant::now();
    seq();
    let samples = sample_count(probe.elapsed());
    let par_ns = median_ns(samples, &mut par);
    let seq_ns = median_ns(samples, &mut seq);
    let speedup = seq_ns / par_ns.max(1.0);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "bench: {label:<32} par  {par_ns:>14.1} ns  seq   {seq_ns:>14.1} ns  speedup {speedup:>6.2}x ({SCALING_THREADS} threads, {cores} cores)"
    );
    Row::new(label)
        .with("par_ns", par_ns)
        .with("seq_ns", seq_ns)
        .with("speedup", speedup)
        .with("threads", SCALING_THREADS as f64)
        .with("available_cores", cores as f64)
}

/// A local-sensitivity-style lattice pass over one cache: the `m`
/// size-`(m-1)` directions evaluated as transient tops, memoising (and thus
/// keeping resident) exactly the decomposition chains the cache's plan
/// chooses.  Returns the local sensitivity, so identity across plans is
/// checked by the caller.
fn lattice_pass(query: &JoinQuery, cache: &ShardedSubJoinCache<'_>) -> u128 {
    let m = query.num_relations();
    let full = (1u32 << m) - 1;
    let mut best = 0u128;
    for i in 0..m {
        let others_mask = full & !(1u32 << i);
        let others: Vec<usize> = (0..m).filter(|&j| j != i).collect();
        let boundary = query.boundary(&others).expect("valid subset");
        let value = cache
            .join_mask_transient(others_mask, Parallelism::SEQUENTIAL)
            .expect("sub-join")
            .max_group_weight(&boundary)
            .expect("grouping");
        best = best.max(value);
    }
    best
}

/// The adaptive twin of [`lattice_pass`]: the same m transient targets,
/// walked adaptively — each materialised chain step's actual cardinality is
/// measured against the plan's estimate and a breach of the configured
/// ratio re-plans the remainder, re-routing later targets around
/// correlation traps.  Values are identical to [`lattice_pass`]; only the
/// set of resident intermediates differs.
fn lattice_pass_adaptive(
    query: &JoinQuery,
    cache: &mut ShardedSubJoinCache<'_>,
    config: &PlanConfig,
) -> u128 {
    let m = query.num_relations();
    let full = (1u32 << m) - 1;
    let mut best = 0u128;
    for i in 0..m {
        let others_mask = full & !(1u32 << i);
        let others: Vec<usize> = (0..m).filter(|&j| j != i).collect();
        let boundary = query.boundary(&others).expect("valid subset");
        let value = cache
            .join_mask_transient_adaptive(others_mask, Parallelism::SEQUENTIAL, config)
            .expect("sub-join")
            .max_group_weight(&boundary)
            .expect("grouping");
        best = best.max(value);
    }
    best
}

/// The adaptive-planning group.
///
/// `adaptive/gather/*`: the mergeable-sketch statistics gather
/// ([`RelationStats::gather`]) against the historical exact per-attribute
/// distinct-set gather over the same iteration path — with every sketch
/// estimate asserted inside the HyperLogLog error envelope of the exact
/// count before timing.
///
/// `adaptive/tuples/*`: a cold local-sensitivity lattice pass (transient
/// walks) under the static plan vs the adaptive walks, on the
/// correlated-pair workload whose functional dependency provably breaks
/// independence estimates, and on the heavy-hitter star where estimates
/// mostly hold (the control: adaptivity must not hurt it).  Adaptive
/// values are asserted identical to static before timing; rows record the
/// resident-intermediate tuple counts and the re-plan feedback counters.
fn adaptive_rows(quick: bool) -> Vec<Row> {
    let mut rows = Vec::new();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    // --- (a) sketch gather vs exact distinct sets -------------------------
    let gather_scenarios: Vec<(String, JoinQuery, Instance)> = vec![
        {
            let n = if quick { 20_000 } else { 60_000 };
            let (q, i) = random_two_table(16_384, n, &mut seeded_rng(51));
            (format!("adaptive/gather/two_table/{n}"), q, i)
        },
        {
            let (key_space, n) = if quick {
                (512u64, 10_000)
            } else {
                (2_048, 40_000)
            };
            let (q, i) = wide_attribute_pair(key_space, n, &mut seeded_rng(52));
            (format!("adaptive/gather/wide4/{n}"), q, i)
        },
    ];
    for (label, query, instance) in &gather_scenarios {
        let exact_gather = || {
            let mut total = 0u64;
            for r in 0..query.num_relations() {
                let rel = instance.relation(r);
                let mut sets: Vec<FxHashSet<Value>> =
                    rel.attrs().iter().map(|_| FxHashSet::default()).collect();
                for (t, _) in rel.iter() {
                    for (pos, &v) in t.iter().enumerate() {
                        sets[pos].insert(v);
                    }
                }
                total += sets.iter().map(|s| s.len() as u64).sum::<u64>();
            }
            total
        };
        // Accuracy before timing: every per-attribute estimate within the
        // HLL envelope of its exact count.
        let stats = RelationStats::gather(query, instance).expect("gather");
        for r in 0..query.num_relations() {
            let rel = instance.relation(r);
            let mut sets: Vec<FxHashSet<Value>> =
                rel.attrs().iter().map(|_| FxHashSet::default()).collect();
            for (t, _) in rel.iter() {
                for (pos, &v) in t.iter().enumerate() {
                    sets[pos].insert(v);
                }
            }
            for (pos, &attr) in rel.attrs().iter().enumerate() {
                let exact = sets[pos].len() as f64;
                let est = stats.distinct(r, attr) as f64;
                assert!(
                    (est - exact).abs() <= 0.08 * exact.max(1.0),
                    "{label}: relation {r} attr {attr:?} estimate {est} vs exact {exact}"
                );
            }
        }
        let probe = Instant::now();
        let _ = exact_gather();
        let samples = sample_count(probe.elapsed());
        let sketch_ns = median_ns(samples, || {
            black_box(RelationStats::gather(query, instance).expect("gather"));
        });
        let exact_ns = median_ns(samples, || {
            black_box(exact_gather());
        });
        let speedup = exact_ns / sketch_ns.max(1.0);
        println!(
            "bench: {label:<32} sketch {sketch_ns:>12.1} ns  exact {exact_ns:>13.1} ns  speedup {speedup:>6.2}x (1 thread, {cores} cores)"
        );
        rows.push(
            Row::new(label)
                .with("sketch_ns", sketch_ns)
                .with("exact_ns", exact_ns)
                .with("speedup", speedup)
                .with("threads", 1.0)
                .with("available_cores", cores as f64),
        );
    }

    // --- (b) resident intermediates: static vs adaptive walks -------------
    let config = PlanConfig::default();
    let walk_scenarios: Vec<(String, JoinQuery, Instance)> = vec![
        {
            let (keys, fanout, pair_rows, payloads) = if quick {
                (48, 12, 256, 6)
            } else {
                (64, 16, 512, 8)
            };
            let (q, i) = correlated_pair(3, keys, fanout, pair_rows, payloads, &mut seeded_rng(53));
            (format!("adaptive/tuples/correlated_pair/{pair_rows}"), q, i)
        },
        {
            let per_rel = if quick { 120 } else { 300 };
            let (q, i) = heavy_hitter_star(4, 64, per_rel, 0.6, &mut seeded_rng(54));
            (format!("adaptive/tuples/heavy_hitter_star/{per_rel}"), q, i)
        },
    ];
    for (label, query, instance) in &walk_scenarios {
        let plan = Arc::new(JoinPlan::cost_based(query, instance).expect("plan"));
        // Identity before timing: the adaptive pass computes exactly the
        // static pass's local sensitivity, and its resident footprint is
        // what the row records.
        let (static_value, static_tuples) = {
            let cache =
                ShardedSubJoinCache::with_plan(query, instance, Arc::clone(&plan)).expect("cache");
            (lattice_pass(query, &cache), cache.cached_tuples())
        };
        let (adaptive_value, adaptive_tuples, replans, triggers) = {
            let mut cache =
                ShardedSubJoinCache::with_plan(query, instance, Arc::clone(&plan)).expect("cache");
            let value = lattice_pass_adaptive(query, &mut cache, &config);
            let feedback = cache.replan_stats().cloned().unwrap_or_default();
            (
                value,
                cache.cached_tuples(),
                feedback.replans,
                feedback.triggers,
            )
        };
        assert_eq!(
            adaptive_value, static_value,
            "{label}: adaptive walks must be byte-identical to static"
        );
        let static_run = || {
            let cache =
                ShardedSubJoinCache::with_plan(query, instance, Arc::clone(&plan)).expect("cache");
            black_box(lattice_pass(query, &cache));
        };
        let adaptive_run = || {
            let mut cache =
                ShardedSubJoinCache::with_plan(query, instance, Arc::clone(&plan)).expect("cache");
            black_box(lattice_pass_adaptive(query, &mut cache, &config));
        };
        let probe = Instant::now();
        static_run();
        let samples = sample_count(probe.elapsed());
        let adaptive_ns = median_ns(samples, adaptive_run);
        let static_ns = median_ns(samples, static_run);
        let speedup = static_ns / adaptive_ns.max(1.0);
        let tuple_ratio = static_tuples as f64 / (adaptive_tuples as f64).max(1.0);
        println!(
            "bench: {label:<32} adapt {adaptive_ns:>13.1} ns  static {static_ns:>13.1} ns  speedup {speedup:>6.2}x  tuples {adaptive_tuples} vs {static_tuples} ({tuple_ratio:.2}x, {replans} replans / {triggers} triggers)"
        );
        rows.push(
            Row::new(label)
                .with("adaptive_ns", adaptive_ns)
                .with("static_ns", static_ns)
                .with("speedup", speedup)
                .with("adaptive_tuples", adaptive_tuples as f64)
                .with("static_tuples", static_tuples as f64)
                .with("tuple_ratio", tuple_ratio)
                .with("replans", replans as f64)
                .with("triggers", triggers as f64)
                .with("available_cores", cores as f64),
        );
    }
    rows
}

/// The aggregate-pushdown group: a cold residual sweep (boundary-value
/// lattice + residual sensitivity at three β) under the count-only
/// evaluation mode (`AggMode::Auto`: terminal masks fold straight into
/// grouped accumulators behind the Bloom pre-filter) against the
/// materializing oracle (`AggMode::Never`), on the uniform star4 and the
/// skewed star.
///
/// Byte-identity is asserted before timing: boundary values and residual
/// sensitivities under both modes equal each other and the naive engine,
/// bit for bit.  Rows record both wall-clocks (interleaved), the resident
/// cache bytes after the sweep under each mode (`bytes_ratio` is the
/// footprint reduction the mode buys) and how many masks stayed count-only.
fn agg_rows(quick: bool) -> Vec<Row> {
    use dpsyn_relational::AggMode;
    let mut rows = Vec::new();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let betas = [0.2f64, 0.5, 1.0];
    let scenarios: Vec<(String, JoinQuery, Instance)> = vec![
        {
            let per_rel = if quick { 80 } else { 240 };
            let (q, i) = random_star(4, 32, per_rel, 0.0, &mut seeded_rng(61));
            (format!("agg/residual/star4/{per_rel}"), q, i)
        },
        {
            let per_rel = if quick { 20 } else { 50 };
            let (q, i) = skewed_star(per_rel, 62);
            (format!("agg/residual/skewed_star4/{per_rel}"), q, i)
        },
    ];
    for (label, query, instance) in &scenarios {
        let sweep = |mode: AggMode| {
            let ctx = ExecContext::sequential()
                .with_plan_config(PlanConfig::default().with_agg_mode(mode));
            let bv = ctx
                .all_boundary_values(query, instance)
                .expect("boundary values");
            let rs: Vec<f64> = betas
                .iter()
                .map(|&beta| {
                    ctx.residual_sensitivity(query, instance, beta)
                        .expect("residual")
                        .value
                })
                .collect();
            let stats = ctx.plan_stats(query, instance).expect("plan stats");
            (bv, rs, ctx.cached_subjoin_bytes(), stats.aggregated_masks)
        };
        // Byte-identity before timing: the count-only sweep equals the
        // materializing oracle and the naive engine, bit for bit.
        let (agg_bv, agg_rs, agg_bytes, aggregated_masks) = sweep(AggMode::Auto);
        let (mat_bv, mat_rs, mat_bytes, mat_aggregated) = sweep(AggMode::Never);
        let naive_bv = all_boundary_values_naive(query, instance).expect("naive");
        assert_eq!(agg_bv, mat_bv, "{label}: boundary values must not change");
        assert_eq!(agg_bv, naive_bv, "{label}: naive oracle must agree");
        assert_eq!(mat_aggregated, 0, "{label}: Never must materialize");
        assert!(aggregated_masks > 0, "{label}: Auto must aggregate");
        for (a, m) in agg_rs.iter().zip(&mat_rs) {
            assert_eq!(
                a.to_bits(),
                m.to_bits(),
                "{label}: residual sensitivity must be bit-identical"
            );
        }
        let mut agg_run = || {
            black_box(sweep(AggMode::Auto));
        };
        let mut mat_run = || {
            black_box(sweep(AggMode::Never));
        };
        let probe = Instant::now();
        mat_run();
        let samples = sample_count(probe.elapsed());
        let (agg_ns, mat_ns) = median_ns_interleaved(samples, &mut agg_run, &mut mat_run);
        let speedup = mat_ns / agg_ns.max(1.0);
        let bytes_ratio = mat_bytes as f64 / (agg_bytes as f64).max(1.0);
        println!(
            "bench: {label:<32} agg {agg_ns:>15.1} ns  mat {mat_ns:>15.1} ns  speedup {speedup:>6.2}x  bytes {agg_bytes} vs {mat_bytes} ({bytes_ratio:.2}x, {aggregated_masks} count-only masks, {cores} cores)"
        );
        rows.push(
            Row::new(label)
                .with("agg_ns", agg_ns)
                .with("mat_ns", mat_ns)
                .with("speedup", speedup)
                .with("agg_bytes", agg_bytes as f64)
                .with("mat_bytes", mat_bytes as f64)
                .with("bytes_ratio", bytes_ratio)
                .with("aggregated_masks", aggregated_masks as f64)
                .with("available_cores", cores as f64),
        );
    }
    rows
}

/// A skewed-degree star: heterogeneous relation sizes plus Zipf hubs, so
/// pair sub-joins differ wildly in size and the planner's parent choice
/// matters.
fn skewed_star(per_rel: usize, seed: u64) -> (JoinQuery, Instance) {
    use rand::Rng;
    let query = JoinQuery::star(4, 64).expect("m >= 1");
    let mut inst = Instance::empty_for(&query).expect("schema matches");
    let mut rng = seeded_rng(seed);
    for rel in 0..4usize {
        // Sizes 27×, 9×, 3×, 1× the base: the heavy relations sit at the LOW
        // indices, so the fixed rule (peel the highest index) keeps them in
        // every parent while the planner peels them off first.
        let n = per_rel * 3usize.pow(3 - rel as u32);
        for _ in 0..n {
            let hub = (rng.random::<f64>().powi(3) * 64.0) as u64 % 64;
            let petal = rng.random_range(0u64..64);
            inst.relation_mut(rel)
                .add(vec![hub, petal], 1)
                .expect("valid tuple");
        }
    }
    (query, inst)
}

/// The planner-vs-fixed-prefix scenario group: chain, uniform star and
/// skewed star instances, measuring the wall-clock and the total
/// cached-intermediate tuples of a cold local-sensitivity lattice pass
/// under each decomposition.  Identity of the computed sensitivities is
/// asserted before timing; the planner rows record the chosen top-level
/// order and decomposition spine.
fn planner_rows(quick: bool) -> Vec<Row> {
    let mut rows = Vec::new();
    let scenarios: Vec<(String, JoinQuery, Instance)> = vec![
        {
            let per_rel = if quick { 70 } else { 200 };
            let (q, i) = random_path(5, 64, per_rel, 0.7, &mut seeded_rng(21));
            (format!("planner/chain/path5/{per_rel}"), q, i)
        },
        {
            let per_rel = if quick { 80 } else { 240 };
            let (q, i) = random_star(4, 32, per_rel, 0.0, &mut seeded_rng(22));
            (format!("planner/star/star4/{per_rel}"), q, i)
        },
        {
            let per_rel = if quick { 20 } else { 50 };
            let (q, i) = skewed_star(per_rel, 23);
            (format!("planner/skew/star4/{per_rel}"), q, i)
        },
    ];
    for (label, query, instance) in &scenarios {
        let plan = Arc::new(JoinPlan::cost_based(query, instance).expect("plan"));
        // Identity before timing: the planner pass computes exactly the
        // fixed-prefix pass's local sensitivity.
        let (fixed_value, prefix_tuples) = {
            let cache = ShardedSubJoinCache::new(query, instance).expect("cache");
            (lattice_pass(query, &cache), cache.cached_tuples())
        };
        let (planned_value, planner_tuples) = {
            let cache =
                ShardedSubJoinCache::with_plan(query, instance, Arc::clone(&plan)).expect("cache");
            (lattice_pass(query, &cache), cache.cached_tuples())
        };
        assert_eq!(
            planned_value, fixed_value,
            "planner pass must equal fixed-prefix pass"
        );

        let mut planner_run = || {
            // The plan build (statistics + pivot table) is part of the
            // measured cost: this is what a cold context checkout pays.
            let plan = Arc::new(JoinPlan::cost_based(query, instance).expect("plan"));
            let cache = ShardedSubJoinCache::with_plan(query, instance, plan).expect("cache");
            black_box(lattice_pass(query, &cache));
        };
        let mut prefix_run = || {
            let cache = ShardedSubJoinCache::new(query, instance).expect("cache");
            black_box(lattice_pass(query, &cache));
        };
        let probe = Instant::now();
        prefix_run();
        let samples = sample_count(probe.elapsed());
        let (planner_ns, prefix_ns) =
            median_ns_interleaved(samples, &mut planner_run, &mut prefix_run);
        let speedup = prefix_ns / planner_ns.max(1.0);
        let tuple_ratio = prefix_tuples as f64 / (planner_tuples as f64).max(1.0);
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        let spine = plan
            .spine()
            .iter()
            .map(|r| r.to_string())
            .collect::<Vec<_>>()
            .join(">");
        let top_order = plan
            .top_order()
            .iter()
            .map(|r| r.to_string())
            .collect::<Vec<_>>()
            .join(">");
        println!(
            "bench: {label:<32} planner {planner_ns:>12.1} ns  prefix {prefix_ns:>12.1} ns  speedup {speedup:>6.2}x  tuples {planner_tuples} vs {prefix_tuples} ({tuple_ratio:.2}x, spine {spine})"
        );
        rows.push(
            Row::new(label)
                .with("planner_ns", planner_ns)
                .with("prefix_ns", prefix_ns)
                .with("speedup", speedup)
                .with("planner_tuples", planner_tuples as f64)
                .with("prefix_tuples", prefix_tuples as f64)
                .with("tuple_ratio", tuple_ratio)
                .with("available_cores", cores as f64)
                .with_text("spine", spine)
                .with_text("top_order", top_order),
        );
    }
    rows
}

/// The scheduler group: morsel-driven work stealing vs the historical fixed
/// stride on a heavy-hitter skewed star's lattice populate.
///
/// Byte-identity of both schedules against the sequential cache is asserted
/// for every mask before timing.  Each row records the per-worker claim
/// counts ([`dpsyn_relational::SchedulerStats`]): under stealing the spread
/// tracks actual mask cost (the worker stuck on the heavy-hitter mask claims
/// few while the others drain the level), under striding the split is fixed
/// by arithmetic regardless of skew — that spread, not wall-clock (which is
/// capped by `available_cores`), is the rebalancing evidence.
fn sched_rows(quick: bool) -> Vec<Row> {
    let mut rows = Vec::new();
    let per_rel = if quick { 120 } else { 300 };
    let (query, instance) = heavy_hitter_star(4, 64, per_rel, 0.6, &mut seeded_rng(31));
    let m = query.num_relations();
    let par = Parallelism::threads(SCALING_THREADS);
    let mut seq_cache = SubJoinCache::new(&query, &instance).expect("cache");
    let mut claim_stats = Vec::new();
    for sched in [Schedule::Stealing, Schedule::Strided] {
        let cache = ShardedSubJoinCache::new(&query, &instance).expect("cache");
        let stats = cache
            .populate_proper_subsets_sched(par, sched)
            .expect("populate");
        assert_eq!(stats.total(), (1usize << m) - 2, "every mask claimed once");
        for mask in 1u32..((1u32 << m) - 1) {
            assert_eq!(
                cache.get(mask).expect("populated").as_ref(),
                seq_cache.join_mask(mask).expect("sub-join"),
                "{sched:?} lattice must be byte-identical to sequential"
            );
        }
        claim_stats.push((sched, stats));
    }
    let run = |sched: Schedule| {
        let cache = ShardedSubJoinCache::new(&query, &instance).expect("cache");
        let stats = cache
            .populate_proper_subsets_sched(par, sched)
            .expect("populate");
        black_box(stats.total());
    };
    let probe = Instant::now();
    run(Schedule::Strided);
    let samples = sample_count(probe.elapsed());
    let (stealing_ns, strided_ns) =
        median_ns_interleaved(samples, &mut || run(Schedule::Stealing), &mut || {
            run(Schedule::Strided)
        });
    let speedup = strided_ns / stealing_ns.max(1.0);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let label = format!("sched/populate/heavy_star{m}/{per_rel}");
    let (_, steal) = &claim_stats[0];
    let (_, strided) = &claim_stats[1];
    println!(
        "bench: {label:<32} steal {stealing_ns:>13.1} ns  stride {strided_ns:>13.1} ns  speedup {speedup:>6.2}x  claims steal {:?} vs stride {:?} ({SCALING_THREADS} threads, {cores} cores)",
        steal.claimed(),
        strided.claimed()
    );
    rows.push(
        Row::new(&label)
            .with("stealing_ns", stealing_ns)
            .with("strided_ns", strided_ns)
            .with("speedup", speedup)
            .with("steal_max_claimed", steal.max_claimed() as f64)
            .with("steal_min_claimed", steal.min_claimed() as f64)
            .with("strided_max_claimed", strided.max_claimed() as f64)
            .with("strided_min_claimed", strided.min_claimed() as f64)
            .with("morsels", steal.total() as f64)
            .with("threads", SCALING_THREADS as f64)
            .with("available_cores", cores as f64),
    );
    rows
}

/// The probe-loop group: batched vs scalar probing on a large two-table
/// zipf join, and dictionary-encoded (packed single-`u64`) vs raw wide-value
/// probe keys on the wide-attribute pair.  Byte-identity is asserted before
/// every timing; all rows are single-thread so the inner loop itself is
/// measured, not pool scaling.
fn probe_rows(quick: bool) -> Vec<Row> {
    let mut rows = Vec::new();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    // Batched vs scalar probe: same index, same candidate order, different
    // inner loop — on a narrow single-attribute key (two-table) and on the
    // wide four-attribute key (probe side of the wide-attribute pair).
    let step_pair = |label: &str, acc: &JoinResult, rel: &dpsyn_relational::Relation| {
        let batched =
            hash_join_step_mode(acc, rel, Parallelism::SEQUENTIAL, ProbeMode::Batched).unwrap();
        let scalar =
            hash_join_step_mode(acc, rel, Parallelism::SEQUENTIAL, ProbeMode::Scalar).unwrap();
        assert_eq!(batched, scalar, "probe modes must be byte-identical");
        let probe = Instant::now();
        let _ = hash_join_step_mode(acc, rel, Parallelism::SEQUENTIAL, ProbeMode::Batched);
        let samples = sample_count(probe.elapsed());
        let batched_ns = median_ns(samples, || {
            black_box(
                hash_join_step_mode(acc, rel, Parallelism::SEQUENTIAL, ProbeMode::Batched).unwrap(),
            );
        });
        let scalar_ns = median_ns(samples, || {
            black_box(
                hash_join_step_mode(acc, rel, Parallelism::SEQUENTIAL, ProbeMode::Scalar).unwrap(),
            );
        });
        let speedup = scalar_ns / batched_ns.max(1.0);
        println!(
            "bench: {label:<32} batch {batched_ns:>13.1} ns  scalar {scalar_ns:>13.1} ns  speedup {speedup:>6.2}x (1 thread, {cores} cores)"
        );
        Row::new(label)
            .with("batched_ns", batched_ns)
            .with("scalar_ns", scalar_ns)
            .with("speedup", speedup)
            .with("threads", 1.0)
            .with("available_cores", cores as f64)
    };
    {
        let n = if quick { 8_000 } else { 30_000 };
        let (_, instance) = random_two_table(16_384, n, &mut seeded_rng(41));
        let acc = JoinResult::from_relation(instance.relation(0));
        rows.push(step_pair(
            &format!("probe_batch/two_table/{n}"),
            &acc,
            instance.relation(1),
        ));
    }
    {
        let (key_space, n) = if quick {
            (512u64, 8_000)
        } else {
            (2_048, 40_000)
        };
        let (_, instance) = wide_attribute_pair(key_space, n, &mut seeded_rng(43));
        // Mirror the engine's fold: the small key-distinct relation is the
        // accumulated side, the large wide-key relation probes.
        let acc = JoinResult::from_relation(instance.relation(1));
        rows.push(step_pair(
            &format!("probe_batch/wide4/{n}"),
            &acc,
            instance.relation(0),
        ));
    }

    // Dictionary-encoded packed keys vs raw wide-value keys.  The encode is
    // excluded from the timing: ExecContext builds and caches it once per
    // instance fingerprint, so steady-state joins pay only the probe loop
    // plus the decode-on-emit (which IS included).
    {
        let (key_space, n) = if quick {
            (512u64, 8_000)
        } else {
            (2_048, 40_000)
        };
        let (query, instance) = wide_attribute_pair(key_space, n, &mut seeded_rng(42));
        let ctx = ExecContext::sequential();
        let raw = ctx.join(&query, &instance).expect("raw join");
        let dict = AttrDictionary::build(&query, &instance);
        let (enc_q, enc_i) = dict.encode_instance(&query, &instance).expect("encode");
        assert!(
            fold_fully_packable(&enc_i, &dict),
            "four encoded wide attributes must pack into one u64"
        );
        let encoded = join_encoded(&enc_q, &enc_i, &dict, Parallelism::SEQUENTIAL).unwrap();
        assert_eq!(encoded, raw, "dictionary path must be byte-identical");
        let probe = Instant::now();
        let _ = join_encoded(&enc_q, &enc_i, &dict, Parallelism::SEQUENTIAL);
        let samples = sample_count(probe.elapsed());
        let dict_ns = median_ns(samples, || {
            black_box(join_encoded(&enc_q, &enc_i, &dict, Parallelism::SEQUENTIAL).unwrap());
        });
        let raw_ns = median_ns(samples, || {
            black_box(ctx.join(&query, &instance).unwrap());
        });
        let speedup = raw_ns / dict_ns.max(1.0);
        let label = format!("probe_batch/wide_dict/{n}");
        println!(
            "bench: {label:<32} dict  {dict_ns:>13.1} ns  raw    {raw_ns:>13.1} ns  speedup {speedup:>6.2}x (1 thread, {cores} cores)"
        );
        rows.push(
            Row::new(&label)
                .with("dict_ns", dict_ns)
                .with("raw_ns", raw_ns)
                .with("speedup", speedup)
                .with("key_space", key_space as f64)
                .with("threads", 1.0)
                .with("available_cores", cores as f64),
        );
    }
    rows
}

fn join_scenarios() -> Vec<(String, JoinQuery, Instance)> {
    let mut out = Vec::new();
    for &n in &[200usize, 800] {
        let mut rng = seeded_rng(1);
        let (query, instance) = zipf_two_table(64, n, 1.0, &mut rng);
        out.push((format!("join/two_table/{n}"), query, instance));
    }
    for &m in &[3usize, 4] {
        let mut rng = seeded_rng(2);
        let (query, instance) = random_star(m, 32, 200, 1.0, &mut rng);
        out.push((format!("join/star/{m}"), query, instance));
    }
    out
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    // CI's dedicated planner smoke: run only the planner-vs-prefix group
    // (small sizes, identity asserts included) and skip the JSON write so
    // the committed BENCH_join.json is never truncated.
    if std::env::args().any(|a| a == "--planner-smoke") {
        let rows = planner_rows(true);
        print_table(
            "planner smoke — cost-based vs fixed-prefix decomposition",
            &rows,
        );
        return;
    }
    // CI's adaptive smoke: the sketch-gather and adaptive-walk groups only
    // (quick sizes; adaptive ≡ static identity and sketch-accuracy asserts
    // included), no JSON write.
    if std::env::args().any(|a| a == "--adaptive-smoke") {
        let rows = adaptive_rows(true);
        print_table(
            "adaptive smoke — sketch gather + runtime-feedback re-planning",
            &rows,
        );
        return;
    }
    // CI's aggregate-pushdown smoke: the count-only-vs-materializing group
    // (quick sizes, byte-identity asserted before timing).  Unlike the other
    // smokes this one DOES write: its fresh `agg/*` rows replace the
    // committed ones via the read-merge-write reporter, every other row is
    // preserved verbatim, so the gate also proves the merge path.
    if std::env::args().any(|a| a == "--agg-smoke") {
        let rows = agg_rows(true);
        print_table(
            "agg smoke — count-only lattice vs materializing oracle",
            &rows,
        );
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_join.json");
        let existing = std::fs::read_to_string(path).unwrap_or_default();
        let mut raws: Vec<String> = existing_rows_json(&existing)
            .into_iter()
            .filter(|(label, _)| !label.starts_with("agg/"))
            .map(|(_, raw)| raw)
            .collect();
        raws.extend(rows.iter().map(Row::to_json));
        std::fs::write(path, raw_rows_to_json_pretty(&raws) + "\n").expect("write bench results");
        println!("wrote {path}");
        return;
    }
    // CI's scheduler smoke: the morsel scheduler and probe-loop groups only
    // (quick sizes, byte-identity asserts included), no JSON write.
    if std::env::args().any(|a| a == "--sched-smoke") {
        let mut rows = sched_rows(true);
        rows.extend(probe_rows(true));
        print_table(
            "scheduler smoke — work stealing + vectorized dictionary probes",
            &rows,
        );
        return;
    }
    let mut rows = Vec::new();

    // --- Join throughput: hash engine vs. naive engine --------------------
    for (label, query, instance) in join_scenarios() {
        if quick && label.contains("800") {
            continue;
        }
        rows.push(bench_pair(
            &label,
            || {
                black_box(join_size(&query, &instance).unwrap());
            },
            || {
                black_box(join_size_naive(&query, &instance).unwrap());
            },
        ));
    }

    // --- Residual-sensitivity subset enumeration --------------------------
    // m = 4 star: 15 non-empty subsets; shared-prefix caching vs. re-joining
    // from scratch per subset.
    for &(m, per_rel) in &[(3usize, 150usize), (4, 120)] {
        if quick && m == 4 {
            continue;
        }
        let mut rng = seeded_rng(7);
        let (query, instance) = random_star(m, 32, per_rel, 1.0, &mut rng);
        rows.push(bench_pair(
            &format!("residual/subsets/star{m}"),
            || {
                black_box(all_boundary_values(&query, &instance).unwrap());
            },
            || {
                black_box(all_boundary_values_naive(&query, &instance).unwrap());
            },
        ));
    }

    // --- Parallel scaling: worker pool (4 threads) vs sequential path -----
    // Large probe sides so the partitioned probe loop actually engages; the
    // byte-identity of parallel vs sequential output is asserted before any
    // timing.  `available_cores` records the machine context: wall-clock
    // scaling is capped by physical cores even though 4 workers run.
    let ctx_par = ExecContext::with_threads(SCALING_THREADS);
    let ctx_seq = ExecContext::sequential();
    {
        let n = if quick { 20_000 } else { 60_000 };
        let mut rng = seeded_rng(11);
        let (query, instance) = random_two_table(16_384, n, &mut rng);
        let a = ctx_par.join(&query, &instance).expect("parallel join");
        let b = ctx_seq.join(&query, &instance).expect("sequential join");
        assert!(
            a.iter_unordered().eq(b.iter_unordered()),
            "parallel join output must be byte-identical to sequential"
        );
        rows.push(bench_scaling(
            &format!("join/two_table/{n}/par{SCALING_THREADS}"),
            || {
                black_box(ctx_par.join_size(&query, &instance).unwrap());
            },
            || {
                black_box(ctx_seq.join_size(&query, &instance).unwrap());
            },
        ));
    }
    {
        let per_rel = if quick { 800 } else { 2_000 };
        let mut rng = seeded_rng(12);
        let (query, instance) = random_star(4, 256, per_rel, 0.4, &mut rng);
        // Fresh contexts per call so each measurement rebuilds the lattice
        // (the persistent-cache win is measured by the session scenario
        // below, not here).
        let cold_bv = |threads: usize| {
            SensitivityConfig::with_threads(threads)
                .to_context()
                .all_boundary_values(&query, &instance)
                .unwrap()
        };
        assert_eq!(
            cold_bv(SCALING_THREADS),
            cold_bv(1),
            "parallel boundary values must be identical to sequential"
        );
        rows.push(bench_scaling(
            &format!("residual/subsets/star4/par{SCALING_THREADS}"),
            || {
                black_box(cold_bv(SCALING_THREADS));
            },
            || {
                black_box(cold_bv(1));
            },
        ));
    }

    // --- Session cache reuse: warm vs cold lattice across a β sweep -------
    // The Session/ExecContext API persists the 2^m sub-join lattice across
    // calls, so a residual-sensitivity sweep over several β values on one
    // instance pays for the lattice once.  "Cold" runs each β on a fresh
    // context (the pre-Session cost model); "warm" runs the sweep on one
    // context.  Results are asserted identical before timing.
    {
        let per_rel = if quick { 500 } else { 1_200 };
        let mut rng = seeded_rng(13);
        let (query, instance) = random_star(4, 128, per_rel, 0.6, &mut rng);
        let betas = [0.05f64, 0.1, 0.2, 0.5, 1.0, 2.0];
        let cold_sweep = || {
            let mut acc = 0.0f64;
            for &beta in &betas {
                let ctx = SensitivityConfig::sequential().to_context();
                acc += ctx
                    .residual_sensitivity(&query, &instance, beta)
                    .unwrap()
                    .value;
            }
            acc
        };
        let warm_sweep = || {
            let ctx = SensitivityConfig::sequential().to_context();
            let mut acc = 0.0f64;
            for &beta in &betas {
                acc += ctx
                    .residual_sensitivity(&query, &instance, beta)
                    .unwrap()
                    .value;
            }
            acc
        };
        assert_eq!(
            cold_sweep(),
            warm_sweep(),
            "warm sweep must produce identical values to cold"
        );
        let probe = Instant::now();
        let _ = cold_sweep();
        let samples = sample_count(probe.elapsed());
        let warm_ns = median_ns(samples, || {
            black_box(warm_sweep());
        });
        let cold_ns = median_ns(samples, || {
            black_box(cold_sweep());
        });
        let speedup = cold_ns / warm_ns.max(1.0);
        let label = format!("session/cache_reuse/star4/sweep{}", betas.len());
        println!(
            "bench: {label:<32} warm {warm_ns:>14.1} ns  cold  {cold_ns:>14.1} ns  speedup {speedup:>6.2}x"
        );
        rows.push(
            Row::new(&label)
                .with("warm_ns", warm_ns)
                .with("cold_ns", cold_ns)
                .with("speedup", speedup)
                .with("sweep_len", betas.len() as f64),
        );
    }

    // --- Edit sweeps: delta-join maintenance vs full re-join ---------------
    // The local sensitivity of every single-tuple removal of a star
    // instance, computed (a) through the cached DeltaJoinPlan — one lattice
    // pass, then a hash probe per edit — and (b) by materialising every
    // neighbour instance and re-joining from scratch.  Equality is asserted
    // before timing; fresh contexts per iteration keep the delta side
    // honest (the plan build is inside the measurement).
    {
        let per_rel = if quick { 60 } else { 150 };
        let mut rng = seeded_rng(14);
        let (query, instance) = random_star(4, 32, per_rel, 1.0, &mut rng);
        let edits = instance.removal_edits();
        let delta_sweep = || {
            SensitivityConfig::sequential()
                .to_context()
                .local_sensitivity_sweep(&query, &instance, &edits)
                .unwrap()
        };
        let rejoin_sweep = || {
            SensitivityConfig::sequential()
                .to_context()
                .local_sensitivity_sweep_materializing(&query, &instance, &edits)
                .unwrap()
        };
        assert_eq!(
            delta_sweep(),
            rejoin_sweep(),
            "delta sweep must equal full re-join"
        );
        let probe = Instant::now();
        let _ = delta_sweep();
        let samples = sample_count(probe.elapsed());
        let delta_ns = median_ns(samples, || {
            black_box(delta_sweep());
        });
        let rejoin_ns = median_ns(samples.min(9), || {
            black_box(rejoin_sweep());
        });
        let speedup = rejoin_ns / delta_ns.max(1.0);
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        let label = format!("edit_sweep/local_removal/star4/{}edits", edits.len());
        println!(
            "bench: {label:<32} delta {delta_ns:>13.1} ns  rejoin {rejoin_ns:>13.1} ns  speedup {speedup:>6.2}x"
        );
        rows.push(
            Row::new(&label)
                .with("delta_ns", delta_ns)
                .with("rejoin_ns", rejoin_ns)
                .with("speedup", speedup)
                .with("edits", edits.len() as f64)
                .with("available_cores", cores as f64),
        );
    }
    // Radius-2 brute-force smooth sensitivity: the delta-maintained BFS vs
    // the materializing oracle (identical bits, asserted before timing).
    {
        let per_rel = if quick { 10 } else { 16 };
        let mut rng = seeded_rng(15);
        let (query, instance) = random_star(3, 8, per_rel, 1.0, &mut rng);
        let beta = 0.2;
        let delta_smooth = || {
            SensitivityConfig::sequential()
                .to_context()
                .smooth_sensitivity_bruteforce(&query, &instance, beta, 2)
                .unwrap()
        };
        let oracle_smooth = || {
            SensitivityConfig::sequential()
                .to_context()
                .smooth_sensitivity_bruteforce_materializing(&query, &instance, beta, 2)
                .unwrap()
        };
        assert_eq!(delta_smooth().to_bits(), oracle_smooth().to_bits());
        let probe = Instant::now();
        let _ = delta_smooth();
        let samples = sample_count(probe.elapsed());
        let delta_ns = median_ns(samples, || {
            black_box(delta_smooth());
        });
        let rejoin_ns = median_ns(samples.min(9), || {
            black_box(oracle_smooth());
        });
        let speedup = rejoin_ns / delta_ns.max(1.0);
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        let label = "edit_sweep/smooth/star3/r2";
        println!(
            "bench: {label:<32} delta {delta_ns:>13.1} ns  rejoin {rejoin_ns:>13.1} ns  speedup {speedup:>6.2}x"
        );
        rows.push(
            Row::new(label)
                .with("delta_ns", delta_ns)
                .with("rejoin_ns", rejoin_ns)
                .with("speedup", speedup)
                .with("available_cores", cores as f64),
        );
    }

    // --- Morsel scheduler + vectorized probe loops --------------------------
    rows.extend(sched_rows(quick));
    rows.extend(probe_rows(quick));

    // --- Cost-based planner vs fixed-prefix decomposition -------------------
    rows.extend(planner_rows(quick));

    // --- Adaptive planning: sketch gather + runtime-feedback re-planning ----
    rows.extend(adaptive_rows(quick));

    // --- Aggregate pushdown: count-only lattice vs materializing oracle -----
    rows.extend(agg_rows(quick));

    print_table("join_throughput — hash engine vs naive reference", &rows);

    // Commit the full results next to the workspace root so CI and the repo
    // track the trajectory (BENCH_join.json).  Quick mode covers a reduced
    // row set, so it writes a sibling file instead of truncating the
    // committed one.
    let path = if quick {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_join.quick.json")
    } else {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_join.json")
    };
    // The stream_ingest bench shares this file: keep its `stream/*` rows
    // intact and replace only the rows this bench owns.
    let existing = std::fs::read_to_string(path).unwrap_or_default();
    let mut raws: Vec<String> = rows.iter().map(Row::to_json).collect();
    raws.extend(
        existing_rows_json(&existing)
            .into_iter()
            .filter(|(label, _)| label.starts_with("stream/"))
            .map(|(_, raw)| raw),
    );
    std::fs::write(path, raw_rows_to_json_pretty(&raws) + "\n").expect("write bench results");
    println!("wrote {path}");
}
