//! E8 benchmark: worst-case-shaped instances (Appendix B.3) — adversarially
//! skewed star joins through the `MultiTable` release, plus the AGM exponent
//! computation.

use criterion::{criterion_group, criterion_main, Criterion};
use dpsyn_bench::experiment_pmw;
use dpsyn_core::MultiTable;
use dpsyn_datagen::random_star;
use dpsyn_noise::{seeded_rng, PrivacyParams};
use dpsyn_query::QueryFamily;
use dpsyn_relational::{fractional_edge_cover_number, JoinQuery};
use std::time::Duration;

fn bench_worst_case_release(c: &mut Criterion) {
    let mut group = c.benchmark_group("worst_case");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    let params = PrivacyParams::new(1.0, 1e-6).unwrap();
    let mut rng = seeded_rng(50);
    let (query, instance) = random_star(3, 8, 60, 3.0, &mut rng);
    let family = QueryFamily::random_sign(&query, 8, &mut rng).unwrap();
    group.bench_function("skewed_star3_release", |b| {
        b.iter(|| {
            let mut rng = seeded_rng(51);
            MultiTable::new(experiment_pmw())
                .release(&query, &instance, &family, params, &mut rng)
                .unwrap()
                .delta_tilde()
        })
    });
    group.bench_function("agm_exponents", |b| {
        b.iter(|| {
            fractional_edge_cover_number(&JoinQuery::triangle(8)).unwrap()
                + fractional_edge_cover_number(&JoinQuery::star(4, 8).unwrap()).unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_worst_case_release);
criterion_main!(benches);
