//! E7 benchmark: residual-sensitivity computation time versus input size and
//! number of relations (Definition 3.6's polynomial-time claim).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dpsyn_datagen::random_star;
use dpsyn_noise::seeded_rng;
use dpsyn_sensitivity::{local_sensitivity, residual_sensitivity};
use std::time::Duration;

fn bench_residual_sensitivity(c: &mut Criterion) {
    let mut group = c.benchmark_group("sensitivity/residual");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    let beta = 1.0 / 13.8; // λ at ε = 1, δ = 1e-6
    for &n in &[200usize, 800] {
        for &m in &[2usize, 3] {
            let mut rng = seeded_rng(n as u64 + m as u64);
            let (query, instance) = random_star(m, 32, n / m, 1.0, &mut rng);
            group.bench_with_input(BenchmarkId::new(format!("m{m}"), n), &n, |b, _| {
                b.iter(|| residual_sensitivity(&query, &instance, beta).unwrap().value)
            });
        }
    }
    group.finish();
}

fn bench_local_sensitivity(c: &mut Criterion) {
    let mut group = c.benchmark_group("sensitivity/local");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    let mut rng = seeded_rng(9);
    let (query, instance) = random_star(3, 32, 300, 1.0, &mut rng);
    group.bench_function("star3 n=900", |b| {
        b.iter(|| local_sensitivity(&query, &instance).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_residual_sensitivity, bench_local_sensitivity);
criterion_main!(benches);
