//! E1 benchmark: one round of the Figure 1 / Example 3.1 distinguishing attack
//! against the flawed strawmen and Algorithm 1.

use criterion::{criterion_group, criterion_main, Criterion};
use dpsyn_bench::experiment_pmw;
use dpsyn_core::{FlawedJoinAsOne, TwoTable};
use dpsyn_datagen::fig1_pair;
use dpsyn_noise::{seeded_rng, PrivacyParams};
use dpsyn_query::QueryFamily;
use std::time::Duration;

fn bench_privacy_attack(c: &mut Criterion) {
    let mut group = c.benchmark_group("privacy_attack");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    let (query, heavy, empty) = fig1_pair(8);
    let params = PrivacyParams::new(1.0, 1e-6).unwrap();
    let family = QueryFamily::counting(&query);

    group.bench_function("flawed_join_as_one_round", |b| {
        b.iter(|| {
            let mut rng = seeded_rng(40);
            let strawman = FlawedJoinAsOne::new(experiment_pmw());
            let a = strawman
                .release(&query, &heavy, &family, params, &mut rng)
                .unwrap()
                .histogram()
                .total();
            let b2 = strawman
                .release(&query, &empty, &family, params, &mut rng)
                .unwrap()
                .histogram()
                .total();
            a - b2
        })
    });
    group.bench_function("two_table_round", |b| {
        b.iter(|| {
            let mut rng = seeded_rng(41);
            let fixed = TwoTable::new(experiment_pmw());
            let a = fixed
                .release(&query, &heavy, &family, params, &mut rng)
                .unwrap()
                .histogram()
                .total();
            let b2 = fixed
                .release(&query, &empty, &family, params, &mut rng)
                .unwrap()
                .histogram()
                .total();
            a - b2
        })
    });
    group.finish();
}

criterion_group!(benches, bench_privacy_attack);
criterion_main!(benches);
