//! Streaming-ingestion benchmark: semi-naive batch maintenance of a warm
//! execution context ([`ExecContext::apply_updates`]) against rebuilding
//! the same state — sub-join lattice, full join — from scratch on the
//! updated instance, at batch sizes 1, 16 and 256.
//!
//! Each measured maintenance call applies a batch and then its inverse, so
//! the instance (and the warm slot's fingerprint) returns to its starting
//! point and every iteration exercises two genuine warm maintenance passes;
//! the reported `maintain_ns` is the per-batch half.  Large batches trip
//! the maintenance path's bulk-rebuild escape hatch: once the net batch
//! rewrites a sizeable share of the touched relations, per-mask delta
//! patching (one delta join per cached mask per touched relation) can never
//! beat a rebuild, so every affected mask is recomputed from the updated
//! instance through the slot's cost-based plan chain instead, memoising
//! shared chain prefixes across masks — the fix that keeps the `b256` row
//! from losing to the cold rebuild.  The rebuild baseline
//! is exactly what a server without the updates path would pay per batch: a
//! cold context's lattice populate plus full join over the updated
//! instance.  Byte-identity of maintained vs rebuilt observables (per-mask
//! boundary values, full-join emission) is asserted before any timing.
//!
//! Results land in the `stream/*` rows of `BENCH_join.json` at the repo
//! root via read-merge-write (every other bench's rows are kept intact).
//! `--stream-smoke` runs the identity asserts on quick sizes and skips the
//! JSON write, for CI.

use std::time::{Duration, Instant};

use criterion::black_box;
use dpsyn_bench::{existing_rows_json, print_table, raw_rows_to_json_pretty, Row};
use dpsyn_datagen::{random_star, update_stream, UpdateStreamConfig};
use dpsyn_noise::seeded_rng;
use dpsyn_relational::{apply_batch, ExecContext, Instance, JoinQuery, UpdateBatch, Value};
use dpsyn_sensitivity::SensitivityOps;

/// Median wall-clock times of two alternating measurements, in nanoseconds.
/// The arms are interleaved (`a`, `b`, `a`, `b`, …, after one warm-up of
/// each) so slow drift in effective machine speed — frequency scaling,
/// noisy neighbours on a shared core — biases both medians equally instead
/// of whichever arm happened to run in the slower stretch.
fn median_ns_interleaved(samples: usize, a: &mut dyn FnMut(), b: &mut dyn FnMut()) -> (f64, f64) {
    a();
    b();
    let mut times_a = Vec::with_capacity(samples.max(1));
    let mut times_b = Vec::with_capacity(samples.max(1));
    for _ in 0..samples.max(1) {
        let t = Instant::now();
        a();
        times_a.push(t.elapsed().as_secs_f64() * 1e9);
        let t = Instant::now();
        b();
        times_b.push(t.elapsed().as_secs_f64() * 1e9);
    }
    let median = |mut times: Vec<f64>| {
        times.sort_by(|x, y| x.partial_cmp(y).expect("finite times"));
        times[times.len() / 2]
    };
    (median(times_a), median(times_b))
}

/// Picks a sample count so each measurement stays within a small budget.
fn sample_count(once: Duration) -> usize {
    let budget = Duration::from_millis(600);
    ((budget.as_nanos() / once.as_nanos().max(1)) as usize).clamp(5, 60)
}

/// One seeded mixed batch of the requested size over `instance`.
fn one_batch(query: &JoinQuery, instance: &Instance, batch_size: usize, seed: u64) -> UpdateBatch {
    let config = UpdateStreamConfig {
        batches: 1,
        batch_size,
        delete_fraction: 0.25,
        theta: 1.0,
    };
    update_stream(query, instance, config, &mut seeded_rng(seed))
        .pop()
        .expect("one batch")
}

/// Asserts that a warm context maintained through `batch` answers exactly
/// like a cold context over the rebuilt instance: per-mask boundary values
/// and the full join's sorted emission.
fn assert_maintenance_identity(query: &JoinQuery, instance: &Instance, batch: &UpdateBatch) {
    let warm = ExecContext::sequential();
    let mut live = instance.clone();
    let _ = warm.all_boundary_values(query, &live).expect("warm-up");
    let report = warm
        .apply_updates(query, &mut live, batch)
        .expect("maintenance");
    assert!(report.warm, "the warmed slot must migrate");

    let mut rebuilt = instance.clone();
    apply_batch(query, &mut rebuilt, batch).expect("plain mutation");
    assert_eq!(
        live, rebuilt,
        "maintained instance must equal plain mutation"
    );

    let cold = ExecContext::sequential();
    assert_eq!(
        warm.all_boundary_values(query, &live).expect("maintained"),
        cold.all_boundary_values(query, &rebuilt).expect("rebuilt"),
        "per-mask boundary values must be identical"
    );
    let warm_join = warm.shared_join(query, &live).expect("maintained join");
    let cold_join = cold.shared_join(query, &rebuilt).expect("rebuilt join");
    let warm_rows: Vec<(Vec<Value>, u128)> =
        warm_join.iter().map(|(t, w)| (t.to_vec(), w)).collect();
    let cold_rows: Vec<(Vec<Value>, u128)> =
        cold_join.iter().map(|(t, w)| (t.to_vec(), w)).collect();
    assert_eq!(warm_rows, cold_rows, "full-join emission must be identical");

    // And the inverse batch restores every starting byte.
    let inverse = batch.inverse();
    warm.apply_updates(query, &mut live, &inverse)
        .expect("inverse maintenance");
    assert_eq!(&live, instance, "inverse batch must restore the instance");
}

fn stream_rows(quick: bool) -> Vec<Row> {
    let mut rows = Vec::new();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let per_rel = if quick { 120 } else { 400 };
    let (query, instance) = random_star(3, 64, per_rel, 1.0, &mut seeded_rng(51));
    for &batch_size in &[1usize, 16, 256] {
        if quick && batch_size == 256 {
            continue;
        }
        let batch = one_batch(&query, &instance, batch_size, 52 + batch_size as u64);
        let inverse = batch.inverse();
        assert_maintenance_identity(&query, &instance, &batch);

        // Maintenance: one long-lived warm context, forward + inverse per
        // measured call (state returns to start; both passes are warm).
        let ctx = ExecContext::sequential();
        let mut live = instance.clone();
        let _ = ctx.all_boundary_values(&query, &live).expect("warm-up");
        let _ = ctx.shared_join(&query, &live).expect("warm-up");
        let mut maintain = || {
            ctx.apply_updates(&query, &mut live, &batch)
                .expect("forward");
            ctx.apply_updates(&query, &mut live, &inverse)
                .expect("inverse");
        };

        // Rebuild baseline: a cold context's lattice populate + full join
        // over the updated instance (plan build and fingerprint included —
        // that is the real cost of not maintaining).
        let mut updated = instance.clone();
        apply_batch(&query, &mut updated, &batch).expect("plain mutation");
        let mut rebuild = || {
            let cold = ExecContext::sequential();
            black_box(cold.all_boundary_values(&query, &updated).expect("lattice"));
            black_box(cold.shared_join(&query, &updated).expect("full join"));
        };

        let probe = Instant::now();
        rebuild();
        let samples = sample_count(probe.elapsed());
        let (pair_ns, rebuild_ns) = median_ns_interleaved(samples, &mut maintain, &mut rebuild);
        let maintain_ns = pair_ns / 2.0;
        let speedup = rebuild_ns / maintain_ns.max(1.0);
        let label = format!("stream/maintain/star3/{per_rel}/b{batch_size}");
        println!(
            "bench: {label:<36} maintain {maintain_ns:>13.1} ns  rebuild {rebuild_ns:>13.1} ns  speedup {speedup:>7.2}x (1 thread, {cores} cores)"
        );
        rows.push(
            Row::new(&label)
                .with("maintain_ns", maintain_ns)
                .with("rebuild_ns", rebuild_ns)
                .with("speedup", speedup)
                .with("batch_size", batch_size as f64)
                .with("threads", 1.0)
                .with("available_cores", cores as f64),
        );
    }
    rows
}

fn main() {
    // CI's stream smoke: quick sizes, all identity asserts, no JSON write
    // (the committed BENCH_join.json is never touched by reduced runs).
    if std::env::args().any(|a| a == "--stream-smoke") {
        let rows = stream_rows(true);
        print_table("stream smoke — batch maintenance vs full rebuild", &rows);
        return;
    }
    let quick = std::env::args().any(|a| a == "--quick");
    let rows = stream_rows(quick);
    print_table("stream_ingest — batch maintenance vs full rebuild", &rows);
    if quick {
        return;
    }

    // Read-merge-write: replace only the stream/* rows of BENCH_join.json,
    // keeping every other bench's committed rows byte for byte.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_join.json");
    let existing = std::fs::read_to_string(path).unwrap_or_default();
    let mut raws: Vec<String> = existing_rows_json(&existing)
        .into_iter()
        .filter(|(label, _)| !label.starts_with("stream/"))
        .map(|(_, raw)| raw)
        .collect();
    raws.extend(rows.iter().map(|r| r.to_json()));
    std::fs::write(path, raw_rows_to_json_pretty(&raws) + "\n").expect("write bench results");
    println!("wrote {path}");
}
