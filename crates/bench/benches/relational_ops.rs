//! Microbenchmarks of the relational substrate: multi-way joins, boundary
//! queries and degree statistics.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dpsyn_datagen::{random_star, zipf_two_table};
use dpsyn_noise::seeded_rng;
use dpsyn_relational::join_size;
use dpsyn_sensitivity::boundary_query;
use std::time::Duration;

fn bench_join(c: &mut Criterion) {
    let mut group = c.benchmark_group("relational/join");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    for &n in &[200usize, 800] {
        let mut rng = seeded_rng(1);
        let (query, instance) = zipf_two_table(64, n, 1.0, &mut rng);
        group.bench_with_input(BenchmarkId::new("two_table", n), &n, |b, _| {
            b.iter(|| join_size(&query, &instance).unwrap())
        });
    }
    for &m in &[3usize, 4] {
        let mut rng = seeded_rng(2);
        let (query, instance) = random_star(m, 32, 200, 1.0, &mut rng);
        group.bench_with_input(BenchmarkId::new("star", m), &m, |b, _| {
            b.iter(|| join_size(&query, &instance).unwrap())
        });
    }
    group.finish();
}

fn bench_boundary_queries(c: &mut Criterion) {
    let mut group = c.benchmark_group("relational/boundary_query");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    let mut rng = seeded_rng(3);
    let (query, instance) = random_star(3, 32, 300, 1.0, &mut rng);
    group.bench_function("T_E star3", |b| {
        b.iter(|| {
            let mut total = 0u128;
            for e in [&[0usize][..], &[0, 1], &[1, 2]] {
                total += boundary_query(&query, &instance, e).unwrap();
            }
            total
        })
    });
    group.finish();
}

criterion_group!(benches, bench_join, bench_boundary_queries);
criterion_main!(benches);
