//! Residual-sensitivity subset-enumeration scaling: the shared
//! [`SubJoinCache`]d boundary-value computation against the naive
//! from-scratch recomputation, across star sizes `m`, plus the end-to-end
//! `residual_sensitivity` call that dominates the multi-table release, plus
//! worker-pool thread scaling (1 vs N threads over the same enumeration).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dpsyn_datagen::random_star;
use dpsyn_noise::seeded_rng;
use dpsyn_relational::naive::all_boundary_values_naive;
use dpsyn_relational::Parallelism;
use dpsyn_sensitivity::{
    all_boundary_values, all_boundary_values_with, residual_sensitivity, residual_sensitivity_with,
    SensitivityConfig,
};
use std::time::Duration;

fn bench_boundary_enumeration(c: &mut Criterion) {
    let mut group = c.benchmark_group("residual/boundary_values");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    for &m in &[2usize, 3, 4] {
        let mut rng = seeded_rng(40 + m as u64);
        let (query, instance) = random_star(m, 32, 400 / m, 1.0, &mut rng);
        group.bench_with_input(BenchmarkId::new("cached", m), &m, |b, _| {
            b.iter(|| all_boundary_values(&query, &instance).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("naive", m), &m, |b, _| {
            b.iter(|| all_boundary_values_naive(&query, &instance).unwrap())
        });
    }
    group.finish();
}

fn bench_residual_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("residual/end_to_end");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    let beta = 1.0 / 13.8; // λ at ε = 1, δ = 1e-6
    for &m in &[3usize, 4] {
        let mut rng = seeded_rng(50 + m as u64);
        let (query, instance) = random_star(m, 32, 400 / m, 1.0, &mut rng);
        group.bench_with_input(BenchmarkId::new("m", m), &m, |b, _| {
            b.iter(|| residual_sensitivity(&query, &instance, beta).unwrap().value)
        });
    }
    group.finish();
}

fn bench_thread_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("residual/thread_scaling");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    let mut rng = seeded_rng(60);
    let (query, instance) = random_star(4, 256, 1500, 0.4, &mut rng);
    // Outputs are identical at every level; only wall-clock differs.
    let seq = all_boundary_values_with(&query, &instance, Parallelism::SEQUENTIAL).unwrap();
    let beta = 1.0 / 13.8;
    for &threads in &[1usize, 2, 4] {
        let par = Parallelism::threads(threads);
        assert_eq!(
            all_boundary_values_with(&query, &instance, par).unwrap(),
            seq
        );
        group.bench_with_input(
            BenchmarkId::new("boundary_values", threads),
            &threads,
            |b, _| b.iter(|| all_boundary_values_with(&query, &instance, par).unwrap()),
        );
        let config = SensitivityConfig::with_threads(threads);
        group.bench_with_input(
            BenchmarkId::new("residual_end_to_end", threads),
            &threads,
            |b, _| {
                b.iter(|| {
                    residual_sensitivity_with(&query, &instance, beta, &config)
                        .unwrap()
                        .value
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_boundary_enumeration,
    bench_residual_end_to_end,
    bench_thread_scaling
);
criterion_main!(benches);
