//! Residual-sensitivity subset-enumeration scaling: the shared
//! [`SubJoinCache`]d boundary-value computation against the naive
//! from-scratch recomputation, across star sizes `m`, plus the end-to-end
//! `residual_sensitivity` call that dominates the multi-table release, plus
//! worker-pool thread scaling (1 vs N threads over the same enumeration).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dpsyn_datagen::random_star;
use dpsyn_noise::seeded_rng;
use dpsyn_relational::naive::all_boundary_values_naive;
use dpsyn_sensitivity::{
    all_boundary_values, residual_sensitivity, SensitivityConfig, SensitivityOps,
};
use std::time::Duration;

fn bench_boundary_enumeration(c: &mut Criterion) {
    let mut group = c.benchmark_group("residual/boundary_values");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    for &m in &[2usize, 3, 4] {
        let mut rng = seeded_rng(40 + m as u64);
        let (query, instance) = random_star(m, 32, 400 / m, 1.0, &mut rng);
        group.bench_with_input(BenchmarkId::new("cached", m), &m, |b, _| {
            b.iter(|| all_boundary_values(&query, &instance).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("naive", m), &m, |b, _| {
            b.iter(|| all_boundary_values_naive(&query, &instance).unwrap())
        });
    }
    group.finish();
}

fn bench_residual_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("residual/end_to_end");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    let beta = 1.0 / 13.8; // λ at ε = 1, δ = 1e-6
    for &m in &[3usize, 4] {
        let mut rng = seeded_rng(50 + m as u64);
        let (query, instance) = random_star(m, 32, 400 / m, 1.0, &mut rng);
        group.bench_with_input(BenchmarkId::new("m", m), &m, |b, _| {
            b.iter(|| residual_sensitivity(&query, &instance, beta).unwrap().value)
        });
    }
    group.finish();
}

fn bench_thread_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("residual/thread_scaling");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    let mut rng = seeded_rng(60);
    let (query, instance) = random_star(4, 256, 1500, 0.4, &mut rng);
    // Outputs are identical at every level; only wall-clock differs.  Fresh
    // contexts per call keep every measurement cold (lattice rebuilt).
    let cold_bv = |threads: usize| {
        SensitivityConfig::with_threads(threads)
            .to_context()
            .all_boundary_values(&query, &instance)
            .unwrap()
    };
    let seq = cold_bv(1);
    let beta = 1.0 / 13.8;
    for &threads in &[1usize, 2, 4] {
        assert_eq!(cold_bv(threads), seq);
        group.bench_with_input(
            BenchmarkId::new("boundary_values", threads),
            &threads,
            |b, _| b.iter(|| cold_bv(threads)),
        );
        group.bench_with_input(
            BenchmarkId::new("residual_end_to_end", threads),
            &threads,
            |b, _| {
                b.iter(|| {
                    SensitivityConfig::with_threads(threads)
                        .to_context()
                        .residual_sensitivity(&query, &instance, beta)
                        .unwrap()
                        .value
                })
            },
        );
    }
    group.finish();
}

fn bench_session_cache_reuse(c: &mut Criterion) {
    let mut group = c.benchmark_group("residual/session_cache_reuse");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    let mut rng = seeded_rng(61);
    let (query, instance) = random_star(4, 128, 1000, 0.5, &mut rng);
    let betas = [0.05f64, 0.2, 1.0];
    // Warm: one context, the β sweep reuses the persisted lattice.
    group.bench_function("warm_sweep", |b| {
        b.iter(|| {
            let ctx = SensitivityConfig::sequential().to_context();
            betas
                .iter()
                .map(|&beta| {
                    ctx.residual_sensitivity(&query, &instance, beta)
                        .unwrap()
                        .value
                })
                .sum::<f64>()
        })
    });
    // Cold: a fresh context per β rebuilds the lattice every time.
    group.bench_function("cold_sweep", |b| {
        b.iter(|| {
            betas
                .iter()
                .map(|&beta| {
                    SensitivityConfig::sequential()
                        .to_context()
                        .residual_sensitivity(&query, &instance, beta)
                        .unwrap()
                        .value
                })
                .sum::<f64>()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_boundary_enumeration,
    bench_residual_end_to_end,
    bench_thread_scaling,
    bench_session_cache_reuse
);
criterion_main!(benches);
