//! Edit-sweep benchmarks: delta-join maintenance against the full-rejoin
//! baseline on neighbour-edit sensitivity sweeps.
//!
//! `local_removal` sweeps the local sensitivity of every single-tuple
//! removal of a star instance — the inner loop of local-sensitivity
//! verification and of the smooth-sensitivity checker.  The `delta` rows
//! run through a cached `DeltaJoinPlan` (one lattice pass, then a hash
//! probe per edit); the `rejoin` rows materialise every neighbour instance
//! and recompute from scratch.  `smooth` benchmarks the radius-2
//! brute-force smooth sensitivity both ways.  Outputs are asserted equal
//! before timing — the speedup is free of any accuracy trade.
//!
//! The headline delta-vs-rejoin numbers are also recorded into
//! `BENCH_join.json` by the `join_throughput` bench's `edit_sweep/*` rows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dpsyn_datagen::random_star;
use dpsyn_noise::seeded_rng;
use dpsyn_sensitivity::{SensitivityConfig, SensitivityOps};
use std::time::Duration;

fn bench_local_removal_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("edit_sweep/local_removal");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    for &(m, per_rel) in &[(3usize, 60usize), (4, 40)] {
        let mut rng = seeded_rng(70 + m as u64);
        let (query, instance) = random_star(m, 16, per_rel, 1.0, &mut rng);
        let edits = instance.removal_edits();
        let delta = || {
            SensitivityConfig::sequential()
                .to_context()
                .local_sensitivity_sweep(&query, &instance, &edits)
                .unwrap()
        };
        let rejoin = || {
            SensitivityConfig::sequential()
                .to_context()
                .local_sensitivity_sweep_materializing(&query, &instance, &edits)
                .unwrap()
        };
        assert_eq!(delta(), rejoin(), "delta sweep must equal full re-join");
        group.bench_with_input(BenchmarkId::new("delta", m), &m, |b, _| b.iter(delta));
        group.bench_with_input(BenchmarkId::new("rejoin", m), &m, |b, _| b.iter(rejoin));
    }
    group.finish();
}

fn bench_smooth_bruteforce(c: &mut Criterion) {
    let mut group = c.benchmark_group("edit_sweep/smooth");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    let mut rng = seeded_rng(80);
    let (query, instance) = random_star(3, 8, 12, 1.0, &mut rng);
    let beta = 0.2;
    let delta = || {
        SensitivityConfig::sequential()
            .to_context()
            .smooth_sensitivity_bruteforce(&query, &instance, beta, 2)
            .unwrap()
    };
    let materializing = || {
        SensitivityConfig::sequential()
            .to_context()
            .smooth_sensitivity_bruteforce_materializing(&query, &instance, beta, 2)
            .unwrap()
    };
    assert_eq!(
        delta().to_bits(),
        materializing().to_bits(),
        "delta smooth sensitivity must equal the materializing oracle"
    );
    group.bench_function("delta", |b| b.iter(delta));
    group.bench_function("materializing", |b| b.iter(materializing));
    group.finish();
}

criterion_group!(benches, bench_local_removal_sweep, bench_smooth_bruteforce);
criterion_main!(benches);
