//! E3 benchmark: Algorithm 4/5 (uniformized two-table release) versus
//! Algorithm 1 on the Example 4.2 skewed-degree family.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dpsyn_bench::experiment_pmw;
use dpsyn_core::{partition_two_table, TwoTable, UniformizedTwoTable};
use dpsyn_datagen::example42_instance;
use dpsyn_noise::{seeded_rng, PrivacyParams};
use dpsyn_query::QueryFamily;
use std::time::Duration;

fn bench_partition(c: &mut Criterion) {
    let mut group = c.benchmark_group("uniformize/partition");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    for &k in &[8u64, 16] {
        let (query, instance) = example42_instance(k);
        let params = PrivacyParams::new(1.0, 1e-6).unwrap();
        group.bench_with_input(BenchmarkId::new("k", k), &k, |b, _| {
            b.iter(|| {
                let mut rng = seeded_rng(3);
                partition_two_table(&query, &instance, params, &mut rng)
                    .unwrap()
                    .len()
            })
        });
    }
    group.finish();
}

fn bench_release_comparison(c: &mut Criterion) {
    let mut group = c.benchmark_group("uniformize/release");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    let (query, instance) = example42_instance(8);
    let params = PrivacyParams::new(1.0, 1e-6).unwrap();
    let mut rng = seeded_rng(4);
    let family = QueryFamily::random_sign(&query, 8, &mut rng).unwrap();
    group.bench_function("join_as_one", |b| {
        b.iter(|| {
            let mut rng = seeded_rng(5);
            TwoTable::new(experiment_pmw())
                .release(&query, &instance, &family, params, &mut rng)
                .unwrap()
                .noisy_total()
        })
    });
    group.bench_function("uniformized", |b| {
        b.iter(|| {
            let mut rng = seeded_rng(5);
            UniformizedTwoTable::new(experiment_pmw())
                .release(&query, &instance, &family, params, &mut rng)
                .unwrap()
                .parts()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_partition, bench_release_comparison);
criterion_main!(benches);
