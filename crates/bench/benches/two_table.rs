//! E2 benchmark: the end-to-end Algorithm 1 (`TwoTable`) release on
//! Figure 2-style instances of growing join size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dpsyn_bench::experiment_pmw;
use dpsyn_core::TwoTable;
use dpsyn_datagen::fig2_hard_instance;
use dpsyn_noise::{seeded_rng, PrivacyParams};
use dpsyn_query::QueryFamily;
use std::time::Duration;

fn bench_two_table_release(c: &mut Criterion) {
    let mut group = c.benchmark_group("release/two_table");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    let params = PrivacyParams::new(1.0, 1e-6).unwrap();
    for &out in &[256u64, 1024] {
        let per_value = out / 4;
        let table: Vec<u64> = (0..8u64).map(|_| (per_value / 8).max(1)).collect();
        let (query, instance) = fig2_hard_instance(&table, (per_value / 8).max(1), 4);
        let mut rng = seeded_rng(1);
        let family = QueryFamily::random_sign(&query, 16, &mut rng).unwrap();
        group.bench_with_input(BenchmarkId::new("OUT", out), &out, |b, _| {
            b.iter(|| {
                let mut rng = seeded_rng(2);
                TwoTable::new(experiment_pmw())
                    .release(&query, &instance, &family, params, &mut rng)
                    .unwrap()
                    .noisy_total()
            })
        });
    }
    group.finish();
}

fn bench_two_table_error_shape(c: &mut Criterion) {
    // Not a timing benchmark per se: runs the quick E2 experiment once per
    // iteration so regressions in the experiment pipeline show up in CI.
    let mut group = c.benchmark_group("experiment/two_table_error");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    group.bench_function("quick", |b| {
        b.iter(|| dpsyn_bench::exp_two_table_error(true).len())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_two_table_release,
    bench_two_table_error_shape
);
criterion_main!(benches);
