//! E4 benchmark: the Algorithm 3 (`MultiTable`) release on random star joins.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dpsyn_bench::experiment_pmw;
use dpsyn_core::MultiTable;
use dpsyn_datagen::random_star;
use dpsyn_noise::{seeded_rng, PrivacyParams};
use dpsyn_query::QueryFamily;
use std::time::Duration;

fn bench_multi_table_release(c: &mut Criterion) {
    let mut group = c.benchmark_group("release/multi_table");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    let params = PrivacyParams::new(1.0, 1e-6).unwrap();
    for &per_rel in &[60usize, 180] {
        let mut rng = seeded_rng(10);
        let (query, instance) = random_star(3, 16, per_rel, 1.0, &mut rng);
        let family = QueryFamily::random_sign(&query, 8, &mut rng).unwrap();
        group.bench_with_input(BenchmarkId::new("star3", per_rel), &per_rel, |b, _| {
            b.iter(|| {
                let mut rng = seeded_rng(11);
                MultiTable::new(experiment_pmw())
                    .release(&query, &instance, &family, params, &mut rng)
                    .unwrap()
                    .delta_tilde()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_multi_table_release);
criterion_main!(benches);
