//! E6 benchmark: synthetic-data release versus per-query Laplace baselines as
//! the workload grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dpsyn_bench::experiment_pmw;
use dpsyn_core::{IndependentLaplaceBaseline, SensitivityChoice, TwoTable};
use dpsyn_datagen::zipf_two_table;
use dpsyn_noise::{seeded_rng, PrivacyParams};
use dpsyn_query::QueryFamily;
use std::time::Duration;

fn bench_baselines(c: &mut Criterion) {
    let mut group = c.benchmark_group("baselines");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    let params = PrivacyParams::new(1.0, 1e-6).unwrap();
    let mut rng = seeded_rng(30);
    let (query, instance) = zipf_two_table(16, 300, 1.0, &mut rng);
    for &q_count in &[16usize, 128] {
        let family = QueryFamily::random_sign(&query, q_count, &mut rng).unwrap();
        group.bench_with_input(
            BenchmarkId::new("synthetic_two_table", q_count),
            &q_count,
            |b, _| {
                b.iter(|| {
                    let mut rng = seeded_rng(31);
                    TwoTable::new(experiment_pmw())
                        .release(&query, &instance, &family, params, &mut rng)
                        .unwrap()
                        .noisy_total()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("per_query_laplace", q_count),
            &q_count,
            |b, _| {
                b.iter(|| {
                    let mut rng = seeded_rng(32);
                    IndependentLaplaceBaseline::new(SensitivityChoice::Residual)
                        .answer_all(&query, &instance, &family, params, &mut rng)
                        .unwrap()
                        .len()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_baselines);
criterion_main!(benches);
