//! E5 benchmark: hierarchical partitioning (Algorithms 6/7) and the
//! hierarchical release versus plain `MultiTable` on the retail star schema.

use criterion::{criterion_group, criterion_main, Criterion};
use dpsyn_bench::experiment_pmw;
use dpsyn_core::{HierarchicalConfig, HierarchicalRelease, MultiTable};
use dpsyn_datagen::retail_star;
use dpsyn_noise::{seeded_rng, PrivacyParams};
use dpsyn_query::QueryFamily;
use std::time::Duration;

fn bench_hierarchical(c: &mut Criterion) {
    let mut group = c.benchmark_group("release/hierarchical");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    let params = PrivacyParams::new(2.0, 1e-4).unwrap();
    let mut rng = seeded_rng(20);
    let (query, instance) = retail_star(24, 80, &mut rng);
    let family = QueryFamily::random_sign(&query, 6, &mut rng).unwrap();

    group.bench_function("partition_only", |b| {
        b.iter(|| {
            let mut rng = seeded_rng(21);
            HierarchicalRelease::default()
                .partition(&query, &instance, params, &mut rng)
                .unwrap()
                .len()
        })
    });
    group.bench_function("hierarchical_release", |b| {
        b.iter(|| {
            let mut rng = seeded_rng(22);
            HierarchicalRelease::new(HierarchicalConfig {
                pmw: experiment_pmw(),
                ..Default::default()
            })
            .release(&query, &instance, &family, params, &mut rng)
            .unwrap()
            .parts()
        })
    });
    group.bench_function("multitable_release", |b| {
        b.iter(|| {
            let mut rng = seeded_rng(23);
            MultiTable::new(experiment_pmw())
                .release(&query, &instance, &family, params, &mut rng)
                .unwrap()
                .delta_tilde()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_hierarchical);
criterion_main!(benches);
