//! Experiment harness reproducing every quantitative claim of the paper.
//!
//! Each `exp_*` function runs one experiment from the per-experiment index in
//! `DESIGN.md` and returns a vector of [`Row`]s; the `src/bin/exp_*.rs`
//! binaries print them as plain-text tables (or JSON with `--json`), and
//! `EXPERIMENTS.md` records representative output next to the paper's
//! predicted shapes.  The Criterion benchmarks under `benches/` reuse the same
//! building blocks with smaller parameters.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod reporting;

pub use experiments::*;
pub use reporting::{
    existing_rows_json, print_table, raw_rows_to_json_pretty, rows_to_json_pretty, run_cli, Row,
};
