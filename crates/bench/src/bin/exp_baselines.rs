//! E6 — synthetic data vs per-query Laplace (Sec. 1.2).
//!
//! Usage: `cargo run --release -p dpsyn-bench --bin exp_baselines [--quick] [--json]`
//! See `EXPERIMENTS.md` for the recorded output and the paper claim it
//! reproduces.

fn main() {
    dpsyn_bench::run_cli(
        "E6 — synthetic data vs per-query Laplace (Sec. 1.2)",
        dpsyn_bench::exp_baselines,
    );
}
