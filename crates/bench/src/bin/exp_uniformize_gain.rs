//! E3 — uniformization gain (Fig. 3 / Example 4.2 / Thm 4.4, 4.5).
//!
//! Usage: `cargo run --release -p dpsyn-bench --bin exp_uniformize_gain [--quick] [--json]`
//! See `EXPERIMENTS.md` for the recorded output and the paper claim it
//! reproduces.

fn main() {
    dpsyn_bench::run_cli(
        "E3 — uniformization gain (Fig. 3 / Example 4.2 / Thm 4.4, 4.5)",
        dpsyn_bench::exp_uniformize_gain,
    );
}
