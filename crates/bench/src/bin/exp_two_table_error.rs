//! E2 — two-table error vs OUT (Theorems 3.3 / 3.5).
//!
//! Usage: `cargo run --release -p dpsyn-bench --bin exp_two_table_error [--quick] [--json]`
//! See `EXPERIMENTS.md` for the recorded output and the paper claim it
//! reproduces.

fn main() {
    dpsyn_bench::run_cli(
        "E2 — two-table error vs OUT (Theorems 3.3 / 3.5)",
        dpsyn_bench::exp_two_table_error,
    );
}
