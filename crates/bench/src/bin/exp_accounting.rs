//! E9 — empirical privacy accounting.
//!
//! Usage: `cargo run --release -p dpsyn-bench --bin exp_accounting [--quick] [--json]`
//! See `EXPERIMENTS.md` for the recorded output and the paper claim it
//! reproduces.

fn main() {
    dpsyn_bench::run_cli(
        "E9 — empirical privacy accounting",
        dpsyn_bench::exp_accounting,
    );
}
