//! E1 — distinguishing attack (Fig. 1 / Example 3.1).
//!
//! Usage: `cargo run --release -p dpsyn-bench --bin exp_privacy_attack [--quick] [--json]`
//! See `EXPERIMENTS.md` for the recorded output and the paper claim it
//! reproduces.

fn main() {
    dpsyn_bench::run_cli(
        "E1 — distinguishing attack (Fig. 1 / Example 3.1)",
        dpsyn_bench::exp_privacy_attack,
    );
}
