//! E4 — multi-table error vs n (Theorem 1.5).
//!
//! Usage: `cargo run --release -p dpsyn-bench --bin exp_multi_table_error [--quick] [--json]`
//! See `EXPERIMENTS.md` for the recorded output and the paper claim it
//! reproduces.

fn main() {
    dpsyn_bench::run_cli(
        "E4 — multi-table error vs n (Theorem 1.5)",
        dpsyn_bench::exp_multi_table_error,
    );
}
