//! E8 — worst-case error (Appendix B.3).
//!
//! Usage: `cargo run --release -p dpsyn-bench --bin exp_worst_case [--quick] [--json]`
//! See `EXPERIMENTS.md` for the recorded output and the paper claim it
//! reproduces.

fn main() {
    dpsyn_bench::run_cli(
        "E8 — worst-case error (Appendix B.3)",
        dpsyn_bench::exp_worst_case,
    );
}
