//! E7 — residual sensitivity runtime (Def. 3.6).
//!
//! Usage: `cargo run --release -p dpsyn-bench --bin exp_sensitivity_scaling [--quick] [--json]`
//! See `EXPERIMENTS.md` for the recorded output and the paper claim it
//! reproduces.

fn main() {
    dpsyn_bench::run_cli(
        "E7 — residual sensitivity runtime (Def. 3.6)",
        dpsyn_bench::exp_sensitivity_scaling,
    );
}
