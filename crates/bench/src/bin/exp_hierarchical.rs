//! E5 — hierarchical uniformization (Sec. 4.2 / Thm C.2).
//!
//! Usage: `cargo run --release -p dpsyn-bench --bin exp_hierarchical [--quick] [--json]`
//! See `EXPERIMENTS.md` for the recorded output and the paper claim it
//! reproduces.

fn main() {
    dpsyn_bench::run_cli(
        "E5 — hierarchical uniformization (Sec. 4.2 / Thm C.2)",
        dpsyn_bench::exp_hierarchical,
    );
}
