//! Plain-text / JSON reporting shared by the experiment binaries.

use serde::Serialize;
use std::collections::BTreeMap;

/// One row of an experiment's output: a label plus named numeric columns.
#[derive(Debug, Clone, Serialize, Default)]
pub struct Row {
    /// Row label (e.g. the swept parameter value).
    pub label: String,
    /// Named numeric columns, in insertion order of the experiment.
    pub values: BTreeMap<String, f64>,
}

impl Row {
    /// Creates a row with the given label.
    pub fn new(label: impl Into<String>) -> Self {
        Row {
            label: label.into(),
            values: BTreeMap::new(),
        }
    }

    /// Adds a named value (builder style).
    pub fn with(mut self, key: &str, value: f64) -> Self {
        self.values.insert(key.to_string(), value);
        self
    }
}

/// Prints rows as an aligned plain-text table.
pub fn print_table(title: &str, rows: &[Row]) {
    println!("== {title} ==");
    if rows.is_empty() {
        println!("(no rows)");
        return;
    }
    let mut columns: Vec<String> = Vec::new();
    for row in rows {
        for key in row.values.keys() {
            if !columns.contains(key) {
                columns.push(key.clone());
            }
        }
    }
    print!("{:<16}", "case");
    for c in &columns {
        print!(" {c:>18}");
    }
    println!();
    for row in rows {
        print!("{:<16}", row.label);
        for c in &columns {
            match row.values.get(c) {
                Some(v) => print!(" {v:>18.3}"),
                None => print!(" {:>18}", "-"),
            }
        }
        println!();
    }
}

/// Standard CLI wrapper used by every experiment binary: `--json` emits the
/// rows as JSON, `--quick` is forwarded to the experiment to shrink the sweep.
pub fn run_cli(title: &str, run: impl Fn(bool) -> Vec<Row>) {
    let args: Vec<String> = std::env::args().collect();
    let json = args.iter().any(|a| a == "--json");
    let quick = args.iter().any(|a| a == "--quick");
    let rows = run(quick);
    if json {
        println!(
            "{}",
            serde_json::to_string_pretty(&rows).expect("rows serialize to JSON")
        );
    } else {
        print_table(title, &rows);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_builder_and_table_do_not_panic() {
        let rows = vec![
            Row::new("n=8").with("error", 1.5).with("bound", 3.0),
            Row::new("n=16").with("error", 2.5),
        ];
        print_table("smoke", &rows);
        print_table("empty", &[]);
        assert_eq!(rows[0].values.len(), 2);
    }

    #[test]
    fn rows_serialize_to_json() {
        let row = Row::new("x").with("v", 1.0);
        let s = serde_json::to_string(&row).unwrap();
        assert!(s.contains("\"label\""));
    }
}
