//! Plain-text / JSON reporting shared by the experiment binaries.
//!
//! JSON is emitted by a small hand-rolled writer (the build environment has
//! no crates.io access, so `serde_json` is unavailable); the format matches
//! what `serde_json` would produce for the same structures.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One row of an experiment's output: a label plus named numeric columns
/// (and optional named text columns, e.g. a planner's chosen join order).
#[derive(Debug, Clone, Default)]
pub struct Row {
    /// Row label (e.g. the swept parameter value).
    pub label: String,
    /// Named numeric columns, in insertion order of the experiment.
    pub values: BTreeMap<String, f64>,
    /// Named text columns (serialized into the same JSON `values` object as
    /// strings; omitted from the plain-text table).
    pub texts: BTreeMap<String, String>,
}

impl Row {
    /// Creates a row with the given label.
    pub fn new(label: impl Into<String>) -> Self {
        Row {
            label: label.into(),
            values: BTreeMap::new(),
            texts: BTreeMap::new(),
        }
    }

    /// Adds a named value (builder style).
    pub fn with(mut self, key: &str, value: f64) -> Self {
        self.values.insert(key.to_string(), value);
        self
    }

    /// Adds a named text column (builder style).
    pub fn with_text(mut self, key: &str, value: impl Into<String>) -> Self {
        self.texts.insert(key.to_string(), value.into());
        self
    }

    /// Serializes the row as a JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"label\":");
        json_escape_into(&mut out, &self.label);
        out.push_str(",\"values\":{");
        let mut first = true;
        for (k, v) in &self.values {
            if !first {
                out.push(',');
            }
            first = false;
            json_escape_into(&mut out, k);
            out.push(':');
            write_json_number(&mut out, *v);
        }
        for (k, v) in &self.texts {
            if !first {
                out.push(',');
            }
            first = false;
            json_escape_into(&mut out, k);
            out.push(':');
            json_escape_into(&mut out, v);
        }
        out.push_str("}}");
        out
    }
}

fn json_escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_json_number(out: &mut String, v: f64) {
    // JSON has no NaN/Infinity; fall back to null like serde_json does.
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

/// Serializes rows as a pretty-printed JSON array (two-space indent).
pub fn rows_to_json_pretty(rows: &[Row]) -> String {
    if rows.is_empty() {
        return "[]".to_string();
    }
    let mut out = String::from("[\n");
    for (i, row) in rows.iter().enumerate() {
        out.push_str("  ");
        out.push_str(&row.to_json());
        if i + 1 < rows.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push(']');
    out
}

/// Extracts `(label, raw JSON object)` pairs from a pretty-printed bench
/// results array (the format written by [`rows_to_json_pretty`]: one object
/// per line).  Tolerates an empty or missing file (`""` → no rows).
///
/// Benches that share one results file (`BENCH_join.json`) use this to
/// read-merge-write: each bench replaces only the rows it owns and keeps
/// every other bench's rows intact.
pub fn existing_rows_json(existing: &str) -> Vec<(String, String)> {
    let mut out = Vec::new();
    for line in existing.lines() {
        let trimmed = line.trim();
        if !trimmed.starts_with('{') {
            continue;
        }
        let raw = trimmed.strip_suffix(',').unwrap_or(trimmed).to_string();
        let Some(start) = raw.find("\"label\":\"").map(|i| i + "\"label\":\"".len()) else {
            continue;
        };
        let Some(len) = raw[start..].find('"') else {
            continue;
        };
        out.push((raw[start..start + len].to_string(), raw));
    }
    out
}

/// Serializes pre-rendered row objects as a pretty-printed JSON array (the
/// write-side counterpart of [`existing_rows_json`]).
pub fn raw_rows_to_json_pretty(raws: &[String]) -> String {
    if raws.is_empty() {
        return "[]".to_string();
    }
    let mut out = String::from("[\n");
    for (i, raw) in raws.iter().enumerate() {
        out.push_str("  ");
        out.push_str(raw);
        if i + 1 < raws.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push(']');
    out
}

/// Prints rows as an aligned plain-text table.
pub fn print_table(title: &str, rows: &[Row]) {
    println!("== {title} ==");
    if rows.is_empty() {
        println!("(no rows)");
        return;
    }
    let mut columns: Vec<String> = Vec::new();
    for row in rows {
        for key in row.values.keys() {
            if !columns.contains(key) {
                columns.push(key.clone());
            }
        }
    }
    print!("{:<16}", "case");
    for c in &columns {
        print!(" {c:>18}");
    }
    println!();
    for row in rows {
        print!("{:<16}", row.label);
        for c in &columns {
            match row.values.get(c) {
                Some(v) => print!(" {v:>18.3}"),
                None => print!(" {:>18}", "-"),
            }
        }
        println!();
    }
}

/// Standard CLI wrapper used by every experiment binary: `--json` emits the
/// rows as JSON, `--quick` is forwarded to the experiment to shrink the sweep.
pub fn run_cli(title: &str, run: impl Fn(bool) -> Vec<Row>) {
    let args: Vec<String> = std::env::args().collect();
    let json = args.iter().any(|a| a == "--json");
    let quick = args.iter().any(|a| a == "--quick");
    let rows = run(quick);
    if json {
        println!("{}", rows_to_json_pretty(&rows));
    } else {
        print_table(title, &rows);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_builder_and_table_do_not_panic() {
        let rows = vec![
            Row::new("n=8").with("error", 1.5).with("bound", 3.0),
            Row::new("n=16").with("error", 2.5),
        ];
        print_table("smoke", &rows);
        print_table("empty", &[]);
        assert_eq!(rows[0].values.len(), 2);
    }

    #[test]
    fn rows_serialize_to_json() {
        let row = Row::new("x").with("v", 1.0);
        let s = row.to_json();
        assert!(s.contains("\"label\":\"x\""));
        assert!(s.contains("\"v\":1"));
        let pretty = rows_to_json_pretty(&[row]);
        assert!(pretty.starts_with("[\n"));
        assert!(pretty.ends_with(']'));
        assert_eq!(rows_to_json_pretty(&[]), "[]");
    }

    #[test]
    fn text_columns_serialize_as_json_strings() {
        let row = Row::new("planner")
            .with("speedup", 2.5)
            .with_text("order", "3>1>0>2");
        let s = row.to_json();
        assert!(s.contains("\"speedup\":2.5"));
        assert!(s.contains("\"order\":\"3>1>0>2\""));
        // Text-only rows still produce a well-formed values object.
        let only_text = Row::new("x").with_text("note", "n").to_json();
        assert!(only_text.contains("{\"note\":\"n\"}"));
    }

    #[test]
    fn merge_round_trip_preserves_foreign_rows() {
        let committed = rows_to_json_pretty(&[
            Row::new("join/two_table/200").with("hash_ns", 1.0),
            Row::new("stream/maintain/b1").with("maintain_ns", 2.0),
        ]);
        let parsed = existing_rows_json(&committed);
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].0, "join/two_table/200");
        // Replace the stream row, keep the join row untouched byte for byte.
        let mut raws: Vec<String> = parsed
            .into_iter()
            .filter(|(label, _)| !label.starts_with("stream/"))
            .map(|(_, raw)| raw)
            .collect();
        raws.push(
            Row::new("stream/maintain/b1")
                .with("maintain_ns", 3.0)
                .to_json(),
        );
        let merged = raw_rows_to_json_pretty(&raws);
        assert!(merged.contains("\"hash_ns\":1"));
        assert!(merged.contains("\"maintain_ns\":3"));
        assert!(!merged.contains("\"maintain_ns\":2"));
        assert_eq!(existing_rows_json(&merged).len(), 2);
        assert!(existing_rows_json("").is_empty());
        assert!(existing_rows_json("[]").is_empty());
    }

    #[test]
    fn json_escaping_handles_special_characters() {
        let row = Row::new("a\"b\\c\nd");
        let s = row.to_json();
        assert!(s.contains("a\\\"b\\\\c\\nd"));
        let mut bad = Row::new("inf");
        bad.values.insert("v".into(), f64::INFINITY);
        assert!(bad.to_json().contains("\"v\":null"));
    }
}
