//! One function per experiment of the per-experiment index in `DESIGN.md`.
//!
//! Every experiment is deterministic given its internal seeds, uses only
//! synthetic data from `dpsyn-datagen`, and reports measured quantities next
//! to the paper's closed-form predictions so that the *shape* of each claim
//! can be checked (who wins, by roughly what factor, where crossovers fall).

use dpsyn_core::bounds;
use dpsyn_core::{
    FlawedJoinAsOne, FlawedPadAfter, HierarchicalRelease, IndependentLaplaceBaseline, MultiTable,
    SensitivityChoice, TwoTable, UniformizedTwoTable,
};
use dpsyn_datagen as datagen;
use dpsyn_noise::{seeded_rng, PrivacyParams};
use dpsyn_pmw::PmwConfig;
use dpsyn_query::QueryFamily;
use dpsyn_relational::{join_size, Instance, JoinQuery};
use dpsyn_sensitivity::{local_sensitivity, residual_sensitivity};
use std::time::Instant;

use crate::reporting::Row;

/// Standard privacy parameters used across experiments (`ε = 1`, `δ = 1e-6`),
/// matching the paper's "typical setting".
pub fn standard_params() -> PrivacyParams {
    PrivacyParams::new(1.0, 1e-6).expect("valid parameters")
}

/// A PMW configuration bounded enough for experiment sweeps.
pub fn experiment_pmw() -> PmwConfig {
    PmwConfig {
        max_iterations: 60,
        ..PmwConfig::default()
    }
}

fn measured_linf(
    query: &JoinQuery,
    instance: &Instance,
    family: &QueryFamily,
    answers: &dpsyn_query::AnswerSet,
) -> f64 {
    let truth = family
        .answer_all_on_instance(query, instance)
        .expect("truth answers");
    truth.linf_distance(answers).expect("aligned answers")
}

/// E1 — Figure 1 / Example 3.1: the distinguishing attack on the flawed
/// strawmen, and its failure against Algorithm 1.
///
/// The attack statistic is the released mass in the region `D'` (the `B = 0`
/// slice where all of instance `I`'s join results live); the attacker guesses
/// "instance I" when the statistic exceeds half of `I`'s join size.  The
/// reported `attack_accuracy` is the fraction of correct guesses over repeated
/// releases of both instances (0.5 = cannot distinguish, 1.0 = perfect
/// distinguisher).
pub fn exp_privacy_attack(quick: bool) -> Vec<Row> {
    let n: u64 = if quick { 8 } else { 16 };
    let trials = if quick { 8 } else { 30 };
    let (query, heavy, empty) = datagen::fig1_pair(n);
    let params = standard_params();
    let family = QueryFamily::counting(&query);
    let threshold = (n * n) as f64 / 2.0;

    // The distinguishing statistic: the released total mass (the quantity the
    // first strawman leaks exactly — Figure 1's join sizes are n² vs 0).  The
    // `D'` region mass of Example 3.1 is reported as an informational column.
    let total_mass = |release: &dpsyn_core::SyntheticRelease| release.histogram().total();
    let region_mass = |release: &dpsyn_core::SyntheticRelease| {
        let h = release.histogram();
        (0..h.len())
            .filter(|&i| h.tuple_of(i)[1] == 0)
            .map(|i| h.weights()[i])
            .sum::<f64>()
    };

    let mut rows = Vec::new();
    let mut run = |name: &str,
                   release: &dyn Fn(
        &Instance,
        &mut rand::rngs::StdRng,
    ) -> dpsyn_core::SyntheticRelease| {
        let mut correct = 0usize;
        let mut heavy_stat = 0.0;
        let mut empty_stat = 0.0;
        let mut heavy_region = 0.0;
        let mut empty_region = 0.0;
        for t in 0..trials {
            let mut rng = seeded_rng(1000 + t as u64);
            let rh = release(&heavy, &mut rng);
            let re = release(&empty, &mut rng);
            let sh = total_mass(&rh);
            let se = total_mass(&re);
            heavy_stat += sh;
            empty_stat += se;
            heavy_region += region_mass(&rh);
            empty_region += region_mass(&re);
            if sh > threshold {
                correct += 1;
            }
            if se <= threshold {
                correct += 1;
            }
        }
        rows.push(
            Row::new(name)
                .with("attack_accuracy", correct as f64 / (2 * trials) as f64)
                .with("mean_total_I", heavy_stat / trials as f64)
                .with("mean_total_I'", empty_stat / trials as f64)
                .with("mean_region_I", heavy_region / trials as f64)
                .with("mean_region_I'", empty_region / trials as f64)
                .with("threshold", threshold),
        );
    };

    let pmw = experiment_pmw();
    run("flawed-join", &|inst, rng| {
        FlawedJoinAsOne::new(pmw)
            .release(&query, inst, &family, params, rng)
            .expect("release")
    });
    run("flawed-pad", &|inst, rng| {
        FlawedPadAfter::new(pmw)
            .release(&query, inst, &family, params, rng)
            .expect("release")
    });
    run("two-table", &|inst, rng| {
        TwoTable::new(pmw)
            .release(&query, inst, &family, params, rng)
            .expect("release")
    });
    rows
}

/// E2 — Theorems 3.3 / 3.5: two-table error versus join size `OUT` at fixed
/// local sensitivity `Δ`, against the upper- and lower-bound curves.
pub fn exp_two_table_error(quick: bool) -> Vec<Row> {
    let params = standard_params();
    let delta_sens = 4u64;
    let outs: &[u64] = if quick {
        &[256, 1024]
    } else {
        &[256, 1024, 4096, 16384]
    };
    let num_queries = if quick { 16 } else { 32 };
    let mut rows = Vec::new();
    for (idx, &out) in outs.iter().enumerate() {
        let per_value = out / delta_sens; // join size = Δ · Σ T(a)
        let d = 8u64;
        let table: Vec<u64> = (0..d).map(|_| (per_value / d).max(1)).collect();
        let (query, instance) =
            datagen::fig2_hard_instance(&table, (per_value / d).max(1), delta_sens);
        let count = join_size(&query, &instance).unwrap() as f64;
        let ls = local_sensitivity(&query, &instance).unwrap() as f64;

        let mut rng = seeded_rng(42 + idx as u64);
        let family = QueryFamily::random_sign(&query, num_queries, &mut rng).unwrap();
        let release = TwoTable::new(experiment_pmw())
            .release(&query, &instance, &family, params, &mut rng)
            .unwrap();
        let answers = release.answer_all(&family).unwrap();
        let err = measured_linf(&query, &instance, &family, &answers);

        let log2_domain = query.schema().log2_full_domain();
        let upper = bounds::two_table_upper_bound(
            count,
            ls,
            params.lambda(),
            log2_domain,
            family.len(),
            params.epsilon(),
            params.delta(),
        );
        let lower = bounds::parameterized_lower_bound(count, ls, log2_domain, params.epsilon());
        rows.push(
            Row::new(format!("OUT={count}"))
                .with("delta", ls)
                .with("measured_error", err)
                .with("upper_bound", upper)
                .with("lower_bound", lower),
        );
    }
    rows
}

/// E3 — Figure 3 / Example 4.2 / Theorems 4.4, 4.5: uniformization versus
/// join-as-one on the skewed degree profile, as the scale `k` grows.
pub fn exp_uniformize_gain(quick: bool) -> Vec<Row> {
    // A moderate budget (λ ≈ 1.7) so that the degree spread of the Example 4.2
    // family actually exceeds λ at laptop scale — the regime where Theorem 4.4
    // separates the two algorithms.  With the standard (1, 1e-6) budget the
    // λ^{3/2}(Δ+λ) additive term dominates at these sizes and join-as-one wins.
    let params = PrivacyParams::new(4.0, 1e-3).expect("valid parameters");
    let ks: &[u64] = if quick { &[8, 16] } else { &[8, 16, 32, 48] };
    let num_queries = if quick { 8 } else { 24 };
    let mut rows = Vec::new();
    for (idx, &k) in ks.iter().enumerate() {
        let (query, instance) = datagen::example42_instance(k);
        let count = join_size(&query, &instance).unwrap() as f64;
        let ls = local_sensitivity(&query, &instance).unwrap() as f64;
        let mut rng = seeded_rng(7 + idx as u64);
        let family = QueryFamily::random_sign(&query, num_queries, &mut rng).unwrap();

        let join_as_one = TwoTable::new(experiment_pmw())
            .release(&query, &instance, &family, params, &mut rng)
            .unwrap();
        let err_join = measured_linf(
            &query,
            &instance,
            &family,
            &join_as_one.answer_all(&family).unwrap(),
        );

        let uniformized = UniformizedTwoTable::new(experiment_pmw())
            .release(&query, &instance, &family, params, &mut rng)
            .unwrap();
        let err_uni = measured_linf(
            &query,
            &instance,
            &family,
            &uniformized.answer_all(&family).unwrap(),
        );

        // Predicted bounds from the uniform partition (Theorem 4.4 vs 3.3).
        let lambda = params.lambda();
        let spec =
            dpsyn_sensitivity::UniformPartitionSpec::two_table(&query, &instance, lambda).unwrap();
        let mut bucket_counts = Vec::new();
        for bucket in 1..=spec.max_bucket() {
            let members = spec.bucket_members(bucket);
            if members.is_empty() {
                continue;
            }
            let shared = query.intersect_attrs(&[0, 1]).unwrap();
            let r1 = instance.relation(0).restrict(&shared, &members).unwrap();
            let r2 = instance.relation(1).restrict(&shared, &members).unwrap();
            let sub = Instance::new(vec![r1, r2]);
            bucket_counts.push((bucket, join_size(&query, &sub).unwrap() as f64));
        }
        let log2_domain = query.schema().log2_full_domain();
        let predicted_join = bounds::two_table_upper_bound(
            count,
            ls,
            lambda,
            log2_domain,
            family.len(),
            params.epsilon(),
            params.delta(),
        );
        let predicted_uni = bounds::uniformized_upper_bound(
            &bucket_counts,
            ls,
            lambda,
            log2_domain,
            family.len(),
            params.epsilon(),
            params.delta(),
        );
        rows.push(
            Row::new(format!("k={k}"))
                .with("count", count)
                .with("delta", ls)
                .with("err_join_as_one", err_join)
                .with("err_uniformized", err_uni)
                .with("bound_join_as_one", predicted_join)
                .with("bound_uniformized", predicted_uni)
                .with("parts", uniformized.parts() as f64),
        );
    }
    rows
}

/// E4 — Theorem 1.5: multi-table (3-relation star) error versus input size,
/// with the residual-sensitivity-based bound, under uniform and Zipf skew.
pub fn exp_multi_table_error(quick: bool) -> Vec<Row> {
    let params = standard_params();
    let sizes: &[usize] = if quick {
        &[60, 120]
    } else {
        &[60, 120, 240, 480]
    };
    let num_queries = if quick { 8 } else { 16 };
    let mut rows = Vec::new();
    for &theta in &[0.0f64, 1.2] {
        for (idx, &per_rel) in sizes.iter().enumerate() {
            let mut rng = seeded_rng(100 + idx as u64 + (theta * 10.0) as u64);
            let (query, instance) = datagen::random_star(3, 16, per_rel, theta, &mut rng);
            let count = join_size(&query, &instance).unwrap() as f64;
            let beta = MultiTable::beta(params).unwrap();
            let rs = residual_sensitivity(&query, &instance, beta).unwrap().value;
            let family = QueryFamily::random_sign(&query, num_queries, &mut rng).unwrap();
            let release = MultiTable::new(experiment_pmw())
                .release(&query, &instance, &family, params, &mut rng)
                .unwrap();
            let err = measured_linf(
                &query,
                &instance,
                &family,
                &release.answer_all(&family).unwrap(),
            );
            let bound = bounds::multi_table_upper_bound(
                count,
                rs,
                params.lambda(),
                query.schema().log2_full_domain(),
                family.len(),
                params.epsilon(),
                params.delta(),
            );
            rows.push(
                Row::new(format!("n={per_rel} θ={theta}"))
                    .with("count", count)
                    .with("residual_sensitivity", rs)
                    .with("delta_tilde", release.delta_tilde())
                    .with("measured_error", err)
                    .with("upper_bound", bound),
            );
        }
    }
    rows
}

/// E5 — Section 4.2 / Theorem C.2: hierarchical uniformization versus plain
/// `MultiTable` on a skewed star schema.
pub fn exp_hierarchical(quick: bool) -> Vec<Row> {
    let params = PrivacyParams::new(2.0, 1e-4).expect("valid parameters");
    let sizes: &[usize] = if quick { &[80] } else { &[80, 160, 320] };
    let num_queries = if quick { 6 } else { 12 };
    let mut rows = Vec::new();
    for (idx, &rows_per_table) in sizes.iter().enumerate() {
        let mut rng = seeded_rng(500 + idx as u64);
        let (query, instance) = datagen::retail_star(24, rows_per_table, &mut rng);
        let family = QueryFamily::random_sign(&query, num_queries, &mut rng).unwrap();

        let plain = MultiTable::new(experiment_pmw())
            .release(&query, &instance, &family, params, &mut rng)
            .unwrap();
        let err_plain = measured_linf(
            &query,
            &instance,
            &family,
            &plain.answer_all(&family).unwrap(),
        );

        let hier = HierarchicalRelease::new(dpsyn_core::HierarchicalConfig {
            pmw: experiment_pmw(),
            ..Default::default()
        })
        .release(&query, &instance, &family, params, &mut rng)
        .unwrap();
        let err_hier = measured_linf(
            &query,
            &instance,
            &family,
            &hier.answer_all(&family).unwrap(),
        );

        rows.push(
            Row::new(format!("rows={rows_per_table}"))
                .with("count", join_size(&query, &instance).unwrap() as f64)
                .with("err_multitable", err_plain)
                .with("err_hierarchical", err_hier)
                .with("sub_instances", hier.parts() as f64)
                .with("delta_tilde_multi", plain.delta_tilde())
                .with("delta_tilde_hier", hier.delta_tilde()),
        );
    }
    rows
}

/// E6 — the Section 1.2 motivation: synthetic data versus per-query Laplace
/// (residual- and global-calibrated) as the workload size grows.
pub fn exp_baselines(quick: bool) -> Vec<Row> {
    let params = standard_params();
    let sizes: &[usize] = if quick { &[8, 64] } else { &[8, 64, 512, 2048] };
    let mut rows = Vec::new();
    let mut gen_rng = seeded_rng(31);
    let (query, instance) = datagen::zipf_two_table(16, 400, 1.0, &mut gen_rng);
    for (idx, &q_count) in sizes.iter().enumerate() {
        let mut rng = seeded_rng(600 + idx as u64);
        let family = QueryFamily::random_sign(&query, q_count, &mut rng).unwrap();

        let synthetic = TwoTable::new(experiment_pmw())
            .release(&query, &instance, &family, params, &mut rng)
            .unwrap();
        let err_synth = measured_linf(
            &query,
            &instance,
            &family,
            &synthetic.answer_all(&family).unwrap(),
        );

        let residual = IndependentLaplaceBaseline::new(SensitivityChoice::Residual)
            .answer_all(&query, &instance, &family, params, &mut rng)
            .unwrap();
        let err_residual = measured_linf(&query, &instance, &family, &residual);

        let global = IndependentLaplaceBaseline::new(SensitivityChoice::Global {
            n_upper: instance.input_size(),
        })
        .answer_all(&query, &instance, &family, params, &mut rng)
        .unwrap();
        let err_global = measured_linf(&query, &instance, &family, &global);

        rows.push(
            Row::new(format!("|Q|={q_count}"))
                .with("err_synthetic", err_synth)
                .with("err_laplace_residual", err_residual)
                .with("err_laplace_global", err_global),
        );
    }
    rows
}

/// E7 — Definition 3.6's computability claim: residual-sensitivity runtime as
/// the input size and the number of relations grow.
pub fn exp_sensitivity_scaling(quick: bool) -> Vec<Row> {
    let params = standard_params();
    let beta = 1.0 / params.lambda();
    let mut rows = Vec::new();
    let sizes: &[usize] = if quick {
        &[100, 200]
    } else {
        &[100, 400, 1600]
    };
    for &n in sizes {
        for &m in &[2usize, 3, 4] {
            let mut rng = seeded_rng(800 + n as u64 + m as u64);
            let (query, instance) = datagen::random_star(m, 32, n / m, 1.0, &mut rng);
            let start = Instant::now();
            let rs = residual_sensitivity(&query, &instance, beta).unwrap();
            let elapsed = start.elapsed().as_secs_f64() * 1e3;
            rows.push(
                Row::new(format!("n={n} m={m}"))
                    .with("rs_value", rs.value)
                    .with(
                        "ls_value",
                        local_sensitivity(&query, &instance).unwrap() as f64,
                    )
                    .with("time_ms", elapsed),
            );
        }
    }
    rows
}

/// E8 — Appendix B.3: measured error on adversarially skewed instances of the
/// triangle and star queries against the worst-case closed forms.
pub fn exp_worst_case(quick: bool) -> Vec<Row> {
    let params = standard_params();
    let sizes: &[usize] = if quick { &[60] } else { &[60, 120, 240] };
    let mut rows = Vec::new();
    for (idx, &n) in sizes.iter().enumerate() {
        let mut rng = seeded_rng(900 + idx as u64);
        // Adversarial skew: every relation concentrates on hub value 0.
        let (query, instance) = datagen::random_star(3, 8, n, 3.0, &mut rng);
        let family = QueryFamily::random_sign(&query, 8, &mut rng).unwrap();
        let release = MultiTable::new(experiment_pmw())
            .release(&query, &instance, &family, params, &mut rng)
            .unwrap();
        let err = measured_linf(
            &query,
            &instance,
            &family,
            &release.answer_all(&family).unwrap(),
        );
        let (rho_full, rho_res) = dpsyn_sensitivity::worst_case_error_exponent(&query).unwrap();
        let input = instance.input_size() as f64;
        rows.push(
            Row::new(format!("star3 n={n}"))
                .with("measured_error", err)
                .with("count", join_size(&query, &instance).unwrap() as f64)
                .with("rho_full", rho_full)
                .with("rho_residual", rho_res)
                .with(
                    "worst_case_annotated",
                    bounds::worst_case_error_annotated(input, 3),
                )
                .with(
                    "worst_case_set_valued",
                    bounds::worst_case_error_set_valued(input, rho_full, rho_res),
                ),
        );
    }
    rows
}

/// E9 — empirical privacy accounting: an ε̂ estimate from repeated releases on
/// a pair of neighbouring instances, compared to the accounted ε.
///
/// The estimator discretises the released counting answer into "above /
/// below threshold" events and reports the worst log-likelihood ratio over a
/// grid of thresholds — a lower bound on the true ε (up to sampling error),
/// which must not exceed the accounted ε by a wide margin.
pub fn exp_accounting(quick: bool) -> Vec<Row> {
    let trials = if quick { 40 } else { 200 };
    let params = standard_params();
    let query = JoinQuery::two_table(8, 8, 8);
    let mut base = Instance::empty_for(&query).unwrap();
    for a in 0..6u64 {
        base.relation_mut(0).add(vec![a, 0], 1).unwrap();
        base.relation_mut(1).add(vec![0, a], 1).unwrap();
    }
    let neighbor = base
        .apply_edit(&dpsyn_relational::NeighborEdit::Add {
            relation: 0,
            tuple: vec![7, 0],
        })
        .unwrap();
    let family = QueryFamily::counting(&query);
    let pmw = PmwConfig {
        iterations_override: Some(5),
        ..PmwConfig::default()
    };

    let sample_counts = |instance: &Instance, seed_base: u64| -> Vec<f64> {
        (0..trials)
            .map(|t| {
                let mut rng = seeded_rng(seed_base + t as u64);
                TwoTable::new(pmw)
                    .release(&query, instance, &family, params, &mut rng)
                    .unwrap()
                    .answer(&dpsyn_query::ProductQuery::counting(2))
                    .unwrap()
            })
            .collect()
    };
    let a = sample_counts(&base, 10_000);
    let b = sample_counts(&neighbor, 20_000);

    let mut eps_hat: f64 = 0.0;
    let mut all: Vec<f64> = a.iter().chain(b.iter()).copied().collect();
    all.sort_by(|x, y| x.partial_cmp(y).unwrap());
    for threshold in all.iter().step_by((all.len() / 16).max(1)) {
        let pa =
            (a.iter().filter(|&&x| x > *threshold).count() as f64 + 1.0) / (trials as f64 + 2.0);
        let pb =
            (b.iter().filter(|&&x| x > *threshold).count() as f64 + 1.0) / (trials as f64 + 2.0);
        eps_hat = eps_hat
            .max((pa / pb).ln().abs())
            .max(((1.0 - pa) / (1.0 - pb)).ln().abs());
    }

    vec![Row::new("two-table counting")
        .with("accounted_epsilon", params.epsilon())
        .with("empirical_epsilon_lower_bound", eps_hat)
        .with("trials_per_instance", trials as f64)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_experiments_produce_rows() {
        assert_eq!(exp_privacy_attack(true).len(), 3);
        assert_eq!(exp_two_table_error(true).len(), 2);
        assert_eq!(exp_uniformize_gain(true).len(), 2);
        assert_eq!(exp_multi_table_error(true).len(), 4);
        assert!(!exp_baselines(true).is_empty());
        assert_eq!(exp_sensitivity_scaling(true).len(), 6);
        assert_eq!(exp_worst_case(true).len(), 1);
        assert_eq!(exp_accounting(true).len(), 1);
        assert_eq!(exp_hierarchical(true).len(), 1);
    }

    #[test]
    fn privacy_attack_separates_flawed_from_fixed() {
        let rows = exp_privacy_attack(true);
        let accuracy = |name: &str| {
            rows.iter()
                .find(|r| r.label == name)
                .unwrap()
                .values
                .get("attack_accuracy")
                .copied()
                .unwrap()
        };
        // The first strawman is a perfect distinguisher even at small scale.
        assert!(accuracy("flawed-join") > 0.9);
    }

    #[test]
    fn accounting_estimate_stays_below_budget() {
        let rows = exp_accounting(true);
        let eps_hat = rows[0].values["empirical_epsilon_lower_bound"];
        let eps = rows[0].values["accounted_epsilon"];
        // Allow generous slack for sampling error with few trials.
        assert!(
            eps_hat <= 3.0 * eps + 1.0,
            "eps_hat = {eps_hat}, eps = {eps}"
        );
    }
}
