//! Multi-table instances and the neighbouring relation of Definition 1.1.

use crate::attr::AttrId;
use crate::error::RelationalError;
use crate::hypergraph::JoinQuery;
use crate::relation::Relation;
use crate::tuple::Value;
use crate::Result;

/// A database instance `I = (R_1, …, R_m)` over a join query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Instance {
    relations: Vec<Relation>,
}

/// A single-tuple edit turning an instance into a neighbouring instance
/// (add or remove one copy of one tuple in one relation — Definition 1.1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NeighborEdit {
    /// Add one copy of `tuple` to relation `relation`.
    Add {
        /// Index of the relation being edited.
        relation: usize,
        /// The tuple whose frequency increases by one.
        tuple: Vec<Value>,
    },
    /// Remove one copy of `tuple` from relation `relation`.
    Remove {
        /// Index of the relation being edited.
        relation: usize,
        /// The tuple whose frequency decreases by one.
        tuple: Vec<Value>,
    },
}

impl NeighborEdit {
    /// Index of the relation the edit targets.
    pub fn relation(&self) -> usize {
        match self {
            NeighborEdit::Add { relation, .. } | NeighborEdit::Remove { relation, .. } => *relation,
        }
    }

    /// The tuple whose frequency the edit changes.
    pub fn tuple(&self) -> &[Value] {
        match self {
            NeighborEdit::Add { tuple, .. } | NeighborEdit::Remove { tuple, .. } => tuple,
        }
    }

    /// Whether the edit removes a copy (`true`) or adds one (`false`).
    pub fn is_removal(&self) -> bool {
        matches!(self, NeighborEdit::Remove { .. })
    }
}

impl Instance {
    /// Creates an instance from relations (one per query relation, in order).
    pub fn new(relations: Vec<Relation>) -> Self {
        Instance { relations }
    }

    /// Creates an empty instance matching the query's relation attribute lists.
    pub fn empty_for(query: &JoinQuery) -> Result<Self> {
        let relations = (0..query.num_relations())
            .map(|i| Relation::new(query.relation_attrs(i).to_vec()))
            .collect::<Result<Vec<_>>>()?;
        Ok(Instance { relations })
    }

    /// Number of relations.
    pub fn num_relations(&self) -> usize {
        self.relations.len()
    }

    /// Immutable access to relation `i`.
    pub fn relation(&self, i: usize) -> &Relation {
        &self.relations[i]
    }

    /// Mutable access to relation `i`.
    pub fn relation_mut(&mut self, i: usize) -> &mut Relation {
        &mut self.relations[i]
    }

    /// All relations.
    pub fn relations(&self) -> &[Relation] {
        &self.relations
    }

    /// The input size `n = Σ_i Σ_t R_i(t)`.
    pub fn input_size(&self) -> u64 {
        self.relations.iter().map(Relation::total).sum()
    }

    /// Validates the instance against a join query: relation count, attribute
    /// lists and domain bounds must all match.
    pub fn validate(&self, query: &JoinQuery) -> Result<()> {
        if self.relations.len() != query.num_relations() {
            return Err(RelationalError::RelationCountMismatch {
                expected: query.num_relations(),
                got: self.relations.len(),
            });
        }
        for (i, rel) in self.relations.iter().enumerate() {
            if rel.attrs() != query.relation_attrs(i) {
                return Err(RelationalError::SchemaMismatch {
                    relation: i,
                    detail: format!(
                        "expected attributes {:?}, found {:?}",
                        query.relation_attrs(i),
                        rel.attrs()
                    ),
                });
            }
            rel.validate_domains(|a: AttrId| query.schema().domain_size(a).unwrap_or(0))?;
        }
        Ok(())
    }

    /// Applies a neighbouring edit, producing the neighbouring instance.
    pub fn apply_edit(&self, edit: &NeighborEdit) -> Result<Instance> {
        let mut out = self.clone();
        match edit {
            NeighborEdit::Add { relation, tuple } => {
                out.relation_mut(*relation).add_one(tuple.clone())?;
            }
            NeighborEdit::Remove { relation, tuple } => {
                out.relation_mut(*relation).remove_one(tuple)?;
            }
        }
        Ok(out)
    }

    /// Checks whether `self` and `other` are neighbouring instances
    /// (Definition 1.1): identical except for one tuple in one relation whose
    /// frequency differs by exactly one.
    pub fn is_neighbor_of(&self, other: &Instance) -> bool {
        if self.relations.len() != other.relations.len() {
            return false;
        }
        let mut difference_found = false;
        for (a, b) in self.relations.iter().zip(other.relations.iter()) {
            if a.attrs() != b.attrs() {
                return false;
            }
            // Count tuples whose frequencies differ.
            let mut keys: std::collections::BTreeSet<&Vec<Value>> =
                a.iter().map(|(t, _)| t).collect();
            keys.extend(b.iter().map(|(t, _)| t));
            for t in keys {
                let fa = a.freq(t);
                let fb = b.freq(t);
                if fa != fb {
                    let gap = fa.abs_diff(fb);
                    if gap != 1 || difference_found {
                        return false;
                    }
                    difference_found = true;
                }
            }
        }
        difference_found
    }

    /// Enumerates all "remove one existing tuple copy" neighbouring edits.
    /// (The "add" direction is unbounded and is generated by callers that know
    /// which tuples matter, e.g. sensitivity computations.)
    pub fn removal_edits(&self) -> Vec<NeighborEdit> {
        let mut out = Vec::new();
        for (i, rel) in self.relations.iter().enumerate() {
            for (t, _) in rel.iter() {
                out.push(NeighborEdit::Remove {
                    relation: i,
                    tuple: t.clone(),
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::AttrId;

    fn ids(v: &[u16]) -> Vec<AttrId> {
        v.iter().map(|&x| AttrId(x)).collect()
    }

    fn two_table_instance() -> (JoinQuery, Instance) {
        let q = JoinQuery::two_table(4, 4, 4);
        let r1 = Relation::from_tuples(
            ids(&[0, 1]),
            vec![(vec![0, 0], 1), (vec![1, 0], 2), (vec![2, 1], 1)],
        )
        .unwrap();
        let r2 = Relation::from_tuples(
            ids(&[1, 2]),
            vec![(vec![0, 0], 1), (vec![0, 1], 1), (vec![1, 3], 3)],
        )
        .unwrap();
        (q, Instance::new(vec![r1, r2]))
    }

    #[test]
    fn input_size_sums_frequencies() {
        let (_, inst) = two_table_instance();
        assert_eq!(inst.input_size(), 4 + 5);
    }

    #[test]
    fn validate_accepts_matching_instance() {
        let (q, inst) = two_table_instance();
        assert!(inst.validate(&q).is_ok());
    }

    #[test]
    fn validate_rejects_wrong_relation_count() {
        let (q, inst) = two_table_instance();
        let bad = Instance::new(vec![inst.relation(0).clone()]);
        assert!(matches!(
            bad.validate(&q),
            Err(RelationalError::RelationCountMismatch { .. })
        ));
    }

    #[test]
    fn validate_rejects_out_of_domain_value() {
        let (q, mut inst) = two_table_instance();
        inst.relation_mut(0).add_one(vec![99, 0]).unwrap();
        assert!(matches!(
            inst.validate(&q),
            Err(RelationalError::ValueOutOfDomain { .. })
        ));
    }

    #[test]
    fn neighbor_edits_and_detection() {
        let (_, inst) = two_table_instance();
        let add = NeighborEdit::Add {
            relation: 0,
            tuple: vec![3, 3],
        };
        let neighbor = inst.apply_edit(&add).unwrap();
        assert!(inst.is_neighbor_of(&neighbor));
        assert!(neighbor.is_neighbor_of(&inst));
        assert_eq!(neighbor.input_size(), inst.input_size() + 1);

        let remove = NeighborEdit::Remove {
            relation: 1,
            tuple: vec![1, 3],
        };
        let neighbor2 = inst.apply_edit(&remove).unwrap();
        assert!(inst.is_neighbor_of(&neighbor2));
        assert_eq!(neighbor2.input_size(), inst.input_size() - 1);

        // Two edits away is not a neighbour.
        let far = neighbor.apply_edit(&add).unwrap();
        assert!(!inst.is_neighbor_of(&far));
        // An instance is not its own neighbour.
        assert!(!inst.is_neighbor_of(&inst.clone()));
    }

    #[test]
    fn removal_edits_cover_all_tuples() {
        let (_, inst) = two_table_instance();
        let edits = inst.removal_edits();
        assert_eq!(edits.len(), 6); // 3 distinct tuples per relation
        for e in edits {
            let neighbor = inst.apply_edit(&e).unwrap();
            assert!(inst.is_neighbor_of(&neighbor));
        }
    }

    #[test]
    fn empty_for_builds_matching_schema() {
        let q = JoinQuery::star(3, 8).unwrap();
        let inst = Instance::empty_for(&q).unwrap();
        assert_eq!(inst.num_relations(), 3);
        assert!(inst.validate(&q).is_ok());
        assert_eq!(inst.input_size(), 0);
    }
}
