//! Multi-way natural join evaluation (hash-join engine).
//!
//! The join result of an instance `I` over a query `H` is the function
//! `Join_I : dom(x) → Z≥0` of Section 1.1, represented sparsely (only tuples
//! with non-zero weight are stored).  Weights are products of the input
//! frequencies of the participating tuples.
//!
//! The same machinery evaluates *sub-joins* (joins of a subset `E` of the
//! relations), which the sensitivity computations of Section 3.3 need for the
//! maximum boundary queries `T_E`.
//!
//! ### Engine design
//!
//! A [`JoinResult`] stores its tuples **columnar**: one flat row-major
//! `Vec<Value>` (all tuples of a result share the arity of its attribute
//! list) plus a parallel weight vector, so emitting a result tuple is a
//! plain `extend`/`push` with no per-tuple allocation at any arity.  No
//! dedup map is needed while folding: distinct `(left, right)` operand pairs
//! always merge to distinct tuples (each operand tuple is a projection of
//! the merged tuple), so duplicates are structurally impossible.
//!
//! Hash maps enter only where they pay: each binary step indexes the
//! *smaller* operand by its shared-attribute projection — keys live in a
//! frozen [`KeyArena`] and the map is keyed by borrowed `&[Value]` rows, so
//! the build pass allocates nothing per key at any arity — and probes it
//! with the larger operand through a reusable scratch buffer: O(1) probes,
//! zero allocations, in place of the O(len·log n) comparisons the previous
//! `BTreeMap` engine paid.  [`join_subset`] additionally folds the relations
//! in ascending size order.
//!
//! ### Parallel probe
//!
//! The probe loop of each binary step is partitioned into contiguous
//! probe-row ranges and driven through the scoped worker pool of
//! [`crate::exec`] (see [`hash_join_step_with`]).  Each worker probes the
//! shared frozen index and emits into its own flat buffer; the per-range
//! buffers are concatenated **in range order**, which reproduces the
//! sequential emission order byte for byte at every worker count.  The
//! plain entry points ([`join`], [`join_size`], …) use
//! [`Parallelism::default`]; [`crate::ExecContext`] methods take the knob
//! from the context, and `Parallelism::SEQUENTIAL` is exactly the
//! pre-parallel code path.
//!
//! Determinism is preserved by sorting on emit: [`JoinResult::iter`],
//! [`JoinResult::group_by`] and [`JoinResult::distinct_projections`] return
//! sorted views, so downstream seeded algorithms observe exactly the order
//! the previous engine produced.  The original engine is retained in
//! [`crate::naive`] as a cross-check oracle for property tests and
//! benchmarks.

use std::collections::BTreeMap;

use crate::attr::AttrId;
use crate::error::RelationalError;
use crate::exec::{self, Parallelism};
use crate::hash::FxHashMap;
use crate::hypergraph::JoinQuery;
use crate::instance::Instance;
use crate::relation::Relation;
use crate::tuple::{
    intersect_attrs, project_into, project_positions, union_attrs, KeyArena, TupleKey, Value,
};
use crate::Result;

/// Probe loops shorter than this stay sequential even when a multi-thread
/// [`Parallelism`] is requested: below it, thread spawn/join overhead
/// outweighs the probe work itself.
const MIN_PAR_PROBE: usize = 1024;

/// A sparse join result: tuples over `attrs` with positive integer weights.
///
/// Stored columnar (flat row-major value buffer + parallel weights); tuples
/// are distinct by construction.  Every public iteration order is sorted on
/// emit (see the module docs).
#[derive(Debug, Clone, Eq)]
pub struct JoinResult {
    attrs: Vec<AttrId>,
    /// Row-major tuple values: row `i` is `values[i*width .. (i+1)*width]`
    /// where `width == attrs.len()`.
    values: Vec<Value>,
    /// Weight of row `i`.
    weights: Vec<u128>,
}

impl PartialEq for JoinResult {
    /// Order-insensitive equality (results are unordered weighted sets).
    fn eq(&self, other: &Self) -> bool {
        if self.attrs != other.attrs || self.weights.len() != other.weights.len() {
            return false;
        }
        let mut a: Vec<(&[Value], u128)> = self.iter_unordered().collect();
        let mut b: Vec<(&[Value], u128)> = other.iter_unordered().collect();
        a.sort_unstable();
        b.sort_unstable();
        a == b
    }
}

impl JoinResult {
    /// The attribute list the result tuples range over (sorted).
    pub fn attrs(&self) -> &[AttrId] {
        &self.attrs
    }

    #[inline]
    fn width(&self) -> usize {
        self.attrs.len()
    }

    /// The tuple of row `i`.
    #[inline]
    fn row(&self, i: usize) -> &[Value] {
        let w = self.width();
        &self.values[i * w..i * w + w]
    }

    /// Total weight `Σ_t Join(t)` — the join size when the result covers all
    /// relations of the query.  Saturates at `u128::MAX`.
    pub fn total(&self) -> u128 {
        self.weights
            .iter()
            .fold(0u128, |acc, &w| acc.saturating_add(w))
    }

    /// Number of distinct result tuples.
    pub fn distinct_count(&self) -> usize {
        self.weights.len()
    }

    /// Whether the result is empty.
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Iterates over `(tuple, weight)` pairs in deterministic (sorted tuple)
    /// order.  Sorting happens on emit; use [`JoinResult::iter_unordered`]
    /// when order is irrelevant.
    pub fn iter(&self) -> impl Iterator<Item = (&[Value], u128)> {
        let mut order: Vec<usize> = (0..self.weights.len()).collect();
        order.sort_unstable_by(|&a, &b| self.row(a).cmp(self.row(b)));
        order.into_iter().map(|i| (self.row(i), self.weights[i]))
    }

    /// Iterates over `(tuple, weight)` pairs in arbitrary (construction)
    /// order.
    pub fn iter_unordered(&self) -> impl Iterator<Item = (&[Value], u128)> {
        (0..self.weights.len()).map(|i| (self.row(i), self.weights[i]))
    }

    /// Weight of a specific tuple (zero if absent).
    ///
    /// O(n) scan — intended for tests and spot checks; bulk consumers should
    /// iterate or group instead.
    pub fn weight(&self, tuple: &[Value]) -> u128 {
        self.iter_unordered()
            .find(|&(t, _)| t == tuple)
            .map(|(_, w)| w)
            .unwrap_or(0)
    }

    /// Groups the result by a subset of its attributes, summing weights into
    /// a hash map keyed by the projected [`TupleKey`].  This is the
    /// order-free fast path behind [`JoinResult::group_by`] /
    /// [`JoinResult::max_group_weight`].
    pub fn group_by_key(&self, group_by: &[AttrId]) -> Result<FxHashMap<TupleKey, u128>> {
        let positions = project_positions(&self.attrs, group_by)?;
        let mut out: FxHashMap<TupleKey, u128> = FxHashMap::default();
        let mut scratch: Vec<Value> = Vec::with_capacity(positions.len());
        for (t, w) in self.iter_unordered() {
            project_into(t, &positions, &mut scratch);
            match out.get_mut(scratch.as_slice()) {
                Some(total) => *total = total.saturating_add(w),
                None => {
                    out.insert(TupleKey::from_slice(&scratch), w);
                }
            }
        }
        if group_by.is_empty() && out.is_empty() {
            out.insert(TupleKey::from_slice(&[]), 0);
        }
        Ok(out)
    }

    /// Groups the result by a subset of its attributes, summing weights.
    /// For an empty `group_by` the map has one entry (the empty key) holding
    /// the total weight.  The returned map is sorted (deterministic).
    pub fn group_by(&self, group_by: &[AttrId]) -> Result<BTreeMap<Vec<Value>, u128>> {
        Ok(self
            .group_by_key(group_by)?
            .into_iter()
            .map(|(k, w)| (k.to_vec(), w))
            .collect())
    }

    /// Maximum group weight over `group_by` (zero for an empty result).
    /// Never sorts: a pure fold over the hash groups.
    pub fn max_group_weight(&self, group_by: &[AttrId]) -> Result<u128> {
        Ok(self
            .group_by_key(group_by)?
            .values()
            .copied()
            .max()
            .unwrap_or(0))
    }

    /// Returns the set of distinct projections of result tuples onto `onto`
    /// (sorted, as a `BTreeSet`).
    pub fn distinct_projections(
        &self,
        onto: &[AttrId],
    ) -> Result<std::collections::BTreeSet<Vec<Value>>> {
        let positions = project_positions(&self.attrs, onto)?;
        Ok(self
            .iter_unordered()
            .map(|(t, _)| crate::tuple::project_with_positions(t, &positions))
            .collect())
    }

    /// Builds a result directly from parts (used by tests and simulators).
    /// The map's keys are distinct by construction.
    pub fn from_parts(attrs: Vec<AttrId>, tuples: BTreeMap<Vec<Value>, u128>) -> Self {
        let width = attrs.len();
        let mut values = Vec::with_capacity(tuples.len() * width);
        let mut weights = Vec::with_capacity(tuples.len());
        for (t, w) in tuples {
            debug_assert_eq!(t.len(), width, "tuple arity must match the attribute list");
            values.extend_from_slice(&t);
            weights.push(w);
        }
        JoinResult {
            attrs,
            values,
            weights,
        }
    }

    /// The single-relation join result: the relation's tuples with their
    /// frequencies as weights (distinct by construction).
    pub fn from_relation(relation: &Relation) -> Self {
        let width = relation.arity();
        let mut values = Vec::with_capacity(relation.distinct_count() * width);
        let mut weights = Vec::with_capacity(relation.distinct_count());
        for (t, f) in relation.iter() {
            values.extend_from_slice(t);
            weights.push(f as u128);
        }
        JoinResult {
            attrs: relation.attrs().to_vec(),
            values,
            weights,
        }
    }
}

/// Where each attribute of a merged tuple comes from.
enum Side {
    Left(usize),
    Right(usize),
}

/// Plans the merge of tuples over `left_attrs` and `right_attrs`: the merged
/// attribute list (sorted union) plus, per merged attribute, the operand
/// position supplying its value.
fn merge_plan(left_attrs: &[AttrId], right_attrs: &[AttrId]) -> (Vec<AttrId>, Vec<Side>) {
    let attrs = union_attrs(left_attrs, right_attrs);
    let plan = attrs
        .iter()
        .map(|a| match left_attrs.binary_search(a) {
            Ok(p) => Side::Left(p),
            Err(_) => Side::Right(
                right_attrs
                    .binary_search(a)
                    .expect("attribute must originate from one operand"),
            ),
        })
        .collect();
    (attrs, plan)
}

/// Appends the merged tuple of `(left, right)` under `plan` to `out`.
#[inline]
fn merge_row(plan: &[Side], left: &[Value], right: &[Value], out: &mut Vec<Value>) {
    out.extend(plan.iter().map(|side| match side {
        Side::Left(p) => left[*p],
        Side::Right(p) => right[*p],
    }));
}

/// Concatenates per-range probe outputs in range order into one flat result
/// buffer pair.  Range-ordered concatenation equals the sequential emission
/// order (see the module docs), so the result is byte-identical at every
/// worker count.
fn merge_parts(mut parts: Vec<(Vec<Value>, Vec<u128>)>) -> (Vec<Value>, Vec<u128>) {
    if parts.len() == 1 {
        // Sequential (single-chunk) case: hand the buffers over as-is —
        // re-copying the whole join output here would halve sequential
        // throughput.
        return parts.pop().expect("one part");
    }
    let mut values = Vec::with_capacity(parts.iter().map(|(v, _)| v.len()).sum());
    let mut weights = Vec::with_capacity(parts.iter().map(|(_, w)| w.len()).sum());
    for (v, w) in parts {
        values.extend_from_slice(&v);
        weights.extend_from_slice(&w);
    }
    (values, weights)
}

/// One binary hash-join step: joins an accumulated result with a relation.
/// Shorthand for [`hash_join_step_with`] at the default parallelism.
pub fn hash_join_step(acc: &JoinResult, rel: &Relation) -> Result<JoinResult> {
    hash_join_step_with(acc, rel, Parallelism::default())
}

/// One binary hash-join step at an explicit parallelism level.
///
/// The smaller operand (by distinct tuple count) becomes the hash-build side:
/// its shared-attribute projections are materialised into a frozen
/// [`KeyArena`] and indexed by borrowed `&[Value]` rows (no per-key
/// allocation at any arity).  The larger side probes the index through a
/// reusable scratch key; with `par` workers the probe rows are partitioned
/// into contiguous ranges, each worker emits into its own flat buffer, and
/// the buffers are concatenated in range order — byte-identical to the
/// sequential emission at every worker count.  Output tuples need no dedup
/// map: distinct operand pairs always produce distinct merged tuples.
/// Weight multiplication saturates instead of wrapping, so adversarial
/// worst-case instances degrade gracefully rather than overflow-panicking.
pub fn hash_join_step_with(
    acc: &JoinResult,
    rel: &Relation,
    par: Parallelism,
) -> Result<JoinResult> {
    let shared = intersect_attrs(&acc.attrs, rel.attrs());
    let (new_attrs, plan) = merge_plan(&acc.attrs, rel.attrs());
    let acc_shared_pos = project_positions(&acc.attrs, &shared)?;
    let rel_shared_pos = project_positions(rel.attrs(), &shared)?;
    let plan = &plan[..];

    let (out_values, out_weights) = if rel.distinct_count() <= acc.distinct_count() {
        // Build on the relation, probe with the accumulated result.
        let rel_rows: Vec<(&[Value], u64)> = rel.iter().map(|(t, f)| (t.as_slice(), f)).collect();
        let mut arena = KeyArena::with_capacity(shared.len(), rel_rows.len());
        for &(t, _) in &rel_rows {
            arena.push_projected(t, &rel_shared_pos);
        }
        let mut index: FxHashMap<&[Value], Vec<(&[Value], u64)>> = FxHashMap::default();
        for (i, &row) in rel_rows.iter().enumerate() {
            index.entry(arena.row(i)).or_default().push(row);
        }
        let probe = |range: std::ops::Range<usize>| {
            let mut values: Vec<Value> = Vec::new();
            let mut weights: Vec<u128> = Vec::new();
            let mut scratch: Vec<Value> = Vec::with_capacity(shared.len());
            for i in range {
                let t = acc.row(i);
                project_into(t, &acc_shared_pos, &mut scratch);
                if let Some(matches) = index.get(scratch.as_slice()) {
                    for &(rt, rf) in matches {
                        merge_row(plan, t, rt, &mut values);
                        weights.push(acc.weights[i].saturating_mul(rf as u128));
                    }
                }
            }
            (values, weights)
        };
        merge_parts(exec::par_map_ranges(
            par,
            acc.distinct_count(),
            MIN_PAR_PROBE,
            probe,
        ))
    } else {
        // Build on the accumulated result, probe with the relation.
        let mut arena = KeyArena::with_capacity(shared.len(), acc.distinct_count());
        for i in 0..acc.distinct_count() {
            arena.push_projected(acc.row(i), &acc_shared_pos);
        }
        let mut index: FxHashMap<&[Value], Vec<(&[Value], u128)>> = FxHashMap::default();
        for i in 0..acc.distinct_count() {
            index
                .entry(arena.row(i))
                .or_default()
                .push((acc.row(i), acc.weights[i]));
        }
        let rel_rows: Vec<(&[Value], u64)> = rel.iter().map(|(t, f)| (t.as_slice(), f)).collect();
        let probe = |range: std::ops::Range<usize>| {
            let mut values: Vec<Value> = Vec::new();
            let mut weights: Vec<u128> = Vec::new();
            let mut scratch: Vec<Value> = Vec::with_capacity(shared.len());
            for &(rt, rf) in &rel_rows[range] {
                project_into(rt, &rel_shared_pos, &mut scratch);
                if let Some(matches) = index.get(scratch.as_slice()) {
                    for &(t, w) in matches {
                        merge_row(plan, t, rt, &mut values);
                        weights.push(w.saturating_mul(rf as u128));
                    }
                }
            }
            (values, weights)
        };
        merge_parts(exec::par_map_ranges(
            par,
            rel_rows.len(),
            MIN_PAR_PROBE,
            probe,
        ))
    };

    Ok(JoinResult {
        attrs: new_attrs,
        values: out_values,
        weights: out_weights,
    })
}

/// The engine's greedy fold order for joining the relation subset `rels`:
/// start from the smallest relation, then repeatedly pick, among the
/// remaining relations that **share an attribute** with the accumulated
/// attribute set, the one with the fewest distinct tuples — falling back to
/// the smallest remaining relation only when the subset's join graph is
/// genuinely disconnected (where a cross product is unavoidable).  Ties
/// break on the lower relation index, so the order is deterministic.
///
/// This is exactly the order [`join_subset`] folds in; it is exposed so the
/// cost-based planner ([`crate::plan::JoinPlan`]) can record the top-level
/// join order it shares with the engine.  `rels` is assumed valid (checked
/// by the callers).
pub fn fold_order(instance: &Instance, rels: &[usize]) -> Vec<usize> {
    let size_of = |ri: usize| instance.relation(ri).distinct_count();
    let mut remaining: Vec<usize> = rels.to_vec();
    let mut order = Vec::with_capacity(rels.len());
    let Some(start) = remaining
        .iter()
        .enumerate()
        .min_by_key(|&(_, &ri)| (size_of(ri), ri))
        .map(|(pos, _)| pos)
    else {
        return order;
    };
    let first = remaining.remove(start);
    order.push(first);
    let mut acc_attrs: Vec<AttrId> = instance.relation(first).attrs().to_vec();
    while !remaining.is_empty() {
        // Prefer the smallest relation connected to the accumulator; the
        // (ri) tie-break keeps the order — and thus saturation behaviour —
        // deterministic.
        let pick = remaining
            .iter()
            .enumerate()
            .filter(|&(_, &ri)| {
                !intersect_attrs(&acc_attrs, instance.relation(ri).attrs()).is_empty()
            })
            .min_by_key(|&(_, &ri)| (size_of(ri), ri))
            .or_else(|| {
                remaining
                    .iter()
                    .enumerate()
                    .min_by_key(|&(_, &ri)| (size_of(ri), ri))
            })
            .map(|(pos, _)| pos)
            .expect("non-empty remaining set");
        let ri = remaining.remove(pick);
        acc_attrs = union_attrs(&acc_attrs, instance.relation(ri).attrs());
        order.push(ri);
    }
    order
}

/// Joins the subset `rels` of the instance's relations (a sub-join of the
/// query).  `rels` must be non-empty, sorted and in range.
///
/// Join-order selection follows [`fold_order`]: smallest-first, preferring
/// relations connected to the accumulated result (size alone could join two
/// small but attribute-disjoint relations first and materialise a cross
/// product a connected order never builds).  Each binary step additionally
/// builds its hash index on the smaller operand.  The result is independent
/// of the fold order (weights saturate identically only in astronomically
/// large joins).
pub fn join_subset(query: &JoinQuery, instance: &Instance, rels: &[usize]) -> Result<JoinResult> {
    join_subset_impl(query, instance, rels, Parallelism::default())
}

/// Shared implementation behind [`join_subset`] and
/// [`crate::ExecContext::join_subset`].
pub(crate) fn join_subset_impl(
    query: &JoinQuery,
    instance: &Instance,
    rels: &[usize],
    par: Parallelism,
) -> Result<JoinResult> {
    query.check_subset(rels)?;
    if rels.is_empty() {
        return Err(RelationalError::InvalidRelationSubset(
            "cannot join an empty set of relations; the empty join is handled by callers"
                .to_string(),
        ));
    }
    if instance.num_relations() != query.num_relations() {
        return Err(RelationalError::RelationCountMismatch {
            expected: query.num_relations(),
            got: instance.num_relations(),
        });
    }

    let order = fold_order(instance, rels);
    let mut acc = JoinResult::from_relation(instance.relation(order[0]));
    for &ri in &order[1..] {
        // Even when the accumulated result is already empty we keep folding
        // in the remaining relations so that the result's attribute list
        // always covers the union of the requested relations' attributes
        // (downstream evaluators rely on it).
        acc = hash_join_step_with(&acc, instance.relation(ri), par)?;
    }
    Ok(acc)
}

/// Joins all relations of the query (the paper's `Join_I`).
pub fn join(query: &JoinQuery, instance: &Instance) -> Result<JoinResult> {
    join_impl(query, instance, Parallelism::default())
}

/// Shared implementation behind [`join`] and [`crate::ExecContext::join`].
pub(crate) fn join_impl(
    query: &JoinQuery,
    instance: &Instance,
    par: Parallelism,
) -> Result<JoinResult> {
    let all: Vec<usize> = (0..query.num_relations()).collect();
    join_subset_impl(query, instance, &all, par)
}

/// The join size `count(I) = Σ_t Join_I(t)`.
pub fn join_size(query: &JoinQuery, instance: &Instance) -> Result<u128> {
    Ok(join(query, instance)?.total())
}

/// Shared implementation behind [`join_size`] and
/// [`crate::ExecContext::join_size`].
pub(crate) fn join_size_impl(
    query: &JoinQuery,
    instance: &Instance,
    par: Parallelism,
) -> Result<u128> {
    Ok(join_impl(query, instance, par)?.total())
}

/// Joins the relation subset `rels` and groups the result by `group_by`,
/// returning total weight per group.  For `rels = ∅` the result is the single
/// empty group with weight 1 (the empty product), matching the convention
/// `T_∅(I) = 1` used by residual sensitivity.
pub fn grouped_join_size(
    query: &JoinQuery,
    instance: &Instance,
    rels: &[usize],
    group_by: &[AttrId],
) -> Result<BTreeMap<Vec<Value>, u128>> {
    grouped_join_size_impl(query, instance, rels, group_by, Parallelism::default())
}

/// Shared implementation behind [`grouped_join_size`] and
/// [`crate::ExecContext::grouped_join_size`].
pub(crate) fn grouped_join_size_impl(
    query: &JoinQuery,
    instance: &Instance,
    rels: &[usize],
    group_by: &[AttrId],
    par: Parallelism,
) -> Result<BTreeMap<Vec<Value>, u128>> {
    if rels.is_empty() {
        let mut out = BTreeMap::new();
        out.insert(Vec::new(), 1u128);
        return Ok(out);
    }
    join_subset_impl(query, instance, rels, par)?.group_by(group_by)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::AttrId;
    use crate::relation::Relation;

    fn ids(v: &[u16]) -> Vec<AttrId> {
        v.iter().map(|&x| AttrId(x)).collect()
    }

    fn two_table() -> (JoinQuery, Instance) {
        let q = JoinQuery::two_table(8, 8, 8);
        // R1(A,B): (0,0):1 (1,0):2 (2,1):1
        let r1 = Relation::from_tuples(
            ids(&[0, 1]),
            vec![(vec![0, 0], 1), (vec![1, 0], 2), (vec![2, 1], 1)],
        )
        .unwrap();
        // R2(B,C): (0,0):1 (0,1):1 (1,3):3 (5,5):7
        let r2 = Relation::from_tuples(
            ids(&[1, 2]),
            vec![
                (vec![0, 0], 1),
                (vec![0, 1], 1),
                (vec![1, 3], 3),
                (vec![5, 5], 7),
            ],
        )
        .unwrap();
        (q, Instance::new(vec![r1, r2]))
    }

    #[test]
    fn two_table_join_matches_manual_computation() {
        let (q, inst) = two_table();
        let result = join(&q, &inst).unwrap();
        assert_eq!(result.attrs(), ids(&[0, 1, 2]).as_slice());
        // B=0 matches: R1 weight (0,0)->1, (1,0)->2; R2 weight (0,0)->1, (0,1)->1
        // B=1 matches: R1 (2,1)->1; R2 (1,3)->3
        // B=5 matches nothing in R1.
        assert_eq!(result.weight(&[0, 0, 0]), 1);
        assert_eq!(result.weight(&[0, 0, 1]), 1);
        assert_eq!(result.weight(&[1, 0, 0]), 2);
        assert_eq!(result.weight(&[1, 0, 1]), 2);
        assert_eq!(result.weight(&[2, 1, 3]), 3);
        assert_eq!(result.weight(&[2, 1, 0]), 0);
        assert_eq!(result.total(), 1 + 1 + 2 + 2 + 3);
        assert_eq!(join_size(&q, &inst).unwrap(), 9);
    }

    #[test]
    fn iteration_is_sorted_on_emit() {
        let (q, inst) = two_table();
        let result = join(&q, &inst).unwrap();
        let tuples: Vec<Vec<Value>> = result.iter().map(|(t, _)| t.to_vec()).collect();
        let mut sorted = tuples.clone();
        sorted.sort();
        assert_eq!(tuples, sorted);
        assert_eq!(tuples.len(), result.distinct_count());
        assert_eq!(result.iter_unordered().count(), tuples.len());
    }

    #[test]
    fn equality_is_order_insensitive() {
        let (q, inst) = two_table();
        let a = join(&q, &inst).unwrap();
        let b = join(&q, &inst).unwrap();
        assert_eq!(a, b);
        let sub = join_subset(&q, &inst, &[0]).unwrap();
        assert_ne!(a, sub);
    }

    #[test]
    fn frequencies_multiply() {
        let q = JoinQuery::two_table(4, 4, 4);
        let r1 = Relation::from_tuples(ids(&[0, 1]), vec![(vec![0, 0], 5)]).unwrap();
        let r2 = Relation::from_tuples(ids(&[1, 2]), vec![(vec![0, 0], 7)]).unwrap();
        let inst = Instance::new(vec![r1, r2]);
        assert_eq!(join_size(&q, &inst).unwrap(), 35);
    }

    #[test]
    fn empty_join_when_no_common_value() {
        let q = JoinQuery::two_table(4, 4, 4);
        let r1 = Relation::from_tuples(ids(&[0, 1]), vec![(vec![0, 0], 1)]).unwrap();
        let r2 = Relation::from_tuples(ids(&[1, 2]), vec![(vec![1, 0], 1)]).unwrap();
        let inst = Instance::new(vec![r1, r2]);
        let result = join(&q, &inst).unwrap();
        assert!(result.is_empty());
        assert_eq!(result.total(), 0);
        // The attribute list still covers the union.
        assert_eq!(result.attrs(), ids(&[0, 1, 2]).as_slice());
    }

    #[test]
    fn path_join_three_relations() {
        let q = JoinQuery::path(3, 4).unwrap();
        let mut inst = Instance::empty_for(&q).unwrap();
        // R1(A0,A1) = {(0,1)}, R2(A1,A2) = {(1,2):2}, R3(A2,A3) = {(2,3), (2,0)}
        inst.relation_mut(0).add_one(vec![0, 1]).unwrap();
        inst.relation_mut(1).add(vec![1, 2], 2).unwrap();
        inst.relation_mut(2).add_one(vec![2, 3]).unwrap();
        inst.relation_mut(2).add_one(vec![2, 0]).unwrap();
        let result = join(&q, &inst).unwrap();
        assert_eq!(result.total(), 4);
        assert_eq!(result.weight(&[0, 1, 2, 3]), 2);
        assert_eq!(result.weight(&[0, 1, 2, 0]), 2);
    }

    #[test]
    fn subjoin_and_grouping() {
        let (q, inst) = two_table();
        // Sub-join of just R1 grouped by B.
        let groups = grouped_join_size(&q, &inst, &[0], &ids(&[1])).unwrap();
        assert_eq!(groups.get(&vec![0]).copied(), Some(3));
        assert_eq!(groups.get(&vec![1]).copied(), Some(1));
        // Empty relation subset: conventionally a single unit group.
        let empty = grouped_join_size(&q, &inst, &[], &[]).unwrap();
        assert_eq!(empty.get(&Vec::new()).copied(), Some(1));
        // Full join grouped by nothing = join size.
        let total = grouped_join_size(&q, &inst, &[0, 1], &[]).unwrap();
        assert_eq!(total.get(&Vec::new()).copied(), Some(9));
    }

    #[test]
    fn max_group_weight_and_projections() {
        let (q, inst) = two_table();
        let result = join(&q, &inst).unwrap();
        // Grouped by B: B=0 contributes 6, B=1 contributes 3.
        assert_eq!(result.max_group_weight(&ids(&[1])).unwrap(), 6);
        let projs = result.distinct_projections(&ids(&[1])).unwrap();
        assert_eq!(projs.len(), 2);
    }

    #[test]
    fn star_join() {
        let q = JoinQuery::star(3, 4).unwrap();
        let mut inst = Instance::empty_for(&q).unwrap();
        // Hub value 2 appears in all three relations.
        inst.relation_mut(0).add(vec![2, 0], 2).unwrap();
        inst.relation_mut(1).add(vec![2, 1], 3).unwrap();
        inst.relation_mut(2).add(vec![2, 3], 1).unwrap();
        // Hub value 1 appears only in two relations.
        inst.relation_mut(0).add(vec![1, 0], 1).unwrap();
        inst.relation_mut(1).add(vec![1, 1], 1).unwrap();
        assert_eq!(join_size(&q, &inst).unwrap(), 6);
    }

    #[test]
    fn cross_product_when_no_shared_attributes() {
        // Path of length 3, joining only the two end relations: no shared
        // attributes, so the sub-join is a cross product.
        let q = JoinQuery::path(3, 4).unwrap();
        let mut inst = Instance::empty_for(&q).unwrap();
        inst.relation_mut(0).add(vec![0, 1], 2).unwrap();
        inst.relation_mut(0).add(vec![1, 1], 1).unwrap();
        inst.relation_mut(2).add(vec![2, 3], 5).unwrap();
        let result = join_subset(&q, &inst, &[0, 2]).unwrap();
        assert_eq!(result.total(), (2 + 1) * 5);
        assert_eq!(result.distinct_count(), 2);
    }

    #[test]
    fn weights_saturate_instead_of_overflowing() {
        let q = JoinQuery::two_table(4, 4, 4);
        let r1 = Relation::from_tuples(ids(&[0, 1]), vec![(vec![0, 0], u64::MAX)]).unwrap();
        let r2 = Relation::from_tuples(
            ids(&[1, 2]),
            vec![(vec![0, 0], u64::MAX), (vec![0, 1], u64::MAX)],
        )
        .unwrap();
        let inst = Instance::new(vec![r1, r2]);
        let result = join(&q, &inst).unwrap();
        // Each merged tuple's weight is exactly (2^64-1)² (fits in u128, no
        // per-entry saturation), and the two entries' sum exceeds u128::MAX,
        // so the total must saturate rather than wrap or panic.
        let per_entry = (u64::MAX as u128) * (u64::MAX as u128);
        assert_eq!(result.weight(&[0, 0, 0]), per_entry);
        assert_eq!(result.weight(&[0, 0, 1]), per_entry);
        assert_eq!(result.total(), u128::MAX);
    }

    #[test]
    fn fold_order_prefers_connected_relations() {
        // Path R0(A0,A1) ⋈ R1(A1,A2) ⋈ R2(A2,A3) with tiny end relations and
        // a large middle: a purely size-sorted order would join the
        // attribute-disjoint ends first, materialising an s² cross product.
        // The connected order keeps every intermediate at most linear, which
        // this test bounds indirectly by completing instantly; correctness
        // is cross-checked against the naive engine.
        let q = JoinQuery::path(3, 1024).unwrap();
        let mut inst = Instance::empty_for(&q).unwrap();
        let s = 400u64;
        for v in 0..s {
            inst.relation_mut(0).add(vec![v, v], 1).unwrap();
            inst.relation_mut(2).add(vec![v, v], 1).unwrap();
        }
        for v in 0..(2 * s) {
            inst.relation_mut(1).add(vec![v % s, v % s], 1).unwrap();
        }
        let fast = join(&q, &inst).unwrap();
        let naive = crate::naive::join_naive(&q, &inst).unwrap();
        assert_eq!(fast.total(), naive.total());
        assert_eq!(fast.distinct_count(), naive.distinct_count());
    }

    #[test]
    fn parallel_probe_is_byte_identical_to_sequential() {
        // Large enough to clear MIN_PAR_PROBE so multi-thread runs actually
        // partition the probe loop.
        let q = JoinQuery::two_table(64, 4096, 64);
        let mut inst = Instance::empty_for(&q).unwrap();
        for i in 0..3000u64 {
            inst.relation_mut(0).add(vec![i % 37, i % 4096], 1).unwrap();
            inst.relation_mut(1)
                .add(vec![(i * 7) % 4096, i % 29], 1 + i % 3)
                .unwrap();
        }
        let seq = join_impl(&q, &inst, Parallelism::SEQUENTIAL).unwrap();
        for threads in [2usize, 4, 7] {
            let par = join_impl(&q, &inst, Parallelism::threads(threads)).unwrap();
            assert_eq!(par.attrs(), seq.attrs());
            // Construction order (not just set equality) must match exactly.
            let seq_rows: Vec<(&[Value], u128)> = seq.iter_unordered().collect();
            let par_rows: Vec<(&[Value], u128)> = par.iter_unordered().collect();
            assert_eq!(par_rows, seq_rows, "threads = {threads}");
        }
    }

    #[test]
    fn invalid_subset_rejected() {
        let (q, inst) = two_table();
        assert!(join_subset(&q, &inst, &[]).is_err());
        assert!(join_subset(&q, &inst, &[3]).is_err());
    }

    #[test]
    fn from_parts_roundtrips() {
        let mut tuples = BTreeMap::new();
        tuples.insert(vec![1u64, 2], 5u128);
        tuples.insert(vec![3, 4], 7);
        let result = JoinResult::from_parts(ids(&[0, 2]), tuples);
        assert_eq!(result.distinct_count(), 2);
        assert_eq!(result.total(), 12);
        assert_eq!(result.weight(&[3, 4]), 7);
        assert_eq!(result.weight(&[9, 9]), 0);
    }

    #[test]
    fn matches_naive_reference_on_fixed_instances() {
        let (q, inst) = two_table();
        for rels in [&[0usize][..], &[1], &[0, 1]] {
            let fast = join_subset(&q, &inst, rels).unwrap();
            let naive = crate::naive::join_subset_naive(&q, &inst, rels).unwrap();
            assert_eq!(fast.attrs(), naive.attrs());
            let fast_tuples: Vec<(Vec<Value>, u128)> =
                fast.iter().map(|(t, w)| (t.to_vec(), w)).collect();
            let naive_tuples: Vec<(Vec<Value>, u128)> =
                naive.iter().map(|(t, w)| (t.clone(), w)).collect();
            assert_eq!(fast_tuples, naive_tuples);
        }
    }
}
