//! Multi-way natural join evaluation.
//!
//! The join result of an instance `I` over a query `H` is the function
//! `Join_I : dom(x) → Z≥0` of Section 1.1, represented sparsely (only tuples
//! with non-zero weight are stored).  Weights are products of the input
//! frequencies of the participating tuples.
//!
//! The same machinery evaluates *sub-joins* (joins of a subset `E` of the
//! relations), which the sensitivity computations of Section 3.3 need for the
//! maximum boundary queries `T_E`.

use std::collections::BTreeMap;

use crate::attr::AttrId;
use crate::error::RelationalError;
use crate::hypergraph::JoinQuery;
use crate::instance::Instance;
use crate::tuple::{intersect_attrs, project_positions, project_with_positions, union_attrs, Value};
use crate::Result;

/// A sparse join result: tuples over `attrs` with positive integer weights.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinResult {
    attrs: Vec<AttrId>,
    tuples: BTreeMap<Vec<Value>, u128>,
}

impl JoinResult {
    /// The attribute list the result tuples range over (sorted).
    pub fn attrs(&self) -> &[AttrId] {
        &self.attrs
    }

    /// Total weight `Σ_t Join(t)` — the join size when the result covers all
    /// relations of the query.
    pub fn total(&self) -> u128 {
        self.tuples.values().sum()
    }

    /// Number of distinct result tuples.
    pub fn distinct_count(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the result is empty.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Iterates over `(tuple, weight)` pairs in deterministic order.
    pub fn iter(&self) -> impl Iterator<Item = (&Vec<Value>, u128)> {
        self.tuples.iter().map(|(t, &w)| (t, w))
    }

    /// Weight of a specific tuple (zero if absent).
    pub fn weight(&self, tuple: &[Value]) -> u128 {
        self.tuples.get(tuple).copied().unwrap_or(0)
    }

    /// Groups the result by a subset of its attributes, summing weights.
    /// For an empty `group_by` the map has one entry (the empty key) holding
    /// the total weight.
    pub fn group_by(&self, group_by: &[AttrId]) -> Result<BTreeMap<Vec<Value>, u128>> {
        let positions = project_positions(&self.attrs, group_by)?;
        let mut out: BTreeMap<Vec<Value>, u128> = BTreeMap::new();
        for (t, w) in self.iter() {
            let key = project_with_positions(t, &positions);
            *out.entry(key).or_insert(0) += w;
        }
        if group_by.is_empty() && out.is_empty() {
            out.insert(Vec::new(), 0);
        }
        Ok(out)
    }

    /// Maximum group weight over `group_by` (zero for an empty result).
    pub fn max_group_weight(&self, group_by: &[AttrId]) -> Result<u128> {
        Ok(self
            .group_by(group_by)?
            .values()
            .copied()
            .max()
            .unwrap_or(0))
    }

    /// Returns the set of distinct projections of result tuples onto `onto`.
    pub fn distinct_projections(
        &self,
        onto: &[AttrId],
    ) -> Result<std::collections::BTreeSet<Vec<Value>>> {
        let positions = project_positions(&self.attrs, onto)?;
        Ok(self
            .iter()
            .map(|(t, _)| project_with_positions(t, &positions))
            .collect())
    }

    /// Builds a result directly from parts (used by tests and simulators).
    pub fn from_parts(attrs: Vec<AttrId>, tuples: BTreeMap<Vec<Value>, u128>) -> Self {
        JoinResult { attrs, tuples }
    }
}

/// Joins the subset `rels` of the instance's relations (a sub-join of the
/// query).  `rels` must be non-empty, sorted and in range.
pub fn join_subset(query: &JoinQuery, instance: &Instance, rels: &[usize]) -> Result<JoinResult> {
    query.check_subset(rels)?;
    if rels.is_empty() {
        return Err(RelationalError::InvalidRelationSubset(
            "cannot join an empty set of relations; the empty join is handled by callers"
                .to_string(),
        ));
    }
    if instance.num_relations() != query.num_relations() {
        return Err(RelationalError::RelationCountMismatch {
            expected: query.num_relations(),
            got: instance.num_relations(),
        });
    }

    // Start from the first relation.
    let first = instance.relation(rels[0]);
    let mut acc_attrs: Vec<AttrId> = first.attrs().to_vec();
    let mut acc: BTreeMap<Vec<Value>, u128> = first
        .iter()
        .map(|(t, f)| (t.clone(), f as u128))
        .collect();

    for &ri in &rels[1..] {
        let rel = instance.relation(ri);
        let rel_attrs = rel.attrs().to_vec();
        let shared = intersect_attrs(&acc_attrs, &rel_attrs);
        let new_attrs = union_attrs(&acc_attrs, &rel_attrs);

        // Index the relation's tuples by their projection onto the shared attributes.
        let rel_shared_pos = project_positions(&rel_attrs, &shared)?;
        let mut index: BTreeMap<Vec<Value>, Vec<(&Vec<Value>, u64)>> = BTreeMap::new();
        for (t, f) in rel.iter() {
            index
                .entry(project_with_positions(t, &rel_shared_pos))
                .or_default()
                .push((t, f));
        }

        let acc_shared_pos = project_positions(&acc_attrs, &shared)?;
        // Positions to assemble the merged tuple: for each attribute of
        // new_attrs, where to read it from (left accumulated tuple or right
        // relation tuple).
        enum Side {
            Left(usize),
            Right(usize),
        }
        let merge_plan: Vec<Side> = new_attrs
            .iter()
            .map(|a| match acc_attrs.binary_search(a) {
                Ok(p) => Side::Left(p),
                Err(_) => Side::Right(
                    rel_attrs
                        .binary_search(a)
                        .expect("attribute must originate from one operand"),
                ),
            })
            .collect();

        let mut next: BTreeMap<Vec<Value>, u128> = BTreeMap::new();
        for (t, w) in &acc {
            let key = project_with_positions(t, &acc_shared_pos);
            if let Some(matches) = index.get(&key) {
                for (rt, rf) in matches {
                    let merged: Vec<Value> = merge_plan
                        .iter()
                        .map(|side| match side {
                            Side::Left(p) => t[*p],
                            Side::Right(p) => rt[*p],
                        })
                        .collect();
                    let contribution = w.saturating_mul(*rf as u128);
                    *next.entry(merged).or_insert(0) += contribution;
                }
            }
        }
        acc_attrs = new_attrs;
        acc = next;
        // Note: even when the accumulated result is already empty we keep
        // folding in the remaining relations so that the result's attribute
        // list always covers the union of the requested relations' attributes
        // (downstream evaluators rely on it).
    }

    Ok(JoinResult {
        attrs: acc_attrs,
        tuples: acc,
    })
}

/// Joins all relations of the query (the paper's `Join_I`).
pub fn join(query: &JoinQuery, instance: &Instance) -> Result<JoinResult> {
    let all: Vec<usize> = (0..query.num_relations()).collect();
    join_subset(query, instance, &all)
}

/// The join size `count(I) = Σ_t Join_I(t)`.
pub fn join_size(query: &JoinQuery, instance: &Instance) -> Result<u128> {
    Ok(join(query, instance)?.total())
}

/// Joins the relation subset `rels` and groups the result by `group_by`,
/// returning total weight per group.  For `rels = ∅` the result is the single
/// empty group with weight 1 (the empty product), matching the convention
/// `T_∅(I) = 1` used by residual sensitivity.
pub fn grouped_join_size(
    query: &JoinQuery,
    instance: &Instance,
    rels: &[usize],
    group_by: &[AttrId],
) -> Result<BTreeMap<Vec<Value>, u128>> {
    if rels.is_empty() {
        let mut out = BTreeMap::new();
        out.insert(Vec::new(), 1u128);
        return Ok(out);
    }
    join_subset(query, instance, rels)?.group_by(group_by)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::AttrId;
    use crate::relation::Relation;

    fn ids(v: &[u16]) -> Vec<AttrId> {
        v.iter().map(|&x| AttrId(x)).collect()
    }

    fn two_table() -> (JoinQuery, Instance) {
        let q = JoinQuery::two_table(8, 8, 8);
        // R1(A,B): (0,0):1 (1,0):2 (2,1):1
        let r1 = Relation::from_tuples(
            ids(&[0, 1]),
            vec![(vec![0, 0], 1), (vec![1, 0], 2), (vec![2, 1], 1)],
        )
        .unwrap();
        // R2(B,C): (0,0):1 (0,1):1 (1,3):3 (5,5):7
        let r2 = Relation::from_tuples(
            ids(&[1, 2]),
            vec![
                (vec![0, 0], 1),
                (vec![0, 1], 1),
                (vec![1, 3], 3),
                (vec![5, 5], 7),
            ],
        )
        .unwrap();
        (q, Instance::new(vec![r1, r2]))
    }

    #[test]
    fn two_table_join_matches_manual_computation() {
        let (q, inst) = two_table();
        let result = join(&q, &inst).unwrap();
        assert_eq!(result.attrs(), ids(&[0, 1, 2]).as_slice());
        // B=0 matches: R1 weight (0,0)->1, (1,0)->2; R2 weight (0,0)->1, (0,1)->1
        // B=1 matches: R1 (2,1)->1; R2 (1,3)->3
        // B=5 matches nothing in R1.
        assert_eq!(result.weight(&[0, 0, 0]), 1);
        assert_eq!(result.weight(&[0, 0, 1]), 1);
        assert_eq!(result.weight(&[1, 0, 0]), 2);
        assert_eq!(result.weight(&[1, 0, 1]), 2);
        assert_eq!(result.weight(&[2, 1, 3]), 3);
        assert_eq!(result.weight(&[2, 1, 0]), 0);
        assert_eq!(result.total(), 1 + 1 + 2 + 2 + 3);
        assert_eq!(join_size(&q, &inst).unwrap(), 9);
    }

    #[test]
    fn frequencies_multiply() {
        let q = JoinQuery::two_table(4, 4, 4);
        let r1 = Relation::from_tuples(ids(&[0, 1]), vec![(vec![0, 0], 5)]).unwrap();
        let r2 = Relation::from_tuples(ids(&[1, 2]), vec![(vec![0, 0], 7)]).unwrap();
        let inst = Instance::new(vec![r1, r2]);
        assert_eq!(join_size(&q, &inst).unwrap(), 35);
    }

    #[test]
    fn empty_join_when_no_common_value() {
        let q = JoinQuery::two_table(4, 4, 4);
        let r1 = Relation::from_tuples(ids(&[0, 1]), vec![(vec![0, 0], 1)]).unwrap();
        let r2 = Relation::from_tuples(ids(&[1, 2]), vec![(vec![1, 0], 1)]).unwrap();
        let inst = Instance::new(vec![r1, r2]);
        let result = join(&q, &inst).unwrap();
        assert!(result.is_empty());
        assert_eq!(result.total(), 0);
    }

    #[test]
    fn path_join_three_relations() {
        let q = JoinQuery::path(3, 4).unwrap();
        let mut inst = Instance::empty_for(&q).unwrap();
        // R1(A0,A1) = {(0,1)}, R2(A1,A2) = {(1,2):2}, R3(A2,A3) = {(2,3), (2,0)}
        inst.relation_mut(0).add_one(vec![0, 1]).unwrap();
        inst.relation_mut(1).add(vec![1, 2], 2).unwrap();
        inst.relation_mut(2).add_one(vec![2, 3]).unwrap();
        inst.relation_mut(2).add_one(vec![2, 0]).unwrap();
        let result = join(&q, &inst).unwrap();
        assert_eq!(result.total(), 4);
        assert_eq!(result.weight(&[0, 1, 2, 3]), 2);
        assert_eq!(result.weight(&[0, 1, 2, 0]), 2);
    }

    #[test]
    fn subjoin_and_grouping() {
        let (q, inst) = two_table();
        // Sub-join of just R1 grouped by B.
        let groups = grouped_join_size(&q, &inst, &[0], &ids(&[1])).unwrap();
        assert_eq!(groups.get(&vec![0]).copied(), Some(3));
        assert_eq!(groups.get(&vec![1]).copied(), Some(1));
        // Empty relation subset: conventionally a single unit group.
        let empty = grouped_join_size(&q, &inst, &[], &[]).unwrap();
        assert_eq!(empty.get(&Vec::new()).copied(), Some(1));
        // Full join grouped by nothing = join size.
        let total = grouped_join_size(&q, &inst, &[0, 1], &[]).unwrap();
        assert_eq!(total.get(&Vec::new()).copied(), Some(9));
    }

    #[test]
    fn max_group_weight_and_projections() {
        let (q, inst) = two_table();
        let result = join(&q, &inst).unwrap();
        // Grouped by B: B=0 contributes 6, B=1 contributes 3.
        assert_eq!(result.max_group_weight(&ids(&[1])).unwrap(), 6);
        let projs = result.distinct_projections(&ids(&[1])).unwrap();
        assert_eq!(projs.len(), 2);
    }

    #[test]
    fn star_join() {
        let q = JoinQuery::star(3, 4).unwrap();
        let mut inst = Instance::empty_for(&q).unwrap();
        // Hub value 2 appears in all three relations.
        inst.relation_mut(0).add(vec![2, 0], 2).unwrap();
        inst.relation_mut(1).add(vec![2, 1], 3).unwrap();
        inst.relation_mut(2).add(vec![2, 3], 1).unwrap();
        // Hub value 1 appears only in two relations.
        inst.relation_mut(0).add(vec![1, 0], 1).unwrap();
        inst.relation_mut(1).add(vec![1, 1], 1).unwrap();
        assert_eq!(join_size(&q, &inst).unwrap(), 6);
    }

    #[test]
    fn invalid_subset_rejected() {
        let (q, inst) = two_table();
        assert!(join_subset(&q, &inst, &[]).is_err());
        assert!(join_subset(&q, &inst, &[3]).is_err());
    }
}
