//! Multi-way natural join evaluation (hash-join engine).
//!
//! The join result of an instance `I` over a query `H` is the function
//! `Join_I : dom(x) → Z≥0` of Section 1.1, represented sparsely (only tuples
//! with non-zero weight are stored).  Weights are products of the input
//! frequencies of the participating tuples.
//!
//! The same machinery evaluates *sub-joins* (joins of a subset `E` of the
//! relations), which the sensitivity computations of Section 3.3 need for the
//! maximum boundary queries `T_E`.
//!
//! ### Engine design
//!
//! A [`JoinResult`] stores its tuples **columnar**: one flat row-major
//! `Vec<Value>` (all tuples of a result share the arity of its attribute
//! list) plus a parallel weight vector, so emitting a result tuple is a
//! plain `extend`/`push` with no per-tuple allocation at any arity.  No
//! dedup map is needed while folding: distinct `(left, right)` operand pairs
//! always merge to distinct tuples (each operand tuple is a projection of
//! the merged tuple), so duplicates are structurally impossible.
//!
//! Hash indexes enter only where they pay: each binary step indexes the
//! *smaller* operand by its shared-attribute projection.  The index is a
//! hand-rolled chained hash table (`ProbeIndex`: bucket heads plus
//! next-links over rows frozen in a [`KeyArena`]) rather than a std
//! `HashMap` — std's map cannot accept a precomputed hash on stable Rust,
//! and the batched probe below depends on separating "hash a batch of keys"
//! from "walk the buckets".  The build pass allocates nothing per key at
//! any arity, and chains are linked so traversal yields matches in
//! ascending build-row order — exactly the emission order of the previous
//! map-of-vectors engine.  [`join_subset`] additionally folds the relations
//! in ascending size order.
//!
//! ### Batched probe
//!
//! The probe side is processed in fixed-size batches
//! ([`ProbeMode::Batched`], the default): pass one projects a batch of
//! probe keys into a reusable arena and hashes them all, pass two walks the
//! index chains and emits merges.  Splitting the loop this way amortises
//! projection dispatch and bounds checks across the batch and keeps the
//! hash computation out of the dependent load chain of the bucket walk.
//! [`ProbeMode::Scalar`] (project + hash + probe one row at a time) is kept
//! as the bench baseline; both modes visit identical (probe row, build row)
//! pairs in identical order, so outputs are byte-identical.
//!
//! ### Dictionary-encoded probe keys
//!
//! For instances whose attribute values are *wide* (sparse identifiers from
//! huge domains), [`join_dict`] / [`join_encoded`] evaluate the fold over a
//! dictionary-encoded instance ([`crate::tuple::AttrDictionary`]): values
//! become dense codes, and whenever a step's shared-attribute code widths
//! sum to ≤ 64 bits the probe key is packed into a **single `u64`**
//! ([`crate::tuple::KeyPacker`]), making key hash and equality one integer
//! operation each.  Codes are assigned in value order, so the encoded fold
//! emits rows in exactly the raw fold's order and the decode-on-emit step
//! ([`JoinResult::map_values`]) reproduces raw output byte for byte.
//!
//! ### Parallel probe
//!
//! The probe loop of each binary step is partitioned into contiguous
//! probe-row morsels and driven through the work-stealing worker pool of
//! [`crate::exec`] (see [`hash_join_step_with`]).  Each worker probes the
//! shared frozen index and emits into its own flat buffer; the per-morsel
//! buffers are concatenated **in morsel order**, which reproduces the
//! sequential emission order byte for byte at every worker count no matter
//! which worker claimed which morsel.  The plain entry points ([`join`],
//! [`join_size`], …) use [`Parallelism::default`]; [`crate::ExecContext`]
//! methods take the knob from the context, and `Parallelism::SEQUENTIAL`
//! is exactly the pre-parallel code path.
//!
//! ### Aggregate fold (count-only evaluation)
//!
//! The sensitivity layer consumes only *aggregates* of most sub-joins —
//! join sizes and per-boundary-key maximum group weights — so
//! [`hash_join_step_agg`] evaluates a binary step **without materialising
//! the result**: every hash-probe match is folded directly into a grouped
//! accumulator ([`AggSummary`]: max group weight / total weight / distinct
//! count, all saturating at `u128::MAX`), the group key projected straight
//! off the two operand rows.  A blocked Bloom filter built from the
//! probe index's own key hashes additionally prunes probe rows whose key
//! the build side cannot contain before any chain is walked.  Build-side
//! selection, match order and weight arithmetic are shared with the
//! materializing step, and saturating addition is order-free, so the
//! summary equals [`AggSummary::from_join_result`] over the materialised
//! step at every thread count — the lattice planner (see
//! [`crate::plan::AggMode`]) is free to pick either evaluation per mask
//! without observable effect beyond speed and memory.
//!
//! Determinism is preserved by sorting on emit: [`JoinResult::iter`],
//! [`JoinResult::group_by`] and [`JoinResult::distinct_projections`] return
//! sorted views, so downstream seeded algorithms observe exactly the order
//! the previous engine produced.  The original engine is retained in
//! [`crate::naive`] as a cross-check oracle for property tests and
//! benchmarks.

use std::collections::BTreeMap;

use crate::attr::AttrId;
use crate::error::RelationalError;
use crate::exec::{self, Parallelism};
use crate::hash::FxHashMap;
use crate::hypergraph::JoinQuery;
use crate::instance::Instance;
use crate::relation::Relation;
use crate::tuple::{
    intersect_attrs, project_into, project_positions, union_attrs, AttrDictionary, KeyArena,
    KeyPacker, TupleKey, Value,
};
use crate::Result;

/// Probe loops shorter than this stay sequential even when a multi-thread
/// [`Parallelism`] is requested: below it, thread spawn/join overhead
/// outweighs the probe work itself.
const MIN_PAR_PROBE: usize = 1024;

/// Probe rows hashed together before the index is walked (see the module
/// docs' "Batched probe" section).  Small enough that a batch of keys and
/// hashes stays cache-resident, large enough to amortise loop dispatch.
const PROBE_BATCH: usize = 128;

/// Sentinel for "no row" in [`ProbeIndex`] chains.
const EMPTY_SLOT: u32 = u32::MAX;

/// Fx-hashes a projected key slice (self-contained: only [`ProbeIndex`]
/// consumes these hashes, so they need not match `std` slice hashing).
#[inline]
fn hash_key(key: &[Value]) -> u64 {
    use std::hash::Hasher;
    let mut h = crate::hash::FxHasher::default();
    for &v in key {
        h.write_u64(v);
    }
    h.finish()
}

/// Fx-hashes a packed single-word key.
#[inline]
fn hash_word(word: u64) -> u64 {
    use std::hash::Hasher;
    let mut h = crate::hash::FxHasher::default();
    h.write_u64(word);
    h.finish()
}

/// How the hash-probe inner loop consumes probe rows.  Outputs are
/// byte-identical under both modes; only instruction-level behavior differs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ProbeMode {
    /// Project and hash a batch of probe keys, then walk the index for the
    /// whole batch (the engine default — see the module docs).
    #[default]
    Batched,
    /// Project, hash and probe one row at a time (the historical loop
    /// shape, kept as the bench baseline).
    Scalar,
}

/// A frozen chained hash index over the build side's projected keys.
///
/// Bucket heads plus per-row next-links over a [`KeyArena`]; a row's stored
/// hash is checked before its key slice so chain walks touch key memory
/// only on hash agreement.  Rows are linked so that traversal yields
/// matches in **ascending build-row order** — the emission order the
/// map-of-vectors engine produced — which keeps every output byte in place.
struct ProbeIndex {
    arena: KeyArena,
    hashes: Vec<u64>,
    heads: Vec<u32>,
    next: Vec<u32>,
}

impl ProbeIndex {
    /// Indexes a frozen arena.  Capacity is sized to ~0.5 load factor.
    fn build(arena: KeyArena) -> ProbeIndex {
        let n = arena.len();
        assert!(
            n < EMPTY_SLOT as usize,
            "build side exceeds u32 row indexing"
        );
        let cap = (n.max(4) * 2).next_power_of_two();
        let mask = cap - 1;
        let mut hashes = Vec::with_capacity(n);
        for i in 0..n {
            hashes.push(hash_key(arena.row(i)));
        }
        let mut heads = vec![EMPTY_SLOT; cap];
        let mut next = vec![EMPTY_SLOT; n];
        // Insert in reverse row order with head-prepend so each chain walks
        // in ascending build-row order.
        for i in (0..n).rev() {
            let b = (hashes[i] as usize) & mask;
            next[i] = heads[b];
            heads[b] = i as u32;
        }
        ProbeIndex {
            arena,
            hashes,
            heads,
            next,
        }
    }

    /// Calls `on_match` with every build-row index whose key equals `key`,
    /// in ascending row order.  `hash` must be `hash_key(key)`.
    #[inline]
    fn for_each_match(&self, key: &[Value], hash: u64, mut on_match: impl FnMut(usize)) {
        let mask = self.heads.len() - 1;
        let mut cur = self.heads[(hash as usize) & mask];
        while cur != EMPTY_SLOT {
            let i = cur as usize;
            if self.hashes[i] == hash && self.arena.row(i) == key {
                on_match(i);
            }
            cur = self.next[i];
        }
    }
}

/// A relation's rows materialised into one flat row-major buffer (plus a
/// parallel frequency vector), in the relation's sorted iteration order.
///
/// The join steps walk a relation's rows many times (arena/key build, the
/// probe loop, match emission); reading them through the `BTreeMap`'s
/// per-tuple heap allocations makes every access a pointer chase.  One
/// flattening pass up front turns all of those into contiguous loads.
struct FlatRows {
    width: usize,
    values: Vec<Value>,
    freqs: Vec<u64>,
}

impl FlatRows {
    fn from_relation(rel: &Relation) -> FlatRows {
        let width = rel.attrs().len();
        let n = rel.distinct_count();
        let mut values = Vec::with_capacity(n * width);
        let mut freqs = Vec::with_capacity(n);
        for (t, f) in rel.iter() {
            values.extend_from_slice(t);
            freqs.push(f);
        }
        FlatRows {
            width,
            values,
            freqs,
        }
    }

    fn len(&self) -> usize {
        self.freqs.len()
    }

    #[inline]
    fn row(&self, i: usize) -> &[Value] {
        &self.values[i * self.width..(i + 1) * self.width]
    }

    #[inline]
    fn freq(&self, i: usize) -> u64 {
        self.freqs[i]
    }
}

/// The packed-key sibling of [`ProbeIndex`]: build keys are single `u64`
/// words (dictionary codes bit-packed by a [`KeyPacker`]), so key equality
/// is one integer compare and no stored hash is needed.
struct PackedProbeIndex {
    keys: Vec<u64>,
    heads: Vec<u32>,
    next: Vec<u32>,
}

impl PackedProbeIndex {
    fn build(keys: Vec<u64>) -> PackedProbeIndex {
        let n = keys.len();
        assert!(
            n < EMPTY_SLOT as usize,
            "build side exceeds u32 row indexing"
        );
        let cap = (n.max(4) * 2).next_power_of_two();
        let mask = cap - 1;
        let mut heads = vec![EMPTY_SLOT; cap];
        let mut next = vec![EMPTY_SLOT; n];
        for i in (0..n).rev() {
            let b = (hash_word(keys[i]) as usize) & mask;
            next[i] = heads[b];
            heads[b] = i as u32;
        }
        PackedProbeIndex { keys, heads, next }
    }

    /// Calls `on_match` with every build-row index whose packed key equals
    /// `key`, in ascending row order.
    #[inline]
    fn for_each_match(&self, key: u64, mut on_match: impl FnMut(usize)) {
        let mask = self.heads.len() - 1;
        let mut cur = self.heads[(hash_word(key) as usize) & mask];
        while cur != EMPTY_SLOT {
            let i = cur as usize;
            if self.keys[i] == key {
                on_match(i);
            }
            cur = self.next[i];
        }
    }
}

/// A sparse join result: tuples over `attrs` with positive integer weights.
///
/// Stored columnar (flat row-major value buffer + parallel weights); tuples
/// are distinct by construction.  Every public iteration order is sorted on
/// emit (see the module docs).
#[derive(Debug, Clone, Eq)]
pub struct JoinResult {
    attrs: Vec<AttrId>,
    /// Row-major tuple values: row `i` is `values[i*width .. (i+1)*width]`
    /// where `width == attrs.len()`.
    values: Vec<Value>,
    /// Weight of row `i`.
    weights: Vec<u128>,
}

impl PartialEq for JoinResult {
    /// Order-insensitive equality (results are unordered weighted sets).
    fn eq(&self, other: &Self) -> bool {
        if self.attrs != other.attrs || self.weights.len() != other.weights.len() {
            return false;
        }
        let mut a: Vec<(&[Value], u128)> = self.iter_unordered().collect();
        let mut b: Vec<(&[Value], u128)> = other.iter_unordered().collect();
        a.sort_unstable();
        b.sort_unstable();
        a == b
    }
}

impl JoinResult {
    /// The attribute list the result tuples range over (sorted).
    pub fn attrs(&self) -> &[AttrId] {
        &self.attrs
    }

    #[inline]
    pub(crate) fn width(&self) -> usize {
        self.attrs.len()
    }

    /// The tuple of row `i`.
    #[inline]
    pub(crate) fn row(&self, i: usize) -> &[Value] {
        let w = self.width();
        &self.values[i * w..i * w + w]
    }

    /// The weight of row `i`.
    #[inline]
    pub(crate) fn weight_at(&self, i: usize) -> u128 {
        self.weights[i]
    }

    /// Overwrites the weight of row `i` (streaming maintenance only; the
    /// caller keeps weights strictly positive).
    #[inline]
    pub(crate) fn set_weight(&mut self, i: usize, w: u128) {
        debug_assert!(w > 0, "zero-weight rows must be removed, not stored");
        self.weights[i] = w;
    }

    /// Appends a row (streaming maintenance only; the caller guarantees the
    /// tuple is absent and the weight positive).
    #[inline]
    pub(crate) fn push_row(&mut self, tuple: &[Value], w: u128) {
        debug_assert_eq!(tuple.len(), self.width());
        self.values.extend_from_slice(tuple);
        self.weights.push(w);
    }

    /// Removes row `i` by swapping the last row into its place (streaming
    /// maintenance only).  Physical row order is unobservable: every public
    /// iteration sorts on emit and equality is order-insensitive.
    pub(crate) fn swap_remove_row(&mut self, i: usize) {
        let w = self.width();
        let last = self.weights.len() - 1;
        if i != last {
            let (head, tail) = self.values.split_at_mut(last * w);
            head[i * w..i * w + w].copy_from_slice(&tail[..w]);
        }
        self.values.truncate(last * w);
        self.weights.swap_remove(i);
    }

    /// Total weight `Σ_t Join(t)` — the join size when the result covers all
    /// relations of the query.  Saturates at `u128::MAX`.
    pub fn total(&self) -> u128 {
        self.weights
            .iter()
            .fold(0u128, |acc, &w| acc.saturating_add(w))
    }

    /// Number of distinct result tuples.
    pub fn distinct_count(&self) -> usize {
        self.weights.len()
    }

    /// Whether the result is empty.
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Approximate heap footprint in bytes: the flat value buffer plus the
    /// weight vector plus the attribute list.  Used by the cache layer's
    /// byte-level accounting; exactness is not required, only that the
    /// estimate scales with the real allocation.
    pub fn approx_bytes(&self) -> usize {
        self.values.len() * std::mem::size_of::<Value>()
            + self.weights.len() * std::mem::size_of::<u128>()
            + self.attrs.len() * std::mem::size_of::<AttrId>()
    }

    /// Iterates over `(tuple, weight)` pairs in deterministic (sorted tuple)
    /// order.  Sorting happens on emit; use [`JoinResult::iter_unordered`]
    /// when order is irrelevant.
    pub fn iter(&self) -> impl Iterator<Item = (&[Value], u128)> {
        let mut order: Vec<usize> = (0..self.weights.len()).collect();
        order.sort_unstable_by(|&a, &b| self.row(a).cmp(self.row(b)));
        order.into_iter().map(|i| (self.row(i), self.weights[i]))
    }

    /// Iterates over `(tuple, weight)` pairs in arbitrary (construction)
    /// order.
    pub fn iter_unordered(&self) -> impl Iterator<Item = (&[Value], u128)> {
        (0..self.weights.len()).map(|i| (self.row(i), self.weights[i]))
    }

    /// Weight of a specific tuple (zero if absent).
    ///
    /// O(n) scan — intended for tests and spot checks; bulk consumers should
    /// iterate or group instead.
    pub fn weight(&self, tuple: &[Value]) -> u128 {
        self.iter_unordered()
            .find(|&(t, _)| t == tuple)
            .map(|(_, w)| w)
            .unwrap_or(0)
    }

    /// Groups the result by a subset of its attributes, summing weights into
    /// a hash map keyed by the projected [`TupleKey`].  This is the
    /// order-free fast path behind [`JoinResult::group_by`] /
    /// [`JoinResult::max_group_weight`].
    pub fn group_by_key(&self, group_by: &[AttrId]) -> Result<FxHashMap<TupleKey, u128>> {
        let positions = project_positions(&self.attrs, group_by)?;
        let mut out: FxHashMap<TupleKey, u128> = FxHashMap::default();
        let mut scratch: Vec<Value> = Vec::with_capacity(positions.len());
        for (t, w) in self.iter_unordered() {
            project_into(t, &positions, &mut scratch);
            match out.get_mut(scratch.as_slice()) {
                Some(total) => *total = total.saturating_add(w),
                None => {
                    out.insert(TupleKey::from_slice(&scratch), w);
                }
            }
        }
        if group_by.is_empty() && out.is_empty() {
            out.insert(TupleKey::from_slice(&[]), 0);
        }
        Ok(out)
    }

    /// Groups the result by a subset of its attributes, summing weights.
    /// For an empty `group_by` the map has one entry (the empty key) holding
    /// the total weight.  The returned map is sorted (deterministic).
    pub fn group_by(&self, group_by: &[AttrId]) -> Result<BTreeMap<Vec<Value>, u128>> {
        Ok(self
            .group_by_key(group_by)?
            .into_iter()
            .map(|(k, w)| (k.to_vec(), w))
            .collect())
    }

    /// Maximum group weight over `group_by` (zero for an empty result).
    /// Never sorts: a pure fold over the hash groups.
    pub fn max_group_weight(&self, group_by: &[AttrId]) -> Result<u128> {
        Ok(self
            .group_by_key(group_by)?
            .values()
            .copied()
            .max()
            .unwrap_or(0))
    }

    /// Returns the set of distinct projections of result tuples onto `onto`
    /// (sorted, as a `BTreeSet`).
    pub fn distinct_projections(
        &self,
        onto: &[AttrId],
    ) -> Result<std::collections::BTreeSet<Vec<Value>>> {
        let positions = project_positions(&self.attrs, onto)?;
        Ok(self
            .iter_unordered()
            .map(|(t, _)| crate::tuple::project_with_positions(t, &positions))
            .collect())
    }

    /// Builds a result directly from parts (used by tests and simulators).
    /// The map's keys are distinct by construction.
    pub fn from_parts(attrs: Vec<AttrId>, tuples: BTreeMap<Vec<Value>, u128>) -> Self {
        let width = attrs.len();
        let mut values = Vec::with_capacity(tuples.len() * width);
        let mut weights = Vec::with_capacity(tuples.len());
        for (t, w) in tuples {
            debug_assert_eq!(t.len(), width, "tuple arity must match the attribute list");
            values.extend_from_slice(&t);
            weights.push(w);
        }
        JoinResult {
            attrs,
            values,
            weights,
        }
    }

    /// The single-relation join result: the relation's tuples with their
    /// frequencies as weights (distinct by construction).
    pub fn from_relation(relation: &Relation) -> Self {
        let width = relation.arity();
        let mut values = Vec::with_capacity(relation.distinct_count() * width);
        let mut weights = Vec::with_capacity(relation.distinct_count());
        for (t, f) in relation.iter() {
            values.extend_from_slice(t);
            weights.push(f as u128);
        }
        JoinResult {
            attrs: relation.attrs().to_vec(),
            values,
            weights,
        }
    }

    /// Rewrites every stored value through `f(attr, value)`, preserving row
    /// order, attribute order and weights.
    ///
    /// This is the dictionary **decode-on-emit** step: a result computed
    /// over an encoded instance is mapped back to raw values in place, so
    /// no downstream consumer can tell the encoded fold ran.  `f` must be
    /// injective per attribute (dictionary decode is), otherwise distinct
    /// rows could collapse.
    pub fn map_values(mut self, mut f: impl FnMut(AttrId, Value) -> Value) -> JoinResult {
        let width = self.attrs.len();
        if width > 0 {
            for (k, v) in self.values.iter_mut().enumerate() {
                *v = f(self.attrs[k % width], *v);
            }
        }
        self
    }
}

/// The aggregate summary of one sub-join: everything the sensitivity layer
/// reads from a lattice mask — the per-boundary-key maximum group weight
/// (the boundary query `T_E`), the total weight (the join size) and the
/// distinct tuple count — with the result tuples themselves never
/// materialised.
///
/// Produced either by the streaming fold [`hash_join_step_agg`] or by
/// [`AggSummary::from_join_result`] over a materialised result (the oracle
/// semantics); both construction paths yield identical numbers for the same
/// operands.  All weights saturate at `u128::MAX` exactly like the
/// materializing path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AggSummary {
    /// The boundary attribute list the maximum was grouped by (sorted).
    /// Cached summaries are only valid for reads over this exact list.
    pub group_by: Vec<AttrId>,
    /// Maximum per-group total weight over [`AggSummary::group_by`]; zero
    /// for an empty result.
    pub max_group_weight: u128,
    /// Total weight of the sub-join (its join size).
    pub total_weight: u128,
    /// Number of distinct tuples the materialised result would hold (each
    /// distinct operand pair merges to a distinct tuple, so this is exactly
    /// the match-pair count of the fold).
    pub distinct_count: usize,
}

impl AggSummary {
    /// Folds a materialised result into its summary — the oracle semantics
    /// [`hash_join_step_agg`] must reproduce.  Also the evaluation path for
    /// singleton masks, where the "join" is just the relation itself.
    pub fn from_join_result(result: &JoinResult, group_by: &[AttrId]) -> Result<AggSummary> {
        Ok(AggSummary {
            group_by: group_by.to_vec(),
            max_group_weight: result.max_group_weight(group_by)?,
            total_weight: result.total(),
            distinct_count: result.distinct_count(),
        })
    }

    /// Approximate heap footprint in bytes (cache accounting).
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<AggSummary>() + self.group_by.len() * std::mem::size_of::<AttrId>()
    }
}

/// Where each attribute of a merged tuple comes from.
#[derive(Clone, Copy)]
enum Side {
    Left(usize),
    Right(usize),
}

/// Plans the merge of tuples over `left_attrs` and `right_attrs`: the merged
/// attribute list (sorted union) plus, per merged attribute, the operand
/// position supplying its value.
fn merge_plan(left_attrs: &[AttrId], right_attrs: &[AttrId]) -> (Vec<AttrId>, Vec<Side>) {
    let attrs = union_attrs(left_attrs, right_attrs);
    let plan = attrs
        .iter()
        .map(|a| match left_attrs.binary_search(a) {
            Ok(p) => Side::Left(p),
            Err(_) => Side::Right(
                right_attrs
                    .binary_search(a)
                    .expect("attribute must originate from one operand"),
            ),
        })
        .collect();
    (attrs, plan)
}

/// Appends the merged tuple of `(left, right)` under `plan` to `out`.
#[inline]
fn merge_row(plan: &[Side], left: &[Value], right: &[Value], out: &mut Vec<Value>) {
    out.extend(plan.iter().map(|side| match side {
        Side::Left(p) => left[*p],
        Side::Right(p) => right[*p],
    }));
}

/// Concatenates per-range probe outputs in range order into one flat result
/// buffer pair.  Range-ordered concatenation equals the sequential emission
/// order (see the module docs), so the result is byte-identical at every
/// worker count.
fn merge_parts(mut parts: Vec<(Vec<Value>, Vec<u128>)>) -> (Vec<Value>, Vec<u128>) {
    if parts.len() == 1 {
        // Sequential (single-chunk) case: hand the buffers over as-is —
        // re-copying the whole join output here would halve sequential
        // throughput.
        return parts.pop().expect("one part");
    }
    let mut values = Vec::with_capacity(parts.iter().map(|(v, _)| v.len()).sum());
    let mut weights = Vec::with_capacity(parts.iter().map(|(_, w)| w.len()).sum());
    for (v, w) in parts {
        values.extend_from_slice(&v);
        weights.extend_from_slice(&w);
    }
    (values, weights)
}

/// One binary hash-join step: joins an accumulated result with a relation.
/// Shorthand for [`hash_join_step_with`] at the default parallelism.
pub fn hash_join_step(acc: &JoinResult, rel: &Relation) -> Result<JoinResult> {
    hash_join_step_with(acc, rel, Parallelism::default())
}

/// Drives one probe-row range against a [`ProbeIndex`]: projects each
/// probe row's key via `positions`, hashes it, and calls
/// `on_match(probe_row, build_row)` for every key match — in probe-row
/// order, matches in ascending build-row order.  Under
/// [`ProbeMode::Batched`] keys are projected and hashed [`PROBE_BATCH`]
/// rows at a time before any chain is walked; under [`ProbeMode::Scalar`]
/// the three steps run row by row.  The (probe, build) pair sequence is
/// identical either way.
fn probe_rows<'a>(
    index: &ProbeIndex,
    mode: ProbeMode,
    range: std::ops::Range<usize>,
    key_width: usize,
    row_of: impl Fn(usize) -> &'a [Value],
    positions: &[usize],
    mut on_match: impl FnMut(usize, usize),
) {
    match mode {
        ProbeMode::Batched if key_width == 1 => {
            // Width-1 keys need no arena: the projected key is one value, so
            // the batch is a plain value buffer and hashing needs no slice
            // walk.  Candidate order — and thus every output byte — matches
            // the general arm.
            let pos = positions[0];
            let mut batch: Vec<Value> = Vec::with_capacity(PROBE_BATCH);
            let mut hashes: Vec<u64> = Vec::with_capacity(PROBE_BATCH);
            let mut start = range.start;
            while start < range.end {
                let end = (start + PROBE_BATCH).min(range.end);
                batch.clear();
                hashes.clear();
                for i in start..end {
                    batch.push(row_of(i)[pos]);
                }
                hashes.extend(batch.iter().map(|&v| hash_word(v)));
                for (k, i) in (start..end).enumerate() {
                    index.for_each_match(std::slice::from_ref(&batch[k]), hashes[k], |j| {
                        on_match(i, j)
                    });
                }
                start = end;
            }
        }
        ProbeMode::Batched => {
            let mut batch = KeyArena::with_capacity(key_width, PROBE_BATCH);
            let mut hashes: Vec<u64> = Vec::with_capacity(PROBE_BATCH);
            let mut start = range.start;
            while start < range.end {
                let end = (start + PROBE_BATCH).min(range.end);
                batch.clear();
                hashes.clear();
                // Pass 1: project and hash the whole batch.
                for i in start..end {
                    batch.push_projected(row_of(i), positions);
                }
                for k in 0..batch.len() {
                    hashes.push(hash_key(batch.row(k)));
                }
                // Pass 2: walk the chains.
                for (k, i) in (start..end).enumerate() {
                    index.for_each_match(batch.row(k), hashes[k], |j| on_match(i, j));
                }
                start = end;
            }
        }
        ProbeMode::Scalar => {
            let mut scratch: Vec<Value> = Vec::with_capacity(key_width);
            for i in range {
                project_into(row_of(i), positions, &mut scratch);
                index.for_each_match(&scratch, hash_key(&scratch), |j| on_match(i, j));
            }
        }
    }
}

/// Bits provisioned per build key in a [`BlockedBloom`] (the word count is
/// rounded up to a power of two).  ~12 bits per key with two probe bits per
/// key keeps the false-positive rate at a few percent, and a false positive
/// only costs one chain walk that finds nothing.
const BLOOM_BITS_PER_KEY: usize = 12;

/// A blocked Bloom filter over the build side's probe-key **hashes**, used
/// to discard probe rows with no possible match before their index chain is
/// walked (semi-join pruning).
///
/// Both probe bits of a key land in a single `u64` word selected by the
/// hash's high bits, so a membership test is one load, one mask and one
/// compare — no cache line is ever split.  The filter is built from the
/// hashes the [`ProbeIndex`] already computed, so keying matches the probe
/// loop exactly: a single packed word for width-1 keys (the [`KeyPacker`]
/// framing — one value *is* its packed `u64`), the Fx fold of the key slice
/// otherwise.  Every key present in the index sets its bits, so there are
/// **no false negatives**: pruning never changes the (probe, build) match
/// sequence, only how fast non-matching probe rows are discarded.
struct BlockedBloom {
    words: Vec<u64>,
}

impl BlockedBloom {
    /// Builds the filter from precomputed build-key hashes.
    fn from_hashes(hashes: &[u64]) -> BlockedBloom {
        let words = ((hashes.len() * BLOOM_BITS_PER_KEY) / 64)
            .max(64)
            .next_power_of_two();
        let mut filter = BlockedBloom {
            words: vec![0u64; words],
        };
        for &h in hashes {
            let w = filter.word_index(h);
            filter.words[w] |= Self::bits_of(h);
        }
        filter
    }

    /// The word a hash's bits live in, selected by the hash's high bits
    /// (disjoint from both the probe-bit positions below and the
    /// [`ProbeIndex`] bucket bits, which use the low end).
    #[inline]
    fn word_index(&self, hash: u64) -> usize {
        ((hash >> 32) as usize) & (self.words.len() - 1)
    }

    /// The two probe bits of a hash, drawn from its low 12 bits.
    #[inline]
    fn bits_of(hash: u64) -> u64 {
        (1u64 << (hash & 63)) | (1u64 << ((hash >> 6) & 63))
    }

    /// Whether a key with this hash may be present (`false` ⇒ definitely
    /// absent from the build side).
    #[inline]
    fn may_contain(&self, hash: u64) -> bool {
        let need = Self::bits_of(hash);
        self.words[self.word_index(hash)] & need == need
    }
}

/// [`probe_rows`]' batched arms with Bloom semi-join pruning: each probe
/// key's membership is tested against `bloom` between the hash pass and the
/// chain walk, so keys the build side cannot contain never touch the index.
/// Because the filter has no false negatives, the emitted (probe, build)
/// pair sequence is identical to [`probe_rows`]' under any [`ProbeMode`].
fn probe_rows_bloom<'a>(
    index: &ProbeIndex,
    bloom: &BlockedBloom,
    range: std::ops::Range<usize>,
    key_width: usize,
    row_of: impl Fn(usize) -> &'a [Value],
    positions: &[usize],
    mut on_match: impl FnMut(usize, usize),
) {
    if key_width == 1 {
        // Width-1 keys need no arena (see probe_rows).
        let pos = positions[0];
        let mut batch: Vec<Value> = Vec::with_capacity(PROBE_BATCH);
        let mut hashes: Vec<u64> = Vec::with_capacity(PROBE_BATCH);
        let mut start = range.start;
        while start < range.end {
            let end = (start + PROBE_BATCH).min(range.end);
            batch.clear();
            hashes.clear();
            for i in start..end {
                batch.push(row_of(i)[pos]);
            }
            hashes.extend(batch.iter().map(|&v| hash_word(v)));
            for (k, i) in (start..end).enumerate() {
                if bloom.may_contain(hashes[k]) {
                    index.for_each_match(std::slice::from_ref(&batch[k]), hashes[k], |j| {
                        on_match(i, j)
                    });
                }
            }
            start = end;
        }
    } else {
        let mut batch = KeyArena::with_capacity(key_width, PROBE_BATCH);
        let mut hashes: Vec<u64> = Vec::with_capacity(PROBE_BATCH);
        let mut start = range.start;
        while start < range.end {
            let end = (start + PROBE_BATCH).min(range.end);
            batch.clear();
            hashes.clear();
            for i in start..end {
                batch.push_projected(row_of(i), positions);
            }
            for k in 0..batch.len() {
                hashes.push(hash_key(batch.row(k)));
            }
            for (k, i) in (start..end).enumerate() {
                if bloom.may_contain(hashes[k]) {
                    index.for_each_match(batch.row(k), hashes[k], |j| on_match(i, j));
                }
            }
            start = end;
        }
    }
}

/// One binary hash-join step at an explicit parallelism level, with the
/// default [`ProbeMode::Batched`] inner loop.  See [`hash_join_step_mode`].
pub fn hash_join_step_with(
    acc: &JoinResult,
    rel: &Relation,
    par: Parallelism,
) -> Result<JoinResult> {
    hash_join_step_mode(acc, rel, par, ProbeMode::default())
}

/// One binary hash-join step at an explicit parallelism level and probe
/// mode.
///
/// The smaller operand (by distinct tuple count) becomes the hash-build
/// side: its shared-attribute projections are materialised into a frozen
/// [`KeyArena`] and indexed by a chained hash table (no per-key
/// allocation at any arity).  The larger side probes the index — in
/// hash-then-walk batches under [`ProbeMode::Batched`], one row at a time
/// under [`ProbeMode::Scalar`] — and with `par` workers the probe rows are
/// partitioned into contiguous morsels, each worker emits into its own
/// flat buffer, and the buffers are concatenated in morsel order —
/// byte-identical to the sequential emission at every worker count and in
/// both probe modes.  Output tuples need no dedup map: distinct operand
/// pairs always produce distinct merged tuples.  Weight multiplication
/// saturates instead of wrapping, so adversarial worst-case instances
/// degrade gracefully rather than overflow-panicking.
pub fn hash_join_step_mode(
    acc: &JoinResult,
    rel: &Relation,
    par: Parallelism,
    mode: ProbeMode,
) -> Result<JoinResult> {
    let shared = intersect_attrs(&acc.attrs, rel.attrs());
    let (new_attrs, plan) = merge_plan(&acc.attrs, rel.attrs());
    let acc_shared_pos = project_positions(&acc.attrs, &shared)?;
    let rel_shared_pos = project_positions(rel.attrs(), &shared)?;
    let plan = &plan[..];

    let rel_rows = FlatRows::from_relation(rel);
    let (out_values, out_weights) = if rel.distinct_count() <= acc.distinct_count() {
        // Build on the relation, probe with the accumulated result.
        let mut arena = KeyArena::with_capacity(shared.len(), rel_rows.len());
        for i in 0..rel_rows.len() {
            arena.push_projected(rel_rows.row(i), &rel_shared_pos);
        }
        let index = ProbeIndex::build(arena);
        let probe = |range: std::ops::Range<usize>| {
            let mut values: Vec<Value> = Vec::new();
            let mut weights: Vec<u128> = Vec::new();
            probe_rows(
                &index,
                mode,
                range,
                shared.len(),
                |i| acc.row(i),
                &acc_shared_pos,
                |i, j| {
                    merge_row(plan, acc.row(i), rel_rows.row(j), &mut values);
                    weights.push(acc.weights[i].saturating_mul(rel_rows.freq(j) as u128));
                },
            );
            (values, weights)
        };
        merge_parts(exec::par_map_ranges(
            par,
            acc.distinct_count(),
            MIN_PAR_PROBE,
            probe,
        ))
    } else {
        // Build on the accumulated result, probe with the relation.
        let mut arena = KeyArena::with_capacity(shared.len(), acc.distinct_count());
        for i in 0..acc.distinct_count() {
            arena.push_projected(acc.row(i), &acc_shared_pos);
        }
        let index = ProbeIndex::build(arena);
        let probe = |range: std::ops::Range<usize>| {
            let mut values: Vec<Value> = Vec::new();
            let mut weights: Vec<u128> = Vec::new();
            probe_rows(
                &index,
                mode,
                range,
                shared.len(),
                |i| rel_rows.row(i),
                &rel_shared_pos,
                |i, j| {
                    merge_row(plan, acc.row(j), rel_rows.row(i), &mut values);
                    weights.push(acc.weights[j].saturating_mul(rel_rows.freq(i) as u128));
                },
            );
            (values, weights)
        };
        merge_parts(exec::par_map_ranges(
            par,
            rel_rows.len(),
            MIN_PAR_PROBE,
            probe,
        ))
    };

    Ok(JoinResult {
        attrs: new_attrs,
        values: out_values,
        weights: out_weights,
    })
}

/// Folds one (probe, build) match into the grouped accumulator: projects
/// the merged tuple's group key straight off the two operand rows (the
/// merged tuple itself is never built) and adds the match weight to its
/// group, saturating.
#[inline]
fn fold_match(
    group_plan: &[Side],
    left: &[Value],
    right: &[Value],
    w: u128,
    scratch: &mut Vec<Value>,
    groups: &mut FxHashMap<TupleKey, u128>,
) {
    scratch.clear();
    scratch.extend(group_plan.iter().map(|side| match side {
        Side::Left(p) => left[*p],
        Side::Right(p) => right[*p],
    }));
    match groups.get_mut(scratch.as_slice()) {
        Some(total) => *total = total.saturating_add(w),
        None => {
            groups.insert(TupleKey::from_slice(scratch), w);
        }
    }
}

/// Merges per-morsel `(groups, match count, total weight)` accumulators.
/// Unsigned saturating addition is order-free — the fold yields
/// `min(Σ, u128::MAX)` under any association — so the merged numbers are
/// identical at every worker count and morsel partition.
fn merge_agg_parts(
    mut parts: Vec<(FxHashMap<TupleKey, u128>, usize, u128)>,
) -> (FxHashMap<TupleKey, u128>, usize, u128) {
    if parts.len() == 1 {
        return parts.pop().expect("one part");
    }
    let mut groups: FxHashMap<TupleKey, u128> = FxHashMap::default();
    let mut distinct = 0usize;
    let mut total = 0u128;
    for (part, count, sum) in parts {
        distinct += count;
        total = total.saturating_add(sum);
        for (k, w) in part {
            let slot = groups.entry(k).or_insert(0);
            *slot = slot.saturating_add(w);
        }
    }
    (groups, distinct, total)
}

/// One binary hash-join step folded **directly into aggregates** — the
/// `AggFold` evaluation mode.
///
/// Streams every hash-probe match into a grouped accumulator (group key →
/// saturating weight sum, plus match count and saturating total) without
/// ever materialising a merged tuple: no flat result buffer, no weight
/// vector, no [`JoinResult`].  The probe side is additionally pre-filtered
/// by a blocked Bloom filter built from the index's own key hashes, so probe
/// rows whose key the build side cannot contain skip the chain walk
/// entirely.
///
/// Build-side selection, the match sequence and the weight arithmetic are
/// exactly [`hash_join_step_mode`]'s, and grouping reproduces
/// [`JoinResult::group_by_key`]'s saturating sums, so the returned summary
/// equals [`AggSummary::from_join_result`] over the materialised step for
/// every operand pair, thread count and morsel partition — only the
/// evaluation cost differs.
pub fn hash_join_step_agg(
    acc: &JoinResult,
    rel: &Relation,
    group_by: &[AttrId],
    par: Parallelism,
) -> Result<AggSummary> {
    let shared = intersect_attrs(&acc.attrs, rel.attrs());
    let (merged_attrs, plan) = merge_plan(&acc.attrs, rel.attrs());
    let acc_shared_pos = project_positions(&acc.attrs, &shared)?;
    let rel_shared_pos = project_positions(rel.attrs(), &shared)?;
    // Resolve each group-by attribute to the operand position supplying it
    // in the merged tuple, so group keys project straight off the operand
    // rows.  Errors (attribute outside the merged list) match the
    // materializing oracle's, which projects over the same attribute union.
    let group_plan: Vec<Side> = project_positions(&merged_attrs, group_by)?
        .iter()
        .map(|&p| plan[p])
        .collect();
    let group_plan = &group_plan[..];

    let rel_rows = FlatRows::from_relation(rel);
    let (groups, distinct, total) = if rel.distinct_count() <= acc.distinct_count() {
        // Build on the relation, probe with the accumulated result.
        let mut arena = KeyArena::with_capacity(shared.len(), rel_rows.len());
        for i in 0..rel_rows.len() {
            arena.push_projected(rel_rows.row(i), &rel_shared_pos);
        }
        let index = ProbeIndex::build(arena);
        let bloom = BlockedBloom::from_hashes(&index.hashes);
        let probe = |range: std::ops::Range<usize>| {
            let mut groups: FxHashMap<TupleKey, u128> = FxHashMap::default();
            let mut scratch: Vec<Value> = Vec::with_capacity(group_plan.len());
            let mut distinct = 0usize;
            let mut total = 0u128;
            probe_rows_bloom(
                &index,
                &bloom,
                range,
                shared.len(),
                |i| acc.row(i),
                &acc_shared_pos,
                |i, j| {
                    let w = acc.weights[i].saturating_mul(rel_rows.freq(j) as u128);
                    fold_match(
                        group_plan,
                        acc.row(i),
                        rel_rows.row(j),
                        w,
                        &mut scratch,
                        &mut groups,
                    );
                    distinct += 1;
                    total = total.saturating_add(w);
                },
            );
            (groups, distinct, total)
        };
        merge_agg_parts(exec::par_map_ranges(
            par,
            acc.distinct_count(),
            MIN_PAR_PROBE,
            probe,
        ))
    } else {
        // Build on the accumulated result, probe with the relation.
        let mut arena = KeyArena::with_capacity(shared.len(), acc.distinct_count());
        for i in 0..acc.distinct_count() {
            arena.push_projected(acc.row(i), &acc_shared_pos);
        }
        let index = ProbeIndex::build(arena);
        let bloom = BlockedBloom::from_hashes(&index.hashes);
        let probe = |range: std::ops::Range<usize>| {
            let mut groups: FxHashMap<TupleKey, u128> = FxHashMap::default();
            let mut scratch: Vec<Value> = Vec::with_capacity(group_plan.len());
            let mut distinct = 0usize;
            let mut total = 0u128;
            probe_rows_bloom(
                &index,
                &bloom,
                range,
                shared.len(),
                |i| rel_rows.row(i),
                &rel_shared_pos,
                |i, j| {
                    let w = acc.weights[j].saturating_mul(rel_rows.freq(i) as u128);
                    fold_match(
                        group_plan,
                        acc.row(j),
                        rel_rows.row(i),
                        w,
                        &mut scratch,
                        &mut groups,
                    );
                    distinct += 1;
                    total = total.saturating_add(w);
                },
            );
            (groups, distinct, total)
        };
        merge_agg_parts(exec::par_map_ranges(
            par,
            rel_rows.len(),
            MIN_PAR_PROBE,
            probe,
        ))
    };

    Ok(AggSummary {
        group_by: group_by.to_vec(),
        max_group_weight: groups.values().copied().max().unwrap_or(0),
        total_weight: total,
        distinct_count: distinct,
    })
}

/// Drives one probe-row range against a [`PackedProbeIndex`]: packs a batch
/// of probe keys, then walks the chains.  The (probe, build) pair sequence
/// equals [`probe_rows`]' for the same operands.
fn probe_rows_packed<'a>(
    index: &PackedProbeIndex,
    range: std::ops::Range<usize>,
    packer: &KeyPacker,
    row_of: impl Fn(usize) -> &'a [Value],
    positions: &[usize],
    mut on_match: impl FnMut(usize, usize),
) {
    let mut batch: Vec<u64> = Vec::with_capacity(PROBE_BATCH);
    let mut start = range.start;
    while start < range.end {
        let end = (start + PROBE_BATCH).min(range.end);
        batch.clear();
        for i in start..end {
            batch.push(packer.pack_projected(row_of(i), positions));
        }
        for (k, i) in (start..end).enumerate() {
            index.for_each_match(batch[k], |j| on_match(i, j));
        }
        start = end;
    }
}

/// One binary hash-join step over **dictionary-encoded** operands.
///
/// When the shared attributes' code widths pack into one `u64` under
/// `dict` (the common case for encoded instances — see
/// [`AttrDictionary::packer`]), the probe key becomes a single packed word:
/// key hash and equality are one integer operation each instead of
/// per-value loops.  Steps whose keys don't pack fall back to the generic
/// batched step.  Either way the (probe row, build row) match sequence —
/// and therefore every output byte — equals [`hash_join_step_with`] on the
/// same encoded operands.
pub fn hash_join_step_dict(
    acc: &JoinResult,
    rel: &Relation,
    dict: &AttrDictionary,
    par: Parallelism,
) -> Result<JoinResult> {
    let shared = intersect_attrs(&acc.attrs, rel.attrs());
    let Some(packer) = dict.packer(&shared) else {
        return hash_join_step_mode(acc, rel, par, ProbeMode::Batched);
    };
    let (new_attrs, plan) = merge_plan(&acc.attrs, rel.attrs());
    let acc_shared_pos = project_positions(&acc.attrs, &shared)?;
    let rel_shared_pos = project_positions(rel.attrs(), &shared)?;
    let plan = &plan[..];
    let packer = &packer;

    let rel_rows = FlatRows::from_relation(rel);
    let (out_values, out_weights) = if rel.distinct_count() <= acc.distinct_count() {
        // Build on the relation, probe with the accumulated result.
        let keys: Vec<u64> = (0..rel_rows.len())
            .map(|i| packer.pack_projected(rel_rows.row(i), &rel_shared_pos))
            .collect();
        let index = PackedProbeIndex::build(keys);
        let probe = |range: std::ops::Range<usize>| {
            let mut values: Vec<Value> = Vec::new();
            let mut weights: Vec<u128> = Vec::new();
            probe_rows_packed(
                &index,
                range,
                packer,
                |i| acc.row(i),
                &acc_shared_pos,
                |i, j| {
                    merge_row(plan, acc.row(i), rel_rows.row(j), &mut values);
                    weights.push(acc.weights[i].saturating_mul(rel_rows.freq(j) as u128));
                },
            );
            (values, weights)
        };
        merge_parts(exec::par_map_ranges(
            par,
            acc.distinct_count(),
            MIN_PAR_PROBE,
            probe,
        ))
    } else {
        // Build on the accumulated result, probe with the relation.
        let keys: Vec<u64> = (0..acc.distinct_count())
            .map(|i| packer.pack_projected(acc.row(i), &acc_shared_pos))
            .collect();
        let index = PackedProbeIndex::build(keys);
        let probe = |range: std::ops::Range<usize>| {
            let mut values: Vec<Value> = Vec::new();
            let mut weights: Vec<u128> = Vec::new();
            probe_rows_packed(
                &index,
                range,
                packer,
                |i| rel_rows.row(i),
                &rel_shared_pos,
                |i, j| {
                    merge_row(plan, acc.row(j), rel_rows.row(i), &mut values);
                    weights.push(acc.weights[j].saturating_mul(rel_rows.freq(i) as u128));
                },
            );
            (values, weights)
        };
        merge_parts(exec::par_map_ranges(
            par,
            rel_rows.len(),
            MIN_PAR_PROBE,
            probe,
        ))
    };

    Ok(JoinResult {
        attrs: new_attrs,
        values: out_values,
        weights: out_weights,
    })
}

/// Joins all relations of an **already dictionary-encoded** instance with
/// packed probe keys wherever the dictionary allows, then decodes the
/// result back to raw values.
///
/// `enc_query` / `enc_instance` must come from
/// [`AttrDictionary::encode_instance`] with the same `dict`.  Because
/// encoding is a per-relation bijection preserving distinct counts and
/// tuple order, the encoded fold visits the same relation order, builds on
/// the same sides and emits rows in the same sequence as the raw fold —
/// the decoded output is **byte-identical** to [`join`] on the raw
/// instance.
pub fn join_encoded(
    enc_query: &JoinQuery,
    enc_instance: &Instance,
    dict: &AttrDictionary,
    par: Parallelism,
) -> Result<JoinResult> {
    if enc_instance.num_relations() != enc_query.num_relations() {
        return Err(RelationalError::RelationCountMismatch {
            expected: enc_query.num_relations(),
            got: enc_instance.num_relations(),
        });
    }
    let all: Vec<usize> = (0..enc_query.num_relations()).collect();
    let order = fold_order(enc_instance, &all);
    let mut acc = JoinResult::from_relation(enc_instance.relation(order[0]));
    for &ri in &order[1..] {
        acc = hash_join_step_dict(&acc, enc_instance.relation(ri), dict, par)?;
    }
    Ok(acc.map_values(|a, code| dict.decode(a, code)))
}

/// Joins all relations through a freshly built attribute dictionary:
/// builds the dictionary, encodes the instance, folds with packed probe
/// keys and decodes on emit.  Byte-identical to [`join`]; callers that
/// answer repeatedly over one instance should cache the dictionary and
/// encoded instance via [`crate::ExecContext`] instead of re-encoding.
pub fn join_dict(query: &JoinQuery, instance: &Instance, par: Parallelism) -> Result<JoinResult> {
    let dict = AttrDictionary::build(query, instance);
    let (enc_query, enc_instance) = dict.encode_instance(query, instance)?;
    join_encoded(&enc_query, &enc_instance, &dict, par)
}

/// Whether every binary step of the engine's full fold over `instance` can
/// use a packed single-word probe key under `dict` — the condition for
/// [`join_encoded`] to run entirely on integer-compare keys.  Pure
/// simulation over attribute lists; no tuples are touched.
pub fn fold_fully_packable(instance: &Instance, dict: &AttrDictionary) -> bool {
    let all: Vec<usize> = (0..instance.num_relations()).collect();
    let order = fold_order(instance, &all);
    let Some(&first) = order.first() else {
        return true;
    };
    let mut acc_attrs: Vec<AttrId> = instance.relation(first).attrs().to_vec();
    for &ri in &order[1..] {
        let shared = intersect_attrs(&acc_attrs, instance.relation(ri).attrs());
        if dict.packer(&shared).is_none() {
            return false;
        }
        acc_attrs = union_attrs(&acc_attrs, instance.relation(ri).attrs());
    }
    true
}

/// The engine's greedy fold order for joining the relation subset `rels`:
/// start from the smallest relation, then repeatedly pick, among the
/// remaining relations that **share an attribute** with the accumulated
/// attribute set, the one with the fewest distinct tuples — falling back to
/// the smallest remaining relation only when the subset's join graph is
/// genuinely disconnected (where a cross product is unavoidable).  Ties
/// break on the lower relation index, so the order is deterministic.
///
/// This is exactly the order [`join_subset`] folds in; it is exposed so the
/// cost-based planner ([`crate::plan::JoinPlan`]) can record the top-level
/// join order it shares with the engine.  `rels` is assumed valid (checked
/// by the callers).
pub fn fold_order(instance: &Instance, rels: &[usize]) -> Vec<usize> {
    let size_of = |ri: usize| instance.relation(ri).distinct_count();
    let mut remaining: Vec<usize> = rels.to_vec();
    let mut order = Vec::with_capacity(rels.len());
    let Some(start) = remaining
        .iter()
        .enumerate()
        .min_by_key(|&(_, &ri)| (size_of(ri), ri))
        .map(|(pos, _)| pos)
    else {
        return order;
    };
    let first = remaining.remove(start);
    order.push(first);
    let mut acc_attrs: Vec<AttrId> = instance.relation(first).attrs().to_vec();
    while !remaining.is_empty() {
        // Prefer the smallest relation connected to the accumulator; the
        // (ri) tie-break keeps the order — and thus saturation behaviour —
        // deterministic.
        let pick = remaining
            .iter()
            .enumerate()
            .filter(|&(_, &ri)| {
                !intersect_attrs(&acc_attrs, instance.relation(ri).attrs()).is_empty()
            })
            .min_by_key(|&(_, &ri)| (size_of(ri), ri))
            .or_else(|| {
                remaining
                    .iter()
                    .enumerate()
                    .min_by_key(|&(_, &ri)| (size_of(ri), ri))
            })
            .map(|(pos, _)| pos)
            .expect("non-empty remaining set");
        let ri = remaining.remove(pick);
        acc_attrs = union_attrs(&acc_attrs, instance.relation(ri).attrs());
        order.push(ri);
    }
    order
}

/// Joins the subset `rels` of the instance's relations (a sub-join of the
/// query).  `rels` must be non-empty, sorted and in range.
///
/// Join-order selection follows [`fold_order`]: smallest-first, preferring
/// relations connected to the accumulated result (size alone could join two
/// small but attribute-disjoint relations first and materialise a cross
/// product a connected order never builds).  Each binary step additionally
/// builds its hash index on the smaller operand.  The result is independent
/// of the fold order (weights saturate identically only in astronomically
/// large joins).
pub fn join_subset(query: &JoinQuery, instance: &Instance, rels: &[usize]) -> Result<JoinResult> {
    join_subset_impl(query, instance, rels, Parallelism::default())
}

/// Shared implementation behind [`join_subset`] and
/// [`crate::ExecContext::join_subset`].
pub(crate) fn join_subset_impl(
    query: &JoinQuery,
    instance: &Instance,
    rels: &[usize],
    par: Parallelism,
) -> Result<JoinResult> {
    query.check_subset(rels)?;
    if rels.is_empty() {
        return Err(RelationalError::InvalidRelationSubset(
            "cannot join an empty set of relations; the empty join is handled by callers"
                .to_string(),
        ));
    }
    if instance.num_relations() != query.num_relations() {
        return Err(RelationalError::RelationCountMismatch {
            expected: query.num_relations(),
            got: instance.num_relations(),
        });
    }

    let order = fold_order(instance, rels);
    let mut acc = JoinResult::from_relation(instance.relation(order[0]));
    for &ri in &order[1..] {
        // Even when the accumulated result is already empty we keep folding
        // in the remaining relations so that the result's attribute list
        // always covers the union of the requested relations' attributes
        // (downstream evaluators rely on it).
        acc = hash_join_step_with(&acc, instance.relation(ri), par)?;
    }
    Ok(acc)
}

/// Joins all relations of the query (the paper's `Join_I`).
pub fn join(query: &JoinQuery, instance: &Instance) -> Result<JoinResult> {
    join_impl(query, instance, Parallelism::default())
}

/// Shared implementation behind [`join`] and [`crate::ExecContext::join`].
pub(crate) fn join_impl(
    query: &JoinQuery,
    instance: &Instance,
    par: Parallelism,
) -> Result<JoinResult> {
    let all: Vec<usize> = (0..query.num_relations()).collect();
    join_subset_impl(query, instance, &all, par)
}

/// The join size `count(I) = Σ_t Join_I(t)`.
pub fn join_size(query: &JoinQuery, instance: &Instance) -> Result<u128> {
    Ok(join(query, instance)?.total())
}

/// Shared implementation behind [`join_size`] and
/// [`crate::ExecContext::join_size`].
pub(crate) fn join_size_impl(
    query: &JoinQuery,
    instance: &Instance,
    par: Parallelism,
) -> Result<u128> {
    Ok(join_impl(query, instance, par)?.total())
}

/// Joins the relation subset `rels` and groups the result by `group_by`,
/// returning total weight per group.  For `rels = ∅` the result is the single
/// empty group with weight 1 (the empty product), matching the convention
/// `T_∅(I) = 1` used by residual sensitivity.
pub fn grouped_join_size(
    query: &JoinQuery,
    instance: &Instance,
    rels: &[usize],
    group_by: &[AttrId],
) -> Result<BTreeMap<Vec<Value>, u128>> {
    grouped_join_size_impl(query, instance, rels, group_by, Parallelism::default())
}

/// Shared implementation behind [`grouped_join_size`] and
/// [`crate::ExecContext::grouped_join_size`].
pub(crate) fn grouped_join_size_impl(
    query: &JoinQuery,
    instance: &Instance,
    rels: &[usize],
    group_by: &[AttrId],
    par: Parallelism,
) -> Result<BTreeMap<Vec<Value>, u128>> {
    if rels.is_empty() {
        let mut out = BTreeMap::new();
        out.insert(Vec::new(), 1u128);
        return Ok(out);
    }
    join_subset_impl(query, instance, rels, par)?.group_by(group_by)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::AttrId;
    use crate::relation::Relation;

    fn ids(v: &[u16]) -> Vec<AttrId> {
        v.iter().map(|&x| AttrId(x)).collect()
    }

    fn two_table() -> (JoinQuery, Instance) {
        let q = JoinQuery::two_table(8, 8, 8);
        // R1(A,B): (0,0):1 (1,0):2 (2,1):1
        let r1 = Relation::from_tuples(
            ids(&[0, 1]),
            vec![(vec![0, 0], 1), (vec![1, 0], 2), (vec![2, 1], 1)],
        )
        .unwrap();
        // R2(B,C): (0,0):1 (0,1):1 (1,3):3 (5,5):7
        let r2 = Relation::from_tuples(
            ids(&[1, 2]),
            vec![
                (vec![0, 0], 1),
                (vec![0, 1], 1),
                (vec![1, 3], 3),
                (vec![5, 5], 7),
            ],
        )
        .unwrap();
        (q, Instance::new(vec![r1, r2]))
    }

    #[test]
    fn two_table_join_matches_manual_computation() {
        let (q, inst) = two_table();
        let result = join(&q, &inst).unwrap();
        assert_eq!(result.attrs(), ids(&[0, 1, 2]).as_slice());
        // B=0 matches: R1 weight (0,0)->1, (1,0)->2; R2 weight (0,0)->1, (0,1)->1
        // B=1 matches: R1 (2,1)->1; R2 (1,3)->3
        // B=5 matches nothing in R1.
        assert_eq!(result.weight(&[0, 0, 0]), 1);
        assert_eq!(result.weight(&[0, 0, 1]), 1);
        assert_eq!(result.weight(&[1, 0, 0]), 2);
        assert_eq!(result.weight(&[1, 0, 1]), 2);
        assert_eq!(result.weight(&[2, 1, 3]), 3);
        assert_eq!(result.weight(&[2, 1, 0]), 0);
        assert_eq!(result.total(), 1 + 1 + 2 + 2 + 3);
        assert_eq!(join_size(&q, &inst).unwrap(), 9);
    }

    #[test]
    fn iteration_is_sorted_on_emit() {
        let (q, inst) = two_table();
        let result = join(&q, &inst).unwrap();
        let tuples: Vec<Vec<Value>> = result.iter().map(|(t, _)| t.to_vec()).collect();
        let mut sorted = tuples.clone();
        sorted.sort();
        assert_eq!(tuples, sorted);
        assert_eq!(tuples.len(), result.distinct_count());
        assert_eq!(result.iter_unordered().count(), tuples.len());
    }

    #[test]
    fn equality_is_order_insensitive() {
        let (q, inst) = two_table();
        let a = join(&q, &inst).unwrap();
        let b = join(&q, &inst).unwrap();
        assert_eq!(a, b);
        let sub = join_subset(&q, &inst, &[0]).unwrap();
        assert_ne!(a, sub);
    }

    #[test]
    fn frequencies_multiply() {
        let q = JoinQuery::two_table(4, 4, 4);
        let r1 = Relation::from_tuples(ids(&[0, 1]), vec![(vec![0, 0], 5)]).unwrap();
        let r2 = Relation::from_tuples(ids(&[1, 2]), vec![(vec![0, 0], 7)]).unwrap();
        let inst = Instance::new(vec![r1, r2]);
        assert_eq!(join_size(&q, &inst).unwrap(), 35);
    }

    #[test]
    fn empty_join_when_no_common_value() {
        let q = JoinQuery::two_table(4, 4, 4);
        let r1 = Relation::from_tuples(ids(&[0, 1]), vec![(vec![0, 0], 1)]).unwrap();
        let r2 = Relation::from_tuples(ids(&[1, 2]), vec![(vec![1, 0], 1)]).unwrap();
        let inst = Instance::new(vec![r1, r2]);
        let result = join(&q, &inst).unwrap();
        assert!(result.is_empty());
        assert_eq!(result.total(), 0);
        // The attribute list still covers the union.
        assert_eq!(result.attrs(), ids(&[0, 1, 2]).as_slice());
    }

    #[test]
    fn path_join_three_relations() {
        let q = JoinQuery::path(3, 4).unwrap();
        let mut inst = Instance::empty_for(&q).unwrap();
        // R1(A0,A1) = {(0,1)}, R2(A1,A2) = {(1,2):2}, R3(A2,A3) = {(2,3), (2,0)}
        inst.relation_mut(0).add_one(vec![0, 1]).unwrap();
        inst.relation_mut(1).add(vec![1, 2], 2).unwrap();
        inst.relation_mut(2).add_one(vec![2, 3]).unwrap();
        inst.relation_mut(2).add_one(vec![2, 0]).unwrap();
        let result = join(&q, &inst).unwrap();
        assert_eq!(result.total(), 4);
        assert_eq!(result.weight(&[0, 1, 2, 3]), 2);
        assert_eq!(result.weight(&[0, 1, 2, 0]), 2);
    }

    #[test]
    fn subjoin_and_grouping() {
        let (q, inst) = two_table();
        // Sub-join of just R1 grouped by B.
        let groups = grouped_join_size(&q, &inst, &[0], &ids(&[1])).unwrap();
        assert_eq!(groups.get(&vec![0]).copied(), Some(3));
        assert_eq!(groups.get(&vec![1]).copied(), Some(1));
        // Empty relation subset: conventionally a single unit group.
        let empty = grouped_join_size(&q, &inst, &[], &[]).unwrap();
        assert_eq!(empty.get(&Vec::new()).copied(), Some(1));
        // Full join grouped by nothing = join size.
        let total = grouped_join_size(&q, &inst, &[0, 1], &[]).unwrap();
        assert_eq!(total.get(&Vec::new()).copied(), Some(9));
    }

    #[test]
    fn max_group_weight_and_projections() {
        let (q, inst) = two_table();
        let result = join(&q, &inst).unwrap();
        // Grouped by B: B=0 contributes 6, B=1 contributes 3.
        assert_eq!(result.max_group_weight(&ids(&[1])).unwrap(), 6);
        let projs = result.distinct_projections(&ids(&[1])).unwrap();
        assert_eq!(projs.len(), 2);
    }

    #[test]
    fn star_join() {
        let q = JoinQuery::star(3, 4).unwrap();
        let mut inst = Instance::empty_for(&q).unwrap();
        // Hub value 2 appears in all three relations.
        inst.relation_mut(0).add(vec![2, 0], 2).unwrap();
        inst.relation_mut(1).add(vec![2, 1], 3).unwrap();
        inst.relation_mut(2).add(vec![2, 3], 1).unwrap();
        // Hub value 1 appears only in two relations.
        inst.relation_mut(0).add(vec![1, 0], 1).unwrap();
        inst.relation_mut(1).add(vec![1, 1], 1).unwrap();
        assert_eq!(join_size(&q, &inst).unwrap(), 6);
    }

    #[test]
    fn cross_product_when_no_shared_attributes() {
        // Path of length 3, joining only the two end relations: no shared
        // attributes, so the sub-join is a cross product.
        let q = JoinQuery::path(3, 4).unwrap();
        let mut inst = Instance::empty_for(&q).unwrap();
        inst.relation_mut(0).add(vec![0, 1], 2).unwrap();
        inst.relation_mut(0).add(vec![1, 1], 1).unwrap();
        inst.relation_mut(2).add(vec![2, 3], 5).unwrap();
        let result = join_subset(&q, &inst, &[0, 2]).unwrap();
        assert_eq!(result.total(), (2 + 1) * 5);
        assert_eq!(result.distinct_count(), 2);
    }

    #[test]
    fn weights_saturate_instead_of_overflowing() {
        let q = JoinQuery::two_table(4, 4, 4);
        let r1 = Relation::from_tuples(ids(&[0, 1]), vec![(vec![0, 0], u64::MAX)]).unwrap();
        let r2 = Relation::from_tuples(
            ids(&[1, 2]),
            vec![(vec![0, 0], u64::MAX), (vec![0, 1], u64::MAX)],
        )
        .unwrap();
        let inst = Instance::new(vec![r1, r2]);
        let result = join(&q, &inst).unwrap();
        // Each merged tuple's weight is exactly (2^64-1)² (fits in u128, no
        // per-entry saturation), and the two entries' sum exceeds u128::MAX,
        // so the total must saturate rather than wrap or panic.
        let per_entry = (u64::MAX as u128) * (u64::MAX as u128);
        assert_eq!(result.weight(&[0, 0, 0]), per_entry);
        assert_eq!(result.weight(&[0, 0, 1]), per_entry);
        assert_eq!(result.total(), u128::MAX);
    }

    #[test]
    fn fold_order_prefers_connected_relations() {
        // Path R0(A0,A1) ⋈ R1(A1,A2) ⋈ R2(A2,A3) with tiny end relations and
        // a large middle: a purely size-sorted order would join the
        // attribute-disjoint ends first, materialising an s² cross product.
        // The connected order keeps every intermediate at most linear, which
        // this test bounds indirectly by completing instantly; correctness
        // is cross-checked against the naive engine.
        let q = JoinQuery::path(3, 1024).unwrap();
        let mut inst = Instance::empty_for(&q).unwrap();
        let s = 400u64;
        for v in 0..s {
            inst.relation_mut(0).add(vec![v, v], 1).unwrap();
            inst.relation_mut(2).add(vec![v, v], 1).unwrap();
        }
        for v in 0..(2 * s) {
            inst.relation_mut(1).add(vec![v % s, v % s], 1).unwrap();
        }
        let fast = join(&q, &inst).unwrap();
        let naive = crate::naive::join_naive(&q, &inst).unwrap();
        assert_eq!(fast.total(), naive.total());
        assert_eq!(fast.distinct_count(), naive.distinct_count());
    }

    #[test]
    fn parallel_probe_is_byte_identical_to_sequential() {
        // Large enough to clear MIN_PAR_PROBE so multi-thread runs actually
        // partition the probe loop.
        let q = JoinQuery::two_table(64, 4096, 64);
        let mut inst = Instance::empty_for(&q).unwrap();
        for i in 0..3000u64 {
            inst.relation_mut(0).add(vec![i % 37, i % 4096], 1).unwrap();
            inst.relation_mut(1)
                .add(vec![(i * 7) % 4096, i % 29], 1 + i % 3)
                .unwrap();
        }
        let seq = join_impl(&q, &inst, Parallelism::SEQUENTIAL).unwrap();
        for threads in [2usize, 4, 7] {
            let par = join_impl(&q, &inst, Parallelism::threads(threads)).unwrap();
            assert_eq!(par.attrs(), seq.attrs());
            // Construction order (not just set equality) must match exactly.
            let seq_rows: Vec<(&[Value], u128)> = seq.iter_unordered().collect();
            let par_rows: Vec<(&[Value], u128)> = par.iter_unordered().collect();
            assert_eq!(par_rows, seq_rows, "threads = {threads}");
        }
    }

    #[test]
    fn scalar_and_batched_probe_modes_are_byte_identical() {
        let q = JoinQuery::two_table(64, 4096, 64);
        let mut inst = Instance::empty_for(&q).unwrap();
        for i in 0..3000u64 {
            inst.relation_mut(0).add(vec![i % 37, i % 4096], 1).unwrap();
            inst.relation_mut(1)
                .add(vec![(i * 7) % 4096, i % 29], 1 + i % 3)
                .unwrap();
        }
        let acc = JoinResult::from_relation(inst.relation(0));
        for par in [Parallelism::SEQUENTIAL, Parallelism::threads(4)] {
            let batched =
                hash_join_step_mode(&acc, inst.relation(1), par, ProbeMode::Batched).unwrap();
            let scalar =
                hash_join_step_mode(&acc, inst.relation(1), par, ProbeMode::Scalar).unwrap();
            let b: Vec<(&[Value], u128)> = batched.iter_unordered().collect();
            let s: Vec<(&[Value], u128)> = scalar.iter_unordered().collect();
            assert_eq!(b, s, "modes must emit identical rows in identical order");
        }
    }

    #[test]
    fn dict_join_is_byte_identical_to_raw_join_on_wide_values() {
        use crate::attr::{Attribute, Schema};
        // Two relations sharing three wide attributes: the dictionary packs
        // the 3-attribute key into one word.
        let schema = Schema::new(vec![
            Attribute::new("A", 1 << 40),
            Attribute::new("B", 1 << 40),
            Attribute::new("C", 1 << 40),
            Attribute::new("D", 1 << 40),
            Attribute::new("E", 1 << 40),
        ]);
        let q = JoinQuery::new(schema, vec![ids(&[0, 1, 2, 3]), ids(&[0, 1, 2, 4])]).unwrap();
        let mut inst = Instance::empty_for(&q).unwrap();
        let wide = |v: u64| v.wrapping_mul(0x9e37_79b9) % (1 << 40);
        for i in 0..2000u64 {
            inst.relation_mut(0)
                .add(
                    vec![wide(i % 61), wide(i % 53), wide(i % 47), wide(i)],
                    1 + i % 2,
                )
                .unwrap();
            inst.relation_mut(1)
                .add(
                    vec![wide(i % 61), wide(i % 53), wide(i % 43), wide(i + 7)],
                    1,
                )
                .unwrap();
        }
        let raw = join(&q, &inst).unwrap();
        for threads in [1usize, 4] {
            let dict = join_dict(&q, &inst, Parallelism::threads(threads)).unwrap();
            assert_eq!(dict.attrs(), raw.attrs());
            let d: Vec<(&[Value], u128)> = dict.iter_unordered().collect();
            let r: Vec<(&[Value], u128)> = raw.iter_unordered().collect();
            assert_eq!(d, r, "threads = {threads}");
        }
        // The packability probe agrees with what the fold actually did.
        let dict = crate::tuple::AttrDictionary::build(&q, &inst);
        assert!(fold_fully_packable(&inst, &dict));
    }

    #[test]
    fn dict_join_falls_back_when_keys_do_not_pack() {
        // Cross product: the shared set is empty, which trivially packs; to
        // force the fallback we need > 64 summed bits, i.e. wide keys over
        // many dense attributes.  Build a 2-relation query sharing 5 attrs
        // of 8192 codes each (5 × 13 bits = 65 > 64).
        use crate::attr::{Attribute, Schema};
        let n_codes = 8192u64;
        let schema = Schema::new(
            (0..6)
                .map(|i| Attribute::new(format!("x{i}"), n_codes))
                .collect(),
        );
        let q = JoinQuery::new(
            schema,
            vec![ids(&[0, 1, 2, 3, 4]), ids(&[0, 1, 2, 3, 4, 5])],
        )
        .unwrap();
        let mut inst = Instance::empty_for(&q).unwrap();
        for i in 0..n_codes {
            inst.relation_mut(0).add(vec![i, i, i, i, i], 1).unwrap();
            if i % 3 == 0 {
                inst.relation_mut(1)
                    .add(vec![i, i, i, i, i, i % 7], 2)
                    .unwrap();
            }
        }
        let dict = crate::tuple::AttrDictionary::build(&q, &inst);
        assert!(!fold_fully_packable(&inst, &dict));
        let raw = join(&q, &inst).unwrap();
        let viadict = join_dict(&q, &inst, Parallelism::SEQUENTIAL).unwrap();
        let d: Vec<(&[Value], u128)> = viadict.iter_unordered().collect();
        let r: Vec<(&[Value], u128)> = raw.iter_unordered().collect();
        assert_eq!(d, r);
    }

    #[test]
    fn map_values_rewrites_in_place() {
        let (q, inst) = two_table();
        let result = join(&q, &inst).unwrap();
        let shifted = result.clone().map_values(|_, v| v + 100);
        for ((t, w), (s, sw)) in result.iter_unordered().zip(shifted.iter_unordered()) {
            assert_eq!(w, sw);
            for (a, b) in t.iter().zip(s.iter()) {
                assert_eq!(*b, *a + 100);
            }
        }
    }

    #[test]
    fn invalid_subset_rejected() {
        let (q, inst) = two_table();
        assert!(join_subset(&q, &inst, &[]).is_err());
        assert!(join_subset(&q, &inst, &[3]).is_err());
    }

    #[test]
    fn from_parts_roundtrips() {
        let mut tuples = BTreeMap::new();
        tuples.insert(vec![1u64, 2], 5u128);
        tuples.insert(vec![3, 4], 7);
        let result = JoinResult::from_parts(ids(&[0, 2]), tuples);
        assert_eq!(result.distinct_count(), 2);
        assert_eq!(result.total(), 12);
        assert_eq!(result.weight(&[3, 4]), 7);
        assert_eq!(result.weight(&[9, 9]), 0);
    }

    #[test]
    fn agg_step_matches_the_materializing_oracle() {
        let q = JoinQuery::two_table(64, 4096, 64);
        let mut inst = Instance::empty_for(&q).unwrap();
        for i in 0..3000u64 {
            inst.relation_mut(0).add(vec![i % 37, i % 4096], 1).unwrap();
            inst.relation_mut(1)
                .add(vec![(i * 7) % 4096, i % 29], 1 + i % 3)
                .unwrap();
        }
        let acc = JoinResult::from_relation(inst.relation(0));
        let materialized =
            hash_join_step_with(&acc, inst.relation(1), Parallelism::SEQUENTIAL).unwrap();
        // Boundary-style group lists drawn from both operands and the
        // empty list (join size only).
        let group_lists = [ids(&[]), ids(&[0]), ids(&[1]), ids(&[0, 2])];
        for group_by in group_lists.iter().map(|g| g.as_slice()) {
            let oracle = AggSummary::from_join_result(&materialized, group_by).unwrap();
            for threads in [1usize, 2, 4, 8] {
                let agg = hash_join_step_agg(
                    &acc,
                    inst.relation(1),
                    group_by,
                    Parallelism::threads(threads),
                )
                .unwrap();
                assert_eq!(agg, oracle, "threads = {threads}, group_by = {group_by:?}");
            }
        }
        // The opposite build orientation: probe the small accumulated side.
        let acc_small = JoinResult::from_relation(inst.relation(1));
        let materialized =
            hash_join_step_with(&acc_small, inst.relation(0), Parallelism::SEQUENTIAL).unwrap();
        let oracle = AggSummary::from_join_result(&materialized, &ids(&[1])).unwrap();
        let agg = hash_join_step_agg(
            &acc_small,
            inst.relation(0),
            &ids(&[1]),
            Parallelism::threads(4),
        )
        .unwrap();
        assert_eq!(agg, oracle);
    }

    #[test]
    fn agg_step_saturates_like_the_materializing_path() {
        // Mirror of weights_saturate_instead_of_overflowing: per-group and
        // total sums exceed u128::MAX and must clamp, not wrap.
        let r1 = Relation::from_tuples(ids(&[0, 1]), vec![(vec![0, 0], u64::MAX)]).unwrap();
        let r2 = Relation::from_tuples(
            ids(&[1, 2]),
            vec![(vec![0, 0], u64::MAX), (vec![0, 1], u64::MAX)],
        )
        .unwrap();
        let inst = Instance::new(vec![r1, r2]);
        let acc = JoinResult::from_relation(inst.relation(0));
        let agg = hash_join_step_agg(&acc, inst.relation(1), &ids(&[1]), Parallelism::SEQUENTIAL)
            .unwrap();
        let per_entry = (u64::MAX as u128) * (u64::MAX as u128);
        assert_eq!(agg.distinct_count, 2);
        // Both entries share the group B=0, whose sum exceeds u128::MAX.
        assert_eq!(agg.max_group_weight, u128::MAX);
        assert_eq!(agg.total_weight, u128::MAX);
        assert!(per_entry < u128::MAX && per_entry.saturating_add(per_entry) == u128::MAX);
        let materialized =
            hash_join_step_with(&acc, inst.relation(1), Parallelism::SEQUENTIAL).unwrap();
        assert_eq!(
            agg,
            AggSummary::from_join_result(&materialized, &ids(&[1])).unwrap()
        );
    }

    #[test]
    fn agg_step_handles_empty_results_and_empty_group_lists() {
        let r1 = Relation::from_tuples(ids(&[0, 1]), vec![(vec![0, 0], 1)]).unwrap();
        let r2 = Relation::from_tuples(ids(&[1, 2]), vec![(vec![1, 0], 1)]).unwrap();
        let inst = Instance::new(vec![r1, r2]);
        let acc = JoinResult::from_relation(inst.relation(0));
        let agg = hash_join_step_agg(&acc, inst.relation(1), &[], Parallelism::SEQUENTIAL).unwrap();
        assert_eq!(agg.max_group_weight, 0);
        assert_eq!(agg.total_weight, 0);
        assert_eq!(agg.distinct_count, 0);
        let materialized =
            hash_join_step_with(&acc, inst.relation(1), Parallelism::SEQUENTIAL).unwrap();
        assert_eq!(
            agg,
            AggSummary::from_join_result(&materialized, &[]).unwrap()
        );
    }

    #[test]
    fn bloom_filter_never_reports_a_present_key_absent() {
        let hashes: Vec<u64> = (0..5000u64)
            .map(|i| hash_word(i.wrapping_mul(0x9e37_79b9_7f4a_7c15)))
            .collect();
        let bloom = BlockedBloom::from_hashes(&hashes);
        for &h in &hashes {
            assert!(bloom.may_contain(h));
        }
        // And it does prune: most keys it never saw must test absent.
        let absent = (5000..50_000u64)
            .map(|i| hash_word(i.wrapping_mul(0x9e37_79b9_7f4a_7c15)))
            .filter(|&h| !bloom.may_contain(h))
            .count();
        assert!(absent > 40_000, "bloom pruned only {absent} of 45000");
    }

    #[test]
    fn bloom_probe_emits_the_same_match_sequence_as_the_plain_probe() {
        let q = JoinQuery::two_table(64, 4096, 64);
        let mut inst = Instance::empty_for(&q).unwrap();
        for i in 0..3000u64 {
            inst.relation_mut(0).add(vec![i % 37, i % 4096], 1).unwrap();
            inst.relation_mut(1)
                .add(vec![(i * 7) % 4096, i % 29], 1 + i % 3)
                .unwrap();
        }
        let acc = JoinResult::from_relation(inst.relation(0));
        let rel = inst.relation(1);
        let shared = intersect_attrs(acc.attrs(), rel.attrs());
        let acc_pos = project_positions(acc.attrs(), &shared).unwrap();
        let rel_pos = project_positions(rel.attrs(), &shared).unwrap();
        let rel_rows = FlatRows::from_relation(rel);
        let mut arena = KeyArena::with_capacity(shared.len(), rel_rows.len());
        for i in 0..rel_rows.len() {
            arena.push_projected(rel_rows.row(i), &rel_pos);
        }
        let index = ProbeIndex::build(arena);
        let bloom = BlockedBloom::from_hashes(&index.hashes);
        let mut plain: Vec<(usize, usize)> = Vec::new();
        probe_rows(
            &index,
            ProbeMode::Batched,
            0..acc.distinct_count(),
            shared.len(),
            |i| acc.row(i),
            &acc_pos,
            |i, j| plain.push((i, j)),
        );
        let mut pruned: Vec<(usize, usize)> = Vec::new();
        probe_rows_bloom(
            &index,
            &bloom,
            0..acc.distinct_count(),
            shared.len(),
            |i| acc.row(i),
            &acc_pos,
            |i, j| pruned.push((i, j)),
        );
        assert_eq!(pruned, plain);
        assert!(!plain.is_empty());
    }

    #[test]
    fn matches_naive_reference_on_fixed_instances() {
        let (q, inst) = two_table();
        for rels in [&[0usize][..], &[1], &[0, 1]] {
            let fast = join_subset(&q, &inst, rels).unwrap();
            let naive = crate::naive::join_subset_naive(&q, &inst, rels).unwrap();
            assert_eq!(fast.attrs(), naive.attrs());
            let fast_tuples: Vec<(Vec<Value>, u128)> =
                fast.iter().map(|(t, w)| (t.to_vec(), w)).collect();
            let naive_tuples: Vec<(Vec<Value>, u128)> =
                naive.iter().map(|(t, w)| (t.clone(), w)).collect();
            assert_eq!(fast_tuples, naive_tuples);
        }
    }
}
